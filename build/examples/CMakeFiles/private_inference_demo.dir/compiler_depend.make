# Empty compiler generated dependencies file for private_inference_demo.
# This may be replaced when dependencies are built.
