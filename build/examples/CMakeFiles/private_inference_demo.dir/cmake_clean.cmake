file(REMOVE_RECURSE
  "CMakeFiles/private_inference_demo.dir/private_inference_demo.cpp.o"
  "CMakeFiles/private_inference_demo.dir/private_inference_demo.cpp.o.d"
  "private_inference_demo"
  "private_inference_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_inference_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
