# Empty compiler generated dependencies file for wide_params_demo.
# This may be replaced when dependencies are built.
