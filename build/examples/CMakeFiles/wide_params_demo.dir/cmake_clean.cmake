file(REMOVE_RECURSE
  "CMakeFiles/wide_params_demo.dir/wide_params_demo.cpp.o"
  "CMakeFiles/wide_params_demo.dir/wide_params_demo.cpp.o.d"
  "wide_params_demo"
  "wide_params_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_params_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
