# Empty dependencies file for sparse_dataflow.
# This may be replaced when dependencies are built.
