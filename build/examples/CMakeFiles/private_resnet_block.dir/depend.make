# Empty dependencies file for private_resnet_block.
# This may be replaced when dependencies are built.
