file(REMOVE_RECURSE
  "CMakeFiles/private_resnet_block.dir/private_resnet_block.cpp.o"
  "CMakeFiles/private_resnet_block.dir/private_resnet_block.cpp.o.d"
  "private_resnet_block"
  "private_resnet_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_resnet_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
