file(REMOVE_RECURSE
  "CMakeFiles/flash_plan.dir/flash_plan.cpp.o"
  "CMakeFiles/flash_plan.dir/flash_plan.cpp.o.d"
  "flash_plan"
  "flash_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
