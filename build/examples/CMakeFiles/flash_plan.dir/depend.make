# Empty dependencies file for flash_plan.
# This may be replaced when dependencies are built.
