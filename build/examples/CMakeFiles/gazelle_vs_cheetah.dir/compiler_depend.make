# Empty compiler generated dependencies file for gazelle_vs_cheetah.
# This may be replaced when dependencies are built.
