file(REMOVE_RECURSE
  "CMakeFiles/gazelle_vs_cheetah.dir/gazelle_vs_cheetah.cpp.o"
  "CMakeFiles/gazelle_vs_cheetah.dir/gazelle_vs_cheetah.cpp.o.d"
  "gazelle_vs_cheetah"
  "gazelle_vs_cheetah.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gazelle_vs_cheetah.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
