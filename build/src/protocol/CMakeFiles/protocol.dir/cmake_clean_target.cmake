file(REMOVE_RECURSE
  "libprotocol.a"
)
