# Empty compiler generated dependencies file for protocol.
# This may be replaced when dependencies are built.
