file(REMOVE_RECURSE
  "CMakeFiles/protocol.dir/conv_runner.cpp.o"
  "CMakeFiles/protocol.dir/conv_runner.cpp.o.d"
  "CMakeFiles/protocol.dir/gazelle_matvec.cpp.o"
  "CMakeFiles/protocol.dir/gazelle_matvec.cpp.o.d"
  "CMakeFiles/protocol.dir/hconv_protocol.cpp.o"
  "CMakeFiles/protocol.dir/hconv_protocol.cpp.o.d"
  "CMakeFiles/protocol.dir/secret_sharing.cpp.o"
  "CMakeFiles/protocol.dir/secret_sharing.cpp.o.d"
  "libprotocol.a"
  "libprotocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
