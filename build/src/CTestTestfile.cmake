# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("hemath")
subdirs("fft")
subdirs("sparsefft")
subdirs("bfv")
subdirs("tensor")
subdirs("encoding")
subdirs("protocol")
subdirs("accel")
subdirs("dse")
subdirs("core")
