file(REMOVE_RECURSE
  "CMakeFiles/tensor.dir/conv.cpp.o"
  "CMakeFiles/tensor.dir/conv.cpp.o.d"
  "CMakeFiles/tensor.dir/network.cpp.o"
  "CMakeFiles/tensor.dir/network.cpp.o.d"
  "CMakeFiles/tensor.dir/quant.cpp.o"
  "CMakeFiles/tensor.dir/quant.cpp.o.d"
  "CMakeFiles/tensor.dir/resnet.cpp.o"
  "CMakeFiles/tensor.dir/resnet.cpp.o.d"
  "CMakeFiles/tensor.dir/tensor.cpp.o"
  "CMakeFiles/tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/tensor.dir/train.cpp.o"
  "CMakeFiles/tensor.dir/train.cpp.o.d"
  "libtensor.a"
  "libtensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
