
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/conv.cpp" "src/tensor/CMakeFiles/tensor.dir/conv.cpp.o" "gcc" "src/tensor/CMakeFiles/tensor.dir/conv.cpp.o.d"
  "/root/repo/src/tensor/network.cpp" "src/tensor/CMakeFiles/tensor.dir/network.cpp.o" "gcc" "src/tensor/CMakeFiles/tensor.dir/network.cpp.o.d"
  "/root/repo/src/tensor/quant.cpp" "src/tensor/CMakeFiles/tensor.dir/quant.cpp.o" "gcc" "src/tensor/CMakeFiles/tensor.dir/quant.cpp.o.d"
  "/root/repo/src/tensor/resnet.cpp" "src/tensor/CMakeFiles/tensor.dir/resnet.cpp.o" "gcc" "src/tensor/CMakeFiles/tensor.dir/resnet.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/tensor/CMakeFiles/tensor.dir/tensor.cpp.o" "gcc" "src/tensor/CMakeFiles/tensor.dir/tensor.cpp.o.d"
  "/root/repo/src/tensor/train.cpp" "src/tensor/CMakeFiles/tensor.dir/train.cpp.o" "gcc" "src/tensor/CMakeFiles/tensor.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hemath/CMakeFiles/hemath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
