# Empty dependencies file for accel.
# This may be replaced when dependencies are built.
