
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/baselines.cpp" "src/accel/CMakeFiles/accel.dir/baselines.cpp.o" "gcc" "src/accel/CMakeFiles/accel.dir/baselines.cpp.o.d"
  "/root/repo/src/accel/flash_config.cpp" "src/accel/CMakeFiles/accel.dir/flash_config.cpp.o" "gcc" "src/accel/CMakeFiles/accel.dir/flash_config.cpp.o.d"
  "/root/repo/src/accel/memory.cpp" "src/accel/CMakeFiles/accel.dir/memory.cpp.o" "gcc" "src/accel/CMakeFiles/accel.dir/memory.cpp.o.d"
  "/root/repo/src/accel/simulator.cpp" "src/accel/CMakeFiles/accel.dir/simulator.cpp.o" "gcc" "src/accel/CMakeFiles/accel.dir/simulator.cpp.o.d"
  "/root/repo/src/accel/unit_costs.cpp" "src/accel/CMakeFiles/accel.dir/unit_costs.cpp.o" "gcc" "src/accel/CMakeFiles/accel.dir/unit_costs.cpp.o.d"
  "/root/repo/src/accel/workload.cpp" "src/accel/CMakeFiles/accel.dir/workload.cpp.o" "gcc" "src/accel/CMakeFiles/accel.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/encoding/CMakeFiles/encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/sparsefft/CMakeFiles/sparsefft.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fft.dir/DependInfo.cmake"
  "/root/repo/build/src/hemath/CMakeFiles/hemath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
