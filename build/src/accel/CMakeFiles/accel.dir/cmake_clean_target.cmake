file(REMOVE_RECURSE
  "libaccel.a"
)
