file(REMOVE_RECURSE
  "CMakeFiles/accel.dir/baselines.cpp.o"
  "CMakeFiles/accel.dir/baselines.cpp.o.d"
  "CMakeFiles/accel.dir/flash_config.cpp.o"
  "CMakeFiles/accel.dir/flash_config.cpp.o.d"
  "CMakeFiles/accel.dir/memory.cpp.o"
  "CMakeFiles/accel.dir/memory.cpp.o.d"
  "CMakeFiles/accel.dir/simulator.cpp.o"
  "CMakeFiles/accel.dir/simulator.cpp.o.d"
  "CMakeFiles/accel.dir/unit_costs.cpp.o"
  "CMakeFiles/accel.dir/unit_costs.cpp.o.d"
  "CMakeFiles/accel.dir/workload.cpp.o"
  "CMakeFiles/accel.dir/workload.cpp.o.d"
  "libaccel.a"
  "libaccel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
