
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bfv/batch_encoder.cpp" "src/bfv/CMakeFiles/bfv.dir/batch_encoder.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/batch_encoder.cpp.o.d"
  "/root/repo/src/bfv/context.cpp" "src/bfv/CMakeFiles/bfv.dir/context.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/context.cpp.o.d"
  "/root/repo/src/bfv/encrypt.cpp" "src/bfv/CMakeFiles/bfv.dir/encrypt.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/encrypt.cpp.o.d"
  "/root/repo/src/bfv/evaluator.cpp" "src/bfv/CMakeFiles/bfv.dir/evaluator.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/evaluator.cpp.o.d"
  "/root/repo/src/bfv/keyswitch.cpp" "src/bfv/CMakeFiles/bfv.dir/keyswitch.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/keyswitch.cpp.o.d"
  "/root/repo/src/bfv/multiply.cpp" "src/bfv/CMakeFiles/bfv.dir/multiply.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/multiply.cpp.o.d"
  "/root/repo/src/bfv/noise.cpp" "src/bfv/CMakeFiles/bfv.dir/noise.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/noise.cpp.o.d"
  "/root/repo/src/bfv/params.cpp" "src/bfv/CMakeFiles/bfv.dir/params.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/params.cpp.o.d"
  "/root/repo/src/bfv/polymul_engine.cpp" "src/bfv/CMakeFiles/bfv.dir/polymul_engine.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/polymul_engine.cpp.o.d"
  "/root/repo/src/bfv/serialization.cpp" "src/bfv/CMakeFiles/bfv.dir/serialization.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/serialization.cpp.o.d"
  "/root/repo/src/bfv/wide.cpp" "src/bfv/CMakeFiles/bfv.dir/wide.cpp.o" "gcc" "src/bfv/CMakeFiles/bfv.dir/wide.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hemath/CMakeFiles/hemath.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
