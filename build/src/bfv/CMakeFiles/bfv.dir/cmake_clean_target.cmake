file(REMOVE_RECURSE
  "libbfv.a"
)
