file(REMOVE_RECURSE
  "CMakeFiles/bfv.dir/batch_encoder.cpp.o"
  "CMakeFiles/bfv.dir/batch_encoder.cpp.o.d"
  "CMakeFiles/bfv.dir/context.cpp.o"
  "CMakeFiles/bfv.dir/context.cpp.o.d"
  "CMakeFiles/bfv.dir/encrypt.cpp.o"
  "CMakeFiles/bfv.dir/encrypt.cpp.o.d"
  "CMakeFiles/bfv.dir/evaluator.cpp.o"
  "CMakeFiles/bfv.dir/evaluator.cpp.o.d"
  "CMakeFiles/bfv.dir/keyswitch.cpp.o"
  "CMakeFiles/bfv.dir/keyswitch.cpp.o.d"
  "CMakeFiles/bfv.dir/multiply.cpp.o"
  "CMakeFiles/bfv.dir/multiply.cpp.o.d"
  "CMakeFiles/bfv.dir/noise.cpp.o"
  "CMakeFiles/bfv.dir/noise.cpp.o.d"
  "CMakeFiles/bfv.dir/params.cpp.o"
  "CMakeFiles/bfv.dir/params.cpp.o.d"
  "CMakeFiles/bfv.dir/polymul_engine.cpp.o"
  "CMakeFiles/bfv.dir/polymul_engine.cpp.o.d"
  "CMakeFiles/bfv.dir/serialization.cpp.o"
  "CMakeFiles/bfv.dir/serialization.cpp.o.d"
  "CMakeFiles/bfv.dir/wide.cpp.o"
  "CMakeFiles/bfv.dir/wide.cpp.o.d"
  "libbfv.a"
  "libbfv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
