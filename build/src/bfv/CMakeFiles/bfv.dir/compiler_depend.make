# Empty compiler generated dependencies file for bfv.
# This may be replaced when dependencies are built.
