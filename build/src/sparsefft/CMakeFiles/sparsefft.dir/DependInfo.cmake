
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparsefft/executor.cpp" "src/sparsefft/CMakeFiles/sparsefft.dir/executor.cpp.o" "gcc" "src/sparsefft/CMakeFiles/sparsefft.dir/executor.cpp.o.d"
  "/root/repo/src/sparsefft/pattern.cpp" "src/sparsefft/CMakeFiles/sparsefft.dir/pattern.cpp.o" "gcc" "src/sparsefft/CMakeFiles/sparsefft.dir/pattern.cpp.o.d"
  "/root/repo/src/sparsefft/planner.cpp" "src/sparsefft/CMakeFiles/sparsefft.dir/planner.cpp.o" "gcc" "src/sparsefft/CMakeFiles/sparsefft.dir/planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft/CMakeFiles/fft.dir/DependInfo.cmake"
  "/root/repo/build/src/hemath/CMakeFiles/hemath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
