file(REMOVE_RECURSE
  "libsparsefft.a"
)
