file(REMOVE_RECURSE
  "CMakeFiles/sparsefft.dir/executor.cpp.o"
  "CMakeFiles/sparsefft.dir/executor.cpp.o.d"
  "CMakeFiles/sparsefft.dir/pattern.cpp.o"
  "CMakeFiles/sparsefft.dir/pattern.cpp.o.d"
  "CMakeFiles/sparsefft.dir/planner.cpp.o"
  "CMakeFiles/sparsefft.dir/planner.cpp.o.d"
  "libsparsefft.a"
  "libsparsefft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsefft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
