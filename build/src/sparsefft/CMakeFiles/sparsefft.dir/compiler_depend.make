# Empty compiler generated dependencies file for sparsefft.
# This may be replaced when dependencies are built.
