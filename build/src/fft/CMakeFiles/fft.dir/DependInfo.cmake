
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/complex_fft.cpp" "src/fft/CMakeFiles/fft.dir/complex_fft.cpp.o" "gcc" "src/fft/CMakeFiles/fft.dir/complex_fft.cpp.o.d"
  "/root/repo/src/fft/fxp_fft.cpp" "src/fft/CMakeFiles/fft.dir/fxp_fft.cpp.o" "gcc" "src/fft/CMakeFiles/fft.dir/fxp_fft.cpp.o.d"
  "/root/repo/src/fft/negacyclic.cpp" "src/fft/CMakeFiles/fft.dir/negacyclic.cpp.o" "gcc" "src/fft/CMakeFiles/fft.dir/negacyclic.cpp.o.d"
  "/root/repo/src/fft/radix4.cpp" "src/fft/CMakeFiles/fft.dir/radix4.cpp.o" "gcc" "src/fft/CMakeFiles/fft.dir/radix4.cpp.o.d"
  "/root/repo/src/fft/twiddle.cpp" "src/fft/CMakeFiles/fft.dir/twiddle.cpp.o" "gcc" "src/fft/CMakeFiles/fft.dir/twiddle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hemath/CMakeFiles/hemath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
