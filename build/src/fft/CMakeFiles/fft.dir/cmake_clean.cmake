file(REMOVE_RECURSE
  "CMakeFiles/fft.dir/complex_fft.cpp.o"
  "CMakeFiles/fft.dir/complex_fft.cpp.o.d"
  "CMakeFiles/fft.dir/fxp_fft.cpp.o"
  "CMakeFiles/fft.dir/fxp_fft.cpp.o.d"
  "CMakeFiles/fft.dir/negacyclic.cpp.o"
  "CMakeFiles/fft.dir/negacyclic.cpp.o.d"
  "CMakeFiles/fft.dir/radix4.cpp.o"
  "CMakeFiles/fft.dir/radix4.cpp.o.d"
  "CMakeFiles/fft.dir/twiddle.cpp.o"
  "CMakeFiles/fft.dir/twiddle.cpp.o.d"
  "libfft.a"
  "libfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
