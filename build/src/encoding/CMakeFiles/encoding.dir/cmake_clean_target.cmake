file(REMOVE_RECURSE
  "libencoding.a"
)
