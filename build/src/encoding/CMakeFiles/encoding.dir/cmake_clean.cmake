file(REMOVE_RECURSE
  "CMakeFiles/encoding.dir/encoder.cpp.o"
  "CMakeFiles/encoding.dir/encoder.cpp.o.d"
  "CMakeFiles/encoding.dir/matvec.cpp.o"
  "CMakeFiles/encoding.dir/matvec.cpp.o.d"
  "CMakeFiles/encoding.dir/tiling.cpp.o"
  "CMakeFiles/encoding.dir/tiling.cpp.o.d"
  "libencoding.a"
  "libencoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
