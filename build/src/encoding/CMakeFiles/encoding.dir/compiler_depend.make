# Empty compiler generated dependencies file for encoding.
# This may be replaced when dependencies are built.
