file(REMOVE_RECURSE
  "libhemath.a"
)
