file(REMOVE_RECURSE
  "CMakeFiles/hemath.dir/bitrev.cpp.o"
  "CMakeFiles/hemath.dir/bitrev.cpp.o.d"
  "CMakeFiles/hemath.dir/modular.cpp.o"
  "CMakeFiles/hemath.dir/modular.cpp.o.d"
  "CMakeFiles/hemath.dir/ntt.cpp.o"
  "CMakeFiles/hemath.dir/ntt.cpp.o.d"
  "CMakeFiles/hemath.dir/poly.cpp.o"
  "CMakeFiles/hemath.dir/poly.cpp.o.d"
  "CMakeFiles/hemath.dir/primes.cpp.o"
  "CMakeFiles/hemath.dir/primes.cpp.o.d"
  "CMakeFiles/hemath.dir/rns.cpp.o"
  "CMakeFiles/hemath.dir/rns.cpp.o.d"
  "CMakeFiles/hemath.dir/rns_poly.cpp.o"
  "CMakeFiles/hemath.dir/rns_poly.cpp.o.d"
  "CMakeFiles/hemath.dir/sampler.cpp.o"
  "CMakeFiles/hemath.dir/sampler.cpp.o.d"
  "CMakeFiles/hemath.dir/shoup_ntt.cpp.o"
  "CMakeFiles/hemath.dir/shoup_ntt.cpp.o.d"
  "libhemath.a"
  "libhemath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
