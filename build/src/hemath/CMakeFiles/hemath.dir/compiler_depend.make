# Empty compiler generated dependencies file for hemath.
# This may be replaced when dependencies are built.
