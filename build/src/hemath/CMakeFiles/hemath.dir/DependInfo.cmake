
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hemath/bitrev.cpp" "src/hemath/CMakeFiles/hemath.dir/bitrev.cpp.o" "gcc" "src/hemath/CMakeFiles/hemath.dir/bitrev.cpp.o.d"
  "/root/repo/src/hemath/modular.cpp" "src/hemath/CMakeFiles/hemath.dir/modular.cpp.o" "gcc" "src/hemath/CMakeFiles/hemath.dir/modular.cpp.o.d"
  "/root/repo/src/hemath/ntt.cpp" "src/hemath/CMakeFiles/hemath.dir/ntt.cpp.o" "gcc" "src/hemath/CMakeFiles/hemath.dir/ntt.cpp.o.d"
  "/root/repo/src/hemath/poly.cpp" "src/hemath/CMakeFiles/hemath.dir/poly.cpp.o" "gcc" "src/hemath/CMakeFiles/hemath.dir/poly.cpp.o.d"
  "/root/repo/src/hemath/primes.cpp" "src/hemath/CMakeFiles/hemath.dir/primes.cpp.o" "gcc" "src/hemath/CMakeFiles/hemath.dir/primes.cpp.o.d"
  "/root/repo/src/hemath/rns.cpp" "src/hemath/CMakeFiles/hemath.dir/rns.cpp.o" "gcc" "src/hemath/CMakeFiles/hemath.dir/rns.cpp.o.d"
  "/root/repo/src/hemath/rns_poly.cpp" "src/hemath/CMakeFiles/hemath.dir/rns_poly.cpp.o" "gcc" "src/hemath/CMakeFiles/hemath.dir/rns_poly.cpp.o.d"
  "/root/repo/src/hemath/sampler.cpp" "src/hemath/CMakeFiles/hemath.dir/sampler.cpp.o" "gcc" "src/hemath/CMakeFiles/hemath.dir/sampler.cpp.o.d"
  "/root/repo/src/hemath/shoup_ntt.cpp" "src/hemath/CMakeFiles/hemath.dir/shoup_ntt.cpp.o" "gcc" "src/hemath/CMakeFiles/hemath.dir/shoup_ntt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
