file(REMOVE_RECURSE
  "CMakeFiles/dse.dir/bayesopt.cpp.o"
  "CMakeFiles/dse.dir/bayesopt.cpp.o.d"
  "CMakeFiles/dse.dir/cost_model.cpp.o"
  "CMakeFiles/dse.dir/cost_model.cpp.o.d"
  "CMakeFiles/dse.dir/error_model.cpp.o"
  "CMakeFiles/dse.dir/error_model.cpp.o.d"
  "CMakeFiles/dse.dir/optimizer.cpp.o"
  "CMakeFiles/dse.dir/optimizer.cpp.o.d"
  "CMakeFiles/dse.dir/space.cpp.o"
  "CMakeFiles/dse.dir/space.cpp.o.d"
  "libdse.a"
  "libdse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
