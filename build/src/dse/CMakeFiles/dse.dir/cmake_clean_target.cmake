file(REMOVE_RECURSE
  "libdse.a"
)
