# Empty compiler generated dependencies file for dse.
# This may be replaced when dependencies are built.
