file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_multcount.dir/bench_fig11a_multcount.cpp.o"
  "CMakeFiles/bench_fig11a_multcount.dir/bench_fig11a_multcount.cpp.o.d"
  "bench_fig11a_multcount"
  "bench_fig11a_multcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_multcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
