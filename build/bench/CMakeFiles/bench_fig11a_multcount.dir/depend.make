# Empty dependencies file for bench_fig11a_multcount.
# This may be replaced when dependencies are built.
