file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11bc_dse.dir/bench_fig11bc_dse.cpp.o"
  "CMakeFiles/bench_fig11bc_dse.dir/bench_fig11bc_dse.cpp.o.d"
  "bench_fig11bc_dse"
  "bench_fig11bc_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11bc_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
