# Empty compiler generated dependencies file for bench_fig11bc_dse.
# This may be replaced when dependencies are built.
