# Empty dependencies file for bench_table4_linear_layers.
# This may be replaced when dependencies are built.
