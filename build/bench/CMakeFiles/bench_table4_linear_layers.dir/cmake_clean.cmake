file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_linear_layers.dir/bench_table4_linear_layers.cpp.o"
  "CMakeFiles/bench_table4_linear_layers.dir/bench_table4_linear_layers.cpp.o.d"
  "bench_table4_linear_layers"
  "bench_table4_linear_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_linear_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
