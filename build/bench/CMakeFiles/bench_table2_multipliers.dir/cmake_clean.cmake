file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_multipliers.dir/bench_table2_multipliers.cpp.o"
  "CMakeFiles/bench_table2_multipliers.dir/bench_table2_multipliers.cpp.o.d"
  "bench_table2_multipliers"
  "bench_table2_multipliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_multipliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
