# Empty dependencies file for bench_micro_transforms.
# This may be replaced when dependencies are built.
