file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_transforms.dir/bench_micro_transforms.cpp.o"
  "CMakeFiles/bench_micro_transforms.dir/bench_micro_transforms.cpp.o.d"
  "bench_micro_transforms"
  "bench_micro_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
