# Empty dependencies file for bench_future_pointwise.
# This may be replaced when dependencies are built.
