file(REMOVE_RECURSE
  "CMakeFiles/bench_future_pointwise.dir/bench_future_pointwise.cpp.o"
  "CMakeFiles/bench_future_pointwise.dir/bench_future_pointwise.cpp.o.d"
  "bench_future_pointwise"
  "bench_future_pointwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_pointwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
