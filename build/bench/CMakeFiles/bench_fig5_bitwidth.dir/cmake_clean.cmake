file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_bitwidth.dir/bench_fig5_bitwidth.cpp.o"
  "CMakeFiles/bench_fig5_bitwidth.dir/bench_fig5_bitwidth.cpp.o.d"
  "bench_fig5_bitwidth"
  "bench_fig5_bitwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bitwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
