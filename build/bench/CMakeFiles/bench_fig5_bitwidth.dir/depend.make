# Empty dependencies file for bench_fig5_bitwidth.
# This may be replaced when dependencies are built.
