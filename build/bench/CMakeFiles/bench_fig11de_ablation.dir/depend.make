# Empty dependencies file for bench_fig11de_ablation.
# This may be replaced when dependencies are built.
