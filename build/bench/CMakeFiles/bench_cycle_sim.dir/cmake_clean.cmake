file(REMOVE_RECURSE
  "CMakeFiles/bench_cycle_sim.dir/bench_cycle_sim.cpp.o"
  "CMakeFiles/bench_cycle_sim.dir/bench_cycle_sim.cpp.o.d"
  "bench_cycle_sim"
  "bench_cycle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cycle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
