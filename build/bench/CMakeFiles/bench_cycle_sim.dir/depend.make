# Empty dependencies file for bench_cycle_sim.
# This may be replaced when dependencies are built.
