# Empty compiler generated dependencies file for test_rns_radix4.
# This may be replaced when dependencies are built.
