file(REMOVE_RECURSE
  "CMakeFiles/test_rns_radix4.dir/test_rns_radix4.cpp.o"
  "CMakeFiles/test_rns_radix4.dir/test_rns_radix4.cpp.o.d"
  "test_rns_radix4"
  "test_rns_radix4.pdb"
  "test_rns_radix4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rns_radix4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
