file(REMOVE_RECURSE
  "CMakeFiles/test_matvec_merged.dir/test_matvec_merged.cpp.o"
  "CMakeFiles/test_matvec_merged.dir/test_matvec_merged.cpp.o.d"
  "test_matvec_merged"
  "test_matvec_merged.pdb"
  "test_matvec_merged[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matvec_merged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
