# Empty compiler generated dependencies file for test_matvec_merged.
# This may be replaced when dependencies are built.
