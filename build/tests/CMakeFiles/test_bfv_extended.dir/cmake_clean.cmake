file(REMOVE_RECURSE
  "CMakeFiles/test_bfv_extended.dir/test_bfv_extended.cpp.o"
  "CMakeFiles/test_bfv_extended.dir/test_bfv_extended.cpp.o.d"
  "test_bfv_extended"
  "test_bfv_extended.pdb"
  "test_bfv_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfv_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
