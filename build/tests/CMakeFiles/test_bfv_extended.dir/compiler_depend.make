# Empty compiler generated dependencies file for test_bfv_extended.
# This may be replaced when dependencies are built.
