file(REMOVE_RECURSE
  "CMakeFiles/test_fxp_fft.dir/test_fxp_fft.cpp.o"
  "CMakeFiles/test_fxp_fft.dir/test_fxp_fft.cpp.o.d"
  "test_fxp_fft"
  "test_fxp_fft.pdb"
  "test_fxp_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fxp_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
