file(REMOVE_RECURSE
  "CMakeFiles/test_gazelle.dir/test_gazelle.cpp.o"
  "CMakeFiles/test_gazelle.dir/test_gazelle.cpp.o.d"
  "test_gazelle"
  "test_gazelle.pdb"
  "test_gazelle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gazelle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
