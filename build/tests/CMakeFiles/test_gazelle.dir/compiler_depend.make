# Empty compiler generated dependencies file for test_gazelle.
# This may be replaced when dependencies are built.
