file(REMOVE_RECURSE
  "CMakeFiles/test_train_noise.dir/test_train_noise.cpp.o"
  "CMakeFiles/test_train_noise.dir/test_train_noise.cpp.o.d"
  "test_train_noise"
  "test_train_noise.pdb"
  "test_train_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_train_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
