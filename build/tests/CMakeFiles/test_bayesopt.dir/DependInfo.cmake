
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bayesopt.cpp" "tests/CMakeFiles/test_bayesopt.dir/test_bayesopt.cpp.o" "gcc" "tests/CMakeFiles/test_bayesopt.dir/test_bayesopt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/accel.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/dse.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/bfv/CMakeFiles/bfv.dir/DependInfo.cmake"
  "/root/repo/build/src/sparsefft/CMakeFiles/sparsefft.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fft.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hemath/CMakeFiles/hemath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
