# Empty compiler generated dependencies file for test_conv_runner.
# This may be replaced when dependencies are built.
