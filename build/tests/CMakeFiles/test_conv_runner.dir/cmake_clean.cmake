file(REMOVE_RECURSE
  "CMakeFiles/test_conv_runner.dir/test_conv_runner.cpp.o"
  "CMakeFiles/test_conv_runner.dir/test_conv_runner.cpp.o.d"
  "test_conv_runner"
  "test_conv_runner.pdb"
  "test_conv_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
