# Empty compiler generated dependencies file for test_shoup_ntt.
# This may be replaced when dependencies are built.
