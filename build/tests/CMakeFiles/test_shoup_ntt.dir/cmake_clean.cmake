file(REMOVE_RECURSE
  "CMakeFiles/test_shoup_ntt.dir/test_shoup_ntt.cpp.o"
  "CMakeFiles/test_shoup_ntt.dir/test_shoup_ntt.cpp.o.d"
  "test_shoup_ntt"
  "test_shoup_ntt.pdb"
  "test_shoup_ntt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shoup_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
