file(REMOVE_RECURSE
  "CMakeFiles/test_wide_bfv.dir/test_wide_bfv.cpp.o"
  "CMakeFiles/test_wide_bfv.dir/test_wide_bfv.cpp.o.d"
  "test_wide_bfv"
  "test_wide_bfv.pdb"
  "test_wide_bfv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wide_bfv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
