# Empty dependencies file for test_wide_bfv.
# This may be replaced when dependencies are built.
