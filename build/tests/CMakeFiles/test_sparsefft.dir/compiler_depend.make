# Empty compiler generated dependencies file for test_sparsefft.
# This may be replaced when dependencies are built.
