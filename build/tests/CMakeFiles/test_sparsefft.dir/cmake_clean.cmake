file(REMOVE_RECURSE
  "CMakeFiles/test_sparsefft.dir/test_sparsefft.cpp.o"
  "CMakeFiles/test_sparsefft.dir/test_sparsefft.cpp.o.d"
  "test_sparsefft"
  "test_sparsefft.pdb"
  "test_sparsefft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparsefft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
