// Future-work exploration (paper §V-B: "point-wise multiplication becomes a
// new bottleneck, which is the focus of our research in the future"):
// sweep the point-wise FP multiplier array and the FP transform array to see
// what it takes to make the full HConv pipeline weight-array-bound, and what
// it costs in area/power.
#include <cstdio>

#include "core/flash_accelerator.hpp"
#include "tensor/resnet.hpp"

int main() {
  using namespace flash;
  using namespace flash::accel;

  std::printf("=== future work: removing the point-wise bottleneck (ResNet-50, N = 4096) ===\n\n");

  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  core::FlashAccelerator planner(params);
  TransformWorkload w;
  w.n = params.n;
  bool first = true;
  for (const auto& layer : tensor::resnet50_conv_layers()) {
    const core::LayerPlan plan = planner.plan_layer(layer);
    if (first) {
      w = plan.workload;
      first = false;
    } else {
      w += plan.workload;
    }
  }

  std::printf("%-28s %10s %10s %10s %12s %10s %9s\n", "configuration", "xform ms", "all ms",
              "bound by", "energy mJ", "area mm^2", "power W");
  struct Variant {
    const char* name;
    std::size_t fp_mults;
    std::size_t fp_pes;
  };
  const Variant variants[] = {
      {"paper (240 MUL, 4 FP PE)", 240, 4},
      {"2x point-wise array", 480, 4},
      {"4x point-wise array", 960, 4},
      {"4x PW + 4x FP PEs", 960, 16},
      {"8x PW + 8x FP PEs", 1920, 32},
  };
  for (const Variant& v : variants) {
    FlashConfig cfg = FlashConfig::paper_default();
    cfg.fp_mult_units = v.fp_mults;
    cfg.fp_acc_units = v.fp_mults;
    cfg.fp_pes = v.fp_pes;
    const FlashRunBreakdown r = flash_run_breakdown(cfg, w, WeightPath::kApproxSparse);
    const AreaPowerBreakdown b = flash_breakdown(cfg);
    const char* bound = "weight";
    if (r.pointwise_s >= r.weight_array_s && r.pointwise_s >= r.fp_array_s) {
      bound = "pointwise";
    } else if (r.fp_array_s > r.weight_array_s) {
      bound = "fp xform";
    }
    std::printf("%-28s %10.3f %10.3f %10s %12.2f %10.2f %9.2f\n", v.name,
                r.transform_seconds() * 1e3, r.seconds() * 1e3, bound, r.joules() * 1e3,
                b.total_area(), b.total_power());
  }
  std::printf("\nscaling the point-wise array trades area/power for latency; the energy is\n");
  std::printf("dominated by point-wise FP products regardless (motivating the paper's\n");
  std::printf("future work on approximate point-wise arithmetic).\n");
  return 0;
}
