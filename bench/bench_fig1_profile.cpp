// Figure 1 reproduction: latency breakdown of hybrid HE/2PC private CNN
// inference on CPU.
//
// Paper: for a ResNet-50 residual block under Cheetah, homomorphic
// convolutions dominate end-to-end latency, and within HConv the NTTs of
// *weight* polynomials dominate computation (motivating FLASH).
//
// We run the one-round HConv protocol with the exact NTT backend over a
// residual-block-shaped layer pair (scaled to tractable CPU size but with
// the paper's channel-to-spatial ratio) and report wall-clock per phase plus
// the transform-count breakdown for the true ResNet-50 block.
#include <cstdio>
#include <cstring>
#include <memory>

#include "accel/memory.hpp"
#include "core/thread_pool.hpp"
#include "encoding/tiling.hpp"
#include "protocol/hconv_protocol.hpp"
#include "tensor/quant.hpp"
#include "tensor/resnet.hpp"

int main(int argc, char** argv) {
  using namespace flash;

  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  if (threads == 0) threads = core::ThreadPool::default_thread_count();

  std::printf("=== Fig. 1: hybrid HE/2PC HConv latency breakdown (CPU, NTT backend) ===\n\n");
  std::printf("protocol threads: %zu%s\n\n", threads,
              threads == 1 ? " (pass --threads N to pool the per-channel loops)" : "");

  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  bfv::BfvContext ctx(params);
  std::unique_ptr<core::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<core::ThreadPool>(threads);
  protocol::HConvProtocol proto(ctx, bfv::PolyMulBackend::kNtt, std::nullopt, 20250307,
                                pool.get());

  // A bottleneck-block-shaped conv: 32 channels of 16x16, 3x3, 32 outputs
  // (the 58x58x64 original is identical in structure; this size keeps the
  // CPU run to seconds).
  std::mt19937_64 rng(1);
  const tensor::Tensor3 x = tensor::random_activations(32, 16, 16, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(32, 32, 3, 4, rng);
  const protocol::HConvResult res = proto.run(x, w);
  const auto& p = res.profile;

  const double total = p.total_s();
  auto row = [&](const char* name, double secs) {
    std::printf("  %-28s %8.3f ms  %5.1f%%\n", name, secs * 1e3, 100.0 * secs / total);
  };
  std::printf("measured phase latencies (one HConv, %zu-deg ring):\n", params.n);
  row("share encode (2PC)", p.share_encode_s);
  row("encrypt (client)", p.encrypt_s);
  row("weight transforms (server)", p.weight_transform_s);
  row("ct transform+mul+inv (server)", p.cipher_transform_mul_s);
  row("masking (server)", p.mask_s);
  row("decrypt (client)", p.decrypt_s);
  std::printf("  %-28s %8.3f ms\n\n", "total", total * 1e3);

  std::printf("server transform inventory (ops of this HConv):\n");
  std::printf("  weight transforms   %llu\n", static_cast<unsigned long long>(res.ops.plain_transforms));
  std::printf("  ct fwd transforms   %llu\n", static_cast<unsigned long long>(res.ops.cipher_transforms));
  std::printf("  inverse transforms  %llu\n", static_cast<unsigned long long>(res.ops.inverse_transforms));

  // The true ResNet-50 residual block (layer3 bottleneck) through the
  // analytic tiling planner: transform counts show the same weight-dominated
  // shape at full scale.
  std::printf("\nResNet-50 layer3 bottleneck block, analytic transform counts (N = 4096):\n");
  const auto layers = tensor::resnet50_conv_layers();
  std::uint64_t weight = 0, cipher = 0, inverse = 0;
  for (const auto& l : layers) {
    if (l.name.rfind("layer3.1.", 0) != 0) continue;
    const encoding::LayerTiling t = encoding::plan_layer(l, params.n);
    weight += t.weight_transforms;
    cipher += t.cipher_transforms;
    inverse += t.inverse_transforms;
  }
  const double tsum = static_cast<double>(weight + cipher + inverse);
  std::printf("  weight transforms   %8llu  (%.1f%%)\n", static_cast<unsigned long long>(weight),
              100.0 * weight / tsum);
  std::printf("  ct fwd transforms   %8llu  (%.1f%%)\n", static_cast<unsigned long long>(cipher),
              100.0 * cipher / tsum);
  std::printf("  inverse transforms  %8llu  (%.1f%%)\n", static_cast<unsigned long long>(inverse),
              100.0 * inverse / tsum);
  std::printf("\npaper shape: weight NTTs are the dominant HConv cost -> %s\n",
              weight > cipher + inverse ? "REPRODUCED" : "NOT reproduced");

  // Fig. 1's other axis: computation vs communication latency. The one-round
  // protocol moves input/output ciphertexts once; at LAN/WAN bandwidths the
  // computation side dominates (the paper's premise for accelerating it).
  std::printf("\ncomputation vs communication (ResNet-50 linear layers, N = 4096):\n");
  const std::uint64_t ct_bytes = 2ULL * params.n * 7;  // 49-bit q -> 7 B/coeff
  const auto comm = encoding::plan_communication(layers, params.n, ct_bytes);
  // CPU computation estimate: measured per-HConv cost scaled by transform counts.
  const auto net_counts = encoding::plan_network(layers, params.n);
  const double measured_per_transform =
      (p.weight_transform_s + p.cipher_transform_mul_s) /
      static_cast<double>(res.ops.plain_transforms + res.ops.cipher_transforms +
                          res.ops.inverse_transforms);
  const double compute_s = measured_per_transform *
                           static_cast<double>(net_counts.weight_transforms +
                                               net_counts.cipher_transforms +
                                               net_counts.inverse_transforms);
  for (const double gbps : {0.1, 1.0, 10.0}) {
    const double comm_s = static_cast<double>(comm.total()) * 8.0 / (gbps * 1e9);
    std::printf("  @%5.1f Gbps: computation %6.1f s vs communication %6.1f s -> %s-bound\n", gbps,
                compute_s, comm_s, compute_s > comm_s ? "computation" : "communication");
  }

  // The paper's motivation for on-the-fly transforms: caching every weight
  // polynomial in the NTT domain costs "23 GB ... >1000x higher memory" for
  // a 4-bit ResNet-50.
  const accel::WeightStorage storage = accel::weight_storage(layers, params.n, 49, 4);
  std::printf("\nweight storage, 4-bit ResNet-50 (N = 4096, 49-bit q):\n");
  std::printf("  raw quantized weights      %8.1f MB\n", storage.raw_bytes / 1e6);
  std::printf("  NTT-domain pre-computation %8.1f GB  (%.0fx blowup)\n",
              storage.transformed_bytes / 1e9, storage.blowup());
  std::printf("  paper: 23 GB, >1000x -> %s\n",
              (storage.transformed_bytes > 10e9 && storage.blowup() > 1000.0) ? "REPRODUCED"
                                                                              : "NOT reproduced");
  return 0;
}
