// Table III reproduction: normalized throughput, area and power efficiency
// of FLASH against HEAX, CHAM (FPGA) and F1, BTS, ARK (ASIC).
//
// Baseline rows use the paper's published numbers (and the FPGA rows are
// re-derived from the BU-level model: BUs x f / NTT butterflies). The FLASH
// rows are computed from our architecture + workload models: the normalized
// throughput uses the ResNet-50 network-average sparse multiplication
// fraction measured by the dataflow planner.
#include <cstdio>

#include "accel/baselines.hpp"
#include "accel/workload.hpp"
#include "core/flash_accelerator.hpp"
#include "tensor/resnet.hpp"

int main() {
  using namespace flash;
  using namespace flash::accel;

  std::printf("=== Table III: HConv accelerator efficiency comparison (ResNet-50 workload) ===\n\n");

  // Network-average sparse weight-transform fraction from the real encoded
  // patterns of every ResNet-50 layer.
  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  core::FlashAccelerator acc(params);
  double weighted = 0;
  std::uint64_t count = 0;
  for (const auto& layer : tensor::resnet50_conv_layers()) {
    const core::LayerPlan plan = acc.plan_layer(layer);
    weighted += plan.weight_mult_fraction * static_cast<double>(plan.tiling.weight_transforms);
    count += plan.tiling.weight_transforms;
  }
  const double frac = weighted / static_cast<double>(count);
  std::printf("measured sparse weight-transform fraction (network avg): %.4f (%.1f%% reduction)\n\n",
              frac, 100.0 * (1.0 - frac));

  std::printf("%-26s %-10s %-10s %12s %10s %9s %14s %14s\n", "Accelerator", "N", "Tech",
              "Thpt (M/s)", "Area mm^2", "Power W", "MOPS/mm^2", "MOPS/W");
  auto print_spec = [](const AcceleratorSpec& s) {
    std::printf("%-26s 2^%-8.0f %-10s %12.2f", s.name.c_str(), std::log2(double(s.n)),
                s.technology.c_str(), s.norm_throughput / 1e6);
    if (s.has_area_power()) {
      std::printf(" %10.2f %9.2f %14.2f %14.2f\n", s.area_mm2, s.power_w, s.area_efficiency(),
                  s.power_efficiency());
    } else {
      std::printf(" %10s %9s %14s %14s\n", "-", "-", "-", "-");
    }
  };
  const auto baselines = table3_baselines();
  for (const auto& b : baselines) print_spec(b);

  // FLASH rows from our models.
  const FlashConfig weight_cfg = FlashConfig::weight_transform_only();
  const FlashConfig full_cfg = FlashConfig::paper_default();
  const auto weight_bd = flash_breakdown(weight_cfg);
  const auto full_bd = flash_breakdown(full_cfg);
  const double weight_thpt = flash_norm_throughput(weight_cfg, frac, true);
  const double all_thpt = flash_norm_throughput(full_cfg, frac, false);

  AcceleratorSpec flash_w{"FLASH weight transforms", 4096, "28nm", 1e9, weight_thpt,
                          weight_bd.total_area(), weight_bd.total_power()};
  AcceleratorSpec flash_all{"FLASH all transforms", 4096, "28nm", 1e9, all_thpt,
                            full_bd.total_area(), full_bd.total_power()};
  print_spec(flash_w);
  print_spec(flash_all);

  std::printf("\nefficiency gains over the ASIC baselines:\n");
  std::printf("%-10s %24s %24s\n", "baseline", "weight power-eff gain", "all-transform gain");
  for (std::size_t i = 2; i < baselines.size(); ++i) {
    std::printf("%-10s %23.1fx %23.1fx\n", baselines[i].name.c_str(),
                flash_w.power_efficiency() / baselines[i].power_efficiency(),
                flash_all.power_efficiency() / baselines[i].power_efficiency());
  }
  std::printf("\npaper: weight transforms 81.8~90.7x, all transforms 8.7~9.7x power efficiency\n");
  std::printf("paper: area efficiency 15.6~26.2x (weight), 2.8~4.7x (all)\n");
  std::printf("area-efficiency gains:  F1 %.1fx/%.1fx  BTS %.1fx/%.1fx  ARK %.1fx/%.1fx\n",
              flash_w.area_efficiency() / baselines[2].area_efficiency(),
              flash_all.area_efficiency() / baselines[2].area_efficiency(),
              flash_w.area_efficiency() / baselines[3].area_efficiency(),
              flash_all.area_efficiency() / baselines[3].area_efficiency(),
              flash_w.area_efficiency() / baselines[4].area_efficiency(),
              flash_all.area_efficiency() / baselines[4].area_efficiency());

  std::printf("\nFPGA rows validated by the BU model: HEAX %.2fM (pub 1.95M), CHAM %.2fM (pub 2.93M)\n",
              fpga_ntt_norm_throughput(160, 300e6) / 1e6, fpga_ntt_norm_throughput(240, 300e6) / 1e6);

  // Sensitivity: our tiling planner (power-of-two patches, many 1x1 convs)
  // achieves a better sparse fraction than the paper's implied 0.117
  // (186.34 M/s at 240 BUs x 1 GHz). At the paper's own fraction our model
  // lands on the published row almost exactly:
  const double paper_frac = 0.117;
  const double w117 = flash_norm_throughput(weight_cfg, paper_frac, true);
  const double a117 = flash_norm_throughput(full_cfg, paper_frac, false);
  std::printf("\nsensitivity at the paper's implied fraction (0.117):\n");
  std::printf("  weight transforms: %.2f M/s (paper 186.34), power eff %.1f MOPS/W -> F1 gain %.1fx (paper 90.7x)\n",
              w117 / 1e6, w117 / 1e6 / weight_bd.total_power(),
              (w117 / 1e6 / weight_bd.total_power()) / baselines[2].power_efficiency());
  std::printf("  all transforms:    %.2f M/s (paper 187.90), power eff %.1f MOPS/W -> F1 gain %.1fx (paper 9.7x)\n",
              a117 / 1e6, a117 / 1e6 / full_bd.total_power(),
              (a117 / 1e6 / full_bd.total_power()) / baselines[2].power_efficiency());
  return 0;
}
