// Figure 7 reproduction: visualization and statistics of the coefficient
// sparsity of Cheetah-encoded weight polynomials.
//
// Paper: with coefficient encoding, every H*W-sized channel stripe of the
// weight polynomial carries at most k*k valid values (>90% sparsity for
// ResNet-50), in the structured pattern the sparse dataflow exploits.
#include <cstdio>

#include "encoding/encoder.hpp"
#include "encoding/tiling.hpp"
#include "tensor/resnet.hpp"

int main() {
  using namespace flash;

  std::printf("=== Fig. 7: coefficient-sparse weight polynomials ===\n\n");

  // Visualize one encoded weight polynomial: 4 channels of a 16x16 patch,
  // 3x3 kernel, first 4 channel stripes ('#' = valid coefficient).
  encoding::ConvEncoder enc(4096, 4, 16, 16, 3);
  const auto pattern = enc.weight_pattern();
  std::printf("one encoded weight polynomial (N=4096, 4ch x 16x16 patch, k=3):\n");
  std::printf("  %zu valid of %zu coefficients -> %.2f%% sparse\n\n", pattern.weight(), pattern.size(),
              100.0 * pattern.sparsity());
  for (std::size_t stripe = 0; stripe < 4; ++stripe) {
    std::printf("  ch stripe %zu rows 0-4: ", stripe);
    for (std::size_t row = 0; row < 5; ++row) {
      for (std::size_t col = 0; col < 16; ++col) {
        std::printf("%c", pattern.is_active(stripe * 256 + row * 16 + col) ? '#' : '.');
      }
      std::printf(" ");
    }
    std::printf("\n");
  }

  // Per-layer sparsity statistics across ResNet-50 (N = 4096).
  std::printf("\nResNet-50 encoded weight sparsity by layer (N = 4096):\n");
  std::printf("  %-24s %8s %8s %10s %12s\n", "layer", "k_sub", "nnz", "sparsity", "mult frac");
  double min_sparsity = 1.0, sum_sparsity = 0.0;
  std::size_t shown = 0, total = 0;
  for (const auto& layer : tensor::resnet50_conv_layers()) {
    const encoding::LayerTiling t = encoding::plan_layer(layer, 4096);
    min_sparsity = std::min(min_sparsity, t.weight_sparsity());
    sum_sparsity += t.weight_sparsity();
    ++total;
    // Print a representative subset (first occurrence of each stage).
    if (layer.name == "conv1" || layer.name.find(".0.conv") != std::string::npos) {
      if (shown < 14) {
        std::printf("  %-24s %8zu %8zu %9.2f%% %12.3f\n", layer.name.c_str(), t.sub_k, t.weight_nnz,
                    100.0 * t.weight_sparsity(), t.weight_mult_fraction);
        ++shown;
      }
    }
  }
  std::printf("  ... (%zu layers total)\n", total);
  std::printf("\nnetwork: mean sparsity %.2f%%, minimum %.2f%%\n", 100.0 * sum_sparsity / total,
              100.0 * min_sparsity);
  std::printf("paper claim (>90%% sparsity for ResNet-50 weight polynomials): %s\n",
              min_sparsity > 0.5 && sum_sparsity / total > 0.9 ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
