// Serving-layer throughput: plan-batched ConvServer vs one-request-at-a-time.
//
// Scenario (the §9 serving model's headline claim): 8 concurrent client
// sessions all hit the same layer (same weight plan). The baseline runs each
// request through a bare ConvRunner, paying the full weight-transform phase
// per request; the server registers the plan once (weight spectra prepared
// up front) and batches same-plan requests, so each request pays only the
// input-dependent phases. Under the approximate-FFT datapath the weight
// transforms are ~70% of an HConv (bench_fig1_profile), so batched serving
// must clear >= 1.5x throughput — the benchdiff gate on the committed
// BENCH_serve_pr5.json enforces it (ratio record, lower is better).
//
// Both paths run the same deterministic RNG stream per request (request
// index << 32), and the bench *asserts* the batched results are bit-
// identical to the serial ones before reporting any number.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "bfv/context.hpp"
#include "core/flash_accelerator.hpp"
#include "serve/conv_server.hpp"
#include "tensor/quant.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flash;

  const std::string json_path = benchjson::extract_json_path(argc, argv);

  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kRequestsPerSession = 3;
  constexpr std::size_t kRequests = kSessions * kRequestsPerSession;

  // FLASH datapath (approximate FXP FFT) at the paper's ring degree: the
  // weight-transform share is largest here, i.e. this is the design point
  // the serving layer exists for.
  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  bfv::BfvContext ctx(params);
  const fft::FxpFftConfig approx_cfg = core::high_accuracy_approx_config(params.n, params.t);
  constexpr std::uint64_t kSeed = 20250806;

  std::mt19937_64 rng(7);
  const tensor::Tensor4 weights = tensor::random_weights(32, 16, 3, 4, rng);
  std::vector<tensor::Tensor3> inputs;
  for (std::size_t i = 0; i < kRequests; ++i) {
    inputs.push_back(tensor::random_activations(16, 12, 12, 4, rng));
  }

  std::printf("=== serve: plan-batched ConvServer vs per-request ConvRunner ===\n\n");
  std::printf("layer: 16ch 12x12, 3x3 -> 32ch; backend approx-fft (N=%zu); "
              "%zu sessions x %zu requests\n\n",
              params.n, kSessions, kRequestsPerSession);

  // --- Baseline: one request at a time, full weight transform each. ---
  protocol::HConvProtocol serial_proto(ctx, bfv::PolyMulBackend::kApproxFft, approx_cfg, kSeed);
  protocol::ConvRunner serial_runner(serial_proto);
  std::vector<protocol::ConvRunnerResult> serial_results;
  const Clock::time_point serial_start = Clock::now();
  for (std::size_t i = 0; i < kRequests; ++i) {
    serial_results.push_back(
        serial_runner.run(inputs[i], weights, 1, 1, static_cast<std::uint64_t>(i) << 32));
  }
  const double serial_s = seconds_since(serial_start);

  // --- Served: plan registered once, 8 session threads submit concurrently.
  // Plan preparation is deliberately outside the timed window: it is the
  // once-per-layer cost the server amortizes across every future request.
  serve::ServerOptions sopts;
  sopts.max_queue = kRequests;
  sopts.max_batch = kSessions;
  sopts.dispatchers = 1;
  serve::ConvServer server(sopts);
  serve::PlanSpec pspec;
  pspec.ctx = &ctx;
  pspec.backend = bfv::PolyMulBackend::kApproxFft;
  pspec.approx_config = approx_cfg;
  pspec.protocol_seed = kSeed;
  pspec.weights = weights;
  pspec.stride = 1;
  pspec.pad = 1;
  pspec.in_h = 12;
  pspec.in_w = 12;
  const serve::PlanId plan = server.register_plan(pspec);

  std::vector<serve::ConvFuture> futures(kRequests);
  const Clock::time_point batched_start = Clock::now();
  {
    std::vector<std::thread> sessions;
    for (std::size_t s = 0; s < kSessions; ++s) {
      sessions.emplace_back([&, s] {
        for (std::size_t r = 0; r < kRequestsPerSession; ++r) {
          const std::size_t i = s * kRequestsPerSession + r;
          serve::SubmitOptions opts;
          opts.stream = i;
          futures[i] = server.submit(plan, inputs[i], opts);
        }
      });
    }
    for (auto& t : sessions) t.join();
  }
  server.drain();
  const double batched_s = seconds_since(batched_start);

  // Bit-identity gate: a throughput number for wrong results is worthless.
  for (std::size_t i = 0; i < kRequests; ++i) {
    if (futures[i].state() != serve::RequestState::kDone ||
        futures[i].result().client_share.data() != serial_results[i].client_share.data() ||
        futures[i].result().server_share.data() != serial_results[i].server_share.data()) {
      std::fprintf(stderr, "bench_serve: request %zu not bit-identical to serial run\n", i);
      return 1;
    }
  }

  const double serial_ns = serial_s * 1e9 / static_cast<double>(kRequests);
  const double batched_ns = batched_s * 1e9 / static_cast<double>(kRequests);
  const double ratio = batched_ns / serial_ns;
  const auto stats = server.metrics().plan_batches().at(plan);

  std::printf("serial   (per-request weight transforms): %8.2f ms/req\n", serial_ns * 1e-6);
  std::printf("batched  (plan-cached, %zu dispatch(es)):  %8.2f ms/req\n",
              static_cast<std::size_t>(stats.batches), batched_ns * 1e-6);
  std::printf("batched/serial ratio: %.3f  (speedup %.2fx; gate requires >= 1.5x)\n", ratio,
              1.0 / ratio);
  std::printf("mean batch size: %.2f, max %zu\n\n", stats.mean_batch(), stats.max_batch);

  if (ratio > 1.0 / 1.5) {
    std::fprintf(stderr, "bench_serve: batched speedup %.2fx below the 1.5x floor\n", 1.0 / ratio);
    return 1;
  }

  if (!json_path.empty()) {
    std::vector<benchjson::Record> records;
    records.push_back({"serve_serial_ns_per_req", serial_ns, "ns",
                       static_cast<std::int64_t>(kRequests)});
    records.push_back({"serve_batched_ns_per_req", batched_ns, "ns",
                       static_cast<std::int64_t>(kRequests)});
    records.push_back({"serve_batched_over_serial_ratio", ratio, "ratio",
                       static_cast<std::int64_t>(kRequests)});
    if (!benchjson::write_json(json_path, "bench_serve", records)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
