// Network-session serving throughput: pipelined NetworkServer sessions vs
// one-session-at-a-time serial execution (ARCHITECTURE.md §10).
//
// Scenario: 4 concurrent private-inference sessions run the same
// resnet18-like stack (stem, two residual stages, strided downsample, FC
// head). The sequential baseline runs each session through
// run_network_serial — a bare ConvRunner per session, paying the full
// weight-transform phase for every conv layer of every session. The served
// path lowers the stack to a NetworkProgram once (each conv layer's plan
// registered and its weight spectra prepared up front, deduplicated across
// sessions) and starts all sessions together, so layer k of session A
// batches with layer k of session B and each request pays only the
// input-dependent phases. With weight transforms ~70% of an approximate-FFT
// HConv (bench_fig1_profile), the pipelined path must clear >= 1.5x — the
// benchdiff gate on the committed BENCH_network_pr6.json enforces it
// (ratio record, lower is better).
//
// Determinism first: session s uses stream base s * kSessionStreamStride on
// both paths, and the bench *asserts* every recorded layer output (and the
// final features/logits) of every pipelined session is bit-identical to its
// serial run before reporting any number.
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_json.hpp"
#include "bfv/context.hpp"
#include "core/flash_accelerator.hpp"
#include "serve/network_session.hpp"
#include "tensor/quant.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flash;

  const std::string json_path = benchjson::extract_json_path(argc, argv);

  constexpr std::size_t kSessions = 4;
  constexpr std::uint64_t kSeed = 20250808;

  // FLASH datapath (approximate FXP FFT): the design point whose per-request
  // weight-transform share the session layer exists to amortize.
  const bfv::BfvParams params = bfv::BfvParams::create(2048, 17, 44);
  bfv::BfvContext ctx(params);
  const fft::FxpFftConfig approx_cfg = core::high_accuracy_approx_config(params.n, params.t);

  std::mt19937_64 rng(11);
  const tensor::LayerStack stack = tensor::LayerStack::resnet18_like(3, 4, 8, 4, 4, 4, rng);
  std::size_t conv_layers = 0;
  for (const auto& l : stack.layers) {
    if (l.kind == tensor::NetLayer::Kind::kConv) ++conv_layers;
  }
  std::vector<tensor::Tensor3> inputs;
  for (std::size_t s = 0; s < kSessions; ++s) {
    inputs.push_back(tensor::random_activations(3, 8, 8, 4, rng));
  }

  std::printf("=== network serve: pipelined sessions vs serial per-session ===\n\n");
  std::printf("network: resnet18-like 3ch 8x8 -> 4 classes, %zu layers (%zu conv); "
              "backend approx-fft (N=%zu); %zu sessions\n\n",
              stack.layers.size(), conv_layers, params.n, kSessions);

  // --- Baseline: sessions one after another, each with its own runner (full
  // weight transforms per conv layer per session). Also the bit-identity
  // reference for the served path.
  std::vector<tensor::NetworkResult> serial_results(kSessions);
  std::vector<std::vector<tensor::Tensor3>> serial_outputs(kSessions);
  const Clock::time_point serial_start = Clock::now();
  for (std::size_t s = 0; s < kSessions; ++s) {
    serial_results[s] = serve::run_network_serial(
        stack, ctx, bfv::PolyMulBackend::kApproxFft, approx_cfg, kSeed, inputs[s],
        s * serve::kSessionStreamStride, &serial_outputs[s]);
  }
  const double serial_s = seconds_since(serial_start);

  // --- Served: program lowered once (plan prep outside the timed window —
  // the once-per-network cost the server amortizes), then all sessions start
  // together and pipeline through one dispatcher.
  serve::ServerOptions sopts;
  sopts.max_queue = kSessions * conv_layers;
  sopts.max_batch = kSessions;
  sopts.dispatchers = 1;
  serve::ConvServer server(sopts);
  serve::NetworkServer net(server);
  const auto program = std::make_shared<const serve::NetworkProgram>(serve::NetworkProgram::build(
      server, stack, ctx, bfv::PolyMulBackend::kApproxFft, approx_cfg, kSeed,
      tensor::Shape3{3, 8, 8}));

  std::vector<serve::NetworkSession> sessions(kSessions);
  const Clock::time_point piped_start = Clock::now();
  for (std::size_t s = 0; s < kSessions; ++s) {
    serve::SessionOptions opts;
    opts.stream_base = s * serve::kSessionStreamStride;
    opts.record_layer_outputs = true;
    sessions[s] = net.start(program, inputs[s], opts);
  }
  net.run_to_completion();
  const double piped_s = seconds_since(piped_start);

  // Bit-identity gate: a throughput number for wrong results is worthless.
  for (std::size_t s = 0; s < kSessions; ++s) {
    if (sessions[s].state() != serve::SessionState::kCompleted) {
      std::fprintf(stderr, "bench_network_serve: session %zu not completed: %s\n", s,
                   sessions[s].error().c_str());
      return 1;
    }
    const auto outputs = sessions[s].layer_outputs();
    if (outputs.size() != serial_outputs[s].size()) {
      std::fprintf(stderr, "bench_network_serve: session %zu layer count mismatch\n", s);
      return 1;
    }
    for (std::size_t l = 0; l < outputs.size(); ++l) {
      if (outputs[l].data() != serial_outputs[s][l].data()) {
        std::fprintf(stderr,
                     "bench_network_serve: session %zu layer %zu not bit-identical to serial\n", s,
                     l);
        return 1;
      }
    }
    if (sessions[s].features().data() != serial_results[s].features.data() ||
        sessions[s].has_logits() != serial_results[s].has_logits ||
        (sessions[s].has_logits() && sessions[s].logits() != serial_results[s].logits)) {
      std::fprintf(stderr, "bench_network_serve: session %zu features/logits mismatch\n", s);
      return 1;
    }
  }

  const double serial_ns = serial_s * 1e9 / static_cast<double>(kSessions);
  const double piped_ns = piped_s * 1e9 / static_cast<double>(kSessions);
  const double ratio = piped_ns / serial_ns;

  std::printf("sequential (per-session weight transforms): %8.2f ms/session\n", serial_ns * 1e-6);
  std::printf("pipelined  (shared program, plan-batched):  %8.2f ms/session\n", piped_ns * 1e-6);
  std::printf("pipelined/sequential ratio: %.3f  (speedup %.2fx; gate requires >= 1.5x)\n", ratio,
              1.0 / ratio);

  if (ratio > 1.0 / 1.5) {
    std::fprintf(stderr, "bench_network_serve: pipelined speedup %.2fx below the 1.5x floor\n",
                 1.0 / ratio);
    return 1;
  }

  if (!json_path.empty()) {
    std::vector<benchjson::Record> records;
    records.push_back({"network_serve_sequential_ns_per_session", serial_ns, "ns",
                       static_cast<std::int64_t>(kSessions)});
    records.push_back({"network_serve_pipelined_ns_per_session", piped_ns, "ns",
                       static_cast<std::int64_t>(kSessions)});
    records.push_back({"network_serve_pipelined_over_sequential_ratio", ratio, "ratio",
                       static_cast<std::int64_t>(kSessions)});
    if (!benchjson::write_json(json_path, "bench_network_serve", records)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
