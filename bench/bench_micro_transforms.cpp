// CPU microbenchmarks (google-benchmark): the software cost of the
// transforms FLASH accelerates — exact NTT, double FFT, the bit-accurate
// approximate FXP FFT, the sparse dataflow executor, and a full ct x pt
// multiplication per backend.
#include <benchmark/benchmark.h>

#include <random>
#include <span>
#include <string>

#include "bench_json.hpp"
#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "core/flash_accelerator.hpp"
#include "core/scratch.hpp"
#include "fft/negacyclic.hpp"
#include "hemath/ntt.hpp"
#include "hemath/pointwise.hpp"
#include "hemath/primes.hpp"
#include "hemath/shoup_ntt.hpp"
#include "hemath/simd.hpp"
#include "sparsefft/executor.hpp"

namespace {

using namespace flash;

void BM_NttForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::NttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  for (auto _ : state) {
    std::vector<hemath::u64> b = a;
    tables.forward(b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_NttForward)->Arg(2048)->Arg(4096);

void BM_ShoupNttForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::ShoupNttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  for (auto _ : state) {
    std::vector<hemath::u64> b = a;
    tables.forward(b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_ShoupNttForward)->Arg(2048)->Arg(4096);

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::NegacyclicFft fft(n);
  std::mt19937_64 rng(2);
  std::vector<double> a(n);
  for (auto& v : a) v = static_cast<double>(static_cast<int>(rng() % 255) - 127);
  for (auto _ : state) {
    auto spec = fft.forward(a);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FftForward)->Arg(2048)->Arg(4096);

void BM_FxpFftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 72; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  for (auto _ : state) {
    auto spec = fxp.forward(a);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FxpFftForward)->Arg(2048)->Arg(4096);

/// Same transform with the SIMD level pinned to scalar: the vectorization
/// win is BM_FxpFftForward vs this, in one binary.
void BM_FxpFftForwardScalar(benchmark::State& state) {
  hemath::simd::ScopedSimdLevel scalar(hemath::simd::SimdLevel::kScalar);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 72; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  for (auto _ : state) {
    auto spec = fxp.forward(a);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FxpFftForwardScalar)->Arg(2048)->Arg(4096);

/// Steady-state hot path: caller-owned output + thread scratch arena, zero
/// heap allocations per iteration after warmup.
void BM_FxpFftForwardInto(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 72; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  std::vector<fft::cplx> spec(n / 2);
  core::ScratchArena& arena = core::thread_scratch();
  fxp.forward_into(a, spec, nullptr, &arena);  // warm the arena
  for (auto _ : state) {
    fxp.forward_into(a, spec, nullptr, &arena);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FxpFftForwardInto)->Arg(2048)->Arg(4096);

/// Batched SoA NTT: 8 polynomials per call (the AVX-512 group size; on an
/// AVX2 box this runs as two 4-lane groups). Reported time is per call, i.e.
/// per 8 transforms — compare against 8x BM_NttForward or the Singles
/// variant below.
void BM_NttForwardBatch8(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::NttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<std::vector<hemath::u64>> polys(kBatch);
  for (auto& p : polys) p = sampler.uniform_poly(q, n).coeffs();
  std::vector<std::vector<hemath::u64>> work = polys;
  std::vector<hemath::u64*> ptrs(kBatch);
  core::ScratchArena& arena = core::thread_scratch();
  for (auto _ : state) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      work[b] = polys[b];
      ptrs[b] = work[b].data();
    }
    tables.forward_batch_into(ptrs, &arena);
    benchmark::DoNotOptimize(work[0].data());
  }
}
BENCHMARK(BM_NttForwardBatch8)->Arg(2048)->Arg(4096);

/// The same 8 transforms as a loop of single calls: the SoA win is
/// BM_NttForwardBatch8 vs this, in one binary.
void BM_NttForwardBatch8Singles(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::NttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<std::vector<hemath::u64>> polys(kBatch);
  for (auto& p : polys) p = sampler.uniform_poly(q, n).coeffs();
  std::vector<std::vector<hemath::u64>> work = polys;
  for (auto _ : state) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      work[b] = polys[b];
      tables.forward(work[b]);
    }
    benchmark::DoNotOptimize(work[0].data());
  }
}
BENCHMARK(BM_NttForwardBatch8Singles)->Arg(2048)->Arg(4096);

void BM_ShoupNttForwardBatch8(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::ShoupNttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<std::vector<hemath::u64>> polys(kBatch);
  for (auto& p : polys) p = sampler.uniform_poly(q, n).coeffs();
  std::vector<std::vector<hemath::u64>> work = polys;
  std::vector<hemath::u64*> ptrs(kBatch);
  core::ScratchArena& arena = core::thread_scratch();
  for (auto _ : state) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      work[b] = polys[b];
      ptrs[b] = work[b].data();
    }
    tables.forward_batch_into(ptrs, &arena);
    benchmark::DoNotOptimize(work[0].data());
  }
}
BENCHMARK(BM_ShoupNttForwardBatch8)->Arg(2048)->Arg(4096);

/// Batched FXP FFT (negacyclic weight transform datapath), 8 lanes per call.
void BM_FxpFftForwardBatch8Into(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<std::vector<double>> a(kBatch, std::vector<double>(n, 0.0));
  for (auto& lane : a) {
    for (int i = 0; i < 72; ++i) lane[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  }
  std::vector<std::vector<fft::cplx>> spec(kBatch, std::vector<fft::cplx>(n / 2));
  std::vector<const double*> a_ptrs(kBatch);
  std::vector<fft::cplx*> spec_ptrs(kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) {
    a_ptrs[b] = a[b].data();
    spec_ptrs[b] = spec[b].data();
  }
  core::ScratchArena& arena = core::thread_scratch();
  fxp.forward_batch_into(std::span<const double* const>(a_ptrs),
                         std::span<fft::cplx* const>(spec_ptrs), nullptr, &arena);  // warm
  for (auto _ : state) {
    fxp.forward_batch_into(std::span<const double* const>(a_ptrs),
                           std::span<fft::cplx* const>(spec_ptrs), nullptr, &arena);
    benchmark::DoNotOptimize(spec[0].data());
  }
}
BENCHMARK(BM_FxpFftForwardBatch8Into)->Arg(2048)->Arg(4096);

void BM_PointwiseMulmod(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::Sampler sampler(7);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> c(n);
  for (auto _ : state) {
    hemath::pointwise_mulmod(a.data(), b.data(), c.data(), n, q);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_PointwiseMulmod)->Arg(2048)->Arg(4096);

void BM_PointwiseMulmodScalar(benchmark::State& state) {
  hemath::simd::ScopedSimdLevel scalar(hemath::simd::SimdLevel::kScalar);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::Sampler sampler(7);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> c(n);
  for (auto _ : state) {
    hemath::pointwise_mulmod(a.data(), b.data(), c.data(), n, q);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_PointwiseMulmodScalar)->Arg(2048)->Arg(4096);

void BM_SparseExecute(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0)) / 2;
  std::vector<std::size_t> pos;
  for (std::size_t c = 0; c < 8; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) pos.push_back((c * 256 + i * 16 + j) % m);
    }
  }
  sparsefft::SparsityPattern pattern(m, std::move(pos));
  sparsefft::SparseFftPlan plan(m, pattern);
  std::vector<fft::cplx> input(m, {0.0, 0.0});
  std::mt19937_64 rng(4);
  for (std::size_t p : pattern.nonzeros()) input[p] = {double(int(rng() % 15) - 7), 0.0};
  for (auto _ : state) {
    auto out = sparsefft::execute(plan, input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SparseExecute)->Arg(2048)->Arg(4096);

void BM_MultiplyPlain(benchmark::State& state) {
  static const bfv::BfvParams params = bfv::BfvParams::create(2048, 18, 48);
  static bfv::BfvContext ctx(params);
  static hemath::Sampler sampler(5);
  static bfv::KeyGenerator keygen(ctx, sampler);
  static const bfv::SecretKey sk = keygen.secret_key();
  static const bfv::PublicKey pk = keygen.public_key(sk);
  static bfv::Encryptor enc(ctx, sampler);

  const auto backend = static_cast<bfv::PolyMulBackend>(state.range(0));
  std::optional<fft::FxpFftConfig> cfg;
  if (backend == bfv::PolyMulBackend::kApproxFft) {
    cfg = core::default_approx_config(params.n, params.t);
  }
  bfv::Evaluator ev(ctx, backend, cfg);

  std::mt19937_64 rng(6);
  std::vector<hemath::i64> va(params.n);
  for (auto& v : va) v = static_cast<hemath::i64>(rng() % 16);
  std::vector<hemath::i64> vw(params.n, 0);
  for (int i = 0; i < 72; ++i) vw[rng() % params.n] = static_cast<hemath::i64>(rng() % 15) - 7;

  const bfv::Ciphertext ct = enc.encrypt(ctx.encode_signed(va), pk);
  const bfv::PlainSpectrum spec = ev.transform_plain(ctx.encode_signed(vw));
  for (auto _ : state) {
    bfv::Ciphertext out = ev.multiply_plain(ct, spec);
    benchmark::DoNotOptimize(out.c0.coeffs().data());
  }
}
BENCHMARK(BM_MultiplyPlain)
    ->Arg(static_cast<int>(bfv::PolyMulBackend::kNtt))
    ->Arg(static_cast<int>(bfv::PolyMulBackend::kFft))
    ->Arg(static_cast<int>(bfv::PolyMulBackend::kApproxFft));

}  // namespace

// --batch restricts the run to the batched-transform benchmarks — the record
// set the committed BENCH_batch_pr7.json baseline gates in CI. Sugar for
// --benchmark_filter=Batch that survives baseline re-records verbatim.
int main(int argc, char** argv) {
  static char filter_arg[] = "--benchmark_filter=Batch";
  std::vector<char*> args;
  bool batch_only = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--batch") {
      batch_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (batch_only) args.push_back(filter_arg);
  args.push_back(nullptr);
  int new_argc = static_cast<int>(args.size()) - 1;
  return flash::benchjson::run_benchmarks(new_argc, args.data());
}
