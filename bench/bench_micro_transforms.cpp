// CPU microbenchmarks (google-benchmark): the software cost of the
// transforms FLASH accelerates — exact NTT, double FFT, the bit-accurate
// approximate FXP FFT, the sparse dataflow executor, and a full ct x pt
// multiplication per backend.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_json.hpp"
#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "core/flash_accelerator.hpp"
#include "core/scratch.hpp"
#include "fft/negacyclic.hpp"
#include "hemath/ntt.hpp"
#include "hemath/pointwise.hpp"
#include "hemath/primes.hpp"
#include "hemath/shoup_ntt.hpp"
#include "hemath/simd.hpp"
#include "sparsefft/executor.hpp"

namespace {

using namespace flash;

void BM_NttForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::NttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  for (auto _ : state) {
    std::vector<hemath::u64> b = a;
    tables.forward(b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_NttForward)->Arg(2048)->Arg(4096);

void BM_ShoupNttForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::ShoupNttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  for (auto _ : state) {
    std::vector<hemath::u64> b = a;
    tables.forward(b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_ShoupNttForward)->Arg(2048)->Arg(4096);

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::NegacyclicFft fft(n);
  std::mt19937_64 rng(2);
  std::vector<double> a(n);
  for (auto& v : a) v = static_cast<double>(static_cast<int>(rng() % 255) - 127);
  for (auto _ : state) {
    auto spec = fft.forward(a);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FftForward)->Arg(2048)->Arg(4096);

void BM_FxpFftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 72; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  for (auto _ : state) {
    auto spec = fxp.forward(a);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FxpFftForward)->Arg(2048)->Arg(4096);

/// Same transform with the SIMD level pinned to scalar: the vectorization
/// win is BM_FxpFftForward vs this, in one binary.
void BM_FxpFftForwardScalar(benchmark::State& state) {
  hemath::simd::ScopedSimdLevel scalar(hemath::simd::SimdLevel::kScalar);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 72; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  for (auto _ : state) {
    auto spec = fxp.forward(a);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FxpFftForwardScalar)->Arg(2048)->Arg(4096);

/// Steady-state hot path: caller-owned output + thread scratch arena, zero
/// heap allocations per iteration after warmup.
void BM_FxpFftForwardInto(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 72; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  std::vector<fft::cplx> spec(n / 2);
  core::ScratchArena& arena = core::thread_scratch();
  fxp.forward_into(a, spec, nullptr, &arena);  // warm the arena
  for (auto _ : state) {
    fxp.forward_into(a, spec, nullptr, &arena);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FxpFftForwardInto)->Arg(2048)->Arg(4096);

void BM_PointwiseMulmod(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::Sampler sampler(7);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> c(n);
  for (auto _ : state) {
    hemath::pointwise_mulmod(a.data(), b.data(), c.data(), n, q);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_PointwiseMulmod)->Arg(2048)->Arg(4096);

void BM_PointwiseMulmodScalar(benchmark::State& state) {
  hemath::simd::ScopedSimdLevel scalar(hemath::simd::SimdLevel::kScalar);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::Sampler sampler(7);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> c(n);
  for (auto _ : state) {
    hemath::pointwise_mulmod(a.data(), b.data(), c.data(), n, q);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_PointwiseMulmodScalar)->Arg(2048)->Arg(4096);

void BM_SparseExecute(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0)) / 2;
  std::vector<std::size_t> pos;
  for (std::size_t c = 0; c < 8; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) pos.push_back((c * 256 + i * 16 + j) % m);
    }
  }
  sparsefft::SparsityPattern pattern(m, std::move(pos));
  sparsefft::SparseFftPlan plan(m, pattern);
  std::vector<fft::cplx> input(m, {0.0, 0.0});
  std::mt19937_64 rng(4);
  for (std::size_t p : pattern.nonzeros()) input[p] = {double(int(rng() % 15) - 7), 0.0};
  for (auto _ : state) {
    auto out = sparsefft::execute(plan, input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SparseExecute)->Arg(2048)->Arg(4096);

void BM_MultiplyPlain(benchmark::State& state) {
  static const bfv::BfvParams params = bfv::BfvParams::create(2048, 18, 48);
  static bfv::BfvContext ctx(params);
  static hemath::Sampler sampler(5);
  static bfv::KeyGenerator keygen(ctx, sampler);
  static const bfv::SecretKey sk = keygen.secret_key();
  static const bfv::PublicKey pk = keygen.public_key(sk);
  static bfv::Encryptor enc(ctx, sampler);

  const auto backend = static_cast<bfv::PolyMulBackend>(state.range(0));
  std::optional<fft::FxpFftConfig> cfg;
  if (backend == bfv::PolyMulBackend::kApproxFft) {
    cfg = core::default_approx_config(params.n, params.t);
  }
  bfv::Evaluator ev(ctx, backend, cfg);

  std::mt19937_64 rng(6);
  std::vector<hemath::i64> va(params.n);
  for (auto& v : va) v = static_cast<hemath::i64>(rng() % 16);
  std::vector<hemath::i64> vw(params.n, 0);
  for (int i = 0; i < 72; ++i) vw[rng() % params.n] = static_cast<hemath::i64>(rng() % 15) - 7;

  const bfv::Ciphertext ct = enc.encrypt(ctx.encode_signed(va), pk);
  const bfv::PlainSpectrum spec = ev.transform_plain(ctx.encode_signed(vw));
  for (auto _ : state) {
    bfv::Ciphertext out = ev.multiply_plain(ct, spec);
    benchmark::DoNotOptimize(out.c0.coeffs().data());
  }
}
BENCHMARK(BM_MultiplyPlain)
    ->Arg(static_cast<int>(bfv::PolyMulBackend::kNtt))
    ->Arg(static_cast<int>(bfv::PolyMulBackend::kFft))
    ->Arg(static_cast<int>(bfv::PolyMulBackend::kApproxFft));

}  // namespace

FLASH_BENCH_JSON_MAIN()
