// CPU microbenchmarks (google-benchmark): the software cost of the
// transforms FLASH accelerates — exact NTT, double FFT, the bit-accurate
// approximate FXP FFT, the sparse dataflow executor, and a full ct x pt
// multiplication per backend.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <span>
#include <string>

#include "bench_json.hpp"
#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "core/flash_accelerator.hpp"
#include "core/scratch.hpp"
#include "fft/negacyclic.hpp"
#include "hemath/ntt.hpp"
#include "hemath/pointwise.hpp"
#include "hemath/pow2.hpp"
#include "hemath/primes.hpp"
#include "hemath/shoup_ntt.hpp"
#include "hemath/simd.hpp"
#include "sparsefft/executor.hpp"

namespace {

using namespace flash;

void BM_NttForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::NttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  for (auto _ : state) {
    std::vector<hemath::u64> b = a;
    tables.forward(b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_NttForward)->Arg(2048)->Arg(4096);

void BM_ShoupNttForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::ShoupNttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  for (auto _ : state) {
    std::vector<hemath::u64> b = a;
    tables.forward(b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_ShoupNttForward)->Arg(2048)->Arg(4096);

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::NegacyclicFft fft(n);
  std::mt19937_64 rng(2);
  std::vector<double> a(n);
  for (auto& v : a) v = static_cast<double>(static_cast<int>(rng() % 255) - 127);
  for (auto _ : state) {
    auto spec = fft.forward(a);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FftForward)->Arg(2048)->Arg(4096);

void BM_FxpFftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 72; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  for (auto _ : state) {
    auto spec = fxp.forward(a);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FxpFftForward)->Arg(2048)->Arg(4096);

/// Same transform with the SIMD level pinned to scalar: the vectorization
/// win is BM_FxpFftForward vs this, in one binary.
void BM_FxpFftForwardScalar(benchmark::State& state) {
  hemath::simd::ScopedSimdLevel scalar(hemath::simd::SimdLevel::kScalar);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 72; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  for (auto _ : state) {
    auto spec = fxp.forward(a);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FxpFftForwardScalar)->Arg(2048)->Arg(4096);

/// Steady-state hot path: caller-owned output + thread scratch arena, zero
/// heap allocations per iteration after warmup.
void BM_FxpFftForwardInto(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 72; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  std::vector<fft::cplx> spec(n / 2);
  core::ScratchArena& arena = core::thread_scratch();
  fxp.forward_into(a, spec, nullptr, &arena);  // warm the arena
  for (auto _ : state) {
    fxp.forward_into(a, spec, nullptr, &arena);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FxpFftForwardInto)->Arg(2048)->Arg(4096);

/// Batched SoA NTT: 8 polynomials per call (the AVX-512 group size; on an
/// AVX2 box this runs as two 4-lane groups). Reported time is per call, i.e.
/// per 8 transforms — compare against 8x BM_NttForward or the Singles
/// variant below.
void BM_NttForwardBatch8(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::NttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<std::vector<hemath::u64>> polys(kBatch);
  for (auto& p : polys) p = sampler.uniform_poly(q, n).coeffs();
  std::vector<std::vector<hemath::u64>> work = polys;
  std::vector<hemath::u64*> ptrs(kBatch);
  core::ScratchArena& arena = core::thread_scratch();
  for (auto _ : state) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      work[b] = polys[b];
      ptrs[b] = work[b].data();
    }
    tables.forward_batch_into(ptrs, &arena);
    benchmark::DoNotOptimize(work[0].data());
  }
}
BENCHMARK(BM_NttForwardBatch8)->Arg(2048)->Arg(4096);

/// The same 8 transforms as a loop of single calls: the SoA win is
/// BM_NttForwardBatch8 vs this, in one binary.
void BM_NttForwardBatch8Singles(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::NttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<std::vector<hemath::u64>> polys(kBatch);
  for (auto& p : polys) p = sampler.uniform_poly(q, n).coeffs();
  std::vector<std::vector<hemath::u64>> work = polys;
  for (auto _ : state) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      work[b] = polys[b];
      tables.forward(work[b]);
    }
    benchmark::DoNotOptimize(work[0].data());
  }
}
BENCHMARK(BM_NttForwardBatch8Singles)->Arg(2048)->Arg(4096);

void BM_ShoupNttForwardBatch8(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::ShoupNttTables tables(q, n);
  hemath::Sampler sampler(1);
  std::vector<std::vector<hemath::u64>> polys(kBatch);
  for (auto& p : polys) p = sampler.uniform_poly(q, n).coeffs();
  std::vector<std::vector<hemath::u64>> work = polys;
  std::vector<hemath::u64*> ptrs(kBatch);
  core::ScratchArena& arena = core::thread_scratch();
  for (auto _ : state) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      work[b] = polys[b];
      ptrs[b] = work[b].data();
    }
    tables.forward_batch_into(ptrs, &arena);
    benchmark::DoNotOptimize(work[0].data());
  }
}
BENCHMARK(BM_ShoupNttForwardBatch8)->Arg(2048)->Arg(4096);

/// Batched FXP FFT (negacyclic weight transform datapath), 8 lanes per call.
void BM_FxpFftForwardBatch8Into(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 18));
  std::mt19937_64 rng(3);
  std::vector<std::vector<double>> a(kBatch, std::vector<double>(n, 0.0));
  for (auto& lane : a) {
    for (int i = 0; i < 72; ++i) lane[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  }
  std::vector<std::vector<fft::cplx>> spec(kBatch, std::vector<fft::cplx>(n / 2));
  std::vector<const double*> a_ptrs(kBatch);
  std::vector<fft::cplx*> spec_ptrs(kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) {
    a_ptrs[b] = a[b].data();
    spec_ptrs[b] = spec[b].data();
  }
  core::ScratchArena& arena = core::thread_scratch();
  fxp.forward_batch_into(std::span<const double* const>(a_ptrs),
                         std::span<fft::cplx* const>(spec_ptrs), nullptr, &arena);  // warm
  for (auto _ : state) {
    fxp.forward_batch_into(std::span<const double* const>(a_ptrs),
                           std::span<fft::cplx* const>(spec_ptrs), nullptr, &arena);
    benchmark::DoNotOptimize(spec[0].data());
  }
}
BENCHMARK(BM_FxpFftForwardBatch8Into)->Arg(2048)->Arg(4096);

void BM_PointwiseMulmod(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::Sampler sampler(7);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> c(n);
  for (auto _ : state) {
    hemath::pointwise_mulmod(a.data(), b.data(), c.data(), n, q);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_PointwiseMulmod)->Arg(2048)->Arg(4096);

void BM_PointwiseMulmodScalar(benchmark::State& state) {
  hemath::simd::ScopedSimdLevel scalar(hemath::simd::SimdLevel::kScalar);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  hemath::Sampler sampler(7);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> c(n);
  for (auto _ : state) {
    hemath::pointwise_mulmod(a.data(), b.data(), c.data(), n, q);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_PointwiseMulmodScalar)->Arg(2048)->Arg(4096);

// Z_{2^k} pointwise mulmod at the same 49-bit width as the Barrett benches
// above — the headline micro claim of the pow2 backend is that one u64
// multiply plus one AND beats the Barrett multiply-high chain at equal width
// (the --backend pow2 self-gate in main() enforces it).
void BM_PointwiseMulmodPow2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::Pow2Ring ring(49);
  hemath::Sampler sampler(7);
  std::vector<hemath::u64> a = sampler.uniform_poly(hemath::u64{1} << 49, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(hemath::u64{1} << 49, n).coeffs();
  std::vector<hemath::u64> c(n);
  for (auto _ : state) {
    hemath::pointwise_mulmod_pow2(a.data(), b.data(), c.data(), n, ring);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_PointwiseMulmodPow2)->Arg(2048)->Arg(4096);

void BM_PointwiseMulmodPow2Scalar(benchmark::State& state) {
  hemath::simd::ScopedSimdLevel scalar(hemath::simd::SimdLevel::kScalar);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::Pow2Ring ring(49);
  hemath::Sampler sampler(7);
  std::vector<hemath::u64> a = sampler.uniform_poly(hemath::u64{1} << 49, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(hemath::u64{1} << 49, n).coeffs();
  std::vector<hemath::u64> c(n);
  for (auto _ : state) {
    hemath::pointwise_mulmod_pow2(a.data(), b.data(), c.data(), n, ring);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_PointwiseMulmodPow2Scalar)->Arg(2048)->Arg(4096);

// Full negacyclic Karatsuba product — the kPow2 engine's multiply cost (the
// backend has no spectral fast path; ARCHITECTURE.md section 14).
void BM_NegacyclicPow2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const hemath::Pow2Ring ring(49);
  hemath::Sampler sampler(8);
  std::vector<hemath::u64> a = sampler.uniform_poly(hemath::u64{1} << 49, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(hemath::u64{1} << 49, n).coeffs();
  std::vector<hemath::u64> c(n);
  core::ScratchArena& arena = core::thread_scratch();
  hemath::negacyclic_mul_pow2_into(a.data(), b.data(), c.data(), n, ring, &arena);  // warm
  for (auto _ : state) {
    hemath::negacyclic_mul_pow2_into(a.data(), b.data(), c.data(), n, ring, &arena);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_NegacyclicPow2)->Arg(2048)->Arg(4096);

void BM_SparseExecute(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0)) / 2;
  std::vector<std::size_t> pos;
  for (std::size_t c = 0; c < 8; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) pos.push_back((c * 256 + i * 16 + j) % m);
    }
  }
  sparsefft::SparsityPattern pattern(m, std::move(pos));
  sparsefft::SparseFftPlan plan(m, pattern);
  std::vector<fft::cplx> input(m, {0.0, 0.0});
  std::mt19937_64 rng(4);
  for (std::size_t p : pattern.nonzeros()) input[p] = {double(int(rng() % 15) - 7), 0.0};
  for (auto _ : state) {
    auto out = sparsefft::execute(plan, input);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SparseExecute)->Arg(2048)->Arg(4096);

void BM_MultiplyPlain(benchmark::State& state) {
  static const bfv::BfvParams params = bfv::BfvParams::create(2048, 18, 48);
  static bfv::BfvContext ctx(params);
  static hemath::Sampler sampler(5);
  static bfv::KeyGenerator keygen(ctx, sampler);
  static const bfv::SecretKey sk = keygen.secret_key();
  static const bfv::PublicKey pk = keygen.public_key(sk);
  static bfv::Encryptor enc(ctx, sampler);

  const auto backend = static_cast<bfv::PolyMulBackend>(state.range(0));
  std::optional<fft::FxpFftConfig> cfg;
  if (backend == bfv::PolyMulBackend::kApproxFft) {
    cfg = core::default_approx_config(params.n, params.t);
  }
  bfv::Evaluator ev(ctx, backend, cfg);

  std::mt19937_64 rng(6);
  std::vector<hemath::i64> va(params.n);
  for (auto& v : va) v = static_cast<hemath::i64>(rng() % 16);
  std::vector<hemath::i64> vw(params.n, 0);
  for (int i = 0; i < 72; ++i) vw[rng() % params.n] = static_cast<hemath::i64>(rng() % 15) - 7;

  const bfv::Ciphertext ct = enc.encrypt(ctx.encode_signed(va), pk);
  const bfv::PlainSpectrum spec = ev.transform_plain(ctx.encode_signed(vw));
  for (auto _ : state) {
    bfv::Ciphertext out = ev.multiply_plain(ct, spec);
    benchmark::DoNotOptimize(out.c0.coeffs().data());
  }
}
BENCHMARK(BM_MultiplyPlain)
    ->Arg(static_cast<int>(bfv::PolyMulBackend::kNtt))
    ->Arg(static_cast<int>(bfv::PolyMulBackend::kFft))
    ->Arg(static_cast<int>(bfv::PolyMulBackend::kApproxFft));

// Self-gate for --backend pow2: at equal 49-bit width, the mask-reduce
// pointwise mulmod must beat the Barrett chain (one u64 mul + AND vs the
// multiply-high reduction). Exits non-zero on violation so the CI perf job
// fails even when the benchdiff ratios would tolerate the drift. Best-of-N
// wall-clock on the dispatched kernels; generous reps drown scheduler noise.
bool pow2_beats_barrett_at_equal_width() {
  using clock = std::chrono::steady_clock;
  const std::size_t n = 4096;
  const hemath::u64 q = hemath::find_ntt_prime(49, n);
  const hemath::Pow2Ring ring(49);
  hemath::Sampler sampler(7);
  std::vector<hemath::u64> a = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> b = sampler.uniform_poly(q, n).coeffs();
  std::vector<hemath::u64> c(n);
  const int reps = 2000;
  auto best_of = [&](auto&& body) {
    double best = 1e300;
    for (int trial = 0; trial < 5; ++trial) {
      const auto t0 = clock::now();
      for (int r = 0; r < reps; ++r) body();
      const auto t1 = clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };
  const double barrett = best_of([&] {
    hemath::pointwise_mulmod(a.data(), b.data(), c.data(), n, q);
    benchmark::DoNotOptimize(c.data());
  });
  const double pow2 = best_of([&] {
    hemath::pointwise_mulmod_pow2(a.data(), b.data(), c.data(), n, ring);
    benchmark::DoNotOptimize(c.data());
  });
  std::fprintf(stderr, "pow2-vs-barrett self-gate (n=%zu, 49-bit): barrett %.3f ms, pow2 %.3f ms\n",
               n, barrett * 1e3, pow2 * 1e3);
  return pow2 < barrett;
}

}  // namespace

// --batch restricts the run to the batched-transform benchmarks — the record
// set the committed BENCH_batch_pr7.json baseline gates in CI. Sugar for
// --benchmark_filter=Batch that survives baseline re-records verbatim.
// --backend pow2 likewise restricts to the Z_{2^k} benchmarks (the
// BENCH_pow2_pr10.json record set) and additionally runs the
// pow2-beats-Barrett self-gate before the measured run.
int main(int argc, char** argv) {
  static char filter_arg[] = "--benchmark_filter=Batch";
  static char pow2_filter_arg[] = "--benchmark_filter=Pow2";
  std::vector<char*> args;
  bool batch_only = false;
  bool pow2_only = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--batch") {
      batch_only = true;
    } else if (std::string(argv[i]) == "--backend" && i + 1 < argc &&
               std::string(argv[i + 1]) == "pow2") {
      pow2_only = true;
      ++i;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (batch_only) args.push_back(filter_arg);
  if (pow2_only) {
    args.push_back(pow2_filter_arg);
    if (!pow2_beats_barrett_at_equal_width()) {
      std::fprintf(stderr, "FAIL: pow2 pointwise mulmod did not beat Barrett at equal width\n");
      return 1;
    }
  }
  args.push_back(nullptr);
  int new_argc = static_cast<int>(args.size()) - 1;
  return flash::benchjson::run_benchmarks(new_argc, args.data());
}
