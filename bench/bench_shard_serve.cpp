// Sharded-serving throughput: ShardRouter over N forked workers vs one.
//
// Scenario (ARCHITECTURE.md §13): each worker process fronts one FLASH
// accelerator unit. An HConv request costs a short host-side phase (encode,
// mask streams, protocol bookkeeping) plus a long accelerator dwell — modeled
// here as WorkerOptions::dwell_ns, sized from the paper's accelerator-bound
// operating point. Host phases serialize on the CPU, but dwells overlap
// across worker processes, so routing the same request mix through 4 shards
// must clear >= 1.5x the single-shard throughput — the self-gate below and
// the benchdiff gate on the committed BENCH_shard_pr9.json both enforce it.
//
// Determinism is asserted before any number is reported: every routed result
// must be bit-identical to a bare ConvRunner run with the same stream base,
// at every shard count.
//
// Flags: --json <path> (machine-readable records), --dwell-us <n> (modeled
// accelerator dwell per request, default 4000).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bfv/context.hpp"
#include "protocol/conv_runner.hpp"
#include "shard/shard_router.hpp"
#include "tensor/quant.hpp"
#include "wire/wire_format.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t extract_dwell_us(int& argc, char** argv) {
  std::uint64_t dwell_us = 4000;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dwell-us" && i + 1 < argc) {
      dwell_us = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg.rfind("--dwell-us=", 0) == 0) {
      dwell_us = std::strtoull(arg.c_str() + 11, nullptr, 0);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return dwell_us;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flash;

  const std::string json_path = benchjson::extract_json_path(argc, argv);
  const std::uint64_t dwell_us = extract_dwell_us(argc, argv);

  constexpr std::size_t kMaxShards = 4;
  constexpr std::size_t kRequests = 48;

  // Small ring so the host-side phase is short relative to the modeled
  // accelerator dwell (the accelerator-bound regime sharding targets).
  const bfv::BfvParams params = bfv::BfvParams::create(256, 14, 42);
  bfv::BfvContext ctx(params);

  // Pick one plan per shard slot: scan protocol seeds until the content
  // hashes (FNV-1a over the encoded PlanSpecWire, the router's routing key)
  // cover residues 0..3 mod 4. Mod-2 coverage follows, so the same four
  // plans exercise every worker at every shard count.
  std::mt19937_64 rng(20250808);
  const tensor::Tensor4 weights = tensor::random_weights(2, 1, 3, 4, rng);
  std::vector<wire::PlanSpecWire> specs(kMaxShards);
  std::vector<bool> found(kMaxShards, false);
  std::size_t covered = 0;
  for (std::uint64_t seed = 1; covered < kMaxShards && seed < 4096; ++seed) {
    wire::PlanSpecWire spec;
    spec.params = params;
    spec.backend = bfv::PolyMulBackend::kNtt;
    spec.protocol_seed = seed;
    spec.stride = 1;
    spec.pad = 0;
    spec.in_h = 8;
    spec.in_w = 8;
    spec.weights = weights;
    wire::ByteWriter w;
    wire::encode(spec, w);
    const std::size_t slot = static_cast<std::size_t>(wire::fnv1a(w.bytes()) % kMaxShards);
    if (!found[slot]) {
      found[slot] = true;
      specs[slot] = spec;
      ++covered;
    }
  }
  if (covered < kMaxShards) {
    std::fprintf(stderr, "bench_shard_serve: could not cover all shard slots\n");
    return 1;
  }

  std::vector<tensor::Tensor3> inputs;
  for (std::size_t i = 0; i < kRequests; ++i) {
    inputs.push_back(tensor::random_activations(1, 8, 8, 4, rng));
  }

  std::printf("=== shard: ShardRouter over forked workers, modeled accelerator dwell ===\n\n");
  std::printf("layer: 1ch 8x8, 3x3 -> 2ch (N=%zu, ntt); %zu requests round-robin over "
              "%zu plans; dwell %llu us/request\n\n",
              params.n, kRequests, kMaxShards,
              static_cast<unsigned long long>(dwell_us));

  // Serial reference for the bit-identity gate (untimed; determinism is the
  // subject, not this loop's speed).
  std::vector<protocol::ConvRunnerResult> serial(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const wire::PlanSpecWire& spec = specs[i % kMaxShards];
    protocol::HConvProtocol proto(ctx, spec.backend, std::nullopt, spec.protocol_seed);
    protocol::ConvRunner runner(proto);
    serial[i] = runner.run(inputs[i], spec.weights, spec.stride, spec.pad,
                           static_cast<std::uint64_t>(i) << 32);
  }

  double ms_per_req[kMaxShards + 1] = {};
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    shard::RouterOptions ropts;
    ropts.shards = shards;
    ropts.worker_max_batch = 8;
    ropts.worker_dwell_ns = dwell_us * 1000;
    shard::ShardRouter router(ropts);

    std::vector<shard::ShardPlanId> plans;
    for (const wire::PlanSpecWire& spec : specs) {
      plans.push_back(router.register_plan(spec));
    }

    std::vector<shard::ShardFuture> futures;
    futures.reserve(kRequests);
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < kRequests; ++i) {
      shard::ShardSubmitOptions opts;
      opts.stream = i;
      futures.push_back(router.submit(plans[i % kMaxShards], inputs[i], opts));
    }
    router.drain();
    const double elapsed_s = seconds_since(start);

    for (std::size_t i = 0; i < kRequests; ++i) {
      if (futures[i].state() != shard::ShardRequestState::kDone ||
          futures[i].result().client_share.data() != serial[i].client_share.data() ||
          futures[i].result().server_share.data() != serial[i].server_share.data()) {
        std::fprintf(stderr,
                     "bench_shard_serve: request %zu at %zu shard(s) not bit-identical\n",
                     i, shards);
        return 1;
      }
    }
    ms_per_req[shards] = elapsed_s * 1e3 / static_cast<double>(kRequests);
    std::printf("%zu shard(s): %8.3f ms/req  (%.1f req/s)\n", shards, ms_per_req[shards],
                1e3 / ms_per_req[shards]);
  }

  const double speedup2 = ms_per_req[1] / ms_per_req[2];
  const double speedup4 = ms_per_req[1] / ms_per_req[4];
  std::printf("\nspeedup: %.2fx at 2 shards, %.2fx at 4 shards "
              "(gate requires >= 1.5x at 4)\n",
              speedup2, speedup4);

  if (speedup4 < 1.5) {
    std::fprintf(stderr, "bench_shard_serve: 4-shard speedup %.2fx below the 1.5x floor\n",
                 speedup4);
    return 1;
  }

  if (!json_path.empty()) {
    std::vector<benchjson::Record> records;
    const auto n = static_cast<std::int64_t>(kRequests);
    records.push_back({"shard_1_ms_per_req", ms_per_req[1], "ms", n});
    records.push_back({"shard_2_ms_per_req", ms_per_req[2], "ms", n});
    records.push_back({"shard_4_ms_per_req", ms_per_req[4], "ms", n});
    // Lower-is-better ratio record for the benchdiff gate (inverse speedup).
    records.push_back({"shard_1_over_4_inverse_speedup", 1.0 / speedup4, "ratio", n});
    if (!benchjson::write_json(json_path, "bench_shard_serve", records)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
