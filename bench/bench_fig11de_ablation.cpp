// Figure 11(d)(e) reproduction: ablation of the sparse and approximate
// optimizations on weight-transform energy during ResNet-50 / ResNet-18
// inference, plus the end-to-end HConv energy comparison against F1.
//
// Paper arms:
//   FFT(a)   — full-precision FP butterflies, dense dataflow (baseline 100%)
//   FXP FFT  — plain 27-bit fixed point, dense dataflow
//   sparse   — FP butterflies + skip/merge dataflow            (~10%)
//   approx   — CSD k=5 approximate butterflies, dense dataflow (~10%)
//   FLASH    — approx + sparse                                 (~1%)
// Overall: FLASH cuts HConv energy ~87% vs F1.
#include <cstdio>

#include "core/flash_accelerator.hpp"
#include "tensor/resnet.hpp"

namespace {

void ablate(const char* name, const std::vector<flash::tensor::LayerConfig>& layers) {
  using namespace flash;
  using namespace flash::accel;

  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  core::FlashAccelerator acc(params);

  // Aggregate workload with per-layer measured sparse fractions.
  TransformWorkload w;
  w.n = params.n;
  bool first = true;
  for (const auto& layer : layers) {
    const core::LayerPlan plan = acc.plan_layer(layer);
    if (first) {
      w = plan.workload;
      first = false;
    } else {
      w += plan.workload;
    }
  }

  const FlashConfig cfg = FlashConfig::paper_default();
  const double base = weight_transform_energy_j(cfg, w, WeightPath::kFpDense);
  struct Arm {
    const char* label;
    WeightPath path;
  };
  const Arm arms[] = {
      {"FFT(a): FP dense", WeightPath::kFpDense},
      {"FXP FFT (27b dense)", WeightPath::kFxpDense},
      {"sparse only (FP + skip/merge)", WeightPath::kFpSparse},
      {"approx only (CSD k=5 dense)", WeightPath::kApproxDense},
      {"FLASH (approx + sparse)", WeightPath::kApproxSparse},
  };
  std::printf("--- %s weight-transform energy (sparse fraction %.4f) ---\n", name,
              w.weight_mult_fraction);
  for (const Arm& arm : arms) {
    const double e = weight_transform_energy_j(cfg, w, arm.path);
    std::printf("  %-32s %10.4f mJ   %6.2f%%\n", arm.label, e * 1e3, 100.0 * e / base);
  }

  // End-to-end HConv energy vs F1 (all transforms + point-wise).
  const LatencyEnergy flash = flash_run(cfg, w, WeightPath::kApproxSparse);
  const LatencyEnergy f1 = f1_run(w);
  std::printf("  full HConv energy: FLASH %.2f mJ vs F1 %.2f mJ -> %.1f%% reduction\n\n",
              flash.joules * 1e3, f1.joules * 1e3, 100.0 * (1.0 - flash.joules / f1.joules));
}

}  // namespace

int main() {
  using namespace flash;
  std::printf("=== Fig. 11(d)(e): ablation of sparse & approximate optimizations ===\n\n");
  ablate("ResNet-50 (Fig. 11d)", tensor::resnet50_conv_layers());
  ablate("ResNet-18 (Fig. 11e)", tensor::resnet18_conv_layers());
  std::printf("paper shape: each optimization alone ~10%% of baseline, combined ~1%%;\n");
  std::printf("overall ~87%% HConv energy reduction vs F1.\n");
  return 0;
}
