// Figure 11(a) reproduction: multiplication count per polynomial
// multiplication at various weight sparsity levels, for three strategies:
//
//   * traditional butterfly dataflow (dense FFT of the weight polynomial);
//   * FLASH's sparse skip/merge dataflow;
//   * direct computation in the coefficient domain (nnz x N integer mults,
//     no transforms at all).
//
// As in the paper, counts are normalized to a single PolyMul of one layer:
// activation forward transforms and the inverse transform are amortized over
// the output channels that share them (out_c = 64 here), which is why the
// FFT-based strategies beat direct computation even at high sparsity.
#include <cstdio>

#include "sparsefft/planner.hpp"

int main() {
  using namespace flash::sparsefft;

  std::printf("=== Fig. 11(a): multiplication count vs weight sparsity (per PolyMul) ===\n\n");

  const std::size_t n = 4096;
  const std::size_t m = n / 2;
  const std::size_t out_channels = 64;  // amortization factor for shared transforms
  const PlanCost dense = SparseFftPlan::dense_cost(m);

  // Real multiplications of the shared (per-output-channel amortized) work:
  // 2 ciphertext forward FFTs + 2 inverse FFTs per PolyMul result, amortized,
  // plus the point-wise products (4 real mults per complex product).
  const double shared = (4.0 * static_cast<double>(dense.complex_mults) * 4.0) /
                            static_cast<double>(out_channels) +
                        4.0 * static_cast<double>(m);

  std::printf("%-12s %-10s %16s %16s %16s\n", "sparsity", "nnz", "direct coeff", "dense FFT",
              "sparse FFT");
  // Sweep sparsity by varying channels-per-polynomial and patch size
  // (stripe = patch area): 16x16 patches for the sparse regime, 8x8 for the
  // dense end, matching how channel packing trades patch size for density.
  struct Point {
    std::size_t stripe, width, channels;
  };
  const Point sweep[] = {
      {256, 16, 1}, {256, 16, 2}, {256, 16, 4}, {256, 16, 8},
      {64, 8, 8},   {64, 8, 16},  {64, 8, 24},  {64, 8, 31},
  };
  for (const Point& pt : sweep) {
    std::vector<std::size_t> pos;
    for (std::size_t c = 0; c < pt.channels; ++c) {
      for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) pos.push_back((c * pt.stripe + i * pt.width + j) % m);
      }
    }
    const SparsityPattern pattern(m, std::move(pos));
    const std::size_t nnz = pattern.weight();
    const double sparsity = 1.0 - static_cast<double>(nnz) / static_cast<double>(n);
    const SparseFftPlan plan(m, pattern);

    const double direct = static_cast<double>(nnz) * static_cast<double>(n);
    const double fft_dense = 4.0 * static_cast<double>(dense.complex_mults) + shared;
    const double fft_sparse = 4.0 * static_cast<double>(plan.cost().merged_mults) + shared;
    std::printf("%-12.4f %-10zu %16.0f %16.0f %16.0f\n", sparsity, nnz, direct, fft_dense,
                fft_sparse);
  }

  std::printf("\nshared per-PolyMul cost (amortized act FFT + inverse + point-wise): %.0f\n", shared);
  std::printf("paper shape: sparse dataflow < dense dataflow everywhere, and < direct\n");
  std::printf("coefficient-domain computation even at extreme sparsity (thanks to the\n");
  std::printf("activation-transform amortization across %zu output channels).\n", out_channels);
  return 0;
}
