// Table II reproduction: hardware cost comparison of modular multipliers vs
// the complex floating-point multiplier vs FLASH's approximate fixed-point
// shift-add multiplier.
//
// The first four rows are the calibration anchors (the paper's published
// synthesis results); the sweep below exercises the scaling laws the rest of
// the cost model relies on.
#include <cstdio>
#include <initializer_list>

#include "accel/memory.hpp"
#include "accel/unit_costs.hpp"

int main() {
  using namespace flash::accel;

  std::printf("=== Table II: multiplier hardware cost (28nm @ 1GHz) ===\n\n");
  std::printf("%-34s %-14s %12s %12s\n", "Multiplier", "Bit-width", "Area (um^2)", "Power (mW)");
  auto row = [](const char* name, const char* bits, UnitCost c) {
    std::printf("%-34s %-14s %12.0f %12.2f\n", name, bits, c.area_um2, c.power_mw);
  };
  row("Modular Mul (F1)", "32", modular_mult_f1());
  row("Modular Mul (CHAM)", "35, 39", modular_mult_cham());
  row("Complex FP Mul (FLASH FP path)", "8+1+39", complex_fp_mult(39));
  row("Approx. FXP Mul (FLASH, k=5)", "39 x (k=5)", approx_fxp_mult(39, 5));

  std::printf("\npaper claims:\n");
  std::printf("  complex FP power ~2x modular:        %.2fx\n",
              complex_fp_mult(39).power_mw / modular_mult_f1().power_mw);
  std::printf("  approx FXP cheaper than CHAM's mod:  %.2fx cheaper\n",
              modular_mult_cham().power_mw / approx_fxp_mult(39, 5).power_mw);

  std::printf("\nscaling sweep: approx FXP multiplier across the DSE grid\n");
  std::printf("%-8s", "width\\k");
  for (int k : {2, 5, 8, 12, 18}) std::printf("  k=%-2d mW", k);
  std::printf("\n");
  for (int w : {12, 20, 27, 33, 39}) {
    std::printf("%-8d", w);
    for (int k : {2, 5, 8, 12, 18}) std::printf("  %7.3f", approx_fxp_mult(w, k).power_mw);
    std::printf("\n");
  }

  std::printf("\ntwiddle-factor ROM (paper section III-A: NTT twiddles vary per modulus):\n");
  for (std::size_t moduli : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    const auto tw = twiddle_storage(4096, moduli, 49, 5, 6);
    std::printf("  %zu moduli: NTT ROM %7.1f KB vs FFT CSD ROM %5.1f KB  (%.0fx)\n", moduli,
                tw.ntt_bytes / 1e3, tw.fft_bytes / 1e3, tw.ratio());
  }
  std::printf("\ncomplex FP multiplier vs mantissa width:\n");
  for (int m : {16, 24, 32, 39}) {
    const UnitCost c = complex_fp_mult(m);
    std::printf("  mantissa %2d: %8.0f um^2  %6.2f mW\n", m, c.area_um2, c.power_mw);
  }
  return 0;
}
