// Machine-readable bench output for the perf-regression harness.
//
// Benches that opt in accept `--json <path>` (or `--json=<path>`) and write a
// versioned record set that tools/flash_benchdiff understands:
//
//   {"flash_bench_schema": 1,
//    "binary": "bench_micro_transforms",
//    "results": [{"name": "BM_FxpFftForward/4096", "value": 12345.6,
//                 "unit": "ns", "iterations": 100}, ...]}
//
// `value` is the per-iteration real time in nanoseconds for timed benches, or
// a deterministic model quantity (area, power, ...) for model benches — the
// schema is shared so one diff tool gates both. Console output is unchanged;
// --json only adds the file.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace flash::benchjson {

struct Record {
  std::string name;
  double value = 0.0;
  std::string unit;
  std::int64_t iterations = 1;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Writes the schema-1 document. Returns false (and prints to stderr) on I/O
/// failure so callers can exit non-zero rather than silently gate on nothing.
inline bool write_json(const std::string& path, const std::string& binary,
                       const std::vector<Record>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"flash_bench_schema\": 1,\n  \"binary\": \"%s\",\n  \"results\": [\n",
               json_escape(binary).c_str());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.6f, \"unit\": \"%s\", \"iterations\": %lld}%s\n",
                 json_escape(r.name).c_str(), r.value, json_escape(r.unit).c_str(),
                 static_cast<long long>(r.iterations), i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  const bool ok = std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "bench_json: write to %s failed\n", path.c_str());
  return ok;
}

/// Pulls `--json <path>` / `--json=<path>` out of argv (so google-benchmark
/// never sees it) and returns the path, or "" if absent.
inline std::string extract_json_path(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return path;
}

/// Console reporter that additionally collects per-iteration real time (ns)
/// into Records. Used as the display reporter so no --benchmark_out plumbing
/// is needed.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      Record rec;
      rec.name = run.benchmark_name();
      rec.value = run.real_accumulated_time / iters * 1e9;
      rec.unit = "ns";
      rec.iterations = run.iterations;
      records_.push_back(std::move(rec));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

inline std::string basename_of(const char* argv0) {
  std::string s = argv0 ? argv0 : "bench";
  const std::size_t slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

/// Drop-in replacement for BENCHMARK_MAIN()'s body with --json support.
inline int run_benchmarks(int argc, char** argv) {
  const std::string binary = basename_of(argc > 0 ? argv[0] : nullptr);
  const std::string json_path = extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  JsonCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);
  return write_json(json_path, binary, collector.records()) ? 0 : 1;
}

}  // namespace flash::benchjson

#define FLASH_BENCH_JSON_MAIN()                                     \
  int main(int argc, char** argv) {                                 \
    return flash::benchjson::run_benchmarks(argc, argv);            \
  }
