// Figure 5(b) reproduction: computation bit-width reduction enabled by the
// kernel / layer / network-level error resilience.
//
// The paper argues: a 39-bit-mantissa FP FFT is needed for full NTT
// equivalence (kernel level: noise stays under q/2t); requantization
// discards sum-product LSBs (layer level); and the classifier tolerates
// small output perturbations (network level) — together allowing a 27-bit
// fixed-point data path with unchanged classification results.
//
// We sweep the FXP FFT data width, measure the weight-spectrum error with
// the bit-accurate simulator, propagate it to conv-output error (paper
// methodology), and report which robustness level absorbs it.
#include <cstdio>
#include <random>

#include "bfv/params.hpp"
#include "dse/error_model.hpp"
#include "tensor/quant.hpp"
#include "tensor/resnet.hpp"

int main() {
  using namespace flash;

  std::printf("=== Fig. 5(b): bit-width reduction vs robustness levels ===\n\n");

  const std::size_t n = 4096;
  dse::DesignSpace space(n / 2, dse::SpaceBounds{8, 48, 2, 20});
  std::mt19937_64 rng(5);

  // Layer-level threshold: errors below half the discarded requant LSBs
  // vanish. W4A4 with 576 taps discards ~9 LSBs.
  const int requant_shift = tensor::sum_product_bits(4, 4, 576) - 4 - 2 - 4;
  const double layer_threshold = std::exp2(requant_shift - 1);

  // Network-level threshold: classification flips stay <1% for output errors
  // up to about the activation scale (measured by the flip-rate proxy).
  const double network_threshold = 2.0 * layer_threshold;

  std::printf("requant shift %d -> layer-level error threshold %.1f (conv-output units)\n\n",
              requant_shift, layer_threshold);
  std::printf("%-7s %-14s %-16s %-12s %s\n", "width", "spec err var", "conv-out err", "exact?",
              "absorbed by");
  int min_exact_width = 99, min_layer_width = 99;
  for (int width : {12, 15, 18, 21, 24, 27, 30, 33, 36, 39}) {
    dse::DesignPoint p;
    p.stage_widths.assign(static_cast<std::size_t>(space.stages()), width);
    p.twiddle_k = 18;  // isolate the data-width axis (twiddles near-exact)
    const double var = dse::measured_error_variance(n, space.to_config(p, 8.0), 72, 8, 2, rng);
    const double out_err = std::sqrt(var) * 8.0;  // activation-scale propagation
    const char* level = "nothing (too coarse)";
    if (out_err < 0.5) {
      level = "kernel (bit-exact result)";
      min_exact_width = std::min(min_exact_width, width);
    } else if (out_err < layer_threshold) {
      level = "layer (requantization)";
      min_layer_width = std::min(min_layer_width, width);
    } else if (out_err < network_threshold) {
      level = "network (classification)";
    }
    std::printf("%-7d %-14.3e %-16.3f %-12s %s\n", width, var, out_err,
                out_err < 0.5 ? "yes" : "no", level);
  }

  std::printf("\npaper: 39-bit mantissa for full NTT equivalence; 27 bits suffice with the\n");
  std::printf("three robustness levels. Our sweep: bit-exact from %d bits, requant-absorbed\n",
              min_exact_width);
  std::printf("from %d bits — same shape (27-bit operating point is inside the absorbed band).\n",
              std::min(min_layer_width, min_exact_width));
  return 0;
}
