// Figure 11(b)(c) reproduction: design-space exploration for two
// representative ResNet-50 layers — the scatter of explored points (error
// variance vs normalized weight-FFT power) and the Pareto front.
//
// The paper plots 1000 solutions per layer found by Bayesian optimization;
// we run our evolutionary Pareto search for the same budget (see DESIGN.md
// for the substitution rationale) and print a bucketed scatter plus the
// front.
#include <cstdio>
#include <map>

#include "core/flash_accelerator.hpp"
#include "dse/bayesopt.hpp"
#include "tensor/resnet.hpp"

namespace {

void explore_layer(flash::core::FlashAccelerator& acc, const flash::tensor::LayerConfig& layer,
                   const char* tag) {
  using namespace flash;
  std::printf("--- %s: layer %s (%zu ch %zux%zu, k=%zu) ---\n", tag, layer.name.c_str(), layer.in_c,
              layer.in_h, layer.in_w, layer.kernel);
  dse::DseOptions opts;
  opts.evaluations = 1000;
  const auto points = acc.explore_layer(layer, opts);

  // Bucketed scatter: count points per (power decade-bucket, error decade).
  std::map<int, std::map<int, int>> hist;  // power bucket -> error decade -> count
  for (const auto& p : points) {
    const int pb = static_cast<int>(p.normalized_power * 10.0);  // 0.1-wide buckets
    const int ed = static_cast<int>(std::floor(std::log10(p.error_variance + 1e-30)));
    ++hist[pb][ed];
  }
  std::printf("scatter (rows: normalized power bucket, cols: log10 error variance):\n");
  std::printf("%8s", "power\\e");
  for (int e = -15; e <= 3; e += 3) std::printf(" %5d", e);
  std::printf("\n");
  for (const auto& [pb, row] : hist) {
    std::printf("%7.1f ", pb / 10.0);
    for (int e = -15; e <= 3; e += 3) {
      int count = 0;
      for (const auto& [ed, c] : row) {
        if (ed >= e && ed < e + 3) count += c;
      }
      std::printf(" %5d", count);
    }
    std::printf("\n");
  }

  const auto front = dse::pareto_front(points);
  std::printf("pareto front (%zu points):\n", front.size());
  for (const auto& p : front) {
    std::printf("  power %.4f  err %.3e  k=%d\n", p.normalized_power, p.error_variance,
                p.point.twiddle_k);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace flash;
  std::printf("=== Fig. 11(b)(c): DSE for two ResNet-50 layers, 1000 evaluations each ===\n\n");

  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  core::FlashAccelerator acc(params);
  const auto layers = tensor::resnet50_conv_layers();

  explore_layer(acc, layers[28], "Fig. 11(b) layer 28");
  explore_layer(acc, layers[41], "Fig. 11(c) layer 41");

  std::printf("paper shape: a smooth power/error trade-off per layer; the DSE picks the\n");
  std::printf("cheapest point under the layer's error threshold T_err. Training shifts the\n");
  std::printf("threshold right, cutting hardware cost a further ~62.8%% (paper).\n");

  // Optimizer comparison at equal budget: the paper's Bayesian optimization
  // (GP surrogate + ParEGO scalarization) vs our evolutionary archive.
  std::printf("\n--- optimizer comparison, 200 evaluations, layer 28 geometry ---\n");
  const encoding::LayerTiling tiling = encoding::plan_layer(layers[28], params.n);
  const dse::SpaceBounds bounds;
  const dse::ErrorModel error = dse::ErrorModel::from_weight_stats(params.n, tiling.weight_nnz, 8.0);
  const dse::CostModel cost(params.n / 2, bounds);

  dse::BayesianExplorer bo(dse::DesignSpace(params.n / 2, bounds), dse::ErrorModel(error),
                           dse::CostModel(cost), 20250307);
  dse::BayesOptions bopts;
  bopts.evaluations = 200;
  const auto bo_points = bo.explore(bopts);

  dse::DseExplorer evo(dse::DesignSpace(params.n / 2, bounds), dse::ErrorModel(error),
                       dse::CostModel(cost), 20250307);
  dse::DseOptions eopts;
  eopts.evaluations = 200;
  const auto evo_points = evo.explore(eopts);

  for (double threshold : {1e-3, 1e-6, 1e-9}) {
    double bo_best = 1e300, evo_best = 1e300;
    for (const auto& p : bo_points) {
      if (p.error_variance <= threshold) bo_best = std::min(bo_best, p.normalized_power);
    }
    for (const auto& p : evo_points) {
      if (p.error_variance <= threshold) evo_best = std::min(evo_best, p.normalized_power);
    }
    std::printf("  T_err = %-8.0e  best power: bayesian %.4f | evolutionary %.4f\n", threshold,
                bo_best, evo_best);
  }

  // The paper's training claim: approximation-aware training relaxes T_err
  // (the network tolerates ~10x more output error), and the DSE converts
  // that into ~62.8% lower hardware cost.
  std::printf("\n--- T_err relaxation via approximation-aware training ---\n");
  auto best_under = [&](double threshold) {
    double best = 1e300;
    for (const auto& p : evo_points) {
      if (p.error_variance <= threshold) best = std::min(best, p.normalized_power);
    }
    return best;
  };
  const double strict = best_under(1e-8);                  // no retraining
  const double relaxed = best_under(1e-8 * 100.0);         // ~10x error tolerance
  std::printf("  no retraining  (T_err 1e-8): power %.4f\n", strict);
  std::printf("  with training  (T_err 1e-6): power %.4f  -> %.1f%% cost reduction\n", relaxed,
              100.0 * (1.0 - relaxed / strict));
  std::printf("  paper: training reduces the hardware cost by ~62.8%%\n");
  return 0;
}
