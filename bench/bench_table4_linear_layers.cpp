// Table IV reproduction: performance of FLASH on the linear layers of
// ResNet-18 and ResNet-50 vs the CHAM baseline (same BU count).
//
// Latency follows the paper's accounting (see DESIGN.md finding 3): CHAM
// processes every transform as a dense NTT on 240 modular BUs @ 300 MHz;
// FLASH runs sparse approximate weight transforms + dense inverse transforms
// on 240 approximate BUs @ 1 GHz and ciphertext forwards on 16 FP BUs; the
// transform-bound latency is the reported metric (the point-wise array is
// the paper's acknowledged future-work bottleneck and is also printed).
//
// Accuracy follows the paper's evaluation methodology: approximate-FFT error
// is injected at the convolution outputs of a quantized network (variance
// calibrated from the bit-accurate FXP FFT simulator) and the classification
// flip rate of a synthetic classifier is measured. Paper: 68.45 -> 68.15
// (ResNet-18), 74.24 -> 74.19 (ResNet-50), i.e. a ~0.3%/0.05% drop.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>

#include "core/flash_accelerator.hpp"
#include "core/thread_pool.hpp"
#include "dse/error_model.hpp"
#include "protocol/conv_runner.hpp"
#include "tensor/quant.hpp"
#include "tensor/resnet.hpp"

namespace {

using namespace flash;

/// Classification-flip accuracy proxy: fraction of synthetic inputs whose
/// argmax class is unchanged when per-conv-output Gaussian error of the given
/// std is injected into a quantized block + classifier pipeline.
double accuracy_proxy(double error_std, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  tensor::QuantizedBlock block = tensor::QuantizedBlock::random(8, 3, 4, 4, rng);
  // Requantize to the *typical* (not worst-case) sum-product scale so the
  // 4-bit activation range is actually used — otherwise the proxy saturates
  // to the residual identity and is insensitive to any perturbation.
  block.requant_shift = 3;
  // Classify from the flattened block output (no global pooling) so the
  // proxy is sensitive to per-position perturbations.
  const std::size_t features = 8 * 6 * 6;
  const tensor::SyntheticClassifier clf = tensor::SyntheticClassifier::random(features, 10, 4, rng);
  std::normal_distribution<double> noise(0.0, error_std);
  const int samples = 120;
  int same = 0;
  for (int s = 0; s < samples; ++s) {
    const tensor::Tensor3 x = tensor::random_activations(8, 6, 6, 4, rng);
    const std::size_t label = clf.predict(block.forward(x).data());
    tensor::Tensor3 e1(8, 6, 6), e2(8, 6, 6);
    for (auto& v : e1.data()) v = static_cast<tensor::i64>(std::llround(noise(rng)));
    for (auto& v : e2.data()) v = static_cast<tensor::i64>(std::llround(noise(rng)));
    const std::size_t noisy = clf.predict(block.forward_with_error(x, e1, e2).data());
    same += noisy == label;
  }
  return 100.0 * same / samples;
}

/// Calibrate the injected error std for a design point: measure the
/// *relative* spectrum error of the bit-accurate FXP transform on
/// ResNet-like sparse weights, then scale by the typical sum-product
/// magnitude of the quantized block (a relative weight perturbation turns
/// into a proportional conv-output perturbation).
double calibrated_error_std(int width, int k, double sp_rms) {
  const std::size_t n = 4096;
  dse::DesignSpace space(n / 2, dse::SpaceBounds{8, 48, 2, 20});
  dse::DesignPoint p;
  p.stage_widths.assign(static_cast<std::size_t>(space.stages()), width);
  p.twiddle_k = k;
  std::mt19937_64 rng(11);
  const double var = dse::measured_error_variance(n, space.to_config(p, 8.0), 72, 8, 3, rng);
  // Weight spectrum rms for 72 taps in [-8, 8]: sqrt(sum w^2) ~ sqrt(72)*4.6.
  const double spectrum_rms = std::sqrt(72.0) * 4.6;
  const double relative = std::sqrt(var) / spectrum_rms;
  return relative * sp_rms;
}

/// Typical raw sum-product magnitude of the synthetic quantized block.
double measured_sp_rms() {
  std::mt19937_64 rng(13);
  const tensor::QuantizedBlock block = tensor::QuantizedBlock::random(8, 3, 4, 4, rng);
  const tensor::Tensor3 x = tensor::random_activations(8, 6, 6, 4, rng);
  const tensor::ConvSpec spec{1, 1};
  const tensor::Tensor3 sp = tensor::conv2d(x, block.conv1, spec);
  double acc = 0;
  for (tensor::i64 v : sp.data()) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc / static_cast<double>(sp.data().size()));
}

/// Software HConv sweep over the scaled ResNet-18 layer inventory: every
/// layer runs end-to-end through the HE/2PC ConvRunner (padding, stride
/// phases, spatial tiling), once serial and once on a thread pool. The
/// threaded shares must be bit-identical to the serial ones (deterministic
/// per-task RNG streams), so the sweep doubles as a correctness gate.
void software_layer_sweep(std::size_t threads) {
  using clock = std::chrono::steady_clock;
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  const auto layers = tensor::scale_layers_for_sweep(tensor::resnet18_conv_layers(), 12, 8);

  struct SweepRun {
    std::vector<protocol::ConvRunnerResult> results;
    double seconds = 0;
  };
  auto run_sweep = [&](core::ThreadPool* pool) {
    protocol::HConvProtocol proto(ctx, bfv::PolyMulBackend::kFft, std::nullopt, 2025, pool);
    protocol::ConvRunner runner(proto, pool);
    SweepRun run;
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < layers.size(); ++i) {
      const tensor::LayerConfig& l = layers[i];
      std::mt19937_64 rng(1000 + i);
      const tensor::Tensor3 x = tensor::random_activations(l.in_c, l.in_h, l.in_w, 4, rng);
      const tensor::Tensor4 w = tensor::random_weights(l.out_c, l.in_c, l.kernel, 4, rng);
      run.results.push_back(runner.run(x, w, l.stride, l.pad));
    }
    run.seconds = std::chrono::duration<double>(clock::now() - t0).count();
    return run;
  };

  std::printf("\n=== software HConv sweep: scaled ResNet-18 layers over the 2PC protocol ===\n");
  std::printf("(%zu distinct layer shapes, ring degree %zu, kFft backend)\n\n", layers.size(),
              params.n);
  const SweepRun serial = run_sweep(nullptr);
  std::printf("  serial (1 thread):    %8.2f ms\n", serial.seconds * 1e3);
  if (threads > 1) {
    core::ThreadPool pool(threads);
    const SweepRun parallel = run_sweep(&pool);
    bool identical = true;
    for (std::size_t i = 0; i < layers.size(); ++i) {
      identical = identical &&
                  serial.results[i].client_share.data() == parallel.results[i].client_share.data() &&
                  serial.results[i].server_share.data() == parallel.results[i].server_share.data();
    }
    std::printf("  pooled (%zu threads):   %8.2f ms  (%.2fx, shares %s)\n", threads,
                parallel.seconds * 1e3, serial.seconds / parallel.seconds,
                identical ? "bit-identical to serial" : "MISMATCH");
  } else {
    std::printf("  (run with --threads N to compare against the pooled pipeline)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  if (threads == 0) threads = core::ThreadPool::default_thread_count();

  std::printf("=== Table IV: FLASH vs CHAM on ResNet linear layers ===\n\n");

  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  core::FlashAccelerator acc(params);

  struct Net {
    const char* name;
    std::vector<tensor::LayerConfig> layers;
  };
  const Net nets[] = {{"ResNet-18", tensor::resnet18_conv_layers()},
                      {"ResNet-50", tensor::resnet50_conv_layers()}};

  std::printf("%-10s %14s %16s %10s %18s\n", "network", "CHAM (ms)", "FLASH xform (ms)", "speedup",
              "FLASH all-arr (ms)");
  for (const auto& net : nets) {
    const core::NetworkEstimate est = acc.estimate_network(net.layers);
    std::printf("%-10s %14.2f %16.3f %9.1fx %18.3f\n", net.name, est.cham.seconds * 1e3,
                est.flash_transform_seconds() * 1e3, est.speedup_vs_cham(),
                est.flash.seconds * 1e3);
  }
  std::printf("\npaper latency: ResNet-18 35.9 -> 1.64 ms (21.84x), ResNet-50 317.26 -> 4.96 ms (64.02x)\n");

  std::printf("\naccuracy proxy (classification agreement under injected approx-FFT error,\n");
  std::printf("paper methodology: error at conv outputs, calibrated from the FXP simulator):\n");
  const double sp_rms = measured_sp_rms();
  std::printf("measured sum-product rms of the quantized block: %.1f\n", sp_rms);
  const double clean = accuracy_proxy(0.0, 99);
  std::printf("  %-44s %6.1f%%\n", "exact (CHAM / NTT)", clean);
  struct Arm {
    const char* label;
    int width, k;
  };
  const Arm arms[] = {
      {"FLASH 27-bit, k=18 (no retraining)", 27, 18},
      {"FLASH 27-bit, k=5  (w/ approx-aware training)", 27, 5},
      {"FLASH 16-bit, k=3  (beyond the DSE frontier)", 16, 3},
      {"FLASH 12-bit, k=2  (broken: shows the cliff)", 12, 2},
  };
  for (const Arm& arm : arms) {
    const double std_dev = calibrated_error_std(arm.width, arm.k, sp_rms);
    std::printf("  %-46s %6.1f%%  (err std %.2f)\n", arm.label, accuracy_proxy(std_dev, 99), std_dev);
  }
  // Stress arms: show where the network-level robustness finally gives out
  // (errors comparable to the sum-product scale itself).
  std::printf("  %-46s %6.1f%%  (err std %.2f)\n", "stress: error = SP/2",
              accuracy_proxy(sp_rms / 2.0, 99), sp_rms / 2.0);
  std::printf("  %-46s %6.1f%%  (err std %.2f)\n", "stress: error = SP",
              accuracy_proxy(sp_rms, 99), sp_rms);
  std::printf("\npaper accuracy: 68.45 -> 68.15 (R18), 74.24 -> 74.19 (R50): <0.5%% degradation at\n");
  std::printf("the k=5 operating point, with the cliff appearing only far below the DSE frontier.\n");

  software_layer_sweep(threads);
  return 0;
}
