// Cycle-level validation of the analytic throughput model: schedule the
// real task graph of representative ResNet-50 layers on the FLASH arrays
// and compare the makespan against the analytic busiest-array bound, plus
// the protocol communication inventory.
#include <cstdio>

#include "accel/simulator.hpp"
#include "core/flash_accelerator.hpp"
#include "protocol/hconv_protocol.hpp"
#include "tensor/resnet.hpp"

int main() {
  using namespace flash;
  std::printf("=== cycle-level simulation vs analytic model (N = 4096, one spatial tile) ===\n\n");

  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  core::FlashAccelerator acc(params);
  const accel::FlashConfig cfg = accel::FlashConfig::paper_default();
  accel::CycleSimulator sim(cfg);

  const auto layers = tensor::resnet50_conv_layers();
  std::printf("%-24s %12s %12s %8s %10s %10s\n", "layer", "sim cycles", "bound", "ratio",
              "approxU", "fpU");
  for (const char* name : {"layer1.0.conv1", "layer1.0.conv2", "layer2.0.conv3", "layer3.0.conv2",
                           "layer4.0.conv1", "layer4.1.conv2"}) {
    const auto it = std::find_if(layers.begin(), layers.end(),
                                 [&](const auto& l) { return l.name == name; });
    if (it == layers.end()) continue;
    const core::LayerPlan plan = acc.plan_layer(*it);
    // Rebuild the layer's weight-pattern plan for the simulator.
    std::vector<std::size_t> pos;
    for (std::size_t c = 0; c < plan.tiling.channels_per_poly; ++c) {
      for (std::size_t i = 0; i < plan.tiling.sub_k; ++i) {
        for (std::size_t j = 0; j < plan.tiling.sub_k; ++j) {
          pos.push_back((c * plan.tiling.patch_h * plan.tiling.patch_w + i * plan.tiling.patch_w + j) %
                        (params.n / 2));
        }
      }
    }
    const sparsefft::SparseFftPlan wplan(params.n / 2,
                                         sparsefft::SparsityPattern(params.n / 2, std::move(pos)));
    const accel::SimResult r = sim.simulate_layer(plan.tiling, wplan);
    const std::uint64_t bound = std::max({r.weight_busy / cfg.approx_pes,
                                          r.fp_busy / std::max<std::size_t>(cfg.fp_pes, 1),
                                          r.pointwise_busy});
    std::printf("%-24s %12llu %12llu %8.2f %9.1f%% %9.1f%%\n", name,
                static_cast<unsigned long long>(r.cycles), static_cast<unsigned long long>(bound),
                static_cast<double>(r.cycles) / static_cast<double>(std::max<std::uint64_t>(bound, 1)),
                100.0 * r.weight_utilization, 100.0 * r.fp_utilization);
  }
  std::printf("\nthe greedy schedule lands within a small factor of the busiest-array bound\n");
  std::printf("(the analytic model's assumption); utilization shows which array gates each layer.\n");

  // Protocol communication (the other resource Table IV's setting implies).
  std::printf("\n=== one-round protocol communication (linear layers) ===\n");
  const std::uint64_t ct_bytes = protocol::ciphertext_bytes(params);
  for (const char* net : {"ResNet-18", "ResNet-50"}) {
    const auto ls = std::string(net) == "ResNet-18" ? tensor::resnet18_conv_layers()
                                                    : tensor::resnet50_conv_layers();
    const encoding::NetworkCommunication comm = encoding::plan_communication(ls, params.n, ct_bytes);
    std::printf("%-10s up %8.1f MB  down %8.1f MB  total %8.2f GB\n", net, comm.bytes_up / 1e6,
                comm.bytes_down / 1e6, comm.total() / 1e9);
  }
  std::printf("(ciphertext = %llu KB; Cheetah reports single-digit GB per ResNet inference)\n",
              static_cast<unsigned long long>(ct_bytes / 1024));
  return 0;
}
