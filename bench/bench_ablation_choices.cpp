// Ablations of FLASH's design choices beyond the paper's headline two
// (DESIGN.md calls these out): butterfly radix, rounding mode of the
// approximate datapath, power-of-two patch padding, and the merged vs
// per-stage sparse accounting. Each knob is evaluated with the functional
// simulators, not hand-waved.
#include <cstdio>
#include <random>

#include "encoding/tiling.hpp"
#include "fft/fxp_fft.hpp"
#include "fft/radix4.hpp"
#include "sparsefft/planner.hpp"
#include "tensor/resnet.hpp"

namespace {

using namespace flash;

void radix_ablation() {
  std::printf("--- butterfly radix (dense transform, non-trivial complex mults) ---\n");
  std::printf("  %-8s %10s %10s %8s\n", "M", "radix-2", "radix-4", "ratio");
  for (std::size_t m : {std::size_t{512}, std::size_t{2048}, std::size_t{8192}}) {
    const auto r2 = fft::radix2_dense_cost(m);
    const auto r4 = fft::radix4_dense_cost(m);
    std::printf("  %-8zu %10llu %10llu %8.3f\n", m,
                static_cast<unsigned long long>(r2.complex_mults),
                static_cast<unsigned long long>(r4.complex_mults),
                static_cast<double>(r4.complex_mults) / static_cast<double>(r2.complex_mults));
  }
  std::printf("  radix-4 saves ~25%% of multiplications but needs a 4-input BU;\n");
  std::printf("  FLASH's skip/merge dataflow operates on radix-2 pairs, which is why the\n");
  std::printf("  paper keeps radix-2 BUs (sparse chains would fragment radix-4 blocks).\n\n");
}

void rounding_ablation() {
  std::printf("--- rounding mode of the approximate FXP datapath ---\n");
  const std::size_t m = 1024;
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> w(-8, 8);
  std::vector<fft::cplx> input(m, {0.0, 0.0});
  for (int i = 0; i < 72; ++i) input[rng() % m] = {static_cast<double>(w(rng)), 0.0};
  fft::FftPlan exact(m, +1);
  auto ref = input;
  exact.forward(ref);

  std::printf("  %-10s %14s %14s\n", "frac bits", "truncate", "round-nearest");
  for (int frac : {8, 12, 16, 20}) {
    fft::FxpFftConfig nearest = fft::FxpFftConfig::uniform(m, frac, 48, 16);
    nearest.twiddle_min_exp = -(frac + 8);
    fft::FxpFftConfig trunc = nearest;
    trunc.rounding = fft::RoundingMode::kTruncate;
    const double e_near = fft::relative_spectrum_rmse(fft::FxpFft(m, nearest).forward(input), ref);
    const double e_trunc = fft::relative_spectrum_rmse(fft::FxpFft(m, trunc).forward(input), ref);
    std::printf("  %-10d %14.3e %14.3e\n", frac, e_trunc, e_near);
  }
  std::printf("  round-to-nearest buys ~1-2 bits of accuracy over truncation at the cost\n");
  std::printf("  of one half-ulp adder per rounding site.\n\n");
}

void padding_ablation() {
  std::printf("--- power-of-two patch padding (sparse fraction, merged accounting) ---\n");
  const std::size_t n = 4096, m = n / 2;
  auto fraction = [&](std::size_t h, std::size_t w, std::size_t k, std::size_t channels) {
    std::vector<std::size_t> pos;
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) pos.push_back((c * h * w + i * w + j) % m);
      }
    }
    sparsefft::SparseFftPlan plan(m, sparsefft::SparsityPattern(m, std::move(pos)));
    return static_cast<double>(plan.cost().merged_mults) /
           static_cast<double>(sparsefft::SparseFftPlan::dense_cost(m).merged_mults);
  };
  std::printf("  %-26s %10s\n", "geometry", "mult frac");
  std::printf("  %-26s %10.3f\n", "58x58 raw, k=3, 1ch", fraction(58, 58, 3, 1));
  std::printf("  %-26s %10.3f\n", "64x64 padded, k=3, 1ch", fraction(64, 64, 3, 1));
  std::printf("  %-26s %10.3f\n", "14x14 raw, k=1, 16ch", fraction(14, 14, 1, 16));
  std::printf("  %-26s %10.3f\n", "16x16 padded, k=1, 16ch", fraction(16, 16, 1, 16));
  std::printf("  padding wastes polynomial capacity but aligns channel stripes with\n");
  std::printf("  power-of-two strides, which is what makes skipping effective (Fig. 8a).\n\n");
}

void accounting_ablation() {
  std::printf("--- per-stage vs merged sparse accounting (ResNet-50 network average) ---\n");
  const std::size_t n = 4096;
  double per_stage = 0, merged = 0;
  std::uint64_t transforms = 0;
  for (const auto& layer : tensor::resnet50_conv_layers()) {
    const encoding::LayerTiling t = encoding::plan_layer(layer, n);
    // Recompute the per-stage fraction for the same pattern.
    std::vector<std::size_t> pos;
    for (std::size_t c = 0; c < t.channels_per_poly; ++c) {
      for (std::size_t i = 0; i < t.sub_k; ++i) {
        for (std::size_t j = 0; j < t.sub_k; ++j) {
          pos.push_back((c * t.patch_h * t.patch_w + i * t.patch_w + j) % (n / 2));
        }
      }
    }
    sparsefft::SparseFftPlan plan(n / 2, sparsefft::SparsityPattern(n / 2, std::move(pos)));
    const auto dense = sparsefft::SparseFftPlan::dense_cost(n / 2);
    per_stage += static_cast<double>(plan.cost().complex_mults) /
                 static_cast<double>(dense.complex_mults) *
                 static_cast<double>(t.weight_transforms);
    merged += t.weight_mult_fraction * static_cast<double>(t.weight_transforms);
    transforms += t.weight_transforms;
  }
  std::printf("  per-stage (skip only):      %.4f\n", per_stage / static_cast<double>(transforms));
  std::printf("  merged (skip + merge):      %.4f\n", merged / static_cast<double>(transforms));
  std::printf("  with power-of-two padding, skipping alone captures nearly all of the\n");
  std::printf("  network-level reduction; merging (Example 4.2's cumulative twiddles)\n");
  std::printf("  matters for non-aligned geometries (58x58/k3: 0.46 -> 0.39 above).\n");
}

}  // namespace

int main() {
  std::printf("=== design-choice ablations (DESIGN.md section 6) ===\n\n");
  radix_ablation();
  rounding_ablation();
  padding_ablation();
  accounting_ablation();
  return 0;
}
