// Figure 12 reproduction: area and power breakdown of FLASH.
//
// Paper shape: after the approximate+sparse optimizations shrink the weight
// array, the point-wise FP multipliers dominate both area and power (the
// "new bottleneck" the paper defers to future work).
#include <cstdio>

#include "accel/flash_config.hpp"

namespace {

void print_breakdown(const char* title, const flash::accel::AreaPowerBreakdown& b) {
  std::printf("%s\n", title);
  std::printf("  %-22s %10s %8s %12s %8s\n", "component", "area mm^2", "%", "power W", "%");
  auto row = [&](const char* name, double a, double p) {
    std::printf("  %-22s %10.3f %7.1f%% %12.3f %7.1f%%\n", name, a, 100.0 * a / b.total_area(), p,
                100.0 * p / b.total_power());
  };
  row("approx BUs (weights)", b.approx_bu_area, b.approx_bu_power);
  row("FP BUs (ct transforms)", b.fp_bu_area, b.fp_bu_power);
  row("FP MULs (point-wise)", b.fp_mult_area, b.fp_mult_power);
  row("FP accumulators", b.fp_acc_area, b.fp_acc_power);
  row("other (ctrl/ROM/buf)", b.other_area, b.other_power);
  std::printf("  %-22s %10.3f          %12.3f\n\n", "total", b.total_area(), b.total_power());
}

}  // namespace

int main() {
  using namespace flash::accel;
  std::printf("=== Fig. 12: FLASH area & power breakdown (28nm @ 1GHz) ===\n\n");

  print_breakdown("full FLASH (60 approx PEs x4 BU, 4 FP PEs x4 BU, 240 FP MUL/ACC):",
                  flash_breakdown(FlashConfig::paper_default()));
  print_breakdown("weight-transform section only (Table III first FLASH row):",
                  flash_breakdown(FlashConfig::weight_transform_only()));

  const auto full = flash_breakdown(FlashConfig::paper_default());
  std::printf("paper reference totals: 4.22 mm^2 / 2.56 W (full), 0.74 mm^2 / 0.27 W (weight)\n");
  std::printf("point-wise FP MULs dominate the full design: %s\n",
              (full.fp_mult_power > full.approx_bu_power && full.fp_mult_area > full.approx_bu_area)
                  ? "REPRODUCED"
                  : "NOT reproduced");
  return 0;
}
