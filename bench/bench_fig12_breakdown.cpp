// Figure 12 reproduction: area and power breakdown of FLASH.
//
// Paper shape: after the approximate+sparse optimizations shrink the weight
// array, the point-wise FP multipliers dominate both area and power (the
// "new bottleneck" the paper defers to future work).
#include <cstdio>
#include <string>
#include <vector>

#include "accel/flash_config.hpp"
#include "bench_json.hpp"

namespace {

void print_breakdown(const char* title, const flash::accel::AreaPowerBreakdown& b) {
  std::printf("%s\n", title);
  std::printf("  %-22s %10s %8s %12s %8s\n", "component", "area mm^2", "%", "power W", "%");
  auto row = [&](const char* name, double a, double p) {
    std::printf("  %-22s %10.3f %7.1f%% %12.3f %7.1f%%\n", name, a, 100.0 * a / b.total_area(), p,
                100.0 * p / b.total_power());
  };
  row("approx BUs (weights)", b.approx_bu_area, b.approx_bu_power);
  row("FP BUs (ct transforms)", b.fp_bu_area, b.fp_bu_power);
  row("FP MULs (point-wise)", b.fp_mult_area, b.fp_mult_power);
  row("FP accumulators", b.fp_acc_area, b.fp_acc_power);
  row("other (ctrl/ROM/buf)", b.other_area, b.other_power);
  std::printf("  %-22s %10.3f          %12.3f\n\n", "total", b.total_area(), b.total_power());
}

void append_records(std::vector<flash::benchjson::Record>& recs, const std::string& prefix,
                    const flash::accel::AreaPowerBreakdown& b) {
  auto add = [&](const std::string& name, double v, const char* unit) {
    recs.push_back({prefix + "/" + name, v, unit, 1});
  };
  add("approx_bu_area", b.approx_bu_area, "mm2");
  add("fp_bu_area", b.fp_bu_area, "mm2");
  add("fp_mult_area", b.fp_mult_area, "mm2");
  add("fp_acc_area", b.fp_acc_area, "mm2");
  add("other_area", b.other_area, "mm2");
  add("total_area", b.total_area(), "mm2");
  add("approx_bu_power", b.approx_bu_power, "W");
  add("fp_bu_power", b.fp_bu_power, "W");
  add("fp_mult_power", b.fp_mult_power, "W");
  add("fp_acc_power", b.fp_acc_power, "W");
  add("other_power", b.other_power, "W");
  add("total_power", b.total_power(), "W");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flash::accel;
  const std::string json_path = flash::benchjson::extract_json_path(argc, argv);
  std::printf("=== Fig. 12: FLASH area & power breakdown (28nm @ 1GHz) ===\n\n");

  print_breakdown("full FLASH (60 approx PEs x4 BU, 4 FP PEs x4 BU, 240 FP MUL/ACC):",
                  flash_breakdown(FlashConfig::paper_default()));
  print_breakdown("weight-transform section only (Table III first FLASH row):",
                  flash_breakdown(FlashConfig::weight_transform_only()));

  const auto full = flash_breakdown(FlashConfig::paper_default());
  std::printf("paper reference totals: 4.22 mm^2 / 2.56 W (full), 0.74 mm^2 / 0.27 W (weight)\n");
  std::printf("point-wise FP MULs dominate the full design: %s\n",
              (full.fp_mult_power > full.approx_bu_power && full.fp_mult_area > full.approx_bu_area)
                  ? "REPRODUCED"
                  : "NOT reproduced");
  if (!json_path.empty()) {
    // Model outputs are deterministic: the JSON records gate against drift in
    // the cost model itself, not against timer noise.
    std::vector<flash::benchjson::Record> recs;
    append_records(recs, "fig12/full", full);
    append_records(recs, "fig12/weight", flash_breakdown(FlashConfig::weight_transform_only()));
    if (!flash::benchjson::write_json(json_path, "bench_fig12_breakdown", recs)) return 1;
  }
  return 0;
}
