// Design-space exploration: space operations, error-model fidelity against
// the bit-accurate simulator, cost-model monotonicity, and Pareto search.
#include <gtest/gtest.h>

#include "dse/optimizer.hpp"

namespace flash::dse {
namespace {

SpaceBounds test_bounds() { return SpaceBounds{10, 39, 2, 18}; }

TEST(Space, RandomPointsInBounds) {
  DesignSpace space(256, test_bounds());
  std::mt19937_64 rng(91);
  for (int i = 0; i < 100; ++i) {
    const DesignPoint p = space.random(rng);
    ASSERT_EQ(p.stage_widths.size(), 8u);
    for (int w : p.stage_widths) {
      EXPECT_GE(w, 10);
      EXPECT_LE(w, 39);
    }
    EXPECT_GE(p.twiddle_k, 2);
    EXPECT_LE(p.twiddle_k, 18);
  }
}

TEST(Space, MutationStaysInBoundsAndChangesSomething) {
  DesignSpace space(256, test_bounds());
  std::mt19937_64 rng(92);
  const DesignPoint p = space.random(rng);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    const DesignPoint q = space.mutate(p, rng);
    if (!(q == p)) ++changed;
    for (int w : q.stage_widths) {
      EXPECT_GE(w, 10);
      EXPECT_LE(w, 39);
    }
  }
  EXPECT_GT(changed, 40);
}

TEST(Space, CrossoverMixesParents) {
  DesignSpace space(1024, test_bounds());
  std::mt19937_64 rng(93);
  DesignPoint a, b;
  a.stage_widths.assign(10, 10);
  a.twiddle_k = 2;
  b.stage_widths.assign(10, 39);
  b.twiddle_k = 18;
  const DesignPoint c = space.crossover(a, b, rng);
  for (int w : c.stage_widths) EXPECT_TRUE(w == 10 || w == 39);
}

TEST(Space, ToConfigAllocatesIntegerGrowth) {
  DesignSpace space(256, test_bounds());
  DesignPoint p;
  p.stage_widths.assign(8, 30);
  p.twiddle_k = 8;
  const fft::FxpFftConfig cfg = space.to_config(p, 8.0);
  ASSERT_EQ(cfg.stage_frac_bits.size(), 8u);
  // Later stages have more integer growth, hence fewer fraction bits.
  EXPECT_GT(cfg.stage_frac_bits.front(), cfg.stage_frac_bits.back());
  EXPECT_EQ(cfg.twiddle_k, 8);
}

TEST(ErrorModel, PredictsLessErrorForWiderWidths) {
  DesignSpace space(1024, test_bounds());
  const ErrorModel model = ErrorModel::from_weight_stats(2048, 72, 8.0);
  DesignPoint narrow, wide;
  narrow.stage_widths.assign(10, 14);
  narrow.twiddle_k = 4;
  wide.stage_widths.assign(10, 36);
  wide.twiddle_k = 16;
  EXPECT_GT(model.predict_variance(space, narrow), model.predict_variance(space, wide));
}

TEST(ErrorModel, AnalyticalTracksMonteCarloOrdering) {
  // The analytical model must rank design points like the bit-accurate
  // simulator (that is all the DSE needs from it).
  const std::size_t n = 512;
  DesignSpace space(n / 2, test_bounds());
  const ErrorModel model = ErrorModel::from_weight_stats(n, 36, 8.0);
  std::mt19937_64 rng(94);

  std::vector<DesignPoint> points;
  for (int w : {14, 20, 26, 34}) {
    DesignPoint p;
    p.stage_widths.assign(static_cast<std::size_t>(space.stages()), w);
    p.twiddle_k = w / 2;
    points.push_back(p);
  }
  double prev_analytical = 1e300, prev_measured = 1e300;
  for (const auto& p : points) {
    const double analytical = model.predict_variance(space, p);
    const double measured =
        measured_error_variance(n, space.to_config(p, 8.0), 36, 8, 6, rng);
    EXPECT_LT(analytical, prev_analytical);
    EXPECT_LT(measured, prev_measured * 1.2);
    prev_analytical = analytical;
    prev_measured = measured;
  }
}

TEST(ErrorModel, AnalyticalWithinOrdersOfMagnitude) {
  const std::size_t n = 512;
  DesignSpace space(n / 2, test_bounds());
  const ErrorModel model = ErrorModel::from_weight_stats(n, 36, 8.0);
  std::mt19937_64 rng(95);
  DesignPoint p;
  p.stage_widths.assign(static_cast<std::size_t>(space.stages()), 24);
  p.twiddle_k = 10;
  const double analytical = model.predict_variance(space, p);
  const double measured = measured_error_variance(n, space.to_config(p, 8.0), 36, 8, 10, rng);
  EXPECT_GT(analytical, measured / 300.0);
  EXPECT_LT(analytical, measured * 300.0);
}

TEST(CostModel, MonotoneInWidthAndK) {
  CostModel cost(1024, test_bounds());
  EXPECT_LT(cost.bu_energy_pj(20, 5), cost.bu_energy_pj(30, 5));
  EXPECT_LT(cost.bu_energy_pj(30, 3), cost.bu_energy_pj(30, 9));
  DesignPoint cheap, expensive;
  cheap.stage_widths.assign(10, 12);
  cheap.twiddle_k = 3;
  expensive.stage_widths.assign(10, 39);
  expensive.twiddle_k = 18;
  EXPECT_LT(cost.normalized_power(cheap), cost.normalized_power(expensive));
  // Even the most expensive approximate point beats the FP reference.
  EXPECT_LT(cost.normalized_power(expensive), 1.0);
}

TEST(Pareto, DominationRules) {
  EvaluatedPoint a{{}, 1.0, 1.0}, b{{}, 2.0, 2.0}, c{{}, 0.5, 2.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, c));
  EXPECT_FALSE(dominates(c, a));
}

TEST(Pareto, FrontExtraction) {
  std::vector<EvaluatedPoint> pts = {
      {{}, 1.0, 5.0}, {{}, 2.0, 4.0}, {{}, 3.0, 3.0}, {{}, 2.5, 3.5}, {{}, 4.0, 4.0},
  };
  // Non-dominated: (3.0,3.0), (2.5,3.5), (2.0,4.0), (1.0,5.0); (4,4) is
  // dominated by (2,4).
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 4u);
  EXPECT_DOUBLE_EQ(front.front().normalized_power, 3.0);
  EXPECT_DOUBLE_EQ(front.back().normalized_power, 5.0);
}

TEST(Explorer, ProducesRequestedEvaluationsAndFront) {
  const std::size_t n = 512;
  DesignSpace space(n / 2, test_bounds());
  ErrorModel model = ErrorModel::from_weight_stats(n, 36, 8.0);
  CostModel cost(n / 2, test_bounds());
  DseExplorer explorer(std::move(space), std::move(model), std::move(cost), 2024);
  DseOptions opts;
  opts.evaluations = 300;
  const auto all = explorer.explore(opts);
  EXPECT_EQ(all.size(), 300u);
  const auto front = pareto_front(all);
  EXPECT_GT(front.size(), 3u);
  // Front must be monotone: increasing power => decreasing error.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].normalized_power, front[i - 1].normalized_power);
    EXPECT_LE(front[i].error_variance, front[i - 1].error_variance);
  }
}

TEST(Explorer, BestUnderThreshold) {
  const std::size_t n = 512;
  DesignSpace space(n / 2, test_bounds());
  ErrorModel model = ErrorModel::from_weight_stats(n, 36, 8.0);
  CostModel cost(n / 2, test_bounds());
  DseExplorer explorer(std::move(space), std::move(model), std::move(cost), 2025);
  DseOptions opts;
  opts.evaluations = 400;
  const auto all = explorer.explore(opts);
  // Pick a mid-range threshold from the observed errors.
  double max_err = 0;
  for (const auto& e : all) max_err = std::max(max_err, e.error_variance);
  const auto best = DseExplorer::best_under_threshold(all, max_err);
  EXPECT_LE(best.error_variance, max_err);
  EXPECT_THROW(DseExplorer::best_under_threshold(all, 0.0), std::runtime_error);
}

TEST(Explorer, SearchBeatsRandomAtEqualBudget) {
  // The evolutionary archive should find cheaper feasible points than pure
  // random sampling for the same number of evaluations.
  const std::size_t n = 512;
  const SpaceBounds bounds = test_bounds();
  DesignSpace space(n / 2, bounds);
  const ErrorModel model = ErrorModel::from_weight_stats(n, 36, 8.0);
  const CostModel cost(n / 2, bounds);

  DseExplorer explorer(DesignSpace(n / 2, bounds), ErrorModel(model), CostModel(cost), 31337);
  DseOptions opts;
  opts.evaluations = 500;
  const auto evolved = explorer.explore(opts);

  std::mt19937_64 rng(31337);
  std::vector<EvaluatedPoint> random_pts;
  for (int i = 0; i < 500; ++i) {
    const DesignPoint p = space.random(rng);
    random_pts.push_back({p, model.predict_variance(space, p), cost.normalized_power(p)});
  }
  // Compare best power subject to a common error threshold.
  double threshold = 0;
  for (const auto& e : random_pts) threshold = std::max(threshold, e.error_variance);
  threshold *= 1e-6;  // a tight accuracy requirement
  double best_evolved = 1e300, best_random = 1e300;
  for (const auto& e : evolved) {
    if (e.error_variance <= threshold) best_evolved = std::min(best_evolved, e.normalized_power);
  }
  for (const auto& e : random_pts) {
    if (e.error_variance <= threshold) best_random = std::min(best_random, e.normalized_power);
  }
  if (best_random < 1e300) {
    EXPECT_LE(best_evolved, best_random * 1.05);
  } else {
    SUCCEED() << "random sampling found no feasible point at this threshold";
  }
}

}  // namespace
}  // namespace flash::dse
