// Negacyclic NTT: inverse property, convolution theorem vs schoolbook,
// linearity, and ring identities.
#include <gtest/gtest.h>

#include <random>

#include "hemath/ntt.hpp"
#include "hemath/primes.hpp"

namespace flash::hemath {
namespace {

std::vector<u64> random_poly(std::size_t n, u64 q, std::mt19937_64& rng) {
  std::vector<u64> a(n);
  for (auto& x : a) x = rng() % q;
  return a;
}

class NttTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    n_ = GetParam();
    q_ = find_ntt_prime(45, n_);
    tables_ = std::make_unique<NttTables>(q_, n_);
  }
  std::size_t n_;
  u64 q_;
  std::unique_ptr<NttTables> tables_;
};

TEST_P(NttTest, ForwardInverseIsIdentity) {
  std::mt19937_64 rng(11);
  const auto a = random_poly(n_, q_, rng);
  auto b = a;
  tables_->forward(b);
  EXPECT_NE(a, b);  // transform must do something
  tables_->inverse(b);
  EXPECT_EQ(a, b);
}

TEST_P(NttTest, ConvolutionMatchesSchoolbook) {
  std::mt19937_64 rng(12);
  const auto a = random_poly(n_, q_, rng);
  const auto b = random_poly(n_, q_, rng);
  EXPECT_EQ(negacyclic_multiply(*tables_, a, b), negacyclic_multiply_schoolbook(q_, a, b));
}

TEST_P(NttTest, MultiplyByOneIsIdentity) {
  std::mt19937_64 rng(13);
  const auto a = random_poly(n_, q_, rng);
  std::vector<u64> one(n_, 0);
  one[0] = 1;
  EXPECT_EQ(negacyclic_multiply(*tables_, a, one), a);
}

TEST_P(NttTest, MultiplyByXShiftsAndNegatesWraparound) {
  std::mt19937_64 rng(14);
  const auto a = random_poly(n_, q_, rng);
  std::vector<u64> x(n_, 0);
  x[1] = 1;
  const auto c = negacyclic_multiply(*tables_, a, x);
  // a * X = a[0] X + ... + a[N-1] X^N = -a[N-1] + a[0] X + ...
  EXPECT_EQ(c[0], neg_mod(a[n_ - 1], q_));
  for (std::size_t i = 1; i < n_; ++i) EXPECT_EQ(c[i], a[i - 1]);
}

TEST_P(NttTest, XToNIsMinusOne) {
  // (X^(N/2))^2 = X^N = -1 in the ring.
  std::vector<u64> half(n_, 0);
  half[n_ / 2] = 1;
  const auto c = negacyclic_multiply(*tables_, half, half);
  std::vector<u64> minus_one(n_, 0);
  minus_one[0] = q_ - 1;
  EXPECT_EQ(c, minus_one);
}

TEST_P(NttTest, TransformIsLinear) {
  std::mt19937_64 rng(15);
  auto a = random_poly(n_, q_, rng);
  auto b = random_poly(n_, q_, rng);
  std::vector<u64> sum(n_);
  for (std::size_t i = 0; i < n_; ++i) sum[i] = add_mod(a[i], b[i], q_);
  tables_->forward(a);
  tables_->forward(b);
  tables_->forward(sum);
  for (std::size_t i = 0; i < n_; ++i) EXPECT_EQ(sum[i], add_mod(a[i], b[i], q_));
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttTest,
                         ::testing::Values(std::size_t{8}, std::size_t{64}, std::size_t{256},
                                           std::size_t{2048}));

TEST(Ntt, RejectsWrongModulus) {
  EXPECT_THROW(NttTables(17, 64), std::invalid_argument);  // 17 != 1 mod 128
}

TEST(Ntt, RejectsNonPowerOfTwo) {
  EXPECT_THROW(NttTables(find_ntt_prime(30, 64), 48), std::invalid_argument);
}

TEST(Ntt, SchoolbookSparseInputs) {
  // Sparse polynomials exercise the skip-zero fast path.
  const u64 q = find_ntt_prime(30, 32);
  NttTables tables(q, 32);
  std::vector<u64> a(32, 0), b(32, 0);
  a[3] = 5;
  b[30] = 7;
  const auto expect = negacyclic_multiply_schoolbook(q, a, b);
  // X^3 * X^30 = X^33 = -X^1.
  std::vector<u64> manual(32, 0);
  manual[1] = neg_mod(35 % q, q);
  EXPECT_EQ(expect, manual);
  EXPECT_EQ(negacyclic_multiply(tables, a, b), manual);
}

}  // namespace
}  // namespace flash::hemath
