// CSD twiddle quantization: digit counts, approximation error bounds, and
// monotone improvement with k.
#include <gtest/gtest.h>

#include <cmath>

#include "fft/twiddle.hpp"

namespace flash::fft {
namespace {

TEST(Csd, ExactPowersOfTwoUseOneDigit) {
  for (double x : {0.5, -0.25, 1.0, 0.0078125}) {
    const CsdValue v = csd_quantize(x, 8, -30);
    EXPECT_EQ(v.digits.size(), 1u) << x;
    EXPECT_DOUBLE_EQ(v.value, x);
    EXPECT_DOUBLE_EQ(v.error, 0.0);
  }
}

TEST(Csd, ZeroHasNoDigits) {
  const CsdValue v = csd_quantize(0.0, 5, -20);
  EXPECT_TRUE(v.digits.empty());
  EXPECT_DOUBLE_EQ(v.value, 0.0);
}

TEST(Csd, PaperExample21Over32) {
  // omega = 21/32 = 2^-1 + 2^-3 + 2^-5 (the paper's shift-add example).
  const CsdValue v = csd_quantize(21.0 / 32.0, 8, -30);
  EXPECT_LE(v.digits.size(), 3u);
  EXPECT_NEAR(v.value, 21.0 / 32.0, 1e-12);
}

TEST(Csd, RespectsDigitBudget) {
  const CsdValue v = csd_quantize(0.7071067811865476, 3, -30);
  EXPECT_LE(v.digits.size(), 3u);
  // Greedy CSD halves the residual per digit at worst.
  EXPECT_LT(std::abs(v.value - 0.7071067811865476), std::exp2(-3));
}

TEST(Csd, ErrorShrinksWithK) {
  const double x = 0.6180339887;
  double prev = 1.0;
  for (int k = 1; k <= 10; ++k) {
    const CsdValue v = csd_quantize(x, k, -40);
    const double err = std::abs(v.value - x);
    EXPECT_LE(err, prev + 1e-15) << k;
    prev = err;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(Csd, MinExponentTruncates) {
  const CsdValue v = csd_quantize(0.333333333, 20, -6);
  for (const auto& d : v.digits) EXPECT_GE(d.exponent, -6);
  EXPECT_LT(std::abs(v.error), std::exp2(-6));
}

TEST(Csd, NegativeValues) {
  const CsdValue v = csd_quantize(-0.6875, 8, -30);  // -(2^-1 + 2^-3 + 2^-4)
  EXPECT_NEAR(v.value, -0.6875, 1e-12);
  EXPECT_LE(v.digits.size(), 3u);
}

TEST(Twiddle, TableErrorDecreasesWithK) {
  double prev = 1.0;
  for (int k : {1, 2, 4, 8, 12}) {
    const auto table = quantize_fft_twiddles(256, +1, k, -24);
    const double rms = twiddle_rms_error(table);
    EXPECT_LT(rms, prev) << k;
    prev = rms;
  }
  EXPECT_LT(prev, 1e-4);
}

TEST(Twiddle, UnitMagnitudeApproximatelyPreserved) {
  const auto table = quantize_fft_twiddles(128, +1, 8, -24);
  for (const auto& t : table) {
    EXPECT_NEAR(std::abs(t.value()), 1.0, 0.01);
  }
}

TEST(Twiddle, FirstEntryIsExactOne) {
  const auto table = quantize_fft_twiddles(64, +1, 3, -20);
  EXPECT_DOUBLE_EQ(table[0].value().real(), 1.0);
  EXPECT_DOUBLE_EQ(table[0].value().imag(), 0.0);
  EXPECT_EQ(table[0].digit_count(), 1);
}

TEST(Twiddle, DigitCountBounded) {
  const int k = 5;
  const auto table = quantize_fft_twiddles(512, +1, k, -24);
  for (const auto& t : table) {
    EXPECT_LE(static_cast<int>(t.re.digits.size()), k);
    EXPECT_LE(static_cast<int>(t.im.digits.size()), k);
  }
}

}  // namespace
}  // namespace flash::fft
