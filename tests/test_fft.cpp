// Complex FFT and the folded negacyclic transform: reference-DFT agreement,
// inverse property, and exactness of integer negacyclic products.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "fft/complex_fft.hpp"
#include "fft/negacyclic.hpp"
#include "hemath/ntt.hpp"

namespace flash::fft {
namespace {

constexpr double kTol = 1e-9;

void expect_close(const std::vector<cplx>& a, const std::vector<cplx>& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "i=" << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "i=" << i;
  }
}

std::vector<cplx> random_signal(std::size_t m, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> a(m);
  for (auto& x : a) x = {dist(rng), dist(rng)};
  return a;
}

class FftPlanTest : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(FftPlanTest, MatchesReferenceDft) {
  const auto [m, sign] = GetParam();
  std::mt19937_64 rng(31);
  const auto a = random_signal(m, rng);
  auto b = a;
  FftPlan plan(m, sign);
  plan.forward(b);
  expect_close(b, dft_reference(a, sign), 1e-8 * static_cast<double>(m));
}

TEST_P(FftPlanTest, InverseRoundTrip) {
  const auto [m, sign] = GetParam();
  std::mt19937_64 rng(32);
  const auto a = random_signal(m, rng);
  auto b = a;
  FftPlan plan(m, sign);
  plan.forward(b);
  plan.inverse(b);
  expect_close(b, a, kTol * static_cast<double>(m));
}

INSTANTIATE_TEST_SUITE_P(SizesAndSigns, FftPlanTest,
                         ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{8},
                                                              std::size_t{64}, std::size_t{1024}),
                                            ::testing::Values(+1, -1)));

TEST(FftPlan, ImpulseGivesFlatSpectrum) {
  FftPlan plan(16, +1);
  std::vector<cplx> a(16, cplx{0, 0});
  a[0] = 1.0;
  plan.forward(a);
  for (const auto& v : a) {
    EXPECT_NEAR(v.real(), 1.0, kTol);
    EXPECT_NEAR(v.imag(), 0.0, kTol);
  }
}

TEST(FftPlan, RejectsBadSizes) {
  EXPECT_THROW(FftPlan(0, 1), std::invalid_argument);
  EXPECT_THROW(FftPlan(12, 1), std::invalid_argument);
  EXPECT_THROW(FftPlan(16, 2), std::invalid_argument);
}

class NegacyclicTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NegacyclicTest, FoldUnfoldRoundTrip) {
  const std::size_t n = GetParam();
  NegacyclicFft fft(n);
  std::mt19937_64 rng(33);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  std::vector<double> a(n);
  for (auto& x : a) x = dist(rng);
  const auto z = fft.fold(a);
  EXPECT_EQ(z.size(), n / 2);
  const auto back = fft.unfold(z);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], a[i], kTol);
}

TEST_P(NegacyclicTest, ForwardInverseRoundTrip) {
  const std::size_t n = GetParam();
  NegacyclicFft fft(n);
  std::mt19937_64 rng(34);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  std::vector<double> a(n);
  for (auto& x : a) x = dist(rng);
  const auto back = fft.inverse(fft.forward(a));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], a[i], 1e-8);
}

TEST_P(NegacyclicTest, IntegerMultiplyMatchesSchoolbook) {
  const std::size_t n = GetParam();
  NegacyclicFft fft(n);
  std::mt19937_64 rng(35);
  std::uniform_int_distribution<i64> dist(-100, 100);
  std::vector<i64> a(n), b(n);
  for (auto& x : a) x = dist(rng);
  for (auto& x : b) x = dist(rng);
  EXPECT_EQ(fft.multiply(a, b), negacyclic_multiply_i64(a, b));
}

INSTANTIATE_TEST_SUITE_P(Degrees, NegacyclicTest,
                         ::testing::Values(std::size_t{4}, std::size_t{16}, std::size_t{256},
                                           std::size_t{2048}));

TEST(Negacyclic, SpectrumEvaluatesAtOddRoots) {
  // forward()[u] must equal a(zeta^(4u+1)) with zeta = e^{i pi / n}.
  const std::size_t n = 16;
  NegacyclicFft fft(n);
  std::mt19937_64 rng(36);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(n);
  for (auto& x : a) x = dist(rng);
  const auto spec = fft.forward(a);
  for (std::size_t u = 0; u < n / 2; ++u) {
    const double theta = std::numbers::pi * static_cast<double>(4 * u + 1) / static_cast<double>(n);
    cplx eval{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      eval += a[j] * std::polar(1.0, theta * static_cast<double>(j));
    }
    EXPECT_NEAR(spec[u].real(), eval.real(), 1e-9) << u;
    EXPECT_NEAR(spec[u].imag(), eval.imag(), 1e-9) << u;
  }
}

TEST(Negacyclic, MultiplyModMatchesNtt) {
  const std::size_t n = 64;
  const u64 q = 65537;  // 1 mod 128
  NegacyclicFft fft(n);
  std::mt19937_64 rng(37);
  std::vector<u64> a(n), b(n);
  for (auto& x : a) x = rng() % q;
  for (auto& x : b) x = rng() % 16;  // small weights: products stay exact in double
  const auto via_fft = fft.multiply_mod(a, b, q);
  const auto expect = hemath::negacyclic_multiply_schoolbook(q, a, b);
  EXPECT_EQ(via_fft, expect);
}

TEST(Negacyclic, MultiplyLinearInFirstArgument) {
  const std::size_t n = 32;
  NegacyclicFft fft(n);
  std::mt19937_64 rng(38);
  std::uniform_int_distribution<i64> dist(-50, 50);
  std::vector<i64> a(n), b(n), c(n), apb(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
    c[i] = dist(rng);
    apb[i] = a[i] + b[i];
  }
  const auto lhs = fft.multiply(apb, c);
  const auto ra = fft.multiply(a, c);
  const auto rb = fft.multiply(b, c);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(lhs[i], ra[i] + rb[i]);
}

}  // namespace
}  // namespace flash::fft
