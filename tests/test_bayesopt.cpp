// Gaussian-process surrogate and the Bayesian DSE explorer.
#include <gtest/gtest.h>

#include "dse/bayesopt.hpp"

namespace flash::dse {
namespace {

SpaceBounds test_bounds() { return SpaceBounds{10, 39, 2, 18}; }

TEST(GaussianProcess, InterpolatesTrainingData) {
  GaussianProcess gp(0.5, 1.0, 1e-8);
  std::vector<std::vector<double>> x = {{0.0}, {0.3}, {0.7}, {1.0}};
  std::vector<double> y = {1.0, 2.0, -1.0, 0.5};
  gp.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto pred = gp.predict(x[i]);
    EXPECT_NEAR(pred.mean, y[i], 1e-3) << i;
    EXPECT_LT(pred.variance, 1e-3) << i;
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(0.2, 1.0, 1e-6);
  gp.fit({{0.0}, {0.1}}, {0.0, 0.1});
  const double var_near = gp.predict({0.05}).variance;
  const double var_far = gp.predict({0.9}).variance;
  EXPECT_GT(var_far, 10.0 * var_near);
}

TEST(GaussianProcess, SmoothPredictionBetweenPoints) {
  GaussianProcess gp(0.4, 1.0, 1e-6);
  gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
  const double mid = gp.predict({0.5}).mean;
  EXPECT_GT(mid, 0.1);
  EXPECT_LT(mid, 0.9);
}

TEST(GaussianProcess, RejectsBadInput) {
  GaussianProcess gp(0.5, 1.0, 1e-6);
  EXPECT_THROW(gp.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(gp.predict({0.0}), std::logic_error);
}

TEST(BayesianExplorer, ProducesBudgetedEvaluationsAndFront) {
  const std::size_t n = 512;
  DesignSpace space(n / 2, test_bounds());
  ErrorModel model = ErrorModel::from_weight_stats(n, 36, 8.0);
  CostModel cost(n / 2, test_bounds());
  BayesianExplorer explorer(std::move(space), std::move(model), std::move(cost), 777);
  BayesOptions opts;
  opts.evaluations = 120;
  const auto all = explorer.explore(opts);
  EXPECT_EQ(all.size(), 120u);
  const auto front = pareto_front(all);
  EXPECT_GE(front.size(), 3u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LE(front[i].error_variance, front[i - 1].error_variance);
  }
}

TEST(BayesianExplorer, ComparableToEvolutionaryAtEqualBudget) {
  // Both searches should reach low-power feasible points; BO must be within
  // a modest factor of the evolutionary archive on the common threshold.
  const std::size_t n = 512;
  const SpaceBounds bounds = test_bounds();
  const ErrorModel model = ErrorModel::from_weight_stats(n, 36, 8.0);
  const CostModel cost(n / 2, bounds);
  const std::size_t budget = 200;

  BayesianExplorer bo(DesignSpace(n / 2, bounds), ErrorModel(model), CostModel(cost), 4242);
  BayesOptions bopts;
  bopts.evaluations = budget;
  const auto bo_points = bo.explore(bopts);

  DseExplorer evo(DesignSpace(n / 2, bounds), ErrorModel(model), CostModel(cost), 4242);
  DseOptions eopts;
  eopts.evaluations = budget;
  const auto evo_points = evo.explore(eopts);

  const double threshold = 1e-6;
  auto best_power = [&](const std::vector<EvaluatedPoint>& pts) {
    double best = 1e300;
    for (const auto& e : pts) {
      if (e.error_variance <= threshold) best = std::min(best, e.normalized_power);
    }
    return best;
  };
  const double bo_best = best_power(bo_points);
  const double evo_best = best_power(evo_points);
  ASSERT_LT(bo_best, 1e300) << "BO found no feasible point";
  ASSERT_LT(evo_best, 1e300) << "evolutionary found no feasible point";
  EXPECT_LT(bo_best, 2.0 * evo_best);
  EXPECT_LT(evo_best, 2.0 * bo_best);
}

}  // namespace
}  // namespace flash::dse
