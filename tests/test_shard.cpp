// Sharded serving tests (ctest -L mt): a ShardRouter in front of forked
// worker processes must be *bit-invisible* — any shard count serves the
// identical bytes as a bare serial ConvRunner — and its failure machinery
// (deadline gate, cancellation, dead-shard rejection, chaos kill/respawn)
// must conserve metrics. The TSan-relevant threads here are the router's
// per-shard readers; workers are whole separate processes.
//
// The kill/respawn paths fork with reader threads live, which thread
// sanitizers do not support — those cases are compiled out under TSan and
// covered by the ASan soak job instead (tests/README.md).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/serve_clock.hpp"
#include "shard/shard_router.hpp"
#include "tensor/conv.hpp"
#include "testing/generators.hpp"
#include "testing/oracle.hpp"
#include "wire/wire_format.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FLASH_TSAN 1
#endif
#endif
#if !defined(FLASH_TSAN) && defined(__SANITIZE_THREAD__)
#define FLASH_TSAN 1
#endif

namespace flash::shard {
namespace {

wire::PlanSpecWire plan_from_case(const testing::ConvCase& layer) {
  wire::PlanSpecWire spec;
  spec.params = layer.params;
  spec.backend = bfv::PolyMulBackend::kNtt;
  spec.protocol_seed = layer.spec.seed;
  spec.weights = layer.weights;
  spec.stride = layer.spec.stride;
  spec.pad = static_cast<std::size_t>(layer.spec.pad);
  spec.in_h = layer.spec.h;
  spec.in_w = layer.spec.w;
  return spec;
}

testing::ConvCase small_case(std::uint64_t seed) {
  return testing::make_conv_case(
      {.seed = seed, .c = 1, .m = 2, .h = 4, .w = 4, .k = 2, .stride = 1, .pad = 0});
}

// --- determinism: the tentpole contract ------------------------------------

TEST(ShardRouter, TraceIsBitIdenticalAcrossOneTwoAndFourShards) {
  const testing::HConvOracle oracle;
  const auto trace = testing::make_serve_trace({0x5a4d1, 3, 10});
  for (std::size_t shards : {1u, 2u, 4u}) {
    const auto report = oracle.run_trace(trace, /*dispatchers=*/0, /*max_batch=*/3, shards);
    EXPECT_TRUE(report.ok) << "shards=" << shards << ": " << report.summary();
  }
}

TEST(ShardRouter, ShardedMatchesInProcessServerOnTheSameTrace) {
  const testing::HConvOracle oracle;
  const auto trace = testing::make_serve_trace({0x5a4d2, 2, 8});
  // Both backends are independently pinned to the bare serial runner, which
  // transitively pins them to each other; run both to make the cross-check
  // explicit in one test.
  EXPECT_TRUE(oracle.run_trace(trace, 1, 4, 0).ok);
  EXPECT_TRUE(oracle.run_trace(trace, 0, 4, 2).ok);
}

TEST(ShardRouter, SingleRequestRoundTrip) {
  const auto layer = small_case(0x5a4d3);
  ShardRouter router({.shards = 2});
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));
  ShardFuture fut = router.submit(plan, layer.x, {.stream = 0});
  fut.wait();
  ASSERT_EQ(fut.state(), ShardRequestState::kDone) << fut.error();
  const tensor::Tensor3 expect = tensor::conv2d(layer.x, layer.weights, {1, 0});
  EXPECT_EQ(fut.result().reconstruct(layer.params.t).data(), expect.data());
  EXPECT_EQ(fut.stream(), 0u);
  EXPECT_LT(fut.shard(), 2u);
}

// --- warm-up handshake -----------------------------------------------------

TEST(ShardRouter, RegistrationDedupesByContentAndReportsVerdict) {
  const auto layer = small_case(0x5a4d4);
  ShardRouter router({.shards = 2, .certify = serve::CertifyPolicy::kWarn});
  const ShardPlanId a = router.register_plan(plan_from_case(layer));
  const ShardPlanId b = router.register_plan(plan_from_case(layer));
  EXPECT_EQ(a, b);  // same spec bytes -> same plan, no second round-trip
  // kWarn certifies every unique plan: the verdict must be a definite
  // proven/unproven, never "uncertified".
  const wire::PlanVerdict v = router.plan_verdict(a);
  EXPECT_TRUE(v == wire::PlanVerdict::kProven || v == wire::PlanVerdict::kUnproven);

  ShardRouter off_router({.shards = 1, .certify = serve::CertifyPolicy::kOff});
  const ShardPlanId c = off_router.register_plan(plan_from_case(layer));
  EXPECT_EQ(off_router.plan_verdict(c), wire::PlanVerdict::kUncertified);
}

TEST(ShardRouter, SamePlanAlwaysLandsOnItsContentHashShard) {
  const auto a = small_case(0x5a4d5);
  const auto b = small_case(0x5a4d6);
  ShardRouter r1({.shards = 4});
  ShardRouter r2({.shards = 4});
  // Shard assignment is a pure function of the plan bytes — identical
  // across router instances (and, transitively, across restarts).
  EXPECT_EQ(r1.shard_of(r1.register_plan(plan_from_case(a))),
            r2.shard_of(r2.register_plan(plan_from_case(a))));
  EXPECT_EQ(r1.shard_of(r1.register_plan(plan_from_case(b))),
            r2.shard_of(r2.register_plan(plan_from_case(b))));
}

// --- router-side deadlines (monotonic clock, test-injected) ----------------

TEST(ShardRouter, ExpiredDeadlineNeverCrossesTheWire) {
  const auto layer = small_case(0x5a4d7);
  ShardRouter router({.shards = 1});
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));

  ShardSubmitOptions opts;
  opts.deadline = serve::now() - std::chrono::seconds(1);
  ShardFuture fut = router.submit(plan, layer.x, opts);
  EXPECT_EQ(fut.state(), ShardRequestState::kDeadlineExceeded);
  router.drain();
  EXPECT_EQ(router.metrics().deadline_expired.value(), 1u);
  EXPECT_EQ(router.metrics().terminal(), router.metrics().submitted.value());
}

TEST(ShardRouter, ClockInjectionExpiresFutureDeadlineAtAdmission) {
  const auto layer = small_case(0x5a4d8);
  ShardRouter router({.shards = 1});
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));

  // A 1-hour deadline is comfortably in the future... until the injected
  // clock jumps 2 hours: admission must then reject on the *monotonic*
  // serve clock, proving the gate never consults a wall clock.
  const auto deadline = serve::now() + std::chrono::hours(1);
  serve::testing_hooks::advance_clock(std::chrono::hours(2));
  ShardFuture fut = router.submit(plan, layer.x, {.deadline = deadline});
  serve::testing_hooks::reset_clock();
  EXPECT_EQ(fut.state(), ShardRequestState::kDeadlineExceeded);
  router.drain();
}

// --- cancellation ----------------------------------------------------------

TEST(ShardRouter, CancelBeforeResponseWinsExactlyOnce) {
  const auto layer = small_case(0x5a4d9);
  // A dwell slows the worker enough that cancel reliably beats the response.
  RouterOptions opts;
  opts.shards = 1;
  opts.worker_dwell_ns = 50'000'000;  // 50 ms
  ShardRouter router(opts);
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));

  ShardFuture fut = router.submit(plan, layer.x, {.stream = 0});
  const bool won = fut.cancel();
  const bool won_again = fut.cancel();
  EXPECT_FALSE(won && won_again);  // at most one winning cancel
  fut.wait();
  if (won) {
    EXPECT_EQ(fut.state(), ShardRequestState::kCancelled);
  } else {
    EXPECT_EQ(fut.state(), ShardRequestState::kDone);
  }
  router.drain();
  const RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.terminal(), m.submitted.value());
  // The worker may still have computed the cancelled request; its late
  // response must have been dropped, not double-finished.
  EXPECT_EQ(m.completed.value() + m.cancelled.value(), 1u);
}

// --- write-path liveness and frame-size admission --------------------------

TEST(ShardRouter, LargeFrameBurstWithTinySocketBuffersDoesNotDeadlock) {
  // Regression: submit() used to hold the worker mutex across a blocking
  // socket write. With frames larger than the socket buffers and the worker
  // mid-batch writing results, a submit could block mid-frame holding the
  // mutex the reader needs to drain those results — router write, worker
  // write, and reader all waiting on each other. Tiny buffers plus
  // larger-than-buffer frames (2x32x32 inputs ~16 KiB, results ~2x that)
  // reproduce that regime; the writer-thread design must complete anyway.
  const auto layer = testing::make_conv_case(
      {.seed = 0x5a4de, .c = 2, .m = 2, .h = 32, .w = 32, .k = 3, .stride = 1, .pad = 0});
  RouterOptions opts;
  opts.shards = 1;
  opts.certify = serve::CertifyPolicy::kOff;
  opts.worker_max_batch = 4;
  opts.worker_dwell_ns = 20'000'000;  // keep the worker busy while submits pile up
  opts.socket_buffer_bytes = 4096;
  ShardRouter router(opts);
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));

  std::vector<ShardFuture> futs;
  for (std::size_t i = 0; i < 12; ++i) {
    futs.push_back(router.submit(plan, layer.x, {.stream = i}));
  }
  for (auto& f : futs) {
    ASSERT_TRUE(f.wait_for(std::chrono::seconds(120))) << "write-path deadlock";
    EXPECT_EQ(f.state(), ShardRequestState::kDone) << f.error();
  }
  router.drain();
  EXPECT_EQ(router.metrics().completed.value(), futs.size());
  EXPECT_EQ(router.metrics().terminal(), router.metrics().submitted.value());
}

TEST(ShardRouter, OversizedRequestIsRejectedAtSubmitNotSentToTheWorker) {
  // An 8x32x32 input encodes past a 64 KiB frame cap. Written anyway it
  // would die at the worker's header gate, be read as a worker death, and
  // burn the whole respawn budget resending the same frame; the router must
  // instead reject just this request at admission.
  const auto layer = testing::make_conv_case(
      {.seed = 0x5a4df, .c = 8, .m = 2, .h = 32, .w = 32, .k = 3, .stride = 1, .pad = 0});
  RouterOptions opts;
  opts.shards = 1;
  opts.certify = serve::CertifyPolicy::kOff;
  opts.max_frame_bytes = std::uint64_t{1} << 16;
  ShardRouter router(opts);
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));

  ShardFuture fut = router.submit(plan, layer.x, {.stream = 0});
  EXPECT_EQ(fut.state(), ShardRequestState::kRejected);
  EXPECT_NE(fut.error().find("max_frame_bytes"), std::string::npos) << fut.error();
  router.drain();
  const RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.rejected.value(), 1u);
  EXPECT_EQ(m.terminal(), m.submitted.value());
  EXPECT_EQ(m.respawns.value(), 0u);  // the shard never saw the frame, let alone died

  // The same shard still serves plans whose frames fit.
  const auto small = small_case(0x5a4e0);
  const ShardPlanId small_plan = router.register_plan(plan_from_case(small));
  ShardFuture ok = router.submit(small_plan, small.x, {.stream = 1});
  ok.wait();
  EXPECT_EQ(ok.state(), ShardRequestState::kDone) << ok.error();
}

TEST(ShardRouter, OversizedResultDegradesToAPerRequestFailure) {
  // The request fits the 64 KiB cap but its result (two 8x32x32 shares)
  // does not: the worker must answer that seq with an in-band error — never
  // write a frame the router's header gate would read as a worker death.
  const auto layer = testing::make_conv_case(
      {.seed = 0x5a4e1, .c = 4, .m = 8, .h = 32, .w = 32, .k = 1, .stride = 1, .pad = 0});
  RouterOptions opts;
  opts.shards = 1;
  opts.certify = serve::CertifyPolicy::kOff;
  opts.max_frame_bytes = std::uint64_t{1} << 16;
  ShardRouter router(opts);
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));

  ShardFuture fut = router.submit(plan, layer.x, {.stream = 0});
  fut.wait();
  EXPECT_EQ(fut.state(), ShardRequestState::kFailed);
  EXPECT_NE(fut.error().find("max_frame_bytes"), std::string::npos) << fut.error();
  router.drain();
  const RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.failed.value(), 1u);
  EXPECT_EQ(m.terminal(), m.submitted.value());
  EXPECT_EQ(m.respawns.value(), 0u);  // the worker stayed up throughout
}

TEST(ShardWorker, DesyncedStreamMidCoalescingAnswersBatchThenDiesLoudly) {
  // Garbage right behind a valid submit lands in the coalescing window. The
  // worker must still answer the already-admitted request (its write side is
  // intact) and then exit 2 immediately — matching run()'s contract for a
  // malformed frame between dispatches, not linger until the next read.
  const auto layer = small_case(0x5a4e2);
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(sv[0]);
    WorkerOptions wopts;
    wopts.certify = serve::CertifyPolicy::kOff;
    ::_exit(run_worker(sv[1], 0, wopts));
  }
  ::close(sv[1]);
  wire::FrameChannel ch(sv[0]);

  wire::ByteWriter spec_w;
  wire::encode(plan_from_case(layer), spec_w);
  wire::Frame reg;
  reg.type = wire::MsgType::kRegisterPlan;
  reg.seq = 1;
  reg.body = spec_w.take();
  ASSERT_TRUE(ch.write_frame(reg));
  const std::optional<wire::Frame> reg_reply = ch.read_frame();
  ASSERT_TRUE(reg_reply.has_value());
  wire::ByteReader ack_r(reg_reply->body);
  const wire::RegisterPlanAck ack = wire::decode_register_plan_ack(ack_r);
  ASSERT_NE(ack.verdict, wire::PlanVerdict::kRejected) << ack.detail;

  // One send() carrying a valid submit plus trailing garbage: by the time
  // the worker finishes parsing the submit, the garbage is already readable,
  // so the coalescing loop deterministically hits the desynced bytes.
  wire::ByteWriter sub_w;
  wire::SubmitBody sub;
  sub.plan_id = ack.plan_id;
  sub.stream = 0;
  sub.x = layer.x;
  wire::encode(sub, sub_w);
  wire::Frame submit;
  submit.type = wire::MsgType::kSubmit;
  submit.seq = 2;
  submit.body = sub_w.take();
  wire::Bytes burst = wire::encode_frame(submit);
  burst.insert(burst.end(), 64, std::uint8_t{0xee});  // no FLASHWIR magic
  for (std::size_t off = 0; off < burst.size();) {
    const ssize_t n = ::send(sv[0], burst.data() + off, burst.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }

  const std::optional<wire::Frame> result = ch.read_frame();
  ASSERT_TRUE(result.has_value()) << "admitted request was never answered";
  EXPECT_EQ(result->type, wire::MsgType::kResult);
  EXPECT_EQ(result->seq, 2u);
  wire::ByteReader res_r(result->body);
  EXPECT_TRUE(wire::decode_result(res_r).ok);

  EXPECT_FALSE(ch.read_frame().has_value());  // EOF: the worker died right after
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2) << "protocol bug must exit loudly, not cleanly";
}

TEST(ShardRouter, UnknownPlanThrowsWithoutBreakingConservation) {
  ShardRouter router({.shards = 1});
  EXPECT_THROW(router.submit(0, tensor::Tensor3(1, 1, 1), {}), std::invalid_argument);
  // The throw must leave no metrics trace: nothing was admitted, so nothing
  // ever reaches a terminal state for it.
  EXPECT_EQ(router.metrics().submitted.value(), 0u);
  EXPECT_EQ(router.metrics().terminal(), 0u);
}

// --- metrics ---------------------------------------------------------------

TEST(ShardRouter, RouterAndWorkerMetricsAgreeAfterDrain) {
  const auto layer = small_case(0x5a4da);
  ShardRouter router({.shards = 2});
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));
  constexpr std::size_t kRequests = 6;
  std::vector<ShardFuture> futs;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futs.push_back(router.submit(plan, layer.x, {.stream = i}));
  }
  router.drain();
  for (auto& f : futs) EXPECT_EQ(f.state(), ShardRequestState::kDone) << f.error();

  const RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.submitted.value(), kRequests);
  EXPECT_EQ(m.completed.value(), kRequests);
  EXPECT_EQ(m.terminal(), m.submitted.value());

  // The owning shard's worker (a separate process) reports the same count
  // over the wire; the other shard served nothing for this plan.
  const std::string json = router.worker_metrics_json(router.shard_of(plan));
  EXPECT_EQ(serve::json_number_at(json, "counters", "completed"),
            static_cast<double>(kRequests));
  const std::string rjson = router.metrics_json();
  EXPECT_EQ(serve::json_number_at(rjson, "counters", "completed"),
            static_cast<double>(kRequests));
}

// --- chaos: kill/respawn (not under TSan — fork with live reader threads) --

#if !defined(FLASH_TSAN)

TEST(ShardRouter, KillMidTraceIsBitInvisibleAndConservesMetrics) {
  const testing::HConvOracle oracle;
  const auto trace = testing::make_serve_trace({0x5a4db, 2, 12});
  const auto report =
      oracle.run_trace(trace, /*dispatchers=*/0, /*max_batch=*/2, /*shards=*/2,
                       /*kill_shard_every=*/5);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ShardRouter, RespawnReplaysRegistrationsAndFailsOverPendingWork) {
  const auto layer = small_case(0x5a4dc);
  RouterOptions opts;
  opts.shards = 1;
  opts.worker_dwell_ns = 20'000'000;  // keep requests in flight long enough to kill
  ShardRouter router(opts);
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));

  std::vector<ShardFuture> futs;
  for (std::size_t i = 0; i < 4; ++i) {
    futs.push_back(router.submit(plan, layer.x, {.stream = i}));
  }
  router.kill_worker(0);
  router.drain();

  const tensor::Tensor3 expect = tensor::conv2d(layer.x, layer.weights, {1, 0});
  for (std::size_t i = 0; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].state(), ShardRequestState::kDone)
        << "request " << i << ": " << futs[i].error();
    EXPECT_EQ(futs[i].result().reconstruct(layer.params.t).data(), expect.data());
  }
  const RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.kills.value(), 1u);
  EXPECT_GE(m.respawns.value(), 1u);
  EXPECT_EQ(m.completed.value(), futs.size());
  EXPECT_EQ(m.terminal(), m.submitted.value());

  // The respawned worker still serves: registration replay restored the
  // plan cache (same worker-local id), warm-up handshake and all.
  ShardFuture after = router.submit(plan, layer.x, {.stream = 99});
  after.wait();
  EXPECT_EQ(after.state(), ShardRequestState::kDone) << after.error();
}

TEST(ShardRouter, ShardDiesForGoodAfterRespawnBudgetAndRejectsCleanly) {
  const auto layer = small_case(0x5a4dd);
  RouterOptions opts;
  opts.shards = 1;
  opts.max_respawns = 1;
  opts.worker_dwell_ns = 20'000'000;
  ShardRouter router(opts);
  const ShardPlanId plan = router.register_plan(plan_from_case(layer));

  // Kill until the respawn budget (1) is exhausted and the shard goes dead:
  // from then on submits must be rejected terminally — never hang, never
  // crash. Kills landing mid-recovery are no-ops, so loop rather than
  // counting on exactly two.
  bool dead = false;
  for (int round = 0; round < 400 && !dead; ++round) {
    ShardFuture fut = router.submit(plan, layer.x, {.stream = static_cast<std::uint64_t>(round)});
    router.kill_worker(0);
    fut.wait();
    dead = fut.state() == ShardRequestState::kRejected;
    if (!dead) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(dead) << "shard never exhausted its respawn budget";
  router.drain();

  ShardFuture rejected = router.submit(plan, layer.x, {.stream = 2000});
  rejected.wait();
  EXPECT_EQ(rejected.state(), ShardRequestState::kRejected);
  const RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.terminal(), m.submitted.value());
  EXPECT_GE(m.kills.value(), 1u);
  EXPECT_EQ(m.respawns.value(), 1u);  // the budget
}

#endif  // !FLASH_TSAN

}  // namespace
}  // namespace flash::shard
