// Sharded transform cache: exactly-once construction under concurrent
// first-touch, hits never blocking behind a miss's O(N) build (the PR-4
// lock-convoy regression), and per-thread FxpFftStats merge semantics.
// Runs under the ThreadSanitizer build (`ctest -L mt`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/flash_accelerator.hpp"
#include "core/thread_pool.hpp"
#include "fft/transform_cache.hpp"
#include "hemath/primes.hpp"

namespace flash::fft {
namespace {

// The make hook is a plain function pointer, so test state lives in globals.
std::atomic<int> g_make_calls{0};
std::atomic<bool> g_miss_entered{false};
std::atomic<bool> g_release_miss{false};

void counting_hook(const char*) { g_make_calls.fetch_add(1, std::memory_order_relaxed); }

void stalling_hook(const char* kind) {
  g_make_calls.fetch_add(1, std::memory_order_relaxed);
  if (std::string_view(kind) == "ntt") {
    g_miss_entered.store(true, std::memory_order_release);
    while (!g_release_miss.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

class TransformCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_transform_caches();
    g_make_calls.store(0);
    g_miss_entered.store(false);
    g_release_miss.store(false);
  }
  void TearDown() override {
    testing_hooks::set_transform_cache_make_hook(nullptr);
    clear_transform_caches();
  }
};

TEST_F(TransformCacheTest, ConcurrentFirstTouchConstructsExactlyOnce) {
  testing_hooks::set_transform_cache_make_hook(&counting_hook);
  constexpr int kConfigs = 4;
  constexpr int kThreads = 8;
  const std::size_t ns[kConfigs] = {64, 128, 256, 512};

  std::vector<std::shared_ptr<const NegacyclicFft>> seen(
      static_cast<std::size_t>(kConfigs) * kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int c = 0; c < kConfigs; ++c) {
        seen[static_cast<std::size_t>(t) * kConfigs + static_cast<std::size_t>(c)] =
            shared_negacyclic_fft(ns[c]);
      }
    });
  }
  for (auto& th : threads) th.join();

  // K distinct configs were built exactly once each, no matter how many
  // threads raced on first touch.
  EXPECT_EQ(g_make_calls.load(), kConfigs);
  const TransformCacheStats stats = transform_cache_stats();
  EXPECT_EQ(stats.fft_entries, static_cast<std::size_t>(kConfigs));
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kConfigs));
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kConfigs) * (kThreads - 1));
  // Every thread got the same instance per key.
  for (int c = 0; c < kConfigs; ++c) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t) * kConfigs + static_cast<std::size_t>(c)].get(),
                seen[static_cast<std::size_t>(c)].get());
    }
  }
}

TEST_F(TransformCacheTest, HitsCompleteWhileMissConstructionIsStalled) {
  // Warm the FFT shard so later lookups of this key are pure hits.
  auto warm = shared_negacyclic_fft(256);
  testing_hooks::set_transform_cache_make_hook(&stalling_hook);

  // A miss on the NTT shard stalls inside make() — outside any lock.
  std::thread miss([] {
    const hemath::u64 q = hemath::find_ntt_prime(30, 1024);
    (void)shared_ntt_tables(q, 1024);
  });
  while (!g_miss_entered.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // While the miss is stalled, hits — same shard kind or not — must finish.
  std::atomic<int> hits_done{0};
  std::vector<std::thread> hitters;
  for (int t = 0; t < 4; ++t) {
    hitters.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        ASSERT_NE(shared_negacyclic_fft(256), nullptr);
      }
      hits_done.fetch_add(1);
    });
  }
  for (auto& th : hitters) th.join();
  // All hit traffic drained while the miss was still blocked in make().
  EXPECT_EQ(hits_done.load(), 4);
  EXPECT_TRUE(g_miss_entered.load());

  g_release_miss.store(true, std::memory_order_release);
  miss.join();
  EXPECT_EQ(transform_cache_stats().ntt_entries, 1u);
}

TEST_F(TransformCacheTest, StatsTrackHitsAndMisses) {
  (void)shared_negacyclic_fft(64);
  (void)shared_negacyclic_fft(64);
  const hemath::u64 q = hemath::find_ntt_prime(30, 64);
  (void)shared_ntt_tables(q, 64);
  const TransformCacheStats stats = transform_cache_stats();
  EXPECT_EQ(stats.fft_entries, 1u);
  EXPECT_EQ(stats.ntt_entries, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(TransformCacheTest, ThrowingMakeLeavesEntryRetryable) {
  // An FxpFftConfig with a stage_frac_bits size mismatch throws in the
  // FxpFft constructor; the cache must surface the exception and allow a
  // later corrected request (same n) to succeed.
  FxpFftConfig bad = core::default_approx_config(64, 1u << 10);
  bad.stage_frac_bits.pop_back();
  EXPECT_THROW((void)shared_fxp_transform(64, bad), std::invalid_argument);
  const FxpFftConfig good = core::default_approx_config(64, 1u << 10);
  EXPECT_NE(shared_fxp_transform(64, good), nullptr);
}

// Per-thread stats + merge() is the documented pattern for multithreaded
// transform use (FxpFftStats is not internally synchronized). Under TSan
// this asserts the shared transform instance plus thread-local stats are
// race-free, and that merge() aggregates exactly.
TEST_F(TransformCacheTest, PerThreadStatsMergeUnderThreadPool) {
  const std::size_t n = 256;
  const FxpFftConfig cfg = core::default_approx_config(n, 1u << 10);
  auto fxp = shared_fxp_transform(n, cfg);

  std::vector<double> input(n, 0.0);
  for (std::size_t i = 0; i < n; i += 7) input[i] = static_cast<double>((i % 13)) - 6.0;

  // Reference: one transform's stats, which every task below reproduces.
  FxpFftStats one;
  (void)fxp->forward(input, &one);

  constexpr std::size_t kTasks = 16;
  std::vector<FxpFftStats> per_task(kTasks);
  core::ThreadPool pool(4);
  pool.parallel_for(0, kTasks, [&](std::size_t i) {
    std::vector<cplx> out(n / 2);
    fxp->forward_into(input, out, &per_task[i]);
  });

  FxpFftStats merged;
  for (const FxpFftStats& s : per_task) merged.merge(s);
  EXPECT_EQ(merged.butterflies, one.butterflies * kTasks);
  EXPECT_EQ(merged.shift_add_terms, one.shift_add_terms * kTasks);
  EXPECT_EQ(merged.saturations, one.saturations * kTasks);
  ASSERT_EQ(merged.stage_peak_mantissa.size(), one.stage_peak_mantissa.size());
  for (std::size_t s = 0; s < one.stage_peak_mantissa.size(); ++s) {
    EXPECT_EQ(merged.stage_peak_mantissa[s], one.stage_peak_mantissa[s]) << s;
  }
}

}  // namespace
}  // namespace flash::fft
