// RNS basis compose/decompose round trips and error handling.
#include <gtest/gtest.h>

#include <random>

#include "hemath/primes.hpp"
#include "hemath/rns.hpp"

namespace flash::hemath {
namespace {

TEST(Rns, SmallRoundTrip) {
  RnsBasis basis({3, 5, 7});
  EXPECT_EQ(static_cast<u64>(basis.total_modulus()), 105u);
  for (u64 x = 0; x < 105; ++x) {
    EXPECT_EQ(static_cast<u64>(basis.compose(basis.decompose(x))), x);
  }
}

TEST(Rns, LargePrimesRoundTrip) {
  const auto primes = find_ntt_primes(40, 1024, 3);
  RnsBasis basis(primes);
  std::mt19937_64 rng(21);
  for (int i = 0; i < 200; ++i) {
    const u128 x = (static_cast<u128>(rng()) << 50) ^ rng();
    const u128 v = x % basis.total_modulus();
    EXPECT_TRUE(basis.compose(basis.decompose(v)) == v);
  }
}

TEST(Rns, DecomposeIsResidue) {
  RnsBasis basis({11, 13});
  const auto r = basis.decompose(100);
  EXPECT_EQ(r[0], 100u % 11);
  EXPECT_EQ(r[1], 100u % 13);
}

TEST(Rns, HomomorphicAddition) {
  RnsBasis basis({97, 101, 103});
  const u128 big_q = basis.total_modulus();
  std::mt19937_64 rng(22);
  for (int i = 0; i < 100; ++i) {
    const u128 a = rng() % big_q;
    const u128 b = rng() % big_q;
    auto ra = basis.decompose(a);
    const auto rb = basis.decompose(b);
    for (std::size_t j = 0; j < ra.size(); ++j) {
      ra[j] = add_mod(ra[j], rb[j], basis.moduli()[j]);
    }
    EXPECT_TRUE(basis.compose(ra) == (a + b) % big_q);
  }
}

TEST(Rns, RejectsNonCoprime) {
  EXPECT_THROW(RnsBasis({6, 9}), std::invalid_argument);
  EXPECT_THROW(RnsBasis({}), std::invalid_argument);
}

TEST(Rns, ComposeSizeMismatchThrows) {
  RnsBasis basis({3, 5});
  EXPECT_THROW(basis.compose({1}), std::invalid_argument);
}

}  // namespace
}  // namespace flash::hemath
