// Cheetah coefficient encoding: correctness of the polynomial convolution
// against direct conv2d, channel tiling, weight sparsity structure, and the
// analytic layer-tiling planner.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "encoding/encoder.hpp"
#include "encoding/tiling.hpp"
#include "tensor/quant.hpp"

namespace flash::encoding {
namespace {

class EncodingConv : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(EncodingConv, MatchesDirectConv) {
  const auto [c, hw, k] = GetParam();
  std::mt19937_64 rng(c * 100 + hw * 10 + k);
  const tensor::Tensor3 x = tensor::random_activations(c, hw, hw, 5, rng);
  const tensor::Tensor4 w = tensor::random_weights(3, c, k, 4, rng);
  const std::size_t n = 1024;
  const tensor::Tensor3 expect = tensor::conv2d(x, w, {1, 0});
  const tensor::Tensor3 got = conv2d_via_encoding(x, w, n);
  EXPECT_EQ(got.data(), expect.data());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncodingConv,
    ::testing::Values(std::make_tuple(std::size_t{1}, std::size_t{8}, std::size_t{3}),
                      std::make_tuple(std::size_t{4}, std::size_t{8}, std::size_t{3}),
                      std::make_tuple(std::size_t{2}, std::size_t{16}, std::size_t{5}),
                      std::make_tuple(std::size_t{16}, std::size_t{7}, std::size_t{3}),
                      std::make_tuple(std::size_t{8}, std::size_t{10}, std::size_t{1}),
                      // forces multiple channel tiles: 8 * 81 > 1024 - slack
                      std::make_tuple(std::size_t{24}, std::size_t{9}, std::size_t{3})));

TEST(Encoding, RectangularKernelMatchesDirectConv) {
  // Stride phases produce non-square kernels; the encoder must handle them.
  std::mt19937_64 rng(123);
  const tensor::Tensor3 x = tensor::random_activations(3, 9, 11, 4, rng);
  for (auto [kh, kw] : {std::pair<std::size_t, std::size_t>{2, 3},
                        std::pair<std::size_t, std::size_t>{4, 1},
                        std::pair<std::size_t, std::size_t>{1, 5}}) {
    tensor::Tensor4 w(2, 3, kh, kw);
    std::uniform_int_distribution<tensor::i64> dist(-7, 7);
    for (auto& v : w.data()) v = dist(rng);
    const tensor::Tensor3 got = conv2d_via_encoding(x, w, 1024);
    const tensor::Tensor3 expect = tensor::conv2d(x, w, {1, 0});
    EXPECT_EQ(got.data(), expect.data()) << kh << "x" << kw;
  }
}

TEST(Tiling, PatchSidesArePowersOfTwo) {
  for (const auto& layer : tensor::resnet50_conv_layers()) {
    const LayerTiling t = plan_layer(layer, 4096);
    EXPECT_EQ(t.patch_h & (t.patch_h - 1), 0u) << layer.name;
    EXPECT_EQ(t.patch_h, t.patch_w) << layer.name;
    EXPECT_GE(t.patch_h, t.sub_k) << layer.name;
  }
}

TEST(Encoding, GeometryCapacity) {
  // 1024-degree poly, 8x8 patches, k=3: slack = 2*8+2 = 18;
  // (1024-18)/64 = 15 channels fit.
  ConvGeometry g{1024, 32, 8, 8, 3};
  EXPECT_EQ(g.channels_per_poly(), 15u);
  EXPECT_EQ(g.channel_tiles(), 3u);  // ceil(32/15)
  EXPECT_EQ(g.out_h(), 6u);
}

TEST(Encoding, GeometryTooLarge) {
  ConvGeometry g{256, 1, 32, 32, 3};  // 1024-coeff patch in 256-degree poly
  EXPECT_EQ(g.channels_per_poly(), 0u);
  EXPECT_THROW(ConvEncoder(256, 1, 32, 32, 3), std::invalid_argument);
}

TEST(Encoding, WeightPatternStructure) {
  ConvEncoder enc(1024, 4, 8, 8, 3);
  const auto pattern = enc.weight_pattern();
  EXPECT_EQ(pattern.weight(), 4u * 9u);  // cpp * k * k
  EXPECT_GT(pattern.sparsity(), 0.96);
  // Nonzeros live at channel stripes: local*64 + i*8 + j with i,j < 3.
  for (std::size_t p : pattern.nonzeros()) {
    const std::size_t within = p % 64;
    EXPECT_LT(within % 8, 3u);
    EXPECT_LT(within / 8, 3u);
  }
}

TEST(Encoding, EncodedWeightMatchesPattern) {
  std::mt19937_64 rng(77);
  ConvEncoder enc(1024, 4, 8, 8, 3);
  tensor::Tensor4 w = tensor::random_weights(1, 4, 3, 4, rng);
  // Ensure no zero weights so value pattern == structural pattern.
  for (auto& v : w.data()) {
    if (v == 0) v = 1;
  }
  const auto coeffs = enc.encode_weight(w, 0, 0);
  const auto pattern = enc.weight_pattern();
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    EXPECT_EQ(coeffs[i] != 0, pattern.is_active(i)) << i;
  }
}

TEST(Encoding, PaperSparsityClaim) {
  // Paper §III-B: H = W = 58, k = 3 for ResNet-50 -> >90% sparsity.
  const std::size_t n = 4096;
  ConvGeometry g{n, 1, 58, 58, 3};
  ASSERT_EQ(g.channels_per_poly(), 1u);
  const double sparsity = 1.0 - static_cast<double>(9) / static_cast<double>(n);
  EXPECT_GT(sparsity, 0.99);
}

TEST(Encoding, OutputPositionsDistinctAndInRange) {
  ConvEncoder enc(1024, 4, 8, 8, 3);
  const auto pos = enc.output_positions();
  EXPECT_EQ(pos.size(), 36u);  // 6x6 outputs
  std::set<std::size_t> uniq(pos.begin(), pos.end());
  EXPECT_EQ(uniq.size(), pos.size());
  for (std::size_t p : pos) EXPECT_LT(p, 1024u);
}

TEST(Tiling, SmallLayerSingleTile) {
  tensor::LayerConfig layer;
  layer.name = "toy";
  layer.in_c = 4;
  layer.in_h = layer.in_w = 8;
  layer.out_c = 8;
  layer.kernel = 3;
  layer.stride = 1;
  layer.pad = 1;
  const LayerTiling t = plan_layer(layer, 4096);
  EXPECT_EQ(t.sub_convs, 1u);
  EXPECT_EQ(t.spatial_tiles, 1u);
  EXPECT_EQ(t.channel_tiles, 1u);
  EXPECT_EQ(t.input_polys, 1u);
  EXPECT_EQ(t.weight_polys, 8u);
  EXPECT_EQ(t.weight_transforms, 8u);
  EXPECT_EQ(t.cipher_transforms, 2u);
  EXPECT_EQ(t.inverse_transforms, 16u);
}

TEST(Tiling, StridedLayerDecomposes) {
  tensor::LayerConfig layer;
  layer.name = "strided";
  layer.in_c = 16;
  layer.in_h = layer.in_w = 56;
  layer.out_c = 32;
  layer.kernel = 3;
  layer.stride = 2;
  layer.pad = 1;
  const LayerTiling t = plan_layer(layer, 4096);
  EXPECT_EQ(t.sub_convs, 4u);  // min(k,s)^2 = 4
  EXPECT_EQ(t.sub_k, 2u);      // ceil(3/2)
  EXPECT_GE(t.spatial_tiles, 1u);
}

TEST(Tiling, OneByOneStride2UsesSinglePhase) {
  tensor::LayerConfig layer;
  layer.name = "downsample";
  layer.in_c = 64;
  layer.in_h = layer.in_w = 56;
  layer.out_c = 128;
  layer.kernel = 1;
  layer.stride = 2;
  layer.pad = 0;
  const LayerTiling t = plan_layer(layer, 4096);
  EXPECT_EQ(t.sub_convs, 1u);  // a strided 1x1 touches one phase only
  EXPECT_EQ(t.sub_k, 1u);
}

TEST(Tiling, LargeLayerNeedsSpatialTiles) {
  tensor::LayerConfig layer;
  layer.name = "conv1-like";
  layer.in_c = 3;
  layer.in_h = layer.in_w = 224;
  layer.out_c = 64;
  layer.kernel = 7;
  layer.stride = 2;
  layer.pad = 3;
  const LayerTiling t = plan_layer(layer, 4096);
  EXPECT_GT(t.spatial_tiles, 1u);
  EXPECT_GT(t.weight_sparsity(), 0.9);
}

TEST(Tiling, EveryResnetLayerPlans) {
  for (std::size_t n : {std::size_t{2048}, std::size_t{4096}}) {
    for (const auto& layer : tensor::resnet50_conv_layers()) {
      const LayerTiling t = plan_layer(layer, n);
      EXPECT_GT(t.weight_transforms, 0u) << layer.name;
      EXPECT_GT(t.weight_sparsity(), 0.5) << layer.name;
    }
    for (const auto& layer : tensor::resnet18_conv_layers()) {
      EXPECT_GT(plan_layer(layer, n).weight_transforms, 0u) << layer.name;
    }
  }
}

TEST(Tiling, Resnet50TotalsMatchPaperImpliedCounts) {
  // Cross-validation against the paper's own arithmetic: CHAM's published
  // ResNet-50 latency (317.26 ms at 2.93M normalized NTT/s) implies ~929k
  // transforms; our independent tiling planner must land in the same range.
  const auto c = plan_network(tensor::resnet50_conv_layers(), 4096);
  const std::uint64_t total = c.weight_transforms + c.cipher_transforms + c.inverse_transforms;
  EXPECT_GT(total, 700'000u);
  EXPECT_LT(total, 1'100'000u);
  // And weight transforms carry ~90% of them (the Fig. 1 observation).
  EXPECT_GT(static_cast<double>(c.weight_transforms) / static_cast<double>(total), 0.8);
}

TEST(Tiling, WeightTransformsDominateNetworkCounts) {
  // The Fig. 1 observation: weight transforms outnumber activation
  // transforms by a large factor (they scale with output channels).
  const auto counts = plan_network(tensor::resnet50_conv_layers(), 4096);
  EXPECT_GT(counts.weight_transforms, 5 * counts.cipher_transforms);
}

}  // namespace
}  // namespace flash::encoding
