// Error-budget regression: the analytical error model must keep predicting
// the approximate FFT's real behavior for the paper's Table-1 operating
// points. Each config's measured spectrum-error variance over 1000 random
// sparse weight polynomials has to stay within the model's prediction times
// a documented slack factor.
//
// kBudgetSlack = 300 is the analytical-vs-Monte-Carlo envelope already
// demonstrated by test_dse (AnalyticalWithinOrdersOfMagnitude): the
// closed-form model tracks the measurement to well under three orders of
// magnitude across the whole design space. If either the FXP FFT or the
// model drifts past that envelope, this test is the tripwire.
#include <gtest/gtest.h>

#include <random>

#include "dse/error_model.hpp"
#include "dse/space.hpp"
#include "hemath/sampler.hpp"

namespace flash {
namespace {

constexpr double kBudgetSlack = 300.0;
constexpr std::size_t kTrials = 1000;
constexpr std::uint64_t kBaseSeed = 0xe44b1dULL;

struct Workload {
  std::size_t n;
  std::size_t nnz;
  std::int64_t max_w;
};

// Cheetah-style HConv weight populations at both ring sizes.
const Workload kWorkloads[] = {
    {512, 18, 7},
    {1024, 36, 7},
    {1024, 128, 3},
};

dse::DesignPoint uniform_point(const dse::DesignSpace& space, int width, int k) {
  dse::DesignPoint p;
  p.stage_widths.assign(static_cast<std::size_t>(space.stages()), width);
  p.twiddle_k = k;
  return p;
}

/// Measured-vs-predicted check for one (workload, design point) pair.
void expect_within_budget(const Workload& wl, int width, int k, std::uint64_t stream) {
  const dse::DesignSpace space(wl.n / 2, dse::SpaceBounds{});
  const dse::DesignPoint point = uniform_point(space, width, k);
  const dse::ErrorModel model =
      dse::ErrorModel::from_weight_stats(wl.n, wl.nnz, static_cast<double>(wl.max_w));
  const double predicted = model.predict_variance(space, point);
  ASSERT_GT(predicted, 0.0);

  const fft::FxpFftConfig config = space.to_config(point, model.input_max_abs());
  std::mt19937_64 rng(hemath::derive_stream_seed(kBaseSeed, stream));
  const double measured =
      dse::measured_error_variance(wl.n, config, wl.nnz, wl.max_w, kTrials, rng);

  // The model must not *underestimate* reality by more than the slack —
  // that is the direction that silently breaks accuracy guarantees.
  EXPECT_LE(measured, predicted * kBudgetSlack)
      << "n=" << wl.n << " nnz=" << wl.nnz << " width=" << width << " k=" << k
      << ": measured " << measured << " vs predicted " << predicted;
  // Nor be uselessly pessimistic when there is measurable error.
  if (measured > 0.0) {
    EXPECT_LE(predicted, measured * kBudgetSlack)
        << "n=" << wl.n << " nnz=" << wl.nnz << " width=" << width << " k=" << k
        << ": predicted " << predicted << " vs measured " << measured;
  }
}

// Table-1 headline operating point: uniform 27-bit data path, k = 5 CSD
// twiddles (requires approximation-aware training downstream).
TEST(ErrorBudget, DefaultApproxConfigWithinModelBudget) {
  std::uint64_t stream = 0;
  for (const Workload& wl : kWorkloads) expect_within_budget(wl, 27, 5, stream++);
}

// Table-1 conservative operating point: 39-bit data path, k = 18 twiddles
// ("accuracy degradation within 1%, no retraining").
TEST(ErrorBudget, HighAccuracyConfigWithinModelBudget) {
  std::uint64_t stream = 16;
  for (const Workload& wl : kWorkloads) expect_within_budget(wl, 39, 18, stream++);
}

// The two operating points must stay ordered: the conservative config's
// measured error has to be far below the headline config's, otherwise the
// "no retraining" promise quietly degrades even if both fit their budgets.
TEST(ErrorBudget, HighAccuracyBeatsDefaultByOrdersOfMagnitude) {
  const Workload wl{1024, 36, 7};
  const dse::DesignSpace space(wl.n / 2, dse::SpaceBounds{});
  const dse::ErrorModel model =
      dse::ErrorModel::from_weight_stats(wl.n, wl.nnz, static_cast<double>(wl.max_w));

  std::mt19937_64 rng_default(hemath::derive_stream_seed(kBaseSeed, 32));
  std::mt19937_64 rng_high(hemath::derive_stream_seed(kBaseSeed, 33));
  const double measured_default = dse::measured_error_variance(
      wl.n, space.to_config(uniform_point(space, 27, 5), model.input_max_abs()), wl.nnz, wl.max_w,
      kTrials, rng_default);
  const double measured_high = dse::measured_error_variance(
      wl.n, space.to_config(uniform_point(space, 39, 18), model.input_max_abs()), wl.nnz, wl.max_w,
      kTrials, rng_high);

  EXPECT_LT(measured_high * 100.0, measured_default);
  // And the model predicts the same ordering.
  EXPECT_LT(model.predict_variance(space, uniform_point(space, 39, 18)),
            model.predict_variance(space, uniform_point(space, 27, 5)));
}

}  // namespace
}  // namespace flash
