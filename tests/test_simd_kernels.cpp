// SIMD/scalar differential tests: every vector kernel must be bit-identical
// to its scalar fallback (the dispatch level is purely a performance choice).
// Exercises the corpus degrees of the PR-2 differential oracle: dense and
// sparse inputs, the negacyclic twist, the double FFT, and RNS pointwise
// mulmod including edge residues. Skips the comparisons on CPUs without AVX2.
#include <gtest/gtest.h>

#include <random>

#include "core/flash_accelerator.hpp"
#include "fft/complex_fft.hpp"
#include "fft/fxp_fft.hpp"
#include "fft/negacyclic.hpp"
#include "hemath/modular.hpp"
#include "hemath/ntt.hpp"
#include "hemath/pointwise.hpp"
#include "hemath/pow2.hpp"
#include "hemath/primes.hpp"
#include "hemath/shoup_ntt.hpp"
#include "hemath/simd.hpp"
#include "sparsefft/merged_kernels.hpp"

namespace flash {
namespace {

using fft::cplx;
using hemath::i64;
using hemath::u64;
using hemath::simd::ScopedSimdLevel;
using hemath::simd::SimdLevel;

bool has_avx2() { return hemath::simd::cpu_has_avx2(); }

std::vector<cplx> random_complex(std::size_t m, std::mt19937_64& rng, int mag) {
  std::uniform_int_distribution<int> dist(-mag, mag);
  std::vector<cplx> a(m);
  for (auto& x : a) x = {static_cast<double>(dist(rng)), static_cast<double>(dist(rng))};
  return a;
}

std::vector<double> sparse_reals(std::size_t n, std::mt19937_64& rng, int nonzeros) {
  std::vector<double> a(n, 0.0);
  std::uniform_int_distribution<int> dist(-7, 7);
  for (int i = 0; i < nonzeros; ++i) a[rng() % n] = static_cast<double>(dist(rng));
  return a;
}

void expect_bit_identical(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — bit-identical modulo ±0.
    EXPECT_EQ(a[i].real(), b[i].real()) << i;
    EXPECT_EQ(a[i].imag(), b[i].imag()) << i;
  }
}

TEST(SimdKernels, FxpFftScalarVsAvx2BitIdenticalAcrossCorpus) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(101);
  for (std::size_t m : {16u, 64u, 256u, 1024u, 4096u}) {
    fft::FxpFftConfig cfg = core::default_approx_config(m * 2, 1u << 10);
    fft::FxpFft fxp(m, cfg);
    ASSERT_TRUE(fxp.uses_narrow_path()) << m;
    const auto dense = random_complex(m, rng, 8);
    auto sparse = std::vector<cplx>(m, cplx{0.0, 0.0});
    for (std::size_t i = 0; i < m; i += 17) sparse[i] = {3.0, -2.0};
    for (const auto& input : {dense, sparse}) {
      fft::FxpFftStats scalar_stats, avx2_stats;
      std::vector<cplx> scalar_out, avx2_out;
      {
        ScopedSimdLevel level(SimdLevel::kScalar);
        scalar_out = fxp.forward(input, &scalar_stats);
      }
      {
        ScopedSimdLevel level(SimdLevel::kAvx2);
        avx2_out = fxp.forward(input, &avx2_stats);
      }
      expect_bit_identical(scalar_out, avx2_out);
      // Stats must agree too: both paths execute the same arithmetic.
      EXPECT_EQ(scalar_stats.butterflies, avx2_stats.butterflies) << m;
      EXPECT_EQ(scalar_stats.shift_add_terms, avx2_stats.shift_add_terms) << m;
      EXPECT_EQ(scalar_stats.saturations, avx2_stats.saturations) << m;
      ASSERT_EQ(scalar_stats.stage_peak_mantissa.size(), avx2_stats.stage_peak_mantissa.size());
      for (std::size_t s = 0; s < scalar_stats.stage_peak_mantissa.size(); ++s) {
        EXPECT_EQ(scalar_stats.stage_peak_mantissa[s], avx2_stats.stage_peak_mantissa[s])
            << m << " stage " << s;
      }
    }
  }
}

TEST(SimdKernels, FxpInverseScalarVsAvx2BitIdentical) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(102);
  const std::size_t m = 512;
  fft::FxpFft fxp(m, core::default_approx_config(m * 2, 1u << 10));
  const auto input = random_complex(m, rng, 6);
  std::vector<cplx> scalar_out, avx2_out;
  {
    ScopedSimdLevel level(SimdLevel::kScalar);
    scalar_out = fxp.inverse(input);
  }
  {
    ScopedSimdLevel level(SimdLevel::kAvx2);
    avx2_out = fxp.inverse(input);
  }
  expect_bit_identical(scalar_out, avx2_out);
}

TEST(SimdKernels, NegacyclicFxpTransformScalarVsAvx2BitIdentical) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(103);
  for (std::size_t n : {128u, 1024u, 8192u}) {
    fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 10));
    const auto a = sparse_reals(n, rng, 72);
    std::vector<cplx> scalar_spec, avx2_spec;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      scalar_spec = fxp.forward(a);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      avx2_spec = fxp.forward(a);
    }
    expect_bit_identical(scalar_spec, avx2_spec);
    // Round-trip through the inverse stays identical as well.
    std::vector<double> scalar_back, avx2_back;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      scalar_back = fxp.inverse(scalar_spec);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      avx2_back = fxp.inverse(avx2_spec);
    }
    ASSERT_EQ(scalar_back.size(), avx2_back.size());
    for (std::size_t i = 0; i < scalar_back.size(); ++i) {
      EXPECT_EQ(scalar_back[i], avx2_back[i]) << n << " @" << i;
    }
  }
}

TEST(SimdKernels, DoubleFftScalarVsAvx2BitIdentical) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(104);
  for (std::size_t m : {8u, 64u, 512u, 2048u}) {
    fft::FftPlan plan(m, +1);
    const auto input = random_complex(m, rng, 100);
    std::vector<cplx> scalar_out = input, avx2_out = input;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      plan.forward(scalar_out);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      plan.forward(avx2_out);
    }
    expect_bit_identical(scalar_out, avx2_out);
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      plan.inverse(scalar_out);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      plan.inverse(avx2_out);
    }
    expect_bit_identical(scalar_out, avx2_out);
  }
}

TEST(SimdKernels, PointwiseMulmodScalarVsAvx2Exact) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(105);
  for (int bits : {30, 49, 61}) {
    const std::size_t n = 1024;
    const u64 q = hemath::find_ntt_prime(bits, n);
    std::vector<u64> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng() % q;
      b[i] = rng() % q;
    }
    // Edge residues: 0, 1, q-1 in adjacent lanes.
    a[0] = 0; b[0] = q - 1;
    a[1] = q - 1; b[1] = q - 1;
    a[2] = 1; b[2] = q - 1;
    a[3] = q - 1; b[3] = 1;
    std::vector<u64> scalar_c(n), avx2_c(n);
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      hemath::pointwise_mulmod(a.data(), b.data(), scalar_c.data(), n, q);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      hemath::pointwise_mulmod(a.data(), b.data(), avx2_c.data(), n, q);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar_c[i], avx2_c[i]) << bits << " @" << i;
      ASSERT_EQ(scalar_c[i], hemath::mul_mod(a[i], b[i], q)) << bits << " @" << i;
    }
    // Accumulating variant.
    std::vector<u64> scalar_acc(n), avx2_acc(n);
    for (std::size_t i = 0; i < n; ++i) scalar_acc[i] = avx2_acc[i] = rng() % q;
    const std::vector<u64> acc0 = scalar_acc;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      hemath::pointwise_mulmod_accumulate(scalar_acc.data(), a.data(), b.data(), n, q);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      hemath::pointwise_mulmod_accumulate(avx2_acc.data(), a.data(), b.data(), n, q);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar_acc[i], avx2_acc[i]) << bits << " @" << i;
      ASSERT_EQ(scalar_acc[i],
                hemath::add_mod(acc0[i], hemath::mul_mod(a[i], b[i], q), q))
          << bits << " @" << i;
    }
  }
}

// --- batched SoA transforms --------------------------------------------------
//
// Every batched kernel must be bit-identical to a loop of the single-
// polynomial path at every dispatch level. Batch sizes 1..9 cover the whole
// remainder matrix (ARCHITECTURE.md §11): the scalar passthrough (1), the
// AVX2 group and its padded remainders (2..4), and the AVX-512 group with
// the drop-to-AVX2 and zero-padded remainders (5..9).

/// The levels this host can actually run (AVX-512 skips gracefully).
std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (hemath::simd::cpu_has_avx2()) levels.push_back(SimdLevel::kAvx2);
  if (hemath::simd::cpu_has_avx512()) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

std::vector<std::vector<u64>> random_residues(std::size_t batch, std::size_t n, u64 q,
                                              std::mt19937_64& rng) {
  std::vector<std::vector<u64>> polys(batch);
  for (auto& poly : polys) {
    poly.resize(n);
    for (auto& x : poly) x = rng() % q;
  }
  // Edge residues in the first lanes.
  if (n >= 4 && !polys.empty()) {
    polys[0][0] = 0;
    polys[0][1] = 1;
    polys[0][2] = q - 1;
    polys[0][3] = q - 1;
  }
  return polys;
}

template <typename Tables>
void check_ntt_batch_matches_singles(const Tables& tables, std::size_t n, u64 q) {
  std::mt19937_64 rng(n * 31 + q % 1024);
  for (std::size_t batch = 1; batch <= 9; ++batch) {
    const auto input = random_residues(batch, n, q, rng);

    // Reference: per-polynomial transforms at the scalar level.
    std::vector<std::vector<u64>> fwd_ref = input;
    std::vector<std::vector<u64>> inv_ref = input;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      for (auto& poly : fwd_ref) tables.forward(poly);
      for (auto& poly : inv_ref) tables.inverse(poly);
    }

    for (SimdLevel lvl : supported_levels()) {
      ScopedSimdLevel level(lvl);
      std::vector<std::vector<u64>> fwd = input;
      std::vector<std::vector<u64>> inv = input;
      std::vector<u64*> fwd_ptrs(batch), inv_ptrs(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        fwd_ptrs[b] = fwd[b].data();
        inv_ptrs[b] = inv[b].data();
      }
      tables.forward_batch_into(fwd_ptrs);
      tables.inverse_batch_into(inv_ptrs);
      for (std::size_t b = 0; b < batch; ++b) {
        ASSERT_EQ(fwd[b], fwd_ref[b]) << "fwd n=" << n << " batch=" << batch << " lane=" << b
                                      << " level=" << hemath::simd::simd_level_name(lvl);
        ASSERT_EQ(inv[b], inv_ref[b]) << "inv n=" << n << " batch=" << batch << " lane=" << b
                                      << " level=" << hemath::simd::simd_level_name(lvl);
      }
    }
  }
}

TEST(SimdBatchKernels, NttBatchBitIdenticalToSinglesAcrossLevels) {
  for (std::size_t n : {64u, 256u, 4096u}) {
    const u64 q = hemath::find_ntt_prime(59, n);
    check_ntt_batch_matches_singles(hemath::NttTables(q, n), n, q);
  }
}

TEST(SimdBatchKernels, NttBatchLargeModulusFallbackStillMatches) {
  // q >= 2^61 is outside the Harvey lazy bound: the batch entry points fall
  // back to the per-polynomial loop and must stay bit-identical.
  const std::size_t n = 256;
  const u64 q = hemath::next_prime_congruent(u64{1} << 61, 2 * n);
  ASSERT_GE(q, u64{1} << 61);
  check_ntt_batch_matches_singles(hemath::NttTables(q, n), n, q);
}

TEST(SimdBatchKernels, ShoupNttBatchBitIdenticalToSinglesAcrossLevels) {
  for (std::size_t n : {64u, 1024u}) {
    const u64 q = hemath::find_ntt_prime(59, n);
    check_ntt_batch_matches_singles(hemath::ShoupNttTables(q, n), n, q);
  }
}

TEST(SimdBatchKernels, FxpFftBatchBitIdenticalToSinglesWithStats) {
  std::mt19937_64 rng(404);
  const std::size_t m = 128;
  fft::FxpFft fxp(m, core::default_approx_config(m * 2, 1u << 10));
  ASSERT_TRUE(fxp.uses_narrow_path());
  for (std::size_t batch = 1; batch <= 9; ++batch) {
    std::vector<std::vector<cplx>> input(batch);
    for (auto& v : input) v = random_complex(m, rng, 8);

    std::vector<std::vector<cplx>> ref(batch, std::vector<cplx>(m));
    fft::FxpFftStats ref_stats;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      for (std::size_t b = 0; b < batch; ++b) fxp.forward_into(input[b], ref[b], &ref_stats);
    }

    for (SimdLevel lvl : supported_levels()) {
      ScopedSimdLevel level(lvl);
      std::vector<std::vector<cplx>> out(batch, std::vector<cplx>(m));
      std::vector<const cplx*> in_ptrs(batch);
      std::vector<cplx*> out_ptrs(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        in_ptrs[b] = input[b].data();
        out_ptrs[b] = out[b].data();
      }
      fft::FxpFftStats stats;
      fxp.forward_batch_into(std::span<const cplx* const>(in_ptrs),
                             std::span<cplx* const>(out_ptrs), &stats);
      for (std::size_t b = 0; b < batch; ++b) expect_bit_identical(out[b], ref[b]);
      // Stats are part of the contract: the energy model must not notice
      // whether transforms ran batched or one at a time.
      EXPECT_EQ(stats.butterflies, ref_stats.butterflies) << batch;
      EXPECT_EQ(stats.shift_add_terms, ref_stats.shift_add_terms) << batch;
      EXPECT_EQ(stats.saturations, ref_stats.saturations) << batch;
      ASSERT_EQ(stats.stage_peak_mantissa.size(), ref_stats.stage_peak_mantissa.size());
      for (std::size_t s = 0; s < stats.stage_peak_mantissa.size(); ++s) {
        EXPECT_EQ(stats.stage_peak_mantissa[s], ref_stats.stage_peak_mantissa[s]) << batch << " " << s;
      }

      // Inverse batch against inverse singles on the forward outputs.
      std::vector<std::vector<cplx>> inv_ref(batch, std::vector<cplx>(m));
      {
        ScopedSimdLevel inner(SimdLevel::kScalar);
        for (std::size_t b = 0; b < batch; ++b) fxp.inverse_into(ref[b], inv_ref[b]);
      }
      std::vector<std::vector<cplx>> inv(batch, std::vector<cplx>(m));
      std::vector<const cplx*> spec_ptrs(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        spec_ptrs[b] = ref[b].data();
        out_ptrs[b] = inv[b].data();
      }
      fxp.inverse_batch_into(std::span<const cplx* const>(spec_ptrs),
                             std::span<cplx* const>(out_ptrs));
      for (std::size_t b = 0; b < batch; ++b) expect_bit_identical(inv[b], inv_ref[b]);
    }
  }
}

TEST(SimdBatchKernels, NegacyclicFxpBatchBitIdenticalToSingles) {
  std::mt19937_64 rng(405);
  const std::size_t n = 256;
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 10));
  for (std::size_t batch = 1; batch <= 9; ++batch) {
    std::vector<std::vector<double>> a(batch);
    for (auto& v : a) v = sparse_reals(n, rng, 40);

    std::vector<std::vector<cplx>> spec_ref(batch, std::vector<cplx>(n / 2));
    std::vector<std::vector<double>> back_ref(batch, std::vector<double>(n));
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      for (std::size_t b = 0; b < batch; ++b) {
        fxp.forward_into(a[b], spec_ref[b]);
        fxp.inverse_into(spec_ref[b], back_ref[b]);
      }
    }

    for (SimdLevel lvl : supported_levels()) {
      ScopedSimdLevel level(lvl);
      std::vector<std::vector<cplx>> spec(batch, std::vector<cplx>(n / 2));
      std::vector<const double*> a_ptrs(batch);
      std::vector<cplx*> spec_ptrs(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        a_ptrs[b] = a[b].data();
        spec_ptrs[b] = spec[b].data();
      }
      fxp.forward_batch_into(std::span<const double* const>(a_ptrs),
                             std::span<cplx* const>(spec_ptrs));
      for (std::size_t b = 0; b < batch; ++b) expect_bit_identical(spec[b], spec_ref[b]);

      std::vector<std::vector<double>> back(batch, std::vector<double>(n));
      std::vector<const cplx*> cspec_ptrs(batch);
      std::vector<double*> back_ptrs(batch);
      for (std::size_t b = 0; b < batch; ++b) {
        cspec_ptrs[b] = spec[b].data();
        back_ptrs[b] = back[b].data();
      }
      fxp.inverse_batch_into(std::span<const cplx* const>(cspec_ptrs),
                             std::span<double* const>(back_ptrs));
      for (std::size_t b = 0; b < batch; ++b) {
        ASSERT_EQ(back[b], back_ref[b]) << "batch=" << batch << " lane=" << b;
      }
    }
  }
}

TEST(SimdBatchKernels, MergedMaterializeBitIdenticalAcrossLevels) {
  std::mt19937_64 rng(406);
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  for (std::size_t m : {1u, 3u, 4u, 7u, 8u, 64u, 513u}) {
    std::vector<double> base_re(m), base_im(m), tw_re(m), tw_im(m);
    std::vector<std::uint64_t> quadrant(m), lazy(m);
    for (std::size_t i = 0; i < m; ++i) {
      base_re[i] = dist(rng);
      base_im[i] = dist(rng);
      tw_re[i] = dist(rng);
      tw_im[i] = dist(rng);
      quadrant[i] = rng() % 4;
      lazy[i] = rng() % 2;
    }
    std::vector<cplx> ref(m);
    const std::uint64_t mults_ref = sparsefft::detail::merged_materialize_scalar(
        base_re.data(), base_im.data(), tw_re.data(), tw_im.data(), quadrant.data(), lazy.data(),
        m, ref.data());
    for (SimdLevel lvl : supported_levels()) {
      ScopedSimdLevel level(lvl);
      std::vector<cplx> out(m);
      const std::uint64_t mults = sparsefft::detail::merged_materialize(
          base_re.data(), base_im.data(), tw_re.data(), tw_im.data(), quadrant.data(),
          lazy.data(), m, out.data());
      EXPECT_EQ(mults, mults_ref) << m;
      expect_bit_identical(out, ref);
    }
  }
}

// --- Z_{2^k} mask-reduce kernels --------------------------------------------
//
// The pow2 backend's pointwise/axpy kernels have AVX2 (split 32x32 mullo) and
// AVX-512 (native mullo64) paths; every level must be bit-identical to forced
// scalar over a corpus of widths covering the lane counts and their tails,
// with edge residues (0, 1, mask) planted in the first lanes.

TEST(SimdKernels, Pow2MaskReduceKernelsBitIdenticalAcrossLevels) {
  std::mt19937_64 rng(517);
  for (const int k : {8, 32, 49, 64}) {
    const hemath::Pow2Ring ring(k);
    for (const std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{8}, std::size_t{9},
                                std::size_t{16}, std::size_t{17}, std::size_t{200}}) {
      std::vector<u64> a(n), b(n), acc0(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = ring.reduce(rng());
        b[i] = ring.reduce(rng());
        acc0[i] = ring.reduce(rng());
      }
      if (n >= 3) {
        a[0] = 0;
        a[1] = 1;
        a[2] = ring.mask;
        b[2] = ring.mask;
      }
      const u64 s = ring.reduce(rng());

      std::vector<u64> mul_ref(n), maccum_ref = acc0, add_ref = acc0, axpy_ref = acc0,
                       axpys_ref = acc0;
      {
        ScopedSimdLevel level(SimdLevel::kScalar);
        hemath::pointwise_mulmod_pow2(a.data(), b.data(), mul_ref.data(), n, ring);
        hemath::pointwise_mulmod_pow2_accumulate(maccum_ref.data(), a.data(), b.data(), n, ring);
        hemath::pointwise_add_pow2(add_ref.data(), a.data(), n, ring);
        hemath::axpy_wrap(axpy_ref.data(), a.data(), s, n);
        hemath::axpy_wrap_sub(axpys_ref.data(), a.data(), s, n);
      }
      for (SimdLevel lvl : supported_levels()) {
        ScopedSimdLevel level(lvl);
        std::vector<u64> mul(n), maccum = acc0, add = acc0, axpy = acc0, axpys = acc0;
        hemath::pointwise_mulmod_pow2(a.data(), b.data(), mul.data(), n, ring);
        hemath::pointwise_mulmod_pow2_accumulate(maccum.data(), a.data(), b.data(), n, ring);
        hemath::pointwise_add_pow2(add.data(), a.data(), n, ring);
        hemath::axpy_wrap(axpy.data(), a.data(), s, n);
        hemath::axpy_wrap_sub(axpys.data(), a.data(), s, n);
        const char* name = hemath::simd::simd_level_name(lvl);
        ASSERT_EQ(mul, mul_ref) << "k=" << k << " n=" << n << " " << name;
        ASSERT_EQ(maccum, maccum_ref) << "k=" << k << " n=" << n << " " << name;
        ASSERT_EQ(add, add_ref) << "k=" << k << " n=" << n << " " << name;
        ASSERT_EQ(axpy, axpy_ref) << "k=" << k << " n=" << n << " " << name;
        ASSERT_EQ(axpys, axpys_ref) << "k=" << k << " n=" << n << " " << name;
      }
    }
  }
}

TEST(SimdKernels, Pow2NegacyclicAndBatchBitIdenticalAcrossLevels) {
  std::mt19937_64 rng(518);
  const hemath::Pow2Ring ring(49);
  for (const std::size_t n : {std::size_t{32}, std::size_t{64}, std::size_t{256}}) {
    std::vector<u64> a(n), w(n, 0);
    for (auto& x : a) x = ring.reduce(rng());
    for (std::size_t j = 0; j < n; j += 11) w[j] = ring.from_signed(static_cast<i64>(j % 9) - 4);

    std::vector<u64> single_ref(n);
    std::vector<std::vector<u64>> lanes(5, a), batch_ref(5, std::vector<u64>(n));
    for (std::size_t l = 1; l < lanes.size(); ++l) {
      for (auto& x : lanes[l]) x = ring.reduce(rng());
    }
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      hemath::negacyclic_mul_pow2_into(a.data(), w.data(), single_ref.data(), n, ring);
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        hemath::negacyclic_mul_pow2_into(lanes[l].data(), w.data(), batch_ref[l].data(), n, ring);
      }
    }
    for (SimdLevel lvl : supported_levels()) {
      ScopedSimdLevel level(lvl);
      std::vector<u64> single(n);
      hemath::negacyclic_mul_pow2_into(a.data(), w.data(), single.data(), n, ring);
      ASSERT_EQ(single, single_ref) << "n=" << n << " " << hemath::simd::simd_level_name(lvl);

      std::vector<std::vector<u64>> outs(lanes.size(), std::vector<u64>(n));
      std::vector<const u64*> in_ptrs(lanes.size());
      std::vector<u64*> out_ptrs(lanes.size());
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        in_ptrs[l] = lanes[l].data();
        out_ptrs[l] = outs[l].data();
      }
      hemath::negacyclic_mul_pow2_batch_into(in_ptrs, w.data(), out_ptrs, n, ring);
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        ASSERT_EQ(outs[l], batch_ref[l])
            << "n=" << n << " lane=" << l << " " << hemath::simd::simd_level_name(lvl);
      }
    }
  }
}

// --- FLASH_FORCE_SIMD_LEVEL resolution --------------------------------------
//
// The env vars are read once at startup, so these tests drive the resolver
// directly with synthetic values. Contract: FLASH_FORCE_SCALAR (truthy) wins;
// otherwise FLASH_FORCE_SIMD_LEVEL must parse and can only degrade, never
// grant a level the CPU lacks; unknown names are a hard configuration error.

TEST(SimdDispatchEnv, ParseSimdLevelAcceptsExactlyTheThreeNames) {
  using hemath::simd::parse_simd_level;
  ASSERT_TRUE(parse_simd_level("scalar").has_value());
  EXPECT_EQ(*parse_simd_level("scalar"), SimdLevel::kScalar);
  ASSERT_TRUE(parse_simd_level("avx2").has_value());
  EXPECT_EQ(*parse_simd_level("avx2"), SimdLevel::kAvx2);
  ASSERT_TRUE(parse_simd_level("avx512").has_value());
  EXPECT_EQ(*parse_simd_level("avx512"), SimdLevel::kAvx512);
  EXPECT_FALSE(parse_simd_level("").has_value());
  EXPECT_FALSE(parse_simd_level("AVX2").has_value());
  EXPECT_FALSE(parse_simd_level("sse4").has_value());
}

TEST(SimdDispatchEnv, ResolveHonorsEachForcedLevel) {
  using hemath::simd::detail::resolve_level;
  EXPECT_EQ(resolve_level(nullptr, "scalar", SimdLevel::kAvx512), SimdLevel::kScalar);
  EXPECT_EQ(resolve_level(nullptr, "avx2", SimdLevel::kAvx512), SimdLevel::kAvx2);
  EXPECT_EQ(resolve_level(nullptr, "avx512", SimdLevel::kAvx512), SimdLevel::kAvx512);
}

TEST(SimdDispatchEnv, ResolveClampsToSupportedNeverUpgrades) {
  using hemath::simd::detail::resolve_level;
  // Asking for more than the CPU has degrades to the supported maximum.
  EXPECT_EQ(resolve_level(nullptr, "avx512", SimdLevel::kAvx2), SimdLevel::kAvx2);
  EXPECT_EQ(resolve_level(nullptr, "avx2", SimdLevel::kScalar), SimdLevel::kScalar);
  // Unset: the supported maximum stands.
  EXPECT_EQ(resolve_level(nullptr, nullptr, SimdLevel::kAvx2), SimdLevel::kAvx2);
}

TEST(SimdDispatchEnv, ResolveForceScalarWinsOverForcedLevel) {
  using hemath::simd::detail::resolve_level;
  EXPECT_EQ(resolve_level("1", "avx512", SimdLevel::kAvx512), SimdLevel::kScalar);
  // FLASH_FORCE_SCALAR=0 is falsy: the forced level applies.
  EXPECT_EQ(resolve_level("0", "avx2", SimdLevel::kAvx512), SimdLevel::kAvx2);
}

TEST(SimdDispatchEnv, ResolveRejectsUnknownLevelName) {
  using hemath::simd::detail::resolve_level;
  EXPECT_THROW((void)resolve_level(nullptr, "sse9", SimdLevel::kAvx512), std::invalid_argument);
  EXPECT_THROW((void)resolve_level(nullptr, "AVX2", SimdLevel::kAvx512), std::invalid_argument);
}

TEST(SimdKernels, ForceScalarEnvironmentOverrideIsScalar) {
  // The env var is read once at startup, so this test only checks the
  // introspection path: whatever level is active, ScopedSimdLevel(kScalar)
  // pins scalar and restores on exit.
  const SimdLevel before = hemath::simd::active_simd_level();
  {
    ScopedSimdLevel level(SimdLevel::kScalar);
    EXPECT_EQ(hemath::simd::active_simd_level(), SimdLevel::kScalar);
  }
  EXPECT_EQ(hemath::simd::active_simd_level(), before);
}

}  // namespace
}  // namespace flash
