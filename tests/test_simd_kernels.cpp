// SIMD/scalar differential tests: every vector kernel must be bit-identical
// to its scalar fallback (the dispatch level is purely a performance choice).
// Exercises the corpus degrees of the PR-2 differential oracle: dense and
// sparse inputs, the negacyclic twist, the double FFT, and RNS pointwise
// mulmod including edge residues. Skips the comparisons on CPUs without AVX2.
#include <gtest/gtest.h>

#include <random>

#include "core/flash_accelerator.hpp"
#include "fft/complex_fft.hpp"
#include "fft/fxp_fft.hpp"
#include "fft/negacyclic.hpp"
#include "hemath/modular.hpp"
#include "hemath/pointwise.hpp"
#include "hemath/primes.hpp"
#include "hemath/simd.hpp"

namespace flash {
namespace {

using fft::cplx;
using hemath::u64;
using hemath::simd::ScopedSimdLevel;
using hemath::simd::SimdLevel;

bool has_avx2() { return hemath::simd::cpu_has_avx2(); }

std::vector<cplx> random_complex(std::size_t m, std::mt19937_64& rng, int mag) {
  std::uniform_int_distribution<int> dist(-mag, mag);
  std::vector<cplx> a(m);
  for (auto& x : a) x = {static_cast<double>(dist(rng)), static_cast<double>(dist(rng))};
  return a;
}

std::vector<double> sparse_reals(std::size_t n, std::mt19937_64& rng, int nonzeros) {
  std::vector<double> a(n, 0.0);
  std::uniform_int_distribution<int> dist(-7, 7);
  for (int i = 0; i < nonzeros; ++i) a[rng() % n] = static_cast<double>(dist(rng));
  return a;
}

void expect_bit_identical(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — bit-identical modulo ±0.
    EXPECT_EQ(a[i].real(), b[i].real()) << i;
    EXPECT_EQ(a[i].imag(), b[i].imag()) << i;
  }
}

TEST(SimdKernels, FxpFftScalarVsAvx2BitIdenticalAcrossCorpus) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(101);
  for (std::size_t m : {16u, 64u, 256u, 1024u, 4096u}) {
    fft::FxpFftConfig cfg = core::default_approx_config(m * 2, 1u << 10);
    fft::FxpFft fxp(m, cfg);
    ASSERT_TRUE(fxp.uses_narrow_path()) << m;
    const auto dense = random_complex(m, rng, 8);
    auto sparse = std::vector<cplx>(m, cplx{0.0, 0.0});
    for (std::size_t i = 0; i < m; i += 17) sparse[i] = {3.0, -2.0};
    for (const auto& input : {dense, sparse}) {
      fft::FxpFftStats scalar_stats, avx2_stats;
      std::vector<cplx> scalar_out, avx2_out;
      {
        ScopedSimdLevel level(SimdLevel::kScalar);
        scalar_out = fxp.forward(input, &scalar_stats);
      }
      {
        ScopedSimdLevel level(SimdLevel::kAvx2);
        avx2_out = fxp.forward(input, &avx2_stats);
      }
      expect_bit_identical(scalar_out, avx2_out);
      // Stats must agree too: both paths execute the same arithmetic.
      EXPECT_EQ(scalar_stats.butterflies, avx2_stats.butterflies) << m;
      EXPECT_EQ(scalar_stats.shift_add_terms, avx2_stats.shift_add_terms) << m;
      EXPECT_EQ(scalar_stats.saturations, avx2_stats.saturations) << m;
      ASSERT_EQ(scalar_stats.stage_peak_mantissa.size(), avx2_stats.stage_peak_mantissa.size());
      for (std::size_t s = 0; s < scalar_stats.stage_peak_mantissa.size(); ++s) {
        EXPECT_EQ(scalar_stats.stage_peak_mantissa[s], avx2_stats.stage_peak_mantissa[s])
            << m << " stage " << s;
      }
    }
  }
}

TEST(SimdKernels, FxpInverseScalarVsAvx2BitIdentical) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(102);
  const std::size_t m = 512;
  fft::FxpFft fxp(m, core::default_approx_config(m * 2, 1u << 10));
  const auto input = random_complex(m, rng, 6);
  std::vector<cplx> scalar_out, avx2_out;
  {
    ScopedSimdLevel level(SimdLevel::kScalar);
    scalar_out = fxp.inverse(input);
  }
  {
    ScopedSimdLevel level(SimdLevel::kAvx2);
    avx2_out = fxp.inverse(input);
  }
  expect_bit_identical(scalar_out, avx2_out);
}

TEST(SimdKernels, NegacyclicFxpTransformScalarVsAvx2BitIdentical) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(103);
  for (std::size_t n : {128u, 1024u, 8192u}) {
    fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 10));
    const auto a = sparse_reals(n, rng, 72);
    std::vector<cplx> scalar_spec, avx2_spec;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      scalar_spec = fxp.forward(a);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      avx2_spec = fxp.forward(a);
    }
    expect_bit_identical(scalar_spec, avx2_spec);
    // Round-trip through the inverse stays identical as well.
    std::vector<double> scalar_back, avx2_back;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      scalar_back = fxp.inverse(scalar_spec);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      avx2_back = fxp.inverse(avx2_spec);
    }
    ASSERT_EQ(scalar_back.size(), avx2_back.size());
    for (std::size_t i = 0; i < scalar_back.size(); ++i) {
      EXPECT_EQ(scalar_back[i], avx2_back[i]) << n << " @" << i;
    }
  }
}

TEST(SimdKernels, DoubleFftScalarVsAvx2BitIdentical) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(104);
  for (std::size_t m : {8u, 64u, 512u, 2048u}) {
    fft::FftPlan plan(m, +1);
    const auto input = random_complex(m, rng, 100);
    std::vector<cplx> scalar_out = input, avx2_out = input;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      plan.forward(scalar_out);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      plan.forward(avx2_out);
    }
    expect_bit_identical(scalar_out, avx2_out);
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      plan.inverse(scalar_out);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      plan.inverse(avx2_out);
    }
    expect_bit_identical(scalar_out, avx2_out);
  }
}

TEST(SimdKernels, PointwiseMulmodScalarVsAvx2Exact) {
  if (!has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::mt19937_64 rng(105);
  for (int bits : {30, 49, 61}) {
    const std::size_t n = 1024;
    const u64 q = hemath::find_ntt_prime(bits, n);
    std::vector<u64> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng() % q;
      b[i] = rng() % q;
    }
    // Edge residues: 0, 1, q-1 in adjacent lanes.
    a[0] = 0; b[0] = q - 1;
    a[1] = q - 1; b[1] = q - 1;
    a[2] = 1; b[2] = q - 1;
    a[3] = q - 1; b[3] = 1;
    std::vector<u64> scalar_c(n), avx2_c(n);
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      hemath::pointwise_mulmod(a.data(), b.data(), scalar_c.data(), n, q);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      hemath::pointwise_mulmod(a.data(), b.data(), avx2_c.data(), n, q);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar_c[i], avx2_c[i]) << bits << " @" << i;
      ASSERT_EQ(scalar_c[i], hemath::mul_mod(a[i], b[i], q)) << bits << " @" << i;
    }
    // Accumulating variant.
    std::vector<u64> scalar_acc(n), avx2_acc(n);
    for (std::size_t i = 0; i < n; ++i) scalar_acc[i] = avx2_acc[i] = rng() % q;
    const std::vector<u64> acc0 = scalar_acc;
    {
      ScopedSimdLevel level(SimdLevel::kScalar);
      hemath::pointwise_mulmod_accumulate(scalar_acc.data(), a.data(), b.data(), n, q);
    }
    {
      ScopedSimdLevel level(SimdLevel::kAvx2);
      hemath::pointwise_mulmod_accumulate(avx2_acc.data(), a.data(), b.data(), n, q);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar_acc[i], avx2_acc[i]) << bits << " @" << i;
      ASSERT_EQ(scalar_acc[i],
                hemath::add_mod(acc0[i], hemath::mul_mod(a[i], b[i], q), q))
          << bits << " @" << i;
    }
  }
}

TEST(SimdKernels, ForceScalarEnvironmentOverrideIsScalar) {
  // The env var is read once at startup, so this test only checks the
  // introspection path: whatever level is active, ScopedSimdLevel(kScalar)
  // pins scalar and restores on exit.
  const SimdLevel before = hemath::simd::active_simd_level();
  {
    ScopedSimdLevel level(SimdLevel::kScalar);
    EXPECT_EQ(hemath::simd::active_simd_level(), SimdLevel::kScalar);
  }
  EXPECT_EQ(hemath::simd::active_simd_level(), before);
}

}  // namespace
}  // namespace flash
