// Regression tests for flash_fuzz --time-budget overshoot.
//
// The engine historically checked the wall clock only between iterations, so
// a case that failed *at* the budget edge would still run a full shrink —
// up to 64 additional oracle evaluations — past the deadline. With the
// oracle-delay hook making each evaluation artificially slow (the
// slow-workload injection the issue asks for), the old behavior overshoots a
// 50 ms budget by multiple seconds; the fixed engine re-checks the budget
// before every evaluation (initial, shrink candidate, and post-shrink
// confirmation) and must land within a couple of evaluations of the budget.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "testing/fuzz.hpp"

namespace flash::testing {
namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kEvalDelay = std::chrono::milliseconds(30);

void slow_oracle_hook() { std::this_thread::sleep_for(kEvalDelay); }

double run_and_time(const FuzzOptions& options, FuzzResult& result) {
  std::ostringstream log;
  const Clock::time_point start = Clock::now();
  result = run_fuzz(options, log);
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TEST(FuzzBudget, BudgetStopsCleanRunWithinOneEvaluation) {
  testing_hooks::set_oracle_delay_hook(&slow_oracle_hook);
  FuzzOptions options;
  options.seed = 42;
  options.iters = 100000;  // far more than the budget allows
  options.conv_every = 0;  // polymul-only: every iteration costs ~kEvalDelay
  options.time_budget_s = 0.05;
  FuzzResult result;
  const double elapsed = run_and_time(options, result);
  testing_hooks::set_oracle_delay_hook(nullptr);

  EXPECT_TRUE(result.ok()) << result.failures.size() << " unexpected failures";
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_LT(result.cases_run, 10u);
  // Budget + at most ~2 delayed evaluations of slack (the one in flight when
  // the budget expires, plus scheduling noise). The unfixed engine is only
  // bounded by iters here, so this bound is also meaningful for clean runs.
  EXPECT_LT(elapsed, 0.05 + 10 * 0.030);
}

TEST(FuzzBudget, BudgetCutsShrinkShortOnInjectedFailure) {
  testing_hooks::set_oracle_delay_hook(&slow_oracle_hook);
  FuzzOptions options;
  options.seed = 42;
  options.iters = 4;
  options.conv_every = 0;
  options.oracle.fault = FaultInjection::kTwiddleQuantization;  // every case fails
  options.max_failures = 8;
  options.time_budget_s = 0.05;
  FuzzResult result;
  const double elapsed = run_and_time(options, result);
  testing_hooks::set_oracle_delay_hook(nullptr);

  // The failure is still reported (with the unshrunk spec as reproducer if
  // the budget killed the shrink)...
  ASSERT_FALSE(result.failures.empty());
  EXPECT_FALSE(result.failures.front().reproducer.empty());
  EXPECT_TRUE(result.budget_exhausted);
  // ...but the shrink must not have burned its 64-evaluation cap after the
  // deadline: pre-fix this run takes >= 64 * 30 ms ~= 2 s.
  EXPECT_LT(elapsed, 1.0);
}

TEST(FuzzBudget, UnbudgetedRunsStillShrink) {
  // Guard against over-correcting: with no time budget the shrink still
  // runs to completion and reduces the injected failure.
  FuzzOptions options;
  options.seed = 42;
  options.iters = 1;
  options.conv_every = 0;
  options.oracle.fault = FaultInjection::kTwiddleQuantization;
  options.max_failures = 1;
  FuzzResult result;
  run_and_time(options, result);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(result.failures.front().shrink_steps, 0u);
}

}  // namespace
}  // namespace flash::testing
