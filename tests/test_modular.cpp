// Unit tests for modular arithmetic: add/sub/mul/pow/inv, Barrett and
// Montgomery reducers against the 128-bit reference.
#include <gtest/gtest.h>

#include <random>

#include "hemath/modular.hpp"

namespace flash::hemath {
namespace {

TEST(Modular, AddSubNegBasics) {
  const u64 q = 17;
  EXPECT_EQ(add_mod(9, 9, q), 1u);
  EXPECT_EQ(add_mod(0, 0, q), 0u);
  EXPECT_EQ(add_mod(16, 16, q), 15u);
  EXPECT_EQ(sub_mod(3, 5, q), 15u);
  EXPECT_EQ(sub_mod(5, 5, q), 0u);
  EXPECT_EQ(neg_mod(0, q), 0u);
  EXPECT_EQ(neg_mod(1, q), 16u);
}

TEST(Modular, MulModLargeOperands) {
  const u64 q = (u64{1} << 61) - 1;  // Mersenne prime 2^61-1
  const u64 a = q - 1;
  // (q-1)^2 = q^2 - 2q + 1 == 1 mod q.
  EXPECT_EQ(mul_mod(a, a, q), 1u);
}

TEST(Modular, MulModPow2FastPathBitIdentity) {
  // Pins the power-of-two mask fast path in mul_mod (modular.hpp) against
  // the 128-bit remainder it replaced: every pow2 modulus must produce the
  // exact residue of (a * b) % q, and prime moduli must be untouched.
  std::mt19937_64 rng(0x10d2a7);
  const auto reference = [](u64 a, u64 b, u64 q) {
    return static_cast<u64>((static_cast<u128>(a) * b) % q);
  };
  for (const int k : {1, 2, 8, 16, 32, 49, 62, 63}) {
    const u64 q = u64{1} << k;
    for (int trial = 0; trial < 200; ++trial) {
      const u64 a = rng(), b = rng();
      EXPECT_EQ(mul_mod(a, b, q), reference(a, b, q)) << "k=" << k;
    }
    // Edge operands: 0, 1, q-1, and unreduced values just past the modulus.
    for (const u64 a : {u64{0}, u64{1}, q - 1, q, q + 1, ~u64{0}}) {
      for (const u64 b : {u64{0}, u64{1}, q - 1, q, q + 1, ~u64{0}}) {
        EXPECT_EQ(mul_mod(a, b, q), reference(a, b, q)) << "k=" << k;
      }
    }
  }
  // Non-pow2 moduli must still go through the 128-bit remainder path.
  for (const u64 q : {u64{3}, u64{1000003}, (u64{1} << 61) - 1, (u64{1} << 32) + 1}) {
    for (int trial = 0; trial < 100; ++trial) {
      const u64 a = rng() % q, b = rng() % q;
      EXPECT_EQ(mul_mod(a, b, q), reference(a, b, q)) << "q=" << q;
    }
  }
}

TEST(Modular, PowModMatchesRepeatedMul) {
  const u64 q = 1000003;
  u64 acc = 1;
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(pow_mod(7, static_cast<u64>(e), q), acc);
    acc = mul_mod(acc, 7, q);
  }
}

TEST(Modular, PowModFermat) {
  const u64 q = 998244353;  // prime
  for (u64 a : {2ULL, 3ULL, 12345ULL, 998244352ULL}) {
    EXPECT_EQ(pow_mod(a, q - 1, q), 1u);
  }
}

TEST(Modular, InvModRoundTrip) {
  const u64 q = 998244353;
  std::mt19937_64 rng(1);
  for (int i = 0; i < 200; ++i) {
    const u64 a = rng() % (q - 1) + 1;
    const u64 inv = inv_mod(a, q);
    EXPECT_EQ(mul_mod(a, inv, q), 1u) << "a=" << a;
  }
}

TEST(Modular, InvModNonInvertibleThrows) {
  EXPECT_THROW(inv_mod(6, 9), std::invalid_argument);
  EXPECT_THROW(inv_mod(0, 7), std::invalid_argument);
}

TEST(Modular, InvModCompositeModulus) {
  // 3 * 7 = 21 == 1 mod 10.
  EXPECT_EQ(inv_mod(3, 10), 7u);
}

TEST(Modular, SignedLiftRoundTrip) {
  const u64 q = 101;
  for (u64 a = 0; a < q; ++a) {
    const i64 s = to_signed(a, q);
    EXPECT_LE(s, static_cast<i64>(q / 2));
    EXPECT_GT(s, -static_cast<i64>(q) / 2 - 1);
    EXPECT_EQ(from_signed(s, q), a);
  }
}

TEST(Modular, FromSignedHandlesVeryNegative) {
  EXPECT_EQ(from_signed(-1, 7), 6u);
  EXPECT_EQ(from_signed(-15, 7), 6u);
  EXPECT_EQ(from_signed(-14, 7), 0u);
}

class ReducerTest : public ::testing::TestWithParam<u64> {};

TEST_P(ReducerTest, BarrettMatchesReference) {
  const u64 q = GetParam();
  BarrettReducer barrett(q);
  std::mt19937_64 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng() % q;
    const u64 b = rng() % q;
    EXPECT_EQ(barrett.mul(a, b), mul_mod(a, b, q)) << "a=" << a << " b=" << b << " q=" << q;
  }
  // Edge operands.
  EXPECT_EQ(barrett.mul(q - 1, q - 1), mul_mod(q - 1, q - 1, q));
  EXPECT_EQ(barrett.mul(0, q - 1), 0u);
  EXPECT_EQ(barrett.reduce(q - 1), q - 1);
  EXPECT_EQ(barrett.reduce(q), 0u);
}

TEST_P(ReducerTest, MontgomeryMatchesReference) {
  const u64 q = GetParam();
  if ((q & 1) == 0) GTEST_SKIP() << "Montgomery requires odd modulus";
  MontgomeryReducer mont(q);
  std::mt19937_64 rng(43);
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng() % q;
    const u64 b = rng() % q;
    const u64 am = mont.to_mont(a);
    const u64 bm = mont.to_mont(b);
    EXPECT_EQ(mont.from_mont(mont.mul(am, bm)), mul_mod(a, b, q));
  }
  EXPECT_EQ(mont.from_mont(mont.to_mont(q - 1)), q - 1);
  EXPECT_EQ(mont.from_mont(mont.to_mont(0)), 0u);
}

INSTANTIATE_TEST_SUITE_P(Moduli, ReducerTest,
                         ::testing::Values(u64{3}, u64{17}, u64{998244353},
                                           (u64{1} << 31) - 1, u64{4611686018326724609ULL},
                                           (u64{1} << 61) - 1));

TEST(Modular, BarrettRejectsBadModulus) {
  EXPECT_THROW(BarrettReducer(1), std::invalid_argument);
  EXPECT_THROW(BarrettReducer(u64{1} << 62), std::invalid_argument);
}

TEST(Modular, BarrettPowerOfTwoModulus) {
  BarrettReducer barrett(u64{1} << 20);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    const u64 a = rng() % (u64{1} << 20);
    const u64 b = rng() % (u64{1} << 20);
    EXPECT_EQ(barrett.mul(a, b), (a * b) % (u64{1} << 20));
  }
}

TEST(Modular, MontgomeryRejectsEvenModulus) {
  EXPECT_THROW(MontgomeryReducer(16), std::invalid_argument);
}

}  // namespace
}  // namespace flash::hemath
