// Deterministic-scheduler tier for the ConvServer (ARCHITECTURE.md §9).
//
// Everything here runs with dispatchers = 0 (manual dispatch on the test
// thread — every interleaving is chosen by the test, not the OS scheduler)
// except the two tests whose *subject* is a cross-thread race: cancellation
// racing a batch pickup and drain() racing an inflight batch. Those pin the
// interleaving with the serve batch hook instead of sleeps, so they are
// race-deterministic too — the "mt" label puts them under TSan.
//
// The multi-threaded stress companion is tests/test_serve_stress.cpp
// (ctest -L soak).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "bfv/context.hpp"
#include "serve/conv_server.hpp"
#include "tensor/conv.hpp"
#include "testing/generators.hpp"
#include "testing/oracle.hpp"

namespace flash::serve {
namespace {

using namespace std::chrono_literals;

/// Two small, distinct layers (different seeds => different weights, keys
/// and mask streams) sharing one parameter set / context.
class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : layer_a_(flash::testing::make_conv_case(
            {.seed = 0xa11ce, .c = 1, .m = 1, .h = 4, .w = 4, .k = 2, .stride = 1, .pad = 0})),
        layer_b_(flash::testing::make_conv_case(
            {.seed = 0xb0b, .c = 1, .m = 2, .h = 4, .w = 4, .k = 2, .stride = 1, .pad = 0})),
        ctx_a_(layer_a_.params),
        ctx_b_(layer_b_.params) {}

  PlanSpec spec_for(const flash::testing::ConvCase& layer, const bfv::BfvContext& ctx) const {
    PlanSpec s;
    s.ctx = &ctx;
    s.backend = bfv::PolyMulBackend::kNtt;
    s.protocol_seed = layer.spec.seed;
    s.weights = layer.weights;
    s.stride = layer.spec.stride;
    s.pad = static_cast<std::size_t>(layer.spec.pad);
    s.in_h = layer.spec.h;
    s.in_w = layer.spec.w;
    return s;
  }
  PlanSpec spec_a() const { return spec_for(layer_a_, ctx_a_); }
  PlanSpec spec_b() const { return spec_for(layer_b_, ctx_b_); }

  flash::testing::ConvCase layer_a_;
  flash::testing::ConvCase layer_b_;
  bfv::BfvContext ctx_a_;
  bfv::BfvContext ctx_b_;
};

TEST_F(ServeTest, PlanRegistrationDedupsByContent) {
  ConvServer server({.dispatchers = 0});
  const PlanId a1 = server.register_plan(spec_a());
  const PlanId a2 = server.register_plan(spec_a());
  const PlanId b = server.register_plan(spec_b());
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);

  // Same layer, different protocol seed => different masks => distinct plan.
  PlanSpec reseeded = spec_a();
  reseeded.protocol_seed ^= 1;
  EXPECT_NE(server.register_plan(reseeded), a1);
}

TEST_F(ServeTest, ServedResultMatchesSerialRunnerAndCleartext) {
  ConvServer server({.dispatchers = 0});
  const PlanId plan = server.register_plan(spec_a());
  ConvFuture fut = server.submit(plan, layer_a_.x, {.stream = 7});
  EXPECT_EQ(fut.state(), RequestState::kQueued);
  EXPECT_TRUE(server.dispatch_once());
  EXPECT_FALSE(server.dispatch_once());
  ASSERT_EQ(fut.state(), RequestState::kDone);

  // Bit-identical to a bare runner with the same seed and stream base.
  protocol::HConvProtocol proto(ctx_a_, bfv::PolyMulBackend::kNtt, std::nullopt,
                                layer_a_.spec.seed);
  protocol::ConvRunner runner(proto);
  const protocol::ConvRunnerResult serial =
      runner.run(layer_a_.x, layer_a_.weights, 1, 0, std::uint64_t{7} << 32);
  EXPECT_EQ(fut.result().client_share.data(), serial.client_share.data());
  EXPECT_EQ(fut.result().server_share.data(), serial.server_share.data());

  const tensor::Tensor3 expect = tensor::conv2d(layer_a_.x, layer_a_.weights, {1, 0});
  EXPECT_EQ(fut.result().reconstruct(layer_a_.params.t).data(), expect.data());
}

TEST_F(ServeTest, DispatchGroupsQueueByPlan) {
  ConvServer server({.max_batch = 8, .dispatchers = 0});
  const PlanId a = server.register_plan(spec_a());
  const PlanId b = server.register_plan(spec_b());

  // Interleaved submission: A B A B A. FIFO picks A first and takes every
  // queued A with it; the next dispatch drains the Bs.
  std::vector<ConvFuture> futures;
  for (std::size_t i = 0; i < 5; ++i) {
    const bool is_a = i % 2 == 0;
    futures.push_back(server.submit(is_a ? a : b, is_a ? layer_a_.x : layer_b_.x));
  }
  EXPECT_EQ(server.metrics().queue_depth.value(), 5);
  EXPECT_TRUE(server.dispatch_once());
  EXPECT_EQ(server.metrics().completed.value(), 3u);  // the three As
  EXPECT_TRUE(server.dispatch_once());
  EXPECT_EQ(server.metrics().completed.value(), 5u);
  EXPECT_FALSE(server.dispatch_once());

  const auto stats = server.metrics().plan_batches();
  ASSERT_TRUE(stats.count(a));
  ASSERT_TRUE(stats.count(b));
  EXPECT_EQ(stats.at(a).max_batch, 3u);
  EXPECT_EQ(stats.at(b).max_batch, 2u);
  EXPECT_EQ(server.metrics().batches_dispatched.value(), 2u);
  for (auto& fut : futures) EXPECT_EQ(fut.state(), RequestState::kDone);
}

TEST_F(ServeTest, MaxBatchBoundsOneDispatch) {
  ConvServer server({.max_batch = 2, .dispatchers = 0});
  const PlanId a = server.register_plan(spec_a());
  for (int i = 0; i < 5; ++i) server.submit(a, layer_a_.x);
  EXPECT_TRUE(server.dispatch_once());
  EXPECT_EQ(server.metrics().completed.value(), 2u);
  server.drain();
  EXPECT_EQ(server.metrics().completed.value(), 5u);
  EXPECT_EQ(server.metrics().plan_batches().at(a).max_batch, 2u);
}

// --- Edge cases named in the issue ---

TEST_F(ServeTest, ZeroLengthQueueRejectsEverySubmitWithRetryAfter) {
  ConvServer server({.max_queue = 0, .dispatchers = 0});
  const PlanId a = server.register_plan(spec_a());
  ConvFuture fut = server.submit(a, layer_a_.x);
  EXPECT_EQ(fut.state(), RequestState::kRejected);
  EXPECT_TRUE(fut.done());
  EXPECT_GT(fut.retry_after_s(), 0.0);
  EXPECT_THROW(fut.result(), std::logic_error);
  EXPECT_EQ(server.metrics().rejected_queue_full.value(), 1u);
  EXPECT_EQ(server.metrics().admitted.value(), 0u);
  EXPECT_FALSE(server.dispatch_once());
}

TEST_F(ServeTest, BackpressureKicksInAtQueueBound) {
  ConvServer server({.max_queue = 2, .dispatchers = 0});
  const PlanId a = server.register_plan(spec_a());
  ConvFuture ok1 = server.submit(a, layer_a_.x);
  ConvFuture ok2 = server.submit(a, layer_a_.x);
  ConvFuture shed = server.submit(a, layer_a_.x);
  EXPECT_EQ(ok1.state(), RequestState::kQueued);
  EXPECT_EQ(ok2.state(), RequestState::kQueued);
  EXPECT_EQ(shed.state(), RequestState::kRejected);
  EXPECT_EQ(server.metrics().rejected_queue_full.value(), 1u);

  // The shed slot frees up after a dispatch.
  EXPECT_TRUE(server.dispatch_once());
  ConvFuture retry = server.submit(a, layer_a_.x);
  EXPECT_EQ(retry.state(), RequestState::kQueued);
  server.drain();
  EXPECT_EQ(server.metrics().completed.value(), 3u);
}

TEST_F(ServeTest, DeadlineExpiredAtAdmissionNeverCostsQueueSpace) {
  ConvServer server({.dispatchers = 0});
  const PlanId a = server.register_plan(spec_a());
  ConvFuture fut = server.submit(a, layer_a_.x, {.timeout = 0ns});
  EXPECT_EQ(fut.state(), RequestState::kDeadlineExceeded);
  EXPECT_EQ(server.metrics().deadline_expired_at_admission.value(), 1u);
  EXPECT_EQ(server.metrics().admitted.value(), 0u);
  EXPECT_EQ(server.metrics().queue_depth.value(), 0);
  EXPECT_FALSE(server.dispatch_once());
}

TEST_F(ServeTest, DeadlineExpiredInQueueIsShedAtPickup) {
  ConvServer server({.dispatchers = 0});
  const PlanId a = server.register_plan(spec_a());
  ConvFuture doomed = server.submit(a, layer_a_.x, {.timeout = 1ms});
  ConvFuture fine = server.submit(a, layer_a_.x);
  std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(server.dispatch_once());
  EXPECT_EQ(doomed.state(), RequestState::kDeadlineExceeded);
  EXPECT_EQ(fine.state(), RequestState::kDone);
  EXPECT_EQ(server.metrics().deadline_expired_in_queue.value(), 1u);
  EXPECT_EQ(server.metrics().completed.value(), 1u);
}

TEST_F(ServeTest, CancelWinsWhileQueuedAndExactlyOnce) {
  ConvServer server({.dispatchers = 0});
  const PlanId a = server.register_plan(spec_a());
  ConvFuture fut = server.submit(a, layer_a_.x);
  EXPECT_TRUE(fut.cancel());
  EXPECT_FALSE(fut.cancel());  // second cancel loses: already terminal
  EXPECT_EQ(fut.state(), RequestState::kCancelled);
  EXPECT_EQ(server.metrics().cancelled.value(), 1u);
  // The queue slot is still swept (and never executed).
  server.drain();
  EXPECT_EQ(server.metrics().completed.value(), 0u);
  EXPECT_EQ(server.metrics().queue_depth.value(), 0);
}

TEST_F(ServeTest, CancelLosesAfterExecution) {
  ConvServer server({.dispatchers = 0});
  const PlanId a = server.register_plan(spec_a());
  ConvFuture fut = server.submit(a, layer_a_.x);
  EXPECT_TRUE(server.dispatch_once());
  EXPECT_FALSE(fut.cancel());
  EXPECT_EQ(fut.state(), RequestState::kDone);
  EXPECT_EQ(server.metrics().cancelled.value(), 0u);
}

// Batch-hook rendezvous: lets a test hold a dispatcher exactly at the point
// where the batch has left the queue but no request is claimed yet.
std::mutex g_gate_mu;
std::condition_variable g_gate_cv;
bool g_in_hook = false;
bool g_release_hook = false;

void gate_hook(std::size_t /*plan*/, std::size_t /*batch*/) {
  std::unique_lock<std::mutex> lock(g_gate_mu);
  g_in_hook = true;
  g_gate_cv.notify_all();
  g_gate_cv.wait(lock, [] { return g_release_hook; });
}

void reset_gate() {
  std::lock_guard<std::mutex> lock(g_gate_mu);
  g_in_hook = false;
  g_release_hook = false;
}

void wait_for_hook() {
  std::unique_lock<std::mutex> lock(g_gate_mu);
  g_gate_cv.wait(lock, [] { return g_in_hook; });
}

void release_hook() {
  std::lock_guard<std::mutex> lock(g_gate_mu);
  g_release_hook = true;
  g_gate_cv.notify_all();
}

TEST_F(ServeTest, CancellationRacingBatchDispatchLosesTheClaimRaceCleanly) {
  reset_gate();
  testing_hooks::set_batch_hook(&gate_hook);
  {
    ConvServer server({.dispatchers = 1});
    const PlanId a = server.register_plan(spec_a());
    ConvFuture fut = server.submit(a, layer_a_.x);
    // The dispatcher has picked the batch up (it is inside the hook, past
    // the queue) but has not claimed the request: a cancel arriving *now* is
    // the race the claim protocol must serialize. The request is still
    // kQueued, so cancel wins and the claim must observe it.
    wait_for_hook();
    EXPECT_TRUE(fut.cancel());
    release_hook();
    server.drain();
    EXPECT_EQ(fut.state(), RequestState::kCancelled);
    EXPECT_EQ(server.metrics().cancelled.value(), 1u);
    EXPECT_EQ(server.metrics().completed.value(), 0u);
    // Conservation: the cancelled request is the only terminal outcome.
    EXPECT_EQ(server.metrics().terminal(), server.metrics().submitted.value());
  }
  testing_hooks::set_batch_hook(nullptr);
}

TEST_F(ServeTest, DrainWaitsForInflightBatchThenRejectsNewWork) {
  reset_gate();
  testing_hooks::set_batch_hook(&gate_hook);
  {
    ConvServer server({.dispatchers = 1});
    const PlanId a = server.register_plan(spec_a());
    ConvFuture f1 = server.submit(a, layer_a_.x);
    ConvFuture f2 = server.submit(a, layer_a_.x);
    wait_for_hook();  // both requests are inflight, held at the hook

    std::atomic<bool> drained{false};
    std::thread drainer([&] {
      server.drain();
      drained.store(true);
    });
    // Drain must not complete while the batch is still inflight.
    std::this_thread::sleep_for(20ms);
    EXPECT_FALSE(drained.load());
    // ...and new work is already refused while draining.
    ConvFuture late = server.submit(a, layer_a_.x);
    EXPECT_EQ(late.state(), RequestState::kRejected);
    EXPECT_EQ(server.metrics().rejected_draining.value(), 1u);

    release_hook();
    drainer.join();
    EXPECT_TRUE(drained.load());
    EXPECT_EQ(f1.state(), RequestState::kDone);
    EXPECT_EQ(f2.state(), RequestState::kDone);
    EXPECT_EQ(server.metrics().queue_depth.value(), 0);
    EXPECT_EQ(server.metrics().inflight.value(), 0);
  }
  testing_hooks::set_batch_hook(nullptr);
}

// --- Metrics JSON: assertions go through the exported document, pinning
// the export format itself (the same parser the bench harness uses). ---

TEST_F(ServeTest, MetricsJsonReportsDrainedQueueAndRejections) {
  ConvServer server({.max_queue = 1, .dispatchers = 0});
  const PlanId a = server.register_plan(spec_a());
  ConvFuture ok = server.submit(a, layer_a_.x);
  ConvFuture shed = server.submit(a, layer_a_.x);  // forced backpressure
  EXPECT_EQ(shed.state(), RequestState::kRejected);
  server.drain();

  const std::string json = server.metrics_json();
  EXPECT_EQ(json_number_at(json, "gauges", "queue_depth"), 0.0);
  EXPECT_EQ(json_number_at(json, "gauges", "inflight"), 0.0);
  EXPECT_EQ(json_number_at(json, "counters", "rejected_queue_full"), 1.0);
  EXPECT_EQ(json_number_at(json, "counters", "submitted"), 2.0);
  EXPECT_EQ(json_number_at(json, "counters", "completed"), 1.0);
  EXPECT_EQ(json_number_at(json, "counters", "batches_dispatched"), 1.0);
  // Latency histograms saw exactly the completed request.
  EXPECT_EQ(json_number_at(json, "\"end_to_end\"", "count"), 1.0);
  EXPECT_GT(json_number_at(json, "\"end_to_end\"", "p50"), 0.0);
  EXPECT_GE(json_number_at(json, "\"end_to_end\"", "p99"),
            json_number_at(json, "\"end_to_end\"", "p50"));
  // Per-plan batch stats for plan "0".
  EXPECT_EQ(json_number_at(json, "plans", "batches"), 1.0);
  EXPECT_EQ(json_number_at(json, "plans", "mean_batch"), 1.0);
  // Absent keys come back NaN, not garbage.
  EXPECT_TRUE(std::isnan(json_number_at(json, "counters", "no_such_counter")));
}

// --- Trace-level batched equivalence (the oracle extension) ---

TEST(ServeTrace, BatchedEqualsSerialBitForBit_ManualDispatch) {
  const auto trace = flash::testing::make_serve_trace({.seed = 0x7ace});
  const auto report = flash::testing::HConvOracle().run_trace(trace, /*dispatchers=*/0);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ServeTrace, BatchedEqualsSerialBitForBit_DispatcherThread) {
  const auto trace =
      flash::testing::make_serve_trace({.seed = 0x7ace2, .plans = 2, .requests = 6});
  const auto report = flash::testing::HConvOracle().run_trace(trace, /*dispatchers=*/1);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(ServeTrace, GeneratorIsDeterministicAndReproducible) {
  const auto a = flash::testing::make_serve_trace({.seed = 99});
  const auto b = flash::testing::make_serve_trace({.seed = 99});
  ASSERT_EQ(a.spec, b.spec);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].plan, b.requests[i].plan);
    EXPECT_EQ(a.requests[i].x.data(), b.requests[i].x.data());
  }
  // The printed spec line round-trips (the stress tier's repro path).
  flash::testing::ServeTraceSpec parsed;
  ASSERT_TRUE(flash::testing::parse_serve_trace_spec(a.spec.describe(), parsed));
  EXPECT_EQ(parsed, a.spec);
  const auto c = flash::testing::make_serve_trace(parsed);
  ASSERT_EQ(c.requests.size(), a.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(c.requests[i].x.data(), a.requests[i].x.data());
  }
  // Different seeds give different traces.
  const auto other = flash::testing::make_serve_trace({.seed = 100});
  EXPECT_TRUE(other.spec.plans != a.spec.plans || other.spec.requests != a.spec.requests ||
              other.requests[0].x.data() != a.requests[0].x.data());
}

// --- Serve-layer bugfix regressions (PR6) ---

// Pre-fix, a cold server (no batch timed yet) configured with
// default_retry_after_s = 0 told rejected clients to retry after 0.0 s — an
// immediate-retry herd exactly when the server had the least information.
// The fix floors every estimate at kMinRetryAfterS.
TEST_F(ServeTest, ColdStartRejectRetryAfterHasPositiveFloor) {
  ConvServer server({.max_queue = 0, .dispatchers = 0, .default_retry_after_s = 0.0});
  const PlanId a = server.register_plan(spec_a());
  ConvFuture fut = server.submit(a, layer_a_.x);
  ASSERT_EQ(fut.state(), RequestState::kRejected);
  EXPECT_GT(fut.retry_after_s(), 0.0);
  EXPECT_GE(fut.retry_after_s(), kMinRetryAfterS);

  // A sane configured default is passed through unclamped on cold start.
  ConvServer configured({.max_queue = 0, .dispatchers = 0, .default_retry_after_s = 0.25});
  const PlanId b = configured.register_plan(spec_a());
  EXPECT_DOUBLE_EQ(configured.submit(b, layer_a_.x).retry_after_s(), 0.25);
}

// Pre-fix, the batch-time estimate used the truncating integer filter
// (3*prev + sample) / 4, whose fixpoints sit below the target (feeding a
// constant 7 from prev=3 converges to 4 and stays there). The Q8 fixed-point
// filter with a rounding readout converges onto the target exactly, from
// above and from below.
TEST(ServeEwma, RoundingFilterConvergesFromBothSides) {
  // First sample seeds the filter directly.
  EXPECT_EQ(ewma::ewma_ns(ewma::update_q8(0, 1000)), 1000u);

  // From above: 1000 -> constant 7.
  std::uint64_t q8 = ewma::update_q8(0, 1000);
  for (int i = 0; i < 64; ++i) q8 = ewma::update_q8(q8, 7);
  EXPECT_EQ(ewma::ewma_ns(q8), 7u);

  // From below: 3 -> constant 7 (the truncating filter sticks at 4 here).
  q8 = ewma::update_q8(0, 3);
  for (int i = 0; i < 64; ++i) q8 = ewma::update_q8(q8, 7);
  EXPECT_EQ(ewma::ewma_ns(q8), 7u);

  // Steady state is a fixpoint of the readout for assorted magnitudes.
  for (const std::uint64_t v : {1ull, 3ull, 1001ull, 12345ull}) {
    q8 = ewma::update_q8(0, v + 1000);
    for (int i = 0; i < 64; ++i) q8 = ewma::update_q8(q8, v);
    EXPECT_EQ(ewma::ewma_ns(q8), v) << "target " << v;
    q8 = ewma::update_q8(q8, v);
    EXPECT_EQ(ewma::ewma_ns(q8), v) << "not a fixpoint at " << v;
  }

  // First-sample audit: a genuine 0 ns batch must not recreate the "unset"
  // sentinel (which would zero the warm estimate back to the cold default).
  const std::uint64_t zero_batch = ewma::update_q8(0, 0);
  EXPECT_GT(zero_batch, 0u);
  EXPECT_EQ(ewma::ewma_ns(zero_batch), 1u);
}

// Empty histograms must export literal zeros — a 0/0 NaN in any quantile or
// mean field would corrupt the whole JSON document (JSON has no NaN
// literal). Asserted on the exported text via json_number_at, which is what
// pins the guard in append_histogram_json.
TEST(ServeMetricsJson, EmptyHistogramExportsZerosNotNan) {
  const ServerMetrics fresh;
  const std::string json = fresh.to_json();
  for (const char* h : {"\"queue_wait\"", "\"service\"", "\"end_to_end\""}) {
    EXPECT_EQ(json_number_at(json, h, "count"), 0.0) << h;
    EXPECT_EQ(json_number_at(json, h, "mean"), 0.0) << h;
    EXPECT_EQ(json_number_at(json, h, "p50"), 0.0) << h;
    EXPECT_EQ(json_number_at(json, h, "p99"), 0.0) << h;
  }
  EXPECT_EQ(json.find(": nan"), std::string::npos);
  EXPECT_EQ(json.find(": inf"), std::string::npos);

  SessionMetrics sessions;
  const std::string sjson = sessions.to_json();
  EXPECT_EQ(json_number_at(sjson, "\"session_e2e\"", "count"), 0.0);
  EXPECT_EQ(json_number_at(sjson, "\"session_e2e\"", "mean"), 0.0);
  EXPECT_EQ(sjson.find(": nan"), std::string::npos);
  EXPECT_EQ(sjson.find(": inf"), std::string::npos);
}

// --- on_terminal re-entrancy audit (PR-9) ----------------------------------
//
// The contract under test: the callback fires exactly once, always with no
// server or request locks held, on every terminal path — so a callback may
// freely call back INTO the serving layer (submit a follow-up, register
// another callback, inspect metrics) without deadlocking. The audit found
// one defect adjacent to this path (cancel() updated the metrics counter
// after publishing kCancelled, racing server destruction — fixed in
// conv_server.cpp); these tests pin the locking discipline itself.

TEST_F(ServeTest, OnTerminalMaySubmitFollowUpFromInsideTheCallback) {
  ConvServer server({.dispatchers = 0});
  const PlanId plan = server.register_plan(spec_a());

  // Chain three requests, each submitted from the previous one's terminal
  // callback on the dispatching thread. Any lock held across the callback
  // would deadlock dispatch_once() re-entering submit().
  std::vector<ConvFuture> chain;
  chain.push_back(server.submit(plan, layer_a_.x, {.stream = 0}));
  std::atomic<int> fired{0};
  std::function<void(std::size_t)> arm = [&](std::size_t depth) {
    chain.back().on_terminal([&, depth] {
      fired.fetch_add(1);
      if (depth < 2) {
        chain.push_back(
            server.submit(plan, layer_a_.x, {.stream = depth + 1}));
        arm(depth + 1);
      }
    });
  };
  arm(0);
  while (server.dispatch_once()) {
  }
  server.drain();

  EXPECT_EQ(fired.load(), 3);
  ASSERT_EQ(chain.size(), 3u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    ASSERT_EQ(chain[i].state(), RequestState::kDone) << "request " << i;
    // Each chained request is still bit-identical to its serial run: the
    // callback path is invisible to the determinism contract.
    protocol::HConvProtocol proto(ctx_a_, bfv::PolyMulBackend::kNtt, std::nullopt,
                                  layer_a_.spec.seed);
    protocol::ConvRunner runner(proto);
    const auto serial = runner.run(layer_a_.x, layer_a_.weights, 1, 0,
                                   static_cast<std::uint64_t>(i) << 32);
    EXPECT_EQ(chain[i].result().client_share.data(), serial.client_share.data());
  }
}

TEST_F(ServeTest, OnTerminalFiresExactlyOnceOnEveryTerminalPath) {
  ConvServer server({.max_queue = 1, .dispatchers = 0});
  const PlanId plan = server.register_plan(spec_a());

  // kDone path, registered before dispatch.
  std::atomic<int> done_fired{0};
  ConvFuture done_fut = server.submit(plan, layer_a_.x, {.stream = 0});
  done_fut.on_terminal([&] { done_fired.fetch_add(1); });
  // kRejected path: queue full (bound 1). The rejected future is terminal
  // at submit-return; its callback must fire immediately, on this thread.
  std::atomic<int> rejected_fired{0};
  ConvFuture rejected = server.submit(plan, layer_a_.x, {});
  EXPECT_EQ(rejected.state(), RequestState::kRejected);
  rejected.on_terminal([&] { rejected_fired.fetch_add(1); });
  EXPECT_EQ(rejected_fired.load(), 1);

  EXPECT_TRUE(server.dispatch_once());
  EXPECT_EQ(done_fired.load(), 1);
  // Registration after terminal fires immediately — and re-registration
  // from inside the callback (same future, already terminal) is re-entrant
  // rather than deadlocking.
  std::atomic<int> late_fired{0};
  done_fut.on_terminal([&] {
    late_fired.fetch_add(1);
    if (late_fired.load() == 1) done_fut.on_terminal([&] { late_fired.fetch_add(1); });
  });
  EXPECT_EQ(late_fired.load(), 2);

  // kCancelled path: the winning cancel fires the callback exactly once.
  std::atomic<int> cancel_fired{0};
  ConvFuture cancelled = server.submit(plan, layer_a_.x, {});
  cancelled.on_terminal([&] { cancel_fired.fetch_add(1); });
  ASSERT_TRUE(cancelled.cancel());
  EXPECT_EQ(cancel_fired.load(), 1);
  EXPECT_TRUE(server.dispatch_once());   // pops the cancelled slot, runs nothing
  EXPECT_EQ(cancel_fired.load(), 1);     // the pickup must not re-fire it
  EXPECT_FALSE(server.dispatch_once());

  // kDeadlineExceeded-at-admission path.
  std::atomic<int> dl_fired{0};
  ConvFuture expired = server.submit(plan, layer_a_.x, {.deadline = now() - 1ms});
  EXPECT_EQ(expired.state(), RequestState::kDeadlineExceeded);
  expired.on_terminal([&] { dl_fired.fetch_add(1); });
  EXPECT_EQ(dl_fired.load(), 1);

  server.drain();
  EXPECT_EQ(done_fired.load(), 1);
  EXPECT_EQ(cancel_fired.load(), 1);
}

TEST_F(ServeTest, OnTerminalReplacementKeepsExactlyOneUnfiredCallback) {
  ConvServer server({.dispatchers = 0});
  const PlanId plan = server.register_plan(spec_a());
  ConvFuture fut = server.submit(plan, layer_a_.x, {});
  std::atomic<int> first{0}, second{0};
  fut.on_terminal([&] { first.fetch_add(1); });
  fut.on_terminal([&] { second.fetch_add(1); });  // replaces the unfired first
  EXPECT_TRUE(server.dispatch_once());
  server.drain();
  EXPECT_EQ(first.load(), 0);
  EXPECT_EQ(second.load(), 1);
}

// --- injected monotonic clock (PR-9) ---------------------------------------
//
// Deadlines are evaluated on serve::now() — steady_clock plus a test-only
// offset — so these tests age requests deterministically instead of
// sleeping, and a wall-clock step (NTP, suspend/resume) can never expire a
// request early in production.

class ClockGuard {
 public:
  ~ClockGuard() { testing_hooks::reset_clock(); }
};

TEST_F(ServeTest, InjectedClockExpiresQueuedRequestAtBatchPickup) {
  ClockGuard guard;
  ConvServer server({.dispatchers = 0});
  const PlanId plan = server.register_plan(spec_a());

  ConvFuture fut = server.submit(plan, layer_a_.x, {.timeout = 1h});
  EXPECT_EQ(fut.state(), RequestState::kQueued);
  // Age the queue 2 hours in zero real time: the batch-pickup deadline
  // check must expire the request without running it.
  testing_hooks::advance_clock(2h);
  EXPECT_TRUE(server.dispatch_once());
  EXPECT_EQ(fut.state(), RequestState::kDeadlineExceeded);
  server.drain();
  EXPECT_EQ(server.metrics().deadline_expired_in_queue.value(), 1u);
  EXPECT_EQ(server.metrics().terminal(), server.metrics().submitted.value());
}

TEST_F(ServeTest, InjectedClockExpiresDeadlineAtAdmission) {
  ClockGuard guard;
  ConvServer server({.dispatchers = 0});
  const PlanId plan = server.register_plan(spec_a());

  const auto deadline = now() + 1h;
  testing_hooks::advance_clock(2h);
  ConvFuture fut = server.submit(plan, layer_a_.x, {.deadline = deadline});
  EXPECT_EQ(fut.state(), RequestState::kDeadlineExceeded);
  EXPECT_EQ(server.metrics().deadline_expired_at_admission.value(), 1u);
  server.drain();
}

TEST(ServeClock, InjectionIsMonotonicAndResets) {
  ClockGuard guard;
  const auto before = now();
  testing_hooks::advance_clock(5min);
  const auto advanced = now();
  EXPECT_GE(advanced - before, 5min);
  // Negative deltas are ignored: the serve clock never runs backwards, even
  // under test injection (monotonicity is the production contract).
  testing_hooks::advance_clock(-10min);
  EXPECT_GE(now(), advanced);
  testing_hooks::reset_clock();
  EXPECT_LT(now() - before, 5min);
}

}  // namespace
}  // namespace flash::serve
