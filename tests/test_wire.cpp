// Wire-format tests: every frame and body codec must round-trip
// bit-for-bit, and every decoder must reject adversarial input — forged
// length prefixes, truncated payloads, out-of-range dimensions — with a
// typed WireError *before* any attacker-sized allocation happens.
#include <gtest/gtest.h>

#include "bfv/params.hpp"
#include "fft/fxp_fft.hpp"
#include "testing/generators.hpp"
#include "wire/wire_format.hpp"

namespace flash::wire {
namespace {

Frame round_trip(const Frame& f) { return decode_frame(encode_frame(f)); }

Bytes frame_bytes_with_payload_len(std::uint64_t payload_len) {
  ByteWriter w;
  w.write_u64(kFrameMagic);
  w.write_u64(payload_len);
  return w.take();
}

TEST(WireFrame, RoundTripsTypeSeqAndBody) {
  Frame f;
  f.type = MsgType::kSubmit;
  f.seq = 0xdeadbeefcafef00dULL;
  f.body = {1, 2, 3, 250, 255, 0};
  const Frame back = round_trip(f);
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.seq, f.seq);
  EXPECT_EQ(back.body, f.body);
}

TEST(WireFrame, EmptyBodyRoundTrips) {
  Frame f;
  f.type = MsgType::kShutdown;
  f.seq = 7;
  const Frame back = round_trip(f);
  EXPECT_EQ(back.type, MsgType::kShutdown);
  EXPECT_TRUE(back.body.empty());
}

TEST(WireFrame, RejectsBadMagic) {
  Bytes buf = encode_frame({MsgType::kHello, 1, {}});
  buf[0] ^= 0xff;
  EXPECT_THROW(decode_frame(buf), WireError);
}

TEST(WireFrame, RejectsForgedGiantLengthBeforeAllocating) {
  // A 2^60-byte length claim must die at header-parse time; if it ever
  // reached the payload allocation the test machine would OOM instead of
  // seeing a WireError.
  const Bytes header = frame_bytes_with_payload_len(std::uint64_t{1} << 60);
  EXPECT_THROW(decode_frame_header(header.data(), header.size()), WireError);
}

TEST(WireFrame, RejectsLengthBelowPayloadPrefix) {
  const Bytes header = frame_bytes_with_payload_len(kPayloadPrefixBytes - 1);
  EXPECT_THROW(decode_frame_header(header.data(), header.size()), WireError);
}

TEST(WireFrame, HonorsPerChannelCapBelowGlobalCap) {
  const Bytes header = frame_bytes_with_payload_len(4096);
  EXPECT_EQ(decode_frame_header(header.data(), header.size()), 4096u);
  EXPECT_THROW(decode_frame_header(header.data(), header.size(), /*max=*/1024), WireError);
}

TEST(WireFrame, RejectsTruncatedHeaderAndPayload) {
  const Bytes whole = encode_frame({MsgType::kHello, 1, {9, 9, 9}});
  for (std::size_t cut : {std::size_t{0}, std::size_t{8}, kFrameHeaderBytes,
                          whole.size() - 1}) {
    const Bytes truncated(whole.begin(), whole.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_frame(truncated), WireError) << "cut=" << cut;
  }
}

TEST(WireFrame, RejectsTrailingBytes) {
  Bytes buf = encode_frame({MsgType::kHello, 1, {}});
  buf.push_back(0);
  EXPECT_THROW(decode_frame(buf), WireError);
}

TEST(WireFrame, RejectsUnknownVersionAndType) {
  Bytes buf = encode_frame({MsgType::kHello, 1, {}});
  Bytes bad_version = buf;
  bad_version[kFrameHeaderBytes] = 99;  // version byte
  EXPECT_THROW(decode_frame(bad_version), WireError);
  Bytes bad_type = buf;
  bad_type[kFrameHeaderBytes + 1] = 0;  // below kHello
  EXPECT_THROW(decode_frame(bad_type), WireError);
  bad_type[kFrameHeaderBytes + 1] = 200;  // above kShutdownAck
  EXPECT_THROW(decode_frame(bad_type), WireError);
}

TEST(WireFrame, WireErrorIsASerializationError) {
  // The typed-error contract: wire failures are catchable at the bfv
  // serialization level and as std::runtime_error, never as raw logic.
  try {
    decode_frame(Bytes{});
    FAIL() << "decode of empty buffer did not throw";
  } catch (const bfv::SerializationError&) {
  }
}

TEST(WireTensor, Tensor3RoundTrip) {
  tensor::Tensor3 t(2, 3, 4);
  for (std::size_t i = 0; i < t.data().size(); ++i) {
    t.data()[i] = static_cast<tensor::i64>(i) - 7;
  }
  ByteWriter w;
  encode(t, w);
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  const tensor::Tensor3 back = decode_tensor3(r);
  EXPECT_EQ(back.data(), t.data());
  EXPECT_EQ(back.channels(), 2u);
  EXPECT_EQ(back.height(), 3u);
  EXPECT_EQ(back.width(), 4u);
}

TEST(WireTensor, RejectsDimensionsOverCapBeforeAllocating) {
  // Claimed dims of kMaxTensorDim^3 elements with a 24-byte body: the dim
  // gate (then the remaining-bytes gate) must fire before any element
  // buffer is sized from attacker numbers.
  ByteWriter w;
  w.write_u64(kMaxTensorDim + 1);
  w.write_u64(1);
  w.write_u64(1);
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(decode_tensor3(r), WireError);
}

TEST(WireTensor, RejectsElementCountExceedingBuffer) {
  ByteWriter w;
  w.write_u64(16);
  w.write_u64(16);
  w.write_u64(16);      // claims 4096 elements...
  w.write_i64(1);       // ...buffer holds one
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(decode_tensor3(r), WireError);
}

TEST(WireTensor, RejectsZeroDimension) {
  ByteWriter w;
  w.write_u64(0);
  w.write_u64(4);
  w.write_u64(4);
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(decode_tensor3(r), WireError);
}

TEST(WireTensor, Tensor4RoundTripAndGuards) {
  tensor::Tensor4 t(2, 3, 2, 2);
  for (std::size_t i = 0; i < t.data().size(); ++i) {
    t.data()[i] = static_cast<tensor::i64>(i * 3) - 11;
  }
  ByteWriter w;
  encode(t, w);
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(decode_tensor4(r).data(), t.data());

  ByteWriter bad;
  bad.write_u64(1);
  bad.write_u64(1);
  bad.write_u64(kMaxTensorDim + 1);
  bad.write_u64(1);
  const Bytes bad_bytes = bad.take();
  ByteReader br(bad_bytes);
  EXPECT_THROW(decode_tensor4(br), WireError);
}

TEST(WireString, RoundTripAndLengthGuard) {
  ByteWriter w;
  encode(std::string("certify: proven, margin 12.5 bits"), w);
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(decode_string(r), "certify: proven, margin 12.5 bits");

  ByteWriter bad;
  bad.write_u64(kMaxStringBytes + 1);
  const Bytes bad_bytes = bad.take();
  ByteReader br(bad_bytes);
  EXPECT_THROW(decode_string(br), WireError);
}

TEST(WirePlanSpec, RoundTripsEveryField) {
  const auto layer = testing::make_conv_case(
      {.seed = 0x91a2, .c = 2, .m = 3, .h = 5, .w = 4, .k = 3, .stride = 2, .pad = 1});
  PlanSpecWire spec;
  spec.params = layer.params;
  spec.backend = bfv::PolyMulBackend::kApproxFft;
  fft::FxpFftConfig cfg;
  cfg.input_frac_bits = 12;
  cfg.data_width = 26;
  cfg.twiddle_k = 8;
  cfg.twiddle_min_exp = -20;
  cfg.stage_frac_bits = {12, 11, 10};
  spec.approx_config = cfg;
  spec.protocol_seed = 0xabcdef;
  spec.stride = 2;
  spec.pad = 1;
  spec.in_h = 5;
  spec.in_w = 4;
  spec.weights = layer.weights;

  ByteWriter w;
  encode(spec, w);
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  const PlanSpecWire back = decode_plan_spec(r);
  EXPECT_EQ(back.params.n, spec.params.n);
  EXPECT_EQ(back.params.t, spec.params.t);
  EXPECT_EQ(back.params.q, spec.params.q);
  EXPECT_EQ(back.backend, spec.backend);
  ASSERT_TRUE(back.approx_config.has_value());
  EXPECT_EQ(back.approx_config->data_width, 26);
  EXPECT_EQ(back.approx_config->stage_frac_bits, cfg.stage_frac_bits);
  EXPECT_EQ(back.protocol_seed, spec.protocol_seed);
  EXPECT_EQ(back.stride, 2u);
  EXPECT_EQ(back.pad, 1u);
  EXPECT_EQ(back.in_h, 5u);
  EXPECT_EQ(back.in_w, 4u);
  EXPECT_EQ(back.weights.data(), spec.weights.data());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WirePlanSpec, RejectsAdversarialParameters) {
  const auto layer = testing::make_conv_case(
      {.seed = 3, .c = 1, .m = 1, .h = 4, .w = 4, .k = 2, .stride = 1, .pad = 0});
  PlanSpecWire spec;
  spec.params = layer.params;
  spec.protocol_seed = 1;
  spec.stride = 1;
  spec.in_h = 4;
  spec.in_w = 4;
  spec.weights = layer.weights;

  // Ring degree 2^63: must be rejected by the range gate, not fed into
  // validate()'s (q-1) % (2n) arithmetic or a 2^63-coefficient allocation.
  {
    ByteWriter w;
    encode(spec, w);
    Bytes bytes = w.take();
    for (int i = 0; i < 8; ++i) bytes[static_cast<std::size_t>(i)] = 0;
    bytes[7] = 0x80;
    ByteReader r(bytes);
    EXPECT_THROW(decode_plan_spec(r), WireError);
  }
  // Zero ciphertext modulus.
  {
    ByteWriter w;
    encode(spec, w);
    Bytes bytes = w.take();
    for (int i = 16; i < 24; ++i) bytes[static_cast<std::size_t>(i)] = 0;
    ByteReader r(bytes);
    EXPECT_THROW(decode_plan_spec(r), WireError);
  }
}

TEST(WirePlanSpec, SameSpecSameBytesSameShardHash) {
  const auto layer = testing::make_conv_case(
      {.seed = 5, .c = 1, .m = 2, .h = 4, .w = 4, .k = 2, .stride = 1, .pad = 0});
  PlanSpecWire spec;
  spec.params = layer.params;
  spec.protocol_seed = layer.spec.seed;
  spec.stride = 1;
  spec.in_h = 4;
  spec.in_w = 4;
  spec.weights = layer.weights;

  ByteWriter w1, w2;
  encode(spec, w1);
  encode(spec, w2);
  const Bytes a = w1.take();
  const Bytes b = w2.take();
  // Routing determinism root: identical specs -> identical bytes ->
  // identical FNV-1a -> identical home shard, every process, every run.
  EXPECT_EQ(a, b);
  EXPECT_EQ(fnv1a(a), fnv1a(b));

  PlanSpecWire other = spec;
  other.protocol_seed ^= 1;
  ByteWriter w3;
  encode(other, w3);
  EXPECT_NE(fnv1a(w3.take()), fnv1a(a));
}

TEST(WireBodies, RegisterPlanAckRoundTrip) {
  RegisterPlanAck ack;
  ack.plan_id = 42;
  ack.verdict = PlanVerdict::kUnproven;
  ack.detail = "margin -1.5 bits";
  ByteWriter w;
  encode(ack, w);
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  const RegisterPlanAck back = decode_register_plan_ack(r);
  EXPECT_EQ(back.plan_id, 42u);
  EXPECT_EQ(back.verdict, PlanVerdict::kUnproven);
  EXPECT_EQ(back.detail, "margin -1.5 bits");
}

TEST(WireBodies, ResultBodyRoundTripsBothArms) {
  {
    ResultBody body;
    body.ok = true;
    body.result.client_share = tensor::Tensor3(1, 2, 2);
    body.result.server_share = tensor::Tensor3(1, 2, 2);
    body.result.client_share.data() = {1, -2, 3, -4};
    body.result.server_share.data() = {5, 6, -7, 8};
    body.result.bytes_client_to_server = 1234;
    body.result.bytes_server_to_client = 567;
    body.result.hconv_calls = 3;
    ByteWriter w;
    encode(body, w);
    const Bytes bytes = w.take();
    ByteReader r(bytes);
    const ResultBody back = decode_result(r);
    ASSERT_TRUE(back.ok);
    EXPECT_EQ(back.result.client_share.data(), body.result.client_share.data());
    EXPECT_EQ(back.result.server_share.data(), body.result.server_share.data());
    EXPECT_EQ(back.result.bytes_client_to_server, 1234u);
    EXPECT_EQ(back.result.hconv_calls, 3u);
  }
  {
    ResultBody body;
    body.ok = false;
    body.error = "deadline_exceeded: expired in queue";
    ByteWriter w;
    encode(body, w);
    const Bytes bytes = w.take();
    ByteReader r(bytes);
    const ResultBody back = decode_result(r);
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.error, "deadline_exceeded: expired in queue");
  }
}

TEST(WireBodies, SubmitAndHelloRoundTrip) {
  SubmitBody submit;
  submit.plan_id = 9;
  submit.stream = 0x123456789;
  submit.x = tensor::Tensor3(1, 2, 2);
  submit.x.data() = {4, 3, 2, 1};
  ByteWriter w;
  encode(submit, w);
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  const SubmitBody back = decode_submit(r);
  EXPECT_EQ(back.plan_id, 9u);
  EXPECT_EQ(back.stream, 0x123456789u);
  EXPECT_EQ(back.x.data(), submit.x.data());

  HelloBody hello{3, 12345};
  ByteWriter hw;
  encode(hello, hw);
  const Bytes hb = hw.take();
  ByteReader hr(hb);
  const HelloBody hback = decode_hello(hr);
  EXPECT_EQ(hback.shard_index, 3u);
  EXPECT_EQ(hback.pid, 12345u);
}

}  // namespace
}  // namespace flash::wire
