// Quantized CNN substrate: conv2d oracle behaviour, layer primitives,
// quantization, ResNet layer inventories, and error-injection plumbing.
#include <gtest/gtest.h>

#include <random>

#include "tensor/conv.hpp"
#include "tensor/quant.hpp"
#include "tensor/resnet.hpp"

namespace flash::tensor {
namespace {

TEST(Conv2d, IdentityKernelPassesThrough) {
  Tensor3 x(1, 4, 4);
  for (std::size_t i = 0; i < 16; ++i) x.data()[i] = static_cast<i64>(i);
  Tensor4 w(1, 1, 1, 1);
  w.at(0, 0, 0, 0) = 1;
  const Tensor3 y = conv2d(x, w, {1, 0});
  EXPECT_EQ(y.data(), x.data());
}

TEST(Conv2d, KnownSmallExample) {
  // 1x3x3 input, 1x1x2x2 all-ones kernel, valid conv.
  Tensor3 x(1, 3, 3);
  i64 v = 1;
  for (auto& e : x.data()) e = v++;
  Tensor4 w(1, 1, 2, 2);
  for (auto& e : w.data()) e = 1;
  const Tensor3 y = conv2d(x, w, {1, 0});
  ASSERT_EQ(y.height(), 2u);
  ASSERT_EQ(y.width(), 2u);
  EXPECT_EQ(y.at(0, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_EQ(y.at(0, 0, 1), 2 + 3 + 5 + 6);
  EXPECT_EQ(y.at(0, 1, 0), 4 + 5 + 7 + 8);
  EXPECT_EQ(y.at(0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(Conv2d, PaddingAndStride) {
  Tensor3 x(1, 4, 4);
  for (auto& e : x.data()) e = 1;
  Tensor4 w(1, 1, 3, 3);
  for (auto& e : w.data()) e = 1;
  const Tensor3 same = conv2d(x, w, {1, 1});
  ASSERT_EQ(same.height(), 4u);
  EXPECT_EQ(same.at(0, 0, 0), 4);  // corner sees 2x2 of the input
  EXPECT_EQ(same.at(0, 1, 1), 9);  // interior sees full 3x3
  const Tensor3 strided = conv2d(x, w, {2, 1});
  EXPECT_EQ(strided.height(), 2u);
  EXPECT_EQ(strided.width(), 2u);
}

TEST(Conv2d, MultiChannelAccumulation) {
  std::mt19937_64 rng(61);
  const Tensor3 x = random_activations(3, 5, 5, 4, rng);
  const Tensor4 w = random_weights(2, 3, 3, 4, rng);
  const Tensor3 y = conv2d(x, w, {1, 0});
  // Manual check of one output element.
  i64 acc = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) acc += x.at(c, 1 + i, 2 + j) * w.at(1, c, i, j);
    }
  }
  EXPECT_EQ(y.at(1, 1, 2), acc);
}

TEST(Layers, ReluPoolLinear) {
  Tensor3 x(1, 2, 2);
  x.data() = {-5, 3, 0, -1};
  const Tensor3 r = relu(x);
  EXPECT_EQ(r.data(), (std::vector<i64>{0, 3, 0, 0}));

  Tensor3 p(1, 2, 2);
  p.data() = {1, 9, 4, 2};
  EXPECT_EQ(max_pool2(p).at(0, 0, 0), 9);

  Tensor3 g(2, 2, 2);
  g.data() = {1, 2, 3, 4, 10, 10, 10, 10};
  const auto pooled = global_avg_pool(g);
  EXPECT_EQ(pooled[0], 3);  // round(2.5)
  EXPECT_EQ(pooled[1], 10);

  const auto out = linear({1, 2}, {3, 4, 5, 6}, 2);
  EXPECT_EQ(out, (std::vector<i64>{11, 17}));
}

TEST(Quant, RequantizeRoundsAndClamps) {
  EXPECT_EQ(requantize(127, 4, 4), 7);    // clamps to int4 max
  EXPECT_EQ(requantize(-1000, 4, 4), -8);
  EXPECT_EQ(requantize(24, 4, 8), 2);     // 24/16 = 1.5 -> 2
  EXPECT_EQ(requantize(23, 4, 8), 1);     // 23/16 = 1.44 -> 1
  EXPECT_EQ(requantize(5, 0, 8), 5);      // no shift
}

TEST(Quant, RequantizeDiscardsLsbErrors) {
  // Layer-level robustness (paper Fig. 5(b)): errors below the discarded
  // LSBs do not change the requantized value.
  const i64 clean = 1 << 10;
  for (i64 err = -7; err <= 7; ++err) {
    EXPECT_EQ(requantize(clean + err, 4, 12), requantize(clean, 4, 12)) << err;
  }
}

TEST(Quant, SumProductBits) {
  // W4A4 with 576 taps: 4+4+log2(576) ~ 17.2 -> 19 bits with sign.
  EXPECT_EQ(sum_product_bits(4, 4, 576), 19);
  EXPECT_GE(sum_product_bits(8, 8, 1), 17);
}

TEST(Quant, RandomTensorsInRange) {
  std::mt19937_64 rng(62);
  const Tensor4 w = random_weights(4, 4, 3, 4, rng);
  for (i64 v : w.data()) {
    EXPECT_GE(v, quant_min(4));
    EXPECT_LE(v, quant_max(4));
  }
  const Tensor3 x = random_activations(4, 8, 8, 4, rng);
  for (i64 v : x.data()) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, quant_max(4));
  }
}

TEST(Quant, RectangularRandomWeightsShapeAndRange) {
  std::mt19937_64 rng(5);
  const tensor::Tensor4 w = tensor::random_weights(3, 2, 1, 3, 4, rng);
  EXPECT_EQ(w.out_channels(), 3u);
  EXPECT_EQ(w.in_channels(), 2u);
  EXPECT_EQ(w.kernel_h(), 1u);
  EXPECT_EQ(w.kernel_w(), 3u);
  for (tensor::i64 v : w.data()) {
    EXPECT_GE(v, tensor::quant_min(4));
    EXPECT_LE(v, tensor::quant_max(4));
  }
  // The square overload delegates to the rect one: identical draw sequence.
  std::mt19937_64 a(9), b(9);
  EXPECT_EQ(tensor::random_weights(2, 2, 3, 4, a).data(),
            tensor::random_weights(2, 2, 3, 3, 4, b).data());
}

TEST(Resnet, Resnet18LayerInventory) {
  const auto layers = resnet18_conv_layers();
  ASSERT_EQ(layers.size(), 20u);  // 17 convs + 3 downsamples
  EXPECT_EQ(layers.front().name, "conv1");
  EXPECT_EQ(layers.front().out_h(), 112u);
  // Total MACs of ResNet-18 convs: ~1.8 GMACs.
  std::uint64_t macs = 0;
  for (const auto& l : layers) macs += l.macs();
  EXPECT_GT(macs, 1'700'000'000ULL);
  EXPECT_LT(macs, 1'900'000'000ULL);
}

TEST(Resnet, Resnet50LayerInventory) {
  const auto layers = resnet50_conv_layers();
  ASSERT_EQ(layers.size(), 53u);  // 1 + 16 blocks x 3 + 4 downsamples
  std::uint64_t macs = 0;
  for (const auto& l : layers) macs += l.macs();
  // ResNet-50 convs: ~4 GMACs.
  EXPECT_GT(macs, 3'500'000'000ULL);
  EXPECT_LT(macs, 4'500'000'000ULL);
}

TEST(Resnet, LayerShapesChain) {
  // Output dims of each layer must match the input dims of the next layer in
  // the same stage chain (spot-check the ResNet-50 bottleneck chain).
  const auto layers = resnet50_conv_layers();
  for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
    if (layers[i + 1].name.find(".conv2") != std::string::npos &&
        layers[i].name.find(".conv1") != std::string::npos) {
      EXPECT_EQ(layers[i].out_c, layers[i + 1].in_c) << layers[i].name;
      EXPECT_EQ(layers[i].out_h(), layers[i + 1].in_h) << layers[i].name;
    }
  }
}

TEST(Resnet, QuantizedBlockForward) {
  std::mt19937_64 rng(63);
  const QuantizedBlock block = QuantizedBlock::random(8, 3, 4, 4, rng);
  const Tensor3 x = random_activations(8, 6, 6, 4, rng);
  const Tensor3 y = block.forward(x);
  EXPECT_EQ(y.channels(), 8u);
  EXPECT_EQ(y.height(), 6u);
  for (i64 v : y.data()) {
    EXPECT_GE(v, 0);  // post-ReLU
    EXPECT_LE(v, quant_max(4));
  }
}

TEST(Resnet, SmallErrorsVanishAfterRequant) {
  // Network-level robustness: small injected sum-product errors often leave
  // the block output unchanged (and never corrupt it structurally).
  std::mt19937_64 rng(64);
  const QuantizedBlock block = QuantizedBlock::random(8, 3, 4, 4, rng);
  const Tensor3 x = random_activations(8, 6, 6, 4, rng);
  const Tensor3 clean = block.forward(x);

  Tensor3 err1(8, 6, 6), err2(8, 6, 6);
  std::uniform_int_distribution<i64> small(-2, 2);
  for (auto& e : err1.data()) e = small(rng);
  for (auto& e : err2.data()) e = small(rng);
  const Tensor3 noisy = block.forward_with_error(x, err1, err2);

  std::size_t diffs = 0;
  for (std::size_t i = 0; i < clean.data().size(); ++i) {
    if (clean.data()[i] != noisy.data()[i]) ++diffs;
  }
  // Errors of magnitude <= 2 against a requant shift discarding 2^shift
  // LSBs: the overwhelming majority of outputs are bit-identical.
  EXPECT_LT(static_cast<double>(diffs) / static_cast<double>(clean.data().size()), 0.2);
}

TEST(Resnet, ClassifierDeterministic) {
  std::mt19937_64 rng(65);
  const SyntheticClassifier clf = SyntheticClassifier::random(16, 10, 4, rng);
  const std::vector<i64> feat(16, 3);
  EXPECT_EQ(clf.predict(feat), clf.predict(feat));
  EXPECT_LT(clf.predict(feat), 10u);
}

}  // namespace
}  // namespace flash::tensor
