// Approximation-aware training (the k: 18 -> 5 mechanism) and the static
// noise estimator.
#include <gtest/gtest.h>

#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "bfv/noise.hpp"
#include "tensor/train.hpp"

namespace flash {
namespace {

TEST(Train, SyntheticDataIsSeparable) {
  std::mt19937_64 rng(7);
  const auto data = tensor::LabeledDataset::synthetic(300, 32, 4, 4, 200.0, rng);
  EXPECT_EQ(data.features.size(), 300u);
  // Every class is represented.
  std::vector<int> counts(4, 0);
  for (std::size_t label : data.labels) ++counts[label];
  for (int c : counts) EXPECT_GT(c, 10);
  // Clean training reaches (near-)perfect accuracy.
  std::mt19937_64 trng(8);
  const auto model = tensor::train(data, {}, trng);
  std::mt19937_64 erng(9);
  EXPECT_GE(tensor::evaluate(model, data, 0.0, erng), 0.97);
}

TEST(Train, NoiseInjectionTrainingRecoversAccuracyUnderNoise) {
  // The paper's approximation-aware-training claim in miniature: at an
  // error level where the cleanly-trained model degrades, the noise-trained
  // model recovers most of the loss while staying perfect on clean inputs.
  std::mt19937_64 rng(7);
  const auto data = tensor::LabeledDataset::synthetic(400, 32, 4, 4, 200.0, rng);

  std::mt19937_64 t1(8), t2(8);
  const auto clean_model = tensor::train(data, {}, t1);
  tensor::TrainOptions noisy_opts;
  noisy_opts.train_noise_std = 5.0;
  noisy_opts.noise_draws = 2;
  const auto noisy_model = tensor::train(data, noisy_opts, t2);

  std::mt19937_64 e1(9), e2(9), e3(9), e4(9);
  const double clean_on_clean = tensor::evaluate(clean_model, data, 0.0, e1);
  const double noisy_on_clean = tensor::evaluate(noisy_model, data, 0.0, e2);
  const double clean_on_noisy = tensor::evaluate(clean_model, data, 4.0, e3);
  const double noisy_on_noisy = tensor::evaluate(noisy_model, data, 4.0, e4);

  EXPECT_GE(noisy_on_clean, clean_on_clean - 0.02);  // no clean-accuracy cost
  EXPECT_LT(clean_on_noisy, 0.97);                   // the noise hurts the baseline
  EXPECT_GE(noisy_on_noisy, clean_on_noisy + 0.02);  // training recovers margin
}

TEST(Train, MoreTrainingNoiseMoreRobustness) {
  std::mt19937_64 rng(17);
  const auto data = tensor::LabeledDataset::synthetic(400, 32, 4, 4, 200.0, rng);
  double prev = 0.0;
  for (double sigma : {0.0, 4.0, 8.0}) {
    tensor::TrainOptions opts;
    opts.train_noise_std = sigma;
    opts.noise_draws = 2;
    std::mt19937_64 trng(8), erng(9);
    const auto model = tensor::train(data, opts, trng);
    const double acc = tensor::evaluate(model, data, 8.0, erng);
    EXPECT_GE(acc, prev - 0.03) << sigma;  // robustness is (weakly) increasing
    prev = std::max(prev, acc);
  }
  EXPECT_GT(prev, 0.70);
}

// --- noise estimator ---------------------------------------------------------

struct NoiseFixture {
  bfv::BfvContext ctx;
  hemath::Sampler sampler;
  bfv::KeyGenerator keygen;
  bfv::SecretKey sk;
  bfv::PublicKey pk;
  bfv::Encryptor enc;
  bfv::Decryptor dec;
  bfv::Evaluator ev;
  bfv::NoiseEstimator est;

  NoiseFixture()
      : ctx(bfv::BfvParams::create_batching(1024, 14, 58)), sampler(77), keygen(ctx, sampler),
        sk(keygen.secret_key()), pk(keygen.public_key(sk)), enc(ctx, sampler), dec(ctx, sk),
        ev(ctx, bfv::PolyMulBackend::kNtt), est(ctx.params()) {}

  bfv::Ciphertext fresh_ct(std::mt19937_64& rng) {
    std::vector<hemath::i64> vals(ctx.params().n);
    for (auto& v : vals) v = static_cast<hemath::i64>(rng() % 31) - 15;
    return enc.encrypt(ctx.encode_signed(vals), pk);
  }
};

TEST(NoiseEstimator, FreshPredictionBracketsMeasurement) {
  NoiseFixture f;
  std::mt19937_64 rng(1);
  const auto ct = f.fresh_ct(rng);
  const double measured_noise = f.ctx.params().noise_ceiling_bits() - f.dec.invariant_noise_budget(ct);
  const double predicted = f.est.fresh();
  EXPECT_GE(predicted, measured_noise - 1.0);       // prediction is an upper estimate
  EXPECT_LE(predicted, measured_noise + 10.0);      // ... but not absurdly loose
}

TEST(NoiseEstimator, MultiplyPlainPrediction) {
  NoiseFixture f;
  std::mt19937_64 rng(2);
  const auto ct = f.fresh_ct(rng);
  std::vector<hemath::i64> vw(f.ctx.params().n, 0);
  for (int i = 0; i < 64; ++i) vw[rng() % f.ctx.params().n] = 7;
  const auto prod = f.ev.multiply_plain(ct, f.ctx.encode_signed(vw));
  const double measured = f.ctx.params().noise_ceiling_bits() - f.dec.invariant_noise_budget(prod);
  const double predicted = f.est.after_multiply_plain(f.est.fresh(), 64, 7.0);
  EXPECT_GE(predicted, measured - 1.0);
  EXPECT_LE(predicted, measured + 10.0);
}

TEST(NoiseEstimator, CtCtAndKeySwitchPrediction) {
  NoiseFixture f;
  bfv::KeySwitcher switcher(f.ctx, f.sampler);
  const auto rlk = switcher.make_relin_keys(f.sk);
  std::mt19937_64 rng(3);
  const auto ca = f.fresh_ct(rng);
  const auto cb = f.fresh_ct(rng);
  const auto prod = f.ev.multiply_relin(ca, cb, rlk);
  const double measured = f.ctx.params().noise_ceiling_bits() - f.dec.invariant_noise_budget(prod);
  const double predicted =
      f.est.after_key_switch(f.est.after_multiply_ct(f.est.fresh(), f.est.fresh()), 16);
  EXPECT_GE(predicted, measured - 1.0);
  EXPECT_LE(predicted, measured + 14.0);
}

TEST(NoiseEstimator, AddIsLogSumExp) {
  NoiseFixture f;
  EXPECT_NEAR(f.est.after_add(10.0, 10.0), 11.0, 1e-9);
  EXPECT_NEAR(f.est.after_add(20.0, 0.0), 20.0, 0.01);
}

TEST(NoiseEstimator, BudgetMatchesCeiling) {
  NoiseFixture f;
  EXPECT_NEAR(f.est.budget(0.0), f.ctx.params().noise_ceiling_bits(), 1e-9);
  EXPECT_LT(f.est.budget(50.0), f.est.budget(10.0));
}

}  // namespace
}  // namespace flash
