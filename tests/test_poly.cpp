// Polynomial ring element tests: arithmetic, weight/sparsity, mod switching.
#include <gtest/gtest.h>

#include <random>

#include "hemath/poly.hpp"
#include "hemath/primes.hpp"
#include "hemath/sampler.hpp"

namespace flash::hemath {
namespace {

TEST(Poly, AddSubNegateRoundTrip) {
  const u64 q = find_ntt_prime(30, 64);
  Sampler sampler(5);
  Poly a = sampler.uniform_poly(q, 64);
  Poly b = sampler.uniform_poly(q, 64);
  Poly c = a + b;
  Poly d = c - b;
  EXPECT_EQ(d, a);
  Poly e = a;
  e.negate_inplace();
  Poly zero = a + e;
  EXPECT_EQ(zero, Poly(q, 64));
}

TEST(Poly, ScaleMatchesRepeatedAdd) {
  const u64 q = 97;
  Poly a(q, 8);
  for (std::size_t i = 0; i < 8; ++i) a[i] = static_cast<u64>(i * 7 % q);
  Poly three = a;
  three.scale_inplace(3);
  Poly sum = a;
  sum.add_inplace(a);
  sum.add_inplace(a);
  EXPECT_EQ(three, sum);
}

TEST(Poly, WeightAndSparsity) {
  Poly a(17, 10);
  EXPECT_EQ(a.weight(), 0u);
  EXPECT_DOUBLE_EQ(a.sparsity(), 1.0);
  a[0] = 1;
  a[9] = 16;
  EXPECT_EQ(a.weight(), 2u);
  EXPECT_DOUBLE_EQ(a.sparsity(), 0.8);
}

TEST(Poly, MultiplyMatchesSchoolbook) {
  const std::size_t n = 128;
  const u64 q = find_ntt_prime(40, n);
  NttTables tables(q, n);
  Sampler sampler(6);
  const Poly a = sampler.uniform_poly(q, n);
  const Poly b = sampler.uniform_poly(q, n);
  EXPECT_EQ(multiply(tables, a, b), multiply_schoolbook(a, b));
}

TEST(Poly, MultiplyRingMismatchThrows) {
  const u64 q = find_ntt_prime(30, 64);
  NttTables tables(q, 64);
  Poly a(q, 64), b(q, 32);
  EXPECT_THROW(multiply(tables, a, b), std::invalid_argument);
  Poly c(q + 0, 64), d(17, 64);
  EXPECT_THROW(c.add_inplace(d), std::invalid_argument);
}

TEST(Poly, ModSwitchPreservesSignedValues) {
  const u64 q_from = 1000003, q_to = 65537;
  Poly a(q_from, 4);
  a[0] = 5;                      // +5
  a[1] = q_from - 9;             // -9
  a[2] = 0;
  a[3] = q_from / 2;             // large positive
  const Poly b = mod_switch(a, q_to);
  EXPECT_EQ(to_signed(b[0], q_to), 5);
  EXPECT_EQ(to_signed(b[1], q_to), -9);
  EXPECT_EQ(b[2], 0u);
}

TEST(Poly, DistributivityProperty) {
  const std::size_t n = 64;
  const u64 q = find_ntt_prime(35, n);
  NttTables tables(q, n);
  Sampler sampler(7);
  const Poly a = sampler.uniform_poly(q, n);
  const Poly b = sampler.uniform_poly(q, n);
  const Poly c = sampler.uniform_poly(q, n);
  // a*(b+c) == a*b + a*c
  const Poly lhs = multiply(tables, a, b + c);
  const Poly rhs = multiply(tables, a, b) + multiply(tables, a, c);
  EXPECT_EQ(lhs, rhs);
}

}  // namespace
}  // namespace flash::hemath
