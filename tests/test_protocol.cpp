// Hybrid HE/2PC protocol: share reconstruction, end-to-end HConv correctness
// on every backend, communication accounting, and profiling plumbing.
#include <gtest/gtest.h>

#include <random>

#include "core/flash_accelerator.hpp"
#include "protocol/hconv_protocol.hpp"
#include "tensor/quant.hpp"

namespace flash::protocol {
namespace {

TEST(SecretSharing, ReconstructRoundTrip) {
  std::mt19937_64 rng(81);
  const u64 t = u64{1} << 16;
  std::vector<i64> values;
  std::uniform_int_distribution<i64> dist(-30000, 30000);
  for (int i = 0; i < 500; ++i) values.push_back(dist(rng));
  const SharedVector s = share(values, t, rng);
  EXPECT_EQ(reconstruct(s.client, s.server, t), values);
}

TEST(SecretSharing, SharesLookUniform) {
  std::mt19937_64 rng(82);
  const u64 t = 1 << 8;
  const std::vector<i64> values(4096, 7);  // constant cleartext
  const SharedVector s = share(values, t, rng);
  // Client shares of a constant must still cover the whole range.
  std::vector<int> hist(t, 0);
  for (u64 v : s.client) ++hist[v];
  int nonzero_bins = 0;
  for (int h : hist) nonzero_bins += h > 0;
  EXPECT_GT(nonzero_bins, 200);
}

TEST(Protocol, CiphertextBytes) {
  const bfv::BfvParams p = bfv::BfvParams::create(1024, 16, 45);
  // 45-bit q -> 6 bytes per coefficient, 2 polynomials.
  EXPECT_EQ(ciphertext_bytes(p), 2u * 1024u * 6u);
}

class ProtocolBackend : public ::testing::TestWithParam<bfv::PolyMulBackend> {};

TEST_P(ProtocolBackend, HConvMatchesCleartextConv) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  std::optional<fft::FxpFftConfig> cfg;
  if (GetParam() == bfv::PolyMulBackend::kApproxFft) {
    cfg = core::high_accuracy_approx_config(params.n, params.t);
  }
  HConvProtocol proto(ctx, GetParam(), cfg, 4242);

  std::mt19937_64 rng(83);
  const tensor::Tensor3 x = tensor::random_activations(6, 9, 9, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(4, 6, 3, 4, rng);

  HConvResult result = proto.run(x, w);
  const tensor::Tensor3 got = result.reconstruct(params.t);
  const tensor::Tensor3 expect = tensor::conv2d(x, w, {1, 0});
  EXPECT_EQ(got.data(), expect.data()) << "backend HConv result mismatch";

  EXPECT_GT(result.profile.bytes_client_to_server, 0u);
  EXPECT_GT(result.profile.bytes_server_to_client, 0u);
  EXPECT_GT(result.profile.total_s(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, ProtocolBackend,
                         ::testing::Values(bfv::PolyMulBackend::kNtt, bfv::PolyMulBackend::kFft,
                                           bfv::PolyMulBackend::kApproxFft));

TEST(Protocol, HeadlineConfigErrorBoundedByModulus) {
  // Reproduction finding (DESIGN.md): under faithful BFV the k = 5 headline
  // configuration leaves a residual error that scales with the plaintext
  // modulus (~t/8 rms), because the weight-spectrum error multiplies the
  // ciphertext-scale elements. It stays bounded (never full-modulus
  // garbage); bit-exactness is provided by the high-accuracy configuration
  // (tested in ProtocolBackend above). The paper's k = 5 accuracy claims are
  // reproduced under its own error-injection methodology in bench/.
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  HConvProtocol proto(ctx, bfv::PolyMulBackend::kApproxFft,
                      core::default_approx_config(params.n, params.t), 555);
  std::mt19937_64 rng(87);
  const tensor::Tensor3 x = tensor::random_activations(6, 9, 9, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(4, 6, 3, 4, rng);
  const HConvResult result = proto.run(x, w);
  const tensor::Tensor3 got = result.reconstruct(params.t);
  const tensor::Tensor3 expect = tensor::conv2d(x, w, {1, 0});
  double rms = 0;
  i64 max_err = 0;
  for (std::size_t i = 0; i < got.data().size(); ++i) {
    const i64 d = got.data()[i] - expect.data()[i];
    max_err = std::max<i64>(max_err, std::abs(d));
    rms += static_cast<double>(d) * static_cast<double>(d);
  }
  rms = std::sqrt(rms / static_cast<double>(got.data().size()));
  EXPECT_GT(max_err, 0);
  EXPECT_LT(rms, static_cast<double>(params.t) / 4.0);
  EXPECT_LT(max_err, static_cast<i64>(params.t) / 2);
}

TEST(Protocol, MultiTileAccumulation) {
  // Force several channel tiles: 24 channels x 9x9 patch in a 1024-degree
  // polynomial (slack 2*9+2=20 -> 12 channels per poly -> 2 tiles).
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  HConvProtocol proto(ctx, bfv::PolyMulBackend::kNtt, std::nullopt, 99);
  std::mt19937_64 rng(84);
  const tensor::Tensor3 x = tensor::random_activations(24, 9, 9, 3, rng);
  const tensor::Tensor4 w = tensor::random_weights(2, 24, 3, 3, rng);
  HConvResult result = proto.run(x, w);
  EXPECT_EQ(result.reconstruct(params.t).data(), tensor::conv2d(x, w, {1, 0}).data());
  // Two ciphertexts uploaded.
  EXPECT_EQ(result.profile.bytes_client_to_server, 2 * ciphertext_bytes(params));
  // One result ciphertext per output channel.
  EXPECT_EQ(result.profile.bytes_server_to_client, 2 * ciphertext_bytes(params));
}

TEST(Protocol, WeightTransformsAmortized) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  HConvProtocol proto(ctx, bfv::PolyMulBackend::kFft, std::nullopt, 7);
  std::mt19937_64 rng(85);
  const tensor::Tensor3 x = tensor::random_activations(4, 8, 8, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(8, 4, 3, 4, rng);
  const HConvResult result = proto.run(x, w);
  // 8 output channels x 1 tile: exactly 8 plain transforms. The ciphertext
  // is transformed once per element (2 total) and *shared* across all 8
  // output channels (paper §III-B amortization); one inverse per output
  // ciphertext element (16).
  EXPECT_EQ(result.ops.plain_transforms, 8u);
  EXPECT_EQ(result.ops.cipher_transforms, 2u);
  EXPECT_EQ(result.ops.inverse_transforms, 16u);
}

class ProtocolSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolSeeds, HConvExactAcrossSeeds) {
  // Stability sweep: fresh keys, shares and masks every seed; the protocol
  // must reconstruct exactly each time.
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  HConvProtocol proto(ctx, bfv::PolyMulBackend::kNtt, std::nullopt, GetParam());
  std::mt19937_64 rng(GetParam() * 3 + 1);
  const tensor::Tensor3 x = tensor::random_activations(1 + rng() % 8, 6 + rng() % 5,
                                                       6 + rng() % 5, 4, rng);
  const tensor::Tensor4 w =
      tensor::random_weights(1 + rng() % 4, x.channels(), 3, 4, rng);
  const HConvResult result = proto.run(x, w);
  EXPECT_EQ(result.reconstruct(params.t).data(), tensor::conv2d(x, w, {1, 0}).data());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSeeds, ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(Protocol, MatVecFcLayerMatchesLinear) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  HConvProtocol proto(ctx, bfv::PolyMulBackend::kFft, std::nullopt, 31);
  std::mt19937_64 rng(88);
  std::uniform_int_distribution<i64> wdist(-7, 7), xdist(0, 15);
  const std::size_t in_f = 256, out_f = 10;
  std::vector<i64> w(in_f * out_f), x(in_f);
  for (auto& v : w) v = wdist(rng);
  for (auto& v : x) v = xdist(rng);
  auto result = proto.run_matvec(x, w, out_f);
  EXPECT_EQ(result.reconstruct(params.t), tensor::linear(x, w, out_f));
  // One ciphertext up; ceil(10 / (1024/256)) = 3 chunks back.
  EXPECT_EQ(result.profile.bytes_client_to_server, ciphertext_bytes(params));
  EXPECT_EQ(result.profile.bytes_server_to_client, 3 * ciphertext_bytes(params));
}

TEST(Protocol, MatVecMultiChunk) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  HConvProtocol proto(ctx, bfv::PolyMulBackend::kNtt, std::nullopt, 32);
  std::mt19937_64 rng(89);
  std::uniform_int_distribution<i64> wdist(-7, 7), xdist(0, 15);
  const std::size_t in_f = 512, out_f = 9;  // 2 rows per poly -> 5 chunks
  std::vector<i64> w(in_f * out_f), x(in_f);
  for (auto& v : w) v = wdist(rng);
  for (auto& v : x) v = xdist(rng);
  auto result = proto.run_matvec(x, w, out_f);
  EXPECT_EQ(result.reconstruct(params.t), tensor::linear(x, w, out_f));
  EXPECT_EQ(result.client_share.size(), out_f);
}

TEST(Protocol, ServerLearnsNothingWithoutMask) {
  // The returned client share alone must not reveal the result: compare
  // against the true output and expect (overwhelmingly) disagreement.
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  HConvProtocol proto(ctx, bfv::PolyMulBackend::kNtt, std::nullopt, 11);
  std::mt19937_64 rng(86);
  const tensor::Tensor3 x = tensor::random_activations(2, 8, 8, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(1, 2, 3, 4, rng);
  const HConvResult result = proto.run(x, w);
  const tensor::Tensor3 expect = tensor::conv2d(x, w, {1, 0});
  std::size_t matches = 0;
  for (std::size_t i = 0; i < expect.data().size(); ++i) {
    const i64 client_only = hemath::to_signed(result.client_share[0][i], params.t);
    if (client_only == expect.data()[i]) ++matches;
  }
  EXPECT_LT(matches, expect.data().size() / 8);
}

}  // namespace
}  // namespace flash::protocol
