// Lint fixture (never compiled): a generator in a parallel body with a
// documented allow() marker, plus the canonical passing idiom. The plain
// `flash_lint <this tree>` run must be clean.
#include <cstdint>

#include "core/thread_pool.hpp"
#include "hemath/sampler.hpp"

namespace flash::fixture {

void documented_shared_stream(core::ThreadPool* pool, std::size_t tiles,
                              std::uint64_t run_seed) {
  core::for_range(pool, tiles, [&](std::size_t tile) {
    // flash-lint: allow(stream-derive): tiles==1 on this path; the single worker owns the stream
    hemath::Sampler sampler(hemath::substream(run_seed, 0, 0));
    (void)tile;
    (void)sampler;
  });
}

void canonical_per_tile_stream(core::ThreadPool* pool, std::size_t tiles,
                               std::uint64_t run_seed) {
  core::for_range(pool, tiles, [&](std::size_t tile) {
    hemath::Sampler sampler(hemath::substream(run_seed, 0, tile));
    (void)sampler;
  });
}

}  // namespace flash::fixture
