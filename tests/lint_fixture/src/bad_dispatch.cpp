// Lint fixture (never compiled): a dispatch site outside src/hemath/simd
// reading the raw SIMD level. The flash_lint simd-dispatch rule must flag
// this — the flash_lint_detects_simd_dispatch ctest runs the linter over
// this tree and expects a finding.
#include "hemath/simd.hpp"

namespace flash::fft {

bool use_vector_kernel() {
  return hemath::simd::active_simd_level() == hemath::simd::SimdLevel::kAvx2;
}

}  // namespace flash::fft
