// Lint fixture (never compiled): a generator constructed from a literal
// seed outside hemath/sampler and testing/generators. Failure logs cannot
// replay this stream and parallel callers share it. Run with
// `flash_lint --expect raw-rng <this tree>`.
#include <random>

namespace flash::fixture {

double bad_noise() {
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(rng);
}

double bad_temporary() {
  return static_cast<double>(std::mt19937_64(99)());
}

}  // namespace flash::fixture
