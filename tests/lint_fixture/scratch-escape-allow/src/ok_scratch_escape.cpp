// Lint fixture (never compiled): the scratch-escape pattern with a
// documented allow() marker. The plain `flash_lint <this tree>` run must be
// clean — the marker suppresses the finding and carries the reason.
#include <span>

#include "core/scratch.hpp"

namespace flash::fixture {

std::span<double> documented_return(std::size_t n) {
  core::ScratchFrame frame(core::thread_scratch());
  std::span<double> vals = frame.alloc<double>(n);
  // flash-lint: allow(scratch-escape): caller consumes the span before the next scratch allocation on this thread
  return vals;
}

}  // namespace flash::fixture
