// Lint fixture (never compiled): a narrowing cast from the wide accumulator
// in the fixed-point FFT path without going through the saturation helper.
// The interval analyzer may have proven bits above 31 can be set; this cast
// silently drops them. Run with `flash_lint --expect narrowing-fxp <tree>`.
#include <cstdint>

namespace flash::fixture {

std::int32_t bad_truncate(std::int64_t acc) {
  return static_cast<std::int32_t>(acc);
}

}  // namespace flash::fixture
