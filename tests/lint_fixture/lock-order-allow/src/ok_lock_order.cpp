// Lint fixture (never compiled): the opposite-order acquisition pair with a
// documented allow() marker on one inner acquisition. The marker removes
// that edge from the lock graph, which breaks the cycle — the plain
// `flash_lint <this tree>` run must be clean.
#include <mutex>

namespace flash::fixture {

struct Queues {
  std::mutex submit_mu;
  std::mutex drain_mu;
  int pending = 0;
  int done = 0;
};

void submit(Queues& qs) {
  std::lock_guard<std::mutex> outer(qs.submit_mu);
  ++qs.pending;
  std::lock_guard<std::mutex> inner(qs.drain_mu);
  ++qs.done;
}

void drain(Queues& qs) {
  std::lock_guard<std::mutex> outer(qs.drain_mu);
  --qs.done;
  // flash-lint: allow(lock-order): drain() only runs after shutdown, when submit() can no longer interleave
  std::lock_guard<std::mutex> inner(qs.submit_mu);
  --qs.pending;
}

}  // namespace flash::fixture
