// Lint fixture (never compiled): generators constructed inside parallel
// bodies without deriving a per-index stream. Every worker replays the same
// mask stream — the correlated-randomness bug class the protocol seed
// schedule exists to prevent. Run with
// `flash_lint --expect stream-derive <this tree>`.
#include <cstdint>

#include "core/thread_pool.hpp"
#include "hemath/sampler.hpp"

namespace flash::fixture {

void bad_fixed_seed(core::ThreadPool* pool, std::size_t tiles) {
  core::for_range(pool, tiles, [&](std::size_t tile) {
    hemath::Sampler sampler(12345);  // same stream in every worker
    (void)tile;
    (void)sampler;
  });
}

void bad_no_index(core::ThreadPool& pool, std::size_t tiles, std::uint64_t run_seed) {
  pool.parallel_for(0, tiles, [&](std::size_t tile) {
    // Derived, but not from the loop index: still one stream for all tiles.
    hemath::Sampler sampler(hemath::substream(run_seed, 0, 0));
    (void)tile;
    (void)sampler;
  });
}

}  // namespace flash::fixture
