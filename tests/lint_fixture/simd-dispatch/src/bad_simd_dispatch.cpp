// Lint fixture (never compiled): a dispatch site outside src/hemath/simd
// comparing the raw SIMD level for equality. This pattern turned AVX2
// kernels off when kAvx512 was added. Run with
// `flash_lint --expect simd-dispatch <this tree>`.
#include "hemath/simd.hpp"

namespace flash::fixture {

bool use_vector_kernel() {
  return hemath::simd::active_simd_level() == hemath::simd::SimdLevel::kAvx2;
}

}  // namespace flash::fixture
