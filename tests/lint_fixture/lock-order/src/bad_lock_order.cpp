// Lint fixture (never compiled): two paths acquiring the same pair of
// mutexes in opposite orders — the textbook deadlock. The lock-order rule
// builds the global acquisition graph and reports every edge on the cycle.
// Run with `flash_lint --expect lock-order <this tree>`.
#include <mutex>

namespace flash::fixture {

struct Queues {
  std::mutex submit_mu;
  std::mutex drain_mu;
  int pending = 0;
  int done = 0;
};

void submit(Queues& qs) {
  std::lock_guard<std::mutex> outer(qs.submit_mu);
  ++qs.pending;
  std::lock_guard<std::mutex> inner(qs.drain_mu);
  ++qs.done;
}

void drain(Queues& qs) {
  std::lock_guard<std::mutex> outer(qs.drain_mu);
  --qs.done;
  std::lock_guard<std::mutex> inner(qs.submit_mu);
  --qs.pending;
}

}  // namespace flash::fixture
