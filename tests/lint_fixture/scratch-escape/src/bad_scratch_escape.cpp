// Lint fixture (never compiled): spans allocated from a locally-declared
// core::ScratchFrame escaping the frame lifetime — via return and via a
// member store. Both read reclaimed arena memory once the frame dies. Run
// with `flash_lint --expect scratch-escape <this tree>`.
#include <span>

#include "core/scratch.hpp"

namespace flash::fixture {

std::span<double> bad_return(std::size_t n) {
  core::ScratchFrame frame(core::thread_scratch());
  std::span<double> vals = frame.alloc<double>(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = 0.0;
  return vals;
}

std::span<double> bad_direct_return(std::size_t n) {
  core::ScratchFrame frame(core::thread_scratch());
  return frame.alloc<double>(n);
}

class BadCache {
 public:
  void fill(std::size_t n) {
    core::ScratchFrame frame(core::thread_scratch());
    std::span<double> vals = frame.alloc<double>(n);
    stash_ = vals;
  }

 private:
  std::span<double> stash_;
};

}  // namespace flash::fixture
