// Lint fixture (never compiled): raw % against a modulus-domain value
// outside src/hemath. The product overflows u64 without the 128-bit
// widening mul_mod guarantees — exactly what the raw-mod rule exists to
// catch. Run with `flash_lint --expect raw-mod <this tree>`.
#include <cstdint>

namespace flash::fixture {

std::uint64_t bad_product(std::uint64_t a, std::uint64_t b, std::uint64_t q) {
  return (a * b) % q;
}

std::uint64_t bad_member(std::uint64_t a, const struct Params* p);

struct Params {
  std::uint64_t modulus;
};

std::uint64_t bad_member_access(std::uint64_t a, const Params& p) {
  return a % p.modulus;
}

}  // namespace flash::fixture
