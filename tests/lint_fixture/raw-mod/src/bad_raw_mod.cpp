// Lint fixture (never compiled): raw % against a modulus-domain value
// outside src/hemath. The product overflows u64 without the 128-bit
// widening mul_mod guarantees — exactly what the raw-mod rule exists to
// catch. Run with `flash_lint --expect raw-mod <this tree>`.
#include <cstdint>

namespace flash::fixture {

std::uint64_t bad_product(std::uint64_t a, std::uint64_t b, std::uint64_t q) {
  return (a * b) % q;
}

std::uint64_t bad_member(std::uint64_t a, const struct Params* p);

struct Params {
  std::uint64_t modulus;
};

std::uint64_t bad_member_access(std::uint64_t a, const Params& p) {
  return a % p.modulus;
}

struct Ring {
  std::uint64_t coeff_mask;
};

// Hand-rolled Z_{2^k} reductions: the masked-reduction arm of the rule must
// flag a bare `& mask` and a compound `&= r.coeff_mask` outside src/hemath
// (Pow2Ring owns the idiom there).
std::uint64_t bad_mask_reduce(std::uint64_t a, std::uint64_t b, std::uint64_t mask) {
  return (a * b) & mask;
}

void bad_mask_reduce_compound(std::uint64_t& acc, std::uint64_t x, const Ring& r) {
  acc += x;
  acc &= r.coeff_mask;
}

// Unary address-of must NOT fire: after `(` the `&` is not a binary bitwise
// operator, so the rule's previous-token check skips it.
void takes_ptr(std::uint64_t* p);
void fine_unary_address_of(std::uint64_t mask) { takes_ptr(&mask); }

}  // namespace flash::fixture
