// Cross-module integration: the full private-inference slice — quantized
// block, Cheetah encoding, BFV protocol on the approximate+sparse datapath,
// requantization, and the classification-flip accuracy proxy.
#include <gtest/gtest.h>

#include <random>

#include "bfv/noise.hpp"
#include "core/flash_accelerator.hpp"
#include "tensor/quant.hpp"
#include "tensor/resnet.hpp"

namespace flash {
namespace {

using tensor::i64;

/// Pad a tensor spatially by `pad` zeros on each side.
tensor::Tensor3 pad_tensor(const tensor::Tensor3& x, std::size_t pad) {
  tensor::Tensor3 out(x.channels(), x.height() + 2 * pad, x.width() + 2 * pad);
  for (std::size_t c = 0; c < x.channels(); ++c) {
    for (std::size_t y = 0; y < x.height(); ++y) {
      for (std::size_t xx = 0; xx < x.width(); ++xx) {
        out.at(c, y + pad, xx + pad) = x.at(c, y, xx);
      }
    }
  }
  return out;
}

TEST(Integration, PrivateConvThenRequantizeMatchesCleartext) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  core::FlashOptions options;
  options.backend = bfv::PolyMulBackend::kApproxFft;
  options.approx_config = core::high_accuracy_approx_config(params.n, params.t);
  core::FlashAccelerator flash(params, options);

  std::mt19937_64 rng(111);
  const tensor::Tensor3 x = tensor::random_activations(4, 8, 8, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(4, 4, 3, 4, rng);

  // Homomorphic path: pad ("same" conv), HConv, reconstruct, requantize.
  const tensor::Tensor3 padded = pad_tensor(x, 1);
  const protocol::HConvResult res = flash.run_hconv(padded, w);
  tensor::Tensor3 he_out = res.reconstruct(params.t);
  tensor::requantize(he_out.data(), 4, 4);

  // Cleartext path.
  tensor::Tensor3 ref = tensor::conv2d(x, w, {1, 1});
  tensor::requantize(ref.data(), 4, 4);

  EXPECT_EQ(he_out.data(), ref.data());
}

TEST(Integration, TwoLayerPrivatePipelineExact) {
  // Chain two HConvs with ReLU + requantization in between, as the hybrid
  // protocol would (non-linearities via 2PC, simulated in cleartext).
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  core::FlashOptions options;
  options.backend = bfv::PolyMulBackend::kApproxFft;
  options.approx_config = core::high_accuracy_approx_config(params.n, params.t);
  core::FlashAccelerator flash(params, options);

  std::mt19937_64 rng(112);
  const tensor::Tensor3 x = tensor::random_activations(3, 8, 8, 4, rng);
  const tensor::Tensor4 w1 = tensor::random_weights(4, 3, 3, 4, rng);
  const tensor::Tensor4 w2 = tensor::random_weights(2, 4, 3, 4, rng);

  auto layer = [&](const tensor::Tensor3& in, const tensor::Tensor4& w) {
    const protocol::HConvResult r = flash.run_hconv(pad_tensor(in, 1), w);
    tensor::Tensor3 y = r.reconstruct(params.t);
    tensor::requantize(y.data(), 4, 4);
    return tensor::relu(std::move(y));
  };
  auto layer_ref = [&](const tensor::Tensor3& in, const tensor::Tensor4& w) {
    tensor::Tensor3 y = tensor::conv2d(in, w, {1, 1});
    tensor::requantize(y.data(), 4, 4);
    return tensor::relu(std::move(y));
  };

  const tensor::Tensor3 he = layer(layer(x, w1), w2);
  const tensor::Tensor3 ref = layer_ref(layer_ref(x, w1), w2);
  EXPECT_EQ(he.data(), ref.data());
}

TEST(Integration, ClassificationFlipRateUnderApproxError) {
  // Network-level robustness proxy (paper Fig. 5(b) / Table IV accuracy):
  // run the synthetic classifier over many inputs with exact vs.
  // error-injected blocks; flips must be rare for small errors and the
  // error-free run must flip nothing.
  std::mt19937_64 rng(113);
  const tensor::QuantizedBlock block = tensor::QuantizedBlock::random(8, 3, 4, 4, rng);
  const tensor::SyntheticClassifier clf = tensor::SyntheticClassifier::random(8, 10, 4, rng);

  std::size_t flips_small = 0, flips_zero = 0;
  const int samples = 40;
  std::uniform_int_distribution<i64> small_err(-2, 2);
  for (int s = 0; s < samples; ++s) {
    const tensor::Tensor3 x = tensor::random_activations(8, 6, 6, 4, rng);
    const tensor::Tensor3 clean = block.forward(x);
    const std::size_t label = clf.predict(tensor::global_avg_pool(clean));

    const tensor::Tensor3 zero1, zero2;
    const tensor::Tensor3 again = block.forward_with_error(x, zero1, zero2);
    if (clf.predict(tensor::global_avg_pool(again)) != label) ++flips_zero;

    tensor::Tensor3 e1(8, 6, 6), e2(8, 6, 6);
    for (auto& v : e1.data()) v = small_err(rng);
    for (auto& v : e2.data()) v = small_err(rng);
    const tensor::Tensor3 noisy = block.forward_with_error(x, e1, e2);
    if (clf.predict(tensor::global_avg_pool(noisy)) != label) ++flips_small;
  }
  EXPECT_EQ(flips_zero, 0u);
  EXPECT_LT(static_cast<double>(flips_small) / samples, 0.15);
}

TEST(Integration, NoiseBudgetSurvivesApproxHConv) {
  // Kernel-level robustness: after an approximate-FFT HConv the ciphertext
  // must still decrypt exactly (checked via protocol correctness above) and
  // the predicted headroom for FFT error must be positive.
  const bfv::BfvParams params = bfv::BfvParams::create(4096, 20, 49);
  const double fresh = bfv::predicted_fresh_noise_bits(params);
  const double after = bfv::predicted_plain_mult_noise_bits(params, fresh, 9, 8.0);
  EXPECT_GT(bfv::approx_error_headroom_bits(params, after), 2.0);
}

TEST(Integration, EndToEndCountersMatchTilingPlan) {
  // The functional protocol and the analytic tiling planner must agree on
  // transform counts for a layer that fits without spatial tiling.
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  protocol::HConvProtocol proto(ctx, bfv::PolyMulBackend::kFft, std::nullopt, 3);

  std::mt19937_64 rng(114);
  const std::size_t c = 4, hw = 8, k = 3, m_out = 5;
  const tensor::Tensor3 x = tensor::random_activations(c, hw, hw, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(m_out, c, k, 4, rng);
  const protocol::HConvResult res = proto.run(x, w);

  tensor::LayerConfig layer;
  layer.in_c = c;
  layer.in_h = layer.in_w = hw;
  layer.out_c = m_out;
  layer.kernel = k;
  layer.stride = 1;
  layer.pad = 0;  // input is already the valid-conv patch
  const encoding::LayerTiling t = encoding::plan_layer(layer, params.n);

  EXPECT_EQ(res.ops.plain_transforms, t.weight_transforms);
  EXPECT_EQ(res.ops.cipher_transforms, t.cipher_transforms);
  EXPECT_EQ(res.ops.inverse_transforms, t.inverse_transforms);
}

}  // namespace
}  // namespace flash
