// Parallel HConv pipeline parity: ConvRunner under a thread pool must
// reconstruct exactly the cleartext convolution AND be bit-identical to the
// serial path — shares and masks included — because every HConv unit draws
// its randomness from a stream fixed by its (phase, tile) position, not by
// scheduling order. Runs under the TSan preset via `ctest -L mt`.
#include <gtest/gtest.h>

#include <random>

#include "core/flash_accelerator.hpp"
#include "core/thread_pool.hpp"
#include "protocol/conv_runner.hpp"
#include "tensor/quant.hpp"

namespace flash::protocol {
namespace {

constexpr std::uint64_t kSeed = 71;

bfv::BfvParams test_params() { return bfv::BfvParams::create(1024, 18, 46); }

ConvRunnerResult run_with_threads(const tensor::Tensor3& x, const tensor::Tensor4& w,
                                  std::size_t stride, std::size_t pad, std::size_t threads) {
  bfv::BfvContext ctx(test_params());
  HConvProtocol proto(ctx, bfv::PolyMulBackend::kFft, std::nullopt, kSeed);
  if (threads <= 1) {
    ConvRunner runner(proto);
    return runner.run(x, w, stride, pad);
  }
  core::ThreadPool pool(threads);
  ConvRunner runner(proto, &pool);
  return runner.run(x, w, stride, pad);
}

class ParallelConvParity
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ParallelConvParity, BitIdenticalToSerialAndMatchesOracle) {
  const auto [stride, pad] = GetParam();
  std::mt19937_64 rng(17 + stride * 10 + pad);
  // Large enough spatially that stride-1 splits into several tiles (the
  // 1024-degree ring fits ~24x24 patches), so the pool has real fan-out.
  const tensor::Tensor3 x = tensor::random_activations(3, 20, 20, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(4, 3, 3, 4, rng);

  const ConvRunnerResult serial = run_with_threads(x, w, stride, pad, 1);
  const ConvRunnerResult parallel = run_with_threads(x, w, stride, pad, 8);

  // Bit-identical shares, not just identical reconstructions.
  EXPECT_EQ(serial.client_share.data(), parallel.client_share.data());
  EXPECT_EQ(serial.server_share.data(), parallel.server_share.data());
  EXPECT_EQ(serial.hconv_calls, parallel.hconv_calls);
  EXPECT_EQ(serial.bytes_client_to_server, parallel.bytes_client_to_server);

  const u64 t = test_params().t;
  const tensor::Tensor3 expect = tensor::conv2d(x, w, {stride, pad});
  EXPECT_EQ(parallel.reconstruct(t).data(), expect.data());
  EXPECT_EQ(serial.reconstruct(t).data(), expect.data());
}

INSTANTIATE_TEST_SUITE_P(StridePad, ParallelConvParity,
                         ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2}),
                                            ::testing::Values(std::size_t{0}, std::size_t{1})));

TEST(ParallelConv, ExplicitStreamsAreSchedulingIndependent) {
  // Two protocols with the same seed: run_stream(s) must reproduce the same
  // shares for the same stream id even if the other protocol has already
  // consumed different stream ids in between.
  bfv::BfvContext ctx(test_params());
  HConvProtocol p1(ctx, bfv::PolyMulBackend::kFft, std::nullopt, kSeed);
  HConvProtocol p2(ctx, bfv::PolyMulBackend::kFft, std::nullopt, kSeed);
  std::mt19937_64 rng(3);
  const tensor::Tensor3 x = tensor::random_activations(2, 6, 6, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(2, 2, 3, 4, rng);

  (void)p2.run_stream(x, w, 5);  // consume an unrelated stream first
  const HConvResult a = p1.run_stream(x, w, 9);
  const HConvResult b = p2.run_stream(x, w, 9);
  EXPECT_EQ(a.client_share, b.client_share);
  EXPECT_EQ(a.server_share, b.server_share);
}

TEST(ParallelConv, PooledProtocolMatchesOracleOnApproxBackend) {
  // The FLASH approximate datapath under the pool: the no-retraining design
  // point is bit-exact, so reconstruction must equal the cleartext conv while
  // many threads share one FxpNegacyclicTransform.
  bfv::BfvContext ctx(test_params());
  const fft::FxpFftConfig cfg =
      core::high_accuracy_approx_config(ctx.params().n, ctx.params().t);
  core::ThreadPool pool(8);
  HConvProtocol proto(ctx, bfv::PolyMulBackend::kApproxFft, cfg, kSeed, &pool);
  ConvRunner runner(proto, &pool);
  std::mt19937_64 rng(23);
  const tensor::Tensor3 x = tensor::random_activations(2, 8, 8, 2, rng);
  const tensor::Tensor4 w = tensor::random_weights(3, 2, 3, 2, rng);
  const ConvRunnerResult r = runner.run(x, w, 1, 1);
  EXPECT_EQ(r.reconstruct(ctx.params().t).data(), tensor::conv2d(x, w, {1, 1}).data());
}

TEST(ParallelConv, MatVecParityUnderPool) {
  bfv::BfvContext ctx(test_params());
  std::mt19937_64 rng(31);
  const std::size_t in = 64, out = 48;
  std::vector<i64> x(in), w(in * out);
  for (auto& v : x) v = static_cast<i64>(rng() % 15) - 7;
  for (auto& v : w) v = static_cast<i64>(rng() % 15) - 7;

  HConvProtocol serial(ctx, bfv::PolyMulBackend::kFft, std::nullopt, kSeed);
  const auto rs = serial.run_matvec(x, w, out);

  core::ThreadPool pool(8);
  HConvProtocol pooled(ctx, bfv::PolyMulBackend::kFft, std::nullopt, kSeed, &pool);
  const auto rp = pooled.run_matvec(x, w, out);

  EXPECT_EQ(rs.client_share, rp.client_share);
  EXPECT_EQ(rs.server_share, rp.server_share);
  std::vector<i64> expect(out, 0);
  for (std::size_t j = 0; j < out; ++j) {
    for (std::size_t i = 0; i < in; ++i) expect[j] += w[j * in + i] * x[i];
  }
  EXPECT_EQ(rp.reconstruct(ctx.params().t), expect);
}

}  // namespace
}  // namespace flash::protocol
