// Round-trip and rejection tests for the BFV wire format: every serializable
// object must survive serialize -> deserialize bit-for-bit, and every loader
// must throw (not decode garbage) on truncated, corrupted, or mismatched
// buffers.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bfv/context.hpp"
#include "bfv/encrypt.hpp"
#include "bfv/keyswitch.hpp"
#include "bfv/serialization.hpp"
#include "hemath/sampler.hpp"
#include "testing/generators.hpp"

namespace flash {
namespace {

using bfv::Bytes;
using hemath::derive_stream_seed;

constexpr std::uint64_t kBaseSeed = 0x5e71a112a71015ULL;

struct Fixture {
  bfv::BfvParams params;
  bfv::BfvContext ctx;
  hemath::Sampler sampler;
  bfv::SecretKey sk;
  bfv::PublicKey pk;

  explicit Fixture(std::uint64_t seed, std::size_t n = 256, int log_t = 14, int log_q = 42)
      : params(bfv::BfvParams::create(n, log_t, log_q)),
        ctx(params),
        sampler(derive_stream_seed(kBaseSeed, seed)),
        sk(bfv::KeyGenerator(ctx, sampler).secret_key()),
        pk(bfv::KeyGenerator(ctx, sampler).public_key(sk)) {}
};

TEST(Serialization, ParamsRoundTrip) {
  Fixture f(1);
  const Bytes bytes = bfv::serialize(f.params);
  bfv::ByteReader reader(bytes);
  const bfv::BfvParams back = bfv::deserialize_params(reader);
  EXPECT_EQ(back.n, f.params.n);
  EXPECT_EQ(back.q, f.params.q);
  EXPECT_EQ(back.t, f.params.t);
}

TEST(Serialization, PlaintextRoundTrip) {
  Fixture f(2);
  std::vector<hemath::i64> values(f.params.n);
  std::mt19937_64 rng(derive_stream_seed(kBaseSeed, 0x10));
  std::uniform_int_distribution<hemath::i64> dist(-100, 100);
  for (auto& v : values) v = dist(rng);
  const bfv::Plaintext pt = f.ctx.encode_signed(values);

  const Bytes bytes = bfv::serialize(f.params, pt);
  const bfv::Plaintext back = bfv::deserialize_plaintext(f.ctx, bytes);
  EXPECT_EQ(back.poly.coeffs(), pt.poly.coeffs());
  EXPECT_EQ(f.ctx.decode_signed(back), values);
}

TEST(Serialization, CiphertextRoundTripAndDecrypts) {
  Fixture f(3);
  const bfv::Plaintext pt = f.ctx.encode_signed({1, -2, 3, -4, 5});
  bfv::Encryptor enc(f.ctx, f.sampler);
  const bfv::Ciphertext ct = enc.encrypt(pt, f.pk);

  const Bytes bytes = bfv::serialize(f.params, ct);
  const bfv::Ciphertext back = bfv::deserialize_ciphertext(f.ctx, bytes);
  EXPECT_EQ(back.c0.coeffs(), ct.c0.coeffs());
  EXPECT_EQ(back.c1.coeffs(), ct.c1.coeffs());

  bfv::Decryptor dec(f.ctx, f.sk);
  EXPECT_EQ(dec.decrypt(back).poly.coeffs(), dec.decrypt(ct).poly.coeffs());
}

TEST(Serialization, SecretKeyRoundTrip) {
  Fixture f(4);
  const Bytes bytes = bfv::serialize(f.params, f.sk);
  const bfv::SecretKey back = bfv::deserialize_secret_key(f.ctx, bytes);
  EXPECT_EQ(back.s.coeffs(), f.sk.s.coeffs());
}

TEST(Serialization, PublicKeyRoundTrip) {
  Fixture f(5);
  const Bytes bytes = bfv::serialize(f.params, f.pk);
  const bfv::PublicKey back = bfv::deserialize_public_key(f.ctx, bytes);
  EXPECT_EQ(back.p0.coeffs(), f.pk.p0.coeffs());
  EXPECT_EQ(back.p1.coeffs(), f.pk.p1.coeffs());
}

TEST(Serialization, KeySwitchKeyRoundTrip) {
  Fixture f(6);
  bfv::KeySwitcher switcher(f.ctx, f.sampler, /*digit_bits=*/16);
  const bfv::KeySwitchKey key = switcher.make_key(f.sk.s, f.sk);

  const Bytes bytes = bfv::serialize(f.params, key);
  const bfv::KeySwitchKey back = bfv::deserialize_key_switch_key(f.ctx, bytes);
  ASSERT_EQ(back.digits(), key.digits());
  EXPECT_EQ(back.digit_bits, key.digit_bits);
  for (std::size_t i = 0; i < key.digits(); ++i) {
    EXPECT_EQ(back.k0[i].coeffs(), key.k0[i].coeffs());
    EXPECT_EQ(back.k1[i].coeffs(), key.k1[i].coeffs());
  }
}

// --- Rejection: truncation at every prefix length must throw, never decode.

TEST(Serialization, TruncatedCiphertextRejectedAtEveryLength) {
  Fixture f(7, /*n=*/64);
  bfv::Encryptor enc(f.ctx, f.sampler);
  const bfv::Ciphertext ct = enc.encrypt(f.ctx.encode_signed({9, 8, 7}), f.pk);
  const Bytes bytes = bfv::serialize(f.params, ct);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const Bytes truncated(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(bfv::deserialize_ciphertext(f.ctx, truncated), std::runtime_error)
        << "prefix of length " << len << " decoded without error";
  }
}

TEST(Serialization, TruncatedKeySwitchKeyRejected) {
  Fixture f(8, /*n=*/64);
  bfv::KeySwitcher switcher(f.ctx, f.sampler, /*digit_bits=*/16);
  const Bytes bytes = bfv::serialize(f.params, switcher.make_key(f.sk.s, f.sk));

  // Cut at a few strategic points: inside the magic, inside the header,
  // mid-polynomial, and one byte short.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{4}, std::size_t{12}, bytes.size() / 2, bytes.size() - 1}) {
    const Bytes truncated(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(bfv::deserialize_key_switch_key(f.ctx, truncated), std::runtime_error);
  }
}

// --- Rejection: header corruption (bad magic / wrong tag / foreign params).

TEST(Serialization, CorruptedMagicRejected) {
  Fixture f(9, /*n=*/64);
  Bytes bytes = bfv::serialize(f.params, f.ctx.encode_signed({1, 2, 3}));
  bytes[0] ^= 0xff;
  EXPECT_THROW(bfv::deserialize_plaintext(f.ctx, bytes), std::runtime_error);
}

TEST(Serialization, WrongTypeTagRejected) {
  Fixture f(10, /*n=*/64);
  const Bytes pt_bytes = bfv::serialize(f.params, f.ctx.encode_signed({1, 2, 3}));
  // A plaintext buffer handed to the ciphertext loader must be refused by
  // the type tag, not mis-decoded.
  EXPECT_THROW(bfv::deserialize_ciphertext(f.ctx, pt_bytes), std::runtime_error);
}

TEST(Serialization, ForeignParamsRejected) {
  Fixture f(11, /*n=*/64);
  Fixture other(12, /*n=*/128);
  bfv::Encryptor enc(f.ctx, f.sampler);
  const Bytes bytes = bfv::serialize(f.params, enc.encrypt(f.ctx.encode_signed({5}), f.pk));
  EXPECT_THROW(bfv::deserialize_ciphertext(other.ctx, bytes), std::runtime_error);
}

TEST(Serialization, TrailingGarbageRejected) {
  Fixture f(13, /*n=*/64);
  Bytes bytes = bfv::serialize(f.params, f.ctx.encode_signed({1}));
  bytes.push_back(0xab);
  EXPECT_THROW(bfv::deserialize_plaintext(f.ctx, bytes), std::runtime_error);
}

// Fuzz-adjacent: random single-byte corruption must either throw or decode
// to a DIFFERENT object (silent identical decode would mean the byte is
// dead weight — acceptable — but a crash/UB would be caught by sanitizers).
TEST(Serialization, RandomByteCorruptionNeverCrashes) {
  Fixture f(14, /*n=*/64);
  bfv::Encryptor enc(f.ctx, f.sampler);
  const bfv::Ciphertext ct = enc.encrypt(f.ctx.encode_signed({3, 1, 4, 1, 5}), f.pk);
  const Bytes bytes = bfv::serialize(f.params, ct);

  std::mt19937_64 rng(derive_stream_seed(kBaseSeed, 0x20));
  std::uniform_int_distribution<std::size_t> pos_dist(0, bytes.size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupted = bytes;
    corrupted[pos_dist(rng)] ^= static_cast<std::uint8_t>(1u << bit_dist(rng));
    try {
      const bfv::Ciphertext back = bfv::deserialize_ciphertext(f.ctx, corrupted);
      // Decoded: fine, as long as the coefficients stay in range.
      for (const auto c : back.c0.coeffs()) EXPECT_LT(c, f.params.q);
      for (const auto c : back.c1.coeffs()) EXPECT_LT(c, f.params.q);
    } catch (const std::runtime_error&) {
      // Rejected: the expected outcome for header/size corruption.
    }
  }
}

// --- Typed errors: every rejection is a SerializationError -----------------
//
// The wire layer (src/wire) routes loader failures by type; a loader that
// throws a bare std::runtime_error (or worse, std::bad_alloc from an
// attacker-sized allocation) would be misclassified as an internal error
// instead of a rejected frame.

TEST(Serialization, RejectionsThrowTypedSerializationError) {
  Fixture f(15, /*n=*/64);
  bfv::Encryptor enc(f.ctx, f.sampler);
  const Bytes good = bfv::serialize(f.params, enc.encrypt(f.ctx.encode_signed({7}), f.pk));

  // Truncation.
  const Bytes truncated(good.begin(), good.begin() + good.size() / 2);
  EXPECT_THROW(bfv::deserialize_ciphertext(f.ctx, truncated), bfv::SerializationError);
  // Bad magic.
  Bytes bad_magic = good;
  bad_magic[3] ^= 0x40;
  EXPECT_THROW(bfv::deserialize_ciphertext(f.ctx, bad_magic), bfv::SerializationError);
  // Trailing garbage.
  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(bfv::deserialize_ciphertext(f.ctx, trailing), bfv::SerializationError);
  // Compatibility: the typed error still lands in pre-existing
  // std::runtime_error catch sites.
  try {
    bfv::deserialize_ciphertext(f.ctx, truncated);
    FAIL() << "truncated buffer decoded";
  } catch (const std::runtime_error& e) {
    EXPECT_FALSE(std::string(e.what()).empty());
  }
}

TEST(Serialization, ForgedDegreeRejectedBeforeAllocation) {
  Fixture f(16, /*n=*/64);
  bfv::Encryptor enc(f.ctx, f.sampler);
  Bytes bytes = bfv::serialize(f.params, enc.encrypt(f.ctx.encode_signed({1, 2}), f.pk));

  // Layout: header (magic 8 + tag 1 + n/t/q 24 = 33 bytes), then c0 as
  // modulus u64 at 33 and degree u64 at 41. Forge degree = 2^60: the loader
  // must reject on degree-vs-remaining (a typed error) without first
  // allocating the 2^63-byte coefficient vector the header promises.
  const std::size_t degree_off = 33 + 8;
  for (std::size_t i = 0; i < 8; ++i) bytes[degree_off + i] = 0;
  bytes[degree_off + 7] = 0x10;  // 2^60, little-endian
  EXPECT_THROW(bfv::deserialize_ciphertext(f.ctx, bytes), bfv::SerializationError);

  // Just past the hard cap but "covered" by the (short) buffer: also typed.
  for (std::size_t i = 0; i < 8; ++i) bytes[degree_off + i] = 0;
  bytes[degree_off + 2] = 0x20;  // 2^21 > kMaxPolyDegree
  EXPECT_THROW(bfv::deserialize_ciphertext(f.ctx, bytes), bfv::SerializationError);
}

// Adversarial header fuzz: splat hostile u64 patterns over every 8-byte
// window of a genuine buffer and replay through every loader. The contract
// is crash-freedom and bounded allocation, not rejection — some mutations
// leave the object valid.
TEST(Serialization, AdversarialHeaderFuzzNeverCrashesAnyLoader) {
  Fixture f(17, /*n=*/64);
  bfv::Encryptor enc(f.ctx, f.sampler);
  const Bytes base = bfv::serialize(f.params, enc.encrypt(f.ctx.encode_signed({6, 6, 6}), f.pk));

  constexpr std::uint64_t kHostile[] = {
      0,
      1,
      0xffffffffffffffffULL,
      std::uint64_t{1} << 60,            // allocation bomb if honored
      std::uint64_t{1} << 63,            // sign-flip if narrowed to i64
      (std::uint64_t{1} << 20) + 1,      // just past kMaxPolyDegree
      0x464C415348424656ULL,             // the magic itself, misplaced
  };
  std::size_t rejected = 0, decoded = 0;
  for (std::size_t off = 0; off + 8 <= base.size(); ++off) {
    for (const std::uint64_t v : kHostile) {
      Bytes mutated = base;
      for (std::size_t i = 0; i < 8; ++i) {
        mutated[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
      }
      try {
        const bfv::Ciphertext back = bfv::deserialize_ciphertext(f.ctx, mutated);
        for (const auto c : back.c0.coeffs()) ASSERT_LT(c, f.params.q);
        for (const auto c : back.c1.coeffs()) ASSERT_LT(c, f.params.q);
        ++decoded;
      } catch (const bfv::SerializationError&) {
        ++rejected;
      }
      // The same bytes through the param-less reader entry point.
      try {
        bfv::ByteReader r(mutated);
        (void)bfv::deserialize_params(r);
      } catch (const bfv::SerializationError&) {
      }
    }
  }
  // Sanity: the loop exercised real rejections (a no-op fuzzer proves
  // nothing). Decodes may be zero — every window of a ciphertext buffer is
  // load-bearing for this parameter set.
  EXPECT_GT(rejected, decoded);
  EXPECT_GT(rejected, 0u);
}

// --- Committed corpus replay ------------------------------------------------

Bytes parse_hex(const std::string& hex) {
  Bytes out;
  if (hex == ".") return out;  // explicit empty-buffer marker
  EXPECT_EQ(hex.size() % 2, 0u) << "odd-length hex in corpus: " << hex;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// Every committed adversarial buffer, through every loader: throws the typed
// error or decodes cleanly — crashes and allocation bombs caught here (and
// by the sanitizer jobs, which run this same test under ASan/TSan).
TEST(Serialization, CorpusReplayAllLoadersSurvive) {
  const std::string path = std::string(FLASH_TESTS_DIR) + "/corpus/serialization_adversarial.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "missing corpus file: " << path;

  Fixture f(18, /*n=*/64);
  std::size_t entries = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string name, hex;
    fields >> name >> hex;
    if (name.empty()) continue;
    const Bytes bytes = parse_hex(hex);
    ++entries;

    const auto survive = [&](auto&& loader) {
      try {
        loader();
      } catch (const bfv::SerializationError&) {
        // The expected outcome for adversarial input.
      }
      // Anything else (bad_alloc, logic_error, a crash) fails the test.
    };
    survive([&] { (void)bfv::deserialize_plaintext(f.ctx, bytes); });
    survive([&] { (void)bfv::deserialize_ciphertext(f.ctx, bytes); });
    survive([&] { (void)bfv::deserialize_secret_key(f.ctx, bytes); });
    survive([&] { (void)bfv::deserialize_public_key(f.ctx, bytes); });
    survive([&] { (void)bfv::deserialize_key_switch_key(f.ctx, bytes); });
    survive([&] {
      bfv::ByteReader r(bytes);
      (void)bfv::deserialize_params(r);
    });
  }
  EXPECT_GE(entries, 10u) << "corpus unexpectedly small — parsing bug?";
}

}  // namespace
}  // namespace flash
