// Sparse butterfly dataflow: pattern classification, plan cost accounting,
// exactness of sparse execution vs. dense FFT, and the paper's headline
// multiplication-reduction examples (4.1 and 4.2).
#include <gtest/gtest.h>

#include <random>

#include "fft/complex_fft.hpp"
#include "sparsefft/executor.hpp"
#include "sparsefft/pattern.hpp"
#include "sparsefft/planner.hpp"

namespace flash::sparsefft {
namespace {

using fft::cplx;

std::vector<cplx> sparse_signal(const SparsityPattern& pattern, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  std::vector<cplx> a(pattern.size(), cplx{0, 0});
  for (std::size_t p : pattern.nonzeros()) a[p] = {dist(rng), dist(rng)};
  return a;
}

void expect_matches_dense(const SparsityPattern& pattern, std::uint64_t seed) {
  const std::size_t m = pattern.size();
  SparseFftPlan plan(m, pattern);
  std::mt19937_64 rng(seed);
  const auto input = sparse_signal(pattern, rng);
  const auto sparse_out = execute(plan, input);
  auto dense = input;
  fft::FftPlan(m, +1).forward(dense);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(sparse_out[i].real(), dense[i].real(), 1e-9) << i;
    EXPECT_NEAR(sparse_out[i].imag(), dense[i].imag(), 1e-9) << i;
  }
}

TEST(Pattern, Classification) {
  EXPECT_EQ(SparsityPattern(16, {}).classify(), PatternShape::kEmpty);
  EXPECT_EQ(SparsityPattern(16, {0, 1, 2, 3}).classify(), PatternShape::kContiguous);
  EXPECT_EQ(SparsityPattern(16, {6}).classify(), PatternShape::kScattered);
  EXPECT_EQ(SparsityPattern(16, {0, 4, 8, 12}).classify(), PatternShape::kScattered);
  EXPECT_EQ(SparsityPattern(16, {0, 1, 7}).classify(), PatternShape::kMixed);
}

TEST(Pattern, BitReversalMapsStridesToPrefixes) {
  // Valid data at multiples of 4 in a 16-point network becomes the prefix
  // after bit-reversal (the paper's "skipping" precondition).
  const SparsityPattern p(16, {0, 4, 8, 12});
  const SparsityPattern br = p.bit_reversed();
  EXPECT_EQ(br.nonzeros(), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(br.classify(), PatternShape::kContiguous);
}

TEST(Pattern, SparsityAndDedup) {
  const SparsityPattern p(8, {1, 1, 3});
  EXPECT_EQ(p.weight(), 2u);
  EXPECT_DOUBLE_EQ(p.sparsity(), 0.75);
  EXPECT_THROW(SparsityPattern(8, {8}), std::out_of_range);
}

TEST(Planner, DenseCostFormula) {
  const PlanCost dense = SparseFftPlan::dense_cost(16);
  // (M/2) log2 M = 32 butterflies; twiddle indices 0 and 4 are trivial.
  EXPECT_EQ(dense.complex_mults + dense.trivial_mults, 32u);
  EXPECT_EQ(dense.complex_adds, 64u);
  // Stage s has M/2 butterflies; trivial ones: j=0 blocks every stage
  // (8+4+2+1 = 15) plus j*stride = M/4 at stages >= 2 (4+2+1 = 7).
  EXPECT_EQ(dense.trivial_mults, 22u);
  EXPECT_EQ(dense.complex_mults, 10u);
}

TEST(Planner, FullyDensePatternCostsDense) {
  std::vector<std::size_t> all(64);
  for (std::size_t i = 0; i < 64; ++i) all[i] = i;
  SparseFftPlan plan(64, SparsityPattern(64, all));
  const PlanCost dense = SparseFftPlan::dense_cost(64);
  EXPECT_EQ(plan.cost().complex_mults, dense.complex_mults);
  EXPECT_EQ(plan.cost().complex_adds, dense.complex_adds);
  EXPECT_EQ(plan.cost().copies, 0u);
}

TEST(Planner, Example41SkippingReduction) {
  // Paper Example 4.1: N=16, valid data contiguous at m_br[0..3] — i.e. the
  // *standard-order* nonzeros are multiples of 4. Classical dataflow uses 32
  // butterfly multiplications; skipping reduces operations by 87.5%.
  const SparsityPattern p(16, {0, 4, 8, 12});
  SparseFftPlan plan(16, p);
  const PlanCost c = plan.cost();
  // Only the 4-point sub-network executes (2 + 2 butterflies); everything
  // after is pure duplication (4 copies at stage 3, 8 at stage 4).
  EXPECT_EQ(c.complex_mults + c.trivial_mults, 4u);
  EXPECT_EQ(c.copies, 12u);
  const PlanCost dense = SparseFftPlan::dense_cost(16);
  const double reduction =
      1.0 - static_cast<double>(c.complex_mults + c.trivial_mults) /
                static_cast<double>(dense.complex_mults + dense.trivial_mults);
  EXPECT_DOUBLE_EQ(reduction, 0.875);  // the paper's 87.5% for Example 4.1
  expect_matches_dense(p, 1001);
}

TEST(Planner, Example42MergingSingleElement) {
  // Paper Example 4.2: a single valid element. (M/2)log2 M butterfly mults
  // collapse to ~M scalar multiplications (mult-only chains + duplication).
  const std::size_t m = 16;
  // One nonzero whose bit-reversed position is 6 (= m_br[6] in the paper):
  // bit_reverse(6) = 6 for 4 bits? 6 = 0110 -> 0110 = 6. Use position 6.
  const SparsityPattern p(m, {6});
  SparseFftPlan plan(m, p);
  const PlanCost c = plan.cost();
  // Executed multiplications (incl. trivial) must be <= M - 1 = 15.
  EXPECT_LE(c.complex_mults + c.trivial_mults, m - 1);
  EXPECT_GT(c.copies, 0u);
  expect_matches_dense(p, 1002);
}

TEST(Planner, MergingChainsAreMulOnly) {
  const std::size_t m = 32;
  const SparsityPattern p(m, {7});
  SparseFftPlan plan(m, p);
  // Stage 1..log2(m): the single active element alone in its butterfly pair
  // produces kMulOnly (if it is the bottom input) or kCopy (top input) ops.
  for (int s = 0; s < plan.stages(); ++s) {
    for (const auto& op : plan.stage(s)) {
      EXPECT_TRUE(op.kind != OpKind::kFull) << "stage " << s;
    }
  }
  expect_matches_dense(p, 1003);
}

class SparseRandomPattern : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SparseRandomPattern, ExecutionMatchesDense) {
  const auto [m, nnz] = GetParam();
  std::mt19937_64 rng(m * 31 + nnz);
  std::vector<std::size_t> pos;
  for (std::size_t i = 0; i < nnz; ++i) pos.push_back(rng() % m);
  const SparsityPattern p(m, std::move(pos));
  expect_matches_dense(p, m + nnz);
}

TEST_P(SparseRandomPattern, CostNeverExceedsDense) {
  const auto [m, nnz] = GetParam();
  std::mt19937_64 rng(m * 37 + nnz);
  std::vector<std::size_t> pos;
  for (std::size_t i = 0; i < nnz; ++i) pos.push_back(rng() % m);
  SparseFftPlan plan(m, SparsityPattern(m, std::move(pos)));
  const PlanCost dense = SparseFftPlan::dense_cost(m);
  EXPECT_LE(plan.cost().complex_mults, dense.complex_mults);
  EXPECT_LE(plan.cost().complex_adds, dense.complex_adds);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SparseRandomPattern,
    ::testing::Combine(::testing::Values(std::size_t{16}, std::size_t{64}, std::size_t{512}),
                       ::testing::Values(std::size_t{1}, std::size_t{5}, std::size_t{40})));

TEST(Planner, CheetahLikePattern3x3Reduction) {
  // ResNet-like encoded 3x3 weights: 9 taps per H*W=256 stripe (power-of-two
  // padded patch) in a 2048-point transform, 8 channels -> 72 nonzeros.
  const std::size_t m = 2048;
  std::vector<std::size_t> pos;
  for (std::size_t ch = 0; ch < 8; ++ch) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) pos.push_back(ch * 256 + i * 16 + j);
    }
  }
  const SparsityPattern p(m, std::move(pos));
  SparseFftPlan plan(m, p);
  const PlanCost dense = SparseFftPlan::dense_cost(m);
  const double frac = static_cast<double>(plan.cost().merged_mults) /
                      static_cast<double>(dense.merged_mults);
  // Power-of-two strides make skipping effective: >75% reduction here.
  EXPECT_LT(frac, 0.25);
  expect_matches_dense(p, 2025);
}

TEST(Planner, CheetahLikePattern1x1Reduction) {
  // 1x1 convolution weights (the majority of ResNet-50 layers): one tap per
  // channel stripe at multiples of the power-of-two patch area. These become
  // a contiguous prefix after bit-reversal — pure "skipping" — and drive the
  // paper's >86% network-average multiplication reduction.
  const std::size_t m = 2048;
  std::vector<std::size_t> pos;
  for (std::size_t ch = 0; ch < 16; ++ch) pos.push_back(ch * 64);
  const SparsityPattern p(m, std::move(pos));
  SparseFftPlan plan(m, p);
  const PlanCost dense = SparseFftPlan::dense_cost(m);
  const double frac = static_cast<double>(plan.cost().merged_mults) /
                      static_cast<double>(dense.merged_mults);
  EXPECT_LT(frac, 0.02);
  expect_matches_dense(p, 2026);
}

TEST(Planner, MergedNeverExceedsPerStage) {
  std::mt19937_64 rng(515);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 256;
    std::vector<std::size_t> pos;
    const std::size_t nnz = 1 + rng() % 64;
    for (std::size_t i = 0; i < nnz; ++i) pos.push_back(rng() % m);
    SparseFftPlan plan(m, SparsityPattern(m, std::move(pos)));
    // Merged accounting folds chains; it can pay at most one extra
    // materialization per output beyond the per-stage count.
    EXPECT_LE(plan.cost().merged_mults, plan.cost().complex_mults + m);
  }
}

TEST(Planner, MergedSingleElementCostsAboutM) {
  // Example 4.2 generalized: one valid element -> ~M multiplications total
  // (one per output position, minus trivial/identity chains).
  const std::size_t m = 2048;
  SparseFftPlan plan(m, SparsityPattern(m, {7}));
  EXPECT_LE(plan.cost().merged_mults, m);
  EXPECT_GT(plan.cost().merged_mults, 0u);
  const PlanCost dense = SparseFftPlan::dense_cost(m);
  // (1/2) M log2 M butterflies -> ~M mults: ~4x fewer at M = 2048.
  EXPECT_LT(static_cast<double>(plan.cost().merged_mults) /
                static_cast<double>(dense.merged_mults),
            0.26);
}

TEST(Executor, QuantizedExecutionTracksExact) {
  const std::size_t m = 256;
  std::mt19937_64 rng(51);
  std::vector<std::size_t> pos;
  for (int i = 0; i < 20; ++i) pos.push_back(rng() % m);
  const SparsityPattern p(m, std::move(pos));
  SparseFftPlan plan(m, p);
  const auto input = sparse_signal(p, rng);

  QuantizedExecution quant;
  quant.twiddle_k = 12;
  quant.twiddle_min_exp = -24;
  quant.stage_frac_bits.assign(static_cast<std::size_t>(plan.stages()), 20);
  const auto approx = execute_quantized(plan, input, quant);
  const auto exact = execute(plan, input);
  double err = 0, mag = 0;
  for (std::size_t i = 0; i < m; ++i) {
    err += std::norm(approx[i] - exact[i]);
    mag += std::norm(exact[i]);
  }
  EXPECT_LT(std::sqrt(err / mag), 1e-3);
}

TEST(Executor, InputSizeMismatchThrows) {
  SparseFftPlan plan(16, SparsityPattern(16, {0}));
  std::vector<cplx> wrong(8);
  EXPECT_THROW(execute(plan, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace flash::sparsefft
