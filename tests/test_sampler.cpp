// Distribution sanity checks for the HE samplers (deterministic seeds).
#include <gtest/gtest.h>

#include <cmath>

#include "hemath/sampler.hpp"

namespace flash::hemath {
namespace {

TEST(Sampler, TernaryValuesOnly) {
  Sampler s(101);
  const u64 q = 1000003;
  const Poly p = s.ternary_poly(q, 4096);
  std::size_t counts[3] = {0, 0, 0};
  for (std::size_t i = 0; i < p.degree(); ++i) {
    const i64 v = to_signed(p[i], q);
    ASSERT_GE(v, -1);
    ASSERT_LE(v, 1);
    ++counts[v + 1];
  }
  // Roughly uniform over {-1, 0, 1}.
  for (auto c : counts) {
    EXPECT_GT(c, 4096u / 5);
    EXPECT_LT(c, 4096u / 2);
  }
}

TEST(Sampler, CbdMeanAndVariance) {
  Sampler s(102);
  const u64 q = 1000003;
  const int eta = 8;
  const Poly p = s.cbd_poly(q, 1 << 14, eta);
  double mean = 0, var = 0;
  for (std::size_t i = 0; i < p.degree(); ++i) mean += static_cast<double>(to_signed(p[i], q));
  mean /= static_cast<double>(p.degree());
  for (std::size_t i = 0; i < p.degree(); ++i) {
    const double d = static_cast<double>(to_signed(p[i], q)) - mean;
    var += d * d;
  }
  var /= static_cast<double>(p.degree());
  EXPECT_NEAR(mean, 0.0, 0.15);
  EXPECT_NEAR(var, eta / 2.0, 0.4);  // CBD(eta) variance = eta/2
}

TEST(Sampler, GaussianSigma) {
  Sampler s(103);
  const u64 q = u64{1} << 40;
  const double sigma = 3.2;
  const Poly p = s.gaussian_poly(q, 1 << 14, sigma);
  double var = 0;
  i64 max_mag = 0;
  for (std::size_t i = 0; i < p.degree(); ++i) {
    const i64 v = to_signed(p[i], q);
    var += static_cast<double>(v) * static_cast<double>(v);
    max_mag = std::max(max_mag, v < 0 ? -v : v);
  }
  var /= static_cast<double>(p.degree());
  EXPECT_NEAR(std::sqrt(var), sigma, 0.3);
  EXPECT_LT(max_mag, static_cast<i64>(8 * sigma));  // tail bound
}

TEST(Sampler, UniformCoversRange) {
  Sampler s(104);
  const u64 q = 17;
  std::vector<int> seen(q, 0);
  for (int i = 0; i < 2000; ++i) ++seen[s.uniform_mod(q)];
  for (u64 v = 0; v < q; ++v) EXPECT_GT(seen[v], 0) << v;
}

TEST(Sampler, DeterministicWithSeed) {
  Sampler a(7), b(7);
  EXPECT_EQ(a.uniform_poly(97, 64), b.uniform_poly(97, 64));
  Sampler c(8);
  EXPECT_NE(a.uniform_poly(97, 64), c.uniform_poly(97, 64));
}


TEST(CdtSampler, MeanVarianceAndTail) {
  const double sigma = 3.2;
  CdtGaussianSampler cdt(sigma);
  std::mt19937_64 rng(7);
  const int samples = 1 << 16;
  double mean = 0, var = 0;
  i64 max_mag = 0;
  std::vector<int> hist(2 * cdt.max_magnitude() + 1, 0);
  for (int i = 0; i < samples; ++i) {
    const i64 v = cdt.sample(rng);
    mean += static_cast<double>(v);
    var += static_cast<double>(v) * static_cast<double>(v);
    max_mag = std::max(max_mag, v < 0 ? -v : v);
    ++hist[static_cast<std::size_t>(v + cdt.max_magnitude())];
  }
  mean /= samples;
  var = var / samples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), sigma, 0.15);
  EXPECT_LE(max_mag, cdt.max_magnitude());
  // P(X = 0) matches the closed form within sampling noise.
  double z = 0;
  for (i64 k = -cdt.max_magnitude(); k <= cdt.max_magnitude(); ++k) {
    z += std::exp(-double(k) * double(k) / (2 * sigma * sigma));
  }
  const double p0 = 1.0 / z;
  EXPECT_NEAR(hist[static_cast<std::size_t>(cdt.max_magnitude())] / double(samples), p0, 0.01);
}

TEST(CdtSampler, SymmetricDistribution) {
  CdtGaussianSampler cdt(2.0);
  std::mt19937_64 rng(8);
  long long pos = 0, neg = 0;
  for (int i = 0; i < 40000; ++i) {
    const i64 v = cdt.sample(rng);
    pos += v > 0;
    neg += v < 0;
  }
  EXPECT_NEAR(static_cast<double>(pos) / neg, 1.0, 0.06);
}

TEST(CdtSampler, PolySamplesWithinTail) {
  CdtGaussianSampler cdt(3.2, 6.0);
  std::mt19937_64 rng(9);
  const u64 q = u64{1} << 40;
  const Poly p = cdt.sample_poly(q, 2048, rng);
  for (std::size_t i = 0; i < p.degree(); ++i) {
    const i64 v = to_signed(p[i], q);
    EXPECT_LE(std::abs(v), cdt.max_magnitude());
  }
}

TEST(CdtSampler, RejectsBadParams) {
  EXPECT_THROW(CdtGaussianSampler(0.0), std::invalid_argument);
  EXPECT_THROW(CdtGaussianSampler(1.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace flash::hemath
