// Deterministic-scheduler tier for the network session layer
// (ARCHITECTURE.md §10): whole-network sessions over ConvServer, with
// manual dispatch so every interleaving is chosen by the test. The
// multi-threaded companion is the network phase of test_serve_stress.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "bfv/context.hpp"
#include "serve/network_session.hpp"
#include "testing/generators.hpp"
#include "testing/oracle.hpp"

namespace flash::serve {
namespace {

using namespace std::chrono_literals;

/// A small residual network (stem + 2 blocks + FC) lifted from SmallQuantNet
/// plus the context its convs serve under.
class NetworkServeTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kSeed = 0x5e55;
  static constexpr std::size_t kInC = 2, kWidth = 2, kSpatial = 5, kClasses = 3;

  NetworkServeTest() : params_(bfv::BfvParams::create(1024, 17, 44)), ctx_(params_) {
    std::mt19937_64 rng(kSeed);
    net_ = tensor::SmallQuantNet::random(kInC, kWidth, /*depth=*/2, kClasses, kSpatial,
                                         /*w_bits=*/4, /*a_bits=*/4, rng);
    stack_ = tensor::LayerStack::from_quant_net(net_);
    input_ = tensor::random_activations(kInC, kSpatial, kSpatial, 4, rng);
  }

  std::shared_ptr<const NetworkProgram> build_program(ConvServer& server) const {
    return std::make_shared<const NetworkProgram>(
        NetworkProgram::build(server, stack_, ctx_, bfv::PolyMulBackend::kNtt, std::nullopt,
                              kSeed, {kInC, kSpatial, kSpatial}));
  }

  bfv::BfvParams params_;
  bfv::BfvContext ctx_;
  tensor::SmallQuantNet net_;
  tensor::LayerStack stack_;
  tensor::Tensor3 input_;
};

TEST_F(NetworkServeTest, SingleSessionManualDispatchCompletes) {
  ConvServer server({.dispatchers = 0});
  NetworkServer net(server);
  const auto program = build_program(server);
  EXPECT_EQ(program->conv_layers, 5u);    // stem + 2 x (c1, c2)
  EXPECT_EQ(program->layers.size(), 8u);  // + 2 joins + FC

  SessionOptions opts;
  opts.stream_base = 0;
  opts.record_layer_outputs = true;
  NetworkSession session = net.start(program, input_, opts);
  EXPECT_EQ(session.state(), SessionState::kRunning);  // nothing dispatched yet
  net.run_to_completion();

  ASSERT_EQ(session.state(), SessionState::kCompleted) << session.error();
  EXPECT_EQ(session.layers_completed(), program->layers.size());
  ASSERT_TRUE(session.has_logits());
  ASSERT_EQ(session.logits().size(), kClasses);

  // Bit-identical to the serial bare-runner run with the same stream base...
  std::vector<tensor::Tensor3> serial_outputs;
  const tensor::NetworkResult serial =
      run_network_serial(stack_, ctx_, bfv::PolyMulBackend::kNtt, std::nullopt, kSeed, input_,
                         /*stream_base=*/0, &serial_outputs);
  EXPECT_EQ(session.features(), serial.features);
  EXPECT_EQ(session.logits(), serial.logits);
  const auto served_outputs = session.layer_outputs();
  ASSERT_EQ(served_outputs.size(), serial_outputs.size());
  for (std::size_t l = 0; l < served_outputs.size(); ++l) {
    EXPECT_EQ(served_outputs[l], serial_outputs[l]) << "layer " << l;
  }

  // ...and to the cleartext forward (and to SmallQuantNet itself).
  const tensor::NetworkResult clear =
      stack_.forward(input_, tensor::LayerStack::reference_executor());
  EXPECT_EQ(session.features(), clear.features);
  EXPECT_EQ(session.logits(), clear.logits);
  EXPECT_EQ(clear.features, net_.features(input_, tensor::reference_conv()));
}

TEST_F(NetworkServeTest, CrossSessionLayersBatchTogether) {
  // Two sessions of the same program, submitted before any dispatch: every
  // dispatch must pick up both sessions' same-plan layer in one batch.
  ConvServer server({.max_batch = 4, .dispatchers = 0});
  NetworkServer net(server);
  const auto program = build_program(server);

  std::mt19937_64 rng(kSeed + 1);
  const tensor::Tensor3 input_b = tensor::random_activations(kInC, kSpatial, kSpatial, 4, rng);
  NetworkSession a = net.start(program, input_,
                               {.stream_base = 0 * kSessionStreamStride,
                                .record_layer_outputs = true});
  NetworkSession b = net.start(program, input_b,
                               {.stream_base = 1 * kSessionStreamStride,
                                .record_layer_outputs = true});
  net.run_to_completion();
  ASSERT_EQ(a.state(), SessionState::kCompleted) << a.error();
  ASSERT_EQ(b.state(), SessionState::kCompleted) << b.error();

  // The lockstep advance batches layer k of A with layer k of B: every conv
  // plan saw at least one 2-request batch.
  const auto batches = server.metrics().plan_batches();
  std::size_t plans_with_pairs = 0;
  for (const auto& [plan, stats] : batches) {
    if (stats.max_batch >= 2) ++plans_with_pairs;
  }
  EXPECT_EQ(plans_with_pairs, batches.size());
  EXPECT_GT(plans_with_pairs, 0u);

  // Batching never changes bytes: both sessions equal their serial runs.
  const auto expect_serial = [&](const NetworkSession& session, const tensor::Tensor3& input,
                                 std::uint64_t base) {
    const tensor::NetworkResult serial = run_network_serial(
        stack_, ctx_, bfv::PolyMulBackend::kNtt, std::nullopt, kSeed, input, base);
    EXPECT_EQ(session.features(), serial.features);
    EXPECT_EQ(session.logits(), serial.logits);
  };
  expect_serial(a, input_, 0);
  expect_serial(b, input_b, kSessionStreamStride);
}

TEST_F(NetworkServeTest, SessionBudgetZeroDeadlineExceededDeterministically) {
  ConvServer server({.dispatchers = 0});
  NetworkServer net(server);
  const auto program = build_program(server);

  NetworkSession doomed = net.start(program, input_, {.budget = 0ns});
  // The deadline is checked before the first conv submit OR sheds it at
  // admission inside the server; either way the session is terminal without
  // any compute and the server queue stays empty.
  net.run_to_completion();
  EXPECT_EQ(doomed.state(), SessionState::kDeadlineExceeded);
  EXPECT_TRUE(doomed.done());
  EXPECT_EQ(server.metrics().completed.value(), 0u);
  EXPECT_EQ(server.metrics().queue_depth.value(), 0);

  const SessionMetrics& sm = net.session_metrics();
  EXPECT_EQ(sm.started.value(), 1u);
  EXPECT_EQ(sm.deadline_exceeded.value(), 1u);
  EXPECT_EQ(sm.terminal(), sm.started.value());
  EXPECT_EQ(sm.active.value(), 0);
}

TEST_F(NetworkServeTest, MidSessionBackpressureFailsSessionWithRetryHint) {
  // Queue of 1: session A's first conv occupies it; session B's first conv
  // is shed at submit, so B terminates kRejected before any of its layers
  // ran — and its error carries the backpressure hint.
  ConvServer server({.max_queue = 1, .dispatchers = 0});
  NetworkServer net(server);
  const auto program = build_program(server);

  NetworkSession a = net.start(program, input_, {.stream_base = 0});
  NetworkSession b = net.start(program, input_, {.stream_base = kSessionStreamStride});
  EXPECT_EQ(b.state(), SessionState::kRejected);
  EXPECT_NE(b.error().find("retry_after_s="), std::string::npos);
  EXPECT_EQ(b.layers_completed(), 0u);

  net.run_to_completion();
  ASSERT_EQ(a.state(), SessionState::kCompleted) << a.error();

  const SessionMetrics& sm = net.session_metrics();
  EXPECT_EQ(sm.started.value(), 2u);
  EXPECT_EQ(sm.completed.value(), 1u);
  EXPECT_EQ(sm.rejected.value(), 1u);
  EXPECT_EQ(sm.terminal(), sm.started.value());
  EXPECT_EQ(sm.active.value(), 0);
}

TEST_F(NetworkServeTest, SessionMetricsJsonExportsPerLayerHistograms) {
  ConvServer server({.dispatchers = 0});
  NetworkServer net(server);
  const auto program = build_program(server);
  NetworkSession session = net.start(program, input_, {.stream_base = 0});
  net.run_to_completion();
  ASSERT_EQ(session.state(), SessionState::kCompleted) << session.error();

  const std::string json = net.metrics_json();
  EXPECT_EQ(json_number_at(json, "counters", "started"), 1.0);
  EXPECT_EQ(json_number_at(json, "counters", "completed"), 1.0);
  EXPECT_EQ(json_number_at(json, "counters", "layers_completed"),
            static_cast<double>(program->layers.size()));
  EXPECT_EQ(json_number_at(json, "gauges", "active"), 0.0);
  EXPECT_EQ(json_number_at(json, "\"session_e2e\"", "count"), 1.0);
  EXPECT_GT(json_number_at(json, "\"session_e2e\"", "p50"), 0.0);
  // Every layer index got its own histogram with exactly this session.
  EXPECT_EQ(net.session_metrics().layer_count(), program->layers.size());
  EXPECT_EQ(json_number_at(json, "\"0\"", "count"), 1.0);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST_F(NetworkServeTest, RectAndStridedLayersServeBitIdentical) {
  // Hand-built stack covering the geometry satellites: a strided 3x3, a
  // rectangular 1x3, and the FC head — through the served path.
  std::mt19937_64 rng(0xd1ce);
  tensor::LayerStack stack;
  tensor::NetLayer strided;
  strided.weights = tensor::random_weights(2, kInC, 3, 4, rng);
  strided.stride = 2;
  strided.pad = 1;
  strided.requant_shift = 3;
  strided.clamp_bits = 4;
  strided.relu = true;
  stack.layers.push_back(std::move(strided));
  tensor::NetLayer rect;
  rect.weights = tensor::random_weights(2, 2, 1, 3, 4, rng);
  rect.requant_shift = 3;
  rect.clamp_bits = 4;
  rect.relu = true;
  stack.layers.push_back(std::move(rect));
  const tensor::Shape3 out_shape = tensor::LayerStack::layer_output_shape(
      tensor::LayerStack::layer_output_shape({kInC, kSpatial, kSpatial}, stack.layers[0]),
      stack.layers[1]);
  tensor::NetLayer fc;
  fc.kind = tensor::NetLayer::Kind::kFullyConnected;
  fc.fc_out = 2;
  fc.fc_weights = tensor::random_weights(2, out_shape.volume(), 1, 1, 4, rng).data();
  stack.layers.push_back(std::move(fc));

  ConvServer server({.dispatchers = 0});
  NetworkServer net(server);
  const auto program = std::make_shared<const NetworkProgram>(
      NetworkProgram::build(server, stack, ctx_, bfv::PolyMulBackend::kNtt, std::nullopt, 0xd1ce,
                            {kInC, kSpatial, kSpatial}));
  NetworkSession session = net.start(program, input_, {.stream_base = 0});
  net.run_to_completion();
  ASSERT_EQ(session.state(), SessionState::kCompleted) << session.error();

  const tensor::NetworkResult serial = run_network_serial(
      stack, ctx_, bfv::PolyMulBackend::kNtt, std::nullopt, 0xd1ce, input_, /*stream_base=*/0);
  const tensor::NetworkResult clear =
      stack.forward(input_, tensor::LayerStack::reference_executor());
  EXPECT_EQ(session.features(), serial.features);
  EXPECT_EQ(session.logits(), serial.logits);
  EXPECT_EQ(serial.features, clear.features);
  EXPECT_EQ(serial.logits, clear.logits);
}

TEST_F(NetworkServeTest, ProgramBuildValidatesShapes) {
  ConvServer server({.dispatchers = 0});
  // Residual join before anything was saved.
  tensor::LayerStack bad;
  tensor::NetLayer join;
  join.kind = tensor::NetLayer::Kind::kResidualAdd;
  bad.layers.push_back(join);
  EXPECT_THROW(NetworkProgram::build(server, bad, ctx_, bfv::PolyMulBackend::kNtt, std::nullopt,
                                     1, {kInC, kSpatial, kSpatial}),
               std::invalid_argument);
  // FC not last.
  tensor::LayerStack fc_first = stack_;
  tensor::NetLayer fc = fc_first.layers.back();
  fc_first.layers.insert(fc_first.layers.begin(), fc);
  EXPECT_THROW(NetworkProgram::build(server, fc_first, ctx_, bfv::PolyMulBackend::kNtt,
                                     std::nullopt, 1, {kInC, kSpatial, kSpatial}),
               std::invalid_argument);
  // Input shape mismatch at start().
  NetworkServer net(server);
  const auto program = build_program(server);
  EXPECT_THROW(net.start(program, tensor::Tensor3(kInC + 1, kSpatial, kSpatial)),
               std::invalid_argument);
}

// --- Trace-level network equivalence (the oracle extension) ---

TEST(NetworkTraceOracle, BatchedEqualsSerialBitForBit_ManualDispatch) {
  const auto trace = flash::testing::make_network_trace({.seed = 0x4e7});
  const auto report = flash::testing::HConvOracle().run_network_trace(trace, /*dispatchers=*/0);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(NetworkTraceOracle, BatchedEqualsSerialBitForBit_DispatcherThread) {
  const auto trace = flash::testing::make_network_trace({.seed = 0x4e72, .sessions = 3});
  const auto report =
      flash::testing::HConvOracle().run_network_trace(trace, /*dispatchers=*/1, /*max_batch=*/3);
  EXPECT_TRUE(report.ok) << report.summary();
}

}  // namespace
}  // namespace flash::serve
