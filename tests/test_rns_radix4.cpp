// RNS (multi-limb) polynomial arithmetic and the radix-4 FFT dataflow.
#include <gtest/gtest.h>

#include <random>

#include "fft/radix4.hpp"
#include "hemath/primes.hpp"
#include "hemath/rns_poly.hpp"

namespace flash {
namespace {

using hemath::i64;
using hemath::u128;
using hemath::u64;

TEST(RnsPoly, WideModulusRoundTrip) {
  // Two 45-bit NTT primes: a ~90-bit modulus, beyond any single word.
  const auto primes = hemath::find_ntt_primes(45, 64, 2);
  hemath::RnsContext ctx(primes, 64);
  EXPECT_GT(ctx.modulus(), u128{1} << 88);

  std::mt19937_64 rng(1);
  std::vector<i64> coeffs(64);
  for (auto& c : coeffs) c = static_cast<i64>(rng() % 2001) - 1000;
  const hemath::RnsPoly p = hemath::RnsPoly::from_signed(ctx, coeffs);
  for (std::size_t i = 0; i < 64; ++i) {
    const auto [neg, mag] = p.coeff_centered(i);
    const i64 got = neg ? -static_cast<i64>(mag) : static_cast<i64>(mag);
    EXPECT_EQ(got, coeffs[i]) << i;
  }
}

TEST(RnsPoly, AddSubNegate) {
  const auto primes = hemath::find_ntt_primes(40, 32, 2);
  hemath::RnsContext ctx(primes, 32);
  std::mt19937_64 rng(2);
  std::vector<i64> va(32), vb(32);
  for (auto& c : va) c = static_cast<i64>(rng() % 201) - 100;
  for (auto& c : vb) c = static_cast<i64>(rng() % 201) - 100;
  hemath::RnsPoly a = hemath::RnsPoly::from_signed(ctx, va);
  const hemath::RnsPoly b = hemath::RnsPoly::from_signed(ctx, vb);
  a.add_inplace(b);
  a.sub_inplace(b);
  EXPECT_EQ(a, hemath::RnsPoly::from_signed(ctx, va));
  a.negate_inplace();
  a.add_inplace(hemath::RnsPoly::from_signed(ctx, va));
  EXPECT_EQ(a, hemath::RnsPoly(ctx));
}

TEST(RnsPoly, MultiplyMatchesWideSchoolbook) {
  // Products of ~30-bit coefficients overflow 64 bits; the RNS product must
  // still be exact. Oracle: schoolbook negacyclic convolution in 128-bit.
  const auto primes = hemath::find_ntt_primes(45, 16, 2);
  hemath::RnsContext ctx(primes, 16);
  std::mt19937_64 rng(3);
  std::vector<i64> va(16), vb(16);
  for (auto& c : va) c = static_cast<i64>(rng() % (1 << 30)) - (1 << 29);
  for (auto& c : vb) c = static_cast<i64>(rng() % (1 << 30)) - (1 << 29);

  const hemath::RnsPoly prod =
      hemath::multiply(hemath::RnsPoly::from_signed(ctx, va), hemath::RnsPoly::from_signed(ctx, vb));

  for (std::size_t k = 0; k < 16; ++k) {
    __int128 acc = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      for (std::size_t j = 0; j < 16; ++j) {
        const __int128 term = static_cast<__int128>(va[i]) * vb[j];
        if (i + j == k) acc += term;
        if (i + j == k + 16) acc -= term;
      }
    }
    const auto [neg, mag] = prod.coeff_centered(k);
    const __int128 got = neg ? -static_cast<__int128>(mag) : static_cast<__int128>(mag);
    EXPECT_TRUE(got == acc) << "coefficient " << k;
  }
}

TEST(RnsPoly, ContextMismatchThrows) {
  const auto primes = hemath::find_ntt_primes(40, 16, 2);
  hemath::RnsContext ctx1(primes, 16), ctx2(primes, 16);
  hemath::RnsPoly a(ctx1), b(ctx2);
  EXPECT_THROW(a.add_inplace(b), std::invalid_argument);
}

class Radix4 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Radix4, MatchesRadix2Plan) {
  const std::size_t m = GetParam();
  std::mt19937_64 rng(m);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<fft::cplx> a(m);
  for (auto& v : a) v = {dist(rng), dist(rng)};
  auto b = a;
  fft::radix4_forward(a);
  fft::FftPlan(m, +1).forward(b);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), 1e-8 * static_cast<double>(m)) << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-8 * static_cast<double>(m)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Radix4,
                         ::testing::Values(std::size_t{2}, std::size_t{4}, std::size_t{8},
                                           std::size_t{16}, std::size_t{64}, std::size_t{128},
                                           std::size_t{1024}, std::size_t{2048}));

TEST(Radix4Cost, FewerMultsThanRadix2) {
  for (std::size_t m : {std::size_t{64}, std::size_t{256}, std::size_t{2048}}) {
    const auto r4 = fft::radix4_dense_cost(m);
    const auto r2 = fft::radix2_dense_cost(m);
    EXPECT_LT(r4.complex_mults, r2.complex_mults) << m;
    // Classic result: radix-4 saves ~25% of the complex multiplications.
    const double ratio = static_cast<double>(r4.complex_mults) / static_cast<double>(r2.complex_mults);
    EXPECT_GT(ratio, 0.6) << m;
    EXPECT_LT(ratio, 0.95) << m;
  }
}

TEST(Radix4Cost, StatsMatchExecution) {
  const std::size_t m = 256;
  std::vector<fft::cplx> a(m, fft::cplx{1.0, -0.5});
  fft::Radix4Stats stats;
  fft::radix4_forward(a, &stats);
  const auto dense = fft::radix4_dense_cost(m);
  EXPECT_EQ(stats.complex_mults, dense.complex_mults);
  EXPECT_EQ(stats.complex_adds, dense.complex_adds);
}

}  // namespace
}  // namespace flash
