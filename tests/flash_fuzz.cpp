// flash_fuzz — randomized differential cross-checking of the four HConv
// back-ends (exact NTT, Shoup NTT, double FFT, approximate+sparse FFT).
//
//   flash_fuzz --iters 500 --seed 42              # quick deterministic run
//   flash_fuzz --time-budget 600 --iters 100000   # nightly soak
//   flash_fuzz --corpus tests/corpus/diff_seeds.txt
//   flash_fuzz --repro "polymul:seed=0x1234,n=256,nnz=4,densify=0"
//   flash_fuzz --inject twiddle --expect-failure  # self-test: the oracle
//                                                 # must catch a twiddle bug
//                                                 # and print a shrunk
//                                                 # reproducer
//
// Every failure prints a one-line reproducer spec (smallest still-failing
// case after shrinking) accepted by --repro and by the corpus file.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "testing/fuzz.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --iters N          random cases to run (default 100)\n"
      << "  --seed S           base seed; case i uses derive_stream_seed(S, i) (default 1)\n"
      << "  --time-budget SEC  wall-clock cap; 0 = unlimited (default 0)\n"
      << "  --conv-every K     every K-th case is an end-to-end HConv (default 16, 0 = off)\n"
      << "  --max-failures N   stop after N shrunk failures (default 3)\n"
      << "  --corpus FILE      replay reproducer lines / seeds from FILE first\n"
      << "  --repro SPEC       run one reproducer spec (or bare seed) and exit\n"
      << "  --inject FAULT     deliberate-bug self-test; FAULT is one of:\n"
      << "                       twiddle     twiddle-quantization bug, approx path\n"
      << "                       pow2-mask   Z_{2^k} ring one bit narrow (mask-width bug)\n"
      << "                       pow2-carry  Z_{2^k} ct operand truncated to 32 bits\n"
      << "  --expect-failure   exit 0 iff the run DID fail (oracle self-test)\n"
      << "  --verbose          log every case\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using flash::testing::FaultInjection;
  flash::testing::FuzzOptions options;
  std::string repro;
  bool expect_failure = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    try {
      if (arg == "--iters") options.iters = std::stoull(next());
      else if (arg == "--seed") options.seed = std::stoull(next(), nullptr, 0);
      else if (arg == "--time-budget") options.time_budget_s = std::stod(next());
      else if (arg == "--conv-every") options.conv_every = std::stoull(next());
      else if (arg == "--max-failures") options.max_failures = std::stoull(next());
      else if (arg == "--repro") repro = next();
      else if (arg == "--expect-failure") expect_failure = true;
      else if (arg == "--verbose") options.verbose = true;
      else if (arg == "--inject") {
        const std::string what = next();
        if (what == "twiddle") options.oracle.fault = FaultInjection::kTwiddleQuantization;
        else if (what == "pow2-mask") options.oracle.fault = FaultInjection::kPow2MaskWidth;
        else if (what == "pow2-carry") options.oracle.fault = FaultInjection::kPow2CarryTruncation;
        else {
          std::cerr << "unknown fault: " << what << "\n";
          return usage(argv[0]);
        }
      } else if (arg == "--corpus") {
        std::ifstream file(next());
        if (!file) {
          std::cerr << "cannot open corpus file\n";
          return 2;
        }
        const auto entries = flash::testing::load_seed_corpus(file);
        options.corpus.insert(options.corpus.end(), entries.begin(), entries.end());
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "bad value for " << arg << ": " << e.what() << "\n";
      return usage(argv[0]);
    }
  }

  if (!repro.empty()) {
    const auto report = flash::testing::run_repro(repro, options.oracle);
    std::cout << repro << " -> " << report.summary() << "\n";
    return report.ok ? 0 : 1;
  }

  const auto result = flash::testing::run_fuzz(options, std::cout);
  if (expect_failure) {
    if (result.ok()) {
      std::cout << "expected a failure but every case passed\n";
      return 1;
    }
    // Self-test contract: each failure carries a reproducer that still fails.
    for (const auto& f : result.failures) {
      const auto replay = flash::testing::run_repro(f.reproducer, options.oracle);
      if (replay.ok) {
        std::cout << "reproducer does not reproduce: " << f.reproducer << "\n";
        return 1;
      }
    }
    std::cout << "injected fault detected and reproduced; shrunk reproducer: "
              << result.failures.front().reproducer << "\n";
    return 0;
  }
  return result.ok() ? 0 : 1;
}
