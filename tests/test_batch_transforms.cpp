// Cross-level differential tier for the batched SoA transform entry points
// (ARCHITECTURE.md §11): transform_batch_into must be bit-identical to a
// loop of single-polynomial transforms, for every table type, at every
// dispatch level this host supports, across the kPolymul generator corpus.
// On machines without AVX-512 the kAvx512 leg degrades to the best supported
// level (see tests/README.md) — the batch-vs-singles property still holds.
#include <gtest/gtest.h>

#include <random>

#include "core/flash_accelerator.hpp"
#include "fft/fxp_fft.hpp"
#include "hemath/modular.hpp"
#include "hemath/ntt.hpp"
#include "hemath/shoup_ntt.hpp"
#include "hemath/simd.hpp"
#include "protocol/conv_runner.hpp"
#include "tensor/quant.hpp"
#include "testing/generators.hpp"

namespace flash {
namespace {

using fft::cplx;
using hemath::u64;
using hemath::simd::ScopedSimdLevel;
using hemath::simd::SimdLevel;

std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (hemath::simd::cpu_has_avx2()) levels.push_back(SimdLevel::kAvx2);
  if (hemath::simd::cpu_has_avx512()) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

/// Corpus-derived residue lanes: the case's ciphertext, its lifted weights,
/// and affine combinations of the two — enough lanes to cover the whole
/// remainder matrix (full 8-groups, the 4-lane drop and zero-padded tails).
std::vector<std::vector<u64>> corpus_lanes(const testing::PolymulCase& c, std::size_t batch) {
  const u64 q = c.params.q;
  const std::size_t n = c.params.n;
  std::vector<u64> w_lifted(n);
  for (std::size_t i = 0; i < n; ++i) {
    w_lifted[i] = c.w[i] >= 0 ? static_cast<u64>(c.w[i]) : q - static_cast<u64>(-c.w[i]);
  }
  std::vector<std::vector<u64>> lanes(batch, std::vector<u64>(n));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      lanes[b][i] = hemath::add_mod(c.ct[i], hemath::mul_mod(b, w_lifted[i], q), q);
    }
  }
  return lanes;
}

template <typename Tables>
void check_batch_equals_singles(const Tables& tables, const std::vector<std::vector<u64>>& lanes) {
  const std::size_t batch = lanes.size();
  // Reference: a loop of single-polynomial transforms at the scalar level.
  std::vector<std::vector<u64>> fwd_ref = lanes;
  std::vector<std::vector<u64>> inv_ref = lanes;
  {
    ScopedSimdLevel level(SimdLevel::kScalar);
    for (auto& l : fwd_ref) tables.forward(l);
    for (auto& l : inv_ref) tables.inverse(l);
  }
  for (SimdLevel lvl : supported_levels()) {
    ScopedSimdLevel level(lvl);
    std::vector<std::vector<u64>> fwd = lanes;
    std::vector<std::vector<u64>> inv = lanes;
    std::vector<u64*> fwd_ptrs(batch), inv_ptrs(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      fwd_ptrs[b] = fwd[b].data();
      inv_ptrs[b] = inv[b].data();
    }
    tables.forward_batch_into(fwd_ptrs);
    tables.inverse_batch_into(inv_ptrs);
    for (std::size_t b = 0; b < batch; ++b) {
      ASSERT_EQ(fwd[b], fwd_ref[b]) << "fwd batch=" << batch << " lane=" << b << " level="
                                    << hemath::simd::simd_level_name(lvl);
      ASSERT_EQ(inv[b], inv_ref[b]) << "inv batch=" << batch << " lane=" << b << " level="
                                    << hemath::simd::simd_level_name(lvl);
    }
  }
}

TEST(BatchTransforms, NttBatchEqualsSinglesOverPolymulCorpus) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    const testing::PolymulCase c = testing::make_polymul_case({.seed = seed});
    SCOPED_TRACE(c.spec.describe());
    const hemath::NttTables ntt(c.params.q, c.params.n);
    const hemath::ShoupNttTables shoup(c.params.q, c.params.n);
    for (std::size_t batch : {1u, 2u, 5u, 8u, 9u}) {
      const auto lanes = corpus_lanes(c, batch);
      check_batch_equals_singles(ntt, lanes);
      check_batch_equals_singles(shoup, lanes);
    }
  }
}

TEST(BatchTransforms, FxpFftBatchEqualsSinglesOverPolymulCorpus) {
  for (std::uint64_t seed : {5u, 6u}) {
    const testing::PolymulCase c = testing::make_polymul_case({.seed = seed});
    SCOPED_TRACE(c.spec.describe());
    const std::size_t m = c.params.n / 2;
    fft::FxpFft fxp(m, core::default_approx_config(c.params.n, c.params.t));
    if (!fxp.uses_narrow_path()) continue;
    for (std::size_t batch : {3u, 8u}) {
      // Small-magnitude complex lanes derived from the corpus residues.
      std::vector<std::vector<cplx>> input(batch, std::vector<cplx>(m));
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t i = 0; i < m; ++i) {
          input[b][i] = {static_cast<double>((c.ct[i] + b) % 15) - 7.0,
                         static_cast<double>(c.w[i % c.params.n])};
        }
      }
      std::vector<std::vector<cplx>> ref(batch, std::vector<cplx>(m));
      {
        ScopedSimdLevel level(SimdLevel::kScalar);
        for (std::size_t b = 0; b < batch; ++b) fxp.forward_into(input[b], ref[b]);
      }
      for (SimdLevel lvl : supported_levels()) {
        ScopedSimdLevel level(lvl);
        std::vector<std::vector<cplx>> out(batch, std::vector<cplx>(m));
        std::vector<const cplx*> in_ptrs(batch);
        std::vector<cplx*> out_ptrs(batch);
        for (std::size_t b = 0; b < batch; ++b) {
          in_ptrs[b] = input[b].data();
          out_ptrs[b] = out[b].data();
        }
        fxp.forward_batch_into(std::span<const cplx* const>(in_ptrs),
                               std::span<cplx* const>(out_ptrs));
        for (std::size_t b = 0; b < batch; ++b) {
          for (std::size_t i = 0; i < m; ++i) {
            ASSERT_EQ(out[b][i].real(), ref[b][i].real()) << b << " " << i;
            ASSERT_EQ(out[b][i].imag(), ref[b][i].imag()) << b << " " << i;
          }
        }
      }
    }
  }
}

// The serve-path batched entry: run_batch must reproduce a loop of run()
// bit-for-bit — shares, byte counts, unit counts — at every dispatch level
// (the level itself must not leak into protocol outputs either).
TEST(BatchTransforms, ConvRunnerRunBatchBitIdenticalToLoopOfRuns) {
  bfv::BfvContext ctx(bfv::BfvParams::create(1024, 18, 46));
  protocol::HConvProtocol proto(ctx, bfv::PolyMulBackend::kFft, std::nullopt, 71);
  protocol::ConvRunner runner(proto);

  std::mt19937_64 rng(909);
  const std::size_t c = 3, hw = 8, out_c = 2, k = 3;
  const tensor::Tensor4 w = tensor::random_weights(out_c, c, k, 4, rng);
  const auto plan = runner.prepare(c, hw, hw, w, /*stride=*/1, /*pad=*/1);

  std::vector<tensor::Tensor3> xs;
  std::vector<std::uint64_t> bases;
  for (std::size_t i = 0; i < 3; ++i) {
    xs.push_back(tensor::random_activations(c, hw, hw, 4, rng));
    bases.push_back(static_cast<std::uint64_t>(i) << 32);
  }

  std::vector<protocol::ConvRunnerResult> ref;
  {
    ScopedSimdLevel level(SimdLevel::kScalar);
    for (std::size_t i = 0; i < xs.size(); ++i) ref.push_back(runner.run(xs[i], *plan, bases[i]));
  }
  for (SimdLevel lvl : supported_levels()) {
    ScopedSimdLevel level(lvl);
    const auto got = runner.run_batch(xs, *plan, bases);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].client_share.data(), ref[i].client_share.data()) << i;
      EXPECT_EQ(got[i].server_share.data(), ref[i].server_share.data()) << i;
      EXPECT_EQ(got[i].bytes_client_to_server, ref[i].bytes_client_to_server) << i;
      EXPECT_EQ(got[i].bytes_server_to_client, ref[i].bytes_server_to_client) << i;
      EXPECT_EQ(got[i].hconv_calls, ref[i].hconv_calls) << i;
    }
  }
  EXPECT_THROW((void)runner.run_batch(xs, *plan, std::span<const std::uint64_t>(bases.data(), 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace flash
