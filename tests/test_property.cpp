// Cross-module property tests and fuzz-style robustness checks.
//
// Workload-shaped inputs come from the src/testing generators: every case is
// a pure function of a derive_stream_seed stream, so any failure here
// reproduces from the fixed kPropertySeed below (see tests/README.md for the
// seed-reproduction workflow).
#include <gtest/gtest.h>

#include <random>

#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "bfv/multiply.hpp"
#include "bfv/serialization.hpp"
#include "fft/negacyclic.hpp"
#include "hemath/ntt.hpp"
#include "hemath/pow2.hpp"
#include "hemath/primes.hpp"
#include "hemath/sampler.hpp"
#include "hemath/shoup_ntt.hpp"
#include "testing/generators.hpp"

namespace flash {
namespace {

using hemath::i64;
using hemath::u64;

constexpr std::uint64_t kPropertySeed = 0x9209e127;

TEST(Property, NegacyclicHalfSpectrumParseval) {
  // The norm relation the DESIGN.md error analysis relies on:
  // sum |a_hat_half|^2 = (N/2) * sum a^2 for real input.
  for (std::size_t n : {std::size_t{16}, std::size_t{256}, std::size_t{2048}}) {
    fft::NegacyclicFft transform(n);
    std::mt19937_64 rng(n);
    std::uniform_real_distribution<double> dist(-3.0, 3.0);
    std::vector<double> a(n);
    double time_energy = 0;
    for (auto& v : a) {
      v = dist(rng);
      time_energy += v * v;
    }
    const auto spec = transform.forward(a);
    double spec_energy = 0;
    for (const auto& s : spec) spec_energy += std::norm(s);
    EXPECT_NEAR(spec_energy, static_cast<double>(n) / 2.0 * time_energy,
                1e-6 * spec_energy)
        << n;
  }
}

class BackendEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalence, NttAndFftBackendsAgree) {
  // Random parameter sets: the double-FFT backend must match the exact NTT
  // backend bit-for-bit whenever the rounding-noise margin holds.
  std::mt19937_64 seed_rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = std::size_t{1} << (9 + seed_rng() % 3);  // 512..2048
  const int log_t = 14 + static_cast<int>(seed_rng() % 5);
  const int log_q = log_t + 26 + static_cast<int>(seed_rng() % 4);
  const bfv::BfvParams params = bfv::BfvParams::create(n, log_t, log_q);
  bfv::BfvContext ctx(params);
  hemath::Sampler sampler(GetParam());
  bfv::KeyGenerator keygen(ctx, sampler);
  const bfv::SecretKey sk = keygen.secret_key();
  const bfv::PublicKey pk = keygen.public_key(sk);
  bfv::Encryptor enc(ctx, sampler);
  bfv::Decryptor dec(ctx, sk);
  bfv::Evaluator ntt_ev(ctx, bfv::PolyMulBackend::kNtt);
  bfv::Evaluator fft_ev(ctx, bfv::PolyMulBackend::kFft);

  std::mt19937_64 rng(GetParam() * 17 + 1);
  std::vector<i64> va(n), vw(n, 0);
  for (auto& v : va) v = static_cast<i64>(rng() % 16);
  for (int i = 0; i < 100; ++i) vw[rng() % n] = static_cast<i64>(rng() % 15) - 7;

  const bfv::Ciphertext ct = enc.encrypt(ctx.encode_signed(va), pk);
  const bfv::Plaintext ptw = ctx.encode_signed(vw);
  const auto a = ctx.decode_signed(dec.decrypt(ntt_ev.multiply_plain(ct, ptw)));
  const auto b = ctx.decode_signed(dec.decrypt(fft_ev.multiply_plain(ct, ptw)));
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalence, ::testing::Range(1, 9));

TEST(Property, WideMultiplierMatchesExactSchoolbook) {
  const bfv::BfvParams params = bfv::BfvParams::create_batching(64, 14, 40);
  bfv::BfvContext ctx(params);
  bfv::WideMultiplier wide(ctx);
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    bfv::Poly a(params.q, params.n), b(params.q, params.n);
    for (std::size_t i = 0; i < params.n; ++i) {
      a[i] = rng() % params.q;
      b[i] = rng() % params.q;
    }
    const bfv::Poly got = wide.scaled_product(a, b);
    // Exact oracle: 256-bit-safe schoolbook via __int128 partial sums on the
    // centered representatives, then round(t * x / q).
    for (std::size_t k = 0; k < params.n; ++k) {
      __int128 acc = 0;
      for (std::size_t i = 0; i < params.n; ++i) {
        const std::size_t j = (k + params.n - i) % params.n;
        const __int128 term = static_cast<__int128>(hemath::to_signed(a[i], params.q)) *
                              hemath::to_signed(b[j], params.q);
        acc += (i + j == k) ? term : -term;  // j wrapped iff i + j != k
      }
      const bool neg = acc < 0;
      const unsigned __int128 mag = neg ? static_cast<unsigned __int128>(-acc)
                                        : static_cast<unsigned __int128>(acc);
      const unsigned __int128 scaled =
          (mag * params.t + params.q / 2) / params.q;
      const u64 expect_mag = static_cast<u64>(scaled % params.q);
      const u64 expect = neg ? hemath::neg_mod(expect_mag, params.q) : expect_mag;
      ASSERT_EQ(got[k], expect) << "trial " << trial << " coeff " << k;
    }
  }
}

TEST(Fuzz, SerializationNeverCrashesOnCorruption) {
  const bfv::BfvParams params = bfv::BfvParams::create(256, 14, 40);
  bfv::BfvContext ctx(params);
  hemath::Sampler sampler(1);
  bfv::KeyGenerator keygen(ctx, sampler);
  const bfv::SecretKey sk = keygen.secret_key();
  const bfv::PublicKey pk = keygen.public_key(sk);
  bfv::Encryptor enc(ctx, sampler);
  const bfv::Ciphertext ct = enc.encrypt(ctx.encode_signed({1, 2, 3}), pk);
  const bfv::Bytes clean = bfv::serialize(params, ct);

  std::mt19937_64 rng(2);
  int throws = 0, accepts = 0;
  for (int trial = 0; trial < 300; ++trial) {
    bfv::Bytes fuzzed = clean;
    switch (trial % 3) {
      case 0:  // truncate
        fuzzed.resize(rng() % (clean.size() + 1));
        break;
      case 1:  // flip random bytes
        for (int f = 0; f < 4; ++f) fuzzed[rng() % fuzzed.size()] ^= static_cast<std::uint8_t>(rng());
        break;
      case 2:  // append garbage
        for (int f = 0; f < 8; ++f) fuzzed.push_back(static_cast<std::uint8_t>(rng()));
        break;
    }
    try {
      const bfv::Ciphertext out = bfv::deserialize_ciphertext(ctx, fuzzed);
      // If accepted, the object must at least be structurally valid.
      EXPECT_EQ(out.c0.degree(), params.n);
      EXPECT_EQ(out.c0.modulus(), params.q);
      for (std::size_t i = 0; i < params.n; ++i) ASSERT_LT(out.c0[i], params.q);
      ++accepts;
    } catch (const std::runtime_error&) {
      ++throws;
    }
  }
  EXPECT_GT(throws, 150);  // most corruptions are detected
  EXPECT_EQ(throws + accepts, 300);
}

TEST(Fuzz, PlaintextLoaderRejectsCrossTypeBuffers) {
  const bfv::BfvParams params = bfv::BfvParams::create(256, 14, 40);
  bfv::BfvContext ctx(params);
  const bfv::Bytes params_bytes = bfv::serialize(params);
  EXPECT_THROW(bfv::deserialize_plaintext(ctx, params_bytes), std::runtime_error);
  const bfv::Bytes empty;
  EXPECT_THROW(bfv::deserialize_plaintext(ctx, empty), std::runtime_error);
}

// --- Algebraic identities over generator-produced workloads. ---

TEST(Property, NegacyclicMultiplyCommutes) {
  // a * b == b * a mod (X^N + 1, q), through the NTT fast path (whose
  // forward/pointwise/inverse pipeline treats the operands asymmetrically
  // in table order, so this is not vacuous).
  for (std::uint64_t stream = 0; stream < 4; ++stream) {
    const testing::PolymulCase c =
        testing::make_polymul_case({.seed = hemath::derive_stream_seed(kPropertySeed, stream)});
    const u64 q = c.params.q;
    std::vector<u64> w(c.spec.n);
    for (std::size_t i = 0; i < c.spec.n; ++i) w[i] = hemath::from_signed(c.w[i], q);
    const hemath::NttTables tables(q, c.spec.n);
    EXPECT_EQ(hemath::negacyclic_multiply(tables, c.ct, w),
              hemath::negacyclic_multiply(tables, w, c.ct))
        << c.spec.describe();
  }
}

TEST(Property, NegacyclicMultiplyIsLinear) {
  // ct * (w1 + w2) == ct * w1 + ct * w2 mod q, with the two weight vectors
  // drawn as independent generator cases sharing the ciphertext operand.
  const testing::PolymulCase c1 =
      testing::make_polymul_case({.seed = hemath::derive_stream_seed(kPropertySeed, 10)});
  testing::PolymulSpec other_spec{.seed = hemath::derive_stream_seed(kPropertySeed, 11),
                                  .n = c1.spec.n};
  const testing::PolymulCase c2 = testing::make_polymul_case(other_spec);
  const u64 q = c1.params.q;
  const std::size_t n = c1.spec.n;
  const hemath::NttTables tables(q, n);

  std::vector<u64> w1(n), w2(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    w1[i] = hemath::from_signed(c1.w[i], q);
    w2[i] = hemath::from_signed(c2.w[i], q);
    sum[i] = hemath::add_mod(w1[i], w2[i], q);
  }
  const std::vector<u64> lhs = hemath::negacyclic_multiply(tables, c1.ct, sum);
  const std::vector<u64> p1 = hemath::negacyclic_multiply(tables, c1.ct, w1);
  const std::vector<u64> p2 = hemath::negacyclic_multiply(tables, c1.ct, w2);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(lhs[i], hemath::add_mod(p1[i], p2[i], q)) << "coeff " << i;
  }
}

TEST(Property, Pow2NegacyclicRingIdentities) {
  // Ring axioms of the Z_{2^k} negacyclic product at every width regime,
  // including k = 64 where the mask is all-ones and reduction must be the
  // free u64 wraparound: commutativity, linearity, x * 1 == x,
  // x * (2^k - 1) == -x, and the negacyclic wraparound sign X^n == -1.
  std::mt19937_64 rng(kPropertySeed);
  const std::size_t n = 128;
  for (const int k : {8, 16, 32, 60, 64}) {
    const hemath::Pow2Ring ring(k);
    std::vector<u64> a(n), b(n), c(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = ring.reduce(rng());
      b[i] = ring.reduce(rng());
      c[i] = ring.reduce(rng());
    }

    // Commutativity: a * b == b * a.
    EXPECT_EQ(hemath::negacyclic_mul_pow2(a, b, ring), hemath::negacyclic_mul_pow2(b, a, ring))
        << "k=" << k;

    // Linearity: a * (b + c) == a * b + a * c.
    std::vector<u64> sum(n);
    for (std::size_t i = 0; i < n; ++i) sum[i] = ring.add(b[i], c[i]);
    const std::vector<u64> lhs = hemath::negacyclic_mul_pow2(a, sum, ring);
    const std::vector<u64> ab = hemath::negacyclic_mul_pow2(a, b, ring);
    const std::vector<u64> ac = hemath::negacyclic_mul_pow2(a, c, ring);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(lhs[i], ring.add(ab[i], ac[i])) << "k=" << k << " coeff " << i;
    }

    // Multiplicative identity: a * 1 == a.
    std::vector<u64> one(n, 0);
    one[0] = 1;
    EXPECT_EQ(hemath::negacyclic_mul_pow2(a, one, ring), a) << "k=" << k;

    // x * (2^k - 1) == -x: the all-ones residue is -1 in the ring.
    std::vector<u64> minus_one(n, 0);
    minus_one[0] = ring.mask;
    const std::vector<u64> neg = hemath::negacyclic_mul_pow2(a, minus_one, ring);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(neg[i], ring.neg(a[i])) << "k=" << k << " coeff " << i;
    }

    // Negacyclic wraparound sign: (X^j * a) at j = n/2 twice == X^n * a == -a.
    std::vector<u64> half_shift(n, 0);
    half_shift[n / 2] = 1;
    const std::vector<u64> once = hemath::negacyclic_mul_pow2(a, half_shift, ring);
    const std::vector<u64> twice = hemath::negacyclic_mul_pow2(once, half_shift, ring);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(twice[i], ring.neg(a[i])) << "k=" << k << " coeff " << i;
    }
  }
}

TEST(Property, Pow2WrapAtSixtyFourIsPlainUint64Wrap) {
  // k = 64 is the wrap-is-free width: the masked ring product must equal a
  // naive accumulation in plain u64 arithmetic (no mask applied anywhere),
  // because 2^64 | 2^64 — the hardware's natural overflow IS the reduction.
  std::mt19937_64 rng(kPropertySeed + 64);
  const std::size_t n = 64;
  const hemath::Pow2Ring ring(64);
  std::vector<u64> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng();
    b[i] = rng();
  }
  std::vector<u64> naive(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = a[i] * b[j];  // wraps mod 2^64 by definition
      if (i + j < n) naive[i + j] += prod;
      else naive[i + j - n] -= prod;
    }
  }
  EXPECT_EQ(hemath::negacyclic_mul_pow2(a, b, ring), naive);
}

TEST(Property, NttInverseIsIdentityAcrossPrimesAndDegrees) {
  // NTT o INTT == id for both transform implementations, across fresh
  // NTT-friendly primes of several bit sizes and all supported ring degrees.
  for (std::size_t n : {std::size_t{16}, std::size_t{256}, std::size_t{2048}}) {
    for (int bits : {30, 45, 59}) {
      const u64 q = hemath::find_ntt_prime(bits, n);
      hemath::Sampler sampler(hemath::derive_stream_seed(kPropertySeed, n * 100 + bits));
      const std::vector<u64> original = sampler.uniform_poly(q, n).coeffs();

      std::vector<u64> a = original;
      const hemath::NttTables tables(q, n);
      tables.forward(a);
      EXPECT_NE(a, original) << "forward NTT was a no-op (n=" << n << ", bits=" << bits << ")";
      tables.inverse(a);
      EXPECT_EQ(a, original) << "NttTables n=" << n << " bits=" << bits;

      std::vector<u64> b = original;
      const hemath::ShoupNttTables shoup(q, n);
      shoup.forward(b);
      shoup.inverse(b);
      EXPECT_EQ(b, original) << "ShoupNttTables n=" << n << " bits=" << bits;
    }
  }
}

TEST(Property, SchoolbookAgreesWithNttOnGeneratedCases) {
  // The O(N^2) oracle and the fast path agree on generator workloads (the
  // same pairing the differential fuzzer uses, pinned here as a quick test).
  const testing::PolymulCase c = testing::make_polymul_case(
      {.seed = hemath::derive_stream_seed(kPropertySeed, 20), .n = 256});
  const u64 q = c.params.q;
  std::vector<u64> w(c.spec.n);
  for (std::size_t i = 0; i < c.spec.n; ++i) w[i] = hemath::from_signed(c.w[i], q);
  const hemath::NttTables tables(q, c.spec.n);
  EXPECT_EQ(hemath::negacyclic_multiply(tables, c.ct, w),
            hemath::negacyclic_multiply_schoolbook(q, c.ct, w))
      << c.spec.describe();
}

TEST(Property, EncryptionIsRandomized) {
  const bfv::BfvParams params = bfv::BfvParams::create(256, 14, 40);
  bfv::BfvContext ctx(params);
  hemath::Sampler sampler(3);
  bfv::KeyGenerator keygen(ctx, sampler);
  const bfv::SecretKey sk = keygen.secret_key();
  const bfv::PublicKey pk = keygen.public_key(sk);
  bfv::Encryptor enc(ctx, sampler);
  const bfv::Plaintext pt = ctx.encode_signed({42});
  const bfv::Ciphertext a = enc.encrypt(pt, pk);
  const bfv::Ciphertext b = enc.encrypt(pt, pk);
  EXPECT_NE(a.c0, b.c0);  // semantic security: fresh randomness per call
  bfv::Decryptor dec(ctx, sk);
  EXPECT_EQ(dec.decrypt(a).poly, dec.decrypt(b).poly);
}

}  // namespace
}  // namespace flash
