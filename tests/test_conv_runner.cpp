// ConvRunner: padding, stride decomposition and spatial tiling over the
// HE/2PC protocol, validated against the direct convolution oracle.
#include <gtest/gtest.h>

#include <random>

#include "protocol/conv_runner.hpp"
#include "tensor/quant.hpp"

namespace flash::protocol {
namespace {

struct Fixture {
  bfv::BfvContext ctx;
  HConvProtocol proto;
  ConvRunner runner;

  Fixture() : ctx(bfv::BfvParams::create(1024, 18, 46)),
              proto(ctx, bfv::PolyMulBackend::kFft, std::nullopt, 71), runner(proto) {}
};

class ConvRunnerShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                                                 std::size_t, std::size_t>> {};

TEST_P(ConvRunnerShapes, MatchesDirectConv) {
  const auto [c, hw, out_c, k, stride, pad] = GetParam();
  Fixture f;
  std::mt19937_64 rng(c * 100 + hw + k * 10 + stride);
  const tensor::Tensor3 x = tensor::random_activations(c, hw, hw, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(out_c, c, k, 4, rng);
  const ConvRunnerResult r = f.runner.run(x, w, stride, pad);
  const tensor::Tensor3 got = r.reconstruct(f.ctx.params().t);
  const tensor::Tensor3 expect = tensor::conv2d(x, w, {stride, pad});
  EXPECT_EQ(got.data(), expect.data());
  EXPECT_EQ(got.height(), expect.height());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvRunnerShapes,
    ::testing::Values(
        // stride 1 with 'same' padding, single tile
        std::make_tuple(std::size_t{4}, std::size_t{8}, std::size_t{3}, std::size_t{3},
                        std::size_t{1}, std::size_t{1}),
        // stride 1, input too large for one polynomial -> spatial tiling
        std::make_tuple(std::size_t{2}, std::size_t{40}, std::size_t{2}, std::size_t{3},
                        std::size_t{1}, std::size_t{1}),
        // stride 2, 3x3 kernel (4 phases)
        std::make_tuple(std::size_t{4}, std::size_t{12}, std::size_t{3}, std::size_t{3},
                        std::size_t{2}, std::size_t{1}),
        // stride 2, 1x1 downsample (single phase)
        std::make_tuple(std::size_t{6}, std::size_t{10}, std::size_t{4}, std::size_t{1},
                        std::size_t{2}, std::size_t{0}),
        // stride 2, 7x7 stem kernel (ragged phase kernels)
        std::make_tuple(std::size_t{3}, std::size_t{14}, std::size_t{2}, std::size_t{7},
                        std::size_t{2}, std::size_t{3}),
        // stride 4 exceeds kernel: only k^2 phases carry taps
        std::make_tuple(std::size_t{2}, std::size_t{16}, std::size_t{2}, std::size_t{3},
                        std::size_t{4}, std::size_t{1})));

TEST(ConvRunner, SpatialTilingUsesMultipleHConvs) {
  Fixture f;
  std::mt19937_64 rng(9);
  const tensor::Tensor3 x = tensor::random_activations(2, 40, 40, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(1, 2, 3, 4, rng);
  const ConvRunnerResult r = f.runner.run(x, w, 1, 0);
  EXPECT_GT(r.hconv_calls, 1u);  // 40x40 patch cannot fit a 1024-degree poly
  EXPECT_EQ(r.reconstruct(f.ctx.params().t).data(), tensor::conv2d(x, w, {1, 0}).data());
}

TEST(ConvRunner, StridePhasesShareNoExtraRound) {
  // The stride decomposition sums *shares* locally: communication equals the
  // sum of the phases' ciphertext traffic, nothing more.
  Fixture f;
  std::mt19937_64 rng(10);
  const tensor::Tensor3 x = tensor::random_activations(3, 8, 8, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(2, 3, 3, 4, rng);
  const ConvRunnerResult r = f.runner.run(x, w, 2, 1);
  EXPECT_EQ(r.hconv_calls, 4u);  // min(k, s)^2 = 4 phases, one tile each
  EXPECT_EQ(r.bytes_client_to_server, 4 * ciphertext_bytes(f.ctx.params()));
}

// Pre-fix, the stride decomposition derived the phase grid and the output
// dims from kernel_h alone, so any strided run of a rectangular kernel
// (kh != kw) produced wrong shapes/values. The per-axis decomposition must
// match the direct conv for both orientations.
TEST(ConvRunner, StridedRectangularKernelMatchesDirectConv) {
  Fixture f;
  std::mt19937_64 rng(0x7ec7);
  const tensor::Tensor3 x = tensor::random_activations(2, 7, 7, 4, rng);
  for (const auto& [kh, kw] : {std::pair<std::size_t, std::size_t>{1, 3}, {3, 1}, {2, 3}}) {
    const tensor::Tensor4 w = tensor::random_weights(2, 2, kh, kw, 4, rng);
    for (const std::size_t stride : {2, 3}) {
      const ConvRunnerResult r = f.runner.run(x, w, stride, /*pad=*/1);
      const tensor::Tensor3 expect = tensor::conv2d(x, w, {stride, 1});
      const tensor::Tensor3 got = r.reconstruct(f.ctx.params().t);
      EXPECT_EQ(got.height(), expect.height()) << kh << "x" << kw << " s" << stride;
      EXPECT_EQ(got.width(), expect.width()) << kh << "x" << kw << " s" << stride;
      EXPECT_EQ(got.data(), expect.data()) << kh << "x" << kw << " s" << stride;

      // The prepared-plan path shares the decomposition.
      const auto plan = f.runner.prepare(2, 7, 7, w, stride, 1);
      const ConvRunnerResult planned = f.runner.run(x, *plan);
      EXPECT_EQ(planned.reconstruct(f.ctx.params().t).data(), expect.data());
    }
  }
}

TEST(ConvRunner, RejectsZeroStride) {
  Fixture f;
  const tensor::Tensor3 x(1, 4, 4);
  const tensor::Tensor4 w(1, 1, 1, 1);
  EXPECT_THROW(f.runner.run(x, w, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace flash::protocol
