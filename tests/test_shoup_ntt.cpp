// Lazy-reduction (Shoup/Harvey) NTT: equivalence with the reference NTT
// across sizes and moduli, and the discrete-Gaussian CDT sampler.
#include <gtest/gtest.h>

#include <random>

#include "hemath/ntt.hpp"
#include "hemath/primes.hpp"
#include "hemath/shoup_ntt.hpp"

namespace flash::hemath {
namespace {

class ShoupNtt : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(ShoupNtt, MatchesReferenceForward) {
  const auto [bits, n] = GetParam();
  const u64 q = find_ntt_prime(bits, n);
  NttTables ref(q, n);
  ShoupNttTables lazy(q, n);
  std::mt19937_64 rng(n * 3 + bits);
  std::vector<u64> a(n);
  for (auto& x : a) x = rng() % q;
  std::vector<u64> b = a;
  ref.forward(a);
  lazy.forward(b);
  EXPECT_EQ(a, b);
}

TEST_P(ShoupNtt, InverseRoundTrip) {
  const auto [bits, n] = GetParam();
  const u64 q = find_ntt_prime(bits, n);
  ShoupNttTables lazy(q, n);
  std::mt19937_64 rng(n * 5 + bits);
  std::vector<u64> a(n);
  for (auto& x : a) x = rng() % q;
  std::vector<u64> b = a;
  lazy.forward(b);
  lazy.inverse(b);
  EXPECT_EQ(a, b);
}

TEST_P(ShoupNtt, OutputsFullyReduced) {
  const auto [bits, n] = GetParam();
  const u64 q = find_ntt_prime(bits, n);
  ShoupNttTables lazy(q, n);
  std::mt19937_64 rng(n * 7 + bits);
  std::vector<u64> a(n);
  for (auto& x : a) x = rng() % q;
  lazy.forward(a);
  for (u64 x : a) EXPECT_LT(x, q);
  lazy.inverse(a);
  for (u64 x : a) EXPECT_LT(x, q);
}

INSTANTIATE_TEST_SUITE_P(Cases, ShoupNtt,
                         ::testing::Combine(::testing::Values(30, 45, 59),
                                            ::testing::Values(std::size_t{8}, std::size_t{256},
                                                              std::size_t{4096})));

TEST(ShoupNttEdge, ExtremeCoefficients) {
  const std::size_t n = 64;
  const u64 q = find_ntt_prime(59, n);
  ShoupNttTables lazy(q, n);
  NttTables ref(q, n);
  std::vector<u64> a(n, q - 1);  // all coefficients at the modulus edge
  a[0] = 0;
  std::vector<u64> b = a;
  ref.forward(a);
  lazy.forward(b);
  EXPECT_EQ(a, b);
}

TEST(ShoupNttEdge, RejectsBadParameters) {
  EXPECT_THROW(ShoupNttTables(17, 64), std::invalid_argument);
  EXPECT_THROW(ShoupNttTables(find_ntt_prime(30, 64), 48), std::invalid_argument);
}

TEST(ShoupNttEdge, ConvolutionAgreesWithReference) {
  const std::size_t n = 128;
  const u64 q = find_ntt_prime(50, n);
  NttTables ref(q, n);
  ShoupNttTables lazy(q, n);
  std::mt19937_64 rng(99);
  std::vector<u64> a(n), b(n);
  for (auto& x : a) x = rng() % q;
  for (auto& x : b) x = rng() % q;
  // Pointwise in the lazy domain == pointwise in the reference domain.
  std::vector<u64> fa = a, fb = b;
  lazy.forward(fa);
  lazy.forward(fb);
  std::vector<u64> prod(n);
  for (std::size_t i = 0; i < n; ++i) prod[i] = mul_mod(fa[i], fb[i], q);
  lazy.inverse(prod);
  EXPECT_EQ(prod, negacyclic_multiply_schoolbook(q, a, b));
}

}  // namespace
}  // namespace flash::hemath
