// DSE x static analyzer integration: no explorer may ever return a design
// point the overflow analyzer rejects. This is the admission contract wired
// into DseExplorer::explore and BayesianExplorer::explore (dse/safety.hpp) —
// unprovable candidates are resampled before evaluation, never scored.

#include <gtest/gtest.h>

#include <vector>

#include "dse/bayesopt.hpp"
#include "dse/cost_model.hpp"
#include "dse/optimizer.hpp"
#include "dse/safety.hpp"

namespace {

struct Setup {
  flash::dse::DesignSpace space;
  flash::dse::ErrorModel model;
  flash::dse::CostModel cost;
};

Setup table1_setup(std::size_t n, std::size_t nnz, double max_w) {
  flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
  auto model = flash::dse::ErrorModel::from_weight_stats(n, nnz, max_w);
  flash::dse::CostModel cost(space.fft_size(), space.bounds());
  return {space, model, cost};
}

std::size_t count_unprovable(const Setup& s, const std::vector<flash::dse::EvaluatedPoint>& pts) {
  std::size_t unproven = 0;
  for (const auto& e : pts) {
    if (!flash::dse::design_point_proven_safe(s.space, s.model, e.point)) ++unproven;
  }
  return unproven;
}

TEST(AnalyzerDse, EvolutionaryExplorerReturnsOnlyProvablePoints) {
  auto s = table1_setup(512, 18, 7.0);
  flash::dse::DseExplorer explorer(s.space, s.model, s.cost, /*seed=*/123);
  flash::dse::DseOptions opts;
  opts.evaluations = 150;
  opts.population = 30;
  const auto all = explorer.explore(opts);
  ASSERT_EQ(all.size(), 150u);  // resampling must not eat the budget
  EXPECT_EQ(count_unprovable(s, all), 0u);
  EXPECT_EQ(count_unprovable(s, flash::dse::pareto_front(all)), 0u);
}

TEST(AnalyzerDse, BayesianExplorerReturnsOnlyProvablePoints) {
  auto s = table1_setup(512, 18, 7.0);
  flash::dse::BayesianExplorer explorer(s.space, s.model, s.cost, /*seed=*/321);
  flash::dse::BayesOptions opts;
  opts.evaluations = 40;
  opts.initial_random = 10;
  opts.candidate_pool = 40;
  const auto all = explorer.explore(opts);
  ASSERT_EQ(all.size(), 40u);
  EXPECT_EQ(count_unprovable(s, all), 0u);
}

TEST(AnalyzerDse, GatingHoldsAcrossSeedsAndWorkloads) {
  // A cheap sweep over seeds/workloads: the admission rule is seed-independent.
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    auto s = table1_setup(1024, 128, 3.0);
    flash::dse::DseExplorer explorer(s.space, s.model, s.cost, seed);
    flash::dse::DseOptions opts;
    opts.evaluations = 60;
    opts.population = 16;
    EXPECT_EQ(count_unprovable(s, explorer.explore(opts)), 0u) << "seed=" << seed;
  }
}

TEST(AnalyzerDse, SafetyCacheMatchesDirectAnalysis) {
  auto s = table1_setup(512, 18, 7.0);
  flash::dse::SafetyCache cache(s.space, s.model);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 25; ++i) {
    const auto p = s.space.random(rng);
    const bool direct = flash::dse::design_point_proven_safe(s.space, s.model, p);
    EXPECT_EQ(cache.proven_safe(p), direct);
    EXPECT_EQ(cache.proven_safe(p), direct);  // memoized second hit
  }
}

TEST(AnalyzerDse, ExplorerThrowsWhenNothingIsProvable) {
  // Inputs so large that even all-max widths cannot hold the growth: the
  // explorer must refuse loudly rather than return unverifiable fronts.
  flash::dse::DesignSpace space(256, flash::dse::SpaceBounds{10, 16, 2, 18});
  flash::dse::ErrorModel model(256, 1e6, 3000.0, 2500.0);
  flash::dse::CostModel cost(space.fft_size(), space.bounds());

  flash::dse::DseExplorer evo(space, model, cost, /*seed=*/9);
  flash::dse::DseOptions evo_opts;
  evo_opts.evaluations = 10;
  EXPECT_THROW(evo.explore(evo_opts), std::runtime_error);

  flash::dse::BayesianExplorer bayes(space, model, cost, /*seed=*/9);
  flash::dse::BayesOptions bayes_opts;
  bayes_opts.evaluations = 10;
  EXPECT_THROW(bayes.explore(bayes_opts), std::runtime_error);
}

}  // namespace
