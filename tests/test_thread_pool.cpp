// core::ThreadPool semantics, the shared transform caches, and the
// thread-safety of PolyMulEngine's counters — the regression tests for the
// races the parallel HConv pipeline is built on. All of these run under the
// ThreadSanitizer preset (-DFLASH_SANITIZE=thread, ctest -L mt).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bfv/evaluator.hpp"
#include "core/thread_pool.hpp"
#include "fft/transform_cache.hpp"
#include "hemath/sampler.hpp"

namespace flash {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  core::ThreadPool pool(8);
  EXPECT_EQ(pool.thread_count(), 8u);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10000);
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPool, RespectsRangeBounds) {
  core::ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, 200, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
  // Empty and single-index ranges.
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  core::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(0, 16, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPool, PropagatesFirstException) {
  core::ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_for(0, 64,
                                 [&](std::size_t i) {
                                   ++executed;
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must have drained the job (no worker left inside it).
  EXPECT_LE(executed.load(), 64);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  core::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPool, ForRangeNullPoolRunsInline) {
  std::vector<int> hits(32, 0);
  core::for_range(nullptr, hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 32);
}

// The satellite regression: one shared PolyMulEngine hammered from 8
// threads must tally exactly — the seed code's plain mutable counters lost
// updates (a data race TSan flags).
TEST(ThreadPool, SharedEngineCountersAreExactUnderContention) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  bfv::Evaluator ev(ctx, bfv::PolyMulBackend::kFft);
  ev.engine().reset_counters();

  bfv::Plaintext pt = ctx.make_plaintext();
  std::mt19937_64 rng(5);
  for (std::size_t i = 0; i < params.n; ++i) pt.poly[i] = rng() % params.t;
  bfv::Poly ct_poly(params.q, params.n);
  for (std::size_t i = 0; i < params.n; ++i) ct_poly[i] = rng() % params.q;

  const std::size_t kTasks = 64;
  core::ThreadPool pool(8);
  pool.parallel_for(0, kTasks, [&](std::size_t) {
    const bfv::PlainSpectrum w = ev.engine().transform_plain(pt);
    (void)ev.engine().multiply(ct_poly, w);
  });

  const bfv::PolyMulCounters c = ev.engine().counters();
  EXPECT_EQ(c.plain_transforms, kTasks);
  EXPECT_EQ(c.cipher_transforms, kTasks);
  EXPECT_EQ(c.inverse_transforms, kTasks);
  EXPECT_EQ(c.pointwise_products, kTasks * params.n / 2);
}

TEST(TransformCache, ContextsShareTables) {
  fft::clear_transform_caches();
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext a(params);
  const auto after_first = fft::transform_cache_stats();
  bfv::BfvContext b(params);
  bfv::BfvContext c(params);
  const auto after_three = fft::transform_cache_stats();
  // One NTT table + one FFT plan built total; the later contexts hit.
  EXPECT_EQ(after_first.misses, 2u);
  EXPECT_EQ(after_three.misses, 2u);
  EXPECT_EQ(after_three.hits, after_first.hits + 4u);
  EXPECT_EQ(&a.ntt(), &b.ntt());
  EXPECT_EQ(&a.fft(), &c.fft());
}

TEST(TransformCache, ApproxEnginesShareByConfig) {
  fft::clear_transform_caches();
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  bfv::BfvContext ctx(params);
  const fft::FxpFftConfig cfg = fft::FxpFftConfig::uniform(params.n / 2, 24, 39, 5);
  bfv::Evaluator e1(ctx, bfv::PolyMulBackend::kApproxFft, cfg);
  const auto before = fft::transform_cache_stats();
  bfv::Evaluator e2(ctx, bfv::PolyMulBackend::kApproxFft, cfg);
  const auto after_same = fft::transform_cache_stats();
  EXPECT_EQ(after_same.fxp_entries, before.fxp_entries);  // same config: cache hit
  fft::FxpFftConfig other = cfg;
  other.twiddle_k = 3;  // different design point must not share tables
  bfv::Evaluator e3(ctx, bfv::PolyMulBackend::kApproxFft, other);
  const auto after_other = fft::transform_cache_stats();
  EXPECT_EQ(after_other.fxp_entries, before.fxp_entries + 1);
}

TEST(TransformCache, ConcurrentLookupBuildsOnce) {
  fft::clear_transform_caches();
  core::ThreadPool pool(8);
  std::vector<std::shared_ptr<const hemath::NttTables>> got(32);
  pool.parallel_for(0, got.size(), [&](std::size_t i) {
    got[i] = fft::shared_ntt_tables(12289, 1024);
  });
  for (const auto& t : got) EXPECT_EQ(t.get(), got[0].get());
  EXPECT_EQ(fft::transform_cache_stats().ntt_entries, 1u);
}

TEST(Sampler, DerivedStreamsAreDeterministicAndDistinct) {
  const std::uint64_t a0 = hemath::derive_stream_seed(42, 0);
  EXPECT_EQ(a0, hemath::derive_stream_seed(42, 0));
  EXPECT_NE(a0, hemath::derive_stream_seed(42, 1));
  EXPECT_NE(a0, hemath::derive_stream_seed(43, 0));

  hemath::Sampler base(42);
  // fork() depends only on (construction seed, stream), not on draws made.
  hemath::Sampler f1 = base.fork(7);
  (void)base.uniform_mod(1000);
  hemath::Sampler f2 = base.fork(7);
  EXPECT_EQ(f1.uniform_poly(97, 64).coeffs(), f2.uniform_poly(97, 64).coeffs());
}

TEST(Sampler, CdtIsSafeToShareAcrossPerTaskStreams) {
  // The CDT table is immutable; per-task rngs seeded by stream id make the
  // draws reproducible regardless of scheduling.
  hemath::CdtGaussianSampler cdt(3.2);
  core::ThreadPool pool(8);
  std::vector<hemath::i64> first(64), second(64);
  for (auto* out : {&first, &second}) {
    auto& v = *out;
    pool.parallel_for(0, v.size(), [&](std::size_t i) {
      std::mt19937_64 rng(hemath::derive_stream_seed(99, i));
      v[i] = cdt.sample(rng);
    });
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace flash
