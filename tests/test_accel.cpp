// Hardware cost models: Table II anchors, scaling laws, FLASH breakdown
// roll-up, workload latency/energy, and baseline throughput validation.
#include <gtest/gtest.h>

#include "accel/baselines.hpp"
#include "accel/memory.hpp"
#include "accel/workload.hpp"
#include "tensor/resnet.hpp"

namespace flash::accel {
namespace {

TEST(UnitCosts, TableIIAnchors) {
  EXPECT_DOUBLE_EQ(modular_mult_f1().area_um2, 1817.0);
  EXPECT_DOUBLE_EQ(modular_mult_f1().power_mw, 4.10);
  EXPECT_DOUBLE_EQ(modular_mult_cham().area_um2, 3517.0);
  EXPECT_DOUBLE_EQ(complex_fp_mult(39).area_um2, 11744.0);
  EXPECT_DOUBLE_EQ(complex_fp_mult(39).power_mw, 8.26);
  EXPECT_DOUBLE_EQ(approx_fxp_mult(39, 5).area_um2, 3211.0);
  EXPECT_DOUBLE_EQ(approx_fxp_mult(39, 5).power_mw, 1.11);
}

TEST(UnitCosts, PaperPowerRatioClaims) {
  // "The power of complex FP multiplications is approximately twice that of
  // modular multiplication."
  const double ratio = complex_fp_mult(39).power_mw / modular_mult_f1().power_mw;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.5);
  // "The approximate FXP multiplication performs more efficiently than the
  // optimized modular one used in CHAM."
  EXPECT_LT(approx_fxp_mult(39, 5).power_mw, modular_mult_cham().power_mw);
}

TEST(UnitCosts, ScalingMonotone) {
  EXPECT_LT(approx_fxp_mult(27, 5).power_mw, approx_fxp_mult(39, 5).power_mw);
  EXPECT_LT(approx_fxp_mult(39, 3).power_mw, approx_fxp_mult(39, 5).power_mw);
  EXPECT_LT(complex_fp_mult(20).power_mw, complex_fp_mult(39).power_mw);
  EXPECT_LT(plain_fxp_mult(27).power_mw, plain_fxp_mult(39).power_mw);
  // k = 18 CSD is still cheaper than a full array multiplier at equal width.
  EXPECT_LT(approx_fxp_mult(39, 18).area_um2, 1.3 * plain_fxp_mult(39).area_um2);
}

TEST(UnitCosts, EnergyPerOp) {
  // 1.11 mW at 1 GHz = 1.11 pJ per butterfly-cycle.
  EXPECT_NEAR(approx_fxp_mult(39, 5).energy_pj(1e9), 1.11, 1e-9);
  EXPECT_NEAR(approx_fxp_mult(39, 5).energy_pj(500e6), 2.22, 1e-9);
}

TEST(FlashBreakdown, WeightOnlySectionNearPaper) {
  // Table III FLASH weight-transform row: 0.74 mm^2 / 0.27 W.
  const auto b = flash_breakdown(FlashConfig::weight_transform_only());
  EXPECT_NEAR(b.total_area(), 0.74, 0.25);
  EXPECT_NEAR(b.total_power(), 0.27, 0.10);
  EXPECT_DOUBLE_EQ(b.fp_bu_area, 0.0);
  EXPECT_DOUBLE_EQ(b.fp_mult_area, 0.0);
}

TEST(FlashBreakdown, FullConfigNearPaper) {
  // Table III FLASH all-transforms row: 4.22 mm^2 / 2.56 W.
  const auto b = flash_breakdown(FlashConfig::paper_default());
  EXPECT_NEAR(b.total_area(), 4.22, 1.2);
  EXPECT_NEAR(b.total_power(), 2.56, 0.8);
  // Fig. 12: point-wise FP multipliers dominate the full design.
  EXPECT_GT(b.fp_mult_area, b.approx_bu_area);
  EXPECT_GT(b.fp_mult_power, b.approx_bu_power);
}

TEST(Workload, ButterflyFormulas) {
  EXPECT_EQ(dense_fft_butterflies(4096), 2048u / 2 * 11);  // 2048-point FFT
  EXPECT_EQ(dense_ntt_butterflies(4096), 4096u / 2 * 12);
}

TEST(Workload, FromNetworkAggregates) {
  const auto layers = tensor::resnet18_conv_layers();
  const TransformWorkload w = TransformWorkload::from_network(layers, 4096, 0.15);
  EXPECT_GT(w.weight_transforms, w.cipher_transforms);
  EXPECT_GT(w.pointwise_polys, 0u);
}

TEST(Workload, FlashRunScalesWithWork) {
  TransformWorkload w;
  w.n = 4096;
  w.weight_transforms = 1000;
  w.cipher_transforms = 20;
  w.inverse_transforms = 20;
  w.pointwise_polys = 1000;
  w.weight_mult_fraction = 0.12;
  const FlashConfig cfg = FlashConfig::paper_default();
  const LatencyEnergy a = flash_run(cfg, w, WeightPath::kApproxSparse);
  TransformWorkload w2 = w;
  w2.weight_transforms *= 2;
  w2.cipher_transforms *= 2;
  w2.inverse_transforms *= 2;
  w2.pointwise_polys *= 2;
  const LatencyEnergy b = flash_run(cfg, w2, WeightPath::kApproxSparse);
  EXPECT_NEAR(b.seconds / a.seconds, 2.0, 1e-9);
  EXPECT_NEAR(b.joules / a.joules, 2.0, 1e-9);
}

TEST(Workload, AblationOrdering) {
  // Fig. 11(d)(e): FP dense > FXP dense > {sparse-only, approx-only} > FLASH.
  TransformWorkload w;
  w.n = 4096;
  w.weight_transforms = 10000;
  w.weight_mult_fraction = 0.12;
  const FlashConfig cfg = FlashConfig::paper_default();
  const double fp = weight_transform_energy_j(cfg, w, WeightPath::kFpDense);
  const double fxp = weight_transform_energy_j(cfg, w, WeightPath::kFxpDense);
  const double sparse = weight_transform_energy_j(cfg, w, WeightPath::kFpSparse);
  const double approx = weight_transform_energy_j(cfg, w, WeightPath::kApproxDense);
  const double both = weight_transform_energy_j(cfg, w, WeightPath::kApproxSparse);
  EXPECT_GT(fp, fxp);
  EXPECT_GT(fxp, sparse);
  EXPECT_GT(fxp, approx);
  EXPECT_LT(both, 0.5 * std::min(sparse, approx));
  // Headline: each single optimization ~10%, both ~1% of the FP baseline.
  EXPECT_NEAR(sparse / fp, 0.12, 0.05);
  EXPECT_NEAR(approx / fp, 0.13, 0.06);
  EXPECT_LT(both / fp, 0.03);
}

TEST(Workload, ZeroUnitsThrowOnlyWhenUsed) {
  TransformWorkload w;
  w.n = 4096;
  w.weight_transforms = 10;
  const FlashConfig weight_only = FlashConfig::weight_transform_only();
  EXPECT_NO_THROW(flash_run(weight_only, w, WeightPath::kApproxSparse));
  w.cipher_transforms = 2;
  EXPECT_THROW(flash_run(weight_only, w, WeightPath::kApproxSparse), std::invalid_argument);
}

TEST(Baselines, TableIIIRows) {
  const auto rows = table3_baselines();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].name, "HEAX");
  EXPECT_EQ(rows[2].name, "F1");
  // Published efficiencies: F1 16.06 MOPS/mm^2 and 7.60 MOPS/W.
  EXPECT_NEAR(rows[2].area_efficiency(), 16.06, 0.1);
  EXPECT_NEAR(rows[2].power_efficiency(), 7.60, 0.05);
  EXPECT_NEAR(rows[4].power_efficiency(), 8.42, 0.05);
}

TEST(Baselines, BuModelReproducesFpgaThroughputs) {
  // HEAX ~1.95M and CHAM ~2.93M normalized NTT/s from BU counts x f.
  EXPECT_NEAR(fpga_ntt_norm_throughput(160, 300e6), 1.95e6, 0.02e6);
  EXPECT_NEAR(fpga_ntt_norm_throughput(240, 300e6), 2.93e6, 0.02e6);
}

TEST(Baselines, FlashThroughputNearPaper) {
  // Table III: weight transforms 186.34 M/s, all transforms 187.90 M/s at
  // the measured ResNet-50 sparsity (~88% multiplication reduction).
  const FlashConfig cfg = FlashConfig::paper_default();
  const double weight = flash_norm_throughput(cfg, 0.117, true);
  EXPECT_NEAR(weight, 186.34e6, 15e6);
  const double all = flash_norm_throughput(cfg, 0.117, false);
  EXPECT_GT(all, weight);
  EXPECT_NEAR(all, 187.9e6, 15e6);
}

TEST(Baselines, FlashPowerEfficiencyGains) {
  // The headline: 81.8x ~ 90.7x power efficiency over the ASIC baselines for
  // weight transforms; 8.7x ~ 9.7x for all transforms.
  const FlashConfig weight_cfg = FlashConfig::weight_transform_only();
  const auto weight_bd = flash_breakdown(weight_cfg);
  const double weight_eff = flash_norm_throughput(weight_cfg, 0.117, true) / 1e6 / weight_bd.total_power();
  const auto rows = table3_baselines();
  for (std::size_t i = 2; i < rows.size(); ++i) {
    const double gain = weight_eff / rows[i].power_efficiency();
    EXPECT_GT(gain, 50.0) << rows[i].name;
    EXPECT_LT(gain, 120.0) << rows[i].name;
  }
  const auto full_bd = flash_breakdown(FlashConfig::paper_default());
  const double all_eff =
      flash_norm_throughput(FlashConfig::paper_default(), 0.117, false) / 1e6 / full_bd.total_power();
  for (std::size_t i = 2; i < rows.size(); ++i) {
    const double gain = all_eff / rows[i].power_efficiency();
    EXPECT_GT(gain, 5.0) << rows[i].name;
    EXPECT_LT(gain, 15.0) << rows[i].name;
  }
}

TEST(Memory, NttDomainStorageBlowup) {
  // The paper's intro claim: caching a 4-bit ResNet-50's weights in the NTT
  // domain costs ~23 GB, >1000x the raw weights.
  const auto storage = weight_storage(tensor::resnet50_conv_layers(), 4096, 49, 4);
  EXPECT_GT(storage.raw_bytes, 10'000'000ULL);          // ~12.7 MB of 4-bit weights
  EXPECT_LT(storage.raw_bytes, 20'000'000ULL);
  EXPECT_GT(storage.transformed_bytes, 10'000'000'000ULL);  // tens of GB
  EXPECT_GT(storage.blowup(), 1000.0);
}

TEST(Memory, SmallerRingShrinksCache) {
  const auto big = weight_storage(tensor::resnet18_conv_layers(), 4096, 49, 4);
  const auto small = weight_storage(tensor::resnet18_conv_layers(), 2048, 49, 4);
  EXPECT_GT(big.transformed_bytes, 0u);
  EXPECT_NE(big.transformed_bytes, small.transformed_bytes);
  EXPECT_EQ(big.raw_bytes, small.raw_bytes);  // raw weights don't depend on N
}

TEST(Communication, NetworkTotalsAreConsistent) {
  const std::uint64_t ct_bytes = 57344;  // 4096 coeffs x 7 B x 2 elements
  const auto r18 = encoding::plan_communication(tensor::resnet18_conv_layers(), 4096, ct_bytes);
  const auto r50 = encoding::plan_communication(tensor::resnet50_conv_layers(), 4096, ct_bytes);
  EXPECT_GT(r18.bytes_up, 0u);
  EXPECT_GT(r18.bytes_down, r18.bytes_up);  // responses outnumber uploads
  EXPECT_GT(r50.total(), r18.total());
  // Single-digit GB per inference, the Cheetah regime.
  EXPECT_LT(r50.total(), 10'000'000'000ULL);
}

TEST(Memory, TwiddleRomFavorsFft) {
  // One CSD table serves every modulus; NTT tables scale with the RNS basis.
  const auto one = twiddle_storage(4096, 1, 49, 5, 6);
  const auto three = twiddle_storage(4096, 3, 49, 5, 6);
  EXPECT_GT(one.ratio(), 5.0);
  EXPECT_NEAR(three.ntt_bytes, 3.0 * one.ntt_bytes, 1.0);
  EXPECT_EQ(three.fft_bytes, one.fft_bytes);
}

TEST(Workload, ChamSlowerThanFlash) {
  const auto layers = tensor::resnet18_conv_layers();
  const TransformWorkload w = TransformWorkload::from_network(layers, 4096, 0.12);
  const LatencyEnergy flash = flash_run(FlashConfig::paper_default(), w, WeightPath::kApproxSparse);
  const LatencyEnergy cham = cham_run(w);
  EXPECT_GT(cham.seconds / flash.seconds, 10.0);
}

}  // namespace
}  // namespace flash::accel
