// Prime generation and root-of-unity tests.
#include <gtest/gtest.h>

#include "hemath/modular.hpp"
#include "hemath/primes.hpp"

namespace flash::hemath {
namespace {

TEST(Primes, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(Primes, KnownLargePrimes) {
  EXPECT_TRUE(is_prime(998244353));            // 119 * 2^23 + 1
  EXPECT_TRUE(is_prime((u64{1} << 61) - 1));   // Mersenne
  EXPECT_FALSE(is_prime((u64{1} << 61) + 1));  // composite
  EXPECT_TRUE(is_prime(4179340454199820289ULL));  // 29 * 2^57 + 1
}

TEST(Primes, CarmichaelNumbersRejected) {
  for (u64 n : {561ULL, 1105ULL, 1729ULL, 41041ULL, 825265ULL}) {
    EXPECT_FALSE(is_prime(n)) << n;
  }
}

TEST(Primes, NextPrimeCongruent) {
  const u64 q = next_prime_congruent(100, 8);
  EXPECT_TRUE(is_prime(q));
  EXPECT_EQ(q % 8, 1u);
  EXPECT_GE(q, 100u);
}

class NttPrimeTest : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(NttPrimeTest, FindNttPrime) {
  const auto [bits, n] = GetParam();
  const u64 q = find_ntt_prime(bits, n);
  EXPECT_TRUE(is_prime(q));
  EXPECT_EQ((q - 1) % (2 * n), 0u);
  EXPECT_GE(q, u64{1} << (bits - 1));
  EXPECT_LT(q, u64{1} << bits);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttPrimeTest,
                         ::testing::Combine(::testing::Values(20, 30, 45, 59),
                                            ::testing::Values(std::size_t{256}, std::size_t{4096})));

TEST(Primes, FindNttPrimesDistinct) {
  const auto primes = find_ntt_primes(30, 1024, 4);
  ASSERT_EQ(primes.size(), 4u);
  for (std::size_t i = 0; i < primes.size(); ++i) {
    EXPECT_TRUE(is_prime(primes[i]));
    EXPECT_EQ((primes[i] - 1) % 2048, 0u);
    for (std::size_t j = i + 1; j < primes.size(); ++j) EXPECT_NE(primes[i], primes[j]);
  }
}

TEST(Primes, PrimitiveRootHasFullOrder) {
  for (u64 q : {17ULL, 97ULL, 998244353ULL}) {
    const u64 g = primitive_root(q);
    // g^((q-1)/p) != 1 for every prime factor p of q-1; spot-check halves.
    EXPECT_NE(pow_mod(g, (q - 1) / 2, q), 1u);
    EXPECT_EQ(pow_mod(g, q - 1, q), 1u);
  }
}

TEST(Primes, RootOfUnityExactOrder) {
  const u64 q = find_ntt_prime(30, 512);
  const u64 m = 1024;  // 2N
  const u64 w = root_of_unity(q, m);
  EXPECT_EQ(pow_mod(w, m, q), 1u);
  EXPECT_NE(pow_mod(w, m / 2, q), 1u);  // primitive: order exactly m
}

TEST(Primes, RootOfUnityRejectsBadOrder) {
  EXPECT_THROW(root_of_unity(17, 5), std::invalid_argument);  // 5 does not divide 16
}

TEST(Primes, FindNttPrimeRejectsBadArgs) {
  EXPECT_THROW(find_ntt_prime(3, 1024), std::invalid_argument);
  EXPECT_THROW(find_ntt_prime(30, 1000), std::invalid_argument);  // not a power of two
}

}  // namespace
}  // namespace flash::hemath
