// End-to-end quantized network with injectable convolution executors:
// cleartext vs hybrid HE/2PC equivalence over the full stack.
#include <gtest/gtest.h>

#include <random>

#include "core/flash_accelerator.hpp"
#include "tensor/network.hpp"
#include "tensor/quant.hpp"

namespace flash {
namespace {

TEST(SmallQuantNet, FeatureShapesAndDeterminism) {
  std::mt19937_64 rng(1);
  const auto net = tensor::SmallQuantNet::random(3, 8, 2, 10, 6, 4, 4, rng);
  const tensor::Tensor3 x = tensor::random_activations(3, 6, 6, 4, rng);
  const auto conv = tensor::reference_conv();
  const tensor::Tensor3 f = net.features(x, conv);
  EXPECT_EQ(f.channels(), 8u);
  EXPECT_EQ(f.height(), 6u);
  EXPECT_EQ(net.predict(x, conv), net.predict(x, conv));
  for (tensor::i64 v : f.data()) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, tensor::quant_max(4));
  }
}

TEST(SmallQuantNet, HeadSizeMismatchThrows) {
  std::mt19937_64 rng(2);
  auto net = tensor::SmallQuantNet::random(3, 8, 1, 10, 6, 4, 4, rng);
  const tensor::Tensor3 wrong = tensor::random_activations(3, 8, 8, 4, rng);  // 8x8 vs head 6x6
  EXPECT_THROW(net.predict(wrong, tensor::reference_conv()), std::invalid_argument);
}

TEST(SmallQuantNet, PrivateInferenceMatchesCleartext) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  core::FlashOptions options;
  options.backend = bfv::PolyMulBackend::kApproxFft;
  options.approx_config = core::high_accuracy_approx_config(params.n, params.t);
  core::FlashAccelerator acc(params, options);

  std::mt19937_64 rng(3);
  const auto net = tensor::SmallQuantNet::random(3, 6, 2, 8, 6, 4, 4, rng);
  const auto reference = tensor::reference_conv();
  auto private_conv = acc.hconv_executor();

  for (int s = 0; s < 2; ++s) {
    const tensor::Tensor3 x = tensor::random_activations(3, 6, 6, 4, rng);
    const tensor::Tensor3 ref_features = net.features(x, reference);
    const tensor::Tensor3 got_features = net.features(x, private_conv);
    EXPECT_EQ(got_features.data(), ref_features.data()) << "sample " << s;
    EXPECT_EQ(net.predict(x, private_conv), net.predict(x, reference)) << "sample " << s;
  }
}

TEST(SmallQuantNet, NttBackendAlsoExact) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  core::FlashOptions options;
  options.backend = bfv::PolyMulBackend::kNtt;
  core::FlashAccelerator acc(params, options);
  std::mt19937_64 rng(4);
  const auto net = tensor::SmallQuantNet::random(2, 4, 1, 6, 6, 4, 4, rng);
  const tensor::Tensor3 x = tensor::random_activations(2, 6, 6, 4, rng);
  EXPECT_EQ(net.predict(x, acc.hconv_executor()), net.predict(x, tensor::reference_conv()));
}

TEST(LayerStack, FromQuantNetMatchesSmallQuantNet) {
  std::mt19937_64 rng(7);
  const auto net = tensor::SmallQuantNet::random(2, 4, 2, 5, 6, 4, 4, rng);
  const tensor::Tensor3 x = tensor::random_activations(2, 6, 6, 4, rng);
  const auto stack = tensor::LayerStack::from_quant_net(net);
  // stem + 2 x (c1, c2, join) + FC
  ASSERT_EQ(stack.layers.size(), 8u);

  std::vector<tensor::Tensor3> outputs;
  const tensor::NetworkResult result =
      stack.forward(x, tensor::LayerStack::reference_executor(), &outputs);
  EXPECT_EQ(outputs.size(), stack.layers.size());
  EXPECT_EQ(result.features, net.features(x, tensor::reference_conv()));
  ASSERT_TRUE(result.has_logits);
  ASSERT_EQ(result.logits.size(), 5u);
  // Argmax of the stack's logits is SmallQuantNet's prediction.
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < result.logits.size(); ++i) {
    if (result.logits[i] > result.logits[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, net.predict(x, tensor::reference_conv()));
  // The recorded FC output is the logits as a 1x1xF tensor.
  EXPECT_EQ(outputs.back().data(), result.logits);
}

TEST(LayerStack, ShapeChainAndValidation) {
  tensor::NetLayer conv;
  conv.weights = tensor::Tensor4(4, 2, 3, 1);  // rect kernel
  conv.stride = 2;
  conv.pad = 1;
  const tensor::Shape3 out =
      tensor::LayerStack::layer_output_shape({2, 7, 7}, conv);
  EXPECT_EQ(out.c, 4u);
  EXPECT_EQ(out.h, (7 + 2 - 3) / 2 + 1);
  EXPECT_EQ(out.w, (7 + 2 - 1) / 2 + 1);
  // Channel mismatch throws.
  EXPECT_THROW(tensor::LayerStack::layer_output_shape({3, 7, 7}, conv), std::invalid_argument);
  // FC weight-size mismatch throws.
  tensor::NetLayer fc;
  fc.kind = tensor::NetLayer::Kind::kFullyConnected;
  fc.fc_out = 3;
  fc.fc_weights.assign(5, 1);
  EXPECT_THROW(tensor::LayerStack::layer_output_shape({1, 2, 2}, fc), std::invalid_argument);
  // Unsaved residual source throws at forward time.
  tensor::LayerStack bad;
  tensor::NetLayer join;
  join.kind = tensor::NetLayer::Kind::kResidualAdd;
  bad.layers.push_back(join);
  EXPECT_THROW(bad.forward(tensor::Tensor3(1, 2, 2), tensor::LayerStack::reference_executor()),
               std::invalid_argument);
}

TEST(LayerStack, Resnet18LikeGeometry) {
  std::mt19937_64 rng(11);
  const auto stack = tensor::LayerStack::resnet18_like(/*in_c=*/3, /*width=*/4, /*spatial=*/8,
                                                       /*classes=*/4, 4, 4, rng);
  // stem + 2 blocks (3 layers each) + downsample + 2 blocks + FC.
  ASSERT_EQ(stack.layers.size(), 1 + 6 + 1 + 6 + 1);

  const tensor::Tensor3 x = tensor::random_activations(3, 8, 8, 4, rng);
  std::vector<tensor::Tensor3> outputs;
  const tensor::NetworkResult result =
      stack.forward(x, tensor::LayerStack::reference_executor(), &outputs);
  // Stage 1 preserves 4 x 8 x 8; the downsample halves spatial and doubles
  // channels; stage 2 preserves 8 x 4 x 4.
  EXPECT_EQ(outputs[0].channels(), 4u);
  EXPECT_EQ(outputs[0].height(), 8u);
  EXPECT_EQ(result.features.channels(), 8u);
  EXPECT_EQ(result.features.height(), 4u);
  ASSERT_TRUE(result.has_logits);
  EXPECT_EQ(result.logits.size(), 4u);
  // Activations stay inside the 4-bit post-op range through the whole net.
  for (tensor::i64 v : result.features.data()) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, tensor::quant_max(4));
  }
  // Deterministic in the seed.
  std::mt19937_64 rng2(11);
  const auto again = tensor::LayerStack::resnet18_like(3, 4, 8, 4, 4, 4, rng2);
  EXPECT_EQ(again.layers.size(), stack.layers.size());
  EXPECT_EQ(again.layers[0].weights.data(), stack.layers[0].weights.data());
}

}  // namespace
}  // namespace flash
