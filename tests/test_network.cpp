// End-to-end quantized network with injectable convolution executors:
// cleartext vs hybrid HE/2PC equivalence over the full stack.
#include <gtest/gtest.h>

#include <random>

#include "core/flash_accelerator.hpp"
#include "tensor/network.hpp"
#include "tensor/quant.hpp"

namespace flash {
namespace {

TEST(SmallQuantNet, FeatureShapesAndDeterminism) {
  std::mt19937_64 rng(1);
  const auto net = tensor::SmallQuantNet::random(3, 8, 2, 10, 6, 4, 4, rng);
  const tensor::Tensor3 x = tensor::random_activations(3, 6, 6, 4, rng);
  const auto conv = tensor::reference_conv();
  const tensor::Tensor3 f = net.features(x, conv);
  EXPECT_EQ(f.channels(), 8u);
  EXPECT_EQ(f.height(), 6u);
  EXPECT_EQ(net.predict(x, conv), net.predict(x, conv));
  for (tensor::i64 v : f.data()) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, tensor::quant_max(4));
  }
}

TEST(SmallQuantNet, HeadSizeMismatchThrows) {
  std::mt19937_64 rng(2);
  auto net = tensor::SmallQuantNet::random(3, 8, 1, 10, 6, 4, 4, rng);
  const tensor::Tensor3 wrong = tensor::random_activations(3, 8, 8, 4, rng);  // 8x8 vs head 6x6
  EXPECT_THROW(net.predict(wrong, tensor::reference_conv()), std::invalid_argument);
}

TEST(SmallQuantNet, PrivateInferenceMatchesCleartext) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  core::FlashOptions options;
  options.backend = bfv::PolyMulBackend::kApproxFft;
  options.approx_config = core::high_accuracy_approx_config(params.n, params.t);
  core::FlashAccelerator acc(params, options);

  std::mt19937_64 rng(3);
  const auto net = tensor::SmallQuantNet::random(3, 6, 2, 8, 6, 4, 4, rng);
  const auto reference = tensor::reference_conv();
  auto private_conv = acc.hconv_executor();

  for (int s = 0; s < 2; ++s) {
    const tensor::Tensor3 x = tensor::random_activations(3, 6, 6, 4, rng);
    const tensor::Tensor3 ref_features = net.features(x, reference);
    const tensor::Tensor3 got_features = net.features(x, private_conv);
    EXPECT_EQ(got_features.data(), ref_features.data()) << "sample " << s;
    EXPECT_EQ(net.predict(x, private_conv), net.predict(x, reference)) << "sample " << s;
  }
}

TEST(SmallQuantNet, NttBackendAlsoExact) {
  const bfv::BfvParams params = bfv::BfvParams::create(1024, 18, 46);
  core::FlashOptions options;
  options.backend = bfv::PolyMulBackend::kNtt;
  core::FlashAccelerator acc(params, options);
  std::mt19937_64 rng(4);
  const auto net = tensor::SmallQuantNet::random(2, 4, 1, 6, 6, 4, 4, rng);
  const tensor::Tensor3 x = tensor::random_activations(2, 6, 6, 4, rng);
  EXPECT_EQ(net.predict(x, acc.hconv_executor()), net.predict(x, tensor::reference_conv()));
}

}  // namespace
}  // namespace flash
