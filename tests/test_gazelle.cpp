// The GAZELLE rotation-based matvec baseline: correctness and the rotation
// count Cheetah/FLASH coefficient encoding eliminates.
#include <gtest/gtest.h>

#include <random>

#include "protocol/gazelle_matvec.hpp"
#include "protocol/hconv_protocol.hpp"
#include "tensor/conv.hpp"

namespace flash::protocol {
namespace {

bfv::BfvParams gazelle_params() { return bfv::BfvParams::create_batching(1024, 14, 60); }

TEST(Gazelle, MatVecMatchesLinear) {
  bfv::BfvContext ctx(gazelle_params());
  const std::size_t in_f = 32, out_f = 16;
  GazelleMatVec gz(ctx, in_f, out_f, 41);
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<i64> wdist(-7, 7), xdist(0, 15);
  std::vector<i64> w(in_f * out_f), x(in_f);
  for (auto& v : w) v = wdist(rng);
  for (auto& v : x) v = xdist(rng);
  const auto result = gz.run(x, w);
  EXPECT_EQ(result.y, tensor::linear(x, w, out_f));
}

TEST(Gazelle, RotationCountIsDiagonalCount) {
  bfv::BfvContext ctx(gazelle_params());
  const std::size_t in_f = 16, out_f = 16;
  GazelleMatVec gz(ctx, in_f, out_f, 42);
  std::mt19937_64 rng(2);
  std::vector<i64> w(in_f * out_f), x(in_f, 1);
  for (auto& v : w) v = static_cast<i64>(rng() % 13) - 6;
  const auto result = gz.run(x, w);
  // Dense W: one rotation per nonzero diagonal except d = 0.
  EXPECT_EQ(result.rotations, in_f - 1);
  EXPECT_EQ(result.plain_mults, in_f);
  EXPECT_EQ(result.y, tensor::linear(x, w, out_f));
}

TEST(Gazelle, SparseDiagonalsAreSkipped) {
  bfv::BfvContext ctx(gazelle_params());
  const std::size_t in_f = 16, out_f = 16;
  GazelleMatVec gz(ctx, in_f, out_f, 43);
  // Only the main diagonal and diagonal 3 are nonzero.
  std::vector<i64> w(in_f * out_f, 0);
  for (std::size_t j = 0; j < out_f; ++j) {
    w[j * in_f + j] = 2;
    w[j * in_f + (j + 3) % in_f] = -1;
  }
  std::mt19937_64 rng(3);
  std::vector<i64> x(in_f);
  for (auto& v : x) v = static_cast<i64>(rng() % 16);
  const auto result = gz.run(x, w);
  EXPECT_EQ(result.rotations, 1u);  // only d = 3 needs a rotation
  EXPECT_EQ(result.plain_mults, 2u);
  EXPECT_EQ(result.y, tensor::linear(x, w, out_f));
}

TEST(Gazelle, RejectsOversizedInputs) {
  bfv::BfvContext ctx(gazelle_params());
  EXPECT_THROW(GazelleMatVec(ctx, 512, 512, 44), std::invalid_argument);  // 2*512 > 512
  EXPECT_THROW(GazelleMatVec(ctx, 16, 32, 45), std::invalid_argument);    // out > in
}

TEST(Gazelle, CheetahAvoidsAllRotations) {
  // The comparison FLASH's Table I is about: the same matvec through the
  // coefficient encoding performs zero rotations.
  bfv::BfvContext ctx(gazelle_params());
  const std::size_t in_f = 32, out_f = 16;
  GazelleMatVec gz(ctx, in_f, out_f, 46);
  std::mt19937_64 rng(4);
  std::vector<i64> w(in_f * out_f), x(in_f);
  for (auto& v : w) v = static_cast<i64>(rng() % 13) - 6;
  for (auto& v : x) v = static_cast<i64>(rng() % 16);
  const auto gz_result = gz.run(x, w);
  EXPECT_GT(gz_result.rotations, 0u);

  HConvProtocol cheetah(ctx, bfv::PolyMulBackend::kNtt, std::nullopt, 47);
  const auto ch_result = cheetah.run_matvec(x, w, out_f);
  EXPECT_EQ(ch_result.reconstruct(ctx.params().t), gz_result.y);
  // Coefficient encoding: no Galois keys, no rotations, by construction.
}

}  // namespace
}  // namespace flash::protocol
