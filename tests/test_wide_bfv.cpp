// Wide-modulus (RNS) BFV at Cheetah-scale parameters: Q beyond 64 bits,
// limb-wise NTT arithmetic, protocol-subset correctness.
#include <gtest/gtest.h>

#include <random>

#include "bfv/wide.hpp"
#include "hemath/ntt.hpp"

namespace flash::bfv {
namespace {

WideBfvParams cheetah_scale() { return WideBfvParams::create(1024, 20, {45, 45}); }

TEST(WideBfv, ModulusExceedsSingleWord) {
  const WideBfvParams p = cheetah_scale();
  EXPECT_GT(p.big_q(), hemath::u128{0xFFFFFFFFFFFFFFFF});
  EXPECT_GT(p.noise_ceiling_bits(), 60.0);  // huge headroom vs single-word q
}

TEST(WideBfv, EncryptDecryptRoundTrip) {
  WideBfv he(cheetah_scale(), 2026);
  std::mt19937_64 rng(1);
  std::vector<i64> values(1024);
  for (auto& v : values) v = static_cast<i64>(rng() % 100001) - 50000;
  const WideCiphertext ct = he.encrypt(values);
  EXPECT_EQ(he.decrypt(ct), values);
  EXPECT_GT(he.invariant_noise_budget(ct), 50.0);
}

TEST(WideBfv, ProtocolSubset) {
  // Enc({x}^C) ⊞ {x}^S ⊠ w ⊟ mask — the whole hybrid flow at wide modulus.
  WideBfv he(cheetah_scale(), 7);
  const auto& p = he.params();
  std::mt19937_64 rng(2);
  std::vector<i64> x_client(p.n), x_server(p.n), x(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    x[i] = static_cast<i64>(rng() % 16);
    const u64 share = rng() % p.t;
    x_client[i] = hemath::to_signed(share, p.t);
    x_server[i] = hemath::to_signed(hemath::sub_mod(hemath::from_signed(x[i], p.t), share, p.t), p.t);
  }
  std::vector<i64> w(p.n, 0);
  for (int i = 0; i < 72; ++i) w[rng() % p.n] = static_cast<i64>(rng() % 15) - 7;

  WideCiphertext ct = he.encrypt(x_client);
  he.add_plain_inplace(ct, x_server);
  WideCiphertext prod = he.multiply_plain(ct, w);
  EXPECT_GT(he.invariant_noise_budget(prod), 10.0);

  // Expected: negacyclic x (*) w mod t (signed).
  hemath::Poly px(p.t, p.n), pw(p.t, p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    px[i] = hemath::from_signed(x[i], p.t);
    pw[i] = hemath::from_signed(w[i], p.t);
  }
  const hemath::Poly expect = hemath::Poly(p.t, hemath::negacyclic_multiply_schoolbook(
                                                    p.t, px.coeffs(), pw.coeffs()));
  const std::vector<i64> got = he.decrypt(prod);
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(hemath::from_signed(got[i], p.t), expect[i]) << i;
  }
}

TEST(WideBfv, HomomorphicAccumulation) {
  WideBfv he(cheetah_scale(), 9);
  const auto& p = he.params();
  std::vector<i64> a(p.n, 3), b(p.n, 4);
  WideCiphertext ca = he.encrypt(a);
  const WideCiphertext cb = he.encrypt(b);
  he.add_inplace(ca, cb);
  const auto got = he.decrypt(ca);
  for (i64 v : got) EXPECT_EQ(v, 7);
}

TEST(WideBfv, SubPlainMasking) {
  WideBfv he(cheetah_scale(), 10);
  const auto& p = he.params();
  std::mt19937_64 rng(3);
  std::vector<i64> x(p.n), mask(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    x[i] = static_cast<i64>(rng() % 1000);
    mask[i] = hemath::to_signed(rng() % p.t, p.t);
  }
  WideCiphertext ct = he.encrypt(x);
  he.sub_plain_inplace(ct, mask);
  const auto got = he.decrypt(ct);
  for (std::size_t i = 0; i < p.n; ++i) {
    const u64 recon = hemath::add_mod(hemath::from_signed(got[i], p.t),
                                      hemath::from_signed(mask[i], p.t), p.t);
    EXPECT_EQ(recon, hemath::from_signed(x[i], p.t)) << i;
  }
}

TEST(WideBfv, RejectsBadParameters) {
  EXPECT_THROW(WideBfvParams::create(1000, 20, {45, 45}), std::invalid_argument);
  WideBfvParams p = cheetah_scale();
  p.moduli.pop_back();
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = cheetah_scale();
  p.moduli[0] += 2;  // not prime / wrong congruence
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WideBfv, ThreeLimbModulus) {
  // Q ~ 2^120 across three limbs still round-trips.
  WideBfv he(WideBfvParams::create(512, 16, {40, 40, 40}), 11);
  std::vector<i64> values(512);
  std::mt19937_64 rng(4);
  for (auto& v : values) v = static_cast<i64>(rng() % 30001) - 15000;
  EXPECT_EQ(he.decrypt(he.encrypt(values)), values);
}

}  // namespace
}  // namespace flash::bfv
