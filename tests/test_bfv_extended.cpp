// Extended BFV: ciphertext x ciphertext multiplication with
// relinearization, Galois rotations, SIMD batching, wide CRT arithmetic,
// and serialization.
#include <gtest/gtest.h>

#include <random>

#include "bfv/batch_encoder.hpp"
#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "bfv/multiply.hpp"
#include "bfv/serialization.hpp"
#include "hemath/primes.hpp"

namespace flash::bfv {
namespace {

/// Batching-capable fixture: prime t = 12289 (= 1 mod 2048), 58-bit q.
struct Fixture {
  BfvContext ctx;
  hemath::Sampler sampler;
  KeyGenerator keygen;
  SecretKey sk;
  PublicKey pk;
  Encryptor enc;
  Decryptor dec;
  Evaluator ev;

  explicit Fixture(std::uint64_t seed = 2026)
      : ctx(BfvParams::create_batching(1024, 14, 58)), sampler(seed), keygen(ctx, sampler),
        sk(keygen.secret_key()), pk(keygen.public_key(sk)), enc(ctx, sampler), dec(ctx, sk),
        ev(ctx, PolyMulBackend::kNtt) {}
};

std::vector<i64> random_values(std::size_t count, i64 lo, i64 hi, std::mt19937_64& rng) {
  std::uniform_int_distribution<i64> dist(lo, hi);
  std::vector<i64> v(count);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(WideMultiplier, ScaledProductMatchesSmallCase) {
  // With plaintext-only content (no noise), round(t/q * (Delta*a (*) b))
  // must equal a (*) b scaled by Delta... verify the primitive directly on
  // tiny polynomials against exact 128-bit arithmetic.
  Fixture f;
  const auto& p = f.ctx.params();
  WideMultiplier wide(f.ctx);

  Poly a(p.q, p.n), b(p.q, p.n);
  a[0] = 5;
  a[3] = p.q - 2;  // -2
  b[1] = 7;
  b[2] = 3;
  const Poly got = wide.scaled_product(a, b);
  // Integer product: (5 - 2X^3)(7X + 3X^2) = 35X + 15X^2 - 14X^4 - 6X^5.
  // Scaled by t/q it rounds to zero coefficients? No: inputs are raw values,
  // so result = round(t/q * c) with c tiny -> 0. Instead scale a by Delta:
  Poly a_scaled = a;
  a_scaled.scale_inplace(p.delta());
  const Poly got2 = wide.scaled_product(a_scaled, b);
  // round(t/q * Delta * c) = c for small c (Delta*t/q ~ 1).
  EXPECT_EQ(hemath::to_signed(got2[1], p.q), 35);
  EXPECT_EQ(hemath::to_signed(got2[2], p.q), 15);
  EXPECT_EQ(hemath::to_signed(got2[4], p.q), -14);
  EXPECT_EQ(hemath::to_signed(got2[5], p.q), -6);
  for (std::size_t i : {0u, 3u, 6u, 100u}) EXPECT_EQ(got[i], 0u) << i;
}

TEST(WideMultiplier, BasisCoversWorstCase) {
  Fixture f;
  WideMultiplier wide(f.ctx);
  // The basis must exceed 2 * N * (q/2)^2 to represent centered products.
  const auto& p = f.ctx.params();
  const double need = std::log2(static_cast<double>(p.n)) +
                      2.0 * std::log2(static_cast<double>(p.q)) - 1.0;
  double have = 0;
  for (hemath::u64 m : wide.basis().moduli()) have += std::log2(static_cast<double>(m));
  EXPECT_GT(have, need);
}

TEST(CtCtMultiply, DecryptsProductPreRelin) {
  Fixture f;
  const auto& p = f.ctx.params();
  std::mt19937_64 rng(1);
  const auto va = random_values(p.n, -5, 5, rng);
  std::vector<i64> vb(p.n, 0);
  for (int i = 0; i < 20; ++i) vb[rng() % p.n] = static_cast<i64>(rng() % 7) - 3;

  const Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  const Ciphertext cb = f.enc.encrypt(f.ctx.encode_signed(vb), f.pk);
  const Ciphertext3 prod = f.ev.multiply(ca, cb);
  const Plaintext got = f.dec.decrypt(prod);

  hemath::Poly pa(p.t, p.n), pb(p.t, p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    pa[i] = hemath::from_signed(va[i], p.t);
    pb[i] = hemath::from_signed(vb[i], p.t);
  }
  const hemath::Poly expect = hemath::multiply_schoolbook(pa, pb);
  EXPECT_EQ(got.poly, expect);
}

TEST(CtCtMultiply, RelinearizedStillDecrypts) {
  Fixture f;
  const auto& p = f.ctx.params();
  KeySwitcher switcher(f.ctx, f.sampler);
  const RelinKeys rlk = switcher.make_relin_keys(f.sk);

  std::mt19937_64 rng(2);
  const auto va = random_values(p.n, -4, 4, rng);
  std::vector<i64> vb(p.n, 0);
  for (int i = 0; i < 16; ++i) vb[rng() % p.n] = static_cast<i64>(rng() % 5) - 2;

  const Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  const Ciphertext cb = f.enc.encrypt(f.ctx.encode_signed(vb), f.pk);
  const Ciphertext prod = f.ev.multiply_relin(ca, cb, rlk);

  hemath::Poly pa(p.t, p.n), pb(p.t, p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    pa[i] = hemath::from_signed(va[i], p.t);
    pb[i] = hemath::from_signed(vb[i], p.t);
  }
  EXPECT_EQ(f.dec.decrypt(prod).poly, hemath::multiply_schoolbook(pa, pb));
  EXPECT_GT(f.dec.invariant_noise_budget(prod), 0.0);
}

TEST(CtCtMultiply, NoiseBudgetDropsPredictably) {
  Fixture f;
  KeySwitcher switcher(f.ctx, f.sampler);
  const RelinKeys rlk = switcher.make_relin_keys(f.sk);
  std::mt19937_64 rng(3);
  const auto va = random_values(f.ctx.params().n, -3, 3, rng);
  const Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  const double fresh = f.dec.invariant_noise_budget(ca);
  const Ciphertext prod = f.ev.multiply_relin(ca, ca, rlk);
  const double after = f.dec.invariant_noise_budget(prod);
  EXPECT_LT(after, fresh);
  EXPECT_GT(after, 0.0);  // one multiplication fits comfortably
}

TEST(Galois, AutomorphismOnPolynomials) {
  // (X)^g = X^g; (X^k)^g = +/- X^(kg mod N) with the negacyclic sign.
  const hemath::u64 q = 97;
  Poly a(q, 8);
  a[1] = 1;  // X
  const Poly b = apply_galois(a, 3);
  EXPECT_EQ(b[3], 1u);
  Poly c(q, 8);
  c[3] = 2;  // 2 X^3
  const Poly d = apply_galois(c, 3);  // 2 X^9 = -2 X
  EXPECT_EQ(hemath::to_signed(d[1], q), -2);
}

TEST(Galois, AutomorphismIsRingHomomorphism) {
  const std::size_t n = 64;
  const hemath::u64 q = hemath::find_ntt_prime(30, n);
  hemath::NttTables ntt(q, n);
  hemath::Sampler s(4);
  const Poly a = s.uniform_poly(q, n);
  const Poly b = s.uniform_poly(q, n);
  for (hemath::u64 g : {3ULL, 5ULL, 127ULL}) {
    const Poly lhs = apply_galois(multiply(ntt, a, b), g);
    const Poly rhs = multiply(ntt, apply_galois(a, g), apply_galois(b, g));
    EXPECT_EQ(lhs, rhs) << g;
  }
}

TEST(Batch, EncodeDecodeRoundTrip) {
  Fixture f;
  BatchEncoder encoder(f.ctx);
  std::mt19937_64 rng(5);
  const auto values = random_values(encoder.slots(), -6000, 6000, rng);
  EXPECT_EQ(encoder.decode(encoder.encode(values)), values);
}

TEST(Batch, SimdAddAndMultiply) {
  Fixture f;
  BatchEncoder encoder(f.ctx);
  KeySwitcher switcher(f.ctx, f.sampler);
  const RelinKeys rlk = switcher.make_relin_keys(f.sk);
  const auto& p = f.ctx.params();

  std::mt19937_64 rng(6);
  const auto va = random_values(encoder.slots(), -20, 20, rng);
  const auto vb = random_values(encoder.slots(), -20, 20, rng);
  const Ciphertext ca = f.enc.encrypt(encoder.encode(va), f.pk);
  const Ciphertext cb = f.enc.encrypt(encoder.encode(vb), f.pk);

  Ciphertext sum = ca;
  f.ev.add_inplace(sum, cb);
  const auto got_sum = encoder.decode(f.dec.decrypt(sum));
  const auto got_prod = encoder.decode(f.dec.decrypt(f.ev.multiply_relin(ca, cb, rlk)));
  for (std::size_t i = 0; i < encoder.slots(); ++i) {
    EXPECT_EQ(got_sum[i], va[i] + vb[i]) << i;
    const i64 expect = hemath::to_signed(
        hemath::mul_mod(hemath::from_signed(va[i], p.t), hemath::from_signed(vb[i], p.t), p.t), p.t);
    EXPECT_EQ(got_prod[i], expect) << i;
  }
}

TEST(Batch, RotationPermutesSlots) {
  Fixture f;
  BatchEncoder encoder(f.ctx);
  KeySwitcher switcher(f.ctx, f.sampler);
  const std::size_t n = f.ctx.params().n;
  const std::vector<hemath::u64> elements = {galois_element_for_step(1, n),
                                             galois_element_row_swap(n)};
  const GaloisKeys gks = switcher.make_galois_keys(f.sk, elements);

  std::mt19937_64 rng(7);
  const auto values = random_values(encoder.slots(), -50, 50, rng);
  const Ciphertext ct = f.enc.encrypt(encoder.encode(values), f.pk);

  // Row rotation by one step.
  const auto rotated = encoder.decode(f.dec.decrypt(f.ev.rotate_rows(ct, 1, gks)));
  const auto perm = encoder.slot_permutation(galois_element_for_step(1, n));
  for (std::size_t i = 0; i < encoder.slots(); ++i) {
    EXPECT_EQ(rotated[i], values[perm[i]]) << i;
  }
  // The permutation cyclically rotates each row (rows stay separate).
  const std::size_t half = encoder.row_size();
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_LT(perm[i], half);
    EXPECT_GE(perm[i + half], half);
  }
  EXPECT_EQ(perm[0], 1u);  // slot 0 reads old slot 1: rotate left by one

  // Column swap exchanges the two rows.
  const auto swapped = encoder.decode(f.dec.decrypt(f.ev.rotate_columns(ct, gks)));
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_EQ(swapped[i], values[i + half]) << i;
    EXPECT_EQ(swapped[i + half], values[i]) << i;
  }
}

TEST(Batch, RotationsCompose) {
  // rot(a) then rot(b) == rot(a + b): the Galois keys form a group action.
  Fixture f;
  BatchEncoder encoder(f.ctx);
  KeySwitcher switcher(f.ctx, f.sampler);
  const std::size_t n = f.ctx.params().n;
  const GaloisKeys gks = switcher.make_galois_keys(
      f.sk, {galois_element_for_step(1, n), galois_element_for_step(2, n),
             galois_element_for_step(3, n)});
  std::mt19937_64 rng(17);
  std::vector<i64> values(encoder.slots());
  for (auto& v : values) v = static_cast<i64>(rng() % 101) - 50;
  const Ciphertext ct = f.enc.encrypt(encoder.encode(values), f.pk);
  const Ciphertext two_step = f.ev.rotate_rows(f.ev.rotate_rows(ct, 1, gks), 2, gks);
  const Ciphertext direct = f.ev.rotate_rows(ct, 3, gks);
  EXPECT_EQ(encoder.decode(f.dec.decrypt(two_step)), encoder.decode(f.dec.decrypt(direct)));
}

TEST(Batch, RequiresPrimeCongruentModulus) {
  BfvContext ctx(BfvParams::create(1024, 16, 45));  // power-of-two t
  EXPECT_THROW(BatchEncoder{ctx}, std::invalid_argument);
}

TEST(Serialization, RoundTrips) {
  Fixture f;
  const auto& p = f.ctx.params();
  std::mt19937_64 rng(8);
  const auto values = random_values(p.n, -100, 100, rng);
  const Plaintext pt = f.ctx.encode_signed(values);
  const Ciphertext ct = f.enc.encrypt(pt, f.pk);

  // Params.
  const Bytes pb = serialize(p);
  ByteReader pr(pb);
  const BfvParams p2 = deserialize_params(pr);
  EXPECT_EQ(p2.q, p.q);
  EXPECT_EQ(p2.t, p.t);

  // Plaintext / ciphertext.
  const Plaintext pt2 = deserialize_plaintext(f.ctx, serialize(p, pt));
  EXPECT_EQ(pt2.poly, pt.poly);
  const Ciphertext ct2 = deserialize_ciphertext(f.ctx, serialize(p, ct));
  EXPECT_EQ(f.ctx.decode_signed(f.dec.decrypt(ct2)), values);

  // Keys.
  const SecretKey sk2 = deserialize_secret_key(f.ctx, serialize(p, f.sk));
  EXPECT_EQ(sk2.s, f.sk.s);
  const PublicKey pk2 = deserialize_public_key(f.ctx, serialize(p, f.pk));
  EXPECT_EQ(pk2.p1, f.pk.p1);

  KeySwitcher switcher(f.ctx, f.sampler);
  const RelinKeys rlk = switcher.make_relin_keys(f.sk);
  const KeySwitchKey ksk2 = deserialize_key_switch_key(f.ctx, serialize(p, rlk.key));
  EXPECT_EQ(ksk2.digits(), rlk.key.digits());
  EXPECT_EQ(ksk2.k0[0], rlk.key.k0[0]);
}

TEST(Serialization, RejectsCorruption) {
  Fixture f;
  const auto& p = f.ctx.params();
  const Ciphertext ct = f.enc.encrypt(f.ctx.encode_signed({1, 2, 3}), f.pk);
  Bytes bytes = serialize(p, ct);

  Bytes truncated(bytes.begin(), bytes.begin() + bytes.size() / 2);
  EXPECT_THROW(deserialize_ciphertext(f.ctx, truncated), std::runtime_error);

  Bytes bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(deserialize_ciphertext(f.ctx, bad_magic), std::runtime_error);

  // Wrong type tag: a plaintext buffer fed to the ciphertext loader.
  const Bytes ptb = serialize(p, f.ctx.encode_signed({4}));
  EXPECT_THROW(deserialize_ciphertext(f.ctx, ptb), std::runtime_error);

  // Out-of-range coefficient.
  Bytes tampered = bytes;
  // Header is 8 + 1 + 24 bytes; then poly modulus (8) + degree (8) + coeffs.
  const std::size_t first_coeff = 8 + 1 + 24 + 16;
  for (int i = 0; i < 8; ++i) tampered[first_coeff + i] = 0xff;
  EXPECT_THROW(deserialize_ciphertext(f.ctx, tampered), std::runtime_error);
}

}  // namespace
}  // namespace flash::bfv
