// Matrix-vector (FC layer) encoding and the merged lazy-materialization
// sparse-FFT executor.
#include <gtest/gtest.h>

#include <random>

#include "encoding/matvec.hpp"
#include "fft/complex_fft.hpp"
#include "sparsefft/executor.hpp"
#include "tensor/conv.hpp"

namespace flash {
namespace {

using tensor::i64;

std::vector<i64> random_vec(std::size_t n, i64 lo, i64 hi, std::mt19937_64& rng) {
  std::uniform_int_distribution<i64> dist(lo, hi);
  std::vector<i64> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

class MatVecShapes : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(MatVecShapes, MatchesDirectLinear) {
  const auto [n, in_f, out_f] = GetParam();
  std::mt19937_64 rng(in_f * 131 + out_f);
  const auto w = random_vec(in_f * out_f, -7, 7, rng);
  const auto x = random_vec(in_f, -7, 7, rng);
  const auto got = encoding::matvec_via_encoding(w, x, out_f, n);
  const auto expect = tensor::linear(x, w, out_f);
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatVecShapes,
    ::testing::Values(std::make_tuple(std::size_t{64}, std::size_t{8}, std::size_t{8}),
                      std::make_tuple(std::size_t{64}, std::size_t{64}, std::size_t{3}),
                      std::make_tuple(std::size_t{128}, std::size_t{10}, std::size_t{50}),
                      std::make_tuple(std::size_t{1024}, std::size_t{512}, std::size_t{10}),
                      std::make_tuple(std::size_t{256}, std::size_t{7}, std::size_t{100})));

TEST(MatVec, ChunkingCoversAllRows) {
  encoding::MatVecEncoder enc(128, 10, 50);
  EXPECT_EQ(enc.rows_per_poly(), 12u);
  EXPECT_EQ(enc.poly_count(), 5u);  // ceil(50/12)
  std::size_t rows = 0;
  for (std::size_t c = 0; c < enc.poly_count(); ++c) rows += enc.output_positions(c).size();
  EXPECT_EQ(rows, 50u);
}

TEST(MatVec, RejectsBadShapes) {
  EXPECT_THROW(encoding::MatVecEncoder(64, 65, 1), std::invalid_argument);
  EXPECT_THROW(encoding::MatVecEncoder(64, 0, 1), std::invalid_argument);
  EXPECT_THROW(encoding::MatVecEncoder(64, 8, 0), std::invalid_argument);
}

TEST(MatVec, ResNetFcHead) {
  // The ResNet-50 FC head: 2048 -> 1000 over N = 4096 polynomials.
  encoding::MatVecEncoder enc(4096, 2048, 1000);
  EXPECT_EQ(enc.rows_per_poly(), 2u);
  EXPECT_EQ(enc.poly_count(), 500u);
  std::mt19937_64 rng(9);
  const auto w = random_vec(2048 * 4, -7, 7, rng);  // 4 rows suffice for the check
  const auto x = random_vec(2048, 0, 15, rng);
  EXPECT_EQ(encoding::matvec_via_encoding(w, x, 4, 4096), tensor::linear(x, w, 4));
}

// --- merged executor --------------------------------------------------------

std::vector<fft::cplx> sparse_input(const sparsefft::SparsityPattern& p, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  std::vector<fft::cplx> a(p.size(), {0.0, 0.0});
  for (std::size_t i : p.nonzeros()) a[i] = {dist(rng), dist(rng)};
  return a;
}

class MergedExecutor : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MergedExecutor, MatchesDenseAndCountsMergedMults) {
  const auto [m, nnz] = GetParam();
  std::mt19937_64 rng(m * 7 + nnz);
  std::vector<std::size_t> pos;
  for (std::size_t i = 0; i < nnz; ++i) pos.push_back(rng() % m);
  const sparsefft::SparsityPattern pattern(m, std::move(pos));
  const sparsefft::SparseFftPlan plan(m, pattern);
  const auto input = sparse_input(pattern, rng);

  std::uint64_t mults = 0;
  const auto merged = sparsefft::execute_merged(plan, input, &mults);
  auto dense = input;
  fft::FftPlan(m, +1).forward(dense);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(merged[i].real(), dense[i].real(), 1e-8) << i;
    EXPECT_NEAR(merged[i].imag(), dense[i].imag(), 1e-8) << i;
  }
  // The lazy executor issues exactly the planner's merged multiplication
  // count — the numbers behind Fig. 11(a) correspond to real executions.
  EXPECT_EQ(mults, plan.cost().merged_mults);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MergedExecutor,
    ::testing::Combine(::testing::Values(std::size_t{16}, std::size_t{64}, std::size_t{512},
                                         std::size_t{2048}),
                       ::testing::Values(std::size_t{1}, std::size_t{9}, std::size_t{72})));

TEST(MergedExecutorSpecial, SingleElementIssuesAboutMMults) {
  const std::size_t m = 1024;
  const sparsefft::SparsityPattern p(m, {6});
  const sparsefft::SparseFftPlan plan(m, p);
  std::mt19937_64 rng(10);
  std::uint64_t mults = 0;
  const auto out = sparsefft::execute_merged(plan, sparse_input(p, rng), &mults);
  EXPECT_LE(mults, m);  // paper: (N/2)log2(N) butterflies collapse to ~N mults
  EXPECT_GT(mults, m / 4);
  auto dense = sparse_input(p, rng);
  (void)dense;
  (void)out;
}

TEST(MergedExecutorSpecial, ContiguousPatternIssuesFewMults) {
  // Example 4.1 geometry: valid data at multiples of m/4 -> pure skipping,
  // only the 4-point sub-network multiplies.
  const std::size_t m = 1024;
  std::vector<std::size_t> pos{0, m / 4, m / 2, 3 * m / 4};
  const sparsefft::SparsityPattern p(m, std::move(pos));
  const sparsefft::SparseFftPlan plan(m, p);
  std::mt19937_64 rng(11);
  std::uint64_t mults = 0;
  (void)sparsefft::execute_merged(plan, sparse_input(p, rng), &mults);
  EXPECT_LE(mults, 2u);  // the 4-point network has only trivial twiddles
}

TEST(MergedExecutorSpecial, DensePatternIssuesDenseMults) {
  const std::size_t m = 64;
  std::vector<std::size_t> all(m);
  for (std::size_t i = 0; i < m; ++i) all[i] = i;
  const sparsefft::SparsityPattern p(m, std::move(all));
  const sparsefft::SparseFftPlan plan(m, p);
  std::mt19937_64 rng(12);
  std::uint64_t mults = 0;
  (void)sparsefft::execute_merged(plan, sparse_input(p, rng), &mults);
  EXPECT_EQ(mults, sparsefft::SparseFftPlan::dense_cost(m).merged_mults);
}

}  // namespace
}  // namespace flash
