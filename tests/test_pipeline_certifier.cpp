// Pipeline certifier vs the real pipeline (a differential property tier).
//
// The certificates (analysis/pipeline_certifier.hpp) are only worth trusting
// if they are *sound against execution*: this suite replays generator-corpus
// conv workloads through the actual secret-share + encrypt + conv + decrypt
// pipeline and checks that
//
//   1. the certified noise bound dominates the measured invariant noise on
//      every corpus case, for random activations AND for the certifier's own
//      adversarial witness input;
//   2. the committed benchmark configurations prove end to end (the same
//      obligation CERT_baseline.json pins for CI);
//   3. on a deliberately under-budgeted parameter set the verdict is
//      failure-possible and replaying the emitted witness through the real
//      protocol *actually corrupts decryption* (decrypted values diverge
//      from the exact mod-t negacyclic reference), while the proven
//      parameter set decrypts the very same adversarial input exactly;
//   4. the ConvServer registration gate and the DSE SafetyCache consume the
//      verdicts as specified (kWarn/kEnforce policies, pipeline obligation).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <random>
#include <vector>

#include "bfv/context.hpp"
#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "core/flash_accelerator.hpp"
#include "dse/cost_model.hpp"
#include "dse/error_model.hpp"
#include "dse/safety.hpp"
#include "dse/space.hpp"
#include "encoding/encoder.hpp"
#include "hemath/sampler.hpp"
#include "protocol/plan_certificate.hpp"
#include "serve/conv_server.hpp"
#include "tensor/tensor.hpp"
#include "testing/generators.hpp"

namespace {

using flash::hemath::i64;
using flash::hemath::u64;

struct Replay {
  double noise_bits = 0;         // worst output channel, ceiling - budget
  bool values_match_ref = true;  // decrypted poly == exact mod-t reference
};

/// Exact mod-t negacyclic product accumulator: ref += a * b over
/// Z_t[X]/(X^n+1), a in [0,t), b signed. Products fit i64 comfortably at the
/// sizes this suite replays (n <= 4096, t <= 2^20, |b| small).
void accumulate_negacyclic_ref(std::vector<i64>& ref, const std::vector<i64>& a,
                               const std::vector<i64>& b, u64 t) {
  const std::size_t n = a.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (b[j] == 0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = i + j;
      const i64 term = a[i] * b[j];
      if (k < n) {
        ref[k] = (ref[k] + term) % static_cast<i64>(t);
      } else {
        ref[k - n] = (ref[k - n] - term) % static_cast<i64>(t);
      }
    }
  }
}

/// Run one stride-1 HConv unit through the real share/encrypt/conv/decrypt
/// pipeline and report the measured invariant noise plus value correctness
/// against the exact mod-t reference. `witness_input` replaces the random
/// activation with the certifier's adversarial all-(t/2) pattern.
Replay replay_unit(const flash::bfv::BfvParams& params, flash::bfv::PolyMulBackend backend,
                   const std::optional<flash::fft::FxpFftConfig>& cfg,
                   const flash::tensor::Tensor4& wts, std::size_t H, std::size_t W,
                   std::uint64_t seed, bool witness_input) {
  namespace bfv = flash::bfv;
  flash::bfv::BfvContext ctx(params);
  flash::hemath::Sampler sampler(seed);
  bfv::KeyGenerator keygen(ctx, sampler);
  const auto sk = keygen.secret_key();
  const auto pk = keygen.public_key(sk);
  bfv::Decryptor dec(ctx, sk);
  bfv::Evaluator ev(ctx, backend, cfg);
  const std::size_t C = wts.in_channels(), M = wts.out_channels(), K = wts.kernel_h();

  flash::hemath::Sampler data_sampler(seed ^ 0x517cc1b727220a95ULL);
  flash::encoding::ConvEncoder enc(params.n, C, H, W, K);
  const std::size_t tiles = enc.geometry().channel_tiles();

  // Secret-share the activation: x = x_c + x_s (mod t), client half
  // encrypted, server half added as plaintext.
  flash::tensor::Tensor3 x(C, H, W), x_c(C, H, W), x_s(C, H, W);
  for (auto& v : x.data()) {
    v = witness_input ? static_cast<i64>(params.t / 2)
                      : static_cast<i64>(data_sampler.uniform_mod(256));
  }
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    const u64 mc = data_sampler.uniform_mod(params.t);
    x_c.data()[i] = static_cast<i64>(mc);
    x_s.data()[i] = static_cast<i64>(
        (static_cast<u64>(x.data()[i]) + params.t - mc) % params.t);
  }

  std::vector<bfv::Ciphertext> cts;
  std::vector<std::vector<i64>> x_polys(tiles);  // recombined, mod t
  for (std::size_t tile = 0; tile < tiles; ++tile) {
    bfv::Plaintext pt = ctx.make_plaintext();
    const auto cc = enc.encode_activation(x_c, tile);
    for (std::size_t i = 0; i < params.n; ++i) {
      pt.poly[i] = static_cast<u64>(cc[i]) % params.t;
    }
    flash::hemath::Sampler enc_sampler(seed + 77 + tile);
    bfv::Encryptor encr(ctx, enc_sampler);
    cts.push_back(encr.encrypt(pt, pk));

    bfv::Plaintext ps = ctx.make_plaintext();
    const auto sc = enc.encode_activation(x_s, tile);
    for (std::size_t i = 0; i < params.n; ++i) {
      ps.poly[i] = static_cast<u64>(sc[i]) % params.t;
    }
    ev.add_plain_inplace(cts.back(), ps);

    x_polys[tile].resize(params.n);
    for (std::size_t i = 0; i < params.n; ++i) {
      x_polys[tile][i] =
          static_cast<i64>((pt.poly[i] + ps.poly[i]) % params.t);
    }
  }
  std::vector<bfv::Evaluator::CiphertextSpectrum> specs;
  specs.reserve(cts.size());
  for (auto& ct : cts) specs.push_back(ev.transform_ciphertext(ct));

  Replay out;
  double worst_budget = 1e300;
  for (std::size_t m = 0; m < M; ++m) {
    bfv::Evaluator::CiphertextAccumulator accum;
    std::vector<i64> ref(params.n, 0);
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      bfv::Plaintext pt = ctx.make_plaintext();
      const auto coeffs = enc.encode_weight(wts, m, tile);
      std::vector<i64> w_signed(params.n);
      for (std::size_t i = 0; i < params.n; ++i) {
        pt.poly[i] = flash::hemath::from_signed(coeffs[i], params.t);
        w_signed[i] = coeffs[i];
      }
      ev.multiply_accumulate(specs[tile], ev.transform_plain(pt), accum);
      accumulate_negacyclic_ref(ref, x_polys[tile], w_signed, params.t);
    }
    bfv::Ciphertext acc = ev.finalize(accum);
    worst_budget = std::min(worst_budget, dec.invariant_noise_budget(acc));

    const bfv::Plaintext decoded = dec.decrypt(acc);
    for (std::size_t i = 0; i < params.n; ++i) {
      const u64 want =
          static_cast<u64>(((ref[i] % static_cast<i64>(params.t)) + static_cast<i64>(params.t)) %
                           static_cast<i64>(params.t));
      if (decoded.poly[i] % params.t != want) {
        out.values_match_ref = false;
        break;
      }
    }
  }
  out.noise_bits = params.noise_ceiling_bits() - worst_budget;
  return out;
}

flash::tensor::Tensor4 uniform_weights(std::size_t M, std::size_t C, std::size_t K, i64 max_w,
                                       std::uint64_t seed) {
  flash::tensor::Tensor4 wts(M, C, K, K);
  std::mt19937_64 rng(seed);  // flash-lint: allow(raw-rng): deterministic test fixture weights
  std::uniform_int_distribution<i64> dist(-max_w, max_w);
  for (auto& v : wts.data()) v = dist(rng);
  return wts;
}

// ---------------------------------------------------------------------------
// 1. Soundness against execution: the certified bound dominates replayed
//    noise across the generator corpus, on random and adversarial inputs.

TEST(PipelineCertifier, CertifiedBoundDominatesReplayedNoiseAcrossCorpus) {
  struct Backend {
    flash::bfv::PolyMulBackend backend;
    bool approx;
  };
  const Backend backends[] = {
      {flash::bfv::PolyMulBackend::kNtt, false},
      {flash::bfv::PolyMulBackend::kFft, false},
      {flash::bfv::PolyMulBackend::kApproxFft, true},
  };

  for (const std::uint64_t seed : {11ULL, 29ULL, 73ULL}) {
    // Stride-1, unpadded corpus draw: the whole conv is one certifier unit.
    flash::testing::ConvSpec spec;
    spec.seed = seed;
    spec.stride = 1;
    spec.pad = 0;
    const auto cse = flash::testing::make_conv_case(spec);

    for (const Backend& b : backends) {
      flash::analysis::HConvUnitDesc desc;
      desc.params = cse.params;
      desc.backend = b.backend;
      if (b.approx) {
        desc.approx_config = flash::core::high_accuracy_approx_config(cse.params.n, cse.params.t);
      }
      desc.in_c = cse.x.channels();
      desc.in_h = cse.x.height();
      desc.in_w = cse.x.width();
      desc.weights = cse.weights;
      const auto cert = flash::analysis::certify_hconv_unit(desc);

      for (const bool witness : {false, true}) {
        const Replay r = replay_unit(cse.params, b.backend, desc.approx_config, cse.weights,
                                     desc.in_h, desc.in_w, seed * 10 + 1, witness);
        EXPECT_GE(cert.certified_noise_bits, r.noise_bits)
            << cse.spec.describe() << " backend=" << static_cast<int>(b.backend)
            << " witness=" << witness;
        // A proven verdict must also mean the replay decrypted exactly.
        if (cert.verdict == flash::analysis::PipelineVerdict::kProvenCorrectDecryption) {
          EXPECT_TRUE(r.values_match_ref) << cse.spec.describe();
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2. The committed benchmark configurations prove end to end (the CI baseline
//    obligation, CERT_baseline.json, pins the same verdicts with bits).

TEST(PipelineCertifier, BenchmarkConfigsProveEndToEnd) {
  {
    const auto params = flash::bfv::BfvParams::create(4096, 20, 49);
    const auto wts = uniform_weights(8, 16, 3, 4, /*seed=*/21);
    for (const auto backend : {flash::bfv::PolyMulBackend::kNtt, flash::bfv::PolyMulBackend::kFft,
                               flash::bfv::PolyMulBackend::kApproxFft}) {
      std::optional<flash::fft::FxpFftConfig> cfg;
      if (backend == flash::bfv::PolyMulBackend::kApproxFft) {
        cfg = flash::core::high_accuracy_approx_config(params.n, params.t);
      }
      const auto cert =
          flash::protocol::certify_conv(params, backend, cfg, 16, 12, 12, wts, 1, 1);
      EXPECT_TRUE(cert.proven()) << cert.overall.detail;
      EXPECT_GT(cert.overall.margin_bits, 0.0);
    }
  }
  {
    const auto params = flash::bfv::BfvParams::create(2048, 17, 44);
    const auto wts = uniform_weights(8, 8, 3, 4, /*seed=*/22);
    const auto cert = flash::protocol::certify_conv(
        params, flash::bfv::PolyMulBackend::kApproxFft,
        flash::core::high_accuracy_approx_config(params.n, params.t), 8, 8, 8, wts, 1, 1);
    EXPECT_TRUE(cert.proven()) << cert.overall.detail;
  }
}

// ---------------------------------------------------------------------------
// 3. Witness fidelity: on the under-budgeted parameter set the verdict is
//    failure-possible and the emitted witness, replayed through the real
//    pipeline, corrupts the decrypted values; the proven parameter set
//    decrypts the same adversarial input exactly.

TEST(PipelineCertifier, UnderBudgetWitnessReplayCorruptsDecryption) {
  const auto wts = uniform_weights(8, 8, 3, 7, /*seed=*/7);
  const std::size_t H = 8, W = 8;

  const auto tight = flash::bfv::BfvParams::create(2048, 17, 30);
  flash::analysis::HConvUnitDesc desc;
  desc.params = tight;
  desc.backend = flash::bfv::PolyMulBackend::kNtt;
  desc.in_c = 8;
  desc.in_h = H;
  desc.in_w = W;
  desc.weights = wts;
  const auto cert = flash::analysis::certify_hconv_unit(desc);
  ASSERT_EQ(cert.verdict, flash::analysis::PipelineVerdict::kFailurePossibleWithWitness)
      << cert.detail;
  EXPECT_GE(cert.witness_noise_bits, cert.ceiling_bits);

  const auto witness = flash::analysis::materialize_witness(desc);
  EXPECT_EQ(witness.activation.data()[0], static_cast<i64>(tight.t / 2));

  // Replaying the witness activation through the real protocol must actually
  // break decryption, not just exceed a model bound.
  const Replay bad = replay_unit(tight, desc.backend, std::nullopt, wts, H, W,
                                 /*seed=*/5, /*witness_input=*/true);
  EXPECT_GE(bad.noise_bits, cert.ceiling_bits);
  EXPECT_FALSE(bad.values_match_ref);

  // Same workload, same adversarial input, the proven budget: exact result.
  const auto roomy = flash::bfv::BfvParams::create(2048, 17, 44);
  desc.params = roomy;
  const auto cert_ok = flash::analysis::certify_hconv_unit(desc);
  ASSERT_EQ(cert_ok.verdict, flash::analysis::PipelineVerdict::kProvenCorrectDecryption)
      << cert_ok.detail;
  const Replay good = replay_unit(roomy, desc.backend, std::nullopt, wts, H, W,
                                  /*seed=*/5, /*witness_input=*/true);
  EXPECT_TRUE(good.values_match_ref);
  EXPECT_LT(good.noise_bits, cert_ok.certified_noise_bits);
}

// ---------------------------------------------------------------------------
// 4a. ConvServer registration gate.

TEST(PipelineCertifier, ServerEnforceRejectsUncertifiedAndWarnFlags) {
  const auto tight = flash::bfv::BfvParams::create(2048, 17, 30);
  flash::bfv::BfvContext ctx(tight);

  flash::serve::PlanSpec spec;
  spec.ctx = &ctx;
  spec.backend = flash::bfv::PolyMulBackend::kNtt;
  spec.protocol_seed = 42;
  spec.weights = uniform_weights(8, 8, 3, 7, /*seed=*/7);
  spec.in_h = 8;
  spec.in_w = 8;

  {
    flash::serve::ServerOptions opt;
    opt.dispatchers = 0;  // manual mode: registration is all this test runs
    opt.certify = flash::serve::CertifyPolicy::kEnforce;
    flash::serve::ConvServer server(opt);
    EXPECT_THROW(server.register_plan(spec), std::invalid_argument);
    EXPECT_NE(server.metrics_json().find("\"plans_rejected_uncertified\": 1"), std::string::npos);
  }
  {
    flash::serve::ServerOptions opt;
    opt.dispatchers = 0;
    opt.certify = flash::serve::CertifyPolicy::kWarn;
    flash::serve::ConvServer server(opt);
    const auto plan = server.register_plan(spec);
    const auto cert = server.plan_certificate(plan);
    ASSERT_TRUE(cert.has_value());
    EXPECT_FALSE(cert->proven());
    const std::string json = server.metrics_json();
    EXPECT_NE(json.find("\"plans_certified_unproven\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"verdict\": \"failure-possible-with-witness\""), std::string::npos)
        << json;
  }
  {
    // A provable plan registers under kEnforce and is flagged proven.
    const auto roomy = flash::bfv::BfvParams::create(2048, 17, 44);
    flash::bfv::BfvContext ctx_ok(roomy);
    flash::serve::PlanSpec ok = spec;
    ok.ctx = &ctx_ok;
    flash::serve::ServerOptions opt;
    opt.dispatchers = 0;
    opt.certify = flash::serve::CertifyPolicy::kEnforce;
    flash::serve::ConvServer server(opt);
    const auto plan = server.register_plan(ok);
    const auto cert = server.plan_certificate(plan);
    ASSERT_TRUE(cert.has_value());
    EXPECT_TRUE(cert->proven());
    EXPECT_NE(server.metrics_json().find("\"plans_certified_proven\": 1"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// 4b. DSE SafetyCache: with a pipeline obligation attached, saturation-free
//     is no longer sufficient — the end-to-end certificate must prove too.

TEST(PipelineCertifier, SafetyCacheHonorsPipelineObligation) {
  const std::size_t n = 512;
  flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{10, 48, 2, 20});
  const auto model = flash::dse::ErrorModel::from_weight_stats(n, 18, 7.0);

  flash::dse::PipelineObligation obligation;
  obligation.params = flash::bfv::BfvParams::create(512, 12, 34);
  obligation.in_c = 2;
  obligation.in_h = 6;
  obligation.in_w = 6;
  obligation.kernel_h = 3;
  obligation.kernel_w = 3;
  obligation.max_w = 3.0;

  // The full-precision corner proves end to end.
  const auto full = space.full_precision();
  const auto cert_full = flash::dse::certify_design_point(space, model, obligation, full);
  EXPECT_EQ(cert_full.verdict, flash::analysis::PipelineVerdict::kProvenCorrectDecryption)
      << cert_full.detail;

  // The default-accuracy corner (uniform width 27, k=5) is saturation-free —
  // the transform-level safety gate admits it — but its spectrum error
  // corrupts decryption at these BFV parameters: only the obligated cache
  // rejects it.
  flash::dse::DesignPoint w27 = full;
  for (auto& w : w27.stage_widths) w = 27;
  w27.twiddle_k = 5;
  ASSERT_TRUE(flash::dse::design_point_proven_safe(space, model, w27));
  const auto cert_w27 = flash::dse::certify_design_point(space, model, obligation, w27);
  EXPECT_NE(cert_w27.verdict, flash::analysis::PipelineVerdict::kProvenCorrectDecryption);

  flash::dse::SafetyCache plain(space, model);
  flash::dse::SafetyCache obligated(space, model, obligation);
  EXPECT_TRUE(plain.proven_safe(w27));
  EXPECT_FALSE(obligated.proven_safe(w27));
  EXPECT_TRUE(obligated.proven_safe(full));

  // Mismatched ring degree is a setup error, not a silent pass.
  flash::dse::PipelineObligation wrong = obligation;
  wrong.params = flash::bfv::BfvParams::create(1024, 12, 34);
  EXPECT_THROW(flash::dse::certify_design_point(space, model, wrong, full), std::invalid_argument);
}

}  // namespace
