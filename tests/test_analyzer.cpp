// Static FXP overflow analyzer (analysis/fxp_analyzer.hpp).
//
// The load-bearing claims: shipped configurations are *proven* overflow-free,
// the PR-2 adder-saturation regression is flagged *statically* with a
// concrete witness bound, and the proofs are sound — no empirical run of the
// bit-accurate simulator may ever peak above a proven interval.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <tuple>
#include <vector>

#include "analysis/fxp_analyzer.hpp"
#include "core/flash_accelerator.hpp"
#include "dse/safety.hpp"
#include "fft/fxp_fft.hpp"
#include "fft/negacyclic.hpp"
#include "sparsefft/pattern.hpp"
#include "sparsefft/planner.hpp"

namespace {

using flash::analysis::AnalyzerOptions;
using flash::analysis::StageVerdict;

struct Table1Point {
  std::size_t n;
  std::size_t nnz;
  double max_w;
};

const Table1Point kTable1[] = {{512, 18, 7.0}, {1024, 36, 7.0}, {1024, 128, 3.0}};

flash::dse::DesignPoint uniform_point(const flash::dse::DesignSpace& space, int width, int k) {
  flash::dse::DesignPoint p;
  p.stage_widths.assign(static_cast<std::size_t>(space.stages()), width);
  p.twiddle_k = k;
  return p;
}

TEST(Analyzer, Table1ConfigsProvenOverflowFree) {
  for (const auto& t : kTable1) {
    flash::dse::DesignSpace space(t.n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
    const auto model = flash::dse::ErrorModel::from_weight_stats(t.n, t.nnz, t.max_w);
    for (auto [width, k] : {std::pair{27, 5}, {39, 18}}) {
      const auto res = flash::dse::analyze_design_point(space, model, uniform_point(space, width, k));
      EXPECT_TRUE(res.overflow_free()) << "n=" << t.n << " width=" << width;
      EXPECT_EQ(res.first_saturation_possible(), nullptr);
      EXPECT_GT(res.output_error_bound, 0.0);
      // One report per pipeline cut: input quantizer + log2(n/2) stages.
      ASSERT_EQ(res.stages.size(),
                1 + static_cast<std::size_t>(std::log2(static_cast<double>(t.n / 2))));
    }
  }
}

TEST(Analyzer, ShippedCoreConfigsProvenOverflowFree) {
  // default/high-accuracy configs are sized for a folded |z| bound of 64;
  // the matching polynomial-coefficient bound is 64/sqrt(2).
  for (std::size_t n : {512u, 2048u}) {
    for (bool high : {false, true}) {
      const auto cfg = high ? flash::core::high_accuracy_approx_config(n, 65537)
                            : flash::core::default_approx_config(n, 65537);
      AnalyzerOptions opts;
      opts.input_max_abs = 64.0 / 1.4143;
      const auto res = flash::analysis::analyze_negacyclic(n, cfg, opts);
      EXPECT_TRUE(res.overflow_free()) << "n=" << n << " high=" << high;
    }
  }
}

// Regression for the PR-2 fuzzer catch: a datapath whose butterfly adder
// saturates at the *input* fraction scale (before the requantizer's right
// shift) overflows on real weight populations. The analyzer must prove the
// current datapath safe AND flag the broken variant — statically, with a
// concrete witness bound — on the very same configs.
TEST(Analyzer, Pr2AdderSaturationVariantFlagged) {
  for (const auto& t : kTable1) {
    flash::dse::DesignSpace space(t.n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
    const auto model = flash::dse::ErrorModel::from_weight_stats(t.n, t.nnz, t.max_w);
    const auto cfg = space.to_config(uniform_point(space, 27, 5), model.input_max_abs());

    AnalyzerOptions opts;
    opts.input_max_abs = model.coefficient_max_abs();
    const auto good = flash::analysis::analyze_negacyclic(t.n, cfg, opts);
    EXPECT_TRUE(good.overflow_free());

    opts.clamp_adder_pre_requantize = true;
    const auto bug = flash::analysis::analyze_negacyclic(t.n, cfg, opts);
    EXPECT_FALSE(bug.overflow_free());
    const auto* sat = bug.first_saturation_possible();
    ASSERT_NE(sat, nullptr);
    EXPECT_EQ(sat->verdict, StageVerdict::kSaturationPossible);
    EXPECT_GE(sat->stage, 1);
    // The witness is concrete: the pre-requantize adder bound exceeds the
    // saturator limit by a margin, not by an epsilon of slop.
    EXPECT_GT(std::max(sat->adder_bound, sat->mantissa_bound), sat->sat_limit);
    EXPECT_LT(sat->guard_bits, 0);
  }
}

TEST(Analyzer, NarrowWidthsNotProvable) {
  const std::size_t n = 512;
  flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
  const auto model = flash::dse::ErrorModel::from_weight_stats(n, 18, 7.0);
  EXPECT_FALSE(flash::dse::design_point_proven_safe(space, model, uniform_point(space, 10, 2)));
  EXPECT_TRUE(flash::dse::design_point_proven_safe(space, model, space.full_precision()));
}

TEST(Analyzer, SaturationVerdictIsNotVacuous) {
  // A config the analyzer rejects must actually saturate on an in-bounds
  // input — otherwise "saturation-possible" would just mean "analysis too
  // weak". |z| = 8 needs 4 integer bits + sign; with frac 12 that is 17 bits
  // into a 14-bit word, so even the input quantizer clips.
  const std::size_t m = 64;
  const auto cfg = flash::fft::FxpFftConfig::uniform(m, 12, 14, 8);
  AnalyzerOptions opts;
  opts.input_max_abs = 8.0;
  const auto res = flash::analysis::analyze_fxp_fft(m, cfg, opts);
  ASSERT_FALSE(res.overflow_free());

  flash::fft::FxpFft fxp(m, cfg);
  flash::fft::FxpFftStats stats;
  std::vector<flash::fft::cplx> in(m, {8.0, -8.0});
  fxp.forward(in, &stats);
  EXPECT_GT(stats.saturations, 0u);
}

TEST(Analyzer, WidthWastefulStagesDetected) {
  // 30-bit words for |z| <= 1: over 20 guard bits of slack everywhere.
  const std::size_t m = 256;
  const auto cfg = flash::fft::FxpFftConfig::uniform(m, 10, 30, 8);
  AnalyzerOptions opts;
  opts.input_max_abs = 1.0;
  const auto res = flash::analysis::analyze_fxp_fft(m, cfg, opts);
  EXPECT_TRUE(res.overflow_free());
  EXPECT_EQ(res.wasteful_stages(), static_cast<int>(res.stages.size()));
  for (const auto& st : res.stages) {
    EXPECT_EQ(st.verdict, StageVerdict::kWidthWasteful);
    EXPECT_GT(st.guard_bits, 2);
  }
}

TEST(Analyzer, SparsePlanBoundsNeverExceedDense) {
  // Zero wires carry exact zeros through the sparse schedule, so per-stage
  // bounds can only shrink relative to the dense analysis of the same config.
  const std::size_t m = 128;
  const auto cfg = flash::fft::FxpFftConfig::uniform(m, 18, 24, 5);
  AnalyzerOptions opts;
  opts.input_max_abs = 4.0;

  flash::sparsefft::SparsityPattern pattern(m, {0, 3, 17, 64, 100});
  flash::sparsefft::SparseFftPlan plan(m, pattern);
  const auto sparse = flash::analysis::analyze_fxp_fft(m, cfg, plan, opts);
  const auto dense = flash::analysis::analyze_fxp_fft(m, cfg, opts);

  ASSERT_EQ(sparse.stages.size(), dense.stages.size());
  for (std::size_t i = 0; i < dense.stages.size(); ++i) {
    EXPECT_LE(sparse.stages[i].mantissa_bound, dense.stages[i].mantissa_bound * (1 + 1e-9));
  }
  EXPECT_TRUE(sparse.overflow_free());
}

TEST(Analyzer, SparsePlanProvesWhereDenseCannot) {
  // One active element never grows through the butterfly adders (every op on
  // its path is single-source), so a width that is unprovable dense is
  // provable sparse.
  const std::size_t m = 128;
  const auto cfg = flash::fft::FxpFftConfig::uniform(m, 12, 17, 5);
  AnalyzerOptions opts;
  opts.input_max_abs = 8.0;
  EXPECT_FALSE(flash::analysis::analyze_fxp_fft(m, cfg, opts).overflow_free());

  flash::sparsefft::SparsityPattern one(m, {5});
  flash::sparsefft::SparseFftPlan plan(m, one);
  EXPECT_TRUE(flash::analysis::analyze_fxp_fft(m, cfg, plan, opts).overflow_free());
}

TEST(Analyzer, RejectsMalformedConfigs) {
  auto cfg = flash::fft::FxpFftConfig::uniform(64, 18, 24, 5);
  AnalyzerOptions opts;
  cfg.stage_frac_bits.pop_back();
  EXPECT_THROW(flash::analysis::analyze_fxp_fft(64, cfg, opts), std::invalid_argument);
  cfg = flash::fft::FxpFftConfig::uniform(64, 18, 63, 5);
  EXPECT_THROW(flash::analysis::analyze_fxp_fft(64, cfg, opts), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Soundness property (the `diff` differential tier): over randomized weight
// populations AND the adversarial all-max input, the bit-accurate simulator's
// observed peak mantissas stay inside the statically proven intervals at
// every pipeline cut, and the measured spectrum error stays under the proven
// error bound.

TEST(AnalyzerDiff, EmpiricalPeaksStayWithinProvenIntervals) {
  std::mt19937_64 rng(20260806);
  for (const auto& t : kTable1) {
    flash::dse::DesignSpace space(t.n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
    const auto model = flash::dse::ErrorModel::from_weight_stats(t.n, t.nnz, t.max_w);
    for (auto [width, k] : {std::pair{27, 5}, {39, 18}}) {
      const auto point = uniform_point(space, width, k);
      const auto res = flash::dse::analyze_design_point(space, model, point);
      ASSERT_TRUE(res.overflow_free());

      const auto cfg = space.to_config(point, model.input_max_abs());
      flash::fft::FxpNegacyclicTransform fxp(t.n, cfg);
      flash::fft::FxpFftStats stats;

      std::uniform_int_distribution<std::size_t> pos(0, t.n - 1);
      std::uniform_int_distribution<int> val(-static_cast<int>(t.max_w),
                                             static_cast<int>(t.max_w));
      for (int trial = 0; trial < 60; ++trial) {
        std::vector<double> a(t.n, 0.0);
        for (std::size_t j = 0; j < t.nnz; ++j) {
          int v = val(rng);
          a[pos(rng)] = v == 0 ? 1 : v;
        }
        fxp.forward(a, &stats);
      }
      // Adversarial: every coefficient at +max_w (worst constructive fold).
      std::vector<double> dense_in(t.n, t.max_w);
      fxp.forward(dense_in, &stats);

      EXPECT_EQ(stats.saturations, 0u);
      const auto* viol = flash::analysis::first_interval_violation(res, stats);
      EXPECT_EQ(viol, nullptr)
          << "stage " << viol->stage << " peak above proven bound (n=" << t.n
          << " width=" << width << ")";
    }
  }
}

TEST(AnalyzerDiff, MeasuredSpectrumErrorUnderProvenBound) {
  const std::size_t n = 512;
  flash::dse::DesignSpace space(n / 2, flash::dse::SpaceBounds{10, 39, 2, 18});
  const auto model = flash::dse::ErrorModel::from_weight_stats(n, 18, 7.0);
  const auto point = uniform_point(space, 27, 5);
  const auto res = flash::dse::analyze_design_point(space, model, point);
  const auto cfg = space.to_config(point, model.input_max_abs());

  flash::fft::FxpNegacyclicTransform fxp(n, cfg);
  const flash::fft::NegacyclicFft exact(n);

  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::size_t> pos(0, n - 1);
  std::uniform_int_distribution<int> val(-7, 7);
  double worst = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> a(n, 0.0);
    for (int j = 0; j < 18; ++j) a[pos(rng)] = val(rng);
    const auto approx = fxp.forward(a);
    const auto truth = exact.forward(a);
    for (std::size_t i = 0; i < approx.size(); ++i) {
      worst = std::max(worst, std::abs(approx[i] - truth[i]));
    }
  }
  EXPECT_LE(worst, res.output_error_bound);
  // ... and the bound is a bound, not a blank check: within a few orders.
  EXPECT_GT(worst, res.output_error_bound * 1e-6);
}

}  // namespace
