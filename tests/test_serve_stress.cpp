// Multi-threaded stress/soak tier for the ConvServer (ctest -L soak).
//
// Two phases, both time-budgeted so the same binary serves the quick tier-1
// run (seconds) and the nightly TSan/ASan soak (minutes — set
// FLASH_SOAK_BUDGET_S):
//
//   1. Trace soak: randomized mixed-plan traces played through a server
//      with real dispatcher threads, each checked by HConvOracle::run_trace
//      — every request bit-identical to its standalone serial run, correct
//      against cleartext, metrics conserved.
//   2. Chaos soak: client threads hammer one server concurrently with
//      random cancels, deadlines and a bounded queue forcing rejections;
//      the invariants are the terminal-outcome conservation law, a drained
//      queue, and bit-correct results for every request that completed.
//   3. Network soak: randomized whole-network session traces (residual /
//      rect / strided stems) pipelined through NetworkServer, each checked
//      by HConvOracle::run_network_trace — every session bit-identical to
//      its serial bare-runner run, plus two-level metrics conservation.
//   4. Shard chaos soak: randomized traces routed through a ShardRouter
//      over forked worker processes while a rotating worker is SIGKILLed
//      mid-trace every few submissions — respawn, registration replay and
//      idempotent resend must be bit-invisible (same serial bit-identity
//      bar as phase 1) and router metrics must conserve through the kills.
//      Skipped under TSan (fork with live reader threads is unsupported
//      there); the nightly ASan soak job is its home (tests/README.md).
//
// Reproduction: every round prints nothing on success; on failure the
// governing seed is in the assertion message and in the FLASH_SOAK_SEED
// line printed at startup — rerun with that env var to replay the exact
// round sequence (see tests/README.md).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "bfv/context.hpp"
#include "hemath/sampler.hpp"
#include "serve/conv_server.hpp"
#include "tensor/conv.hpp"
#include "testing/generators.hpp"
#include "testing/oracle.hpp"

namespace flash::serve {
namespace {

using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtod(v, nullptr);
}

std::uint64_t soak_seed() {
  if (const char* v = std::getenv("FLASH_SOAK_SEED")) {
    return std::strtoull(v, nullptr, 0);
  }
  // Fresh entropy per run (the point of a soak); printed so any failure is
  // replayable by exporting FLASH_SOAK_SEED.
  return std::random_device{}();
}

double soak_budget_s() { return env_double("FLASH_SOAK_BUDGET_S", 4.0); }

TEST(ServeSoak, RandomTracesStayBitIdenticalUnderDispatcherThreads) {
  const std::uint64_t seed = soak_seed();
  const double budget_s = soak_budget_s() / 4;
  std::printf("[soak] trace phase: FLASH_SOAK_SEED=0x%llx budget=%.1fs\n",
              static_cast<unsigned long long>(seed), budget_s);

  const flash::testing::HConvOracle oracle;
  const Clock::time_point start = Clock::now();
  std::size_t rounds = 0;
  while (std::chrono::duration<double>(Clock::now() - start).count() < budget_s) {
    const std::uint64_t round_seed = hemath::derive_stream_seed(seed, rounds);
    flash::testing::ServeTraceSpec spec{round_seed, 0, 0};
    const auto trace = flash::testing::make_serve_trace(spec);
    // Alternate manual and threaded dispatch; vary the batch bound.
    const std::size_t dispatchers = 1 + rounds % 2;
    const std::size_t max_batch = 1 + rounds % 4;
    const auto report = oracle.run_trace(trace, dispatchers, max_batch);
    ASSERT_TRUE(report.ok) << "seed=0x" << std::hex << seed << std::dec << " round=" << rounds
                           << " repro=\"" << spec.describe() << "\" dispatchers=" << dispatchers
                           << " max_batch=" << max_batch << " -> " << report.summary();
    ++rounds;
  }
  std::printf("[soak] trace phase: %zu rounds\n", rounds);
  EXPECT_GT(rounds, 0u);
}

TEST(ServeSoak, ConcurrentClientsWithCancelsDeadlinesAndBackpressure) {
  const std::uint64_t seed = soak_seed() ^ 0xc4a05;
  const double budget_s = soak_budget_s() / 4;
  std::printf("[soak] chaos phase: FLASH_SOAK_SEED=0x%llx budget=%.1fs\n",
              static_cast<unsigned long long>(soak_seed()), budget_s);

  // One small layer; correctness of completed requests is checked against
  // cleartext conv2d (bit-level serial equivalence is phase 1's job — here
  // the load pattern is adversarial instead).
  const auto layer = flash::testing::make_conv_case(
      {.seed = seed, .c = 1, .m = 1, .h = 4, .w = 4, .k = 2, .stride = 1, .pad = 0});
  bfv::BfvContext ctx(layer.params);
  const tensor::Tensor3 expect = tensor::conv2d(layer.x, layer.weights, {1, 0});

  ServerOptions sopts;
  sopts.max_queue = 4;  // small: forces real rejections under load
  sopts.max_batch = 3;
  sopts.dispatchers = 2;
  ConvServer server(sopts);
  PlanSpec pspec;
  pspec.ctx = &ctx;
  pspec.backend = bfv::PolyMulBackend::kNtt;
  pspec.protocol_seed = layer.spec.seed;
  pspec.weights = layer.weights;
  pspec.stride = 1;
  pspec.pad = 0;
  pspec.in_h = layer.spec.h;
  pspec.in_w = layer.spec.w;
  const PlanId plan = server.register_plan(pspec);

  constexpr std::size_t kClients = 4;
  const Clock::time_point start = Clock::now();
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(hemath::derive_stream_seed(seed, 1000 + c));
      while (std::chrono::duration<double>(Clock::now() - start).count() < budget_s) {
        SubmitOptions opts;
        const std::uint64_t dice = rng();
        if (dice % 8 == 0) opts.timeout = std::chrono::microseconds(rng() % 200);
        ConvFuture fut = server.submit(plan, layer.x, opts);
        if (dice % 8 == 1) fut.cancel();
        fut.wait();
        const RequestState state = fut.state();
        if (state == RequestState::kFailed) {
          errors[c] = "request failed: " + fut.error();
          return;
        }
        if (state == RequestState::kDone &&
            fut.result().reconstruct(layer.params.t).data() != expect.data()) {
          errors[c] = "completed request reconstructed wrong values";
          return;
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  server.drain();

  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c] << " (seed=0x"
                                   << std::hex << seed << ")";
  }
  const ServerMetrics& m = server.metrics();
  // Conservation: every submitted request reached exactly one terminal
  // outcome; nothing is stuck queued or inflight.
  EXPECT_EQ(m.terminal(), m.submitted.value()) << "seed=0x" << std::hex << seed;
  EXPECT_EQ(m.queue_depth.value(), 0);
  EXPECT_EQ(m.inflight.value(), 0);
  EXPECT_GT(m.completed.value(), 0u);
  // The exported JSON agrees with the in-memory counters after quiescence.
  const std::string json = server.metrics_json();
  EXPECT_EQ(json_number_at(json, "counters", "submitted"),
            static_cast<double>(m.submitted.value()));
  EXPECT_EQ(json_number_at(json, "gauges", "queue_depth"), 0.0);
  std::printf("[soak] chaos phase: %llu requests checked, %llu completed, %llu rejected, "
              "%llu cancelled, %llu deadline-expired\n",
              static_cast<unsigned long long>(checked.load()),
              static_cast<unsigned long long>(m.completed.value()),
              static_cast<unsigned long long>(m.rejected_queue_full.value()),
              static_cast<unsigned long long>(m.cancelled.value()),
              static_cast<unsigned long long>(m.deadline_expired_at_admission.value() +
                                              m.deadline_expired_in_queue.value()));
}

TEST(ServeSoak, NetworkSessionsStayBitIdenticalUnderPipelining) {
  const std::uint64_t seed = soak_seed() ^ 0x11e7;
  const double budget_s = soak_budget_s() / 4;
  std::printf("[soak] network phase: FLASH_SOAK_SEED=0x%llx budget=%.1fs\n",
              static_cast<unsigned long long>(soak_seed()), budget_s);

  const flash::testing::HConvOracle oracle;
  const Clock::time_point start = Clock::now();
  std::size_t rounds = 0;
  while (std::chrono::duration<double>(Clock::now() - start).count() < budget_s) {
    const std::uint64_t round_seed = hemath::derive_stream_seed(seed, rounds);
    flash::testing::NetworkTraceSpec spec{round_seed, 0, 0};
    const auto trace = flash::testing::make_network_trace(spec);
    // Alternate manual and threaded dispatch; vary the batch bound.
    const std::size_t dispatchers = rounds % 2;
    const std::size_t max_batch = 1 + rounds % 4;
    const auto report = oracle.run_network_trace(trace, dispatchers, max_batch);
    ASSERT_TRUE(report.ok) << "seed=0x" << std::hex << seed << std::dec << " round=" << rounds
                           << " repro=\"" << spec.describe() << "\" dispatchers=" << dispatchers
                           << " max_batch=" << max_batch << " -> " << report.summary();
    ++rounds;
  }
  std::printf("[soak] network phase: %zu rounds\n", rounds);
  EXPECT_GT(rounds, 0u);
}

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FLASH_TSAN 1
#endif
#endif
#if !defined(FLASH_TSAN) && defined(__SANITIZE_THREAD__)
#define FLASH_TSAN 1
#endif

#if !defined(FLASH_TSAN)
TEST(ServeSoak, ShardedTracesSurviveWorkerKillsBitIdentically) {
  const std::uint64_t seed = soak_seed() ^ 0x54a6d;
  const double budget_s = soak_budget_s() / 4;
  std::printf("[soak] shard chaos phase: FLASH_SOAK_SEED=0x%llx budget=%.1fs\n",
              static_cast<unsigned long long>(soak_seed()), budget_s);

  const flash::testing::HConvOracle oracle;
  const Clock::time_point start = Clock::now();
  std::size_t rounds = 0;
  while (std::chrono::duration<double>(Clock::now() - start).count() < budget_s) {
    const std::uint64_t round_seed = hemath::derive_stream_seed(seed, rounds);
    flash::testing::ServeTraceSpec spec{round_seed, 0, 0};
    const auto trace = flash::testing::make_serve_trace(spec);
    // Rotate the shard count; every other round injects kills mid-trace.
    const std::size_t shards = 1 + (rounds % 3);
    const std::size_t max_batch = 1 + rounds % 4;
    const std::size_t kill_every = rounds % 2 == 0 ? 0 : 3 + rounds % 3;
    const auto report = oracle.run_trace(trace, /*dispatchers=*/0, max_batch, shards, kill_every);
    ASSERT_TRUE(report.ok) << "seed=0x" << std::hex << seed << std::dec << " round=" << rounds
                           << " repro=\"" << spec.describe() << "\" shards=" << shards
                           << " max_batch=" << max_batch << " kill_every=" << kill_every
                           << " -> " << report.summary();
    ++rounds;
  }
  std::printf("[soak] shard chaos phase: %zu rounds\n", rounds);
  EXPECT_GT(rounds, 0u);
}
#endif  // !FLASH_TSAN

}  // namespace
}  // namespace flash::serve
