// Bit-accurate fixed-point FFT: convergence to the exact FFT with width,
// stats counting, saturation behaviour, and the negacyclic weight transform.
#include <gtest/gtest.h>

#include <random>

#include "fft/fxp_fft.hpp"
#include "fft/negacyclic.hpp"

namespace flash::fft {
namespace {

std::vector<cplx> random_small(std::size_t m, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> dist(-8, 8);
  std::vector<cplx> a(m);
  for (auto& x : a) x = {static_cast<double>(dist(rng)), static_cast<double>(dist(rng))};
  return a;
}

TEST(FxpFft, HighPrecisionMatchesExact) {
  const std::size_t m = 64;
  FxpFftConfig cfg = FxpFftConfig::uniform(m, 30, 56, 18);
  cfg.twiddle_min_exp = -30;
  FxpFft fxp(m, cfg);
  FftPlan exact(m, +1);
  std::mt19937_64 rng(41);
  const auto a = random_small(m, rng);
  auto ref = a;
  exact.forward(ref);
  const auto approx = fxp.forward(a);
  EXPECT_LT(relative_spectrum_rmse(approx, ref), 1e-6);
}

TEST(FxpFft, ErrorDecreasesWithWidth) {
  const std::size_t m = 128;
  std::mt19937_64 rng(42);
  const auto a = random_small(m, rng);
  FftPlan exact(m, +1);
  auto ref = a;
  exact.forward(ref);
  double prev = 1e9;
  for (int frac : {4, 8, 14, 22}) {
    FxpFftConfig cfg = FxpFftConfig::uniform(m, frac, 50, 16);
    cfg.twiddle_min_exp = -(frac + 8);
    FxpFft fxp(m, cfg);
    const double err = relative_spectrum_rmse(fxp.forward(a), ref);
    EXPECT_LT(err, prev) << frac;
    prev = err;
  }
  EXPECT_LT(prev, 1e-4);
}

TEST(FxpFft, ErrorDecreasesWithTwiddleK) {
  const std::size_t m = 128;
  std::mt19937_64 rng(43);
  const auto a = random_small(m, rng);
  FftPlan exact(m, +1);
  auto ref = a;
  exact.forward(ref);
  double prev = 1e9;
  for (int k : {1, 3, 6, 12}) {
    FxpFftConfig cfg = FxpFftConfig::uniform(m, 24, 52, k);
    cfg.twiddle_min_exp = -28;
    FxpFft fxp(m, cfg);
    const double err = relative_spectrum_rmse(fxp.forward(a), ref);
    EXPECT_LE(err, prev * 1.05) << k;  // monotone modulo tiny noise
    prev = err;
  }
}

TEST(FxpFft, StatsCountButterfliesAndTerms) {
  const std::size_t m = 32;
  const int k = 4;
  FxpFftConfig cfg = FxpFftConfig::uniform(m, 12, 30, k);
  FxpFft fxp(m, cfg);
  std::mt19937_64 rng(44);
  FxpFftStats stats;
  fxp.forward(random_small(m, rng), &stats);
  EXPECT_EQ(stats.butterflies, (m / 2) * 5);  // (M/2) log2 M
  // Each butterfly runs 4 CSD multiplies with <= k digits each.
  EXPECT_LE(stats.shift_add_terms, stats.butterflies * 4 * k);
  EXPECT_GT(stats.shift_add_terms, 0u);
  EXPECT_EQ(stats.saturations, 0u);
}

TEST(FxpFft, NarrowWidthSaturates) {
  const std::size_t m = 64;
  // 6-bit total width cannot hold the magnitude growth of 6 stages.
  FxpFftConfig cfg = FxpFftConfig::uniform(m, 2, 6, 8);
  FxpFft fxp(m, cfg);
  std::mt19937_64 rng(45);
  FxpFftStats stats;
  fxp.forward(random_small(m, rng), &stats);
  EXPECT_GT(stats.saturations, 0u);
}

TEST(FxpFft, TruncateRoundingBiasLargerThanNearest) {
  const std::size_t m = 256;
  std::mt19937_64 rng(46);
  const auto a = random_small(m, rng);
  FftPlan exact(m, +1);
  auto ref = a;
  exact.forward(ref);

  FxpFftConfig nearest = FxpFftConfig::uniform(m, 10, 40, 16);
  nearest.twiddle_min_exp = -26;
  FxpFftConfig trunc = nearest;
  trunc.rounding = RoundingMode::kTruncate;
  const double err_nearest = relative_spectrum_rmse(FxpFft(m, nearest).forward(a), ref);
  const double err_trunc = relative_spectrum_rmse(FxpFft(m, trunc).forward(a), ref);
  EXPECT_GT(err_trunc, err_nearest);
}

TEST(FxpFft, PerStageWidthsAccepted) {
  const std::size_t m = 16;
  FxpFftConfig cfg;
  cfg.input_frac_bits = 20;
  cfg.stage_frac_bits = {20, 18, 16, 14};
  cfg.data_width = 45;
  cfg.twiddle_k = 10;
  cfg.twiddle_min_exp = -24;
  FxpFft fxp(m, cfg);
  std::mt19937_64 rng(47);
  const auto a = random_small(m, rng);
  FftPlan exact(m, +1);
  auto ref = a;
  exact.forward(ref);
  EXPECT_LT(relative_spectrum_rmse(fxp.forward(a), ref), 1e-3);
}

TEST(FxpFft, RejectsBadConfig) {
  FxpFftConfig cfg = FxpFftConfig::uniform(16, 10, 30, 4);
  cfg.stage_frac_bits.pop_back();
  EXPECT_THROW(FxpFft(16, cfg), std::invalid_argument);
  FxpFftConfig wide = FxpFftConfig::uniform(16, 10, 70, 4);
  EXPECT_THROW(FxpFft(16, wide), std::invalid_argument);
}

TEST(FxpNegacyclic, WeightTransformTracksExact) {
  const std::size_t n = 512;
  FxpFftConfig cfg = FxpFftConfig::uniform(n / 2, 18, 45, 14);
  cfg.twiddle_min_exp = -24;
  FxpNegacyclicTransform approx(n, cfg);
  NegacyclicFft exact(n);
  std::mt19937_64 rng(48);
  std::uniform_int_distribution<int> w(-8, 8);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 60; ++i) a[rng() % n] = static_cast<double>(w(rng));
  const auto ref = exact.forward(a);
  const auto got = approx.forward(a);
  EXPECT_LT(relative_spectrum_rmse(got, ref), 1e-3);
}

TEST(FxpNegacyclic, Paper27BitConfigIsAccurate) {
  // The paper's operating point: 27-bit data path, k = 5 twiddles, on sparse
  // 4-bit weight polynomials. Relative spectrum error should be well below
  // the HE noise headroom (~2^-10 relative is ample).
  const std::size_t n = 2048;
  const std::size_t m = n / 2;
  FxpFftConfig cfg;
  cfg.data_width = 27;
  cfg.twiddle_k = 5;
  cfg.twiddle_min_exp = -20;
  const int stages = 10;
  cfg.input_frac_bits = 22;  // |z| <= 8*sqrt(2): 5 int bits incl sign
  cfg.stage_frac_bits.resize(stages);
  for (int s = 1; s <= stages; ++s) {
    cfg.stage_frac_bits[s - 1] = std::max(0, 27 - (5 + s));
  }
  FxpNegacyclicTransform approx(n, cfg);
  NegacyclicFft exact(n);
  std::mt19937_64 rng(49);
  std::uniform_int_distribution<int> w(-8, 8);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 9 * 16; ++i) a[rng() % n] = static_cast<double>(w(rng));
  EXPECT_LT(relative_spectrum_rmse(approx.forward(a), exact.forward(a)), 2e-2);
  (void)m;
}


TEST(FxpFft, InverseRoundTripOnApproxDatapath) {
  const std::size_t m = 128;
  FxpFftConfig cfg = FxpFftConfig::uniform(m, 24, 52, 16);
  cfg.twiddle_min_exp = -28;
  FxpFft fxp(m, cfg);
  std::mt19937_64 rng(50);
  const auto a = random_small(m, rng);
  const auto round_trip = fxp.inverse(fxp.forward(a));
  double err = 0, mag = 0;
  for (std::size_t i = 0; i < m; ++i) {
    err += std::norm(round_trip[i] - a[i]);
    mag += std::norm(a[i]);
  }
  EXPECT_LT(std::sqrt(err / mag), 1e-3);
}

TEST(FxpFft, InverseMatchesExactInverse) {
  const std::size_t m = 256;
  FxpFftConfig cfg = FxpFftConfig::uniform(m, 26, 54, 18);
  cfg.twiddle_min_exp = -30;
  FxpFft fxp(m, cfg);
  std::mt19937_64 rng(51);
  const auto spec = random_small(m, rng);
  auto exact = spec;
  FftPlan(m, +1).inverse(exact);
  const auto approx = fxp.inverse(spec);
  EXPECT_LT(relative_spectrum_rmse(approx, exact), 1e-4);
}

TEST(FxpNegacyclic, FullPipelineRoundTrip) {
  // forward + pointwise-identity + inverse on the approximate datapath
  // recovers the polynomial: the complete weight-transform/inverse loop the
  // accelerator's approximate array executes.
  const std::size_t n = 512;
  FxpFftConfig cfg = FxpFftConfig::uniform(n / 2, 22, 50, 16);
  cfg.twiddle_min_exp = -26;
  FxpNegacyclicTransform fxp(n, cfg);
  std::mt19937_64 rng(52);
  std::vector<double> a(n, 0.0);
  for (int i = 0; i < 60; ++i) a[rng() % n] = static_cast<double>(static_cast<int>(rng() % 15) - 7);
  const auto back = fxp.inverse(fxp.forward(a));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], a[i], 2e-2) << i;
  }
}

// Regression (PR-4 shift UB fix): left-shifting a negative mantissa was UB
// before the unsigned-cast shift_left helpers. All-negative inputs drive
// negative mantissas through every CSD digit with a non-negative exponent;
// under -fsanitize=shift the old code aborts here.
TEST(FxpFft, NegativeInputsExerciseNegativeMantissaShifts) {
  const std::size_t m = 128;
  FxpFftConfig cfg = FxpFftConfig::uniform(m, 16, 48, 8);
  cfg.twiddle_min_exp = -20;
  FxpFft fxp(m, cfg);
  std::vector<cplx> a(m);
  for (std::size_t i = 0; i < m; ++i) {
    a[i] = {-static_cast<double>((i % 7) + 1), -static_cast<double>((i % 5) + 1)};
  }
  FftPlan exact(m, +1);
  auto ref = a;
  exact.forward(ref);
  FxpFftStats stats;
  const auto out = fxp.forward(a, &stats);
  EXPECT_LT(relative_spectrum_rmse(out, ref), 1e-3);
  EXPECT_GT(stats.shift_add_terms, 0u);
}

// Regression (PR-4): stage_frac_bits increasing across stages makes the
// requantize shift negative (values must be scaled UP), which the old code
// expressed as a raw `<<` on possibly-negative accumulators.
TEST(FxpFft, IncreasingStageFracBitsHitsNegativeRequantizeShift) {
  const std::size_t m = 32;
  FxpFftConfig cfg;
  cfg.input_frac_bits = 8;
  cfg.stage_frac_bits = {10, 12, 14, 16, 18};  // each stage gains fraction bits
  cfg.data_width = 52;
  cfg.twiddle_k = 8;
  cfg.twiddle_min_exp = -20;
  FxpFft fxp(m, cfg);
  std::mt19937_64 rng(48);
  const auto a = random_small(m, rng);
  FftPlan exact(m, +1);
  auto ref = a;
  exact.forward(ref);
  FxpFftStats stats;
  EXPECT_LT(relative_spectrum_rmse(fxp.forward(a, &stats), ref), 1e-2);
  EXPECT_EQ(stats.saturations, 0u);
}

TEST(FxpFft, StatsMergeSumsCountersAndMaxesPeaks) {
  const std::size_t m = 64;
  FxpFft fxp(m, FxpFftConfig::uniform(m, 12, 40, 6));
  std::mt19937_64 rng(49);
  const auto small = random_small(m, rng);
  std::vector<cplx> big(m);
  for (std::size_t i = 0; i < m; ++i) big[i] = small[i] * 4.0;

  FxpFftStats a, b;
  fxp.forward(small, &a);
  fxp.forward(big, &b);
  FxpFftStats merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.butterflies, a.butterflies + b.butterflies);
  EXPECT_EQ(merged.shift_add_terms, a.shift_add_terms + b.shift_add_terms);
  EXPECT_EQ(merged.saturations, a.saturations + b.saturations);
  ASSERT_EQ(merged.stage_peak_mantissa.size(), b.stage_peak_mantissa.size());
  for (std::size_t s = 0; s < merged.stage_peak_mantissa.size(); ++s) {
    const std::uint64_t peak_a =
        s < a.stage_peak_mantissa.size() ? a.stage_peak_mantissa[s] : std::uint64_t{0};
    EXPECT_EQ(merged.stage_peak_mantissa[s], std::max(peak_a, b.stage_peak_mantissa[s])) << s;
  }
  // Merging into a default-constructed stats object is a plain copy.
  FxpFftStats fresh;
  fresh.merge(a);
  EXPECT_EQ(fresh.butterflies, a.butterflies);
  EXPECT_EQ(fresh.stage_peak_mantissa, a.stage_peak_mantissa);
}

// The narrow i64 plan and the generic wide path must agree: a config just
// past the narrow eligibility bound falls back to the generic path and both
// still track the exact FFT.
TEST(FxpFft, WideConfigFallsBackToGenericPath) {
  const std::size_t m = 64;
  FxpFftConfig narrow_cfg = FxpFftConfig::uniform(m, 20, 50, 8);
  narrow_cfg.twiddle_min_exp = -24;
  FxpFftConfig wide_cfg = FxpFftConfig::uniform(m, 44, 62, 8);
  wide_cfg.twiddle_min_exp = -48;
  FxpFft narrow_fft(m, narrow_cfg);
  FxpFft wide_fft(m, wide_cfg);
  EXPECT_TRUE(narrow_fft.uses_narrow_path());
  EXPECT_FALSE(wide_fft.uses_narrow_path());
  std::mt19937_64 rng(50);
  const auto a = random_small(m, rng);
  FftPlan exact(m, +1);
  auto ref = a;
  exact.forward(ref);
  EXPECT_LT(relative_spectrum_rmse(narrow_fft.forward(a), ref), 1e-4);
  EXPECT_LT(relative_spectrum_rmse(wide_fft.forward(a), ref), 1e-5);
}

}  // namespace
}  // namespace flash::fft
