// Cycle-level pipeline simulator: per-transform cycle formulas, dependency
// correctness (via conservation laws), and agreement with the analytic
// throughput model.
#include <gtest/gtest.h>

#include "accel/simulator.hpp"
#include "encoding/tiling.hpp"
#include "tensor/resnet.hpp"

namespace flash::accel {
namespace {

sparsefft::SparseFftPlan plan_for(const encoding::LayerTiling& t) {
  std::vector<std::size_t> pos;
  for (std::size_t c = 0; c < t.channels_per_poly; ++c) {
    for (std::size_t i = 0; i < t.sub_k; ++i) {
      for (std::size_t j = 0; j < t.sub_k; ++j) {
        pos.push_back((c * t.patch_h * t.patch_w + i * t.patch_w + j) % (t.n / 2));
      }
    }
  }
  return sparsefft::SparseFftPlan(t.n / 2, sparsefft::SparsityPattern(t.n / 2, std::move(pos)));
}

tensor::LayerConfig toy_layer(std::size_t c, std::size_t hw, std::size_t out, std::size_t k) {
  tensor::LayerConfig l;
  l.name = "toy";
  l.in_c = c;
  l.in_h = l.in_w = hw;
  l.out_c = out;
  l.kernel = k;
  l.stride = 1;
  l.pad = k / 2;
  return l;
}

TEST(CycleSimulator, DenseTransformCycles) {
  CycleSimulator sim(FlashConfig::paper_default());
  // N = 4096 -> 2048-point FFT: 11 stages of 1024 butterflies on 4 BUs.
  EXPECT_EQ(sim.dense_transform_cycles(4096, 4), 11u * 256u);
  EXPECT_EQ(sim.dense_transform_cycles(4096, 8), 11u * 128u);
}

TEST(CycleSimulator, SparseTransformFasterThanDense) {
  CycleSimulator sim(FlashConfig::paper_default());
  const auto t = encoding::plan_layer(toy_layer(64, 56, 64, 1), 4096);
  const auto plan = plan_for(t);
  const std::uint64_t sparse = sim.sparse_transform_cycles(plan);
  const std::uint64_t dense = sim.dense_transform_cycles(4096, 4);
  EXPECT_LT(sparse, dense / 4);
  EXPECT_GE(sparse, 1u);
}

TEST(CycleSimulator, PointwiseCycles) {
  CycleSimulator sim(FlashConfig::paper_default());
  EXPECT_EQ(sim.pointwise_cycles(4096), (2048u + 239u) / 240u);
}

TEST(CycleSimulator, BusyCyclesConserveWork) {
  const FlashConfig cfg = FlashConfig::paper_default();
  CycleSimulator sim(cfg);
  const auto t = encoding::plan_layer(toy_layer(16, 16, 8, 3), 4096);
  const auto plan = plan_for(t);
  const SimResult r = sim.simulate_layer(t, plan);

  const std::size_t groups = t.sub_convs * t.channel_tiles;
  const std::size_t outputs = t.weight_polys / groups;
  const std::uint64_t expect_weight = outputs * groups * sim.sparse_transform_cycles(plan) +
                                      outputs * 2 * sim.dense_transform_cycles(t.n, cfg.bus_per_approx_pe);
  const std::uint64_t expect_fp = groups * 2 * sim.dense_transform_cycles(t.n, cfg.bus_per_fp_pe);
  const std::uint64_t expect_pw = outputs * groups * 2 * sim.pointwise_cycles(t.n);
  EXPECT_EQ(r.weight_busy, expect_weight);
  EXPECT_EQ(r.fp_busy, expect_fp);
  EXPECT_EQ(r.pointwise_busy, expect_pw);
  EXPECT_LE(r.weight_utilization, 1.0);
  EXPECT_LE(r.fp_utilization, 1.0);
}

TEST(CycleSimulator, MakespanRespectsLowerBounds) {
  const FlashConfig cfg = FlashConfig::paper_default();
  CycleSimulator sim(cfg);
  const auto t = encoding::plan_layer(toy_layer(32, 16, 32, 3), 4096);
  const auto plan = plan_for(t);
  const SimResult r = sim.simulate_layer(t, plan);

  // Resource bounds: no array can finish before its busy time / width.
  EXPECT_GE(r.cycles, r.weight_busy / cfg.approx_pes);
  EXPECT_GE(r.cycles, r.fp_busy / cfg.fp_pes);
  EXPECT_GE(r.cycles, r.pointwise_busy);
  // Critical-path bound: at least one A -> P -> I chain.
  EXPECT_GE(r.cycles, sim.dense_transform_cycles(t.n, cfg.bus_per_fp_pe) + sim.pointwise_cycles(t.n) +
                          sim.dense_transform_cycles(t.n, cfg.bus_per_approx_pe));
}

TEST(CycleSimulator, AgreesWithAnalyticModelWithinPipelineFactor) {
  // The analytic model assumes perfect overlap; the scheduled makespan must
  // land between the busiest-array bound and a small multiple of it.
  const FlashConfig cfg = FlashConfig::paper_default();
  CycleSimulator sim(cfg);
  for (const auto& layer : {toy_layer(64, 16, 64, 3), toy_layer(16, 16, 128, 1)}) {
    const auto t = encoding::plan_layer(layer, 4096);
    const auto plan = plan_for(t);
    const SimResult r = sim.simulate_layer(t, plan);
    const std::uint64_t bound = std::max({r.weight_busy / cfg.approx_pes,
                                          r.fp_busy / cfg.fp_pes, r.pointwise_busy});
    EXPECT_GE(r.cycles, bound) << layer.name;
    EXPECT_LE(r.cycles, 3 * bound + 10000) << "pipeline stalls too large";
  }
}

TEST(CycleSimulator, MoreApproxPesShortenWeightBoundLayers) {
  const auto t = encoding::plan_layer(toy_layer(64, 16, 256, 3), 4096);
  const auto plan = plan_for(t);
  FlashConfig small = FlashConfig::paper_default();
  small.approx_pes = 15;
  FlashConfig big = FlashConfig::paper_default();
  big.approx_pes = 120;
  const SimResult rs = CycleSimulator(small).simulate_layer(t, plan);
  const SimResult rb = CycleSimulator(big).simulate_layer(t, plan);
  EXPECT_LT(rb.cycles, rs.cycles);
}

}  // namespace
}  // namespace flash::accel
