// BFV scheme: encrypt/decrypt round trips, homomorphic add/sub,
// plaintext multiplication across all three PolyMul backends, and noise
// budget behaviour (the kernel-level robustness of paper §III-A).
#include <gtest/gtest.h>

#include <random>

#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "bfv/noise.hpp"
#include "core/flash_accelerator.hpp"
#include "hemath/primes.hpp"

namespace flash::bfv {
namespace {

BfvParams test_params() { return BfvParams::create(1024, 16, 45); }

struct Fixture {
  BfvContext ctx;
  hemath::Sampler sampler;
  KeyGenerator keygen;
  SecretKey sk;
  PublicKey pk;
  Encryptor enc;
  Decryptor dec;

  explicit Fixture(std::uint64_t seed = 99)
      : ctx(test_params()), sampler(seed), keygen(ctx, sampler), sk(keygen.secret_key()),
        pk(keygen.public_key(sk)), enc(ctx, sampler), dec(ctx, sk) {}
};

std::vector<i64> random_values(std::size_t count, i64 lo, i64 hi, std::mt19937_64& rng) {
  std::uniform_int_distribution<i64> dist(lo, hi);
  std::vector<i64> v(count);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(BfvParams, CreateAndValidate) {
  const BfvParams p = test_params();
  EXPECT_EQ(p.n, 1024u);
  EXPECT_EQ(p.t, u64{1} << 16);
  EXPECT_TRUE(hemath::is_prime(p.q));
  EXPECT_EQ((p.q - 1) % 2048, 0u);
  EXPECT_GT(p.noise_ceiling_bits(), 25.0);
}

TEST(BfvParams, RejectsBadCombos) {
  BfvParams p = test_params();
  p.q = p.q + 1;  // not prime / wrong congruence
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params();
  p.t = p.q;  // q must exceed 2t
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(BfvParams, SecurityEstimateTracksHeStandard) {
  // HE-standard anchors: (N, max log q) at 128-bit security.
  EXPECT_NEAR(estimated_security_bits(1024, 27), 128.0, 2.0);
  EXPECT_NEAR(estimated_security_bits(4096, 109), 127.0, 5.0);
  // Bigger q at fixed N weakens; bigger N at fixed q strengthens.
  EXPECT_LT(estimated_security_bits(4096, 150), estimated_security_bits(4096, 109));
  EXPECT_GT(estimated_security_bits(8192, 109), estimated_security_bits(4096, 109));
  // Our default experiment set (N=4096, 49-bit q) is far above 128 bits.
  EXPECT_GT(estimated_security_bits(4096, 49), 128.0);
}

TEST(Bfv, EncodeDecodeSigned) {
  Fixture f;
  std::mt19937_64 rng(1);
  const auto vals = random_values(f.ctx.params().n, -1000, 1000, rng);
  const Plaintext pt = f.ctx.encode_signed(vals);
  EXPECT_EQ(f.ctx.decode_signed(pt), vals);
}

TEST(Bfv, EncodeRejectsOutOfRange) {
  Fixture f;
  const i64 big = static_cast<i64>(f.ctx.params().t);
  EXPECT_THROW(f.ctx.encode_signed({big}), std::out_of_range);
}

TEST(Bfv, SymmetricEncryptDecrypt) {
  Fixture f;
  std::mt19937_64 rng(2);
  const auto vals = random_values(f.ctx.params().n, -30000, 30000, rng);
  const Plaintext pt = f.ctx.encode_signed(vals);
  const Ciphertext ct = f.enc.encrypt_symmetric(pt, f.sk);
  EXPECT_EQ(f.ctx.decode_signed(f.dec.decrypt(ct)), vals);
}

TEST(Bfv, PublicKeyEncryptDecrypt) {
  Fixture f;
  std::mt19937_64 rng(3);
  const auto vals = random_values(f.ctx.params().n, -30000, 30000, rng);
  const Plaintext pt = f.ctx.encode_signed(vals);
  const Ciphertext ct = f.enc.encrypt(pt, f.pk);
  EXPECT_EQ(f.ctx.decode_signed(f.dec.decrypt(ct)), vals);
}

TEST(Bfv, FreshNoiseBudgetPositiveAndPredicted) {
  Fixture f;
  std::mt19937_64 rng(4);
  const Plaintext pt = f.ctx.encode_signed(random_values(f.ctx.params().n, -100, 100, rng));
  const Ciphertext ct = f.enc.encrypt(pt, f.pk);
  const double budget = f.dec.invariant_noise_budget(ct);
  EXPECT_GT(budget, 5.0);
  EXPECT_LT(budget, f.ctx.params().noise_ceiling_bits());
}

TEST(Bfv, HomomorphicAddSub) {
  Fixture f;
  Evaluator ev(f.ctx, PolyMulBackend::kNtt);
  std::mt19937_64 rng(5);
  const auto va = random_values(f.ctx.params().n, -10000, 10000, rng);
  const auto vb = random_values(f.ctx.params().n, -10000, 10000, rng);
  Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  const Ciphertext cb = f.enc.encrypt(f.ctx.encode_signed(vb), f.pk);
  ev.add_inplace(ca, cb);
  auto got = f.ctx.decode_signed(f.dec.decrypt(ca));
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], va[i] + vb[i]);
  ev.sub_inplace(ca, cb);
  got = f.ctx.decode_signed(f.dec.decrypt(ca));
  EXPECT_EQ(got, va);
}

TEST(Bfv, AddSubPlain) {
  Fixture f;
  Evaluator ev(f.ctx, PolyMulBackend::kNtt);
  std::mt19937_64 rng(6);
  const auto va = random_values(f.ctx.params().n, -10000, 10000, rng);
  const auto vb = random_values(f.ctx.params().n, -10000, 10000, rng);
  Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  ev.add_plain_inplace(ca, f.ctx.encode_signed(vb));
  auto got = f.ctx.decode_signed(f.dec.decrypt(ca));
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], va[i] + vb[i]);
  ev.sub_plain_inplace(ca, f.ctx.encode_signed(vb));
  EXPECT_EQ(f.ctx.decode_signed(f.dec.decrypt(ca)), va);
}

TEST(Bfv, NegateIsAdditiveInverse) {
  Fixture f;
  Evaluator ev(f.ctx, PolyMulBackend::kNtt);
  std::mt19937_64 rng(7);
  const auto va = random_values(f.ctx.params().n, -100, 100, rng);
  Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  ev.negate_inplace(ca);
  const auto got = f.ctx.decode_signed(f.dec.decrypt(ca));
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], -va[i]);
}

class MultiplyPlainBackend : public ::testing::TestWithParam<PolyMulBackend> {};

TEST_P(MultiplyPlainBackend, SparseWeightPolyMulDecryptsExactly) {
  Fixture f;
  const auto& p = f.ctx.params();
  std::optional<fft::FxpFftConfig> cfg;
  if (GetParam() == PolyMulBackend::kApproxFft) {
    // The no-retraining operating point (k = 18): errors land far below one
    // message LSB, so the result is bit-exact.
    cfg = core::high_accuracy_approx_config(p.n, p.t);
  }
  Evaluator ev(f.ctx, GetParam(), cfg);

  std::mt19937_64 rng(8);
  // Activation-like plaintext: small positive values.
  const auto va = random_values(p.n, 0, 15, rng);
  // Weight-like sparse plaintext: 72 nonzeros of 4-bit weights.
  std::vector<i64> vw(p.n, 0);
  for (int i = 0; i < 72; ++i) {
    i64 w = static_cast<i64>(rng() % 15) - 7;
    if (w == 0) w = 1;
    vw[rng() % p.n] = w;
  }

  Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  const Ciphertext prod = ev.multiply_plain(ca, f.ctx.encode_signed(vw));

  // Expected: negacyclic product mod t.
  hemath::Poly pa(p.t, p.n), pw(p.t, p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    pa[i] = hemath::from_signed(va[i], p.t);
    pw[i] = hemath::from_signed(vw[i], p.t);
  }
  const hemath::Poly expect = hemath::multiply_schoolbook(pa, pw);

  const Plaintext got = f.dec.decrypt(prod);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < p.n; ++i) {
    if (got.poly[i] != expect[i]) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u) << "backend produced wrong coefficients";
  EXPECT_GT(f.dec.invariant_noise_budget(prod), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, MultiplyPlainBackend,
                         ::testing::Values(PolyMulBackend::kNtt, PolyMulBackend::kFft,
                                           PolyMulBackend::kApproxFft));

TEST(Bfv, ApproxSpectrumErrorScalesWithKeyWrap) {
  // Reproduction finding (documented in DESIGN.md): the paper's kernel-level
  // argument treats approximate-FFT error as additive ciphertext noise, but
  // in a faithful BFV implementation the weight-spectrum error delta is
  // multiplied by the *ciphertext-scale* elements c0, c1 before decryption
  // recombines them mod q. The residual error after decryption scales with
  // the plaintext modulus t (roughly t/8 rms at the paper's k = 5 point),
  // NOT with the message magnitude. Bit-exactness needs the high-accuracy
  // configuration — which this test also verifies.
  Fixture f;
  const auto& p = f.ctx.params();
  Evaluator exact(f.ctx, PolyMulBackend::kNtt);
  Evaluator approx_k5(f.ctx, PolyMulBackend::kApproxFft, core::default_approx_config(p.n, p.t));
  Evaluator approx_hi(f.ctx, PolyMulBackend::kApproxFft,
                      core::high_accuracy_approx_config(p.n, p.t));

  std::mt19937_64 rng(77);
  const auto va = random_values(p.n, 0, 15, rng);
  std::vector<i64> vw(p.n, 0);
  for (int i = 0; i < 72; ++i) vw[rng() % p.n] = static_cast<i64>(rng() % 15) - 7;
  const Plaintext ptw = f.ctx.encode_signed(vw);

  const Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  const auto ref = f.ctx.decode_signed(f.dec.decrypt(exact.multiply_plain(ca, ptw)));
  const auto got_k5 = f.ctx.decode_signed(f.dec.decrypt(approx_k5.multiply_plain(ca, ptw)));
  const auto got_hi = f.ctx.decode_signed(f.dec.decrypt(approx_hi.multiply_plain(ca, ptw)));

  i64 max_err_k5 = 0, max_err_hi = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    max_err_k5 = std::max(max_err_k5, std::abs(got_k5[i] - ref[i]));
    max_err_hi = std::max(max_err_hi, std::abs(got_hi[i] - ref[i]));
  }
  EXPECT_GT(max_err_k5, 0);  // k = 5 is not exact under faithful BFV
  EXPECT_LT(max_err_k5, static_cast<i64>(p.t) / 2);  // bounded by the sharing modulus
  EXPECT_EQ(max_err_hi, 0);  // the 48-bit/k=20 configuration is bit-exact
}

TEST(Bfv, MultiplyPlainNoiseGrowsWithWeightNorm) {
  Fixture f;
  Evaluator ev(f.ctx, PolyMulBackend::kNtt);
  const auto& p = f.ctx.params();
  std::mt19937_64 rng(9);
  const auto va = random_values(p.n, 0, 15, rng);
  const Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  const double fresh = f.dec.invariant_noise_budget(ca);

  std::vector<i64> sparse(p.n, 0), dense_w(p.n, 0);
  for (int i = 0; i < 9; ++i) sparse[rng() % p.n] = 7;
  for (std::size_t i = 0; i < p.n; ++i) dense_w[i] = 7;
  const double after_sparse =
      f.dec.invariant_noise_budget(ev.multiply_plain(ca, f.ctx.encode_signed(sparse)));
  const double after_dense =
      f.dec.invariant_noise_budget(ev.multiply_plain(ca, f.ctx.encode_signed(dense_w)));
  EXPECT_LT(after_sparse, fresh);
  EXPECT_LT(after_dense, after_sparse);  // larger l1 norm, more noise
}

TEST(Bfv, EngineCountsOperations) {
  Fixture f;
  Evaluator ev(f.ctx, PolyMulBackend::kFft);
  std::mt19937_64 rng(10);
  const auto va = random_values(f.ctx.params().n, 0, 15, rng);
  std::vector<i64> vw(f.ctx.params().n, 0);
  vw[3] = 2;
  const Ciphertext ca = f.enc.encrypt(f.ctx.encode_signed(va), f.pk);
  const PlainSpectrum spec = ev.transform_plain(f.ctx.encode_signed(vw));
  (void)ev.multiply_plain(ca, spec);
  (void)ev.multiply_plain(ca, spec);  // weight spectrum reused
  const auto& c = ev.engine().counters();
  EXPECT_EQ(c.plain_transforms, 1u);
  EXPECT_EQ(c.cipher_transforms, 4u);   // 2 ciphertexts x 2 elements
  EXPECT_EQ(c.inverse_transforms, 4u);
}

TEST(Bfv, NoiseHelpersAreConsistent) {
  const BfvParams p = test_params();
  const double fresh = predicted_fresh_noise_bits(p);
  EXPECT_GT(fresh, 0.0);
  const double after = predicted_plain_mult_noise_bits(p, fresh, 72, 8.0);
  EXPECT_GT(after, fresh);
  EXPECT_LT(after, p.noise_ceiling_bits());  // decryption still safe
  const double headroom = approx_error_headroom_bits(p, after);
  EXPECT_GT(headroom, 0.0);  // room for approximate-FFT error
}

TEST(Bfv, BackendMismatchThrows) {
  Fixture f;
  Evaluator ntt_ev(f.ctx, PolyMulBackend::kNtt);
  Evaluator fft_ev(f.ctx, PolyMulBackend::kFft);
  std::vector<i64> vw(f.ctx.params().n, 0);
  vw[0] = 1;
  const PlainSpectrum spec = ntt_ev.transform_plain(f.ctx.encode_signed(vw));
  const Ciphertext ca =
      f.enc.encrypt(f.ctx.encode_signed(std::vector<i64>(f.ctx.params().n, 1)), f.pk);
  EXPECT_THROW(fft_ev.multiply_plain(ca, spec), std::invalid_argument);
}

TEST(Bfv, ApproxBackendRequiresConfig) {
  Fixture f;
  EXPECT_THROW(Evaluator(f.ctx, PolyMulBackend::kApproxFft), std::invalid_argument);
}

}  // namespace
}  // namespace flash::bfv
