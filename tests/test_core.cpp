// FlashAccelerator public API: layer planning, network estimates matching
// the paper's headline factors, sparse fractions, and functional HConv.
#include <gtest/gtest.h>

#include "core/flash_accelerator.hpp"
#include "tensor/quant.hpp"

namespace flash::core {
namespace {

bfv::BfvParams small_params() { return bfv::BfvParams::create(1024, 18, 46); }
bfv::BfvParams paper_params() { return bfv::BfvParams::create(4096, 20, 49); }

TEST(FlashAccelerator, DefaultApproxConfigShape) {
  const auto cfg = default_approx_config(4096, std::uint64_t{1} << 20);
  EXPECT_EQ(cfg.stage_frac_bits.size(), 11u);  // log2(2048)
  EXPECT_EQ(cfg.twiddle_k, 5);
  EXPECT_EQ(cfg.data_width, 27);
}

TEST(FlashAccelerator, SparseFractionMatchesPaperClaim) {
  // Paper: the sparse dataflow skips >86% of weight-transform
  // multiplications. The claim holds at the *network* level: averaged over
  // ResNet-50's encoded weight patterns (mostly 1x1 convs, power-of-two
  // padded patches), weighted by transform counts.
  FlashAccelerator flash(paper_params());
  double weighted = 0.0;
  std::uint64_t transforms = 0;
  for (const auto& layer : tensor::resnet50_conv_layers()) {
    const LayerPlan plan = flash.plan_layer(layer);
    weighted += plan.weight_mult_fraction * static_cast<double>(plan.tiling.weight_transforms);
    transforms += plan.tiling.weight_transforms;
  }
  const double avg = weighted / static_cast<double>(transforms);
  EXPECT_LT(avg, 0.14);
  EXPECT_GT(avg, 0.0);
}

TEST(FlashAccelerator, PowerOfTwoPatchesBeatRawDims) {
  // The planner pads patches to powers of two precisely because the sparse
  // dataflow is much cheaper there (paper Fig. 8(a) precondition).
  FlashAccelerator flash(paper_params());
  const double pow2 = flash.sparse_mult_fraction({4096, 1, 64, 64, 3});
  const double raw = flash.sparse_mult_fraction({4096, 1, 58, 58, 3});
  EXPECT_LT(pow2, raw);
}

TEST(FlashAccelerator, DenserPatternsCostMore) {
  FlashAccelerator flash(paper_params());
  const encoding::ConvGeometry sparse_geo{4096, 1, 58, 58, 3};
  const encoding::ConvGeometry dense_geo{4096, 40, 9, 9, 3};  // many channels
  EXPECT_LT(flash.sparse_mult_fraction(sparse_geo), flash.sparse_mult_fraction(dense_geo));
}

TEST(FlashAccelerator, PlanLayerConsistency) {
  FlashAccelerator flash(paper_params());
  tensor::LayerConfig layer;
  layer.name = "layer3-like";
  layer.in_c = 256;
  layer.in_h = layer.in_w = 14;
  layer.out_c = 256;
  layer.kernel = 3;
  layer.stride = 1;
  layer.pad = 1;
  const LayerPlan plan = flash.plan_layer(layer);
  EXPECT_GT(plan.tiling.weight_transforms, 0u);
  EXPECT_LT(plan.weight_mult_fraction, 0.6);
  EXPECT_GT(plan.flash.seconds, 0.0);
  EXPECT_GT(plan.cham.seconds, plan.flash.seconds);
  EXPECT_GT(plan.f1.joules, plan.flash.joules);
}

TEST(FlashAccelerator, Resnet18NetworkEstimateShape) {
  FlashAccelerator flash(paper_params());
  const NetworkEstimate est = flash.estimate_network(tensor::resnet18_conv_layers());
  // Paper Table IV: 21.84x over CHAM for ResNet-18 linear layers; our
  // simulator should land in the same regime (an order of magnitude up).
  EXPECT_GT(est.speedup_vs_cham(), 8.0);
  EXPECT_LT(est.speedup_vs_cham(), 120.0);
  // Paper: ~87% energy reduction vs F1.
  EXPECT_GT(est.energy_reduction_vs_f1(), 0.6);
  EXPECT_LT(est.energy_reduction_vs_f1(), 1.0);
}

TEST(FlashAccelerator, Resnet50MoreWorkThanResnet18) {
  FlashAccelerator flash(paper_params());
  const NetworkEstimate r18 = flash.estimate_network(tensor::resnet18_conv_layers());
  const NetworkEstimate r50 = flash.estimate_network(tensor::resnet50_conv_layers());
  EXPECT_GT(r50.flash.seconds, r18.flash.seconds);
  EXPECT_GT(r50.workload.weight_transforms, r18.workload.weight_transforms);
}

TEST(FlashAccelerator, RunHConvEndToEnd) {
  FlashOptions options;
  options.backend = bfv::PolyMulBackend::kApproxFft;
  options.approx_config = high_accuracy_approx_config(small_params().n, small_params().t);
  FlashAccelerator flash(small_params(), options);
  std::mt19937_64 rng(71);
  const tensor::Tensor3 x = tensor::random_activations(4, 9, 9, 4, rng);
  const tensor::Tensor4 w = tensor::random_weights(3, 4, 3, 4, rng);
  const protocol::HConvResult result = flash.run_hconv(x, w);
  const tensor::Tensor3 got = result.reconstruct(small_params().t);
  EXPECT_EQ(got.data(), tensor::conv2d(x, w, {1, 0}).data());
}

TEST(FlashAccelerator, TuneLayerMeetsThreshold) {
  FlashAccelerator flash(small_params());
  tensor::LayerConfig layer;
  layer.name = "toy";
  layer.in_c = 8;
  layer.in_h = layer.in_w = 8;
  layer.out_c = 8;
  layer.kernel = 3;
  layer.stride = 1;
  layer.pad = 1;
  // Layer-level absorption: requant discards ~2^6, activations ~rms 4.
  const auto tuned = flash.tune_layer(layer, 32.0, 4.0, 250);
  EXPECT_LE(tuned.point.error_variance, tuned.threshold);
  EXPECT_LT(tuned.point.normalized_power, 1.0);
  EXPECT_EQ(tuned.config.stage_frac_bits.size(), 9u);  // log2(512)

  // A tighter error budget buys a costlier configuration.
  const auto strict = flash.tune_layer(layer, 0.4, 4.0, 250);
  EXPECT_LT(strict.threshold, tuned.threshold);
  EXPECT_GE(strict.point.normalized_power, tuned.point.normalized_power);
}

TEST(FlashAccelerator, ThresholdHelperIsQuadratic) {
  EXPECT_DOUBLE_EQ(dse::spectrum_error_threshold(8.0, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(dse::spectrum_error_threshold(4.0, 4.0), 1.0);
  EXPECT_THROW(dse::spectrum_error_threshold(0.0, 1.0), std::invalid_argument);
}

TEST(FlashAccelerator, ExploreLayerReturnsScatter) {
  FlashAccelerator flash(small_params());
  tensor::LayerConfig layer;
  layer.name = "toy";
  layer.in_c = 8;
  layer.in_h = layer.in_w = 8;
  layer.out_c = 8;
  layer.kernel = 3;
  layer.stride = 1;
  layer.pad = 1;
  dse::DseOptions opts;
  opts.evaluations = 120;
  const auto points = flash.explore_layer(layer, opts);
  EXPECT_EQ(points.size(), 120u);
  const auto front = dse::pareto_front(points);
  EXPECT_GE(front.size(), 2u);
}

}  // namespace
}  // namespace flash::core
