// Z_{2^k} (kPow2) backend tier.
//
// There is no NTT mod 2^k to cross-check the Karatsuba path against, so the
// correctness story is differential all the way down: Karatsuba vs direct
// schoolbook over the ring primitives, the batch SoA path vs a loop of
// singles, and the full engine vs an *independent* signed-__int128
// schoolbook reference that shares no code with hemath/pow2.hpp. On top of
// that sit the admission proofs: the wrap analysis must flip exactly at the
// predicted width, and the joint backend explorer must never admit a pow2
// point it cannot prove wrap-free.
#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "analysis/pow2_model.hpp"
#include "bfv/context.hpp"
#include "bfv/polymul_engine.hpp"
#include "dse/backend_axis.hpp"
#include "hemath/pow2.hpp"
#include "wire/wire_format.hpp"

namespace flash {
namespace {

using hemath::i64;
using hemath::Pow2Ring;
using hemath::u64;

std::vector<u64> random_residues(std::size_t n, Pow2Ring ring, std::mt19937_64& rng) {
  std::vector<u64> v(n);
  for (auto& x : v) x = ring.reduce(rng());
  return v;
}

TEST(Pow2Ring, SignedLiftRoundTripsAndNegates) {
  for (const int k : {8, 16, 32, 60, 64}) {
    const Pow2Ring ring(k);
    const i64 lo = (k == 64) ? std::numeric_limits<i64>::min() : -(i64{1} << (k - 1));
    const i64 hi = -(lo + 1);
    for (const i64 v : {i64{0}, i64{1}, i64{-1}, i64{17}, i64{-17}, hi, lo}) {
      EXPECT_EQ(ring.to_signed(ring.from_signed(v)), v) << "k=" << k << " v=" << v;
      // -lo is not representable: two's complement negation fixes it.
      EXPECT_EQ(ring.neg(ring.from_signed(v)), ring.from_signed(v == lo ? lo : -v))
          << "k=" << k << " v=" << v;
    }
  }
}

TEST(Pow2Mul, KaratsubaMatchesSchoolbookAcrossWidthsAndSizes) {
  std::mt19937_64 rng(0xf1a5);
  for (const int k : {8, 16, 32, 49, 60, 64}) {
    const Pow2Ring ring(k);
    for (const std::size_t n : {std::size_t{1}, std::size_t{16}, std::size_t{32},
                                std::size_t{64}, std::size_t{256}, std::size_t{1024}}) {
      const std::vector<u64> a = random_residues(n, ring, rng);
      const std::vector<u64> b = random_residues(n, ring, rng);
      std::vector<u64> sb(n);
      hemath::negacyclic_mul_pow2_schoolbook(a.data(), b.data(), sb.data(), n, ring);
      const std::vector<u64> fast = hemath::negacyclic_mul_pow2(a, b, ring);
      ASSERT_EQ(fast, sb) << "k=" << k << " n=" << n;
    }
  }
}

TEST(Pow2Mul, BatchMatchesSinglesOnBothHeuristicBranches) {
  std::mt19937_64 rng(0xbeef);
  const std::size_t n = 256;
  for (const int k : {16, 49, 64}) {
    const Pow2Ring ring(k);
    // Sparse weight (SoA shift-accumulate branch) and dense weight
    // (per-lane Karatsuba branch) — the crossover is nnz * n vs the
    // Karatsuba multiply count, so nnz 3 and nnz n land on opposite sides.
    for (const std::size_t nnz : {std::size_t{3}, n}) {
      std::vector<u64> w(n, 0);
      for (std::size_t j = 0; j < nnz; ++j) {
        w[(j * 37) % n] = ring.from_signed(static_cast<i64>(j % 11) - 5);
      }
      for (const std::size_t g : {std::size_t{1}, std::size_t{4}, std::size_t{5}}) {
        std::vector<std::vector<u64>> cts(g);
        std::vector<std::vector<u64>> outs(g, std::vector<u64>(n));
        std::vector<const u64*> in_ptrs(g);
        std::vector<u64*> out_ptrs(g);
        for (std::size_t l = 0; l < g; ++l) {
          cts[l] = random_residues(n, ring, rng);
          in_ptrs[l] = cts[l].data();
          out_ptrs[l] = outs[l].data();
        }
        hemath::negacyclic_mul_pow2_batch_into(in_ptrs, w.data(), out_ptrs, n, ring);
        for (std::size_t l = 0; l < g; ++l) {
          ASSERT_EQ(outs[l], hemath::negacyclic_mul_pow2(cts[l], w, ring))
              << "k=" << k << " nnz=" << nnz << " g=" << g << " lane=" << l;
        }
      }
    }
  }
}

/// Independent reference sharing no code with hemath/pow2.hpp: signed
/// schoolbook negacyclic convolution in __int128, reduced mod 2^k at the end.
std::vector<u64> i128_reference(const std::vector<u64>& ct, const std::vector<i64>& w,
                                const Pow2Ring& ring) {
  const std::size_t n = ct.size();
  std::vector<__int128> acc(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const __int128 x = ring.to_signed(ct[i]);
    for (std::size_t j = 0; j < n; ++j) {
      if (w[j] == 0) continue;
      const std::size_t idx = i + j;
      if (idx < n) acc[idx] += x * w[j];
      else acc[idx - n] -= x * w[j];
    }
  }
  std::vector<u64> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = ring.reduce(static_cast<u64>(acc[i]));
  return out;
}

TEST(Pow2Engine, EndToEndMatchesIndependentReference) {
  std::mt19937_64 rng(0x5eed);
  for (const int k : {32, 49, 62}) {
    const bfv::BfvParams p = bfv::BfvParams::create_pow2(256, 13, k);
    const bfv::BfvContext ctx(p);
    const bfv::PolyMulEngine engine(ctx, bfv::PolyMulBackend::kPow2);
    const Pow2Ring ring(k);

    std::vector<i64> w(p.n, 0);
    for (int j = 0; j < 20; ++j) w[rng() % p.n] = static_cast<i64>(rng() % 513) - 256;
    bfv::Plaintext pt = ctx.make_plaintext();
    for (std::size_t i = 0; i < p.n; ++i) pt.poly[i] = hemath::from_signed(w[i], p.t);

    const std::vector<u64> ct = random_residues(p.n, ring, rng);
    const std::vector<u64> want = i128_reference(ct, w, ring);

    const bfv::PlainSpectrum ws = engine.transform_plain(pt);
    const hemath::Poly out = engine.multiply(hemath::Poly(p.q, ct), ws);
    EXPECT_EQ(out.coeffs(), want) << "k=" << k;

    // Accumulator path: two accumulated products must equal the sum of two
    // direct multiplies, and finalize must be the bitwise accumulator.
    bfv::SpectralAccumulator acc;
    const bfv::CipherSpectrum cs = engine.transform_cipher_spectrum(hemath::Poly(p.q, ct));
    engine.multiply_accumulate(cs, ws, acc);
    engine.multiply_accumulate(cs, ws, acc);
    const hemath::Poly doubled = engine.finalize(acc);
    for (std::size_t i = 0; i < p.n; ++i) {
      EXPECT_EQ(doubled[i], ring.add(want[i], want[i])) << "k=" << k << " i=" << i;
    }
  }
}

TEST(Pow2Engine, CountersChargeKaratsubaMultiplies) {
  const bfv::BfvParams p = bfv::BfvParams::create_pow2(256, 13, 32);
  const bfv::BfvContext ctx(p);
  const bfv::PolyMulEngine engine(ctx, bfv::PolyMulBackend::kPow2);
  bfv::Plaintext pt = ctx.make_plaintext();
  pt.poly[1] = 3;
  const bfv::PlainSpectrum ws = engine.transform_plain(pt);
  const bfv::PolyMulCounters before = engine.counters();
  (void)engine.multiply(hemath::Poly(p.q, std::vector<u64>(p.n, 5)), ws);
  const bfv::PolyMulCounters d = engine.counters() - before;
  EXPECT_EQ(d.pointwise_products, hemath::pow2_mult_count(p.n));
  EXPECT_EQ(d.cipher_transforms, 1u);
  EXPECT_EQ(d.inverse_transforms, 1u);
}

TEST(Pow2Engine, RejectsMismatchedModulusShapes) {
  // kPow2 on a prime-q context must throw, and the NTT tables must not
  // exist on a pow2 context (ntt() is a programming error there).
  const bfv::BfvParams prime = bfv::BfvParams::create(256, 13, 40);
  const bfv::BfvContext prime_ctx(prime);
  EXPECT_THROW(bfv::PolyMulEngine(prime_ctx, bfv::PolyMulBackend::kPow2), std::invalid_argument);

  const bfv::BfvParams pow2 = bfv::BfvParams::create_pow2(256, 13, 40);
  const bfv::BfvContext pow2_ctx(pow2);
  EXPECT_THROW(pow2_ctx.ntt(), std::logic_error);
  EXPECT_NO_THROW(bfv::PolyMulEngine(pow2_ctx, bfv::PolyMulBackend::kNtt));
}

TEST(Pow2WrapAnalysis, FlipsExactlyAtThePredictedWidth) {
  // nnz=9, max_w=16, max_x=2^20: bound = 9 * 16 * 2^20 < 2^28, so 28 magnitude
  // bits + sign = 28 required bits... compute explicitly via the analyzer and
  // check the verdict flips between k = required-1 and k = required.
  analysis::Pow2Obligation ob;
  ob.n = 512;
  ob.weight_nnz = 9;
  ob.max_w = 16;
  ob.max_x = u64{1} << 20;
  const int kmin = analysis::min_wrap_free_k(ob);
  ASSERT_GT(kmin, 2);
  EXPECT_FALSE(analysis::analyze_pow2_polymul(ob, kmin - 1).wrap_free);
  EXPECT_TRUE(analysis::analyze_pow2_polymul(ob, kmin).wrap_free);
  EXPECT_EQ(analysis::analyze_pow2_polymul(ob, kmin).headroom_bits, 0);

  // The bound is exact: 9 * 16 * 2^20 = 144 * 2^20 needs 8 + 20 = 28
  // magnitude bits, 29 with sign.
  EXPECT_EQ(kmin, 29);

  // And the dynamic check agrees with the static proof at the boundary: a
  // maximal-operand product at kmin is bit-equal to the unbounded reference.
  const Pow2Ring ring(kmin);
  std::vector<u64> a(ob.n, 0), b(ob.n, 0);
  for (std::size_t j = 0; j < ob.weight_nnz; ++j) b[j * 50] = ring.from_signed(-16);
  for (std::size_t i = 0; i < ob.n; ++i) a[i] = ring.from_signed(-(i64{1} << 20));
  std::vector<u64> got(ob.n);
  hemath::negacyclic_mul_pow2_schoolbook(a.data(), b.data(), got.data(), ob.n, ring);
  std::vector<i64> bw(ob.n, 0);
  for (std::size_t j = 0; j < ob.weight_nnz; ++j) bw[j * 50] = -16;
  EXPECT_EQ(got, i128_reference(a, bw, ring));
}

TEST(Pow2WrapAnalysis, OverflowingObligationIsNeverAdmissible) {
  analysis::Pow2Obligation ob;
  ob.n = 512;
  ob.weight_nnz = 512;
  ob.max_w = u64{1} << 40;
  ob.max_x = u64{1} << 40;
  EXPECT_FALSE(analysis::analyze_pow2_polymul(ob, 62).wrap_free);
  EXPECT_EQ(analysis::min_wrap_free_k(ob), 0);
  EXPECT_TRUE(std::isinf(dse::ErrorModel::predict_variance_pow2(ob, 62)));
}

TEST(Pow2WrapAnalysis, ErrorBudgetIsZeroWhenProven) {
  analysis::Pow2Obligation ob;
  ob.n = 512;
  ob.weight_nnz = 4;
  ob.max_w = 8;
  ob.max_x = 1 << 16;
  EXPECT_EQ(dse::ErrorModel::predict_variance_pow2(ob, 40), 0.0);
}

dse::BackendExplorer make_explorer(const analysis::Pow2Obligation& ob, int min_k, int max_k) {
  dse::DesignSpace space(ob.n / 2, dse::SpaceBounds{});
  dse::ErrorModel model = dse::ErrorModel::from_weight_stats(ob.n, ob.weight_nnz,
                                                             static_cast<double>(ob.max_w));
  dse::CostModel cost(ob.n / 2, space.bounds());
  return dse::BackendExplorer(dse::BackendSpace(std::move(space), min_k, max_k),
                              std::move(model), std::move(cost), ob, 7);
}

TEST(BackendExplorer, AdmitsOnlyWrapFreePow2Points) {
  analysis::Pow2Obligation ob;
  ob.n = 512;
  ob.weight_nnz = 9;
  ob.max_w = 16;
  ob.max_x = u64{1} << 20;  // min wrap-free k is 29 (see above)
  // Width range straddles the proof boundary, so random/mutate draws land on
  // unprovable widths constantly and admission must filter every one.
  dse::BackendExplorer explorer = make_explorer(ob, 20, 40);
  dse::BackendDseOptions opts;
  opts.evaluations = 120;
  opts.population = 16;
  const auto points = explorer.explore(opts);
  EXPECT_EQ(points.size(), opts.evaluations);
  bool saw_pow2 = false;
  for (const auto& e : points) {
    if (e.point.backend != bfv::PolyMulBackend::kPow2) continue;
    saw_pow2 = true;
    EXPECT_GE(e.point.pow2_k, 29) << "unprovable pow2 width admitted";
    EXPECT_EQ(e.error_variance, 0.0);
    EXPECT_GT(e.normalized_power, 0.0);
  }
  EXPECT_TRUE(saw_pow2) << "the pow2 arm never survived admission";

  // The mixed front must carry the zero-error pow2 point (nothing with
  // error 0 at lower power can exist unless it is itself a pow2 point).
  const auto front = dse::pareto_front(points);
  ASSERT_FALSE(front.empty());
  bool front_has_pow2 = false;
  for (const auto& e : front) {
    front_has_pow2 |= e.point.backend == bfv::PolyMulBackend::kPow2;
  }
  EXPECT_TRUE(front_has_pow2);
}

TEST(BackendExplorer, Pow2PowerProxyIsMonotoneInWidth) {
  dse::DesignSpace space(256, dse::SpaceBounds{});
  dse::CostModel cost(256, space.bounds());
  double prev = 0.0;
  for (const int k : {8, 16, 32, 49, 62}) {
    const double p = dse::pow2_normalized_power(cost, 512, k);
    EXPECT_GT(p, prev) << "k=" << k;
    prev = p;
  }
}

TEST(Pow2Wire, PlanSpecRoundTripsThePow2Backend) {
  wire::PlanSpecWire spec;
  spec.params = bfv::BfvParams::create_pow2(256, 13, 40);
  spec.backend = bfv::PolyMulBackend::kPow2;
  spec.protocol_seed = 0xabcd;
  spec.in_h = 4;
  spec.in_w = 4;
  wire::ByteWriter w;
  wire::encode(spec, w);
  const wire::Bytes bytes = w.take();
  wire::ByteReader r(bytes);
  const wire::PlanSpecWire back = wire::decode_plan_spec(r);
  EXPECT_EQ(back.backend, bfv::PolyMulBackend::kPow2);
  EXPECT_EQ(back.params.q, spec.params.q);

  // One past kPow2 is still rejected (the range check moved, not vanished).
  wire::ByteWriter w2;
  wire::encode(spec, w2);
  wire::Bytes corrupt = w2.take();
  // The backend byte sits right after the params body; find it by encoding a
  // second spec differing only in backend and diffing.
  wire::ByteWriter w3;
  wire::PlanSpecWire ntt_spec = spec;
  ntt_spec.backend = bfv::PolyMulBackend::kNtt;
  wire::encode(ntt_spec, w3);
  const wire::Bytes ntt_bytes = w3.take();
  std::size_t backend_at = corrupt.size();
  for (std::size_t i = 0; i < corrupt.size(); ++i) {
    if (corrupt[i] != ntt_bytes[i]) {
      backend_at = i;
      break;
    }
  }
  ASSERT_LT(backend_at, corrupt.size());
  corrupt[backend_at] = static_cast<std::uint8_t>(bfv::PolyMulBackend::kPow2) + 1;
  wire::ByteReader bad(corrupt);
  EXPECT_THROW(wire::decode_plan_spec(bad), wire::WireError);
}

}  // namespace
}  // namespace flash
