// Meta-tests for the differential-testing subsystem itself: generator
// determinism and reproducer fidelity (a printed spec line regenerates the
// exact same case), spec parsing, shrinker behavior, and the corpus reader.
#include <gtest/gtest.h>

#include <sstream>

#include "testing/fuzz.hpp"
#include "testing/generators.hpp"
#include "testing/oracle.hpp"
#include "testing/shrink.hpp"

namespace flash::testing {
namespace {

TEST(Generators, PolymulCaseIsDeterministic) {
  const PolymulCase a = make_polymul_case({.seed = 42});
  const PolymulCase b = make_polymul_case({.seed = 42});
  EXPECT_EQ(a.spec, b.spec);
  EXPECT_EQ(a.ct, b.ct);
  EXPECT_EQ(a.w, b.w);
  const PolymulCase other = make_polymul_case({.seed = 43});
  EXPECT_NE(a.ct, other.ct);
}

TEST(Generators, ResolvedSpecIsAFaithfulReproducer) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 0xdecafull}) {
    const PolymulCase original = make_polymul_case({.seed = seed});
    // The resolved spec must be fully explicit...
    EXPECT_GT(original.spec.n, 0u);
    EXPECT_GT(original.spec.nnz, 0u);
    // ...and regenerating from it (as `flash_fuzz --repro` does, via the
    // printed line) must rebuild the identical case.
    PolymulSpec parsed;
    ASSERT_TRUE(parse_polymul_spec(original.spec.describe(), parsed));
    EXPECT_EQ(parsed, original.spec);
    const PolymulCase rebuilt = make_polymul_case(parsed);
    EXPECT_EQ(rebuilt.ct, original.ct);
    EXPECT_EQ(rebuilt.w, original.w);
  }
}

TEST(Generators, ShapeOverridesDoNotPerturbOtherStreams) {
  const PolymulCase base = make_polymul_case({.seed = 9});
  // Forcing a different ring degree changes the shape but must not change
  // how the seed resolves the *other* aspects (modulus split, weight bound).
  PolymulSpec halved = base.spec;
  halved.n = base.spec.n / 2;
  halved.nnz = 0;  // re-derive under the new cap
  const PolymulCase smaller = make_polymul_case(halved);
  EXPECT_EQ(smaller.spec.n, base.spec.n / 2);
  EXPECT_EQ(smaller.max_w, base.max_w);
  EXPECT_EQ(smaller.params.t, base.params.t);
}

TEST(Generators, DensifyKeepsNnzAndMagnitudes) {
  const PolymulCase sparse = make_polymul_case({.seed = 11});
  PolymulSpec dense_spec = sparse.spec;
  dense_spec.densify = true;
  const PolymulCase dense = make_polymul_case(dense_spec);
  EXPECT_EQ(dense.nnz, sparse.nnz);
  // Densified pattern is the contiguous prefix.
  for (std::size_t i = 0; i < dense.nnz; ++i) EXPECT_NE(dense.w[i], 0);
  for (std::size_t i = dense.nnz; i < dense.w.size(); ++i) EXPECT_EQ(dense.w[i], 0);
}

TEST(Generators, ConvCaseIsDeterministicAndReproducible) {
  const ConvCase a = make_conv_case({.seed = 42});
  const ConvCase b = make_conv_case({.seed = 42});
  EXPECT_EQ(a.spec, b.spec);
  EXPECT_TRUE(a.x == b.x);
  EXPECT_EQ(a.weights.data(), b.weights.data());

  ConvSpec parsed;
  ASSERT_TRUE(parse_conv_spec(a.spec.describe(), parsed));
  EXPECT_EQ(parsed, a.spec);
  const ConvCase rebuilt = make_conv_case(parsed);
  EXPECT_TRUE(rebuilt.x == a.x);
  EXPECT_EQ(rebuilt.weights.data(), a.weights.data());
}

TEST(Generators, NetworkTraceIsDeterministicAndReproducible) {
  const auto a = make_network_trace({.seed = 0x41});
  const auto b = make_network_trace({.seed = 0x41});
  ASSERT_EQ(a.spec, b.spec);
  ASSERT_EQ(a.stack.layers.size(), b.stack.layers.size());
  ASSERT_EQ(a.inputs.size(), a.spec.sessions);
  for (std::size_t l = 0; l < a.stack.layers.size(); ++l) {
    EXPECT_EQ(a.stack.layers[l].weights.data(), b.stack.layers[l].weights.data());
    EXPECT_EQ(a.stack.layers[l].fc_weights, b.stack.layers[l].fc_weights);
  }
  for (std::size_t i = 0; i < a.inputs.size(); ++i) {
    EXPECT_EQ(a.inputs[i].data(), b.inputs[i].data());
  }
  // The stack is always a runnable program ending in an FC head.
  const auto result =
      a.stack.forward(a.inputs[0], tensor::LayerStack::reference_executor());
  EXPECT_TRUE(result.has_logits);

  // The printed spec line round-trips (the soak tier's repro path).
  NetworkTraceSpec parsed;
  ASSERT_TRUE(parse_network_trace_spec(a.spec.describe(), parsed));
  EXPECT_EQ(parsed, a.spec);
  const auto c = make_network_trace(parsed);
  ASSERT_EQ(c.inputs.size(), a.inputs.size());
  EXPECT_EQ(c.inputs[0].data(), a.inputs[0].data());

  // Session/block overrides resolve without shifting the shared draws.
  const auto wide = make_network_trace({.seed = 0x41, .sessions = 5});
  EXPECT_EQ(wide.spec.sessions, 5u);
  EXPECT_EQ(wide.stack.layers[0].weights.data(), a.stack.layers[0].weights.data());

  // Different seeds vary the stem geometry across the variant cycle.
  bool geometry_varies = false;
  const auto& ref = a.stack.layers[0];
  for (std::uint64_t seed = 1; seed < 9; ++seed) {
    const auto other = make_network_trace({.seed = seed});
    const auto& stem = other.stack.layers[0];
    if (stem.weights.kernel_h() != ref.weights.kernel_h() ||
        stem.weights.kernel_w() != ref.weights.kernel_w() || stem.stride != ref.stride) {
      geometry_varies = true;
    }
  }
  EXPECT_TRUE(geometry_varies);
}

TEST(Generators, ParseRejectsMalformedSpecs) {
  PolymulSpec pm;
  ConvSpec cv;
  EXPECT_FALSE(parse_polymul_spec("", pm));
  EXPECT_FALSE(parse_polymul_spec("polymul:", pm));
  EXPECT_FALSE(parse_polymul_spec("polymul:bogus", pm));
  EXPECT_FALSE(parse_polymul_spec("polymul:unknown=3", pm));
  EXPECT_FALSE(parse_polymul_spec("conv:seed=1", pm));
  EXPECT_FALSE(parse_conv_spec("polymul:seed=1", cv));
  EXPECT_TRUE(parse_polymul_spec("polymul:seed=0x2a,n=256", pm));
  EXPECT_EQ(pm.seed, 42u);
  EXPECT_EQ(pm.n, 256u);
}

TEST(Shrink, GreedyShrinkFindsSmallCase) {
  // Synthetic failure: any case with n >= 64 "fails". The shrinker should
  // walk n down to exactly 64 (one halving further would pass).
  PolymulSpec failing = make_polymul_case({.seed = 5, .n = 1024}).spec;
  const auto outcome =
      shrink_spec<PolymulSpec>(failing, polymul_reducers(), [](const PolymulSpec& s) {
        return make_polymul_case(s).spec.n >= 64;
      });
  EXPECT_EQ(outcome.spec.n, 64u);
  EXPECT_GT(outcome.steps, 0u);
}

TEST(Shrink, ShrunkSpecStillFailsThePredicate) {
  PolymulSpec failing = make_polymul_case({.seed = 6}).spec;
  const auto predicate = [](const PolymulSpec& s) { return make_polymul_case(s).nnz >= 2; };
  ASSERT_TRUE(predicate(failing));
  const auto outcome = shrink_spec<PolymulSpec>(failing, polymul_reducers(), predicate);
  EXPECT_TRUE(predicate(outcome.spec));
  EXPECT_EQ(make_polymul_case(outcome.spec).nnz, 2u);
}

TEST(Shrink, ConvReducersReachMinimalGeometry) {
  ConvSpec failing = make_conv_case({.seed = 3, .c = 3, .m = 3, .h = 9, .w = 9, .k = 2}).spec;
  // Everything "fails": the shrinker should bottom out at the smallest
  // geometry the reducers can express.
  const auto outcome =
      shrink_spec<ConvSpec>(failing, conv_reducers(), [](const ConvSpec&) { return true; });
  EXPECT_EQ(outcome.spec.c, 1u);
  EXPECT_EQ(outcome.spec.m, 1u);
  EXPECT_EQ(outcome.spec.stride, 1u);
  EXPECT_EQ(outcome.spec.pad, 0);
  EXPECT_EQ(outcome.spec.h, outcome.spec.k);
  EXPECT_EQ(outcome.spec.w, outcome.spec.k);
}

TEST(Fuzz, CorpusReaderSkipsCommentsAndBlanks) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "42\n"
      "  polymul:seed=0x1,n=256,nnz=4,densify=0  \n"
      "\t# indented comment\n"
      "conv:seed=0x2,c=1,m=1,h=4,w=4,k=2,stride=1,pad=0\n");
  const auto entries = load_seed_corpus(in);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], "42");
  EXPECT_EQ(entries[1], "polymul:seed=0x1,n=256,nnz=4,densify=0");
  EXPECT_EQ(entries[2], "conv:seed=0x2,c=1,m=1,h=4,w=4,k=2,stride=1,pad=0");
}

TEST(Fuzz, RunReproAcceptsAllThreeLineForms) {
  OracleOptions options;
  EXPECT_TRUE(run_repro("polymul:seed=0x2a", options).ok);
  EXPECT_TRUE(run_repro("42", options).ok);
  EXPECT_THROW(run_repro("garbage", options), std::invalid_argument);
}

}  // namespace
}  // namespace flash::testing
