// Steady-state allocation tests: after warmup, the _into transform APIs must
// perform ZERO heap allocations (the scratch arena absorbs all working
// storage). Global operator new/delete are replaced with counting versions;
// each test runs one warmup call, snapshots the counter, runs the hot call
// again, and asserts the delta is exactly zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "core/flash_accelerator.hpp"
#include "core/scratch.hpp"
#include "fft/complex_fft.hpp"
#include "fft/fxp_fft.hpp"
#include "fft/negacyclic.hpp"
#include "fft/radix4.hpp"
#include "hemath/ntt.hpp"
#include "hemath/pointwise.hpp"
#include "hemath/pow2.hpp"
#include "hemath/primes.hpp"
#include "hemath/sampler.hpp"
#include "hemath/shoup_ntt.hpp"
#include "sparsefft/executor.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// Counting global allocator. Deletes are intentionally not counted: freeing
// is allowed in steady state only if nothing was allocated, and the assert
// is on the allocation count alone.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace flash {
namespace {

using fft::cplx;
using hemath::u64;

std::uint64_t allocs() { return g_alloc_count.load(std::memory_order_relaxed); }

TEST(AllocFree, FxpNegacyclicForwardAndInverseInto) {
  const std::size_t n = 1024;
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 10));
  std::vector<double> a(n, 0.0);
  for (std::size_t i = 0; i < n; i += 5) a[i] = static_cast<double>(i % 11) - 5.0;
  std::vector<cplx> spec(n / 2);
  std::vector<double> back(n);
  core::ScratchArena& arena = core::thread_scratch();
  fft::FxpFftStats stats;
  fxp.forward_into(a, spec, &stats, &arena);  // warmup: arena grows, stats vector sizes
  fxp.inverse_into(spec, back, &stats, &arena);

  const std::uint64_t before = allocs();
  fxp.forward_into(a, spec, &stats, &arena);
  fxp.inverse_into(spec, back, &stats, &arena);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, NegacyclicFftForwardAndInverseInto) {
  const std::size_t n = 2048;
  fft::NegacyclicFft nfft(n);
  std::vector<double> a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = static_cast<double>((i * 7) % 255) - 127.0;
  std::vector<cplx> spec(n / 2);
  std::vector<double> back(n);
  core::ScratchArena& arena = core::thread_scratch();
  nfft.forward_into(a, spec);
  nfft.inverse_into(spec, back, &arena);

  const std::uint64_t before = allocs();
  nfft.forward_into(a, spec);
  nfft.inverse_into(spec, back, &arena);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, FftPlanSpanForwardInverse) {
  const std::size_t m = 1024;
  fft::FftPlan plan(m, +1);
  std::vector<cplx> a(m, cplx{1.0, -1.0});
  const std::uint64_t before = allocs();
  plan.forward(std::span<cplx>(a));
  plan.inverse(std::span<cplx>(a));
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, NttSpanForwardInversePointwise) {
  const std::size_t n = 2048;
  const u64 q = hemath::find_ntt_prime(49, n);
  hemath::NttTables tables(q, n);
  hemath::Sampler sampler(9);
  std::vector<u64> a = sampler.uniform_poly(q, n).coeffs();
  std::vector<u64> b = sampler.uniform_poly(q, n).coeffs();
  std::vector<u64> c(n);
  const std::uint64_t before = allocs();
  tables.forward(std::span<u64>(a));
  tables.forward(std::span<u64>(b));
  tables.pointwise(std::span<const u64>(a), std::span<const u64>(b), std::span<u64>(c));
  tables.inverse(std::span<u64>(c));
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, ShoupNttSpanForwardInverse) {
  const std::size_t n = 2048;
  const u64 q = hemath::find_ntt_prime(49, n);
  hemath::ShoupNttTables tables(q, n);
  hemath::Sampler sampler(10);
  std::vector<u64> a = sampler.uniform_poly(q, n).coeffs();
  const std::uint64_t before = allocs();
  tables.forward(std::span<u64>(a));
  tables.inverse(std::span<u64>(a));
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, NttBatchIntoAfterWarmup) {
  const std::size_t n = 2048, batch = 6;
  const u64 q = hemath::find_ntt_prime(49, n);
  hemath::NttTables tables(q, n);
  hemath::ShoupNttTables shoup(q, n);
  hemath::Sampler sampler(11);
  std::vector<std::vector<u64>> polys(batch);
  for (auto& p : polys) p = sampler.uniform_poly(q, n).coeffs();
  std::vector<u64*> ptrs(batch);
  for (std::size_t b = 0; b < batch; ++b) ptrs[b] = polys[b].data();
  core::ScratchArena& arena = core::thread_scratch();
  // Warmup sizes the arena for the SoA lane buffers.
  tables.forward_batch_into(ptrs, &arena);
  tables.inverse_batch_into(ptrs, &arena);
  shoup.forward_batch_into(ptrs, &arena);
  shoup.inverse_batch_into(ptrs, &arena);

  const std::uint64_t before = allocs();
  tables.forward_batch_into(ptrs, &arena);
  tables.inverse_batch_into(ptrs, &arena);
  shoup.forward_batch_into(ptrs, &arena);
  shoup.inverse_batch_into(ptrs, &arena);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, FxpFftBatchIntoAfterWarmup) {
  const std::size_t m = 1024, batch = 5;
  fft::FxpFft fxp(m, core::default_approx_config(m * 2, 1u << 10));
  std::vector<std::vector<cplx>> in(batch, std::vector<cplx>(m));
  std::vector<std::vector<cplx>> out(batch, std::vector<cplx>(m));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < m; i += 3) in[b][i] = {static_cast<double>(b + 1), -2.0};
  }
  std::vector<const cplx*> in_ptrs(batch);
  std::vector<cplx*> out_ptrs(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    in_ptrs[b] = in[b].data();
    out_ptrs[b] = out[b].data();
  }
  core::ScratchArena& arena = core::thread_scratch();
  fft::FxpFftStats stats;
  fxp.forward_batch_into(std::span<const cplx* const>(in_ptrs), std::span<cplx* const>(out_ptrs),
                         &stats, &arena);
  fxp.inverse_batch_into(std::span<const cplx* const>(in_ptrs), std::span<cplx* const>(out_ptrs),
                         &stats, &arena);

  const std::uint64_t before = allocs();
  fxp.forward_batch_into(std::span<const cplx* const>(in_ptrs), std::span<cplx* const>(out_ptrs),
                         &stats, &arena);
  fxp.inverse_batch_into(std::span<const cplx* const>(in_ptrs), std::span<cplx* const>(out_ptrs),
                         &stats, &arena);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, FxpNegacyclicBatchIntoAfterWarmup) {
  const std::size_t n = 1024, batch = 4;
  fft::FxpNegacyclicTransform fxp(n, core::default_approx_config(n, 1u << 10));
  std::vector<std::vector<double>> a(batch, std::vector<double>(n, 0.0));
  std::vector<std::vector<cplx>> spec(batch, std::vector<cplx>(n / 2));
  std::vector<std::vector<double>> back(batch, std::vector<double>(n));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = b; i < n; i += 7) a[b][i] = static_cast<double>(i % 9) - 4.0;
  }
  std::vector<const double*> a_ptrs(batch);
  std::vector<cplx*> spec_ptrs(batch);
  std::vector<const cplx*> cspec_ptrs(batch);
  std::vector<double*> back_ptrs(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    a_ptrs[b] = a[b].data();
    spec_ptrs[b] = spec[b].data();
    cspec_ptrs[b] = spec[b].data();
    back_ptrs[b] = back[b].data();
  }
  core::ScratchArena& arena = core::thread_scratch();
  fft::FxpFftStats stats;
  fxp.forward_batch_into(std::span<const double* const>(a_ptrs),
                         std::span<cplx* const>(spec_ptrs), &stats, &arena);
  fxp.inverse_batch_into(std::span<const cplx* const>(cspec_ptrs),
                         std::span<double* const>(back_ptrs), &stats, &arena);

  const std::uint64_t before = allocs();
  fxp.forward_batch_into(std::span<const double* const>(a_ptrs),
                         std::span<cplx* const>(spec_ptrs), &stats, &arena);
  fxp.inverse_batch_into(std::span<const cplx* const>(cspec_ptrs),
                         std::span<double* const>(back_ptrs), &stats, &arena);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, PointwiseMulmodRaw) {
  const std::size_t n = 4096;
  const u64 q = hemath::find_ntt_prime(49, n);
  std::vector<u64> a(n, q - 1), b(n, q - 2), c(n);
  const std::uint64_t before = allocs();
  hemath::pointwise_mulmod(a.data(), b.data(), c.data(), n, q);
  hemath::pointwise_mulmod_accumulate(c.data(), a.data(), b.data(), n, q);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, Pow2NegacyclicIntoAndBatchIntoAfterWarmup) {
  const std::size_t n = 1024, batch = 5;
  const hemath::Pow2Ring ring(49);
  hemath::Sampler sampler(12);
  std::vector<u64> w = sampler.uniform_poly(u64{1} << 49, n).coeffs();
  std::vector<std::vector<u64>> cts(batch);
  std::vector<std::vector<u64>> outs(batch, std::vector<u64>(n));
  for (std::size_t b = 0; b < batch; ++b) {
    cts[b] = sampler.uniform_poly(u64{1} << 49, n).coeffs();
  }
  std::vector<const u64*> ct_ptrs(batch);
  std::vector<u64*> out_ptrs(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    ct_ptrs[b] = cts[b].data();
    out_ptrs[b] = outs[b].data();
  }
  core::ScratchArena& arena = core::thread_scratch();
  // Warmup: the Karatsuba recursion and the batch SoA sweep size the arena.
  hemath::negacyclic_mul_pow2_into(cts[0].data(), w.data(), outs[0].data(), n, ring, &arena);
  hemath::negacyclic_mul_pow2_batch_into(std::span<const u64* const>(ct_ptrs), w.data(),
                                         std::span<u64* const>(out_ptrs), n, ring, &arena);

  const std::uint64_t before = allocs();
  hemath::negacyclic_mul_pow2_into(cts[0].data(), w.data(), outs[0].data(), n, ring, &arena);
  hemath::negacyclic_mul_pow2_batch_into(std::span<const u64* const>(ct_ptrs), w.data(),
                                         std::span<u64* const>(out_ptrs), n, ring, &arena);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, SparseExecuteInto) {
  const std::size_t m = 1024;
  std::vector<std::size_t> pos;
  for (std::size_t i = 0; i < 72; ++i) pos.push_back((i * 37) % m);
  sparsefft::SparsityPattern pattern(m, std::move(pos));
  sparsefft::SparseFftPlan plan(m, pattern);
  std::vector<cplx> input(m, cplx{0.0, 0.0});
  for (std::size_t p : pattern.nonzeros()) input[p] = {2.0, 0.0};
  std::vector<cplx> out(m);
  const std::uint64_t before = allocs();
  sparsefft::execute_into(plan, input, out);
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocFree, Radix4ForwardAfterWarmup) {
  const std::size_t m = 1024;
  std::vector<cplx> a(m, cplx{1.5, -0.5});
  std::vector<cplx> work = a;
  fft::radix4_forward(work, nullptr);  // warmup: grows the thread arena
  work = a;
  const std::uint64_t before = allocs();
  fft::radix4_forward(work, nullptr);
  EXPECT_EQ(allocs() - before, 0u);
}

}  // namespace
}  // namespace flash
