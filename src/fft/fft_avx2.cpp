// AVX2 radix-2 butterfly rows for the double-precision FFT. Two complex
// values per 256-bit vector, AoS layout ([re0 im0 re1 im1]).
//
// Bit-identity with the scalar path: the complex product t = v*w is
// evaluated as (v.re*w.re - v.im*w.im, v.im*w.re + v.re*w.im) — two
// multiplies and one add/sub per component, exactly the operation sequence
// the scalar butterflies perform under -ffp-contract=off (libstdc++'s
// complex operator* fast path). vaddsubpd performs the even-lane subtract /
// odd-lane add in one instruction with ordinary IEEE rounding per lane, and
// intrinsics are never FMA-contracted, so every lane matches the scalar
// result bit for bit (validated over the differential corpus by
// tests/test_simd_kernels.cpp).
#include "fft/fft_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace flash::fft::detail {

void fft_stage_avx2(cplx* a, const cplx* tw, std::size_t m, std::size_t half) {
  const std::size_t len = half * 2;
  double* d = reinterpret_cast<double*>(a);
  const double* w = reinterpret_cast<const double*>(tw);
  for (std::size_t block = 0; block < m; block += len) {
    double* ub = d + 2 * block;
    double* vb = ub + 2 * half;
    for (std::size_t j = 0; j < half; j += 2) {
      const __m256d vu = _mm256_loadu_pd(ub + 2 * j);
      const __m256d vv = _mm256_loadu_pd(vb + 2 * j);
      const __m256d vw = _mm256_loadu_pd(w + 2 * j);
      const __m256d wr = _mm256_movedup_pd(vw);        // [w0.re w0.re w1.re w1.re]
      const __m256d wi = _mm256_permute_pd(vw, 0xF);   // [w0.im w0.im w1.im w1.im]
      const __m256d vswap = _mm256_permute_pd(vv, 0x5);  // [v0.im v0.re v1.im v1.re]
      // even lanes: v.re*w.re - v.im*w.im ; odd lanes: v.im*w.re + v.re*w.im
      const __m256d t = _mm256_addsub_pd(_mm256_mul_pd(vv, wr), _mm256_mul_pd(vswap, wi));
      _mm256_storeu_pd(ub + 2 * j, _mm256_add_pd(vu, t));
      _mm256_storeu_pd(vb + 2 * j, _mm256_sub_pd(vu, t));
    }
  }
}

}  // namespace flash::fft::detail

#else  // !__AVX2__ — non-x86 build: unreachable stub (dispatch never selects AVX2).

#include <cstdlib>

namespace flash::fft::detail {
void fft_stage_avx2(cplx*, const cplx*, std::size_t, std::size_t) { std::abort(); }
}  // namespace flash::fft::detail

#endif
