#include "fft/transform_cache.hpp"

#include <map>
#include <mutex>
#include <sstream>
#include <string>

#include "core/thread_annotations.hpp"

namespace flash::fft {

namespace {

struct Caches {
  std::mutex mu;
  std::map<std::pair<hemath::u64, std::size_t>, std::shared_ptr<const hemath::NttTables>> ntt
      FLASH_GUARDED_BY(mu);
  std::map<std::size_t, std::shared_ptr<const NegacyclicFft>> fft FLASH_GUARDED_BY(mu);
  std::map<std::string, std::shared_ptr<const FxpNegacyclicTransform>> fxp FLASH_GUARDED_BY(mu);
  std::uint64_t hits FLASH_GUARDED_BY(mu) = 0;
  std::uint64_t misses FLASH_GUARDED_BY(mu) = 0;
};

Caches& caches() {
  static Caches c;  // leaked at exit by design (function-local static)
  return c;
}

/// Every field of the config participates in the key: two design points that
/// differ anywhere produce different twiddle tables / rounding behavior.
std::string fxp_key(std::size_t n, const FxpFftConfig& cfg) {
  std::ostringstream key;
  key << n << '|' << cfg.input_frac_bits << '|' << cfg.data_width << '|' << cfg.twiddle_k << '|'
      << cfg.twiddle_min_exp << '|' << static_cast<int>(cfg.rounding) << '|';
  for (int b : cfg.stage_frac_bits) key << b << ',';
  return key.str();
}

}  // namespace

/// find-or-construct; the caller holds the cache lock (so the guarded maps
/// may be passed by reference). Construction failures (invalid parameters)
/// propagate without leaving an empty entry behind.
template <typename Map, typename Key, typename Make>
auto lookup(Caches& c, Map& map, const Key& key, const Make& make) FLASH_REQUIRES(c.mu) {
  auto it = map.find(key);
  if (it != map.end()) {
    ++c.hits;
    return it->second;
  }
  auto made = make();
  ++c.misses;
  map.emplace(key, made);
  return made;
}

std::shared_ptr<const hemath::NttTables> shared_ntt_tables(hemath::u64 q, std::size_t n) {
  Caches& c = caches();
  std::lock_guard<std::mutex> lock(c.mu);
  return lookup(c, c.ntt, std::make_pair(q, n),
                [&] { return std::make_shared<const hemath::NttTables>(q, n); });
}

std::shared_ptr<const NegacyclicFft> shared_negacyclic_fft(std::size_t n) {
  Caches& c = caches();
  std::lock_guard<std::mutex> lock(c.mu);
  return lookup(c, c.fft, n, [&] { return std::make_shared<const NegacyclicFft>(n); });
}

std::shared_ptr<const FxpNegacyclicTransform> shared_fxp_transform(std::size_t n,
                                                                  const FxpFftConfig& config) {
  Caches& c = caches();
  std::lock_guard<std::mutex> lock(c.mu);
  return lookup(c, c.fxp, fxp_key(n, config),
                [&] { return std::make_shared<const FxpNegacyclicTransform>(n, config); });
}

TransformCacheStats transform_cache_stats() {
  Caches& c = caches();
  std::lock_guard<std::mutex> lock(c.mu);
  return {c.ntt.size(), c.fft.size(), c.fxp.size(), c.hits, c.misses};
}

void clear_transform_caches() {
  Caches& c = caches();
  std::lock_guard<std::mutex> lock(c.mu);
  c.ntt.clear();
  c.fft.clear();
  c.fxp.clear();
  c.hits = 0;
  c.misses = 0;
}

}  // namespace flash::fft
