#include "fft/transform_cache.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>

#include "core/thread_annotations.hpp"

namespace flash::fft {

namespace {

std::atomic<void (*)(const char*)> g_make_hook{nullptr};

void run_make_hook(const char* kind) {
  if (auto* hook = g_make_hook.load(std::memory_order_acquire)) hook(kind);
}

/// One cache shard: the mutex guards only the key → entry map (find/insert,
/// O(log entries) on tiny maps). The table itself is built through the
/// entry's once_flag *after* the lock is dropped, so a slow construction
/// convoys nobody but same-key waiters — the PR-1 lock-convoy fix.
template <typename Key, typename Value>
class Shard {
 public:
  template <typename Make>
  std::shared_ptr<const Value> get_or_make(const Key& key, const char* kind, const Make& make) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = map_.try_emplace(key);
      if (inserted) it->second = std::make_shared<Entry>();
      entry = it->second;
      if (entry->ready.load(std::memory_order_acquire)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return entry->value;
      }
    }
    // Outside the shard lock: first toucher constructs; same-key racers wait
    // inside call_once; a throwing make() leaves the flag unset so a later
    // lookup retries construction instead of caching the failure.
    bool constructed = false;
    std::call_once(entry->once, [&] {
      run_make_hook(kind);
      entry->value = make();
      entry->ready.store(true, std::memory_order_release);
      constructed = true;
    });
    if (constructed) {
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return entry->value;
  }

  std::size_t ready_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& [key, entry] : map_) {
      if (entry->ready.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();  // in-flight constructions keep their Entry alive via shared_ptr
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::once_flag once;
    std::atomic<bool> ready{false};
    // Written exactly once inside call_once, read only after `ready` is
    // observed true (or after the call_once fence) — no lock needed.
    std::shared_ptr<const Value> value;
  };

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<Entry>> map_ FLASH_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

struct Caches {
  Shard<std::pair<hemath::u64, std::size_t>, hemath::NttTables> ntt;
  Shard<std::size_t, NegacyclicFft> fft;
  Shard<std::string, FxpNegacyclicTransform> fxp;
};

Caches& caches() {
  static Caches c;  // leaked at exit by design (function-local static)
  return c;
}

/// Every field of the config participates in the key: two design points that
/// differ anywhere produce different twiddle tables / rounding behavior.
std::string fxp_key(std::size_t n, const FxpFftConfig& cfg) {
  std::ostringstream key;
  key << n << '|' << cfg.input_frac_bits << '|' << cfg.data_width << '|' << cfg.twiddle_k << '|'
      << cfg.twiddle_min_exp << '|' << static_cast<int>(cfg.rounding) << '|';
  for (int b : cfg.stage_frac_bits) key << b << ',';
  return key.str();
}

}  // namespace

std::shared_ptr<const hemath::NttTables> shared_ntt_tables(hemath::u64 q, std::size_t n) {
  return caches().ntt.get_or_make(std::make_pair(q, n), "ntt",
                                  [&] { return std::make_shared<const hemath::NttTables>(q, n); });
}

std::shared_ptr<const NegacyclicFft> shared_negacyclic_fft(std::size_t n) {
  return caches().fft.get_or_make(n, "fft",
                                  [&] { return std::make_shared<const NegacyclicFft>(n); });
}

std::shared_ptr<const FxpNegacyclicTransform> shared_fxp_transform(std::size_t n,
                                                                  const FxpFftConfig& config) {
  return caches().fxp.get_or_make(fxp_key(n, config), "fxp", [&] {
    return std::make_shared<const FxpNegacyclicTransform>(n, config);
  });
}

TransformCacheStats transform_cache_stats() {
  Caches& c = caches();
  TransformCacheStats s;
  s.ntt_entries = c.ntt.ready_entries();
  s.fft_entries = c.fft.ready_entries();
  s.fxp_entries = c.fxp.ready_entries();
  s.ntt_hits = c.ntt.hits();
  s.ntt_misses = c.ntt.misses();
  s.fft_hits = c.fft.hits();
  s.fft_misses = c.fft.misses();
  s.fxp_hits = c.fxp.hits();
  s.fxp_misses = c.fxp.misses();
  s.hits = s.ntt_hits + s.fft_hits + s.fxp_hits;
  s.misses = s.ntt_misses + s.fft_misses + s.fxp_misses;
  return s;
}

void clear_transform_caches() {
  Caches& c = caches();
  c.ntt.clear();
  c.fft.clear();
  c.fxp.clear();
}

namespace testing_hooks {
void set_transform_cache_make_hook(void (*hook)(const char* kind)) {
  g_make_hook.store(hook, std::memory_order_release);
}
}  // namespace testing_hooks

}  // namespace flash::fft
