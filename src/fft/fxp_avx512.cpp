// AVX-512 kernel for one batched (8-lane SoA) narrow-path fixed-point DIT
// stage. Compiled with -mavx512f -mavx512dq in its own TU; the driver
// (fxp_fft.cpp) only calls it when the active level grants AVX-512.
//
// Vectorization axis: eight *polynomials* interleaved lane-wise, all lanes
// executing one polynomial's butterfly at the same coefficient index — so
// every load is contiguous (no gathers), the twiddle's CSD digit loop runs
// once per (stage, twiddle) for the whole group, and every lane performs
// exactly the scalar narrow path's int64 operations: bit-identical outputs.
// Per-lane shifts are uniform, done via the variable-count forms with a
// broadcast count.
#include "fft/fxp_kernels.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <algorithm>
#include <bit>

namespace flash::fft::detail {

namespace {

inline __m512i csd8(__m512i m, const NarrowDigit* digits, std::size_t count, bool round_nearest) {
  __m512i acc = _mm512_setzero_si512();
  for (std::size_t i = 0; i < count; ++i) {
    const int s = digits[i].shift;
    __m512i term;
    if (s <= 0) {
      term = _mm512_sllv_epi64(m, _mm512_set1_epi64(-s));
    } else {
      term = m;
      if (round_nearest) {
        term = _mm512_add_epi64(term, _mm512_set1_epi64(std::int64_t{1} << (s - 1)));
      }
      term = _mm512_srav_epi64(term, _mm512_set1_epi64(s));
    }
    acc = digits[i].sign > 0 ? _mm512_add_epi64(acc, term) : _mm512_sub_epi64(acc, term);
  }
  return acc;
}

inline __m512i requant8(__m512i v, int shift, bool round_nearest, __m512i lim, __m512i neg_lim,
                        std::uint64_t* sats) {
  if (shift > 0) {
    if (round_nearest) {
      v = _mm512_add_epi64(v, _mm512_set1_epi64(std::int64_t{1} << (shift - 1)));
    }
    v = _mm512_srav_epi64(v, _mm512_set1_epi64(shift));
  } else if (shift < 0) {
    v = _mm512_sllv_epi64(v, _mm512_set1_epi64(-shift));
  }
  const __mmask8 over = _mm512_cmpgt_epi64_mask(v, lim);
  const __mmask8 under = _mm512_cmpgt_epi64_mask(neg_lim, v);
  v = _mm512_mask_mov_epi64(v, over, lim);
  v = _mm512_mask_mov_epi64(v, under, neg_lim);
  *sats += static_cast<std::uint64_t>(
      std::popcount(static_cast<unsigned>(static_cast<unsigned char>(over | under))));
  return v;
}

}  // namespace

void fxp_stage_batch_avx512(std::int64_t* re, std::int64_t* im, std::size_t active_lanes,
                            const FxpStageParams& p, FxpFftStats* stats) {
  constexpr std::size_t g = 8;  // SoA lanes per vector
  const std::size_t len = p.half * 2;
  const std::size_t nblocks = p.m / len;
  const __m512i lim = _mm512_set1_epi64(p.lim);
  const __m512i neg_lim = _mm512_set1_epi64(-p.lim);
  std::uint64_t sats = 0;
  std::uint64_t terms = 0;
  __m512i peak = _mm512_setzero_si512();

  for (std::size_t j = 0; j < p.half; ++j) {
    const NarrowTwiddle& tw = p.tw[j * p.stride];
    const NarrowDigit* wre = p.pool + tw.re_off;
    const NarrowDigit* wim = p.pool + tw.im_off;
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t u = (b * len + j) * g;
      const std::size_t v = u + p.half * g;
      const __m512i ure = _mm512_loadu_si512(re + u);
      const __m512i uim = _mm512_loadu_si512(im + u);
      const __m512i vre = _mm512_loadu_si512(re + v);
      const __m512i vim = _mm512_loadu_si512(im + v);

      const __m512i rr = csd8(vre, wre, tw.re_cnt, p.round_nearest);
      const __m512i ii = csd8(vim, wim, tw.im_cnt, p.round_nearest);
      const __m512i ri = csd8(vre, wim, tw.im_cnt, p.round_nearest);
      const __m512i ir = csd8(vim, wre, tw.re_cnt, p.round_nearest);
      const __m512i tre = _mm512_sub_epi64(rr, ii);
      const __m512i tim = _mm512_add_epi64(ri, ir);

      const __m512i out_ure = requant8(_mm512_add_epi64(ure, tre), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);
      const __m512i out_uim = requant8(_mm512_add_epi64(uim, tim), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);
      const __m512i out_vre = requant8(_mm512_sub_epi64(ure, tre), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);
      const __m512i out_vim = requant8(_mm512_sub_epi64(uim, tim), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);

      // Outputs are clamped to +/-lim, so abs cannot overflow and unsigned
      // max equals the signed max of absolute values.
      peak = _mm512_max_epu64(peak, _mm512_abs_epi64(out_ure));
      peak = _mm512_max_epu64(peak, _mm512_abs_epi64(out_uim));
      peak = _mm512_max_epu64(peak, _mm512_abs_epi64(out_vre));
      peak = _mm512_max_epu64(peak, _mm512_abs_epi64(out_vim));

      _mm512_storeu_si512(re + u, out_ure);
      _mm512_storeu_si512(im + u, out_uim);
      _mm512_storeu_si512(re + v, out_vre);
      _mm512_storeu_si512(im + v, out_vim);
    }
    terms += nblocks * 2u * (tw.re_cnt + tw.im_cnt);
  }

  if (stats != nullptr) {
    // Per-butterfly counters scale by the real lane count; the saturation
    // count needs no masking because padded (zero) lanes never clamp.
    stats->butterflies += p.half * nblocks * active_lanes;
    stats->shift_add_terms += terms * active_lanes;
    stats->saturations += sats;
    const std::uint64_t stage_peak = _mm512_reduce_max_epu64(peak);
    auto& peaks = stats->stage_peak_mantissa;
    if (peaks.size() <= p.stage_idx) peaks.resize(p.stage_idx + 1, 0);
    peaks[p.stage_idx] = std::max(peaks[p.stage_idx], stage_peak);
  }
}

}  // namespace flash::fft::detail

#else  // No AVX-512 in this compiler/arch: unreachable stub (dispatch never selects it).

#include <cstdlib>

namespace flash::fft::detail {
void fxp_stage_batch_avx512(std::int64_t*, std::int64_t*, std::size_t, const FxpStageParams&,
                            FxpFftStats*) {
  std::abort();
}
}  // namespace flash::fft::detail

#endif
