#include "fft/negacyclic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/scratch.hpp"

namespace flash::fft {

namespace {
std::size_t checked_half(std::size_t n) {
  if (n < 4 || (n & (n - 1)) != 0) throw std::invalid_argument("NegacyclicFft: n must be a power of two >= 4");
  return n / 2;
}
}  // namespace

NegacyclicFft::NegacyclicFft(std::size_t n) : n_(n), plan_(checked_half(n), +1) {
  const std::size_t m = n_ / 2;
  twist_.resize(m);
  untwist_.resize(m);
  const double base = std::numbers::pi / static_cast<double>(n_);
  for (std::size_t s = 0; s < m; ++s) {
    twist_[s] = std::polar(1.0, base * static_cast<double>(s));
    untwist_[s] = std::conj(twist_[s]);
  }
}

std::vector<cplx> NegacyclicFft::fold(const std::vector<double>& a) const {
  if (a.size() != n_) throw std::invalid_argument("NegacyclicFft::fold: size mismatch");
  const std::size_t m = n_ / 2;
  std::vector<cplx> z(m);
  for (std::size_t s = 0; s < m; ++s) {
    z[s] = cplx{a[s], a[s + m]} * twist_[s];
  }
  return z;
}

std::vector<double> NegacyclicFft::unfold(const std::vector<cplx>& z) const {
  const std::size_t m = n_ / 2;
  if (z.size() != m) throw std::invalid_argument("NegacyclicFft::unfold: size mismatch");
  std::vector<double> a(n_);
  for (std::size_t s = 0; s < m; ++s) {
    const cplx w = z[s] * untwist_[s];
    a[s] = w.real();
    a[s + m] = w.imag();
  }
  return a;
}

std::vector<cplx> NegacyclicFft::forward(const std::vector<double>& a) const {
  std::vector<cplx> z = fold(a);
  plan_.forward(z);
  return z;
}

std::vector<double> NegacyclicFft::inverse(std::vector<cplx> spec) const {
  plan_.inverse(spec);
  return unfold(spec);
}

void NegacyclicFft::forward_into(std::span<const double> a, std::span<cplx> out) const {
  if (a.size() != n_) throw std::invalid_argument("NegacyclicFft::forward: size mismatch");
  const std::size_t m = n_ / 2;
  if (out.size() != m) throw std::invalid_argument("NegacyclicFft::forward: bad output size");
  for (std::size_t s = 0; s < m; ++s) {
    out[s] = cplx{a[s], a[s + m]} * twist_[s];
  }
  plan_.forward(out);
}

void NegacyclicFft::inverse_into(std::span<const cplx> spec, std::span<double> out,
                                 core::ScratchArena* arena_p) const {
  const std::size_t m = n_ / 2;
  if (spec.size() != m) throw std::invalid_argument("NegacyclicFft::inverse: size mismatch");
  if (out.size() != n_) throw std::invalid_argument("NegacyclicFft::inverse: bad output size");
  core::ScratchArena& arena = core::scratch_or_thread(arena_p);
  core::ScratchFrame frame(arena);
  std::span<cplx> z = frame.alloc<cplx>(m);
  std::copy(spec.begin(), spec.end(), z.begin());
  plan_.inverse(z);
  for (std::size_t s = 0; s < m; ++s) {
    const cplx w = z[s] * untwist_[s];
    out[s] = w.real();
    out[s + m] = w.imag();
  }
}

std::vector<i64> NegacyclicFft::multiply(const std::vector<i64>& a, const std::vector<i64>& b) const {
  if (a.size() != n_ || b.size() != n_) throw std::invalid_argument("NegacyclicFft::multiply: size mismatch");
  std::vector<double> fa(n_), fb(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    fa[i] = static_cast<double>(a[i]);
    fb[i] = static_cast<double>(b[i]);
  }
  std::vector<cplx> sa = forward(fa);
  std::vector<cplx> sb = forward(fb);
  for (std::size_t i = 0; i < sa.size(); ++i) sa[i] *= sb[i];
  std::vector<double> c = inverse(std::move(sa));
  std::vector<i64> out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = static_cast<i64>(std::llround(c[i]));
  return out;
}

std::vector<u64> NegacyclicFft::multiply_mod(const std::vector<u64>& a, const std::vector<u64>& b, u64 q) const {
  std::vector<i64> sa(n_), sb(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    sa[i] = hemath::to_signed(a[i], q);
    sb[i] = hemath::to_signed(b[i], q);
  }
  std::vector<i64> c = multiply(sa, sb);
  std::vector<u64> out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = hemath::from_signed(c[i], q);
  return out;
}

std::vector<i64> negacyclic_multiply_i64(const std::vector<i64>& a, const std::vector<i64>& b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("negacyclic_multiply_i64: size mismatch");
  std::vector<i64> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (b[j] == 0) continue;
      const i64 prod = a[i] * b[j];
      const std::size_t k = i + j;
      if (k < n) {
        c[k] += prod;
      } else {
        c[k - n] -= prod;
      }
    }
  }
  return c;
}

}  // namespace flash::fft
