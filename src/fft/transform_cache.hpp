// Process-wide shared transform tables.
//
// NTT twiddle tables, negacyclic FFT plans and fixed-point transform
// instances are pure functions of their parameters, immutable after
// construction, and O(N) to build — yet the seed code rebuilt them for
// every BfvContext / PolyMulEngine instance. These caches construct each
// distinct table once and hand out shared_ptrs; concurrent *use* of a
// cached table needs no locking (every transform method is const over
// immutable state).
//
// Locking design (ARCHITECTURE.md §8): one shard per table kind, each with
// its own mutex that guards only the key → entry map. Construction runs
// *outside* the shard lock through a per-entry std::once_flag, so a hit —
// on any key, in any shard — never blocks behind a concurrent miss's O(N)
// table build, and concurrent first-touches of the same key construct the
// table exactly once (losers of the call_once race wait for that entry
// only).
//
// Keys: (q, N) for NTT tables, N for the FP negacyclic plan, and
// (N, full FxpFftConfig) for the approximate transform — two engines with
// different stage widths or twiddle quantization must not share tables.
#pragma once

#include <cstddef>
#include <memory>

#include "fft/fxp_fft.hpp"
#include "fft/negacyclic.hpp"
#include "hemath/ntt.hpp"

namespace flash::fft {

std::shared_ptr<const hemath::NttTables> shared_ntt_tables(hemath::u64 q, std::size_t n);
std::shared_ptr<const NegacyclicFft> shared_negacyclic_fft(std::size_t n);
std::shared_ptr<const FxpNegacyclicTransform> shared_fxp_transform(std::size_t n,
                                                                   const FxpFftConfig& config);

/// Cache observability (tests assert construction happens once; the serve
/// metrics exporter publishes the per-kind counters so a serving process can
/// tell which table kind is churning).
struct TransformCacheStats {
  std::size_t ntt_entries = 0;
  std::size_t fft_entries = 0;
  std::size_t fxp_entries = 0;
  std::uint64_t hits = 0;    // sum of the per-kind hits
  std::uint64_t misses = 0;  // sum of the per-kind misses
  std::uint64_t ntt_hits = 0, ntt_misses = 0;
  std::uint64_t fft_hits = 0, fft_misses = 0;
  std::uint64_t fxp_hits = 0, fxp_misses = 0;
};
TransformCacheStats transform_cache_stats();

/// Drop every cached table (entries still referenced by live contexts stay
/// alive through their shared_ptrs). Intended for tests.
void clear_transform_caches();

namespace testing_hooks {
/// Test-only: invoked at the start of every cache-miss construction, outside
/// any shard lock, with the shard kind ("ntt" / "fft" / "fxp"). Lets the
/// convoy regression test stall a miss and prove hits still complete, and
/// count constructions. Install/remove only while no other thread touches
/// the caches. Pass nullptr to remove.
void set_transform_cache_make_hook(void (*hook)(const char* kind));
}  // namespace testing_hooks

}  // namespace flash::fft
