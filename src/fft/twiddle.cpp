#include "fft/twiddle.hpp"

#include <cmath>
#include <numbers>

namespace flash::fft {

CsdValue csd_quantize(double x, int k, int min_exponent) {
  CsdValue out;
  double residual = x;
  for (int i = 0; i < k; ++i) {
    if (residual == 0.0) break;
    const double mag = std::abs(residual);
    // Closest power of two to |residual|: round log2 to nearest integer.
    int e = static_cast<int>(std::lround(std::log2(mag)));
    // Rounding log2 picks between 2^e and 2^(e-1)/2^(e+1); nudge to the true
    // nearest power by direct comparison.
    if (std::abs(mag - std::ldexp(1.0, e + 1)) < std::abs(mag - std::ldexp(1.0, e))) ++e;
    if (std::abs(mag - std::ldexp(1.0, e - 1)) < std::abs(mag - std::ldexp(1.0, e))) --e;
    if (e < min_exponent) break;
    const int sign = residual > 0 ? 1 : -1;
    out.digits.push_back({e, sign});
    residual -= sign * std::ldexp(1.0, e);
  }
  out.value = x - residual;
  out.error = -residual;
  return out;
}

QuantizedTwiddle quantize_twiddle(std::complex<double> w, int k, int min_exponent) {
  QuantizedTwiddle q;
  q.re = csd_quantize(w.real(), k, min_exponent);
  q.im = csd_quantize(w.imag(), k, min_exponent);
  return q;
}

std::vector<QuantizedTwiddle> quantize_fft_twiddles(std::size_t m, int sign, int k, int min_exponent) {
  std::vector<QuantizedTwiddle> table(m / 2);
  const double base = 2.0 * std::numbers::pi * sign / static_cast<double>(m);
  for (std::size_t j = 0; j < m / 2; ++j) {
    table[j] = quantize_twiddle(std::polar(1.0, base * static_cast<double>(j)), k, min_exponent);
  }
  return table;
}

double twiddle_rms_error(const std::vector<QuantizedTwiddle>& table) {
  if (table.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& t : table) {
    acc += t.re.error * t.re.error + t.im.error * t.im.error;
  }
  return std::sqrt(acc / (2.0 * static_cast<double>(table.size())));
}

}  // namespace flash::fft
