#include "fft/complex_fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fft/fft_kernels.hpp"
#include "hemath/bitrev.hpp"
#include "hemath/simd.hpp"

namespace flash::fft {

FftPlan::FftPlan(std::size_t m, int sign) : m_(m), sign_(sign) {
  if (m < 2 || (m & (m - 1)) != 0) throw std::invalid_argument("FftPlan: size must be a power of two >= 2");
  if (sign != 1 && sign != -1) throw std::invalid_argument("FftPlan: sign must be +/-1");
  log_m_ = hemath::log2_exact(m);
  root_pow_.resize(m / 2);
  const double base = 2.0 * std::numbers::pi * sign / static_cast<double>(m);
  for (std::size_t j = 0; j < m / 2; ++j) {
    root_pow_[j] = std::polar(1.0, base * static_cast<double>(j));
  }
  // Flatten the per-stage twiddle rows (same doubles as root_pow_, copied,
  // so the scalar and vector stage loops read identical values unit-stride).
  stage_tw_.resize(m - 1);
  for (int s = 1; s <= log_m_; ++s) {
    const std::size_t half = std::size_t{1} << (s - 1);
    const std::size_t stride = m_ >> s;
    for (std::size_t j = 0; j < half; ++j) {
      stage_tw_[(half - 1) + j] = root_pow_[j * stride];
    }
  }
}

cplx FftPlan::twiddle(int stage, std::size_t j) const {
  // Stage s (1-based) uses W_M^(j * M / 2^s) for j in [0, 2^(s-1)).
  const std::size_t stride = m_ >> stage;
  return root_pow_[j * stride];
}

void FftPlan::forward(std::span<cplx> a) const {
  if (a.size() != m_) throw std::invalid_argument("FftPlan::forward: size mismatch");
  hemath::bit_reverse_permute(a);
  const bool avx2 = hemath::simd::level_at_least(hemath::simd::SimdLevel::kAvx2);
  for (int s = 1; s <= log_m_; ++s) {
    const std::size_t half = std::size_t{1} << (s - 1);
    const std::size_t len = half << 1;
    const cplx* tw = stage_tw_.data() + (half - 1);
    if (avx2 && half >= 2) {
      detail::fft_stage_avx2(a.data(), tw, m_, half);
      continue;
    }
    for (std::size_t block = 0; block < m_; block += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const cplx w = tw[j];
        cplx& u = a[block + j];
        cplx& v = a[block + j + half];
        const cplx t = v * w;
        v = u - t;
        u = u + t;
      }
    }
  }
}

void FftPlan::inverse(std::span<cplx> a) const {
  if (a.size() != m_) throw std::invalid_argument("FftPlan::inverse: size mismatch");
  for (auto& x : a) x = std::conj(x);
  forward(a);
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (auto& x : a) x = std::conj(x) * inv_m;
}

std::vector<cplx> dft_reference(const std::vector<cplx>& a, int sign) {
  const std::size_t m = a.size();
  std::vector<cplx> out(m, cplx{0.0, 0.0});
  const double base = 2.0 * std::numbers::pi * sign / static_cast<double>(m);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t j = 0; j < m; ++j) {
      out[k] += a[j] * std::polar(1.0, base * static_cast<double>(j * k % m));
    }
  }
  return out;
}

}  // namespace flash::fft
