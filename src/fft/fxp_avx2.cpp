// AVX2 kernel for one narrow-path fixed-point DIT stage. Compiled with
// -mavx2 in its own TU; the driver (fxp_fft.cpp) only calls it when the CPU
// reports AVX2 and the stage has >= 4 blocks.
//
// Vectorization axis: four *blocks* sharing one twiddle per iteration, so
// all four lanes execute identical shift counts (AVX2 has no per-lane
// 64-bit variable shifts worth using here) and the CSD digit loop stays
// scalar control flow with vector data. Block counts are powers of two, so
// there is never a remainder once >= 4. Every lane computes exactly the
// scalar narrow path's int64 operations — the constructor's interval
// analysis guarantees no lane overflows — hence bit-identical outputs; the
// stats it produces are order-independent aggregates (sums, maxima) equal
// to the scalar path's.
#include "fft/fxp_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <bit>

namespace flash::fft::detail {

namespace {

/// Arithmetic (sign-propagating) right shift by a uniform count; AVX2 only
/// has logical 64-bit shifts, so the sign bits are re-inserted via a mask.
inline __m256i sra64(__m256i x, int s) {
  if (s == 0) return x;
  const __m256i sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), x);
  const __m256i lo = _mm256_srli_epi64(x, s);
  const __m256i hi = _mm256_slli_epi64(sign, 64 - s);
  return _mm256_or_si256(lo, hi);
}

/// csd_narrow on four lanes: same digit loop, same round-adds, same order.
inline __m256i csd4(__m256i m, const NarrowDigit* digits, std::size_t count, bool round_nearest) {
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t i = 0; i < count; ++i) {
    const int s = digits[i].shift;
    __m256i term;
    if (s <= 0) {
      term = _mm256_slli_epi64(m, -s);
    } else {
      term = m;
      if (round_nearest) {
        term = _mm256_add_epi64(term, _mm256_set1_epi64x(std::int64_t{1} << (s - 1)));
      }
      term = sra64(term, s);
    }
    acc = digits[i].sign > 0 ? _mm256_add_epi64(acc, term) : _mm256_sub_epi64(acc, term);
  }
  return acc;
}

/// requantize_narrow on four lanes; accumulates the lane saturation count
/// into *sats (each clamped component counts once, matching scalar).
inline __m256i requant4(__m256i v, int shift, bool round_nearest, __m256i lim, __m256i neg_lim,
                        std::uint64_t* sats) {
  if (shift > 0) {
    if (round_nearest) {
      v = _mm256_add_epi64(v, _mm256_set1_epi64x(std::int64_t{1} << (shift - 1)));
    }
    v = sra64(v, shift);
  } else if (shift < 0) {
    v = _mm256_slli_epi64(v, -shift);
  }
  const __m256i over = _mm256_cmpgt_epi64(v, lim);
  const __m256i under = _mm256_cmpgt_epi64(neg_lim, v);
  v = _mm256_blendv_epi8(v, lim, over);
  v = _mm256_blendv_epi8(v, neg_lim, under);
  const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_or_si256(over, under)));
  *sats += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(mask)));
  return v;
}

/// |x| per lane (inputs are clamped to +/-lim, so negation cannot overflow).
inline __m256i abs64(__m256i x) {
  const __m256i neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), x);
  return _mm256_blendv_epi8(x, _mm256_sub_epi64(_mm256_setzero_si256(), x), neg);
}

}  // namespace

void fxp_stage_avx2(std::int64_t* re, std::int64_t* im, const FxpStageParams& p,
                    FxpFftStats* stats) {
  const std::size_t len = p.half * 2;
  const std::size_t nblocks = p.m / len;
  const __m256i lim = _mm256_set1_epi64x(p.lim);
  const __m256i neg_lim = _mm256_set1_epi64x(-p.lim);
  // Four consecutive blocks: element u of block b+k lives at (b+k)*len + j.
  const long long sl = static_cast<long long>(len);
  const __m256i vindex = _mm256_set_epi64x(3 * sl, 2 * sl, sl, 0);
  std::uint64_t sats = 0;
  std::uint64_t terms = 0;
  __m256i peak = _mm256_setzero_si256();

  for (std::size_t j = 0; j < p.half; ++j) {
    const NarrowTwiddle& tw = p.tw[j * p.stride];
    const NarrowDigit* wre = p.pool + tw.re_off;
    const NarrowDigit* wim = p.pool + tw.im_off;
    for (std::size_t b = 0; b < nblocks; b += 4) {
      const std::size_t u0 = b * len + j;
      const std::size_t v0 = u0 + p.half;
      const __m256i ure = _mm256_i64gather_epi64(reinterpret_cast<const long long*>(re + u0), vindex, 8);
      const __m256i uim = _mm256_i64gather_epi64(reinterpret_cast<const long long*>(im + u0), vindex, 8);
      const __m256i vre = _mm256_i64gather_epi64(reinterpret_cast<const long long*>(re + v0), vindex, 8);
      const __m256i vim = _mm256_i64gather_epi64(reinterpret_cast<const long long*>(im + v0), vindex, 8);

      const __m256i rr = csd4(vre, wre, tw.re_cnt, p.round_nearest);
      const __m256i ii = csd4(vim, wim, tw.im_cnt, p.round_nearest);
      const __m256i ri = csd4(vre, wim, tw.im_cnt, p.round_nearest);
      const __m256i ir = csd4(vim, wre, tw.re_cnt, p.round_nearest);
      const __m256i tre = _mm256_sub_epi64(rr, ii);
      const __m256i tim = _mm256_add_epi64(ri, ir);

      const __m256i out_ure = requant4(_mm256_add_epi64(ure, tre), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);
      const __m256i out_uim = requant4(_mm256_add_epi64(uim, tim), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);
      const __m256i out_vre = requant4(_mm256_sub_epi64(ure, tre), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);
      const __m256i out_vim = requant4(_mm256_sub_epi64(uim, tim), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);

      // Outputs are <= lim < 2^62, so unsigned per-lane max == signed max of
      // the absolute values; fold all four legs into one running peak.
      peak = _mm256_blendv_epi8(peak, abs64(out_ure),
                                _mm256_cmpgt_epi64(abs64(out_ure), peak));
      peak = _mm256_blendv_epi8(peak, abs64(out_uim),
                                _mm256_cmpgt_epi64(abs64(out_uim), peak));
      peak = _mm256_blendv_epi8(peak, abs64(out_vre),
                                _mm256_cmpgt_epi64(abs64(out_vre), peak));
      peak = _mm256_blendv_epi8(peak, abs64(out_vim),
                                _mm256_cmpgt_epi64(abs64(out_vim), peak));

      // AVX2 has gathers but no scatters; four extracts per array.
      alignas(32) std::int64_t tmp[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), out_ure);
      re[u0] = tmp[0]; re[u0 + len] = tmp[1]; re[u0 + 2 * len] = tmp[2]; re[u0 + 3 * len] = tmp[3];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), out_uim);
      im[u0] = tmp[0]; im[u0 + len] = tmp[1]; im[u0 + 2 * len] = tmp[2]; im[u0 + 3 * len] = tmp[3];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), out_vre);
      re[v0] = tmp[0]; re[v0 + len] = tmp[1]; re[v0 + 2 * len] = tmp[2]; re[v0 + 3 * len] = tmp[3];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), out_vim);
      im[v0] = tmp[0]; im[v0 + len] = tmp[1]; im[v0 + 2 * len] = tmp[2]; im[v0 + 3 * len] = tmp[3];
    }
    terms += nblocks * 2u * (tw.re_cnt + tw.im_cnt);
  }

  if (stats != nullptr) {
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), peak);
    std::uint64_t stage_peak = 0;
    for (std::int64_t lane : lanes) {
      stage_peak = std::max(stage_peak, static_cast<std::uint64_t>(lane));
    }
    stats->butterflies += p.half * nblocks;
    stats->shift_add_terms += terms;
    stats->saturations += sats;
    auto& peaks = stats->stage_peak_mantissa;
    if (peaks.size() <= p.stage_idx) peaks.resize(p.stage_idx + 1, 0);
    peaks[p.stage_idx] = std::max(peaks[p.stage_idx], stage_peak);
  }
}

void fxp_stage_batch_avx2(std::int64_t* re, std::int64_t* im, std::size_t active_lanes,
                          const FxpStageParams& p, FxpFftStats* stats) {
  constexpr std::size_t g = 4;  // SoA lanes per vector
  const std::size_t len = p.half * 2;
  const std::size_t nblocks = p.m / len;
  const __m256i lim = _mm256_set1_epi64x(p.lim);
  const __m256i neg_lim = _mm256_set1_epi64x(-p.lim);
  std::uint64_t sats = 0;
  std::uint64_t terms = 0;
  __m256i peak = _mm256_setzero_si256();

  for (std::size_t j = 0; j < p.half; ++j) {
    const NarrowTwiddle& tw = p.tw[j * p.stride];
    const NarrowDigit* wre = p.pool + tw.re_off;
    const NarrowDigit* wim = p.pool + tw.im_off;
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t u = (b * len + j) * g;
      const std::size_t v = u + p.half * g;
      const __m256i ure = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(re + u));
      const __m256i uim = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(im + u));
      const __m256i vre = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(re + v));
      const __m256i vim = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(im + v));

      const __m256i rr = csd4(vre, wre, tw.re_cnt, p.round_nearest);
      const __m256i ii = csd4(vim, wim, tw.im_cnt, p.round_nearest);
      const __m256i ri = csd4(vre, wim, tw.im_cnt, p.round_nearest);
      const __m256i ir = csd4(vim, wre, tw.re_cnt, p.round_nearest);
      const __m256i tre = _mm256_sub_epi64(rr, ii);
      const __m256i tim = _mm256_add_epi64(ri, ir);

      const __m256i out_ure = requant4(_mm256_add_epi64(ure, tre), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);
      const __m256i out_uim = requant4(_mm256_add_epi64(uim, tim), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);
      const __m256i out_vre = requant4(_mm256_sub_epi64(ure, tre), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);
      const __m256i out_vim = requant4(_mm256_sub_epi64(uim, tim), p.shift, p.round_nearest, lim,
                                       neg_lim, &sats);

      peak = _mm256_blendv_epi8(peak, abs64(out_ure),
                                _mm256_cmpgt_epi64(abs64(out_ure), peak));
      peak = _mm256_blendv_epi8(peak, abs64(out_uim),
                                _mm256_cmpgt_epi64(abs64(out_uim), peak));
      peak = _mm256_blendv_epi8(peak, abs64(out_vre),
                                _mm256_cmpgt_epi64(abs64(out_vre), peak));
      peak = _mm256_blendv_epi8(peak, abs64(out_vim),
                                _mm256_cmpgt_epi64(abs64(out_vim), peak));

      _mm256_storeu_si256(reinterpret_cast<__m256i*>(re + u), out_ure);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(im + u), out_uim);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(re + v), out_vre);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(im + v), out_vim);
    }
    terms += nblocks * 2u * (tw.re_cnt + tw.im_cnt);
  }

  if (stats != nullptr) {
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), peak);
    std::uint64_t stage_peak = 0;
    for (std::int64_t lane : lanes) {
      stage_peak = std::max(stage_peak, static_cast<std::uint64_t>(lane));
    }
    // Per-butterfly counters scale by the real lane count; the saturation
    // count needs no masking because padded (zero) lanes never clamp.
    stats->butterflies += p.half * nblocks * active_lanes;
    stats->shift_add_terms += terms * active_lanes;
    stats->saturations += sats;
    auto& peaks = stats->stage_peak_mantissa;
    if (peaks.size() <= p.stage_idx) peaks.resize(p.stage_idx + 1, 0);
    peaks[p.stage_idx] = std::max(peaks[p.stage_idx], stage_peak);
  }
}

}  // namespace flash::fft::detail

#else  // !__AVX2__ — non-x86 build: unreachable stubs (dispatch never selects AVX2).

#include <cstdlib>

namespace flash::fft::detail {
void fxp_stage_avx2(std::int64_t*, std::int64_t*, const FxpStageParams&, FxpFftStats*) {
  std::abort();
}
void fxp_stage_batch_avx2(std::int64_t*, std::int64_t*, std::size_t, const FxpStageParams&,
                          FxpFftStats*) {
  std::abort();
}
}  // namespace flash::fft::detail

#endif
