// Radix-4 FFT: the hardware-relevant dataflow alternative.
//
// A radix-4 butterfly produces 4 outputs with 3 non-trivial twiddle
// multiplications (vs 4 halves of radix-2 needing 4), cutting complex
// multiplications ~25% at the cost of a wider BU. FLASH's ablations use
// radix-2 BUs (4 per PE); this module provides the radix-4 variant for the
// dataflow-design ablation bench and verifies both produce identical
// spectra.
#pragma once

#include <cstdint>

#include "fft/complex_fft.hpp"

namespace flash::fft {

struct Radix4Stats {
  std::uint64_t complex_mults = 0;   // non-trivial twiddle multiplications
  std::uint64_t trivial_mults = 0;   // W = 1 or +/-i (free rotations)
  std::uint64_t complex_adds = 0;
};

/// In-place M-point transform with the e^{+2*pi*i/M} kernel (matching
/// FftPlan(m, +1)): radix-4 stages, with one leading radix-2 stage when
/// log2(M) is odd. Standard order in, standard order out.
void radix4_forward(std::vector<cplx>& a, Radix4Stats* stats = nullptr);

/// Multiplication counts of a dense M-point transform under each dataflow
/// (for the ablation bench).
Radix4Stats radix4_dense_cost(std::size_t m);
Radix4Stats radix2_dense_cost(std::size_t m);

}  // namespace flash::fft
