// Internal stage-kernel interface of the narrow (64-bit) fixed-point FFT
// path, shared between the scalar driver (fxp_fft.cpp) and the AVX2 kernel
// (fxp_avx2.cpp). Not installed with the public headers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fft/fxp_fft.hpp"

namespace flash::fft::detail {

/// Everything one DIT stage needs. The stage transforms SoA mantissa arrays
/// re/im (length m) in place: for each block of len = 2*half elements and
/// each butterfly j in [0, half), twiddle tw[j*stride] multiplies the lower
/// leg, the sum/difference is requantized by `shift` fraction bits and
/// saturated to +/-lim.
struct FxpStageParams {
  const NarrowDigit* pool = nullptr;
  const NarrowTwiddle* tw = nullptr;  // indexed by twiddle power j*stride
  std::size_t m = 0;
  std::size_t half = 0;     // butterflies per block = 2^(s-1)
  std::size_t stride = 0;   // twiddle power stride = m >> s
  std::size_t stage_idx = 0;  // pipeline cut index for stage_peak_mantissa
  int shift = 0;            // requantize right-shift (negative = left)
  std::int64_t lim = 0;     // saturation bound 2^(width-1)-1
  bool round_nearest = true;
};

/// AVX2 stage kernel, compiled with -mavx2 in its own TU; callers must have
/// checked the simd level predicate and that the stage has at least four
/// blocks (m / (2*half) >= 4). Vectorizes across four blocks sharing one
/// twiddle, so every lane runs the same shift counts. Bit-identical to the
/// scalar narrow path (same shifts, adds and clamps, in 64-bit lanes) and
/// updates `stats` to the same totals (counts are order-independent).
void fxp_stage_avx2(std::int64_t* re, std::int64_t* im, const FxpStageParams& p,
                    FxpFftStats* stats);

/// Batched SoA stage kernels: G transforms interleaved lane-wise
/// (coefficient i of lane l at buf[i*G + l], G = 4 for AVX2, 8 for
/// AVX-512), so one butterfly is two contiguous vector loads and the CSD
/// digit loop runs once per (stage, twiddle) for the whole group — no
/// gathers, and unlike the single-poly kernel every stage qualifies. Lanes
/// beyond `active_lanes` are zero padding: a zero mantissa stays zero
/// through quantize/CSD/requantize, so padded lanes contribute no
/// saturations and a zero peak, and the per-butterfly counters are scaled
/// by active_lanes — stats land on exactly the loop-of-singles totals.
void fxp_stage_batch_avx2(std::int64_t* re, std::int64_t* im, std::size_t active_lanes,
                          const FxpStageParams& p, FxpFftStats* stats);
void fxp_stage_batch_avx512(std::int64_t* re, std::int64_t* im, std::size_t active_lanes,
                            const FxpStageParams& p, FxpFftStats* stats);

}  // namespace flash::fft::detail
