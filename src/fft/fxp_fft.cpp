#include "fft/fxp_fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/scratch.hpp"
#include "fft/fxp_kernels.hpp"
#include "hemath/bitrev.hpp"
#include "hemath/simd.hpp"

namespace flash::fft {

namespace {

using i64 = std::int64_t;
using i128 = __int128;
using u128 = unsigned __int128;

struct FxpComplex {
  i64 re = 0;
  i64 im = 0;
};

/// Left shift that is well defined for negative mantissas: shifts the two's
/// complement bit pattern (what the hardware barrel shifter does). A plain
/// `v << s` on a negative value is UB until C++20 and trips
/// -fsanitize=shift; the unsigned round-trip computes the same bits.
i128 shift_left(i128 v, int s) { return static_cast<i128>(static_cast<u128>(v) << s); }

i64 shift_left64(i64 v, int s) {
  return static_cast<i64>(static_cast<std::uint64_t>(v) << s);  // flash-lint: allow(narrowing-fxp): value-preserving two's-complement reinterpretation, no bits dropped
}

/// Saturate a wide value into `width` total bits (two's complement). This is
/// the one place the FXP path may narrow the accumulator: every value below
/// is clamped into [-lim, lim] first, so the casts cannot drop set bits.
i64 saturate(i128 v, int width, FxpFftStats* stats) {
  const i128 lim = (i128{1} << (width - 1)) - 1;
  if (v > lim) {
    if (stats) ++stats->saturations;
    return static_cast<i64>(lim);  // flash-lint: allow(narrowing-fxp): lim < 2^62 by config validation
  }
  if (v < -lim) {
    if (stats) ++stats->saturations;
    return static_cast<i64>(-lim);  // flash-lint: allow(narrowing-fxp): lim < 2^62 by config validation
  }
  return static_cast<i64>(v);  // flash-lint: allow(narrowing-fxp): v clamped into [-lim, lim] above
}

/// Shift a mantissa right by `s` bits (s >= 0) with the configured rounding.
i128 shift_right(i128 v, int s, RoundingMode mode) {
  if (s == 0) return v;
  if (mode == RoundingMode::kRoundToNearest) v += i128{1} << (s - 1);
  return v >> s;  // arithmetic shift (implementation-defined pre-C++20; GCC/Clang do the right thing)
}

/// Multiply mantissa m (frac bits f) by one CSD-quantized scalar; the result
/// keeps f fraction bits. Each digit sign*2^e contributes sign*(m >> -e)
/// conceptually; we accumulate exactly in 128 bits and round once per digit
/// (matching a shift-add array that truncates at the adder inputs).
i128 csd_multiply(i64 m, const CsdValue& w, RoundingMode mode, FxpFftStats* stats) {
  i128 acc = 0;
  for (const CsdDigit& d : w.digits) {
    i128 term;
    if (d.exponent >= 0) {
      term = shift_left(m, d.exponent);
    } else {
      term = shift_right(m, -d.exponent, mode);
    }
    acc += d.sign > 0 ? term : -term;
    if (stats) ++stats->shift_add_terms;
  }
  return acc;
}

/// Combinational (pre-register) value: the multiplier and adder keep full
/// precision; only the stage output register narrows back to data_width.
struct WideComplex {
  i128 re = 0;
  i128 im = 0;
};

/// Full complex multiply by a quantized twiddle; frac bits preserved. The
/// product stays wide — in hardware the multiplier output feeds the
/// butterfly adder combinationally, so clamping here would drop the carry
/// headroom the requantizer is entitled to round away.
WideComplex twiddle_multiply(FxpComplex a, const QuantizedTwiddle& w, RoundingMode mode,
                             FxpFftStats* stats) {
  const i128 rr = csd_multiply(a.re, w.re, mode, stats);
  const i128 ii = csd_multiply(a.im, w.im, mode, stats);
  const i128 ri = csd_multiply(a.re, w.im, mode, stats);
  const i128 ir = csd_multiply(a.im, w.re, mode, stats);
  return {rr - ii, ri + ir};
}

/// Requantize from f_from fraction bits to f_to, saturating to width — the
/// stage output register: the one place a stage narrows its result.
FxpComplex requantize(WideComplex a, int f_from, int f_to, int width, RoundingMode mode,
                      FxpFftStats* stats) {
  const int shift = f_from - f_to;
  i128 re = a.re, im = a.im;
  if (shift > 0) {
    re = shift_right(re, shift, mode);
    im = shift_right(im, shift, mode);
  } else if (shift < 0) {
    re = shift_left(re, -shift);
    im = shift_left(im, -shift);
  }
  return {saturate(re, width, stats), saturate(im, width, stats)};
}

/// Record the post-saturation mantissa magnitude at pipeline cut `idx`
/// (0 = input quantizer, s = stage s output register). Values are clamped to
/// +/-(2^(width-1)-1) already, so the negation cannot overflow.
void note_peak(FxpFftStats* stats, std::size_t idx, FxpComplex v) {
  if (stats == nullptr) return;
  auto& peaks = stats->stage_peak_mantissa;
  if (peaks.size() <= idx) peaks.resize(idx + 1, 0);
  const std::uint64_t re = static_cast<std::uint64_t>(v.re < 0 ? -v.re : v.re);
  const std::uint64_t im = static_cast<std::uint64_t>(v.im < 0 ? -v.im : v.im);
  peaks[idx] = std::max(peaks[idx], std::max(re, im));
}

/// Record an order-independent per-stage peak computed by a narrow-path
/// stage kernel.
void note_peak_value(FxpFftStats* stats, std::size_t idx, std::uint64_t peak) {
  if (stats == nullptr) return;
  auto& peaks = stats->stage_peak_mantissa;
  if (peaks.size() <= idx) peaks.resize(idx + 1, 0);
  peaks[idx] = std::max(peaks[idx], peak);
}

i64 quantize_to_mantissa(double v, double scale, int width, FxpFftStats* stats) {
  // scale is 2^frac_bits, so the multiply is the exact ldexp(v, frac_bits).
  i128 m = static_cast<i128>(std::llround(v * scale));
  return saturate(m, width, stats);
}

// ---------------------------------------------------------------------------
// Narrow (64-bit) path: same integers, provably overflow-free.
// ---------------------------------------------------------------------------

/// One CSD multiply on the narrow plan. Mirrors csd_multiply digit for
/// digit; the constructor's interval analysis guarantees the round-add and
/// the accumulator stay inside int64, so every operation here computes the
/// same value as its 128-bit counterpart.
i64 csd_narrow(i64 m, const detail::NarrowDigit* digits, std::size_t count, bool round_nearest) {
  i64 acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const int s = digits[i].shift;
    i64 term;
    if (s <= 0) {
      term = shift_left64(m, -s);
    } else {
      term = m;
      if (round_nearest) term += i64{1} << (s - 1);
      term >>= s;
    }
    acc += digits[i].sign > 0 ? term : -term;
  }
  return acc;
}

i64 requantize_narrow(i64 v, int shift, bool round_nearest, i64 lim, std::uint64_t* sats) {
  if (shift > 0) {
    if (round_nearest) v += i64{1} << (shift - 1);
    v >>= shift;
  } else if (shift < 0) {
    v = shift_left64(v, -shift);
  }
  if (v > lim) {
    ++*sats;
    return lim;
  }
  if (v < -lim) {
    ++*sats;
    return -lim;
  }
  return v;
}

/// Scalar narrow stage: reference implementation the AVX2 kernel must match
/// bit for bit. Loops j (twiddle) outer / block inner like the vector
/// kernel; butterflies within a stage are independent, so the order does not
/// affect values, and all stats are order-independent aggregates.
void fxp_stage_scalar(i64* re, i64* im, const detail::FxpStageParams& p, FxpFftStats* stats) {
  const std::size_t len = p.half * 2;
  const std::size_t nblocks = p.m / len;
  std::uint64_t sats = 0;
  std::uint64_t terms = 0;
  std::uint64_t peak = 0;
  for (std::size_t j = 0; j < p.half; ++j) {
    const detail::NarrowTwiddle& tw = p.tw[j * p.stride];
    const detail::NarrowDigit* wre = p.pool + tw.re_off;
    const detail::NarrowDigit* wim = p.pool + tw.im_off;
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t u = b * len + j;
      const std::size_t v = u + p.half;
      const i64 vr = re[v];
      const i64 vi = im[v];
      const i64 rr = csd_narrow(vr, wre, tw.re_cnt, p.round_nearest);
      const i64 ii = csd_narrow(vi, wim, tw.im_cnt, p.round_nearest);
      const i64 ri = csd_narrow(vr, wim, tw.im_cnt, p.round_nearest);
      const i64 ir = csd_narrow(vi, wre, tw.re_cnt, p.round_nearest);
      const i64 tre = rr - ii;
      const i64 tim = ri + ir;
      const i64 ure = re[u];
      const i64 uim = im[u];
      re[u] = requantize_narrow(ure + tre, p.shift, p.round_nearest, p.lim, &sats);
      im[u] = requantize_narrow(uim + tim, p.shift, p.round_nearest, p.lim, &sats);
      re[v] = requantize_narrow(ure - tre, p.shift, p.round_nearest, p.lim, &sats);
      im[v] = requantize_narrow(uim - tim, p.shift, p.round_nearest, p.lim, &sats);
      const std::uint64_t m1 =
          std::max(static_cast<std::uint64_t>(re[u] < 0 ? -re[u] : re[u]),
                   static_cast<std::uint64_t>(im[u] < 0 ? -im[u] : im[u]));
      const std::uint64_t m2 =
          std::max(static_cast<std::uint64_t>(re[v] < 0 ? -re[v] : re[v]),
                   static_cast<std::uint64_t>(im[v] < 0 ? -im[v] : im[v]));
      peak = std::max(peak, std::max(m1, m2));
    }
    terms += nblocks * 2u * (tw.re_cnt + tw.im_cnt);
  }
  if (stats != nullptr) {
    stats->butterflies += p.half * nblocks;
    stats->shift_add_terms += terms;
    stats->saturations += sats;
    note_peak_value(stats, p.stage_idx, peak);
  }
}

/// Interval bound of |csd_multiply(m, w)| for |m| <= lim, including the
/// per-digit round-add, evaluated exactly in 128 bits.
u128 csd_bound(const CsdValue& w, u128 lim) {
  u128 b = 0;
  for (const CsdDigit& d : w.digits) {
    if (d.exponent >= 0) {
      b += lim << d.exponent;
    } else {
      b += (lim >> -d.exponent) + 1;  // +1 covers the round-to-nearest bias
    }
  }
  return b;
}

}  // namespace

void FxpFftStats::merge(const FxpFftStats& other) {
  shift_add_terms += other.shift_add_terms;
  butterflies += other.butterflies;
  saturations += other.saturations;
  if (stage_peak_mantissa.size() < other.stage_peak_mantissa.size()) {
    stage_peak_mantissa.resize(other.stage_peak_mantissa.size(), 0);
  }
  for (std::size_t i = 0; i < other.stage_peak_mantissa.size(); ++i) {
    stage_peak_mantissa[i] = std::max(stage_peak_mantissa[i], other.stage_peak_mantissa[i]);
  }
}

FxpFftConfig FxpFftConfig::uniform(std::size_t m, int frac_bits, int data_width, int twiddle_k) {
  FxpFftConfig cfg;
  cfg.input_frac_bits = frac_bits;
  cfg.stage_frac_bits.assign(static_cast<std::size_t>(hemath::log2_exact(m)), frac_bits);
  cfg.data_width = data_width;
  cfg.twiddle_k = twiddle_k;
  return cfg;
}

FxpFft::FxpFft(std::size_t m, FxpFftConfig config) : m_(m), config_(std::move(config)) {
  log_m_ = hemath::log2_exact(m);
  if (config_.stage_frac_bits.size() != static_cast<std::size_t>(log_m_)) {
    throw std::invalid_argument("FxpFft: stage_frac_bits must have log2(M) entries");
  }
  if (config_.data_width < 4 || config_.data_width > 62) {
    throw std::invalid_argument("FxpFft: data_width out of range [4, 62]");
  }
  twiddles_ = quantize_fft_twiddles(m_, +1, config_.twiddle_k, config_.twiddle_min_exp);
  build_narrow_plan();
}

void FxpFft::build_narrow_plan() {
  // Static overflow analysis for the 64-bit path. Every narrow intermediate
  // is one of:
  //   (a) a CSD term with its round-add: |m| + 2^(s-1), then shifted;
  //   (b) a CSD accumulator: bounded by the sum of term magnitudes B_w;
  //   (c) a butterfly leg u +/- t: |.| <= lim + max_w B_w;
  //   (d) the requantizer input: (c) plus the round-add, or (c) shifted
  //       left by -shift.
  // We require every bound to stay below 2^62 — a 2x margin under the int64
  // limit — evaluated exactly in 128-bit arithmetic. When the analysis
  // fails (exotic design points), narrow_ok_ stays false and the generic
  // 128-bit path runs.
  const u128 cap = u128{1} << 62;
  const u128 lim = (u128{1} << (config_.data_width - 1)) - 1;

  u128 max_b = 0;
  bool ok = true;
  for (const QuantizedTwiddle& w : twiddles_) {
    for (const CsdDigit& d : w.re.digits) {
      if (d.exponent < 0 && lim + (u128{1} << (-d.exponent - 1)) >= cap) ok = false;
      if (d.exponent > 60) ok = false;
    }
    for (const CsdDigit& d : w.im.digits) {
      if (d.exponent < 0 && lim + (u128{1} << (-d.exponent - 1)) >= cap) ok = false;
      if (d.exponent > 60) ok = false;
    }
    const u128 b = csd_bound(w.re, lim) + csd_bound(w.im, lim);
    max_b = std::max(max_b, b);
  }
  const u128 stage_in = lim + max_b;  // |u +/- t|
  if (stage_in >= cap) ok = false;

  int frac = config_.input_frac_bits;
  for (int s = 1; s <= log_m_; ++s) {
    const int out_frac = config_.stage_frac_bits[static_cast<std::size_t>(s - 1)];
    const int shift = frac - out_frac;
    if (shift > 0) {
      if (shift >= 62 || stage_in + (u128{1} << (shift - 1)) >= cap) ok = false;
    } else if (shift < 0) {
      if (-shift >= 62 || (stage_in << -shift) >= cap) ok = false;
    }
    frac = out_frac;
  }
  if (!ok) {
    narrow_ok_ = false;
    return;
  }

  // Flatten each twiddle's CSD digits into one pool (re run then im run) so
  // a stage walks contiguous memory.
  digit_pool_.clear();
  narrow_tw_.clear();
  narrow_tw_.reserve(twiddles_.size());
  auto push_digits = [this](const CsdValue& c) {
    const auto off = static_cast<std::uint32_t>(digit_pool_.size());
    for (const CsdDigit& d : c.digits) {
      detail::NarrowDigit nd;
      nd.shift = static_cast<std::int16_t>(-d.exponent);  // flash-lint: allow(narrowing-fxp): exponents are config-bounded small integers
      nd.sign = static_cast<std::int16_t>(d.sign);        // flash-lint: allow(narrowing-fxp): sign is +/-1
      digit_pool_.push_back(nd);
    }
    return std::pair{off, static_cast<std::uint32_t>(c.digits.size())};
  };
  for (const QuantizedTwiddle& w : twiddles_) {
    detail::NarrowTwiddle nt;
    std::tie(nt.re_off, nt.re_cnt) = push_digits(w.re);
    std::tie(nt.im_off, nt.im_cnt) = push_digits(w.im);
    narrow_tw_.push_back(nt);
  }
  narrow_ok_ = true;
}

void FxpFft::forward_into(std::span<const cplx> in, std::span<cplx> out, FxpFftStats* stats,
                          core::ScratchArena* arena_p) const {
  if (in.size() != m_ || out.size() != m_) {
    throw std::invalid_argument("FxpFft::forward: size mismatch");
  }
  core::ScratchArena& arena = core::scratch_or_thread(arena_p);
  core::ScratchFrame frame(arena);
  const double in_scale = std::ldexp(1.0, config_.input_frac_bits);

  if (narrow_ok_) {
    std::span<i64> re = frame.alloc<i64>(m_);
    std::span<i64> im = frame.alloc<i64>(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      re[i] = quantize_to_mantissa(in[i].real(), in_scale, config_.data_width, stats);
      im[i] = quantize_to_mantissa(in[i].imag(), in_scale, config_.data_width, stats);
      note_peak(stats, 0, FxpComplex{re[i], im[i]});
    }
    hemath::bit_reverse_permute(re);
    hemath::bit_reverse_permute(im);

    const bool avx2 = hemath::simd::level_at_least(hemath::simd::SimdLevel::kAvx2);
    int frac = config_.input_frac_bits;
    for (int s = 1; s <= log_m_; ++s) {
      const int out_frac = config_.stage_frac_bits[static_cast<std::size_t>(s - 1)];
      detail::FxpStageParams p;
      p.pool = digit_pool_.data();
      p.tw = narrow_tw_.data();
      p.m = m_;
      p.half = std::size_t{1} << (s - 1);
      p.stride = m_ >> s;
      p.stage_idx = static_cast<std::size_t>(s);
      p.shift = frac - out_frac;
      p.lim = (i64{1} << (config_.data_width - 1)) - 1;
      p.round_nearest = config_.rounding == RoundingMode::kRoundToNearest;
      if (avx2 && (m_ >> s) >= 4) {
        detail::fxp_stage_avx2(re.data(), im.data(), p, stats);
      } else {
        fxp_stage_scalar(re.data(), im.data(), p, stats);
      }
      frac = out_frac;
    }

    const double out_scale = std::ldexp(1.0, -frac);
    for (std::size_t i = 0; i < m_; ++i) {
      out[i] = cplx{static_cast<double>(re[i]) * out_scale, static_cast<double>(im[i]) * out_scale};
    }
    return;
  }

  // Generic 128-bit fallback (design points the narrow analysis rejects).
  std::span<FxpComplex> a = frame.alloc<FxpComplex>(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    a[i].re = quantize_to_mantissa(in[i].real(), in_scale, config_.data_width, stats);
    a[i].im = quantize_to_mantissa(in[i].imag(), in_scale, config_.data_width, stats);
    note_peak(stats, 0, a[i]);
  }
  hemath::bit_reverse_permute(a);

  int frac = config_.input_frac_bits;
  for (int s = 1; s <= log_m_; ++s) {
    const int out_frac = config_.stage_frac_bits[static_cast<std::size_t>(s - 1)];
    const std::size_t half = std::size_t{1} << (s - 1);
    const std::size_t len = half << 1;
    const std::size_t stride = m_ >> s;
    for (std::size_t block = 0; block < m_; block += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const QuantizedTwiddle& w = twiddles_[j * stride];
        FxpComplex& u = a[block + j];
        FxpComplex& v = a[block + j + half];
        // The butterfly sum/difference stays wide until the stage output
        // register: saturating the adder at the *input* fraction scale would
        // clamp legitimately-doubled values that the requantizer's right
        // shift is about to bring back in range (a rare-input, large-error
        // bug the differential fuzzer caught).
        const WideComplex t = twiddle_multiply(v, w, config_.rounding, stats);
        WideComplex top{i128{u.re} + t.re, i128{u.im} + t.im};
        WideComplex bot{i128{u.re} - t.re, i128{u.im} - t.im};
        u = requantize(top, frac, out_frac, config_.data_width, config_.rounding, stats);
        v = requantize(bot, frac, out_frac, config_.data_width, config_.rounding, stats);
        note_peak(stats, static_cast<std::size_t>(s), u);
        note_peak(stats, static_cast<std::size_t>(s), v);
        if (stats) ++stats->butterflies;
      }
    }
    frac = out_frac;
  }

  const double out_scale = std::ldexp(1.0, -frac);
  for (std::size_t i = 0; i < m_; ++i) {
    out[i] = cplx{static_cast<double>(a[i].re) * out_scale,
                  static_cast<double>(a[i].im) * out_scale};
  }
}

namespace {

/// Bit-reversal permutation of an SoA buffer: swaps g-element rows.
void bit_reverse_permute_rows(i64* buf, std::size_t m, int log_m, std::size_t g) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t r = hemath::bit_reverse(static_cast<std::uint32_t>(i), log_m);
    if (r > i) {
      i64* a = buf + i * g;
      i64* b = buf + r * g;
      for (std::size_t l = 0; l < g; ++l) std::swap(a[l], b[l]);
    }
  }
}

/// Lane-group width for the batched narrow path at the active SIMD level,
/// following the same dispatch matrix as hemath/simd_batch: a remainder of
/// 2..4 at the AVX-512 level drops to the 4-lane kernel.
std::size_t fxp_group_width(std::size_t remaining) {
  using hemath::simd::SimdLevel;
  if (hemath::simd::level_at_least(SimdLevel::kAvx512) && remaining > 4) return 8;
  if (hemath::simd::level_at_least(SimdLevel::kAvx2)) return 4;
  return 1;
}

}  // namespace

void FxpFft::forward_group_narrow(const cplx* const* in, cplx* const* out, std::size_t count,
                                  std::size_t g, FxpFftStats* stats,
                                  core::ScratchArena* arena_p) const {
  core::ScratchArena& arena = core::scratch_or_thread(arena_p);
  core::ScratchFrame frame(arena);
  std::span<i64> re = frame.alloc<i64>(m_ * g);
  std::span<i64> im = frame.alloc<i64>(m_ * g);
  const double in_scale = std::ldexp(1.0, config_.input_frac_bits);
  for (std::size_t i = 0; i < m_; ++i) {
    i64* rrow = re.data() + i * g;
    i64* irow = im.data() + i * g;
    for (std::size_t l = 0; l < count; ++l) {
      rrow[l] = quantize_to_mantissa(in[l][i].real(), in_scale, config_.data_width, stats);
      irow[l] = quantize_to_mantissa(in[l][i].imag(), in_scale, config_.data_width, stats);
      note_peak(stats, 0, FxpComplex{rrow[l], irow[l]});
    }
    for (std::size_t l = count; l < g; ++l) {
      rrow[l] = 0;
      irow[l] = 0;
    }
  }
  bit_reverse_permute_rows(re.data(), m_, log_m_, g);
  bit_reverse_permute_rows(im.data(), m_, log_m_, g);

  int frac = config_.input_frac_bits;
  for (int s = 1; s <= log_m_; ++s) {
    const int out_frac = config_.stage_frac_bits[static_cast<std::size_t>(s - 1)];
    detail::FxpStageParams p;
    p.pool = digit_pool_.data();
    p.tw = narrow_tw_.data();
    p.m = m_;
    p.half = std::size_t{1} << (s - 1);
    p.stride = m_ >> s;
    p.stage_idx = static_cast<std::size_t>(s);
    p.shift = frac - out_frac;
    p.lim = (i64{1} << (config_.data_width - 1)) - 1;
    p.round_nearest = config_.rounding == RoundingMode::kRoundToNearest;
    if (g == 8) {
      detail::fxp_stage_batch_avx512(re.data(), im.data(), count, p, stats);
    } else {
      detail::fxp_stage_batch_avx2(re.data(), im.data(), count, p, stats);
    }
    frac = out_frac;
  }

  const double out_scale = std::ldexp(1.0, -frac);
  for (std::size_t i = 0; i < m_; ++i) {
    const i64* rrow = re.data() + i * g;
    const i64* irow = im.data() + i * g;
    for (std::size_t l = 0; l < count; ++l) {
      out[l][i] = cplx{static_cast<double>(rrow[l]) * out_scale,
                       static_cast<double>(irow[l]) * out_scale};
    }
  }
}

void FxpFft::forward_batch_into(std::span<const cplx* const> in, std::span<cplx* const> out,
                                FxpFftStats* stats, core::ScratchArena* arena_p) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("FxpFft::forward_batch: size mismatch");
  }
  std::size_t done = 0;
  while (done < in.size()) {
    const std::size_t remaining = in.size() - done;
    const std::size_t g = narrow_ok_ ? fxp_group_width(remaining) : 1;
    if (remaining == 1 || g == 1) {
      forward_into(std::span<const cplx>(in[done], m_), std::span<cplx>(out[done], m_), stats,
                   arena_p);
      ++done;
      continue;
    }
    const std::size_t count = std::min(remaining, g);
    forward_group_narrow(in.data() + done, out.data() + done, count, g, stats, arena_p);
    done += count;
  }
}

void FxpFft::inverse_batch_into(std::span<const cplx* const> in, std::span<cplx* const> out,
                                FxpFftStats* stats, core::ScratchArena* arena_p) const {
  if (in.size() != out.size()) {
    throw std::invalid_argument("FxpFft::inverse_batch: size mismatch");
  }
  // Same conj-forward-conj identity as inverse_into, with the forward run
  // on the batched path; the per-lane double operations are identical to
  // the single-transform sequence, so outputs stay bit-identical.
  core::ScratchArena& arena = core::scratch_or_thread(arena_p);
  core::ScratchFrame frame(arena);
  const std::size_t batch = in.size();
  std::span<cplx> conj_buf = frame.alloc<cplx>(m_ * batch);
  std::span<const cplx*> conj_ptrs = frame.alloc<const cplx*>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    cplx* dst = conj_buf.data() + b * m_;
    for (std::size_t i = 0; i < m_; ++i) dst[i] = std::conj(in[b][i]);
    conj_ptrs[b] = dst;
  }
  forward_batch_into(std::span<const cplx* const>(conj_ptrs.data(), batch), out, stats, &arena);
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < m_; ++i) out[b][i] = std::conj(out[b][i]) * inv_m;
  }
}

void FxpFft::inverse_into(std::span<const cplx> in, std::span<cplx> out, FxpFftStats* stats,
                          core::ScratchArena* arena_p) const {
  if (in.size() != m_ || out.size() != m_) {
    throw std::invalid_argument("FxpFft::inverse: size mismatch");
  }
  // inverse(x) = conj(forward(conj(x))) / M with the sign=+1 kernel; the
  // conjugations are sign flips (free) and /M is an exact scaling by a
  // power of two.
  core::ScratchArena& arena = core::scratch_or_thread(arena_p);
  core::ScratchFrame frame(arena);
  std::span<cplx> conj_in = frame.alloc<cplx>(m_);
  for (std::size_t i = 0; i < m_; ++i) conj_in[i] = std::conj(in[i]);
  forward_into(conj_in, out, stats, &arena);
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (auto& v : out) v = std::conj(v) * inv_m;
}

std::vector<cplx> FxpFft::forward(const std::vector<cplx>& in, FxpFftStats* stats) const {
  std::vector<cplx> out(m_);
  forward_into(in, out, stats);
  return out;
}

std::vector<cplx> FxpFft::inverse(const std::vector<cplx>& in, FxpFftStats* stats) const {
  std::vector<cplx> out(m_);
  inverse_into(in, out, stats);
  return out;
}

FxpNegacyclicTransform::FxpNegacyclicTransform(std::size_t n, FxpFftConfig config)
    : n_(n), fft_(n / 2, std::move(config)) {
  if (n < 4 || (n & (n - 1)) != 0) throw std::invalid_argument("FxpNegacyclicTransform: bad degree");
  const std::size_t m = n_ / 2;
  twist_.resize(m);
  const double base = std::numbers::pi / static_cast<double>(n_);
  const auto& cfg = fft_.config();
  for (std::size_t s = 0; s < m; ++s) {
    twist_[s] = quantize_twiddle(std::polar(1.0, base * static_cast<double>(s)), cfg.twiddle_k,
                                 cfg.twiddle_min_exp);
  }
}

void FxpNegacyclicTransform::forward_into(std::span<const double> a, std::span<cplx> out,
                                          FxpFftStats* stats, core::ScratchArena* arena_p) const {
  if (a.size() != n_) throw std::invalid_argument("FxpNegacyclicTransform::forward: size mismatch");
  const std::size_t m = n_ / 2;
  if (out.size() != m) {
    throw std::invalid_argument("FxpNegacyclicTransform::forward: bad output size");
  }
  core::ScratchArena& arena = core::scratch_or_thread(arena_p);
  core::ScratchFrame frame(arena);
  std::span<cplx> z = frame.alloc<cplx>(m);
  for (std::size_t s = 0; s < m; ++s) {
    // Twist in the quantized domain: the hardware applies the same shift-add
    // multiplier used for stage twiddles.
    z[s] = cplx{a[s], a[s + m]} * twist_[s].value();
  }
  fft_.forward_into(z, out, stats, &arena);
}

void FxpNegacyclicTransform::inverse_into(std::span<const cplx> spec, std::span<double> out,
                                          FxpFftStats* stats, core::ScratchArena* arena_p) const {
  const std::size_t m = n_ / 2;
  if (spec.size() != m) {
    throw std::invalid_argument("FxpNegacyclicTransform::inverse: size mismatch");
  }
  if (out.size() != n_) {
    throw std::invalid_argument("FxpNegacyclicTransform::inverse: bad output size");
  }
  core::ScratchArena& arena = core::scratch_or_thread(arena_p);
  core::ScratchFrame frame(arena);
  std::span<cplx> z = frame.alloc<cplx>(m);
  fft_.inverse_into(spec, z, stats, &arena);
  for (std::size_t s = 0; s < m; ++s) {
    const cplx w = z[s] * std::conj(twist_[s].value());
    out[s] = w.real();
    out[s + m] = w.imag();
  }
}

void FxpNegacyclicTransform::forward_batch_into(std::span<const double* const> a,
                                                std::span<cplx* const> out, FxpFftStats* stats,
                                                core::ScratchArena* arena_p) const {
  if (a.size() != out.size()) {
    throw std::invalid_argument("FxpNegacyclicTransform::forward_batch: size mismatch");
  }
  const std::size_t m = n_ / 2;
  const std::size_t batch = a.size();
  core::ScratchArena& arena = core::scratch_or_thread(arena_p);
  core::ScratchFrame frame(arena);
  std::span<cplx> z_buf = frame.alloc<cplx>(m * batch);
  std::span<const cplx*> z_ptrs = frame.alloc<const cplx*>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    cplx* z = z_buf.data() + b * m;
    for (std::size_t s = 0; s < m; ++s) {
      z[s] = cplx{a[b][s], a[b][s + m]} * twist_[s].value();
    }
    z_ptrs[b] = z;
  }
  fft_.forward_batch_into(std::span<const cplx* const>(z_ptrs.data(), batch), out, stats, &arena);
}

void FxpNegacyclicTransform::inverse_batch_into(std::span<const cplx* const> spec,
                                                std::span<double* const> out, FxpFftStats* stats,
                                                core::ScratchArena* arena_p) const {
  if (spec.size() != out.size()) {
    throw std::invalid_argument("FxpNegacyclicTransform::inverse_batch: size mismatch");
  }
  const std::size_t m = n_ / 2;
  const std::size_t batch = spec.size();
  core::ScratchArena& arena = core::scratch_or_thread(arena_p);
  core::ScratchFrame frame(arena);
  std::span<cplx> z_buf = frame.alloc<cplx>(m * batch);
  std::span<cplx*> z_ptrs = frame.alloc<cplx*>(batch);
  for (std::size_t b = 0; b < batch; ++b) z_ptrs[b] = z_buf.data() + b * m;
  fft_.inverse_batch_into(spec, std::span<cplx* const>(z_ptrs.data(), batch), stats, &arena);
  for (std::size_t b = 0; b < batch; ++b) {
    const cplx* z = z_ptrs[b];
    for (std::size_t s = 0; s < m; ++s) {
      const cplx w = z[s] * std::conj(twist_[s].value());
      out[b][s] = w.real();
      out[b][s + m] = w.imag();
    }
  }
}

std::vector<cplx> FxpNegacyclicTransform::forward(const std::vector<double>& a,
                                                  FxpFftStats* stats) const {
  std::vector<cplx> out(n_ / 2);
  forward_into(a, out, stats);
  return out;
}

std::vector<double> FxpNegacyclicTransform::inverse(const std::vector<cplx>& spec,
                                                    FxpFftStats* stats) const {
  std::vector<double> out(n_);
  inverse_into(spec, out, stats);
  return out;
}

double relative_spectrum_rmse(const std::vector<cplx>& approx, const std::vector<cplx>& exact) {
  if (approx.size() != exact.size() || exact.empty()) {
    throw std::invalid_argument("relative_spectrum_rmse: size mismatch");
  }
  double err = 0.0, mag = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    err += std::norm(approx[i] - exact[i]);
    mag += std::norm(exact[i]);
  }
  if (mag == 0.0) return std::sqrt(err / static_cast<double>(exact.size()));
  return std::sqrt(err / mag);
}

}  // namespace flash::fft
