#include "fft/fxp_fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "hemath/bitrev.hpp"

namespace flash::fft {

namespace {

using i64 = std::int64_t;
using i128 = __int128;

struct FxpComplex {
  i64 re = 0;
  i64 im = 0;
};

/// Saturate a wide value into `width` total bits (two's complement). This is
/// the one place the FXP path may narrow the accumulator: every value below
/// is clamped into [-lim, lim] first, so the casts cannot drop set bits.
i64 saturate(i128 v, int width, FxpFftStats* stats) {
  const i128 lim = (i128{1} << (width - 1)) - 1;
  if (v > lim) {
    if (stats) ++stats->saturations;
    return static_cast<i64>(lim);  // flash-lint: allow(narrowing-fxp): lim < 2^62 by config validation
  }
  if (v < -lim) {
    if (stats) ++stats->saturations;
    return static_cast<i64>(-lim);  // flash-lint: allow(narrowing-fxp): lim < 2^62 by config validation
  }
  return static_cast<i64>(v);  // flash-lint: allow(narrowing-fxp): v clamped into [-lim, lim] above
}

/// Shift a mantissa right by `s` bits (s >= 0) with the configured rounding.
i128 shift_right(i128 v, int s, RoundingMode mode) {
  if (s == 0) return v;
  if (mode == RoundingMode::kRoundToNearest) v += i128{1} << (s - 1);
  return v >> s;  // arithmetic shift (implementation-defined pre-C++20; GCC/Clang do the right thing)
}

/// Multiply mantissa m (frac bits f) by one CSD-quantized scalar; the result
/// keeps f fraction bits. Each digit sign*2^e contributes sign*(m >> -e)
/// conceptually; we accumulate exactly in 128 bits and round once per digit
/// (matching a shift-add array that truncates at the adder inputs).
i128 csd_multiply(i64 m, const CsdValue& w, RoundingMode mode, FxpFftStats* stats) {
  i128 acc = 0;
  for (const CsdDigit& d : w.digits) {
    i128 term;
    if (d.exponent >= 0) {
      term = i128{m} << d.exponent;
    } else {
      term = shift_right(m, -d.exponent, mode);
    }
    acc += d.sign > 0 ? term : -term;
    if (stats) ++stats->shift_add_terms;
  }
  return acc;
}

/// Combinational (pre-register) value: the multiplier and adder keep full
/// precision; only the stage output register narrows back to data_width.
struct WideComplex {
  i128 re = 0;
  i128 im = 0;
};

/// Full complex multiply by a quantized twiddle; frac bits preserved. The
/// product stays wide — in hardware the multiplier output feeds the
/// butterfly adder combinationally, so clamping here would drop the carry
/// headroom the requantizer is entitled to round away.
WideComplex twiddle_multiply(FxpComplex a, const QuantizedTwiddle& w, RoundingMode mode,
                             FxpFftStats* stats) {
  const i128 rr = csd_multiply(a.re, w.re, mode, stats);
  const i128 ii = csd_multiply(a.im, w.im, mode, stats);
  const i128 ri = csd_multiply(a.re, w.im, mode, stats);
  const i128 ir = csd_multiply(a.im, w.re, mode, stats);
  return {rr - ii, ri + ir};
}

/// Requantize from f_from fraction bits to f_to, saturating to width — the
/// stage output register: the one place a stage narrows its result.
FxpComplex requantize(WideComplex a, int f_from, int f_to, int width, RoundingMode mode,
                      FxpFftStats* stats) {
  const int shift = f_from - f_to;
  i128 re = a.re, im = a.im;
  if (shift > 0) {
    re = shift_right(re, shift, mode);
    im = shift_right(im, shift, mode);
  } else if (shift < 0) {
    re <<= -shift;
    im <<= -shift;
  }
  return {saturate(re, width, stats), saturate(im, width, stats)};
}

/// Record the post-saturation mantissa magnitude at pipeline cut `idx`
/// (0 = input quantizer, s = stage s output register). Values are clamped to
/// +/-(2^(width-1)-1) already, so the negation cannot overflow.
void note_peak(FxpFftStats* stats, std::size_t idx, FxpComplex v) {
  if (stats == nullptr) return;
  auto& peaks = stats->stage_peak_mantissa;
  if (peaks.size() <= idx) peaks.resize(idx + 1, 0);
  const std::uint64_t re = static_cast<std::uint64_t>(v.re < 0 ? -v.re : v.re);
  const std::uint64_t im = static_cast<std::uint64_t>(v.im < 0 ? -v.im : v.im);
  peaks[idx] = std::max(peaks[idx], std::max(re, im));
}

i64 quantize_to_mantissa(double v, int frac_bits, int width, FxpFftStats* stats) {
  const double scaled = std::ldexp(v, frac_bits);
  i128 m = static_cast<i128>(std::llround(scaled));
  return saturate(m, width, stats);
}

}  // namespace

FxpFftConfig FxpFftConfig::uniform(std::size_t m, int frac_bits, int data_width, int twiddle_k) {
  FxpFftConfig cfg;
  cfg.input_frac_bits = frac_bits;
  cfg.stage_frac_bits.assign(static_cast<std::size_t>(hemath::log2_exact(m)), frac_bits);
  cfg.data_width = data_width;
  cfg.twiddle_k = twiddle_k;
  return cfg;
}

FxpFft::FxpFft(std::size_t m, FxpFftConfig config) : m_(m), config_(std::move(config)) {
  log_m_ = hemath::log2_exact(m);
  if (config_.stage_frac_bits.size() != static_cast<std::size_t>(log_m_)) {
    throw std::invalid_argument("FxpFft: stage_frac_bits must have log2(M) entries");
  }
  if (config_.data_width < 4 || config_.data_width > 62) {
    throw std::invalid_argument("FxpFft: data_width out of range [4, 62]");
  }
  twiddles_ = quantize_fft_twiddles(m_, +1, config_.twiddle_k, config_.twiddle_min_exp);
}

std::vector<cplx> FxpFft::forward(const std::vector<cplx>& in, FxpFftStats* stats) const {
  if (in.size() != m_) throw std::invalid_argument("FxpFft::forward: size mismatch");

  std::vector<FxpComplex> a(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    a[i].re = quantize_to_mantissa(in[i].real(), config_.input_frac_bits, config_.data_width, stats);
    a[i].im = quantize_to_mantissa(in[i].imag(), config_.input_frac_bits, config_.data_width, stats);
    note_peak(stats, 0, a[i]);
  }
  hemath::bit_reverse_permute(a);

  int frac = config_.input_frac_bits;
  for (int s = 1; s <= log_m_; ++s) {
    const int out_frac = config_.stage_frac_bits[static_cast<std::size_t>(s - 1)];
    const std::size_t half = std::size_t{1} << (s - 1);
    const std::size_t len = half << 1;
    const std::size_t stride = m_ >> s;
    for (std::size_t block = 0; block < m_; block += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const QuantizedTwiddle& w = twiddles_[j * stride];
        FxpComplex& u = a[block + j];
        FxpComplex& v = a[block + j + half];
        // The butterfly sum/difference stays wide until the stage output
        // register: saturating the adder at the *input* fraction scale would
        // clamp legitimately-doubled values that the requantizer's right
        // shift is about to bring back in range (a rare-input, large-error
        // bug the differential fuzzer caught).
        const WideComplex t = twiddle_multiply(v, w, config_.rounding, stats);
        WideComplex top{i128{u.re} + t.re, i128{u.im} + t.im};
        WideComplex bot{i128{u.re} - t.re, i128{u.im} - t.im};
        u = requantize(top, frac, out_frac, config_.data_width, config_.rounding, stats);
        v = requantize(bot, frac, out_frac, config_.data_width, config_.rounding, stats);
        note_peak(stats, static_cast<std::size_t>(s), u);
        note_peak(stats, static_cast<std::size_t>(s), v);
        if (stats) ++stats->butterflies;
      }
    }
    frac = out_frac;
  }

  std::vector<cplx> out(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    out[i] = cplx{std::ldexp(static_cast<double>(a[i].re), -frac),
                  std::ldexp(static_cast<double>(a[i].im), -frac)};
  }
  return out;
}

std::vector<cplx> FxpFft::inverse(const std::vector<cplx>& in, FxpFftStats* stats) const {
  if (in.size() != m_) throw std::invalid_argument("FxpFft::inverse: size mismatch");
  // inverse(x) = conj(forward(conj(x))) / M with the sign=+1 kernel; the
  // conjugations are sign flips (free) and /M is an exact shift of the
  // output fraction interpretation.
  std::vector<cplx> conj_in(m_);
  for (std::size_t i = 0; i < m_; ++i) conj_in[i] = std::conj(in[i]);
  std::vector<cplx> out = forward(conj_in, stats);
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (auto& v : out) v = std::conj(v) * inv_m;
  return out;
}

FxpNegacyclicTransform::FxpNegacyclicTransform(std::size_t n, FxpFftConfig config)
    : n_(n), fft_(n / 2, std::move(config)) {
  if (n < 4 || (n & (n - 1)) != 0) throw std::invalid_argument("FxpNegacyclicTransform: bad degree");
  const std::size_t m = n_ / 2;
  twist_.resize(m);
  const double base = std::numbers::pi / static_cast<double>(n_);
  const auto& cfg = fft_.config();
  for (std::size_t s = 0; s < m; ++s) {
    twist_[s] = quantize_twiddle(std::polar(1.0, base * static_cast<double>(s)), cfg.twiddle_k,
                                 cfg.twiddle_min_exp);
  }
}

std::vector<cplx> FxpNegacyclicTransform::forward(const std::vector<double>& a,
                                                  FxpFftStats* stats) const {
  if (a.size() != n_) throw std::invalid_argument("FxpNegacyclicTransform::forward: size mismatch");
  const std::size_t m = n_ / 2;
  std::vector<cplx> z(m);
  for (std::size_t s = 0; s < m; ++s) {
    // Twist in the quantized domain: the hardware applies the same shift-add
    // multiplier used for stage twiddles.
    z[s] = cplx{a[s], a[s + m]} * twist_[s].value();
  }
  return fft_.forward(z, stats);
}

std::vector<double> FxpNegacyclicTransform::inverse(const std::vector<cplx>& spec,
                                                    FxpFftStats* stats) const {
  const std::size_t m = n_ / 2;
  if (spec.size() != m) throw std::invalid_argument("FxpNegacyclicTransform::inverse: size mismatch");
  const std::vector<cplx> z = fft_.inverse(spec, stats);
  std::vector<double> a(n_);
  for (std::size_t s = 0; s < m; ++s) {
    const cplx w = z[s] * std::conj(twist_[s].value());
    a[s] = w.real();
    a[s + m] = w.imag();
  }
  return a;
}

double relative_spectrum_rmse(const std::vector<cplx>& approx, const std::vector<cplx>& exact) {
  if (approx.size() != exact.size() || exact.empty()) {
    throw std::invalid_argument("relative_spectrum_rmse: size mismatch");
  }
  double err = 0.0, mag = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    err += std::norm(approx[i] - exact[i]);
    mag += std::norm(exact[i]);
  }
  if (mag == 0.0) return std::sqrt(err / static_cast<double>(exact.size()));
  return std::sqrt(err / mag);
}

}  // namespace flash::fft
