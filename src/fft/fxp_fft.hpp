// Bit-accurate fixed-point FFT simulator (paper Section IV-C).
//
// FLASH's weight transforms run on approximate butterfly units: fixed-point
// data with a per-stage bit-width chosen by the DSE, and twiddle factors
// quantized to k CSD digits so each multiplication is a k-term shift-add.
// This simulator reproduces that arithmetic exactly: values are held as
// 64-bit integer mantissas, twiddle products are evaluated digit-by-digit as
// arithmetic shifts and adds, and every stage output is rounded/saturated to
// the configured format. The result is bit-identical to what the RTL would
// compute, which is what the error-model validation and the accuracy
// experiments (Fig. 5(b), Fig. 11(b)(c)) need.
//
// Two execution paths compute the same integers:
//   * a generic 128-bit accumulator path, valid for every legal config;
//   * a narrow 64-bit SoA path (with an AVX2 stage kernel, see
//     fxp_kernels.hpp), taken when a constructor-time overflow analysis
//     proves every intermediate fits int64 — then 64-bit two's-complement
//     arithmetic is exact and the paths are bit-identical by construction
//     (pinned by tests/test_simd_kernels.cpp over the differential corpus).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fft/complex_fft.hpp"
#include "fft/twiddle.hpp"

namespace flash::core {
class ScratchArena;
}  // namespace flash::core

namespace flash::fft {

namespace detail {

/// One flattened CSD digit of the narrow plan: multiply contributes
/// sign * (m >> shift), where a negative shift encodes a left shift.
struct NarrowDigit {
  std::int16_t shift = 0;  // arithmetic right-shift count; negative = left
  std::int16_t sign = 1;   // +1 or -1
};

/// Digit-pool slice for one twiddle: [re_off, re_off+re_cnt) are the real
/// component's digits, likewise im. Indexed by twiddle power.
struct NarrowTwiddle {
  std::uint32_t re_off = 0;
  std::uint32_t re_cnt = 0;
  std::uint32_t im_off = 0;
  std::uint32_t im_cnt = 0;
};

}  // namespace detail

/// Rounding applied when narrowing a mantissa.
enum class RoundingMode {
  kTruncate,        // drop LSBs (cheapest hardware)
  kRoundToNearest,  // add half-ulp then drop
};

/// Full parameterization of one approximate FFT instance. This is the DSE's
/// design point.
struct FxpFftConfig {
  /// Fraction bits of the data entering stage 1 (after fold/twist quantization).
  int input_frac_bits = 16;
  /// Fraction bits retained after each stage; size must equal log2(M).
  std::vector<int> stage_frac_bits;
  /// Total data width (sign + integer + fraction) used for saturation.
  int data_width = 39;
  /// CSD digits per twiddle component (the paper's k).
  int twiddle_k = 5;
  /// Smallest representable twiddle digit exponent (fraction depth of Fig. 9).
  int twiddle_min_exp = -20;
  RoundingMode rounding = RoundingMode::kRoundToNearest;

  /// Uniform per-stage fraction bits convenience constructor.
  static FxpFftConfig uniform(std::size_t m, int frac_bits, int data_width, int twiddle_k);
};

/// Dynamic instruction counts of one transform; drives the energy model.
///
/// Not thread-safe: each thread accumulates into its own instance and the
/// owner combines them with merge() (per-thread stats replaced the old
/// shared-object pattern, whose note_peak resize raced under the pipeline).
struct FxpFftStats {
  std::uint64_t shift_add_terms = 0;  // executed CSD terms (hardware adds)
  std::uint64_t butterflies = 0;
  std::uint64_t saturations = 0;      // overflow clamps (should be ~0 in a sane design)
  /// Largest |mantissa| observed at each pipeline cut, maximized across every
  /// transform sharing this stats object: index 0 is the input quantizer
  /// output, index s the stage-s output register. Grown lazily on first use;
  /// the static analyzer's per-stage bounds (analysis/fxp_analyzer.hpp) must
  /// dominate these, which flash_fuzz cross-checks.
  std::vector<std::uint64_t> stage_peak_mantissa;

  /// Fold another thread's (or call's) counts into this one: sums the
  /// counters, elementwise-maxes the per-stage peaks.
  void merge(const FxpFftStats& other);
};

/// M-point complex FFT over fixed-point mantissas with the e^{+2*pi*i/M}
/// kernel (matching FftPlan sign=+1 and the folded negacyclic transform).
class FxpFft {
 public:
  FxpFft(std::size_t m, FxpFftConfig config);

  std::size_t size() const { return m_; }
  const FxpFftConfig& config() const { return config_; }
  const std::vector<QuantizedTwiddle>& twiddles() const { return twiddles_; }
  /// True when the 64-bit SoA path (and thus the AVX2 stage kernel) is
  /// provably overflow-free for this design point.
  bool uses_narrow_path() const { return narrow_ok_; }

  /// Simulate the transform. Input/output are doubles; the internal
  /// arithmetic is exact integer shift-add per the configuration.
  std::vector<cplx> forward(const std::vector<cplx>& in, FxpFftStats* stats = nullptr) const;

  /// Inverse transform on the same approximate datapath (conjugate CSD
  /// twiddles; the 1/M scaling is an exact arithmetic shift). FLASH runs the
  /// dense inverse transforms of HConv on the approximate array, so this is
  /// part of the modelled hardware, not just a test convenience.
  std::vector<cplx> inverse(const std::vector<cplx>& in, FxpFftStats* stats = nullptr) const;

  /// Allocation-free variants: working storage comes from `arena` (the
  /// calling thread's arena when null); `out` must have size() elements and
  /// may not alias `in`. Steady state performs zero heap allocations.
  void forward_into(std::span<const cplx> in, std::span<cplx> out, FxpFftStats* stats = nullptr,
                    core::ScratchArena* arena = nullptr) const;
  void inverse_into(std::span<const cplx> in, std::span<cplx> out, FxpFftStats* stats = nullptr,
                    core::ScratchArena* arena = nullptr) const;

  /// Batched transforms: each in[b]/out[b] points at size() elements. On the
  /// narrow path the batch runs as SoA lane groups — one stage sweep covers
  /// the whole group, loading each twiddle's CSD digits once per group
  /// instead of once per transform (AVX-512 = 8 lanes, AVX2 = 4; see
  /// ARCHITECTURE.md §11 for the remainder policy). Outputs and stats are
  /// bit-identical to a loop of the single-transform calls at every SIMD
  /// level. Zero steady-state heap allocations (scratch via `arena`).
  void forward_batch_into(std::span<const cplx* const> in, std::span<cplx* const> out,
                          FxpFftStats* stats = nullptr, core::ScratchArena* arena = nullptr) const;
  void inverse_batch_into(std::span<const cplx* const> in, std::span<cplx* const> out,
                          FxpFftStats* stats = nullptr, core::ScratchArena* arena = nullptr) const;

 private:
  void build_narrow_plan();
  void forward_group_narrow(const cplx* const* in, cplx* const* out, std::size_t count,
                            std::size_t g, FxpFftStats* stats, core::ScratchArena* arena) const;

  std::size_t m_;
  int log_m_;
  FxpFftConfig config_;
  std::vector<QuantizedTwiddle> twiddles_;  // W_M^j, j in [0, M/2)
  // Narrow-path plan: per-twiddle digit runs flattened into one pool so a
  // stage kernel touches contiguous memory instead of chasing CsdValue
  // vectors (empty when narrow_ok_ is false).
  std::vector<detail::NarrowDigit> digit_pool_;
  std::vector<detail::NarrowTwiddle> narrow_tw_;
  bool narrow_ok_ = false;
};

/// Approximate forward negacyclic transform of an integer polynomial:
/// fold + (quantized) twist + FxpFft. This is exactly the datapath of one
/// FLASH approximate PE transforming a weight plaintext.
class FxpNegacyclicTransform {
 public:
  FxpNegacyclicTransform(std::size_t n, FxpFftConfig config);

  std::size_t degree() const { return n_; }
  const FxpFft& fft() const { return fft_; }

  std::vector<cplx> forward(const std::vector<double>& a, FxpFftStats* stats = nullptr) const;

  /// Half-spectrum back to n real coefficients on the approximate datapath.
  std::vector<double> inverse(const std::vector<cplx>& spec, FxpFftStats* stats = nullptr) const;

  /// Allocation-free variants; `out` sized n/2 (forward) / n (inverse).
  void forward_into(std::span<const double> a, std::span<cplx> out, FxpFftStats* stats = nullptr,
                    core::ScratchArena* arena = nullptr) const;
  void inverse_into(std::span<const cplx> spec, std::span<double> out,
                    FxpFftStats* stats = nullptr, core::ScratchArena* arena = nullptr) const;

  /// Batched variants: each a[b] points at n doubles, out[b] at n/2 complex
  /// (forward) and vice versa (inverse). The twist is applied per lane and
  /// the FFT runs on the SoA batched path; bit-identical to a loop of the
  /// single-transform calls at every SIMD level.
  void forward_batch_into(std::span<const double* const> a, std::span<cplx* const> out,
                          FxpFftStats* stats = nullptr, core::ScratchArena* arena = nullptr) const;
  void inverse_batch_into(std::span<const cplx* const> spec, std::span<double* const> out,
                          FxpFftStats* stats = nullptr, core::ScratchArena* arena = nullptr) const;

 private:
  std::size_t n_;
  FxpFft fft_;
  std::vector<QuantizedTwiddle> twist_;  // zeta^s, CSD-quantized
};

/// Root-mean-square error between an approximate and an exact spectrum,
/// normalized by the RMS magnitude of the exact spectrum.
double relative_spectrum_rmse(const std::vector<cplx>& approx, const std::vector<cplx>& exact);

}  // namespace flash::fft
