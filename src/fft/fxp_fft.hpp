// Bit-accurate fixed-point FFT simulator (paper Section IV-C).
//
// FLASH's weight transforms run on approximate butterfly units: fixed-point
// data with a per-stage bit-width chosen by the DSE, and twiddle factors
// quantized to k CSD digits so each multiplication is a k-term shift-add.
// This simulator reproduces that arithmetic exactly: values are held as
// 64-bit integer mantissas, twiddle products are evaluated digit-by-digit as
// arithmetic shifts and adds, and every stage output is rounded/saturated to
// the configured format. The result is bit-identical to what the RTL would
// compute, which is what the error-model validation and the accuracy
// experiments (Fig. 5(b), Fig. 11(b)(c)) need.
#pragma once

#include <cstdint>
#include <vector>

#include "fft/complex_fft.hpp"
#include "fft/twiddle.hpp"

namespace flash::fft {

/// Rounding applied when narrowing a mantissa.
enum class RoundingMode {
  kTruncate,        // drop LSBs (cheapest hardware)
  kRoundToNearest,  // add half-ulp then drop
};

/// Full parameterization of one approximate FFT instance. This is the DSE's
/// design point.
struct FxpFftConfig {
  /// Fraction bits of the data entering stage 1 (after fold/twist quantization).
  int input_frac_bits = 16;
  /// Fraction bits retained after each stage; size must equal log2(M).
  std::vector<int> stage_frac_bits;
  /// Total data width (sign + integer + fraction) used for saturation.
  int data_width = 39;
  /// CSD digits per twiddle component (the paper's k).
  int twiddle_k = 5;
  /// Smallest representable twiddle digit exponent (fraction depth of Fig. 9).
  int twiddle_min_exp = -20;
  RoundingMode rounding = RoundingMode::kRoundToNearest;

  /// Uniform per-stage fraction bits convenience constructor.
  static FxpFftConfig uniform(std::size_t m, int frac_bits, int data_width, int twiddle_k);
};

/// Dynamic instruction counts of one transform; drives the energy model.
struct FxpFftStats {
  std::uint64_t shift_add_terms = 0;  // executed CSD terms (hardware adds)
  std::uint64_t butterflies = 0;
  std::uint64_t saturations = 0;      // overflow clamps (should be ~0 in a sane design)
  /// Largest |mantissa| observed at each pipeline cut, maximized across every
  /// transform sharing this stats object: index 0 is the input quantizer
  /// output, index s the stage-s output register. Grown lazily on first use;
  /// the static analyzer's per-stage bounds (analysis/fxp_analyzer.hpp) must
  /// dominate these, which flash_fuzz cross-checks.
  std::vector<std::uint64_t> stage_peak_mantissa;
};

/// M-point complex FFT over fixed-point mantissas with the e^{+2*pi*i/M}
/// kernel (matching FftPlan sign=+1 and the folded negacyclic transform).
class FxpFft {
 public:
  FxpFft(std::size_t m, FxpFftConfig config);

  std::size_t size() const { return m_; }
  const FxpFftConfig& config() const { return config_; }
  const std::vector<QuantizedTwiddle>& twiddles() const { return twiddles_; }

  /// Simulate the transform. Input/output are doubles; the internal
  /// arithmetic is exact integer shift-add per the configuration.
  std::vector<cplx> forward(const std::vector<cplx>& in, FxpFftStats* stats = nullptr) const;

  /// Inverse transform on the same approximate datapath (conjugate CSD
  /// twiddles; the 1/M scaling is an exact arithmetic shift). FLASH runs the
  /// dense inverse transforms of HConv on the approximate array, so this is
  /// part of the modelled hardware, not just a test convenience.
  std::vector<cplx> inverse(const std::vector<cplx>& in, FxpFftStats* stats = nullptr) const;

 private:
  std::size_t m_;
  int log_m_;
  FxpFftConfig config_;
  std::vector<QuantizedTwiddle> twiddles_;  // W_M^j, j in [0, M/2)
};

/// Approximate forward negacyclic transform of an integer polynomial:
/// fold + (quantized) twist + FxpFft. This is exactly the datapath of one
/// FLASH approximate PE transforming a weight plaintext.
class FxpNegacyclicTransform {
 public:
  FxpNegacyclicTransform(std::size_t n, FxpFftConfig config);

  std::size_t degree() const { return n_; }
  const FxpFft& fft() const { return fft_; }

  std::vector<cplx> forward(const std::vector<double>& a, FxpFftStats* stats = nullptr) const;

  /// Half-spectrum back to n real coefficients on the approximate datapath.
  std::vector<double> inverse(const std::vector<cplx>& spec, FxpFftStats* stats = nullptr) const;

 private:
  std::size_t n_;
  FxpFft fft_;
  std::vector<QuantizedTwiddle> twist_;  // zeta^s, CSD-quantized
};

/// Root-mean-square error between an approximate and an exact spectrum,
/// normalized by the RMS magnitude of the exact spectrum.
double relative_spectrum_rmse(const std::vector<cplx>& approx, const std::vector<cplx>& exact);

}  // namespace flash::fft
