// Negacyclic polynomial multiplication through an N/2-point complex FFT.
//
// This is the "HConv based on FFT" path of the paper's Fig. 4(b), following
// Klemsa's extended Fourier transform: a real polynomial a of degree N over
// X^N+1 is evaluated at the odd 2N-th roots of unity. For real input the
// spectrum has conjugate symmetry, so only N/2 evaluations are independent;
// they are obtained by folding a into N/2 complex values
//     z[s] = (a[s] + i*a[s + N/2]) * zeta^s,   zeta = e^{i*pi/N},
// and running a single N/2-point FFT with the e^{+2*pi*i/M} kernel. Pointwise
// products in this half-spectrum domain realize negacyclic convolution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fft/complex_fft.hpp"
#include "hemath/modular.hpp"

namespace flash::core {
class ScratchArena;
}  // namespace flash::core

namespace flash::fft {

using hemath::i64;
using hemath::u64;

class NegacyclicFft {
 public:
  /// n: ring degree (power of two, >= 4). Internally uses an n/2-point FFT.
  explicit NegacyclicFft(std::size_t n);

  std::size_t degree() const { return n_; }
  std::size_t fft_size() const { return n_ / 2; }
  const FftPlan& plan() const { return plan_; }

  /// Fold + twist only (no FFT): the n/2 complex values z[s] above.
  /// Exposed because the sparse weight transform operates on this sequence.
  std::vector<cplx> fold(const std::vector<double>& a) const;

  /// Inverse of fold(): untwist and unfold back to n real values.
  std::vector<double> unfold(const std::vector<cplx>& z) const;

  /// Half-spectrum forward transform of a real polynomial.
  std::vector<cplx> forward(const std::vector<double>& a) const;

  /// Inverse: half-spectrum back to n real coefficients.
  std::vector<double> inverse(std::vector<cplx> spec) const;

  /// Allocation-free forward: folds directly into `out` (size n/2) and
  /// transforms in place. Needs no scratch at all.
  void forward_into(std::span<const double> a, std::span<cplx> out) const;

  /// Allocation-free inverse: working copy of `spec` comes from `arena`
  /// (the calling thread's arena when null); `out` has size n.
  void inverse_into(std::span<const cplx> spec, std::span<double> out,
                    core::ScratchArena* arena = nullptr) const;

  /// Negacyclic product of two integer polynomials with exact rounding of the
  /// floating result. Coefficient magnitudes must stay within double's exact
  /// integer range for the rounding to be error-free.
  std::vector<i64> multiply(const std::vector<i64>& a, const std::vector<i64>& b) const;

  /// Same product, reduced mod q (signed representatives used internally).
  std::vector<u64> multiply_mod(const std::vector<u64>& a, const std::vector<u64>& b, u64 q) const;

 private:
  std::size_t n_;
  FftPlan plan_;
  std::vector<cplx> twist_;      // zeta^s
  std::vector<cplx> untwist_;    // zeta^{-s}
};

/// Schoolbook negacyclic product over signed 64-bit integers (oracle).
std::vector<i64> negacyclic_multiply_i64(const std::vector<i64>& a, const std::vector<i64>& b);

}  // namespace flash::fft
