// Quantized twiddle factors (paper Section IV-C1).
//
// FLASH quantizes each twiddle-factor component to a canonical-signed-digit
// (CSD) form with at most k nonzero digits, so multiplication by a twiddle
// becomes k shift-add terms steered by small MUXes (Fig. 9). k is the knob
// the DSE explores: k ~ 18 keeps accuracy loss < 1% without retraining and
// k ~ 5 suffices after approximation-aware training.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace flash::fft {

/// One signed power-of-two term: sign * 2^exponent.
struct CsdDigit {
  int exponent = 0;  // typically negative (twiddles lie in [-1, 1])
  int sign = 1;      // +1 or -1
};

/// CSD approximation of a real scalar.
struct CsdValue {
  std::vector<CsdDigit> digits;  // at most k terms
  double value = 0.0;            // the reconstructed approximation
  double error = 0.0;            // value - original
};

/// Greedy CSD quantization: repeatedly subtract the closest signed power of
/// two until k digits are used or the residual underflows 2^min_exponent.
/// Digits with exponent < min_exponent are dropped (hardware fraction limit).
CsdValue csd_quantize(double x, int k, int min_exponent);

/// A complex twiddle factor with both components CSD-quantized.
struct QuantizedTwiddle {
  CsdValue re;
  CsdValue im;
  std::complex<double> value() const { return {re.value, im.value}; }
  /// Total nonzero digits across both components (the shift-add cost driver).
  int digit_count() const { return static_cast<int>(re.digits.size() + im.digits.size()); }
};

QuantizedTwiddle quantize_twiddle(std::complex<double> w, int k, int min_exponent);

/// Quantize every distinct twiddle of an M-point FFT (the power table
/// W_M^j, j = 0..M/2-1, with kernel sign `sign`).
std::vector<QuantizedTwiddle> quantize_fft_twiddles(std::size_t m, int sign, int k, int min_exponent);

/// RMS quantization error over a twiddle table (feeds the DSE error model).
double twiddle_rms_error(const std::vector<QuantizedTwiddle>& table);

}  // namespace flash::fft
