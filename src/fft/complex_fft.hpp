// Iterative complex FFT with the same decimation-in-time dataflow as the
// paper's Fig. 3: bit-reverse the input, then log2(M) stages of Cooley-Tukey
// butterflies. The explicit stage structure is shared with the fixed-point
// FFT and the sparse-dataflow planner so all three agree on op counts.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace flash::fft {

using cplx = std::complex<double>;

/// A reusable plan for M-point FFTs (M a power of two).
///
/// sign = +1 computes sum a[m] e^{+2*pi*i*m*k/M} (the orientation used by the
/// folded negacyclic transform); sign = -1 the conjugate kernel. inverse()
/// applies the conjugate kernel and scales by 1/M.
///
/// forward()/inverse() are allocation-free and dispatch each stage with at
/// least two butterflies per block to an AVX2 row kernel when available
/// (fft_kernels.hpp). The whole fft library is built with -ffp-contract=off,
/// so the scalar butterflies perform the same IEEE mul/add/sub sequence as
/// the vector lanes and the two paths are bit-identical.
class FftPlan {
 public:
  FftPlan(std::size_t m, int sign);

  std::size_t size() const { return m_; }
  int stages() const { return log_m_; }
  int sign() const { return sign_; }

  /// Twiddle W_M^(sign * j * M / 2^s) used at stage s (1-based) for butterfly
  /// offset j within a block; exposed for the sparse planner and FXP FFT.
  cplx twiddle(int stage, std::size_t j) const;

  /// In-place transform: standard-order input, standard-order output
  /// (bit-reversal applied internally, then DIT stages).
  void forward(std::span<cplx> a) const;
  void forward(std::vector<cplx>& a) const { forward(std::span<cplx>(a)); }

  /// In-place inverse of forward(): conjugate kernel with 1/M scaling.
  void inverse(std::span<cplx> a) const;
  void inverse(std::vector<cplx>& a) const { inverse(std::span<cplx>(a)); }

 private:
  std::size_t m_;
  int log_m_;
  int sign_;
  std::vector<cplx> root_pow_;  // W_M^(sign*j), j = 0..M/2-1
  // Per-stage flattened twiddles: stage s (1-based) owns the 2^(s-1)
  // contiguous entries at offset 2^(s-1)-1 (value root_pow_[j * (m >> s)]).
  // The row kernel streams these unit-stride instead of striding root_pow_.
  std::vector<cplx> stage_tw_;
};

/// O(M^2) reference DFT with kernel e^{sign*2*pi*i*mk/M}; the test oracle.
std::vector<cplx> dft_reference(const std::vector<cplx>& a, int sign);

}  // namespace flash::fft
