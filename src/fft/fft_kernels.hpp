// Internal interface of the double-precision AVX2 butterfly row kernel,
// shared between FftPlan (complex_fft.cpp) and fft_avx2.cpp. Not installed
// with the public headers.
#pragma once

#include <cstddef>

#include "fft/complex_fft.hpp"

namespace flash::fft::detail {

/// One DIT stage over the whole array: for every block of 2*half elements
/// and every butterfly j in [0, half), t = a[block+j+half] * tw[j];
/// a[block+j+half] = a[block+j] - t; a[block+j] += t. Processes two
/// butterflies (four doubles) per vector op, so requires half >= 2 (half is
/// a power of two — no remainder). Compiled with -mavx2; callers must have
/// checked simd::active_simd_level(). Performs the identical IEEE operation
/// sequence as the scalar loop built with -ffp-contract=off, so outputs are
/// bit-identical.
void fft_stage_avx2(cplx* a, const cplx* tw, std::size_t m, std::size_t half);

}  // namespace flash::fft::detail
