#include "fft/radix4.hpp"

#include <numbers>
#include <stdexcept>

#include "core/scratch.hpp"
#include "hemath/bitrev.hpp"

namespace flash::fft {

namespace {

/// i^r * v computed exactly (rotations are wiring, not multipliers).
cplx rotate_i(cplx v, int r) {
  switch (r & 3) {
    case 0: return v;
    case 1: return {-v.imag(), v.real()};
    case 2: return -v;
    default: return {v.imag(), -v.real()};
  }
}

/// Recursion scratch comes from the caller's arena: the de-interleaved
/// sub-sequences live in a frame that dies when this level returns, so the
/// whole transform touches the heap only while the arena warms up.
void fft_recursive(std::span<cplx> a, double root_angle, std::size_t total_m, Radix4Stats* stats,
                   core::ScratchArena& arena) {
  const std::size_t n = a.size();
  if (n == 1) return;
  if (n == 2) {
    const cplx u = a[0], v = a[1];
    a[0] = u + v;
    a[1] = u - v;
    if (stats) {
      ++stats->trivial_mults;
      stats->complex_adds += 2;
    }
    return;
  }
  core::ScratchFrame frame(arena);
  if (n % 4 == 0) {
    const std::size_t quarter = n / 4;
    std::span<cplx> sub[4];
    for (int r = 0; r < 4; ++r) {
      sub[r] = frame.alloc<cplx>(quarter);
      for (std::size_t j = 0; j < quarter; ++j) sub[r][j] = a[4 * j + static_cast<std::size_t>(r)];
      fft_recursive(sub[r], root_angle, total_m, stats, arena);
    }
    for (std::size_t k = 0; k < quarter; ++k) {
      cplx t[4];
      t[0] = sub[0][k];
      for (int r = 1; r < 4; ++r) {
        const std::size_t exp = static_cast<std::size_t>(r) * k;
        // Twiddles that are powers of i (exp*4 = 0 mod n) are free rotations.
        if ((exp * 4) % n == 0) {
          t[r] = rotate_i(sub[r][k], static_cast<int>(exp * 4 / n));
          if (stats) ++stats->trivial_mults;
        } else {
          t[r] = sub[r][k] * std::polar(1.0, root_angle * static_cast<double>(exp) *
                                                 (static_cast<double>(total_m) / static_cast<double>(n)));
          if (stats) ++stats->complex_mults;
        }
      }
      for (int q = 0; q < 4; ++q) {
        cplx acc{0.0, 0.0};
        for (int r = 0; r < 4; ++r) acc += rotate_i(t[r], q * r);
        a[static_cast<std::size_t>(q) * quarter + k] = acc;
        if (stats) stats->complex_adds += 3;
      }
    }
    return;
  }
  // n = 2 mod 4: one radix-2 split, radix-4 below.
  const std::size_t half = n / 2;
  std::span<cplx> even = frame.alloc<cplx>(half);
  std::span<cplx> odd = frame.alloc<cplx>(half);
  for (std::size_t j = 0; j < half; ++j) {
    even[j] = a[2 * j];
    odd[j] = a[2 * j + 1];
  }
  fft_recursive(even, root_angle, total_m, stats, arena);
  fft_recursive(odd, root_angle, total_m, stats, arena);
  for (std::size_t k = 0; k < half; ++k) {
    const std::size_t exp = k * (total_m / n);
    cplx t;
    if ((exp * 4) % total_m == 0) {
      t = rotate_i(odd[k], static_cast<int>(exp * 4 / total_m));
      if (stats) ++stats->trivial_mults;
    } else {
      t = odd[k] * std::polar(1.0, root_angle * static_cast<double>(k) *
                                       (static_cast<double>(total_m) / static_cast<double>(n)));
      if (stats) ++stats->complex_mults;
    }
    a[k] = even[k] + t;
    a[k + half] = even[k] - t;
    if (stats) stats->complex_adds += 2;
  }
}

}  // namespace

void radix4_forward(std::vector<cplx>& a, Radix4Stats* stats) {
  const std::size_t m = a.size();
  if (m == 0 || (m & (m - 1)) != 0) throw std::invalid_argument("radix4_forward: size must be a power of two");
  const double root_angle = 2.0 * std::numbers::pi / static_cast<double>(m);
  fft_recursive(std::span<cplx>(a), root_angle, m, stats, core::thread_scratch());
}

Radix4Stats radix4_dense_cost(std::size_t m) {
  std::vector<cplx> zeros(m, cplx{0.0, 0.0});
  Radix4Stats stats;
  radix4_forward(zeros, &stats);
  return stats;
}

Radix4Stats radix2_dense_cost(std::size_t m) {
  Radix4Stats stats;
  const int log_m = hemath::log2_exact(m);
  for (int s = 1; s <= log_m; ++s) {
    const std::size_t half = std::size_t{1} << (s - 1);
    const std::size_t stride = m >> s;
    const std::size_t blocks = m / (half << 1);
    for (std::size_t j = 0; j < half; ++j) {
      const std::size_t exp = j * stride;
      if ((exp * 4) % m == 0) {
        stats.trivial_mults += blocks;
      } else {
        stats.complex_mults += blocks;
      }
      stats.complex_adds += 2 * blocks;
    }
  }
  return stats;
}

}  // namespace flash::fft
