#include "hemath/pointwise.hpp"

#include "hemath/simd.hpp"

namespace flash::hemath {

namespace {

bool use_avx2(std::size_t n, u64 q) {
  // Barrett constants assume q < 2^62 and q not a power of two (the
  // quotient-estimate constant would need 65 bits); tiny arrays are not
  // worth the setup.
  return simd::level_at_least(simd::SimdLevel::kAvx2) && n >= 8 && q < (u64{1} << 62) &&
         (q & (q - 1)) != 0;
}

}  // namespace

void pointwise_mulmod(const u64* a, const u64* b, u64* c, std::size_t n, u64 q) {
  if (use_avx2(n, q)) {
    detail::pointwise_mulmod_avx2(a, b, c, n, q);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) c[i] = mul_mod(a[i], b[i], q);
}

void pointwise_mulmod_accumulate(u64* acc, const u64* a, const u64* b, std::size_t n, u64 q) {
  if (use_avx2(n, q)) {
    detail::pointwise_mulmod_accumulate_avx2(acc, a, b, n, q);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) acc[i] = add_mod(acc[i], mul_mod(a[i], b[i], q), q);
}

}  // namespace flash::hemath
