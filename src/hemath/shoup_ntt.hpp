// Harvey-style lazy-reduction NTT with Shoup multiplication.
//
// The reference NttTables reduces fully after every butterfly via 128-bit
// remainders. Hardware and optimized software (SEAL, HEXL) instead use
// Shoup's trick: each twiddle w is stored with a precomputed
// w' = floor(w * 2^64 / q), turning the modular product into two plain
// 64-bit multiplies and one subtraction with a result in [0, 2q), and keep
// coefficients lazily reduced below 2q across stages (Harvey 2014). This is
// the software analogue of the pipelined modular multipliers in the CHAM/F1
// baselines, and the microbench quantifies the gap against the reference.
#pragma once

#include <span>
#include <vector>

#include "core/scratch.hpp"
#include "hemath/modular.hpp"

namespace flash::hemath {

class ShoupNttTables {
 public:
  /// q must be an NTT prime for degree n with q < 2^61.
  ShoupNttTables(u64 q, std::size_t n);

  u64 modulus() const { return q_; }
  std::size_t degree() const { return n_; }

  /// In-place forward/inverse negacyclic NTT, same semantics as NttTables
  /// (fully reduced outputs; lazy arithmetic is internal).
  void forward(std::span<u64> a) const;
  void forward(std::vector<u64>& a) const { forward(std::span<u64>(a)); }
  void inverse(std::span<u64> a) const;
  void inverse(std::vector<u64>& a) const { inverse(std::span<u64>(a)); }

  /// Batched in-place transforms, same semantics as NttTables' batch entry
  /// points: SoA lane sweep per stage, bit-identical to the single loop.
  void forward_batch_into(std::span<u64* const> polys,
                          core::ScratchArena* arena = nullptr) const;
  void inverse_batch_into(std::span<u64* const> polys,
                          core::ScratchArena* arena = nullptr) const;

 private:
  /// x * w mod q with precomputed w_shoup, result in [0, 2q).
  static u64 mul_lazy(u64 x, u64 w, u64 w_shoup, u64 q) {
    const u64 hi = static_cast<u64>((static_cast<u128>(x) * w_shoup) >> 64);
    return x * w - hi * q;  // wraps mod 2^64; lands in [0, 2q)
  }

  u64 q_;
  u64 two_q_;
  std::size_t n_;
  int log_n_;
  u64 n_inv_;
  u64 n_inv_shoup_;
  std::vector<u64> psi_br_, psi_br_shoup_;
  std::vector<u64> psi_inv_br_, psi_inv_br_shoup_;
};

}  // namespace flash::hemath
