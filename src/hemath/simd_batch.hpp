// SoA lane-batched NTT kernels: the batch-of-polynomials transform layer.
//
// The per-polynomial NTT pays its twiddle loads and stage bookkeeping once
// per polynomial. When the serving layer hands us B same-ring polynomials
// (one per ciphertext in a batch), a structure-of-arrays sweep pays them
// once per *batch*: the buffer interleaves the polynomials lane-wise
// (coefficient j of lane l lives at buf[j*G + l]), so one butterfly at
// positions (j, j+t) is two contiguous G-lane vector loads and the twiddle
// is broadcast once per (stage, block) instead of once per polynomial.
//
// The kernels use Harvey's lazy-reduction form with Shoup companions
// (hemath/shoup_ntt) and reduce to canonical residues at the end. A
// negacyclic NTT output is a residue vector mod q, so canonical outputs are
// representation-independent: the SoA kernels are bit-identical to both the
// reference NttTables path and the ShoupNttTables path at every SIMD level,
// which is what the cross-level differential tier asserts.
//
// Lane-group dispatch (documented in ARCHITECTURE.md §11):
//   * kAvx512 → groups of 8 lanes; a remainder of 2..4 drops to the 4-lane
//     AVX2 kernel, a remainder of 5..7 runs a zero-padded 8-lane group;
//   * kAvx2   → groups of 4 lanes, remainder of 2..3 zero-padded;
//   * a remainder of exactly 1 (or kScalar) runs the scalar kernel with
//     G = 1 in place — no pack/unpack copy at all.
// Zero padding is safe: a zero lane stays ≡ 0 (mod q) through every lazy
// stage and the final reduction makes it canonical 0; padded lanes are
// never unpacked.
#pragma once

#include <cstddef>
#include <span>

#include "core/scratch.hpp"
#include "hemath/modular.hpp"
#include "hemath/simd.hpp"

namespace flash::hemath::simd_batch {

inline constexpr std::size_t kAvx2Lanes = 4;
inline constexpr std::size_t kAvx512Lanes = 8;

/// Lanes per SoA group the batch driver uses at `level`.
inline constexpr std::size_t soa_group_lanes(simd::SimdLevel level) {
  switch (level) {
    case simd::SimdLevel::kAvx512: return kAvx512Lanes;
    case simd::SimdLevel::kAvx2: return kAvx2Lanes;
    case simd::SimdLevel::kScalar: break;
  }
  return 1;
}

/// Twiddle view for one transform direction. `w`/`ws` point at the
/// bit-reversed twiddle table and its Shoup companions (psi_br or
/// psi_inv_br); n_inv/n_inv_shoup are used by the inverse only.
struct NttStageTables {
  const u64* w = nullptr;
  const u64* ws = nullptr;
  u64 n_inv = 0;
  u64 n_inv_shoup = 0;
  u64 q = 0;
};

/// x*w mod q with Shoup companion ws; result in [0, 2q) for any x.
inline u64 shoup_mul_lazy(u64 x, u64 w, u64 ws, u64 q) {
  const u64 hi = static_cast<u64>((static_cast<u128>(x) * ws) >> 64);
  return x * w - hi * q;  // wraps mod 2^64; lands in [0, 2q)
}

/// buf[j*g + l] = polys[l][j]; lanes l >= count are zero-filled.
void pack_soa(const u64* const* polys, std::size_t count, std::size_t n, std::size_t g, u64* buf);

/// polys[l][j] = buf[j*g + l] for l < count (padding lanes are dropped).
void unpack_soa(const u64* buf, std::size_t n, std::size_t g, u64* const* polys,
                std::size_t count);

/// Full forward negacyclic CT network over g SoA lanes; canonical outputs.
/// The scalar form is the differential reference for the vector kernels and
/// the in-place single-lane fallback (g = 1 makes buf a plain polynomial).
void ntt_forward_soa(u64* buf, std::size_t n, std::size_t g, const NttStageTables& tb);
/// Full inverse GS network (including the N^-1 scale) over g SoA lanes.
void ntt_inverse_soa(u64* buf, std::size_t n, std::size_t g, const NttStageTables& tb);

namespace detail {
/// Vector kernels; fixed lane counts (kAvx2Lanes / kAvx512Lanes). Callers
/// must have checked CPU support — these TUs are built with -mavx2/-mavx512.
void ntt_forward_soa_avx2(u64* buf, std::size_t n, const NttStageTables& tb);
void ntt_inverse_soa_avx2(u64* buf, std::size_t n, const NttStageTables& tb);
void ntt_forward_soa_avx512(u64* buf, std::size_t n, const NttStageTables& tb);
void ntt_inverse_soa_avx512(u64* buf, std::size_t n, const NttStageTables& tb);
}  // namespace detail

/// Batch drivers: group the polynomials per the dispatch matrix above,
/// pack → stage sweep → unpack through `arena` (nullptr → the calling
/// thread's arena; zero steady-state allocations). Each polys[i] is an
/// in-place transform of n coefficients. Requires q < 2^61 (the Harvey
/// bound the lazy kernels assume) — NttTables guards this before calling.
void ntt_forward_batch(std::span<u64* const> polys, std::size_t n, const NttStageTables& tb,
                       core::ScratchArena* arena = nullptr);
void ntt_inverse_batch(std::span<u64* const> polys, std::size_t n, const NttStageTables& tb,
                       core::ScratchArena* arena = nullptr);

}  // namespace flash::hemath::simd_batch
