#include "hemath/primes.hpp"

#include <stdexcept>

namespace flash::hemath {

namespace {
bool miller_rabin_witness(u64 n, u64 a, u64 d, int r) {
  u64 x = pow_mod(a % n, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < r; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}
}  // namespace

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  u64 d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64 (Sinclair 2011).
  for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!miller_rabin_witness(n, a, d, r)) return false;
  }
  return true;
}

u64 next_prime_congruent(u64 lo, u64 step) {
  if (step == 0) throw std::invalid_argument("next_prime_congruent: step == 0");
  u64 q = lo + ((lo % step == 1) ? 0 : (step + 1 - lo % step) % step);
  if (q < lo) throw std::overflow_error("next_prime_congruent: overflow");
  while (q < (u64{1} << 62)) {
    if (is_prime(q)) return q;
    q += step;
  }
  throw std::runtime_error("next_prime_congruent: no prime found below 2^62");
}

u64 find_ntt_prime(int bits, std::size_t n) {
  if (bits < 4 || bits > 61) throw std::invalid_argument("find_ntt_prime: bits out of range");
  if (n == 0 || (n & (n - 1)) != 0) throw std::invalid_argument("find_ntt_prime: n must be a power of two");
  const u64 step = 2 * static_cast<u64>(n);
  u64 q = next_prime_congruent(u64{1} << (bits - 1), step);
  if (q >= (u64{1} << bits)) throw std::runtime_error("find_ntt_prime: no prime at requested size");
  return q;
}

std::vector<u64> find_ntt_primes(int bits, std::size_t n, std::size_t count) {
  std::vector<u64> primes;
  u64 lo = u64{1} << (bits - 1);
  const u64 step = 2 * static_cast<u64>(n);
  while (primes.size() < count) {
    u64 q = next_prime_congruent(lo, step);
    if (q >= (u64{1} << bits)) throw std::runtime_error("find_ntt_primes: ran out of primes at size");
    primes.push_back(q);
    lo = q + 1;
  }
  return primes;
}

u64 primitive_root(u64 q) {
  if (!is_prime(q)) throw std::invalid_argument("primitive_root: q must be prime");
  // Factor q-1 by trial division (moduli here are NTT primes; q-1 has small
  // factors plus a large power of two, so this is fast in practice).
  u64 phi = q - 1;
  std::vector<u64> factors;
  u64 m = phi;
  for (u64 p = 2; p * p <= m; p += (p == 2 ? 1 : 2)) {
    if (m % p == 0) {
      factors.push_back(p);
      while (m % p == 0) m /= p;
    }
  }
  if (m > 1) factors.push_back(m);
  for (u64 g = 2; g < q; ++g) {
    bool ok = true;
    for (u64 p : factors) {
      if (pow_mod(g, phi / p, q) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
  throw std::runtime_error("primitive_root: not found");
}

u64 root_of_unity(u64 q, u64 m) {
  if ((q - 1) % m != 0) throw std::invalid_argument("root_of_unity: m does not divide q-1");
  u64 g = primitive_root(q);
  u64 w = pow_mod(g, (q - 1) / m, q);
  // w has order dividing m; the construction from a generator makes it exact.
  return w;
}

}  // namespace flash::hemath
