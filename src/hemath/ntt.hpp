// Negacyclic number-theoretic transform over Z_q[X]/(X^N+1).
//
// Implements the standard merged-ψ NTT: the forward transform is a
// Cooley-Tukey butterfly network with powers of the primitive 2N-th root ψ
// folded into the twiddle factors, producing the evaluation of the polynomial
// at the odd powers of ψ. The inverse is a Gentleman-Sande network with ψ^-1
// and a final scaling by N^-1. Pointwise multiplication in this domain equals
// negacyclic convolution, which is the PolyMul at the heart of BFV HConv.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/scratch.hpp"
#include "hemath/modular.hpp"

namespace flash::hemath {

/// Precomputed tables for a fixed (q, N) pair. Construction cost is O(N);
/// reuse tables across transforms of the same ring.
class NttTables {
 public:
  /// q must be prime with q ≡ 1 (mod 2N); N a power of two.
  NttTables(u64 q, std::size_t n);

  u64 modulus() const { return q_; }
  std::size_t degree() const { return n_; }
  u64 psi() const { return psi_; }

  /// In-place forward negacyclic NTT. Input in standard order, output in
  /// bit-reversed order (matching the paper's Fig. 3 DIT dataflow).
  void forward(std::span<u64> a) const;
  void forward(std::vector<u64>& a) const { forward(std::span<u64>(a)); }

  /// In-place inverse: accepts bit-reversed order, returns standard order.
  void inverse(std::span<u64> a) const;
  void inverse(std::vector<u64>& a) const { inverse(std::span<u64>(a)); }

  /// Batched in-place transforms over same-ring polynomials (each pointer is
  /// n coefficients): one SoA butterfly stage sweeps the whole batch, so
  /// twiddles are loaded once per batch instead of once per polynomial.
  /// Outputs are bit-identical to a loop of forward()/inverse() calls at
  /// every SIMD level (enforced by tests/test_batch_transforms.cpp).
  /// Scratch comes from `arena` (nullptr → the calling thread's arena);
  /// steady state performs zero heap allocations. Falls back to the
  /// per-polynomial loop when q >= 2^61 (outside the Harvey lazy bound).
  void forward_batch_into(std::span<u64* const> polys,
                          core::ScratchArena* arena = nullptr) const;
  void inverse_batch_into(std::span<u64* const> polys,
                          core::ScratchArena* arena = nullptr) const;

  /// Pointwise product c[i] = a[i]*b[i] mod q (vectorized, hemath/pointwise).
  /// The span form writes into caller-sized storage and never allocates.
  void pointwise(std::span<const u64> a, std::span<const u64> b, std::span<u64> c) const;
  void pointwise(const std::vector<u64>& a, const std::vector<u64>& b,
                 std::vector<u64>& c) const {
    c.resize(n_);
    pointwise(std::span<const u64>(a), std::span<const u64>(b), std::span<u64>(c));
  }

 private:
  u64 q_;
  std::size_t n_;
  int log_n_;
  u64 psi_;       // primitive 2N-th root of unity
  u64 n_inv_;     // N^-1 mod q
  std::vector<u64> psi_br_;      // ψ^bitrev(i), forward twiddles
  std::vector<u64> psi_inv_br_;  // ψ^-bitrev(i), inverse twiddles
  // Shoup companions for the batched lazy kernels (hemath/simd_batch);
  // populated only when q < 2^61 (shoup_ok_).
  bool shoup_ok_ = false;
  u64 n_inv_shoup_ = 0;
  std::vector<u64> psi_br_shoup_;
  std::vector<u64> psi_inv_br_shoup_;
};

/// Negacyclic polynomial multiplication via NTT: c = a*b mod (X^N+1, q).
/// Convenience wrapper; allocates. a and b must have size N.
std::vector<u64> negacyclic_multiply(const NttTables& tables,
                                     const std::vector<u64>& a,
                                     const std::vector<u64>& b);

/// Schoolbook negacyclic multiplication (O(N^2)); the correctness oracle.
std::vector<u64> negacyclic_multiply_schoolbook(u64 q, const std::vector<u64>& a,
                                                const std::vector<u64>& b);

}  // namespace flash::hemath
