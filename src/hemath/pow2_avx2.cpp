// 4-lane Z_{2^k} mask-reduce kernels (AVX2). Separate TU compiled with
// -mavx2; dispatch (hemath/simd.hpp) only calls in when the level grants it.
//
// AVX2 has no 64-bit mullo, so the low 64 bits of each lane product are
// assembled from 32-bit limb products: lo(a*b) = lo(a_lo*b_lo)
// + ((a_hi*b_lo + a_lo*b_hi) << 32). All three partials wrap exactly mod
// 2^64, so the lane result is bit-identical to the scalar `a * b` — the
// mask (or no mask at all, for the wrapping axpy kernels) is applied the
// same way the scalar path applies it.
#include "hemath/pow2.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace flash::hemath::detail {

namespace {

/// Low 64 bits of the lane-wise product — exact wrap mod 2^64.
inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i ahi = _mm256_srli_epi64(a, 32);
  const __m256i bhi = _mm256_srli_epi64(b, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(ahi, b), _mm256_mul_epu32(a, bhi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

inline __m256i load(const u64* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(u64* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

}  // namespace

void pointwise_mul_mask_avx2(const u64* a, const u64* b, u64* c, std::size_t n, u64 mask) {
  const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store(c + i, _mm256_and_si256(mullo64(load(a + i), load(b + i)), m));
  }
  for (; i < n; ++i) c[i] = (a[i] * b[i]) & mask;
}

void pointwise_mul_mask_accumulate_avx2(u64* acc, const u64* a, const u64* b, std::size_t n,
                                        u64 mask) {
  const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i sum = _mm256_add_epi64(load(acc + i), mullo64(load(a + i), load(b + i)));
    store(acc + i, _mm256_and_si256(sum, m));
  }
  for (; i < n; ++i) acc[i] = (acc[i] + a[i] * b[i]) & mask;
}

void axpy_wrap_avx2(u64* acc, const u64* x, u64 s, std::size_t n) {
  const __m256i sv = _mm256_set1_epi64x(static_cast<long long>(s));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store(acc + i, _mm256_add_epi64(load(acc + i), mullo64(load(x + i), sv)));
  }
  for (; i < n; ++i) acc[i] += s * x[i];
}

void axpy_wrap_sub_avx2(u64* acc, const u64* x, u64 s, std::size_t n) {
  const __m256i sv = _mm256_set1_epi64x(static_cast<long long>(s));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store(acc + i, _mm256_sub_epi64(load(acc + i), mullo64(load(x + i), sv)));
  }
  for (; i < n; ++i) acc[i] -= s * x[i];
}

}  // namespace flash::hemath::detail

#else  // !__AVX2__ — non-x86 build: unreachable stubs (dispatch never selects AVX2).

#include <cstdlib>

namespace flash::hemath::detail {
void pointwise_mul_mask_avx2(const u64*, const u64*, u64*, std::size_t, u64) { std::abort(); }
void pointwise_mul_mask_accumulate_avx2(u64*, const u64*, const u64*, std::size_t, u64) {
  std::abort();
}
void axpy_wrap_avx2(u64*, const u64*, u64, std::size_t) { std::abort(); }
void axpy_wrap_sub_avx2(u64*, const u64*, u64, std::size_t) { std::abort(); }
}  // namespace flash::hemath::detail

#endif
