#include "hemath/ntt.hpp"

#include <stdexcept>

#include "hemath/bitrev.hpp"
#include "hemath/pointwise.hpp"
#include "hemath/primes.hpp"
#include "hemath/simd_batch.hpp"

namespace flash::hemath {

NttTables::NttTables(u64 q, std::size_t n) : q_(q), n_(n) {
  if (n < 2 || (n & (n - 1)) != 0) throw std::invalid_argument("NttTables: n must be a power of two >= 2");
  if ((q - 1) % (2 * n) != 0) throw std::invalid_argument("NttTables: q != 1 mod 2N");
  log_n_ = log2_exact(n);
  psi_ = root_of_unity(q, 2 * static_cast<u64>(n));
  n_inv_ = inv_mod(static_cast<u64>(n), q);

  psi_br_.resize(n);
  psi_inv_br_.resize(n);
  const u64 psi_inv = inv_mod(psi_, q);
  u64 p = 1, pi = 1;
  std::vector<u64> pow(n), pow_inv(n);
  for (std::size_t i = 0; i < n; ++i) {
    pow[i] = p;
    pow_inv[i] = pi;
    p = mul_mod(p, psi_, q);
    pi = mul_mod(pi, psi_inv, q);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = bit_reverse(static_cast<std::uint32_t>(i), log_n_);
    psi_br_[i] = pow[r];
    psi_inv_br_[i] = pow_inv[r];
  }

  // Shoup companions for the batched SoA kernels. The lazy arithmetic needs
  // headroom (coefficients reach 4q), so only primes below 2^61 qualify;
  // the batch entry points fall back to the exact loop otherwise.
  shoup_ok_ = q < (u64{1} << 61);
  if (shoup_ok_) {
    const auto shoup = [q](u64 w) {
      return static_cast<u64>((static_cast<u128>(w) << 64) / q);
    };
    n_inv_shoup_ = shoup(n_inv_);
    psi_br_shoup_.resize(n);
    psi_inv_br_shoup_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      psi_br_shoup_[i] = shoup(psi_br_[i]);
      psi_inv_br_shoup_[i] = shoup(psi_inv_br_[i]);
    }
  }
}

void NttTables::forward(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("NttTables::forward: size mismatch");
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const u64 s = psi_br_[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = a[j];
        const u64 v = mul_mod(a[j + t], s, q_);
        a[j] = add_mod(u, v, q_);
        a[j + t] = sub_mod(u, v, q_);
      }
    }
  }
}

void NttTables::inverse(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("NttTables::inverse: size mismatch");
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const u64 s = psi_inv_br_[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = a[j];
        const u64 v = a[j + t];
        a[j] = add_mod(u, v, q_);
        a[j + t] = mul_mod(sub_mod(u, v, q_), s, q_);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (auto& x : a) x = mul_mod(x, n_inv_, q_);
}

void NttTables::forward_batch_into(std::span<u64* const> polys,
                                   core::ScratchArena* arena) const {
  if (!shoup_ok_) {
    for (u64* p : polys) forward(std::span<u64>(p, n_));
    return;
  }
  const simd_batch::NttStageTables tb{psi_br_.data(), psi_br_shoup_.data(), 0, 0, q_};
  simd_batch::ntt_forward_batch(polys, n_, tb, arena);
}

void NttTables::inverse_batch_into(std::span<u64* const> polys,
                                   core::ScratchArena* arena) const {
  if (!shoup_ok_) {
    for (u64* p : polys) inverse(std::span<u64>(p, n_));
    return;
  }
  const simd_batch::NttStageTables tb{psi_inv_br_.data(), psi_inv_br_shoup_.data(), n_inv_,
                                      n_inv_shoup_, q_};
  simd_batch::ntt_inverse_batch(polys, n_, tb, arena);
}

void NttTables::pointwise(std::span<const u64> a, std::span<const u64> b,
                          std::span<u64> c) const {
  if (a.size() != n_ || b.size() != n_ || c.size() != n_) {
    throw std::invalid_argument("NttTables::pointwise: size mismatch");
  }
  pointwise_mulmod(a.data(), b.data(), c.data(), n_, q_);
}

std::vector<u64> negacyclic_multiply(const NttTables& tables, const std::vector<u64>& a,
                                     const std::vector<u64>& b) {
  std::vector<u64> fa = a, fb = b, c;
  tables.forward(fa);
  tables.forward(fb);
  tables.pointwise(fa, fb, c);
  tables.inverse(c);
  return c;
}

std::vector<u64> negacyclic_multiply_schoolbook(u64 q, const std::vector<u64>& a,
                                                const std::vector<u64>& b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("negacyclic_multiply_schoolbook: size mismatch");
  std::vector<u64> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (b[j] == 0) continue;
      const u64 prod = mul_mod(a[i], b[j], q);
      const std::size_t k = i + j;
      if (k < n) {
        c[k] = add_mod(c[k], prod, q);
      } else {
        c[k - n] = sub_mod(c[k - n], prod, q);  // X^N = -1
      }
    }
  }
  return c;
}

}  // namespace flash::hemath
