#include "hemath/sampler.hpp"

#include <cmath>

namespace flash::hemath {

u64 Sampler::uniform_mod(u64 q) {
  std::uniform_int_distribution<u64> dist(0, q - 1);
  return dist(rng_);
}

Poly Sampler::uniform_poly(u64 q, std::size_t n) {
  Poly p(q, n);
  for (std::size_t i = 0; i < n; ++i) p[i] = uniform_mod(q);
  return p;
}

Poly Sampler::ternary_poly(u64 q, std::size_t n) {
  Poly p(q, n);
  std::uniform_int_distribution<int> dist(-1, 1);
  for (std::size_t i = 0; i < n; ++i) p[i] = from_signed(dist(rng_), q);
  return p;
}

Poly Sampler::cbd_poly(u64 q, std::size_t n, int eta) {
  Poly p(q, n);
  std::uniform_int_distribution<int> bit(0, 1);
  for (std::size_t i = 0; i < n; ++i) {
    int s = 0;
    for (int j = 0; j < eta; ++j) s += bit(rng_) - bit(rng_);
    p[i] = from_signed(s, q);
  }
  return p;
}

Poly Sampler::gaussian_poly(u64 q, std::size_t n, double sigma) {
  Poly p(q, n);
  std::normal_distribution<double> dist(0.0, sigma);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = from_signed(static_cast<i64>(std::llround(dist(rng_))), q);
  }
  return p;
}

CdtGaussianSampler::CdtGaussianSampler(double sigma, double tail_cut) : sigma_(sigma) {
  if (sigma <= 0.0 || tail_cut <= 0.0) {
    throw std::invalid_argument("CdtGaussianSampler: sigma and tail_cut must be positive");
  }
  const i64 tail = static_cast<i64>(std::ceil(sigma * tail_cut));
  // Half-distribution weights: zero carries half its mass in each sign, so a
  // uniform sign bit over the magnitude table reproduces the full Gaussian.
  std::vector<double> weights(static_cast<std::size_t>(tail) + 1);
  double total = 0.0;
  for (i64 k = 0; k <= tail; ++k) {
    const double rho = std::exp(-static_cast<double>(k) * static_cast<double>(k) /
                                (2.0 * sigma * sigma));
    weights[static_cast<std::size_t>(k)] = k == 0 ? rho / 2.0 : rho;
    total += weights[static_cast<std::size_t>(k)];
  }
  cdt_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    acc += weights[k];
    cdt_[k] = static_cast<u64>(acc / total * 9223372036854775808.0 /* 2^63 */);
  }
  cdt_.back() = u64{1} << 63;  // guard against rounding shortfall
}

i64 CdtGaussianSampler::sample(std::mt19937_64& rng) const {
  const u64 bits = rng();
  const u64 u = bits >> 1;              // 63 uniform bits
  const bool negative = (bits & 1) != 0;  // sign bit
  std::size_t lo = 0, hi = cdt_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdt_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const i64 magnitude = static_cast<i64>(lo);
  return negative ? -magnitude : magnitude;
}

Poly CdtGaussianSampler::sample_poly(u64 q, std::size_t n, std::mt19937_64& rng) const {
  Poly p(q, n);
  for (std::size_t i = 0; i < n; ++i) p[i] = from_signed(sample(rng), q);
  return p;
}

}  // namespace flash::hemath
