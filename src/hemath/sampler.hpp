// Randomness for the HE layer: uniform ring elements, ternary secrets, and
// centered-binomial "discrete Gaussian-like" error, all from a seedable PRNG
// so every test and benchmark is reproducible.
#pragma once

#include <cstdint>
#include <random>

#include "hemath/poly.hpp"

namespace flash::hemath {

class Sampler {
 public:
  explicit Sampler(std::uint64_t seed) : rng_(seed) {}

  /// Uniform element of Z_q.
  u64 uniform_mod(u64 q);

  /// Uniform polynomial in R_q.
  Poly uniform_poly(u64 q, std::size_t n);

  /// Ternary polynomial with coefficients in {-1, 0, 1} mod q (BFV secret key).
  Poly ternary_poly(u64 q, std::size_t n);

  /// Centered binomial error with parameter eta (variance eta/2); the standard
  /// RLWE error substitute for a discrete Gaussian with sigma ~ sqrt(eta/2).
  Poly cbd_poly(u64 q, std::size_t n, int eta);

  /// Rounded continuous Gaussian with standard deviation sigma.
  Poly gaussian_poly(u64 q, std::size_t n, double sigma);

  std::mt19937_64& rng() { return rng_; }

 private:
  std::mt19937_64 rng_;
};

/// Cumulative-distribution-table (CDT) discrete Gaussian sampler — the
/// table-based sampler production RLWE implementations use (constant-time
/// friendly, no floating point at sampling time). Probabilities are
/// tabulated once at construction up to a tail cut; each sample is one
/// uniform draw plus a table scan.
class CdtGaussianSampler {
 public:
  explicit CdtGaussianSampler(double sigma, double tail_cut = 9.0);

  double sigma() const { return sigma_; }
  i64 max_magnitude() const { return static_cast<i64>(cdt_.size()) - 1; }

  /// One sample from the centered discrete Gaussian.
  i64 sample(std::mt19937_64& rng) const;

  /// A polynomial of samples lifted mod q.
  Poly sample_poly(u64 q, std::size_t n, std::mt19937_64& rng) const;

 private:
  double sigma_;
  // cdt_[k] = P(|X| <= k) scaled to 2^63 (half-distribution table; the sign
  // is a separate uniform bit, with k = 0 weighted half).
  std::vector<u64> cdt_;
};

}  // namespace flash::hemath
