// Randomness for the HE layer: uniform ring elements, ternary secrets, and
// centered-binomial "discrete Gaussian-like" error, all from a seedable PRNG
// so every test and benchmark is reproducible.
//
// Concurrency model: a Sampler (and any bare std::mt19937_64) is single-
// thread state — sharing one across tasks is a data race AND destroys
// reproducibility, because interleaving reorders the draws. Parallel code
// must give every task its own stream via derive_stream_seed()/fork(): the
// derived seed depends only on (base seed, stream index), so a fixed seed
// yields the same per-task randomness no matter how many threads run or in
// what order tasks are scheduled.
#pragma once

#include <cstdint>
#include <random>

#include "hemath/poly.hpp"

namespace flash::hemath {

/// SplitMix64-style mix of a base seed and a stream index: statistically
/// independent, deterministic per (base, stream) pair. The standard way to
/// fan one seed out into per-task PRNG streams.
inline std::uint64_t derive_stream_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Sampler {
 public:
  explicit Sampler(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  /// Construction seed (not the evolving PRNG state); forks derive from it.
  std::uint64_t seed() const { return seed_; }

  /// Independent per-task sampler: deterministic in (this sampler's seed,
  /// stream), unaffected by how many draws this sampler has made.
  Sampler fork(std::uint64_t stream) const { return Sampler(derive_stream_seed(seed_, stream)); }

  /// Uniform element of Z_q.
  u64 uniform_mod(u64 q);

  /// Uniform polynomial in R_q.
  Poly uniform_poly(u64 q, std::size_t n);

  /// Ternary polynomial with coefficients in {-1, 0, 1} mod q (BFV secret key).
  Poly ternary_poly(u64 q, std::size_t n);

  /// Centered binomial error with parameter eta (variance eta/2); the standard
  /// RLWE error substitute for a discrete Gaussian with sigma ~ sqrt(eta/2).
  Poly cbd_poly(u64 q, std::size_t n, int eta);

  /// Rounded continuous Gaussian with standard deviation sigma.
  Poly gaussian_poly(u64 q, std::size_t n, double sigma);

  std::mt19937_64& rng() { return rng_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 rng_;
};

/// Cumulative-distribution-table (CDT) discrete Gaussian sampler — the
/// table-based sampler production RLWE implementations use (constant-time
/// friendly, no floating point at sampling time). Probabilities are
/// tabulated once at construction up to a tail cut; each sample is one
/// uniform draw plus a table scan.
///
/// The object itself is immutable after construction and safe to share
/// across threads; all mutable state lives in the std::mt19937_64 the
/// caller passes in, which must be a per-thread / per-task stream (seed it
/// with derive_stream_seed) — handing several threads one shared rng is a
/// data race on the generator state.
class CdtGaussianSampler {
 public:
  explicit CdtGaussianSampler(double sigma, double tail_cut = 9.0);

  double sigma() const { return sigma_; }
  i64 max_magnitude() const { return static_cast<i64>(cdt_.size()) - 1; }

  /// One sample from the centered discrete Gaussian.
  i64 sample(std::mt19937_64& rng) const;

  /// A polynomial of samples lifted mod q.
  Poly sample_poly(u64 q, std::size_t n, std::mt19937_64& rng) const;

 private:
  double sigma_;
  // cdt_[k] = P(|X| <= k) scaled to 2^63 (half-distribution table; the sign
  // is a separate uniform bit, with k = 0 weighted half).
  std::vector<u64> cdt_;
};

}  // namespace flash::hemath
