// Modular arithmetic over 64-bit moduli.
//
// Everything the HE stack needs to compute in Z_q: 128-bit-intermediate
// multiplication, exponentiation, inverses, and two precomputed reducers
// (Barrett and Montgomery) that model the hardware-relevant reduction
// strategies discussed in the FLASH paper (Table II cites both).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace flash::hemath {

using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i64 = std::int64_t;

/// (a + b) mod q, assuming a, b < q < 2^63.
inline u64 add_mod(u64 a, u64 b, u64 q) {
  u64 s = a + b;
  return s >= q ? s - q : s;
}

/// (a - b) mod q, assuming a, b < q.
inline u64 sub_mod(u64 a, u64 b, u64 q) { return a >= b ? a - b : a + q - b; }

/// (-a) mod q, assuming a < q.
inline u64 neg_mod(u64 a, u64 q) { return a == 0 ? 0 : q - a; }

/// (a * b) mod q via a 128-bit intermediate. Works for any q < 2^64.
/// Power-of-two moduli take the mask fast path: u64 multiplication wraps
/// exactly mod 2^64 and 2^k | 2^64, so (a * b) & (q - 1) is the same
/// residue the 128-bit remainder produces — without the soft division
/// (bit-identity pinned by test_modular's MulModPow2FastPathBitIdentity).
inline u64 mul_mod(u64 a, u64 b, u64 q) {
  if ((q & (q - 1)) == 0) return (a * b) & (q - 1);
  return static_cast<u64>((static_cast<u128>(a) * b) % q);
}

/// a^e mod q by square-and-multiply.
u64 pow_mod(u64 a, u64 e, u64 q);

/// Multiplicative inverse of a mod q (q need not be prime; requires gcd(a,q)=1).
/// Throws std::invalid_argument if the inverse does not exist.
u64 inv_mod(u64 a, u64 q);

/// Signed representative of a mod q in (-q/2, q/2].
i64 to_signed(u64 a, u64 q);

/// Map a signed value back into [0, q).
u64 from_signed(i64 a, u64 q);

/// Barrett reduction with a precomputed 128-bit reciprocal.
///
/// Classic two-multiplication Barrett for q < 2^62: reduces any x < q^2.
/// This is the reduction strategy FLASH's Table II attributes to F1-style
/// modular multipliers.
class BarrettReducer {
 public:
  explicit BarrettReducer(u64 modulus);

  u64 modulus() const { return q_; }

  /// x mod q for x < 2^64 (single word).
  u64 reduce(u64 x) const {
    // mu_hi_:mu_lo_ approximates 2^128 / q; quotient estimate via the high
    // 64 bits of x * (2^64 * mu_hi + mu_lo) >> 64 collapses to:
    u128 prod = static_cast<u128>(x) * mu_hi_ + ((static_cast<u128>(x) * mu_lo_) >> 64);
    u64 quot = static_cast<u64>(prod >> 64);
    u64 r = x - quot * q_;
    return r >= q_ ? r - q_ : r;
  }

  /// (a * b) mod q using Barrett on the 128-bit product.
  u64 mul(u64 a, u64 b) const;

 private:
  u64 q_ = 0;
  u64 mu_hi_ = 0;  // floor(2^128 / q) split into two words
  u64 mu_lo_ = 0;
};

/// Montgomery form arithmetic for odd moduli q < 2^63.
///
/// Models the alternative hardware reduction path (Montgomery 1985) cited by
/// the paper. All values passed to mul() must already be in Montgomery form.
class MontgomeryReducer {
 public:
  explicit MontgomeryReducer(u64 modulus);

  u64 modulus() const { return q_; }

  /// Map a (plain) into Montgomery form: a * 2^64 mod q.
  u64 to_mont(u64 a) const { return mul(a, r2_); }

  /// Map out of Montgomery form: a_mont * 2^-64 mod q.
  u64 from_mont(u64 a) const { return reduce(static_cast<u128>(a)); }

  /// Montgomery product: a*b*2^-64 mod q (both operands in Montgomery form).
  u64 mul(u64 a, u64 b) const { return reduce(static_cast<u128>(a) * b); }

 private:
  u64 reduce(u128 t) const {
    u64 m = static_cast<u64>(t) * qinv_neg_;
    u128 tt = t + static_cast<u128>(m) * q_;
    u64 r = static_cast<u64>(tt >> 64);
    return r >= q_ ? r - q_ : r;
  }

  u64 q_ = 0;
  u64 qinv_neg_ = 0;  // -q^{-1} mod 2^64
  u64 r2_ = 0;        // 2^128 mod q
};

}  // namespace flash::hemath
