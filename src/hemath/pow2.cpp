#include "hemath/pow2.hpp"

#include <algorithm>
#include <stdexcept>

#include "hemath/simd.hpp"
#include "hemath/simd_batch.hpp"

namespace flash::hemath {

namespace {

/// Below this degree the linear product runs as a vectorized schoolbook
/// (one axpy row per nonzero multiplier coefficient); above it, Karatsuba
/// splits. 32 balances the three-way recursion overhead against the O(n^2)
/// base on the sizes the engine sees (256..4096).
constexpr std::size_t kKaratsubaBase = 32;

bool use_avx512(std::size_t n) {
  return simd::level_at_least(simd::SimdLevel::kAvx512) && n >= 16;
}

bool use_avx2(std::size_t n) { return simd::level_at_least(simd::SimdLevel::kAvx2) && n >= 8; }

/// out[0..2n-2] += a * b (linear convolution, wrapping mod 2^64). Skips
/// zero rows of b — the sparse weight fast path.
void schoolbook_linear_acc(const u64* a, const u64* b, u64* out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    if (b[j] == 0) continue;
    axpy_wrap(out + j, a, b[j], n);
  }
}

/// out[0..2n-2] = a * b (linear, wrapping mod 2^64). Karatsuba: all three
/// half-products are exact mod 2^64, so the recombination subtractions wrap
/// exactly too — no carries are ever lost.
void karatsuba_linear(const u64* a, const u64* b, u64* out, std::size_t n,
                      core::ScratchArena& arena) {
  if (n <= kKaratsubaBase || (n & 1) != 0) {
    std::fill(out, out + 2 * n - 1, u64{0});
    schoolbook_linear_acc(a, b, out, n);
    return;
  }
  const std::size_t h = n / 2;
  core::ScratchFrame frame(arena);
  std::span<u64> z0 = frame.alloc<u64>(2 * h - 1);
  std::span<u64> z2 = frame.alloc<u64>(2 * h - 1);
  std::span<u64> z1 = frame.alloc<u64>(2 * h - 1);
  std::span<u64> sa = frame.alloc<u64>(h);
  std::span<u64> sb = frame.alloc<u64>(h);
  for (std::size_t i = 0; i < h; ++i) {
    sa[i] = a[i] + a[h + i];
    sb[i] = b[i] + b[h + i];
  }
  karatsuba_linear(a, b, z0.data(), h, arena);
  karatsuba_linear(a + h, b + h, z2.data(), h, arena);
  karatsuba_linear(sa.data(), sb.data(), z1.data(), h, arena);
  std::fill(out, out + 2 * n - 1, u64{0});
  for (std::size_t i = 0; i < 2 * h - 1; ++i) {
    out[i] += z0[i];
    out[n + i] += z2[i];
    out[h + i] += z1[i] - z0[i] - z2[i];
  }
}

}  // namespace

Pow2Ring::Pow2Ring(int k_in) : k(k_in) {
  if (!valid_k(k_in)) throw std::invalid_argument("Pow2Ring: k must be in [1, 64]");
  mask = k == 64 ? ~u64{0} : (u64{1} << k) - 1;
}

void pointwise_mulmod_pow2(const u64* a, const u64* b, u64* c, std::size_t n, Pow2Ring ring) {
  if (use_avx512(n)) {
    detail::pointwise_mul_mask_avx512(a, b, c, n, ring.mask);
    return;
  }
  if (use_avx2(n)) {
    detail::pointwise_mul_mask_avx2(a, b, c, n, ring.mask);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) c[i] = (a[i] * b[i]) & ring.mask;
}

void pointwise_mulmod_pow2_accumulate(u64* acc, const u64* a, const u64* b, std::size_t n,
                                      Pow2Ring ring) {
  if (use_avx512(n)) {
    detail::pointwise_mul_mask_accumulate_avx512(acc, a, b, n, ring.mask);
    return;
  }
  if (use_avx2(n)) {
    detail::pointwise_mul_mask_accumulate_avx2(acc, a, b, n, ring.mask);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) acc[i] = (acc[i] + a[i] * b[i]) & ring.mask;
}

void pointwise_add_pow2(u64* acc, const u64* x, std::size_t n, Pow2Ring ring) {
  for (std::size_t i = 0; i < n; ++i) acc[i] = (acc[i] + x[i]) & ring.mask;
}

void axpy_wrap(u64* acc, const u64* x, u64 s, std::size_t n) {
  if (use_avx512(n)) {
    detail::axpy_wrap_avx512(acc, x, s, n);
    return;
  }
  if (use_avx2(n)) {
    detail::axpy_wrap_avx2(acc, x, s, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) acc[i] += s * x[i];
}

void axpy_wrap_sub(u64* acc, const u64* x, u64 s, std::size_t n) {
  if (use_avx512(n)) {
    detail::axpy_wrap_sub_avx512(acc, x, s, n);
    return;
  }
  if (use_avx2(n)) {
    detail::axpy_wrap_sub_avx2(acc, x, s, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) acc[i] -= s * x[i];
}

void negacyclic_mul_pow2_schoolbook(const u64* a, const u64* b, u64* out, std::size_t n,
                                    Pow2Ring ring) {
  std::fill(out, out + n, u64{0});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 p = a[i] * b[j];  // wraps mod 2^64 — exact mod 2^k
      const std::size_t idx = i + j;
      if (idx < n) {
        out[idx] += p;
      } else {
        out[idx - n] -= p;  // X^n = -1
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) out[i] &= ring.mask;
}

void negacyclic_mul_pow2_into(const u64* a, const u64* b, u64* out, std::size_t n, Pow2Ring ring,
                              core::ScratchArena* arena) {
  if (n == 0) return;
  if (n == 1) {
    out[0] = ring.mul(a[0], b[0]);
    return;
  }
  core::ScratchArena& ar = core::scratch_or_thread(arena);
  core::ScratchFrame frame(ar);
  std::span<u64> lin = frame.alloc<u64>(2 * n - 1);
  karatsuba_linear(a, b, lin.data(), n, ar);
  for (std::size_t i = 0; i + 1 < n; ++i) out[i] = (lin[i] - lin[i + n]) & ring.mask;
  out[n - 1] = lin[n - 1] & ring.mask;
}

std::vector<u64> negacyclic_mul_pow2(const std::vector<u64>& a, const std::vector<u64>& b,
                                     Pow2Ring ring) {
  if (a.size() != b.size()) throw std::invalid_argument("negacyclic_mul_pow2: size mismatch");
  std::vector<u64> out(a.size());
  negacyclic_mul_pow2_into(a.data(), b.data(), out.data(), a.size(), ring);
  return out;
}

void negacyclic_mul_pow2_batch_into(std::span<const u64* const> cts, const u64* w,
                                    std::span<u64* const> outs, std::size_t n, Pow2Ring ring,
                                    core::ScratchArena* arena) {
  if (cts.size() != outs.size()) {
    throw std::invalid_argument("negacyclic_mul_pow2_batch_into: lane count mismatch");
  }
  const std::size_t g = cts.size();
  if (g == 0 || n == 0) return;
  core::ScratchArena& ar = core::scratch_or_thread(arena);

  std::size_t nnz = 0;
  for (std::size_t j = 0; j < n; ++j) nnz += (w[j] != 0) ? 1 : 0;

  // Dense weights: Karatsuba per lane beats the O(nnz * n) sweep.
  if (static_cast<std::uint64_t>(nnz) * n >= pow2_mult_count(n) || g == 1) {
    for (std::size_t l = 0; l < g; ++l) {
      negacyclic_mul_pow2_into(cts[l], w, outs[l], n, ring, &ar);
    }
    return;
  }

  // Sparse weights: one SoA sweep over all lanes. The SoA layout
  // (coefficient-major, buf[i*g + l]) makes each negacyclic shift-accumulate
  // for a nonzero w[j] two *contiguous* wrapping axpy runs — no per-lane
  // kernel width needed, so any lane count vectorizes at any level.
  core::ScratchFrame frame(ar);
  std::span<u64> ct_soa = frame.alloc<u64>(n * g);
  std::span<u64> acc = frame.alloc<u64>(n * g);
  simd_batch::pack_soa(cts.data(), g, n, g, ct_soa.data());
  std::fill(acc.begin(), acc.end(), u64{0});
  for (std::size_t j = 0; j < n; ++j) {
    const u64 s = w[j];
    if (s == 0) continue;
    axpy_wrap(acc.data() + j * g, ct_soa.data(), s, (n - j) * g);
    if (j != 0) axpy_wrap_sub(acc.data(), ct_soa.data() + (n - j) * g, s, j * g);
  }
  for (u64& v : acc) v &= ring.mask;
  simd_batch::unpack_soa(acc.data(), n, g, outs.data(), g);
}

std::uint64_t pow2_mult_count(std::size_t n) {
  if (n == 0) return 0;
  if (n <= kKaratsubaBase || (n & 1) != 0) {
    return static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
  }
  return 3 * pow2_mult_count(n / 2);
}

}  // namespace flash::hemath
