// AVX2 Barrett pointwise mulmod. Compiled with -mavx2 (see CMakeLists);
// never called unless the CPU reports AVX2 (hemath/simd.hpp dispatch).
//
// Exactness: with s = bitlen(q) (q not a power of two, q < 2^62) and
// v = floor(2^(64+s-1) / q) < 2^64, the estimate
//   quot = floor(t * v / 2^64),  t = floor(x / 2^(s-1)),
// never overshoots floor(x/q) and undershoots it by at most 2 for x < q^2,
// so r = x - quot*q lies in [0, 3q) and two conditional subtracts land the
// canonical residue — the same value the scalar (u128 remainder) path
// produces, hence bit-identical results. One vector mulhi per reduction
// instead of a full 128x128 product keeps this ahead of the scalar divq.
// All limb arithmetic below is exact 64x64->128 schoolbook.
#include "hemath/pointwise.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace flash::hemath::detail {

namespace {

struct U64x4 {
  __m256i v;
};

inline __m256i xor_sign(__m256i a) { return _mm256_xor_si256(a, _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL))); }

/// Unsigned a < b per 64-bit lane (all-ones mask when true).
inline __m256i ltu64(__m256i a, __m256i b) { return _mm256_cmpgt_epi64(xor_sign(b), xor_sign(a)); }

/// Low 64 bits of a*b per lane.
inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i mid = _mm256_add_epi64(lh, hl);
  return _mm256_add_epi64(ll, _mm256_slli_epi64(mid, 32));
}

/// Full 128-bit product per lane: returns lo, writes hi.
inline __m256i mul64wide(__m256i a, __m256i b, __m256i* hi_out) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i t1 = _mm256_add_epi64(ll, _mm256_slli_epi64(lh, 32));
  const __m256i c1 = ltu64(t1, ll);  // all-ones == carry
  const __m256i t2 = _mm256_add_epi64(t1, _mm256_slli_epi64(hl, 32));
  const __m256i c2 = ltu64(t2, t1);
  __m256i hi = _mm256_add_epi64(hh, _mm256_add_epi64(_mm256_srli_epi64(lh, 32), _mm256_srli_epi64(hl, 32)));
  // Subtracting an all-ones mask adds one.
  hi = _mm256_sub_epi64(hi, c1);
  hi = _mm256_sub_epi64(hi, c2);
  *hi_out = hi;
  return t2;
}

/// High 64 bits of a*b per lane.
inline __m256i mulhi64(__m256i a, __m256i b) {
  __m256i hi;
  (void)mul64wide(a, b, &hi);
  return hi;
}

struct Barrett {
  __m256i q;
  __m256i v;         // floor(2^(64+s-1) / q), s = bitlen(q)
  __m128i shift_lo;  // s - 1
  __m128i shift_hi;  // 64 - (s - 1)
};

inline Barrett make_barrett(u64 q) {
  int s = 0;
  for (u64 t = q; t != 0; t >>= 1) ++s;
  Barrett b;
  b.q = _mm256_set1_epi64x(static_cast<long long>(q));
  b.v = _mm256_set1_epi64x(static_cast<long long>(static_cast<u64>((u128{1} << (64 + s - 1)) / q)));
  b.shift_lo = _mm_cvtsi32_si128(s - 1);
  b.shift_hi = _mm_cvtsi32_si128(64 - (s - 1));
  return b;
}

/// (a*b) mod q per lane; a, b < q < 2^62, q not a power of two.
inline __m256i mulmod4(__m256i a, __m256i b, const Barrett& bar) {
  __m256i xh;
  const __m256i xl = mul64wide(a, b, &xh);
  // t = x >> (s-1) fits a lane: x < q^2 < 2^(2s) so t < 2^(s+1) <= 2^63.
  const __m256i t = _mm256_or_si256(_mm256_srl_epi64(xl, bar.shift_lo),
                                    _mm256_sll_epi64(xh, bar.shift_hi));
  // quot <= floor(x/q) <= quot + 2, so r = x - quot*q in [0, 3q) and 3q < 2^64.
  const __m256i quot = mulhi64(t, bar.v);
  __m256i r = _mm256_sub_epi64(xl, mullo64(quot, bar.q));
  r = _mm256_sub_epi64(r, _mm256_andnot_si256(ltu64(r, bar.q), bar.q));
  r = _mm256_sub_epi64(r, _mm256_andnot_si256(ltu64(r, bar.q), bar.q));
  return r;
}

/// (a + b) mod q per lane; a, b < q < 2^63.
inline __m256i addmod4(__m256i a, __m256i b, __m256i q) {
  const __m256i s = _mm256_add_epi64(a, b);
  return _mm256_sub_epi64(s, _mm256_andnot_si256(ltu64(s, q), q));
}

}  // namespace

void pointwise_mulmod_avx2(const u64* a, const u64* b, u64* c, std::size_t n, u64 q) {
  const Barrett bar = make_barrett(q);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i), mulmod4(va, vb, bar));
  }
  for (; i < n; ++i) c[i] = mul_mod(a[i], b[i], q);
}

void pointwise_mulmod_accumulate_avx2(u64* acc, const u64* a, const u64* b, std::size_t n, u64 q) {
  const Barrett bar = make_barrett(q);
  const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vacc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i prod = mulmod4(va, vb, bar);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), addmod4(vacc, prod, vq));
  }
  for (; i < n; ++i) acc[i] = add_mod(acc[i], mul_mod(a[i], b[i], q), q);
}

}  // namespace flash::hemath::detail

#else  // !__AVX2__ — non-x86 build: unreachable stubs (dispatch never selects AVX2).

#include <cstdlib>

namespace flash::hemath::detail {
void pointwise_mulmod_avx2(const u64*, const u64*, u64*, std::size_t, u64) { std::abort(); }
void pointwise_mulmod_accumulate_avx2(u64*, const u64*, const u64*, std::size_t, u64) { std::abort(); }
}  // namespace flash::hemath::detail

#endif
