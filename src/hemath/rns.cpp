#include "hemath/rns.hpp"

#include <numeric>
#include <stdexcept>

namespace flash::hemath {

RnsBasis::RnsBasis(std::vector<u64> moduli) : moduli_(std::move(moduli)) {
  if (moduli_.empty()) throw std::invalid_argument("RnsBasis: empty basis");
  for (std::size_t i = 0; i < moduli_.size(); ++i) {
    for (std::size_t j = i + 1; j < moduli_.size(); ++j) {
      if (std::gcd(moduli_[i], moduli_[j]) != 1) {
        throw std::invalid_argument("RnsBasis: moduli not coprime");
      }
    }
  }
  for (u64 q : moduli_) {
    u128 next = big_q_ * q;
    if (next / q != big_q_) throw std::overflow_error("RnsBasis: total modulus exceeds 128 bits");
    big_q_ = next;
  }
  punctured_inv_.resize(moduli_.size());
  for (std::size_t i = 0; i < moduli_.size(); ++i) {
    const u64 qi = moduli_[i];
    u64 punct = 1;
    for (std::size_t j = 0; j < moduli_.size(); ++j) {
      if (j != i) punct = mul_mod(punct, moduli_[j] % qi, qi);
    }
    punctured_inv_[i] = inv_mod(punct, qi);
  }
}

std::vector<u64> RnsBasis::decompose(u128 x) const {
  std::vector<u64> out(moduli_.size());
  for (std::size_t i = 0; i < moduli_.size(); ++i) out[i] = static_cast<u64>(x % moduli_[i]);
  return out;
}

namespace {
/// (a * b) mod m for 128-bit a, m and 64-bit b, via shift-and-add so the
/// intermediate never exceeds 128 bits (requires m < 2^127).
u128 mul_mod_128(u128 a, u64 b, u128 m) {
  a %= m;
  u128 acc = 0;
  while (b != 0) {
    if (b & 1) {
      acc += a;
      if (acc >= m) acc -= m;
    }
    a <<= 1;
    if (a >= m) a -= m;
    b >>= 1;
  }
  return acc;
}
}  // namespace

u128 RnsBasis::compose(const std::vector<u64>& residues) const {
  if (residues.size() != moduli_.size()) throw std::invalid_argument("RnsBasis::compose: size mismatch");
  u128 acc = 0;
  for (std::size_t i = 0; i < moduli_.size(); ++i) {
    const u64 qi = moduli_[i];
    const u128 punct = big_q_ / qi;
    const u64 term = mul_mod(residues[i] % qi, punctured_inv_[i], qi);
    acc = (acc + mul_mod_128(punct, term, big_q_)) % big_q_;
  }
  return acc;
}

}  // namespace flash::hemath
