// Polynomial arithmetic over an RNS (multi-limb) ciphertext modulus.
//
// Production HE deployments (Cheetah's q ~ 2^109, F1/ARK's RNS limbs) hold
// ring elements as per-prime residue vectors and run one NTT per limb. The
// single-word BFV above suffices for FLASH's experiments; this module
// provides the wide-modulus substrate so the cost models' limb counts
// correspond to real arithmetic, and demonstrates >64-bit moduli end to end.
#pragma once

#include <memory>
#include <vector>

#include "hemath/ntt.hpp"
#include "hemath/rns.hpp"

namespace flash::hemath {

/// Shared precomputation for a fixed (basis, N) pair.
class RnsContext {
 public:
  RnsContext(std::vector<u64> moduli, std::size_t n);

  const RnsBasis& basis() const { return basis_; }
  std::size_t degree() const { return n_; }
  std::size_t limbs() const { return basis_.size(); }
  const NttTables& ntt(std::size_t limb) const { return ntt_[limb]; }
  u128 modulus() const { return basis_.total_modulus(); }

 private:
  RnsBasis basis_;
  std::size_t n_;
  std::vector<NttTables> ntt_;
};

/// An element of Z_Q[X]/(X^N+1) with Q = prod(q_i), stored limb-wise.
class RnsPoly {
 public:
  explicit RnsPoly(const RnsContext& ctx);

  /// Lift signed coefficients into every limb.
  static RnsPoly from_signed(const RnsContext& ctx, const std::vector<i64>& coeffs);

  const RnsContext& context() const { return *ctx_; }
  const std::vector<u64>& limb(std::size_t i) const { return limbs_[i]; }
  std::vector<u64>& mutable_limb(std::size_t i) { return limbs_[i]; }

  /// CRT-composed coefficient value in [0, Q).
  u128 coeff(std::size_t i) const;
  /// Centered representative in (-Q/2, Q/2], returned as (negative?, |value|).
  std::pair<bool, u128> coeff_centered(std::size_t i) const;

  RnsPoly& add_inplace(const RnsPoly& other);
  RnsPoly& sub_inplace(const RnsPoly& other);
  RnsPoly& negate_inplace();

  bool operator==(const RnsPoly& other) const { return limbs_ == other.limbs_; }

 private:
  const RnsContext* ctx_;
  std::vector<std::vector<u64>> limbs_;
};

/// Negacyclic product via one NTT per limb.
RnsPoly multiply(const RnsPoly& a, const RnsPoly& b);

}  // namespace flash::hemath
