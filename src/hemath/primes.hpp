// Prime generation and primitive-root search for NTT-friendly moduli.
//
// The negacyclic NTT over Z_q[X]/(X^N+1) requires a prime q ≡ 1 (mod 2N) so
// that a primitive 2N-th root of unity ψ exists. These helpers find such
// primes at a requested bit size and compute the roots.
#pragma once

#include <cstdint>
#include <vector>

#include "hemath/modular.hpp"

namespace flash::hemath {

/// Deterministic Miller-Rabin for 64-bit integers (fixed witness set that is
/// provably sufficient below 2^64).
bool is_prime(u64 n);

/// Smallest prime >= lo with prime ≡ 1 (mod step). Throws if none below 2^62.
u64 next_prime_congruent(u64 lo, u64 step);

/// Find a prime of exactly `bits` bits with q ≡ 1 (mod 2N), suitable as an
/// NTT modulus for ring degree N (N a power of two).
u64 find_ntt_prime(int bits, std::size_t n);

/// Find several distinct NTT primes (for RNS bases).
std::vector<u64> find_ntt_primes(int bits, std::size_t n, std::size_t count);

/// Smallest generator of Z_q^* for prime q.
u64 primitive_root(u64 q);

/// A primitive m-th root of unity mod prime q (requires m | q-1).
u64 root_of_unity(u64 q, u64 m);

}  // namespace flash::hemath
