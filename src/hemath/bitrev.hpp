// Bit-reversal permutation utilities shared by NTT and FFT kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace flash::hemath {

/// Reverse the low `bits` bits of x.
inline std::uint32_t bit_reverse(std::uint32_t x, int bits) {
  std::uint32_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

/// log2 of a power of two.
int log2_exact(std::size_t n);

/// Precomputed bit-reversal table for length n (power of two).
std::vector<std::uint32_t> bit_reverse_table(std::size_t n);

/// In-place bit-reversal permutation of a sequence.
template <typename T>
void bit_reverse_permute(std::span<T> a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

template <typename T>
void bit_reverse_permute(std::vector<T>& a) {
  bit_reverse_permute(std::span<T>(a));
}

}  // namespace flash::hemath
