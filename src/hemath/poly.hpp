// Polynomials over Z_q[X]/(X^N+1), the plaintext/ciphertext element type of
// the BFV layer. Coefficients are stored in standard (power-of-X) order.
#pragma once

#include <cstdint>
#include <vector>

#include "hemath/modular.hpp"
#include "hemath/ntt.hpp"

namespace flash::hemath {

/// A dense element of R_q = Z_q[X]/(X^N+1).
class Poly {
 public:
  Poly() = default;
  Poly(u64 q, std::size_t n) : q_(q), coeffs_(n, 0) {}
  Poly(u64 q, std::vector<u64> coeffs) : q_(q), coeffs_(std::move(coeffs)) {}

  u64 modulus() const { return q_; }
  std::size_t degree() const { return coeffs_.size(); }
  const std::vector<u64>& coeffs() const { return coeffs_; }
  std::vector<u64>& coeffs() { return coeffs_; }
  u64 operator[](std::size_t i) const { return coeffs_[i]; }
  u64& operator[](std::size_t i) { return coeffs_[i]; }

  bool operator==(const Poly& other) const = default;

  /// Number of nonzero coefficients.
  std::size_t weight() const;
  /// 1 - weight/N.
  double sparsity() const;

  Poly& add_inplace(const Poly& other);
  Poly& sub_inplace(const Poly& other);
  Poly& negate_inplace();
  /// Multiply every coefficient by scalar c mod q.
  Poly& scale_inplace(u64 c);

  friend Poly operator+(Poly a, const Poly& b) { return a.add_inplace(b); }
  friend Poly operator-(Poly a, const Poly& b) { return a.sub_inplace(b); }

 private:
  u64 q_ = 0;
  std::vector<u64> coeffs_;
};

/// Negacyclic product via the supplied NTT tables (must match q, N).
Poly multiply(const NttTables& tables, const Poly& a, const Poly& b);

/// O(N^2) oracle product.
Poly multiply_schoolbook(const Poly& a, const Poly& b);

/// Lift a polynomial's coefficients from modulus q_from to q_to by centered
/// (signed) representative — used when moving plaintexts into the ciphertext
/// ring and when the protocol reshares values.
Poly mod_switch(const Poly& a, u64 q_to);

}  // namespace flash::hemath
