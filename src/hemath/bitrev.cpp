#include "hemath/bitrev.hpp"

#include <stdexcept>

namespace flash::hemath {

int log2_exact(std::size_t n) {
  if (n == 0 || (n & (n - 1)) != 0) throw std::invalid_argument("log2_exact: not a power of two");
  int l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

std::vector<std::uint32_t> bit_reverse_table(std::size_t n) {
  const int bits = log2_exact(n);
  std::vector<std::uint32_t> table(n);
  for (std::size_t i = 0; i < n; ++i) {
    table[i] = bit_reverse(static_cast<std::uint32_t>(i), bits);
  }
  return table;
}

}  // namespace flash::hemath
