// 8-lane SoA NTT butterfly kernels (AVX-512 F+DQ). Separate TU compiled
// with -mavx512f -mavx512dq; the batch driver only calls in when the active
// level grants it. DQ supplies a native 64-bit mullo; the 128-bit high half
// is the same 32-bit-limb schoolbook as the AVX2 TU. Conditional subtracts
// use compare-to-mask + masked subtract instead of AVX2's blend-by-mask —
// the arithmetic is exact either way, so outputs stay bit-identical to the
// scalar SoA reference.
#include "hemath/simd_batch.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace flash::hemath::simd_batch::detail {

namespace {

inline __m512i set1u64(u64 x) { return _mm512_set1_epi64(static_cast<long long>(x)); }

// Conditional subtract: lanes with x >= m become x - m.
inline __m512i csub(__m512i x, __m512i m) {
  return _mm512_mask_sub_epi64(x, _mm512_cmpge_epu64_mask(x, m), x, m);
}

// High 64 bits of the full 128-bit product, schoolbook over 32-bit limbs.
inline __m512i mulhi64(__m512i a, __m512i b) {
  const __m512i lo32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i ahi = _mm512_srli_epi64(a, 32);
  const __m512i bhi = _mm512_srli_epi64(b, 32);
  const __m512i ll = _mm512_mul_epu32(a, b);
  const __m512i lh = _mm512_mul_epu32(a, bhi);
  const __m512i hl = _mm512_mul_epu32(ahi, b);
  const __m512i hh = _mm512_mul_epu32(ahi, bhi);
  const __m512i carry = _mm512_srli_epi64(
      _mm512_add_epi64(_mm512_add_epi64(_mm512_srli_epi64(ll, 32), _mm512_and_si512(lh, lo32)),
                       _mm512_and_si512(hl, lo32)),
      32);
  return _mm512_add_epi64(_mm512_add_epi64(hh, carry),
                          _mm512_add_epi64(_mm512_srli_epi64(lh, 32), _mm512_srli_epi64(hl, 32)));
}

// x*w mod q with Shoup companion ws; lanes land in [0, 2q).
inline __m512i mul_lazy(__m512i x, __m512i w, __m512i ws, __m512i q) {
  return _mm512_sub_epi64(_mm512_mullo_epi64(x, w), _mm512_mullo_epi64(mulhi64(x, ws), q));
}

inline __m512i load(const u64* p) { return _mm512_loadu_si512(p); }

inline void store(u64* p, __m512i v) { _mm512_storeu_si512(p, v); }

}  // namespace

void ntt_forward_soa_avx512(u64* buf, std::size_t n, const NttStageTables& tb) {
  constexpr std::size_t g = kAvx512Lanes;
  const __m512i q = set1u64(tb.q);
  const __m512i two_q = _mm512_add_epi64(q, q);
  std::size_t t = n;
  for (std::size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const __m512i w = set1u64(tb.w[m + i]);
      const __m512i ws = set1u64(tb.ws[m + i]);
      u64* up = buf + 2 * i * t * g;
      u64* vp = up + t * g;
      for (std::size_t j = 0; j < t; ++j, up += g, vp += g) {
        const __m512i u = csub(load(up), two_q);
        const __m512i v = mul_lazy(load(vp), w, ws, q);
        store(up, _mm512_add_epi64(u, v));
        store(vp, _mm512_add_epi64(u, _mm512_sub_epi64(two_q, v)));
      }
    }
  }
  for (std::size_t idx = 0; idx < n * g; idx += g) {
    store(buf + idx, csub(csub(load(buf + idx), two_q), q));
  }
}

void ntt_inverse_soa_avx512(u64* buf, std::size_t n, const NttStageTables& tb) {
  constexpr std::size_t g = kAvx512Lanes;
  const __m512i q = set1u64(tb.q);
  const __m512i two_q = _mm512_add_epi64(q, q);
  std::size_t t = 1;
  for (std::size_t m = n; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    u64* up = buf;
    for (std::size_t i = 0; i < h; ++i) {
      const __m512i w = set1u64(tb.w[h + i]);
      const __m512i ws = set1u64(tb.ws[h + i]);
      u64* vp = up + t * g;
      for (std::size_t j = 0; j < t; ++j, up += g, vp += g) {
        const __m512i u = csub(load(up), two_q);
        const __m512i v = csub(load(vp), two_q);
        store(up, _mm512_add_epi64(u, v));
        store(vp, mul_lazy(_mm512_add_epi64(u, _mm512_sub_epi64(two_q, v)), w, ws, q));
      }
      up = vp;
    }
    t <<= 1;
  }
  const __m512i ni = set1u64(tb.n_inv);
  const __m512i nis = set1u64(tb.n_inv_shoup);
  for (std::size_t idx = 0; idx < n * g; idx += g) {
    const __m512i x = csub(load(buf + idx), two_q);
    store(buf + idx, csub(mul_lazy(x, ni, nis, q), q));
  }
}

}  // namespace flash::hemath::simd_batch::detail

#else  // No AVX-512 in this compiler/arch: unreachable stubs (dispatch never selects it).

#include <cstdlib>

namespace flash::hemath::simd_batch::detail {
void ntt_forward_soa_avx512(u64*, std::size_t, const NttStageTables&) { std::abort(); }
void ntt_inverse_soa_avx512(u64*, std::size_t, const NttStageTables&) { std::abort(); }
}  // namespace flash::hemath::simd_batch::detail

#endif
