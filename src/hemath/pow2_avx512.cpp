// 8-lane Z_{2^k} mask-reduce kernels (AVX-512 F+DQ). Separate TU compiled
// with -mavx512f -mavx512dq; DQ supplies a native 64-bit mullo
// (_mm512_mullo_epi64), so each lane is literally the scalar `a * b` —
// bit-identical wrap mod 2^64 — followed by the same AND.
#include "hemath/pow2.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace flash::hemath::detail {

namespace {

inline __m512i load(const u64* p) { return _mm512_loadu_si512(p); }
inline void store(u64* p, __m512i v) { _mm512_storeu_si512(p, v); }

}  // namespace

void pointwise_mul_mask_avx512(const u64* a, const u64* b, u64* c, std::size_t n, u64 mask) {
  const __m512i m = _mm512_set1_epi64(static_cast<long long>(mask));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store(c + i, _mm512_and_si512(_mm512_mullo_epi64(load(a + i), load(b + i)), m));
  }
  for (; i < n; ++i) c[i] = (a[i] * b[i]) & mask;
}

void pointwise_mul_mask_accumulate_avx512(u64* acc, const u64* a, const u64* b, std::size_t n,
                                          u64 mask) {
  const __m512i m = _mm512_set1_epi64(static_cast<long long>(mask));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i sum =
        _mm512_add_epi64(load(acc + i), _mm512_mullo_epi64(load(a + i), load(b + i)));
    store(acc + i, _mm512_and_si512(sum, m));
  }
  for (; i < n; ++i) acc[i] = (acc[i] + a[i] * b[i]) & mask;
}

void axpy_wrap_avx512(u64* acc, const u64* x, u64 s, std::size_t n) {
  const __m512i sv = _mm512_set1_epi64(static_cast<long long>(s));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store(acc + i, _mm512_add_epi64(load(acc + i), _mm512_mullo_epi64(load(x + i), sv)));
  }
  for (; i < n; ++i) acc[i] += s * x[i];
}

void axpy_wrap_sub_avx512(u64* acc, const u64* x, u64 s, std::size_t n) {
  const __m512i sv = _mm512_set1_epi64(static_cast<long long>(s));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store(acc + i, _mm512_sub_epi64(load(acc + i), _mm512_mullo_epi64(load(x + i), sv)));
  }
  for (; i < n; ++i) acc[i] -= s * x[i];
}

}  // namespace flash::hemath::detail

#else  // No AVX-512 in this compiler/arch: unreachable stubs (dispatch never selects it).

#include <cstdlib>

namespace flash::hemath::detail {
void pointwise_mul_mask_avx512(const u64*, const u64*, u64*, std::size_t, u64) { std::abort(); }
void pointwise_mul_mask_accumulate_avx512(u64*, const u64*, const u64*, std::size_t, u64) {
  std::abort();
}
void axpy_wrap_avx512(u64*, const u64*, u64, std::size_t) { std::abort(); }
void axpy_wrap_sub_avx512(u64*, const u64*, u64, std::size_t) { std::abort(); }
}  // namespace flash::hemath::detail

#endif
