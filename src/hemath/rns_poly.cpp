#include "hemath/rns_poly.hpp"

#include <stdexcept>

namespace flash::hemath {

RnsContext::RnsContext(std::vector<u64> moduli, std::size_t n) : basis_(std::move(moduli)), n_(n) {
  ntt_.reserve(basis_.size());
  for (u64 q : basis_.moduli()) ntt_.emplace_back(q, n);
}

RnsPoly::RnsPoly(const RnsContext& ctx) : ctx_(&ctx) {
  limbs_.assign(ctx.limbs(), std::vector<u64>(ctx.degree(), 0));
}

RnsPoly RnsPoly::from_signed(const RnsContext& ctx, const std::vector<i64>& coeffs) {
  if (coeffs.size() != ctx.degree()) throw std::invalid_argument("RnsPoly::from_signed: size mismatch");
  RnsPoly out(ctx);
  for (std::size_t l = 0; l < ctx.limbs(); ++l) {
    const u64 q = ctx.basis().moduli()[l];
    for (std::size_t i = 0; i < ctx.degree(); ++i) out.limbs_[l][i] = hemath::from_signed(coeffs[i], q);
  }
  return out;
}

u128 RnsPoly::coeff(std::size_t i) const {
  std::vector<u64> residues(ctx_->limbs());
  for (std::size_t l = 0; l < ctx_->limbs(); ++l) residues[l] = limbs_[l][i];
  return ctx_->basis().compose(residues);
}

std::pair<bool, u128> RnsPoly::coeff_centered(std::size_t i) const {
  const u128 v = coeff(i);
  const u128 q = ctx_->modulus();
  if (v > q / 2) return {true, q - v};
  return {false, v};
}

RnsPoly& RnsPoly::add_inplace(const RnsPoly& other) {
  if (ctx_ != other.ctx_) throw std::invalid_argument("RnsPoly::add_inplace: context mismatch");
  for (std::size_t l = 0; l < limbs_.size(); ++l) {
    const u64 q = ctx_->basis().moduli()[l];
    for (std::size_t i = 0; i < limbs_[l].size(); ++i) {
      limbs_[l][i] = add_mod(limbs_[l][i], other.limbs_[l][i], q);
    }
  }
  return *this;
}

RnsPoly& RnsPoly::sub_inplace(const RnsPoly& other) {
  if (ctx_ != other.ctx_) throw std::invalid_argument("RnsPoly::sub_inplace: context mismatch");
  for (std::size_t l = 0; l < limbs_.size(); ++l) {
    const u64 q = ctx_->basis().moduli()[l];
    for (std::size_t i = 0; i < limbs_[l].size(); ++i) {
      limbs_[l][i] = sub_mod(limbs_[l][i], other.limbs_[l][i], q);
    }
  }
  return *this;
}

RnsPoly& RnsPoly::negate_inplace() {
  for (std::size_t l = 0; l < limbs_.size(); ++l) {
    const u64 q = ctx_->basis().moduli()[l];
    for (auto& v : limbs_[l]) v = neg_mod(v, q);
  }
  return *this;
}

RnsPoly multiply(const RnsPoly& a, const RnsPoly& b) {
  if (&a.context() != &b.context()) throw std::invalid_argument("RnsPoly multiply: context mismatch");
  const RnsContext& ctx = a.context();
  RnsPoly out(ctx);
  for (std::size_t l = 0; l < ctx.limbs(); ++l) {
    out.mutable_limb(l) = negacyclic_multiply(ctx.ntt(l), a.limb(l), b.limb(l));
  }
  return out;
}

}  // namespace flash::hemath
