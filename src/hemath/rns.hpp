// Residue number system (RNS) tools.
//
// Large HE moduli are usually represented as products of word-sized NTT
// primes; accelerators like F1/ARK operate limb-wise. FLASH's BFV layer uses
// a single 64-bit prime, but the RNS basis is provided (and tested) because
// the baseline accelerator cost models are parameterized by limb count.
#pragma once

#include <cstdint>
#include <vector>

#include "hemath/modular.hpp"

namespace flash::hemath {

/// An RNS basis {q_0, ..., q_{L-1}} of pairwise-coprime word-size moduli.
class RnsBasis {
 public:
  explicit RnsBasis(std::vector<u64> moduli);

  std::size_t size() const { return moduli_.size(); }
  const std::vector<u64>& moduli() const { return moduli_; }

  /// Total modulus Q = prod q_i as a 128-bit value (throws if it overflows).
  u128 total_modulus() const { return big_q_; }

  /// Decompose x (< Q) into residues.
  std::vector<u64> decompose(u128 x) const;

  /// CRT-recompose residues into the unique x in [0, Q).
  u128 compose(const std::vector<u64>& residues) const;

 private:
  std::vector<u64> moduli_;
  u128 big_q_ = 1;
  std::vector<u64> punctured_inv_;  // (Q/q_i)^-1 mod q_i
};

}  // namespace flash::hemath
