#include "hemath/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace flash::hemath::simd {

namespace {

bool detect_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel detect_level() {
  const char* force = std::getenv("FLASH_FORCE_SCALAR");
  if (force != nullptr && std::strcmp(force, "0") != 0 && force[0] != '\0') {
    return SimdLevel::kScalar;
  }
  return detect_avx2() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

std::atomic<SimdLevel>& level_slot() {
  static std::atomic<SimdLevel> level{detect_level()};
  return level;
}

}  // namespace

bool cpu_has_avx2() {
  static const bool has = detect_avx2();
  return has;
}

SimdLevel active_simd_level() { return level_slot().load(std::memory_order_relaxed); }

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

ScopedSimdLevel::ScopedSimdLevel(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !cpu_has_avx2()) level = SimdLevel::kScalar;
  prev_ = level_slot().exchange(level, std::memory_order_relaxed);
}

ScopedSimdLevel::~ScopedSimdLevel() { level_slot().store(prev_, std::memory_order_relaxed); }

}  // namespace flash::hemath::simd
