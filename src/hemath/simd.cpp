#include "hemath/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace flash::hemath::simd {

namespace {

bool detect_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool detect_avx512() {
#if defined(__x86_64__) || defined(_M_X64)
  // F gives the 512-bit registers and compare-to-mask forms; DQ gives the
  // native 64-bit mullo the batch kernels lean on.
  return __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

SimdLevel detect_level() {
  return detail::resolve_level(std::getenv("FLASH_FORCE_SCALAR"),
                               std::getenv("FLASH_FORCE_SIMD_LEVEL"), max_supported_level());
}

std::atomic<SimdLevel>& level_slot() {
  static std::atomic<SimdLevel> level{detect_level()};
  return level;
}

}  // namespace

bool cpu_has_avx2() {
  static const bool has = detect_avx2();
  return has;
}

bool cpu_has_avx512() {
  static const bool has = detect_avx512();
  return has;
}

SimdLevel max_supported_level() {
  if (cpu_has_avx512()) return SimdLevel::kAvx512;
  if (cpu_has_avx2()) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}

SimdLevel active_simd_level() { return level_slot().load(std::memory_order_relaxed); }

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return std::nullopt;
}

SimdLevel clamp_to_supported(SimdLevel level) {
  if (level == SimdLevel::kAvx512 && !cpu_has_avx512()) level = SimdLevel::kAvx2;
  if (level == SimdLevel::kAvx2 && !cpu_has_avx2()) level = SimdLevel::kScalar;
  return level;
}

namespace detail {

SimdLevel resolve_level(const char* force_scalar, const char* force_level,
                        SimdLevel max_supported) {
  // FLASH_FORCE_SCALAR keeps its original semantics and wins: existing
  // baseline scripts must not change meaning because a richer knob exists.
  if (force_scalar != nullptr && std::strcmp(force_scalar, "0") != 0 && force_scalar[0] != '\0') {
    return SimdLevel::kScalar;
  }
  if (force_level != nullptr && force_level[0] != '\0') {
    const std::optional<SimdLevel> parsed = parse_simd_level(force_level);
    if (!parsed.has_value()) {
      throw std::invalid_argument(std::string("FLASH_FORCE_SIMD_LEVEL: unknown level '") +
                                  force_level + "' (expected scalar, avx2 or avx512)");
    }
    // Degrade, never upgrade: forcing avx512 on an AVX2-only machine runs
    // the avx2 path, so the cross-level differential tier is runnable (and
    // meaningfully exercised) everywhere.
    return *parsed <= max_supported ? *parsed : max_supported;
  }
  return max_supported;
}

}  // namespace detail

ScopedSimdLevel::ScopedSimdLevel(SimdLevel level) {
  prev_ = level_slot().exchange(clamp_to_supported(level), std::memory_order_relaxed);
}

ScopedSimdLevel::~ScopedSimdLevel() { level_slot().store(prev_, std::memory_order_relaxed); }

}  // namespace flash::hemath::simd
