#include "hemath/shoup_ntt.hpp"

#include <stdexcept>

#include "hemath/bitrev.hpp"
#include "hemath/primes.hpp"
#include "hemath/simd_batch.hpp"

namespace flash::hemath {

namespace {
u64 shoup_precompute(u64 w, u64 q) {
  return static_cast<u64>((static_cast<u128>(w) << 64) / q);
}
}  // namespace

ShoupNttTables::ShoupNttTables(u64 q, std::size_t n) : q_(q), two_q_(2 * q), n_(n) {
  if (n < 2 || (n & (n - 1)) != 0) throw std::invalid_argument("ShoupNttTables: n must be a power of two");
  if ((q - 1) % (2 * n) != 0) throw std::invalid_argument("ShoupNttTables: q != 1 mod 2N");
  if (q >= (u64{1} << 61)) throw std::invalid_argument("ShoupNttTables: q must be < 2^61");
  log_n_ = log2_exact(n);
  const u64 psi = root_of_unity(q, 2 * static_cast<u64>(n));
  const u64 psi_inv = inv_mod(psi, q);
  n_inv_ = inv_mod(static_cast<u64>(n), q);
  n_inv_shoup_ = shoup_precompute(n_inv_, q);

  std::vector<u64> pow(n), pow_inv(n);
  u64 p = 1, pi = 1;
  for (std::size_t i = 0; i < n; ++i) {
    pow[i] = p;
    pow_inv[i] = pi;
    p = mul_mod(p, psi, q);
    pi = mul_mod(pi, psi_inv, q);
  }
  psi_br_.resize(n);
  psi_br_shoup_.resize(n);
  psi_inv_br_.resize(n);
  psi_inv_br_shoup_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = bit_reverse(static_cast<std::uint32_t>(i), log_n_);
    psi_br_[i] = pow[r];
    psi_br_shoup_[i] = shoup_precompute(pow[r], q);
    psi_inv_br_[i] = pow_inv[r];
    psi_inv_br_shoup_[i] = shoup_precompute(pow_inv[r], q);
  }
}

void ShoupNttTables::forward(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("ShoupNttTables::forward: size mismatch");
  // Invariant: coefficients stay < 2q (Harvey lazy reduction).
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const u64 w = psi_br_[m + i];
      const u64 ws = psi_br_shoup_[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        u64 u = a[j];
        if (u >= two_q_) u -= two_q_;
        const u64 v = mul_lazy(a[j + t], w, ws, q_);  // < 2q
        a[j] = u + v;             // < 4q, corrected lazily next visit
        a[j + t] = u + two_q_ - v;  // < 4q
      }
    }
  }
  for (auto& x : a) {
    if (x >= two_q_) x -= two_q_;
    if (x >= q_) x -= q_;
  }
}

void ShoupNttTables::inverse(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("ShoupNttTables::inverse: size mismatch");
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const u64 w = psi_inv_br_[h + i];
      const u64 ws = psi_inv_br_shoup_[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        u64 u = a[j];
        u64 v = a[j + t];
        if (u >= two_q_) u -= two_q_;
        if (v >= two_q_) v -= two_q_;
        a[j] = u + v;  // < 4q
        a[j + t] = mul_lazy(u + two_q_ - v, w, ws, q_);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (auto& x : a) {
    x = mul_lazy(x >= two_q_ ? x - two_q_ : x, n_inv_, n_inv_shoup_, q_);
    if (x >= q_) x -= q_;
  }
}

void ShoupNttTables::forward_batch_into(std::span<u64* const> polys,
                                        core::ScratchArena* arena) const {
  const simd_batch::NttStageTables tb{psi_br_.data(), psi_br_shoup_.data(), 0, 0, q_};
  simd_batch::ntt_forward_batch(polys, n_, tb, arena);
}

void ShoupNttTables::inverse_batch_into(std::span<u64* const> polys,
                                        core::ScratchArena* arena) const {
  const simd_batch::NttStageTables tb{psi_inv_br_.data(), psi_inv_br_shoup_.data(), n_inv_,
                                      n_inv_shoup_, q_};
  simd_batch::ntt_inverse_batch(polys, n_, tb, arena);
}

}  // namespace flash::hemath
