#include "hemath/modular.hpp"

namespace flash::hemath {

u64 pow_mod(u64 a, u64 e, u64 q) {
  u64 result = 1 % q;
  a %= q;
  while (e > 0) {
    if (e & 1) result = mul_mod(result, a, q);
    a = mul_mod(a, a, q);
    e >>= 1;
  }
  return result;
}

u64 inv_mod(u64 a, u64 q) {
  // Extended Euclid on signed 128-bit to avoid overflow.
  __int128 t = 0, new_t = 1;
  __int128 r = q, new_r = a % q;
  while (new_r != 0) {
    __int128 quot = r / new_r;
    __int128 tmp = t - quot * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - quot * new_r;
    r = new_r;
    new_r = tmp;
  }
  if (r != 1) throw std::invalid_argument("inv_mod: value not invertible");
  if (t < 0) t += q;
  return static_cast<u64>(t);
}

i64 to_signed(u64 a, u64 q) {
  return a > q / 2 ? static_cast<i64>(a) - static_cast<i64>(q) : static_cast<i64>(a);
}

u64 from_signed(i64 a, u64 q) {
  i64 m = a % static_cast<i64>(q);
  if (m < 0) m += static_cast<i64>(q);
  return static_cast<u64>(m);
}

BarrettReducer::BarrettReducer(u64 modulus) : q_(modulus) {
  if (modulus < 2 || modulus >= (u64{1} << 62)) {
    throw std::invalid_argument("BarrettReducer: modulus must be in [2, 2^62)");
  }
  // mu = floor(2^128 / q). Since q does not divide 2^128 (unless q is a power
  // of two), floor((2^128 - 1)/q) equals it; correct the power-of-two case.
  u128 mu = (~u128{0}) / q_;
  if ((q_ & (q_ - 1)) == 0) mu += 1;
  mu_hi_ = static_cast<u64>(mu >> 64);
  mu_lo_ = static_cast<u64>(mu);
}

namespace {
/// High 128 bits of the 256-bit product of two 128-bit values given as
/// (hi, lo) word pairs. Standard four-partial-product schoolbook.
u128 mul_high_128(u64 xh, u64 xl, u64 yh, u64 yl) {
  u128 t0 = static_cast<u128>(xl) * yl;
  u128 t1 = static_cast<u128>(xh) * yl;
  u128 t2 = static_cast<u128>(xl) * yh;
  u128 t3 = static_cast<u128>(xh) * yh;
  u128 mid = (t0 >> 64) + static_cast<u64>(t1) + static_cast<u64>(t2);
  return t3 + (t1 >> 64) + (t2 >> 64) + (mid >> 64);
}
}  // namespace

u64 BarrettReducer::mul(u64 a, u64 b) const {
  u128 x = static_cast<u128>(a) * b;
  u128 quot = mul_high_128(static_cast<u64>(x >> 64), static_cast<u64>(x),
                           mu_hi_, mu_lo_);
  u128 r = x - quot * q_;
  // Quotient estimate is off by at most 2.
  while (r >= q_) r -= q_;
  return static_cast<u64>(r);
}

MontgomeryReducer::MontgomeryReducer(u64 modulus) : q_(modulus) {
  if (modulus < 3 || (modulus & 1) == 0 || modulus >= (u64{1} << 63)) {
    throw std::invalid_argument("MontgomeryReducer: modulus must be odd and < 2^63");
  }
  // Newton iteration for q^{-1} mod 2^64 (doubles valid bits each step).
  u64 inv = q_;
  for (int i = 0; i < 5; ++i) inv *= 2 - q_ * inv;
  qinv_neg_ = ~inv + 1;
  u64 r = (~u64{0}) % q_ + 1;  // 2^64 mod q (q < 2^63 so r < q always holds after %)
  if (r == q_) r = 0;
  r2_ = mul_mod(r, r, q_);  // 2^128 mod q
}

}  // namespace flash::hemath
