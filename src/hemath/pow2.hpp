// Z_{2^k} mask-reduce arithmetic — the Jaguar-style power-of-two backend.
//
// Over q = 2^k modular reduction is a single AND with (2^k - 1): because
// 2^k divides 2^64, unsigned 64-bit arithmetic wraps *exactly* mod 2^64, so
// any chain of adds/subs/muls can run on raw u64 with natural wraparound and
// a single mask applied at the very end — the result is bit-identical to
// reducing after every operation. At k = 64 even the mask is the identity
// (the wrap-is-free case). This is why the pointwise kernels here beat the
// Barrett path at equal width: no mulhi chain, no quotient estimate, no
// conditional subtract — just mullo and AND, both of which vectorize.
//
// There is no NTT mod 2^k (Z_{2^k} has no primitive 2N-th root of unity:
// its unit group has order 2^(k-1), and x^2 = 1 has the four solutions
// {1, -1, 2^(k-1)-1, 2^(k-1)+1}, so the evaluation points needed by a
// radix-2 transform do not exist). Negacyclic polymul therefore runs as
// Karatsuba over wrapping u64 (shipped fast path) with an independent
// schoolbook reference, and the differential tier — not a transform
// round-trip — carries the correctness argument (oracle arm, cross-level
// SIMD corpus, injected mask-width/carry self-tests).
//
// Dispatch follows hemath/simd.hpp: scalar loops are the reference, the
// AVX2/AVX-512 kernels in pow2_avx2.cpp / pow2_avx512.cpp are exact integer
// lanes and thus bit-identical by construction at every level.
#pragma once

#include <cstddef>
#include <vector>

#include "core/scratch.hpp"
#include "hemath/modular.hpp"

namespace flash::hemath {

/// The ring Z_{2^k}, 1 <= k <= 64. Residues live in [0, 2^k) inside u64;
/// every operation wraps on u64 and masks once at the end.
struct Pow2Ring {
  int k = 64;
  u64 mask = ~u64{0};

  explicit Pow2Ring(int k_in);

  static bool valid_k(int k_in) { return k_in >= 1 && k_in <= 64; }

  /// 2^k as u64. k = 64 wraps to 0 — callers that need the modulus as a
  /// nonzero value (BfvParams.q, Poly) must restrict k <= 62; the arithmetic
  /// here is exact for every k up to and including 64.
  u64 modulus() const { return k == 64 ? 0 : u64{1} << k; }

  u64 reduce(u64 x) const { return x & mask; }
  u64 add(u64 a, u64 b) const { return (a + b) & mask; }
  u64 sub(u64 a, u64 b) const { return (a - b) & mask; }
  u64 neg(u64 a) const { return (0 - a) & mask; }
  u64 mul(u64 a, u64 b) const { return (a * b) & mask; }

  /// Two's-complement centered lift: the representative of a in
  /// [-2^(k-1), 2^(k-1)). Sign-extends from bit k-1.
  i64 to_signed(u64 a) const {
    const int sh = 64 - k;
    return static_cast<i64>(a << sh) >> sh;
  }
  /// Any signed value back into [0, 2^k); exact for the full i64 range
  /// because 2^k | 2^64.
  u64 from_signed(i64 a) const { return static_cast<u64>(a) & mask; }

  bool operator==(const Pow2Ring&) const = default;
};

/// c[i] = a[i] * b[i] mod 2^k for i in [0, n). Inputs need not be reduced
/// (wrap-then-mask is exact); outputs are canonical. c may alias a or b
/// elementwise. Dispatches scalar / AVX2 / AVX-512.
void pointwise_mulmod_pow2(const u64* a, const u64* b, u64* c, std::size_t n, Pow2Ring ring);

/// acc[i] = (acc[i] + a[i] * b[i]) mod 2^k for i in [0, n).
void pointwise_mulmod_pow2_accumulate(u64* acc, const u64* a, const u64* b, std::size_t n,
                                      Pow2Ring ring);

/// acc[i] = (acc[i] + x[i]) mod 2^k for i in [0, n). The spectral-domain
/// "accumulator +=" of the engine's kPow2 path (bandwidth-bound; scalar).
void pointwise_add_pow2(u64* acc, const u64* x, std::size_t n, Pow2Ring ring);

/// Negacyclic product out = a * b in Z_{2^k}[X]/(X^n + 1), deliberately
/// naive O(n^2) scalar schoolbook — the in-tree differential reference for
/// the Karatsuba path (independent summation order, no SIMD, no scratch).
/// out must not alias a or b.
void negacyclic_mul_pow2_schoolbook(const u64* a, const u64* b, u64* out, std::size_t n,
                                    Pow2Ring ring);

/// Negacyclic product out = a * b in Z_{2^k}[X]/(X^n + 1): Karatsuba over
/// wrapping u64 (exact mod 2^64, masked once at the fold), scratch from
/// `arena` (nullptr = the calling thread's arena; zero steady-state
/// allocations). out must not alias a or b. The vectorized base case uses
/// the axpy kernels below.
void negacyclic_mul_pow2_into(const u64* a, const u64* b, u64* out, std::size_t n, Pow2Ring ring,
                              core::ScratchArena* arena = nullptr);

/// Convenience allocating wrapper around negacyclic_mul_pow2_into.
std::vector<u64> negacyclic_mul_pow2(const std::vector<u64>& a, const std::vector<u64>& b,
                                     Pow2Ring ring);

/// Batch driver: outs[l] = cts[l] * w for every lane l, SoA-packed through
/// `arena` (simd_batch pack/unpack conventions). When w is sparse enough
/// that nnz(w) * n undercuts the Karatsuba multiplication count, the lanes
/// run as one SoA sparse schoolbook — per nonzero w[j] the negacyclic
/// shift-accumulate is two contiguous axpy sweeps across all lanes at once —
/// otherwise each lane takes the Karatsuba path. Either way outputs are
/// bit-identical to a loop of negacyclic_mul_pow2_into calls.
/// cts.size() must equal outs.size(); outs must not alias cts or w.
void negacyclic_mul_pow2_batch_into(std::span<const u64* const> cts, const u64* w,
                                    std::span<u64* const> outs, std::size_t n, Pow2Ring ring,
                                    core::ScratchArena* arena = nullptr);

/// u64 multiplications one dense negacyclic_mul_pow2_into(n) performs:
/// M(n) = 3 M(n/2) down to the schoolbook base case. Deterministic in n —
/// the engine's pointwise_products tally for the kPow2 backend (sparse
/// skips make the actual issue count <= this).
std::uint64_t pow2_mult_count(std::size_t n);

/// acc[i] += s * x[i] (wrapping mod 2^64, no mask) for i in [0, n) — the
/// vectorized row update of the schoolbook/Karatsuba base case and the SoA
/// batch driver. Dispatches scalar / AVX2 / AVX-512.
void axpy_wrap(u64* acc, const u64* x, u64 s, std::size_t n);
/// acc[i] -= s * x[i] (wrapping): the negacyclic wraparound rows.
void axpy_wrap_sub(u64* acc, const u64* x, u64 s, std::size_t n);

namespace detail {
/// Vector kernels (pow2_avx2.cpp / pow2_avx512.cpp, compiled with the
/// matching -m flags). Callers go through the dispatching wrappers above.
void pointwise_mul_mask_avx2(const u64* a, const u64* b, u64* c, std::size_t n, u64 mask);
void pointwise_mul_mask_accumulate_avx2(u64* acc, const u64* a, const u64* b, std::size_t n,
                                        u64 mask);
void axpy_wrap_avx2(u64* acc, const u64* x, u64 s, std::size_t n);
void axpy_wrap_sub_avx2(u64* acc, const u64* x, u64 s, std::size_t n);
void pointwise_mul_mask_avx512(const u64* a, const u64* b, u64* c, std::size_t n, u64 mask);
void pointwise_mul_mask_accumulate_avx512(u64* acc, const u64* a, const u64* b, std::size_t n,
                                          u64 mask);
void axpy_wrap_avx512(u64* acc, const u64* x, u64 s, std::size_t n);
void axpy_wrap_sub_avx512(u64* acc, const u64* x, u64 s, std::size_t n);
}  // namespace detail

}  // namespace flash::hemath
