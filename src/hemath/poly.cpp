#include "hemath/poly.hpp"

#include <stdexcept>

namespace flash::hemath {

std::size_t Poly::weight() const {
  std::size_t w = 0;
  for (u64 c : coeffs_) {
    if (c != 0) ++w;
  }
  return w;
}

double Poly::sparsity() const {
  if (coeffs_.empty()) return 0.0;
  return 1.0 - static_cast<double>(weight()) / static_cast<double>(coeffs_.size());
}

Poly& Poly::add_inplace(const Poly& other) {
  if (q_ != other.q_ || coeffs_.size() != other.coeffs_.size()) {
    throw std::invalid_argument("Poly::add_inplace: ring mismatch");
  }
  for (std::size_t i = 0; i < coeffs_.size(); ++i) coeffs_[i] = add_mod(coeffs_[i], other.coeffs_[i], q_);
  return *this;
}

Poly& Poly::sub_inplace(const Poly& other) {
  if (q_ != other.q_ || coeffs_.size() != other.coeffs_.size()) {
    throw std::invalid_argument("Poly::sub_inplace: ring mismatch");
  }
  for (std::size_t i = 0; i < coeffs_.size(); ++i) coeffs_[i] = sub_mod(coeffs_[i], other.coeffs_[i], q_);
  return *this;
}

Poly& Poly::negate_inplace() {
  for (auto& c : coeffs_) c = neg_mod(c, q_);
  return *this;
}

Poly& Poly::scale_inplace(u64 c) {
  for (auto& x : coeffs_) x = mul_mod(x, c, q_);
  return *this;
}

Poly multiply(const NttTables& tables, const Poly& a, const Poly& b) {
  if (a.modulus() != tables.modulus() || b.modulus() != tables.modulus() ||
      a.degree() != tables.degree() || b.degree() != tables.degree()) {
    throw std::invalid_argument("multiply: ring mismatch with tables");
  }
  return Poly(a.modulus(), negacyclic_multiply(tables, a.coeffs(), b.coeffs()));
}

Poly multiply_schoolbook(const Poly& a, const Poly& b) {
  if (a.modulus() != b.modulus() || a.degree() != b.degree()) {
    throw std::invalid_argument("multiply_schoolbook: ring mismatch");
  }
  return Poly(a.modulus(), negacyclic_multiply_schoolbook(a.modulus(), a.coeffs(), b.coeffs()));
}

Poly mod_switch(const Poly& a, u64 q_to) {
  Poly out(q_to, a.degree());
  for (std::size_t i = 0; i < a.degree(); ++i) {
    out[i] = from_signed(to_signed(a[i], a.modulus()), q_to);
  }
  return out;
}

}  // namespace flash::hemath
