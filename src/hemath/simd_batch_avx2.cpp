// 4-lane SoA NTT butterfly kernels (AVX2). Separate TU compiled with -mavx2;
// the batch driver (simd_batch.cpp) only calls in when the active level
// grants it. Arithmetic mirrors the scalar SoA kernels operation for
// operation — u64 lanes are exact, so outputs are bit-identical.
#include "hemath/simd_batch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace flash::hemath::simd_batch::detail {

namespace {

inline __m256i set1u64(u64 x) { return _mm256_set1_epi64x(static_cast<long long>(x)); }

inline __m256i xor_sign(__m256i x) {
  return _mm256_xor_si256(x, _mm256_set1_epi64x(static_cast<long long>(u64{1} << 63)));
}

// a < b unsigned, per 64-bit lane (all-ones mask on true).
inline __m256i ltu64(__m256i a, __m256i b) {
  return _mm256_cmpgt_epi64(xor_sign(b), xor_sign(a));
}

// Conditional subtract: lanes with x >= m become x - m.
inline __m256i csub(__m256i x, __m256i m) {
  return _mm256_sub_epi64(x, _mm256_andnot_si256(ltu64(x, m), m));
}

// Low 64 bits of a*b via 32-bit limb products (no native epi64 mullo here).
inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                                         _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(_mm256_mul_epu32(a, b), _mm256_slli_epi64(cross, 32));
}

// High 64 bits of the full 128-bit product, schoolbook over 32-bit limbs.
inline __m256i mulhi64(__m256i a, __m256i b) {
  const __m256i lo32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i ahi = _mm256_srli_epi64(a, 32);
  const __m256i bhi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, bhi);
  const __m256i hl = _mm256_mul_epu32(ahi, b);
  const __m256i hh = _mm256_mul_epu32(ahi, bhi);
  // carry = high half of (ll>>32 + lo32(lh) + lo32(hl)); the sum fits 64 bits.
  const __m256i carry = _mm256_srli_epi64(
      _mm256_add_epi64(_mm256_add_epi64(_mm256_srli_epi64(ll, 32), _mm256_and_si256(lh, lo32)),
                       _mm256_and_si256(hl, lo32)),
      32);
  return _mm256_add_epi64(_mm256_add_epi64(hh, carry),
                          _mm256_add_epi64(_mm256_srli_epi64(lh, 32), _mm256_srli_epi64(hl, 32)));
}

// x*w mod q with Shoup companion ws; lanes land in [0, 2q).
inline __m256i mul_lazy(__m256i x, __m256i w, __m256i ws, __m256i q) {
  return _mm256_sub_epi64(mullo64(x, w), mullo64(mulhi64(x, ws), q));
}

inline __m256i load(const u64* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(u64* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

}  // namespace

void ntt_forward_soa_avx2(u64* buf, std::size_t n, const NttStageTables& tb) {
  constexpr std::size_t g = kAvx2Lanes;
  const __m256i q = set1u64(tb.q);
  const __m256i two_q = _mm256_add_epi64(q, q);
  std::size_t t = n;
  for (std::size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const __m256i w = set1u64(tb.w[m + i]);
      const __m256i ws = set1u64(tb.ws[m + i]);
      u64* up = buf + 2 * i * t * g;
      u64* vp = up + t * g;
      for (std::size_t j = 0; j < t; ++j, up += g, vp += g) {
        const __m256i u = csub(load(up), two_q);
        const __m256i v = mul_lazy(load(vp), w, ws, q);
        store(up, _mm256_add_epi64(u, v));
        store(vp, _mm256_add_epi64(u, _mm256_sub_epi64(two_q, v)));
      }
    }
  }
  for (std::size_t idx = 0; idx < n * g; idx += g) {
    store(buf + idx, csub(csub(load(buf + idx), two_q), q));
  }
}

void ntt_inverse_soa_avx2(u64* buf, std::size_t n, const NttStageTables& tb) {
  constexpr std::size_t g = kAvx2Lanes;
  const __m256i q = set1u64(tb.q);
  const __m256i two_q = _mm256_add_epi64(q, q);
  std::size_t t = 1;
  for (std::size_t m = n; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    u64* up = buf;
    for (std::size_t i = 0; i < h; ++i) {
      const __m256i w = set1u64(tb.w[h + i]);
      const __m256i ws = set1u64(tb.ws[h + i]);
      u64* vp = up + t * g;
      for (std::size_t j = 0; j < t; ++j, up += g, vp += g) {
        const __m256i u = csub(load(up), two_q);
        const __m256i v = csub(load(vp), two_q);
        store(up, _mm256_add_epi64(u, v));
        store(vp, mul_lazy(_mm256_add_epi64(u, _mm256_sub_epi64(two_q, v)), w, ws, q));
      }
      up = vp;
    }
    t <<= 1;
  }
  const __m256i ni = set1u64(tb.n_inv);
  const __m256i nis = set1u64(tb.n_inv_shoup);
  for (std::size_t idx = 0; idx < n * g; idx += g) {
    const __m256i x = csub(load(buf + idx), two_q);
    store(buf + idx, csub(mul_lazy(x, ni, nis, q), q));
  }
}

}  // namespace flash::hemath::simd_batch::detail

#else  // !__AVX2__ — non-x86 build: unreachable stubs (dispatch never selects AVX2).

#include <cstdlib>

namespace flash::hemath::simd_batch::detail {
void ntt_forward_soa_avx2(u64*, std::size_t, const NttStageTables&) { std::abort(); }
void ntt_inverse_soa_avx2(u64*, std::size_t, const NttStageTables&) { std::abort(); }
}  // namespace flash::hemath::simd_batch::detail

#endif
