#include "hemath/simd_batch.hpp"

#include <algorithm>

namespace flash::hemath::simd_batch {

void pack_soa(const u64* const* polys, std::size_t count, std::size_t n, std::size_t g,
              u64* buf) {
  for (std::size_t j = 0; j < n; ++j) {
    u64* row = buf + j * g;
    for (std::size_t l = 0; l < count; ++l) row[l] = polys[l][j];
    for (std::size_t l = count; l < g; ++l) row[l] = 0;
  }
}

void unpack_soa(const u64* buf, std::size_t n, std::size_t g, u64* const* polys,
                std::size_t count) {
  for (std::size_t j = 0; j < n; ++j) {
    const u64* row = buf + j * g;
    for (std::size_t l = 0; l < count; ++l) polys[l][j] = row[l];
  }
}

void ntt_forward_soa(u64* buf, std::size_t n, std::size_t g, const NttStageTables& tb) {
  const u64 q = tb.q;
  const u64 two_q = 2 * q;
  std::size_t t = n;
  for (std::size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const u64 w = tb.w[m + i];
      const u64 ws = tb.ws[m + i];
      u64* up = buf + 2 * i * t * g;
      u64* vp = up + t * g;
      for (std::size_t j = 0; j < t; ++j, up += g, vp += g) {
        for (std::size_t l = 0; l < g; ++l) {
          u64 u = up[l];
          if (u >= two_q) u -= two_q;
          const u64 v = shoup_mul_lazy(vp[l], w, ws, q);  // < 2q
          up[l] = u + v;              // < 4q, corrected lazily next visit
          vp[l] = u + two_q - v;      // < 4q
        }
      }
    }
  }
  for (std::size_t idx = 0; idx < n * g; ++idx) {
    u64 x = buf[idx];
    if (x >= two_q) x -= two_q;
    if (x >= q) x -= q;
    buf[idx] = x;
  }
}

void ntt_inverse_soa(u64* buf, std::size_t n, std::size_t g, const NttStageTables& tb) {
  const u64 q = tb.q;
  const u64 two_q = 2 * q;
  std::size_t t = 1;
  for (std::size_t m = n; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    u64* up = buf;
    for (std::size_t i = 0; i < h; ++i) {
      const u64 w = tb.w[h + i];
      const u64 ws = tb.ws[h + i];
      u64* vp = up + t * g;
      for (std::size_t j = 0; j < t; ++j, up += g, vp += g) {
        for (std::size_t l = 0; l < g; ++l) {
          u64 u = up[l];
          u64 v = vp[l];
          if (u >= two_q) u -= two_q;
          if (v >= two_q) v -= two_q;
          up[l] = u + v;  // < 4q
          vp[l] = shoup_mul_lazy(u + two_q - v, w, ws, q);
        }
      }
      up = vp;  // next block starts where this one's odd half ended
    }
    t <<= 1;
  }
  for (std::size_t idx = 0; idx < n * g; ++idx) {
    const u64 x = buf[idx];
    u64 r = shoup_mul_lazy(x >= two_q ? x - two_q : x, tb.n_inv, tb.n_inv_shoup, q);
    if (r >= q) r -= q;
    buf[idx] = r;
  }
}

namespace {

enum class Direction { kForward, kInverse };

void run_soa(u64* buf, std::size_t n, std::size_t g, const NttStageTables& tb, Direction dir) {
  if (g == kAvx512Lanes) {
    if (dir == Direction::kForward) {
      detail::ntt_forward_soa_avx512(buf, n, tb);
    } else {
      detail::ntt_inverse_soa_avx512(buf, n, tb);
    }
  } else if (g == kAvx2Lanes) {
    if (dir == Direction::kForward) {
      detail::ntt_forward_soa_avx2(buf, n, tb);
    } else {
      detail::ntt_inverse_soa_avx2(buf, n, tb);
    }
  } else if (dir == Direction::kForward) {
    ntt_forward_soa(buf, n, g, tb);
  } else {
    ntt_inverse_soa(buf, n, g, tb);
  }
}

void ntt_batch(std::span<u64* const> polys, std::size_t n, const NttStageTables& tb,
               core::ScratchArena* arena, Direction dir) {
  const std::size_t max_g = soa_group_lanes(simd::active_simd_level());
  std::size_t done = 0;
  while (done < polys.size()) {
    const std::size_t remaining = polys.size() - done;
    if (remaining == 1 || max_g == 1) {
      // Single lane: run the scalar kernel in place — no pack/unpack copy.
      run_soa(polys[done], n, 1, tb, dir);
      ++done;
      continue;
    }
    // Remainder of 2..kAvx2Lanes at the AVX-512 level drops to the 4-lane
    // kernel; anything else zero-pads up to the group width.
    const std::size_t g = (max_g == kAvx512Lanes && remaining <= kAvx2Lanes) ? kAvx2Lanes : max_g;
    const std::size_t count = std::min(remaining, g);
    core::ScratchFrame frame(core::scratch_or_thread(arena));
    std::span<u64> buf = frame.alloc<u64>(n * g);
    pack_soa(polys.data() + done, count, n, g, buf.data());
    run_soa(buf.data(), n, g, tb, dir);
    unpack_soa(buf.data(), n, g, polys.data() + done, count);
    done += count;
  }
}

}  // namespace

void ntt_forward_batch(std::span<u64* const> polys, std::size_t n, const NttStageTables& tb,
                       core::ScratchArena* arena) {
  ntt_batch(polys, n, tb, arena, Direction::kForward);
}

void ntt_inverse_batch(std::span<u64* const> polys, std::size_t n, const NttStageTables& tb,
                       core::ScratchArena* arena) {
  ntt_batch(polys, n, tb, arena, Direction::kInverse);
}

}  // namespace flash::hemath::simd_batch
