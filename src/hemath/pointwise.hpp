// Vectorized RNS pointwise modular multiplication.
//
// The spectral-domain inner loop of every NTT-backed PolyMul is
// c[i] = a[i]*b[i] mod q (optionally accumulated). The scalar mul_mod takes
// a 128-bit remainder per element — a library soft-division on x86-64. The
// AVX2 path computes the same exact residue with a four-lane Barrett
// reduction (mu = floor(2^128/q) precomputed per call), so it is
// bit-identical to the scalar path by construction: both produce the unique
// representative in [0, q). Dispatch follows hemath/simd.hpp.
#pragma once

#include <cstddef>

#include "hemath/modular.hpp"

namespace flash::hemath {

/// c[i] = a[i]*b[i] mod q for i in [0, n). Inputs must be < q; q < 2^62.
/// a, b, c may alias elementwise (c == a is fine).
void pointwise_mulmod(const u64* a, const u64* b, u64* c, std::size_t n, u64 q);

/// acc[i] = (acc[i] + a[i]*b[i]) mod q for i in [0, n).
void pointwise_mulmod_accumulate(u64* acc, const u64* a, const u64* b, std::size_t n, u64 q);

namespace detail {
/// AVX2 kernels (defined in pointwise_avx2.cpp, compiled with -mavx2).
/// Callers must check simd::active_simd_level() first.
void pointwise_mulmod_avx2(const u64* a, const u64* b, u64* c, std::size_t n, u64 q);
void pointwise_mulmod_accumulate_avx2(u64* acc, const u64* a, const u64* b, std::size_t n, u64 q);
}  // namespace detail

}  // namespace flash::hemath
