// Runtime SIMD dispatch for the transform kernels.
//
// The vector kernels (AVX2 today) are bit-identical to their scalar
// fallbacks — integer lanes compute the same shifts/adds, floating lanes the
// same IEEE mul/add sequence with contraction disabled — so selecting a
// level is purely a performance decision. The level is detected once at
// first use:
//   * FLASH_FORCE_SCALAR=1 in the environment pins the scalar fallback
//     (baseline measurements, debugging);
//   * otherwise AVX2 is used when the CPU reports it;
//   * ScopedSimdLevel overrides the level for the current process, used by
//     the differential tests and benches to compare both paths in one run.
//
// Dispatch sites read active_simd_level() per call (a relaxed atomic load);
// kernels themselves live in *_avx2.cpp translation units compiled with
// -mavx2 so the rest of the tree keeps the portable baseline ISA.
#pragma once

namespace flash::hemath::simd {

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

/// True if the CPU this process runs on supports AVX2 (ignores the env
/// override).
bool cpu_has_avx2();

/// The level dispatch sites use. Detected once (env override included);
/// changed only by ScopedSimdLevel.
SimdLevel active_simd_level();

const char* simd_level_name(SimdLevel level);

/// Scoped override for tests/benches. Requesting kAvx2 on a CPU without
/// AVX2 keeps kScalar. Restores the previous level on destruction. Not
/// thread-safe against concurrent transform calls by design: use only in
/// single-threaded test/bench setup.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level);
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;
  ~ScopedSimdLevel();

 private:
  SimdLevel prev_;
};

}  // namespace flash::hemath::simd
