// Runtime SIMD dispatch for the transform kernels.
//
// The vector kernels (AVX2 and AVX-512) are bit-identical to their scalar
// fallbacks — integer lanes compute the same shifts/adds, floating lanes the
// same IEEE mul/add sequence with contraction disabled — so selecting a
// level is purely a performance decision. The level is detected once at
// first use:
//   * FLASH_FORCE_SCALAR=1 in the environment pins the scalar fallback
//     (baseline measurements, debugging);
//   * FLASH_FORCE_SIMD_LEVEL={scalar,avx2,avx512} pins a specific level;
//     any other value throws (a typo must not silently change the datapath),
//     and a forced level the CPU lacks degrades to the best supported level
//     below it so the cross-level test tier runs on any machine;
//   * otherwise the highest level the CPU reports is used;
//   * ScopedSimdLevel overrides the level for the current process, used by
//     the differential tests and benches to compare the paths in one run.
//
// Dispatch sites read the level per call (a relaxed atomic load) through the
// level_at_least() predicate — direct active_simd_level() comparisons are
// rejected by flash_lint outside hemath/simd, because `== kAvx2` checks
// silently turned AVX2 kernels *off* when kAvx512 was added. Kernels live in
// *_avx2.cpp / *_avx512.cpp translation units compiled with the matching
// -m flags so the rest of the tree keeps the portable baseline ISA.
#pragma once

#include <optional>
#include <string_view>

namespace flash::hemath::simd {

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// True if the CPU this process runs on supports AVX2 (ignores the env
/// override).
bool cpu_has_avx2();

/// True if the CPU supports the AVX-512 subsets the kernels use (F + DQ).
bool cpu_has_avx512();

/// Highest level the CPU supports (ignores env overrides).
SimdLevel max_supported_level();

/// The level dispatch sites use. Detected once (env override included);
/// changed only by ScopedSimdLevel. Call sites outside hemath/simd must use
/// level_at_least() instead (enforced by flash_lint) — equality comparisons
/// against one level break when a higher level is introduced.
SimdLevel active_simd_level();

/// True when the active level is `min` or higher. The one level query
/// dispatch sites should use: an AVX2 kernel remains eligible at kAvx512.
inline bool level_at_least(SimdLevel min) {
  return static_cast<int>(active_simd_level()) >= static_cast<int>(min);
}

const char* simd_level_name(SimdLevel level);

/// Parse a FLASH_FORCE_SIMD_LEVEL value; nullopt when unrecognized.
std::optional<SimdLevel> parse_simd_level(std::string_view name);

/// Highest supported level that does not exceed `level`.
SimdLevel clamp_to_supported(SimdLevel level);

namespace detail {
/// Pure resolution of the detected level from the two env overrides — unit
/// testable without mutating the process environment. `force_scalar` and
/// `force_level` are the raw env values (null = unset). Throws
/// std::invalid_argument when force_level is not scalar/avx2/avx512.
SimdLevel resolve_level(const char* force_scalar, const char* force_level,
                        SimdLevel max_supported);
}  // namespace detail

/// Scoped override for tests/benches. Requesting a level the CPU lacks
/// keeps the best supported level below it (kAvx512 without AVX-512 support
/// degrades to kAvx2, then kScalar). Restores the previous level on
/// destruction. Not thread-safe against concurrent transform calls by
/// design: use only in single-threaded test/bench setup.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level);
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;
  ~ScopedSimdLevel();

 private:
  SimdLevel prev_;
};

}  // namespace flash::hemath::simd
