// General convolution over the one-round protocol: padding, stride
// decomposition and spatial tiling on top of the stride-1 HConv core.
//
// * 'same'/custom padding is applied to the cleartext input before sharing
//   (both parties know the geometry; zeros carry no information).
// * A stride-s convolution decomposes into up to s^2 stride-1 sub-
//   convolutions over phase-subsampled inputs (the decomposition the tiling
//   planner models); each phase's result *shares* are summed locally, so the
//   decomposition costs no extra communication rounds.
// * Inputs whose patch exceeds the polynomial capacity are split into
//   overlapping spatial tiles (halo = kernel - 1).
//
// This is what lets the HE/2PC path run every ResNet layer shape, not just
// the ones that fit a single polynomial.
#pragma once

#include "protocol/hconv_protocol.hpp"

namespace flash::protocol {

struct ConvRunnerResult {
  tensor::Tensor3 client_share;  // mod-t share values stored as i64
  tensor::Tensor3 server_share;
  std::uint64_t bytes_client_to_server = 0;
  std::uint64_t bytes_server_to_client = 0;
  std::size_t hconv_calls = 0;

  /// Reconstruct the cleartext sum-product tensor.
  tensor::Tensor3 reconstruct(u64 t) const;
};

class ConvRunner {
 public:
  explicit ConvRunner(HConvProtocol& protocol) : protocol_(protocol) {}

  /// General conv2d over the protocol: any stride >= 1, any padding, spatial
  /// tiling as needed.
  ConvRunnerResult run(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                       std::size_t stride, std::size_t pad);

 private:
  /// Stride-1 valid conv with spatial tiling.
  ConvRunnerResult run_stride1(const tensor::Tensor3& x, const tensor::Tensor4& weights);

  HConvProtocol& protocol_;
};

}  // namespace flash::protocol
