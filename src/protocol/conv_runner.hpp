// General convolution over the one-round protocol: padding, stride
// decomposition and spatial tiling on top of the stride-1 HConv core.
//
// * 'same'/custom padding is applied to the cleartext input before sharing
//   (both parties know the geometry; zeros carry no information).
// * A stride-s convolution decomposes into up to s^2 stride-1 sub-
//   convolutions over phase-subsampled inputs (the decomposition the tiling
//   planner models); each phase's result *shares* are summed locally, so the
//   decomposition costs no extra communication rounds.
// * Inputs whose patch exceeds the polynomial capacity are split into
//   overlapping spatial tiles (halo = kernel - 1).
//
// This is what lets the HE/2PC path run every ResNet layer shape, not just
// the ones that fit a single polynomial.
#pragma once

#include <map>

#include "protocol/hconv_protocol.hpp"

namespace flash::protocol {

/// Everything about one (input shape, weights, stride, pad) layer that can
/// be computed before any activation arrives: the stride-phase kernels and,
/// per phase, the weight spectra of every distinct spatial-tile patch shape
/// the tiling grid produces. Built by ConvRunner::prepare(), immutable
/// afterwards, safe to share across threads — this is the "weight plan" a
/// serving layer keys batches on (ARCHITECTURE.md §9).
struct ConvPlan {
  std::size_t in_c = 0, in_h = 0, in_w = 0;  // pre-padding activation shape
  std::size_t stride = 1, pad = 0;
  tensor::Tensor4 weights;  // the original (un-subsampled) kernel

  struct Phase {
    std::size_t a = 0, b = 0;   // stride-phase offsets (0,0 for stride 1)
    std::size_t index = 0;      // stream-block index (matches run's order)
    tensor::Tensor4 weights;    // phase-subsampled kernel
    /// Patch shape (height, width) -> prepared spectra. One entry per
    /// distinct tile shape: interior tiles share one, edge tiles theirs.
    std::map<std::pair<std::size_t, std::size_t>,
             std::shared_ptr<const HConvProtocol::PreparedWeights>>
        tiles;
  };
  std::vector<Phase> phases;
};

struct ConvRunnerResult {
  tensor::Tensor3 client_share;  // mod-t share values stored as i64
  tensor::Tensor3 server_share;
  std::uint64_t bytes_client_to_server = 0;
  std::uint64_t bytes_server_to_client = 0;
  std::size_t hconv_calls = 0;

  /// Reconstruct the cleartext sum-product tensor.
  tensor::Tensor3 reconstruct(u64 t) const;
};

class ConvRunner {
 public:
  /// pool (optional, non-owning) fans the independent HConv units — stride
  /// phases and spatial tiles — out over threads; each unit also hands the
  /// pool down to HConvProtocol for its per-channel loops. Every unit gets a
  /// deterministic RNG stream id derived from its (phase, tile) position, so
  /// the result is bit-identical to the serial path for a fixed protocol
  /// seed, independent of thread count and scheduling.
  explicit ConvRunner(HConvProtocol& protocol, core::ThreadPool* pool = nullptr)
      : protocol_(protocol), pool_(pool) {
    if (pool_ != nullptr) protocol_.set_pool(pool_);
  }

  /// General conv2d over the protocol: any stride >= 1, any padding, spatial
  /// tiling as needed. `stream_base` offsets every HConv unit's RNG stream:
  /// two runs with distinct bases draw disjoint mask/encryption streams
  /// (bases must be >= 2^32 apart; serve uses request index << 32), while
  /// the same base reproduces the same shares bit-for-bit.
  ConvRunnerResult run(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                       std::size_t stride, std::size_t pad, std::uint64_t stream_base = 0);

  /// Precompute the weight plan for activations of shape (in_c, in_h, in_w):
  /// phase kernels plus per-tile-shape weight spectra. Requests served with
  /// the plan skip the dominant weight-transform phase yet produce bit-
  /// identical results to plan-less runs (the spectra are deterministic).
  std::shared_ptr<const ConvPlan> prepare(std::size_t in_c, std::size_t in_h, std::size_t in_w,
                                          const tensor::Tensor4& weights, std::size_t stride,
                                          std::size_t pad) const;

  /// Run against a prepared plan. x must have the plan's shape
  /// (std::invalid_argument otherwise). Bit-identical to
  /// run(x, weights, stride, pad, stream_base) with the plan's weights.
  ConvRunnerResult run(const tensor::Tensor3& x, const ConvPlan& plan,
                       std::uint64_t stream_base = 0);

  /// Run a same-plan batch: result[i] is bit-identical to
  /// run(xs[i], plan, stream_bases[i]). Requires xs.size() ==
  /// stream_bases.size(). Each request's HConv units route their encrypt and
  /// decrypt transforms through the batched SoA NTT entry points (scratch
  /// from the worker's thread-local arena — zero steady-state allocations in
  /// the transform layer), so a warm plan serves the batch without the
  /// per-polynomial twiddle reload the per-request path would pay. This is
  /// the call the serving layer's plan-batch dispatch drains into.
  std::vector<ConvRunnerResult> run_batch(std::span<const tensor::Tensor3> xs,
                                          const ConvPlan& plan,
                                          std::span<const std::uint64_t> stream_bases);

 private:
  /// Stride-1 valid conv with spatial tiling; HConv unit i draws RNG stream
  /// stream_base + i. `phase` (optional) supplies prepared spectra per tile
  /// patch shape.
  ConvRunnerResult run_stride1(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                               std::uint64_t stream_base, const ConvPlan::Phase* phase = nullptr);

  ConvRunnerResult run_padded(const tensor::Tensor3& padded, const tensor::Tensor4& weights,
                              std::size_t stride, std::uint64_t stream_base, const ConvPlan* plan);

  HConvProtocol& protocol_;
  core::ThreadPool* pool_ = nullptr;
};

}  // namespace flash::protocol
