// General convolution over the one-round protocol: padding, stride
// decomposition and spatial tiling on top of the stride-1 HConv core.
//
// * 'same'/custom padding is applied to the cleartext input before sharing
//   (both parties know the geometry; zeros carry no information).
// * A stride-s convolution decomposes into up to s^2 stride-1 sub-
//   convolutions over phase-subsampled inputs (the decomposition the tiling
//   planner models); each phase's result *shares* are summed locally, so the
//   decomposition costs no extra communication rounds.
// * Inputs whose patch exceeds the polynomial capacity are split into
//   overlapping spatial tiles (halo = kernel - 1).
//
// This is what lets the HE/2PC path run every ResNet layer shape, not just
// the ones that fit a single polynomial.
#pragma once

#include "protocol/hconv_protocol.hpp"

namespace flash::protocol {

struct ConvRunnerResult {
  tensor::Tensor3 client_share;  // mod-t share values stored as i64
  tensor::Tensor3 server_share;
  std::uint64_t bytes_client_to_server = 0;
  std::uint64_t bytes_server_to_client = 0;
  std::size_t hconv_calls = 0;

  /// Reconstruct the cleartext sum-product tensor.
  tensor::Tensor3 reconstruct(u64 t) const;
};

class ConvRunner {
 public:
  /// pool (optional, non-owning) fans the independent HConv units — stride
  /// phases and spatial tiles — out over threads; each unit also hands the
  /// pool down to HConvProtocol for its per-channel loops. Every unit gets a
  /// deterministic RNG stream id derived from its (phase, tile) position, so
  /// the result is bit-identical to the serial path for a fixed protocol
  /// seed, independent of thread count and scheduling.
  explicit ConvRunner(HConvProtocol& protocol, core::ThreadPool* pool = nullptr)
      : protocol_(protocol), pool_(pool) {
    if (pool_ != nullptr) protocol_.set_pool(pool_);
  }

  /// General conv2d over the protocol: any stride >= 1, any padding, spatial
  /// tiling as needed.
  ConvRunnerResult run(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                       std::size_t stride, std::size_t pad);

 private:
  /// Stride-1 valid conv with spatial tiling; HConv unit i draws RNG stream
  /// stream_base + i.
  ConvRunnerResult run_stride1(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                               std::uint64_t stream_base);

  HConvProtocol& protocol_;
  core::ThreadPool* pool_ = nullptr;
};

}  // namespace flash::protocol
