// GAZELLE-style rotation-based matrix-vector product — the baseline
// approach Cheetah's coefficient encoding (and hence FLASH) avoids.
//
// With SIMD batching, y = W x is computed by the diagonal method:
//     y = sum_d  diag_d(W) (.) rotate(x, d)
// which costs one homomorphic *rotation* (Galois automorphism + key switch)
// per nonzero diagonal. Rotations are the expensive primitive (each is ~a
// key-switch worth of NTTs); the paper's Table I positions Cheetah/FLASH
// against exactly this cost. We implement it fully — batching, Galois keys,
// masking — so the comparison bench counts real operations.
#pragma once

#include "bfv/batch_encoder.hpp"
#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "protocol/secret_sharing.hpp"

namespace flash::protocol {

class GazelleMatVec {
 public:
  /// Requires batching-capable parameters (prime t = 1 mod 2N) and
  /// 2 * in_features <= N/2 (the doubled-input rotation trick).
  GazelleMatVec(const bfv::BfvContext& ctx, std::size_t in_features, std::size_t out_features,
                std::uint64_t seed);

  struct Result {
    std::vector<i64> y;                    // reconstructed result (mod t, centered)
    std::size_t rotations = 0;             // homomorphic rotations performed
    std::size_t plain_mults = 0;           // diagonal (.) ct products
    std::uint64_t bytes_client_to_server = 0;
    std::uint64_t bytes_server_to_client = 0;
  };

  /// Run the full protocol: encrypt x, rotate+multiply+accumulate per
  /// diagonal, mask, decrypt, reconstruct.
  Result run(const std::vector<i64>& x, const std::vector<i64>& w_row_major);

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

 private:
  const bfv::BfvContext& ctx_;
  std::size_t in_features_, out_features_;
  hemath::Sampler sampler_;
  bfv::KeyGenerator keygen_;
  bfv::SecretKey sk_;
  bfv::PublicKey pk_;
  bfv::Encryptor encryptor_;
  bfv::Decryptor decryptor_;
  bfv::Evaluator evaluator_;
  bfv::BatchEncoder encoder_;
  bfv::GaloisKeys galois_keys_;
};

}  // namespace flash::protocol
