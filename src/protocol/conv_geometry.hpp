// The stride/tiling decomposition of a conv plan, shared by execution and
// static analysis.
//
// ConvRunner lowers one strided, padded convolution into a fan-out of
// stride-1 HConv units: each live stride phase is an independent stride-1
// sub-convolution (shares sum locally mod t, which is exact), and each
// phase's output is covered by a grid of square tiles whose input patch
// fits one polynomial. prepare(), run_stride1() and the pipeline certifier
// (protocol/plan_certificate) all go through these helpers, so the unit
// enumeration a certificate reasons about cannot drift from the units the
// runner actually executes.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace flash::protocol {

/// One spatial tile of a stride-1 conv: output window origin + extent.
struct TileTask {
  std::size_t ty, tx, th, tw;
};

/// The spatial tile grid of one stride-1 conv: the largest square output
/// tile whose input patch fits a polynomial, then the row-major task list.
/// Throws std::invalid_argument when even a 1x1 output tile cannot fit.
std::vector<TileTask> tile_grid(std::size_t poly_n, std::size_t in_h, std::size_t in_w,
                                std::size_t kh, std::size_t kw);

/// One live stride phase (offset (a, b) into the kernel), in the fixed
/// order run() dispatches them (phase p owns the stream block
/// [p << 16, (p+1) << 16)).
struct PhaseDef {
  std::size_t a, b, index;
};

/// The live stride phases of a kernel: offsets whose subsampled kernel is
/// non-empty.
std::vector<PhaseDef> live_phases(std::size_t kernel_h, std::size_t kernel_w, std::size_t stride);

/// Subsampled extent along one axis: ceil((full - offset) / s) for
/// full > offset, else 0.
std::size_t phase_extent(std::size_t full, std::size_t s, std::size_t offset);

/// Kernel phase: w_ab[m, c, i, j] = w[m, c, s*i + a, s*j + b].
tensor::Tensor4 kernel_phase(const tensor::Tensor4& w, std::size_t s, std::size_t a,
                             std::size_t b);

/// One HConv unit of a lowered conv plan: a stride phase together with one
/// *distinct* input patch shape of its tile grid (interior tiles all share
/// one shape and therefore one entry; `tile_count` says how many tiles of
/// the grid use it). The unit is exactly what HConvProtocol::run_stream
/// executes and what one PreparedWeights entry of a ConvPlan covers.
struct ConvUnit {
  PhaseDef phase;
  tensor::Tensor4 weights{1, 1, 1, 1};  // phase-subsampled kernel
  std::size_t patch_h = 0, patch_w = 0;
  std::size_t tile_count = 0;
};

/// Enumerate the units of a conv (in_c x in_h x in_w input, `weights`
/// kernel, given stride/pad), in phase-major order. Mirrors
/// ConvRunner::prepare exactly: same phases, same tile grids, same distinct
/// patch shapes.
std::vector<ConvUnit> enumerate_conv_units(std::size_t poly_n, std::size_t in_c,
                                           std::size_t in_h, std::size_t in_w,
                                           const tensor::Tensor4& weights, std::size_t stride,
                                           std::size_t pad);

}  // namespace flash::protocol
