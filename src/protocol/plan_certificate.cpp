#include "protocol/plan_certificate.hpp"

#include <algorithm>
#include <cstdio>

#include "protocol/conv_geometry.hpp"

namespace flash::protocol {

PlanCertificate certify_conv(const bfv::BfvParams& params, bfv::PolyMulBackend backend,
                             const std::optional<fft::FxpFftConfig>& approx_config,
                             std::size_t in_c, std::size_t in_h, std::size_t in_w,
                             const tensor::Tensor4& weights, std::size_t stride,
                             std::size_t pad) {
  PlanCertificate out;
  const std::vector<ConvUnit> units =
      enumerate_conv_units(params.n, in_c, in_h, in_w, weights, stride, pad);

  bool first = true;
  bool all_proven = true;
  bool any_failure = false;
  for (const ConvUnit& u : units) {
    analysis::HConvUnitDesc desc;
    desc.params = params;
    desc.backend = backend;
    desc.approx_config = approx_config;
    desc.in_c = in_c;
    desc.in_h = u.patch_h;
    desc.in_w = u.patch_w;
    desc.weights = u.weights;

    PlanCertificate::Unit unit;
    unit.phase_index = u.phase.index;
    unit.phase_a = u.phase.a;
    unit.phase_b = u.phase.b;
    unit.patch_h = u.patch_h;
    unit.patch_w = u.patch_w;
    unit.tile_count = u.tile_count;
    unit.cert = analysis::certify_hconv_unit(desc);

    using analysis::PipelineVerdict;
    all_proven = all_proven && unit.cert.verdict == PipelineVerdict::kProvenCorrectDecryption;
    any_failure = any_failure || unit.cert.verdict == PipelineVerdict::kFailurePossibleWithWitness;

    if (first || unit.cert.certified_noise_bits > out.overall.certified_noise_bits) {
      out.overall = unit.cert;
      first = false;
    }
    out.overall.witness_noise_bits =
        std::max(out.overall.witness_noise_bits, unit.cert.witness_noise_bits);
    out.overall.worst_case_noise_bits =
        std::max(out.overall.worst_case_noise_bits, unit.cert.worst_case_noise_bits);
    out.overall.transform_overflow_free =
        out.overall.transform_overflow_free && unit.cert.transform_overflow_free;
    out.units.push_back(std::move(unit));
  }

  using analysis::PipelineVerdict;
  if (units.empty()) {
    out.overall.verdict = PipelineVerdict::kInconclusive;
    out.overall.detail = "empty unit decomposition";
  } else if (all_proven) {
    out.overall.verdict = PipelineVerdict::kProvenCorrectDecryption;
  } else if (any_failure) {
    out.overall.verdict = PipelineVerdict::kFailurePossibleWithWitness;
  } else {
    out.overall.verdict = PipelineVerdict::kInconclusive;
  }
  out.overall.margin_bits = out.overall.ceiling_bits - out.overall.certified_noise_bits;
  return out;
}

PlanCertificate certify_plan(const bfv::BfvParams& params, bfv::PolyMulBackend backend,
                             const std::optional<fft::FxpFftConfig>& approx_config,
                             const ConvPlan& plan) {
  return certify_conv(params, backend, approx_config, plan.in_c, plan.in_h, plan.in_w,
                      plan.weights, plan.stride, plan.pad);
}

analysis::PipelineWitness materialize_plan_witness(const bfv::BfvParams& params,
                                                   std::size_t in_c, std::size_t in_h,
                                                   std::size_t in_w) {
  analysis::PipelineWitness w;
  w.activation = tensor::Tensor3(in_c, in_h, in_w);
  const tensor::i64 half = static_cast<tensor::i64>(params.t / 2);
  for (auto& v : w.activation.data()) v = half;
  w.description =
      "all-coefficients t/2 activation: every share slot of every phase/tile wraps "
      "with probability 1/2";
  return w;
}

std::string certificate_json(const std::string& name, const PlanCertificate& cert) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "    {\"name\": \"%s\", \"verdict\": \"%s\", \"ceiling_bits\": %.2f, "
      "\"certified_bits\": %.2f, \"margin_bits\": %.2f, \"witness_bits\": %.2f, "
      "\"worst_case_bits\": %.2f, \"fail_prob_log2\": %.1f, "
      "\"transform_overflow_free\": %s, \"units\": %zu}",
      name.c_str(), analysis::to_string(cert.overall.verdict), cert.overall.ceiling_bits,
      cert.overall.certified_noise_bits, cert.overall.margin_bits,
      cert.overall.witness_noise_bits, cert.overall.worst_case_noise_bits,
      cert.overall.fail_prob_log2, cert.overall.transform_overflow_free ? "true" : "false",
      cert.units.size());
  return buf;
}

}  // namespace flash::protocol
