// Plan-level decryption-correctness certificates.
//
// A strided, padded conv plan decomposes into stride-1 HConv units (one per
// live stride phase x distinct tile patch shape — protocol/conv_geometry.hpp,
// the same enumeration ConvRunner::prepare materializes). Phase shares sum
// locally mod t, which is exact, so the plan decrypts correctly iff every
// unit does: the plan certificate is the per-unit composition of
// analysis::certify_hconv_unit, its verdict the worst unit's.
//
// certificate_json emits a deterministic, diffable record per plan — the
// static-analysis CI job compares it against the committed CERT_baseline.json
// the way perf-smoke diffs BENCH_*.json (tools/flash_analyze --pipeline).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline_certifier.hpp"
#include "protocol/conv_runner.hpp"

namespace flash::protocol {

struct PlanCertificate {
  /// Aggregated verdict: proven iff every unit proved; failure-possible if
  /// any unit has a witness past the ceiling; the binding (worst-margin)
  /// unit's bounds and ledger.
  analysis::PipelineCertificate overall;

  struct Unit {
    std::size_t phase_index = 0, phase_a = 0, phase_b = 0;
    std::size_t patch_h = 0, patch_w = 0;
    std::size_t tile_count = 0;  // tiles of the grid sharing this patch shape
    analysis::PipelineCertificate cert;
  };
  std::vector<Unit> units;

  bool proven() const {
    return overall.verdict == analysis::PipelineVerdict::kProvenCorrectDecryption;
  }
};

/// Certify a conv workload from its spec (no prepared plan needed).
PlanCertificate certify_conv(const bfv::BfvParams& params, bfv::PolyMulBackend backend,
                             const std::optional<fft::FxpFftConfig>& approx_config,
                             std::size_t in_c, std::size_t in_h, std::size_t in_w,
                             const tensor::Tensor4& weights, std::size_t stride,
                             std::size_t pad);

/// Certify a prepared plan (same decomposition by construction).
PlanCertificate certify_plan(const bfv::BfvParams& params, bfv::PolyMulBackend backend,
                             const std::optional<fft::FxpFftConfig>& approx_config,
                             const ConvPlan& plan);

/// The plan-level adversarial activation (all coefficients t/2): feeds every
/// phase/tile of the decomposition the unit-level witness pattern.
analysis::PipelineWitness materialize_plan_witness(const bfv::BfvParams& params,
                                                   std::size_t in_c, std::size_t in_h,
                                                   std::size_t in_w);

/// One deterministic JSON object for the certificate (two-decimal bits, unit
/// count, verdict string). `name` identifies the workload in the baseline.
std::string certificate_json(const std::string& name, const PlanCertificate& cert);

}  // namespace flash::protocol
