#include "protocol/gazelle_matvec.hpp"

#include <stdexcept>

#include "protocol/hconv_protocol.hpp"

namespace flash::protocol {

GazelleMatVec::GazelleMatVec(const bfv::BfvContext& ctx, std::size_t in_features,
                             std::size_t out_features, std::uint64_t seed)
    : ctx_(ctx), in_features_(in_features), out_features_(out_features), sampler_(seed),
      keygen_(ctx_, sampler_), sk_(keygen_.secret_key()), pk_(keygen_.public_key(sk_)),
      encryptor_(ctx_, sampler_), decryptor_(ctx_, sk_),
      evaluator_(ctx_, bfv::PolyMulBackend::kNtt), encoder_(ctx_), galois_keys_([&] {
        // One Galois key per rotation step used by the diagonal method.
        // 8-bit digits keep the key-switch noise small enough that the
        // subsequent multiplication by a *dense* batched plaintext (whose
        // polynomial norm is ~sqrt(N) t/2, far worse than Cheetah's sparse
        // encodings) still decrypts.
        bfv::KeySwitcher switcher(ctx_, sampler_, /*digit_bits=*/8);
        std::vector<hemath::u64> elements;
        for (std::size_t d = 1; d < in_features; ++d) {
          elements.push_back(bfv::galois_element_for_step(static_cast<int>(d), ctx_.params().n));
        }
        return switcher.make_galois_keys(sk_, elements);
      }()) {
  if (out_features_ > in_features_) {
    throw std::invalid_argument("GazelleMatVec: requires out_features <= in_features (pad W)");
  }
  if (2 * in_features_ > encoder_.row_size()) {
    throw std::invalid_argument("GazelleMatVec: requires 2*in_features <= N/2");
  }
}

GazelleMatVec::Result GazelleMatVec::run(const std::vector<i64>& x,
                                         const std::vector<i64>& w_row_major) {
  const auto& p = ctx_.params();
  if (x.size() != in_features_ || w_row_major.size() != in_features_ * out_features_) {
    throw std::invalid_argument("GazelleMatVec::run: size mismatch");
  }
  Result result;

  // Client: batch-encode x twice (the rotation wrap trick) and encrypt.
  std::vector<i64> slots(2 * in_features_);
  for (std::size_t i = 0; i < in_features_; ++i) {
    slots[i] = x[i];
    slots[i + in_features_] = x[i];
  }
  bfv::Ciphertext ct = encryptor_.encrypt(encoder_.encode(slots), pk_);
  result.bytes_client_to_server += ciphertext_bytes(p);

  // Server: accumulate diag_d (.) rotate(ct, d) over all diagonals.
  bfv::Ciphertext acc = ctx_.make_ciphertext();
  bool acc_used = false;
  for (std::size_t d = 0; d < in_features_; ++d) {
    // diag_d[j] = W[j][(j + d) mod in_f] for j < out_f; skip zero diagonals.
    std::vector<i64> diag(2 * in_features_, 0);
    bool nonzero = false;
    for (std::size_t j = 0; j < out_features_; ++j) {
      const i64 v = w_row_major[j * in_features_ + (j + d) % in_features_];
      diag[j] = v;
      nonzero = nonzero || v != 0;
    }
    if (!nonzero) continue;

    bfv::Ciphertext rotated = ct;
    if (d != 0) {
      rotated = evaluator_.rotate_rows(ct, static_cast<int>(d), galois_keys_);
      ++result.rotations;
    }
    const bfv::Ciphertext term = evaluator_.multiply_plain(rotated, encoder_.encode(diag));
    ++result.plain_mults;
    if (acc_used) {
      evaluator_.add_inplace(acc, term);
    } else {
      acc = term;
      acc_used = true;
    }
  }

  // Server: mask; client: decrypt; reconstruct.
  std::vector<i64> mask_slots(encoder_.slots());
  for (auto& v : mask_slots) {
    v = hemath::to_signed(sampler_.uniform_mod(p.t), p.t);
  }
  const bfv::Plaintext mask = encoder_.encode(mask_slots);
  evaluator_.sub_plain_inplace(acc, mask);
  result.bytes_server_to_client += ciphertext_bytes(p);

  const std::vector<i64> decoded = encoder_.decode(decryptor_.decrypt(acc));
  result.y.resize(out_features_);
  for (std::size_t j = 0; j < out_features_; ++j) {
    const hemath::u64 client = hemath::from_signed(decoded[j], p.t);
    const hemath::u64 server = hemath::from_signed(mask_slots[j], p.t);
    result.y[j] = hemath::to_signed(hemath::add_mod(client, server, p.t), p.t);
  }
  return result;
}

}  // namespace flash::protocol
