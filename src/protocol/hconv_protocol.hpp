// One-round hybrid HE/2PC homomorphic convolution (paper Fig. 1 flow).
//
// The client holds {x}^C and the key pair; the server holds {x}^S, the
// weights and a fresh random mask s:
//
//   client:  ct = Enc({x}^C)                                     -> server
//   server:  acc_m = (ct ⊞ {x}^S) ⊠ w_m ⊟ s_m                    -> client
//   client:  {y}^C = extract(Dec(acc_m)),  server: {y}^S = extract(s_m)
//
// with y = {y}^C + {y}^S (mod t) the exact convolution sum-products. Both
// parties run in-process; message sizes are counted, and each pipeline phase
// is wall-clock profiled (this is the Fig. 1 latency-breakdown instrument).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "bfv/encrypt.hpp"
#include "bfv/evaluator.hpp"
#include "core/thread_pool.hpp"
#include "encoding/encoder.hpp"
#include "protocol/secret_sharing.hpp"
#include "tensor/conv.hpp"

namespace flash::protocol {

/// Wall-clock seconds per pipeline phase plus message sizes.
struct HConvProfile {
  double share_encode_s = 0;
  double encrypt_s = 0;
  double weight_transform_s = 0;
  double cipher_transform_mul_s = 0;  // ct transforms + pointwise + inverse
  double mask_s = 0;
  double decrypt_s = 0;
  std::uint64_t bytes_client_to_server = 0;
  std::uint64_t bytes_server_to_client = 0;

  double total_s() const {
    return share_encode_s + encrypt_s + weight_transform_s + cipher_transform_mul_s + mask_s +
           decrypt_s;
  }
};

struct HConvResult {
  /// Shares of the M x out_h x out_w sum-product tensor, flattened per
  /// output channel (mod t).
  std::vector<std::vector<u64>> client_share;
  std::vector<std::vector<u64>> server_share;
  std::size_t out_h = 0, out_w = 0;
  HConvProfile profile;
  /// Engine counter delta across this run. Exact when runs are sequential;
  /// when several runs share one protocol concurrently the global engine
  /// totals stay exact (atomics) but per-run attribution overlaps.
  bfv::PolyMulCounters ops;

  /// Reconstruct the cleartext result tensor (centered mod t).
  tensor::Tensor3 reconstruct(u64 t) const;
};

class HConvProtocol {
 public:
  /// Weight spectra precomputed for one (activation geometry, weights) pair.
  /// Transforming the weight polynomials is the dominant server-side cost of
  /// an HConv (paper Fig. 1), yet the spectra are a pure function of the
  /// weights and the encoder geometry — a serving layer that sees many
  /// requests against the same layer computes them once and reuses them.
  /// Instances are immutable after prepare_weights() returns and safe to
  /// share across threads and concurrent run_stream() calls.
  struct PreparedWeights {
    std::size_t in_channels = 0, in_h = 0, in_w = 0;  // activation geometry
    std::size_t out_channels = 0, kh = 0, kw = 0;     // weight geometry
    /// spec[m][tile] — exactly the wspec the non-cached path computes.
    std::vector<std::vector<bfv::PlainSpectrum>> spec;

    bool matches(const tensor::Tensor3& x, const tensor::Tensor4& w) const {
      return in_channels == x.channels() && in_h == x.height() && in_w == x.width() &&
             out_channels == w.out_channels() && kh == w.kernel_h() && kw == w.kernel_w();
    }
  };
  /// backend selects the server's PolyMul datapath (NTT = CPU baseline,
  /// kApproxFft = the FLASH datapath). pool (optional, non-owning)
  /// parallelizes the per-tile and per-output-channel loops; null = serial.
  ///
  /// Concurrency model: keys and the evaluator are built once and then only
  /// read (the engine's counters are atomic); every run() draws all of its
  /// randomness from streams derived from (seed, stream id, task index), so
  /// concurrent run() calls are race-free and a fixed seed reproduces the
  /// same shares/masks regardless of thread count or scheduling.
  HConvProtocol(const bfv::BfvContext& ctx, bfv::PolyMulBackend backend,
                std::optional<fft::FxpFftConfig> approx_config, std::uint64_t seed,
                core::ThreadPool* pool = nullptr);

  void set_pool(core::ThreadPool* pool) { pool_ = pool; }
  core::ThreadPool* pool() const { return pool_; }

  /// Run a stride-1 valid convolution over a pre-padded input. The input is
  /// secret-shared internally (the caller plays both parties). Each call
  /// consumes one RNG stream id from an internal counter.
  HConvResult run(const tensor::Tensor3& x, const tensor::Tensor4& weights);

  /// Same, with an explicit RNG stream id. Callers that fan HConvs out over
  /// a pool (ConvRunner) assign ids deterministically per task, making the
  /// parallel result bit-identical to the serial one.
  ///
  /// `cached` (optional) supplies the weight spectra from prepare_weights();
  /// it must match (x, weights) geometry (std::invalid_argument otherwise).
  /// The transform of the weight values themselves is deterministic, so a
  /// cached run is bit-identical to an uncached one — the cache only moves
  /// the weight_transform phase out of the request's critical path (its
  /// profile entry reads 0 and its engine ops are attributed to
  /// prepare_weights' caller).
  HConvResult run_stream(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                         std::uint64_t stream, const PreparedWeights* cached = nullptr);

  /// Precompute the weight spectra for activations of shape
  /// (weights.in_channels(), in_h, in_w). Fans out over the pool when set.
  std::shared_ptr<const PreparedWeights> prepare_weights(std::size_t in_h, std::size_t in_w,
                                                         const tensor::Tensor4& weights) const;

  /// Fully-connected layer: y = W x over the same one-round protocol, using
  /// the matrix-vector coefficient encoding (Table IV's FC head).
  struct MatVecResult {
    std::vector<u64> client_share;  // mod t, length out_features
    std::vector<u64> server_share;
    HConvProfile profile;
    std::vector<i64> reconstruct(u64 t) const {
      return protocol::reconstruct(client_share, server_share, t);
    }
  };
  MatVecResult run_matvec(const std::vector<i64>& x, const std::vector<i64>& w_row_major,
                          std::size_t out_features);

  const bfv::BfvContext& context() const { return ctx_; }

 private:
  const bfv::BfvContext& ctx_;
  std::uint64_t seed_;
  hemath::Sampler keygen_sampler_;  // consumed at construction only
  bfv::KeyGenerator keygen_;
  bfv::SecretKey sk_;
  bfv::PublicKey pk_;
  bfv::PreparedPublicKey pk_prepared_;  // NTT-domain pk; encrypt fast path
  bfv::Decryptor decryptor_;
  bfv::Evaluator evaluator_;
  core::ThreadPool* pool_ = nullptr;        // non-owning
  std::atomic<std::uint64_t> next_stream_;  // default stream ids for run()
};

/// Size in bytes of one ciphertext on the wire (2 ring elements, log2(q)
/// bits per coefficient, byte-aligned).
std::uint64_t ciphertext_bytes(const bfv::BfvParams& params);

}  // namespace flash::protocol
