#include "protocol/conv_runner.hpp"

#include <atomic>
#include <stdexcept>

#include "encoding/encoder.hpp"
#include "protocol/conv_geometry.hpp"

namespace flash::protocol {

namespace {

tensor::Tensor3 pad_input(const tensor::Tensor3& x, std::size_t pad) {
  if (pad == 0) return x;
  tensor::Tensor3 out(x.channels(), x.height() + 2 * pad, x.width() + 2 * pad);
  for (std::size_t c = 0; c < x.channels(); ++c) {
    for (std::size_t y = 0; y < x.height(); ++y) {
      for (std::size_t xx = 0; xx < x.width(); ++xx) out.at(c, y + pad, xx + pad) = x.at(c, y, xx);
    }
  }
  return out;
}

/// Phase-subsample: x_ab[c, u, v] = x[c, s*u + a, s*v + b].
tensor::Tensor3 subsample(const tensor::Tensor3& x, std::size_t s, std::size_t a, std::size_t b) {
  const std::size_t h = (x.height() > a) ? (x.height() - a + s - 1) / s : 0;
  const std::size_t w = (x.width() > b) ? (x.width() - b + s - 1) / s : 0;
  tensor::Tensor3 out(x.channels(), h, w);
  for (std::size_t c = 0; c < x.channels(); ++c) {
    for (std::size_t u = 0; u < h; ++u) {
      for (std::size_t v = 0; v < w; ++v) out.at(c, u, v) = x.at(c, s * u + a, s * v + b);
    }
  }
  return out;
}

void add_shares_inplace(tensor::Tensor3& acc, const tensor::Tensor3& other, u64 t) {
  for (std::size_t i = 0; i < acc.data().size(); ++i) {
    acc.data()[i] = static_cast<tensor::i64>(
        hemath::add_mod(static_cast<u64>(acc.data()[i]), static_cast<u64>(other.data()[i]), t));
  }
}

// tile_grid / live_phases / phase_extent / kernel_phase live in
// protocol/conv_geometry.{hpp,cpp}: prepare(), run_stride1() and the
// pipeline certifier all share one decomposition, so a plan's (and a
// certificate's) unit enumeration cannot drift from the execution's.

}  // namespace

tensor::Tensor3 ConvRunnerResult::reconstruct(u64 t) const {
  tensor::Tensor3 out(client_share.channels(), client_share.height(), client_share.width());
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] = hemath::to_signed(
        hemath::add_mod(static_cast<u64>(client_share.data()[i]),
                        static_cast<u64>(server_share.data()[i]), t),
        t);
  }
  return out;
}

ConvRunnerResult ConvRunner::run_stride1(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                                         std::uint64_t stream_base, const ConvPlan::Phase* phase) {
  const auto& p = protocol_.context().params();
  const std::size_t kh = weights.kernel_h();
  const std::size_t kw = weights.kernel_w();
  const std::size_t out_h = x.height() - kh + 1;
  const std::size_t out_w = x.width() - kw + 1;

  ConvRunnerResult result;
  result.client_share = tensor::Tensor3(weights.out_channels(), out_h, out_w);
  result.server_share = tensor::Tensor3(weights.out_channels(), out_h, out_w);

  // Every tile writes a disjoint output window and draws a stream id fixed
  // by its grid position, so the parallel result is bit-identical to the
  // serial one.
  const std::vector<TileTask> tasks = tile_grid(p.n, x.height(), x.width(), kh, kw);

  std::atomic<std::uint64_t> bytes_c2s{0}, bytes_s2c{0};
  core::for_range(pool_, tasks.size(), [&](std::size_t i) {
    const TileTask& tk = tasks[i];
    const std::size_t patch_h = tk.th + kh - 1;
    const std::size_t patch_w = tk.tw + kw - 1;
    tensor::Tensor3 patch(x.channels(), patch_h, patch_w);
    for (std::size_t c = 0; c < x.channels(); ++c) {
      for (std::size_t y = 0; y < patch_h; ++y) {
        for (std::size_t xx = 0; xx < patch_w; ++xx) {
          patch.at(c, y, xx) = x.at(c, tk.ty + y, tk.tx + xx);
        }
      }
    }
    const HConvProtocol::PreparedWeights* cached = nullptr;
    if (phase != nullptr) {
      const auto it = phase->tiles.find({patch_h, patch_w});
      if (it == phase->tiles.end()) {
        throw std::invalid_argument("ConvRunner: plan is missing a tile patch shape");
      }
      cached = it->second.get();
    }
    const HConvResult r = protocol_.run_stream(patch, weights, stream_base + i, cached);
    bytes_c2s.fetch_add(r.profile.bytes_client_to_server, std::memory_order_relaxed);
    bytes_s2c.fetch_add(r.profile.bytes_server_to_client, std::memory_order_relaxed);
    for (std::size_t m = 0; m < weights.out_channels(); ++m) {
      std::size_t idx = 0;
      for (std::size_t y = 0; y < tk.th; ++y) {
        for (std::size_t xx = 0; xx < tk.tw; ++xx, ++idx) {
          result.client_share.at(m, tk.ty + y, tk.tx + xx) = static_cast<tensor::i64>(r.client_share[m][idx]);
          result.server_share.at(m, tk.ty + y, tk.tx + xx) = static_cast<tensor::i64>(r.server_share[m][idx]);
        }
      }
    }
  });
  result.hconv_calls = tasks.size();
  result.bytes_client_to_server = bytes_c2s.load();
  result.bytes_server_to_client = bytes_s2c.load();
  return result;
}

ConvRunnerResult ConvRunner::run_padded(const tensor::Tensor3& padded,
                                        const tensor::Tensor4& weights, std::size_t stride,
                                        std::uint64_t stream_base, const ConvPlan* plan) {
  if (stride == 1) {
    return run_stride1(padded, weights, stream_base,
                       plan != nullptr ? &plan->phases.front() : nullptr);
  }

  const auto& p = protocol_.context().params();
  const std::size_t out_h = (padded.height() - weights.kernel_h()) / stride + 1;
  const std::size_t out_w = (padded.width() - weights.kernel_w()) / stride + 1;

  ConvRunnerResult total;
  total.client_share = tensor::Tensor3(weights.out_channels(), out_h, out_w);
  total.server_share = tensor::Tensor3(weights.out_channels(), out_h, out_w);

  // Each live phase is an independent stride-1 sub-convolution, so they fan
  // out over the pool. Phase p owns the stream block
  // [stream_base + (p << 16), stream_base + ((p+1) << 16)) for its tiles.
  const std::vector<PhaseDef> phases = live_phases(weights.kernel_h(), weights.kernel_w(), stride);

  std::vector<ConvRunnerResult> phase_results(phases.size());
  core::for_range(pool_, phases.size(), [&](std::size_t i) {
    const PhaseDef& ph = phases[i];
    const ConvPlan::Phase* planned = plan != nullptr ? &plan->phases[i] : nullptr;
    const tensor::Tensor4 wp =
        planned != nullptr ? planned->weights : kernel_phase(weights, stride, ph.a, ph.b);
    const tensor::Tensor3 xp = subsample(padded, stride, ph.a, ph.b);
    phase_results[i] = run_stride1(xp, wp, stream_base + (ph.index << 16), planned);
  });

  // Crop each phase to the strided output extent and sum the shares locally
  // (mod t) in fixed phase order. Modular addition is exact, so any order
  // gives the same bits; fixed order keeps it auditable.
  bool first = true;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    ConvRunnerResult& phase = phase_results[i];
    total.hconv_calls += phase.hconv_calls;
    total.bytes_client_to_server += phase.bytes_client_to_server;
    total.bytes_server_to_client += phase.bytes_server_to_client;
    tensor::Tensor3 crop_c(weights.out_channels(), out_h, out_w);
    tensor::Tensor3 crop_s(weights.out_channels(), out_h, out_w);
    for (std::size_t m = 0; m < weights.out_channels(); ++m) {
      for (std::size_t y = 0; y < out_h; ++y) {
        for (std::size_t xx = 0; xx < out_w; ++xx) {
          crop_c.at(m, y, xx) = phase.client_share.at(m, y, xx);
          crop_s.at(m, y, xx) = phase.server_share.at(m, y, xx);
        }
      }
    }
    if (first) {
      total.client_share = crop_c;
      total.server_share = crop_s;
      first = false;
    } else {
      add_shares_inplace(total.client_share, crop_c, p.t);
      add_shares_inplace(total.server_share, crop_s, p.t);
    }
  }
  return total;
}

ConvRunnerResult ConvRunner::run(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                                 std::size_t stride, std::size_t pad, std::uint64_t stream_base) {
  if (stride == 0) throw std::invalid_argument("ConvRunner: stride must be >= 1");
  return run_padded(pad_input(x, pad), weights, stride, stream_base, nullptr);
}

std::shared_ptr<const ConvPlan> ConvRunner::prepare(std::size_t in_c, std::size_t in_h,
                                                    std::size_t in_w,
                                                    const tensor::Tensor4& weights,
                                                    std::size_t stride, std::size_t pad) const {
  if (stride == 0) throw std::invalid_argument("ConvRunner: stride must be >= 1");
  if (in_c != weights.in_channels()) {
    throw std::invalid_argument("ConvRunner: plan channels do not match the weights");
  }
  const auto& p = protocol_.context().params();
  const std::size_t padded_h = in_h + 2 * pad;
  const std::size_t padded_w = in_w + 2 * pad;

  auto plan = std::make_shared<ConvPlan>();
  plan->in_c = in_c;
  plan->in_h = in_h;
  plan->in_w = in_w;
  plan->stride = stride;
  plan->pad = pad;
  plan->weights = weights;

  if (stride == 1) {
    ConvPlan::Phase phase;
    phase.weights = weights;
    plan->phases.push_back(std::move(phase));
  } else {
    for (const PhaseDef& ph : live_phases(weights.kernel_h(), weights.kernel_w(), stride)) {
      ConvPlan::Phase phase;
      phase.a = ph.a;
      phase.b = ph.b;
      phase.index = ph.index;
      phase.weights = kernel_phase(weights, stride, ph.a, ph.b);
      plan->phases.push_back(std::move(phase));
    }
  }

  // Walk the exact tile grid run_stride1 will walk and prepare one spectrum
  // set per distinct patch shape (interior tiles all share one entry).
  for (ConvPlan::Phase& phase : plan->phases) {
    const std::size_t kh = phase.weights.kernel_h();
    const std::size_t kw = phase.weights.kernel_w();
    const std::size_t h = stride == 1 ? padded_h : phase_extent(padded_h, stride, phase.a);
    const std::size_t w = stride == 1 ? padded_w : phase_extent(padded_w, stride, phase.b);
    for (const TileTask& tk : tile_grid(p.n, h, w, kh, kw)) {
      const std::pair<std::size_t, std::size_t> shape{tk.th + kh - 1, tk.tw + kw - 1};
      if (phase.tiles.contains(shape)) continue;
      phase.tiles[shape] = protocol_.prepare_weights(shape.first, shape.second, phase.weights);
    }
  }
  return plan;
}

ConvRunnerResult ConvRunner::run(const tensor::Tensor3& x, const ConvPlan& plan,
                                 std::uint64_t stream_base) {
  if (x.channels() != plan.in_c || x.height() != plan.in_h || x.width() != plan.in_w) {
    throw std::invalid_argument("ConvRunner: activation shape does not match the plan");
  }
  return run_padded(pad_input(x, plan.pad), plan.weights, plan.stride, stream_base, &plan);
}

std::vector<ConvRunnerResult> ConvRunner::run_batch(std::span<const tensor::Tensor3> xs,
                                                    const ConvPlan& plan,
                                                    std::span<const std::uint64_t> stream_bases) {
  if (xs.size() != stream_bases.size()) {
    throw std::invalid_argument("ConvRunner: batch activations/streams size mismatch");
  }
  std::vector<ConvRunnerResult> results;
  results.reserve(xs.size());
  // Requests stay sequential (each one fans its own units over the pool and
  // owns its stream block); the cross-request win is the warm plan and the
  // warm per-thread transform state, and each unit's own transforms already
  // run batched (see HConvProtocol::run_stream).
  for (std::size_t i = 0; i < xs.size(); ++i) {
    results.push_back(run(xs[i], plan, stream_bases[i]));
  }
  return results;
}

}  // namespace flash::protocol
