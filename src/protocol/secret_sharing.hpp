// Arithmetic secret sharing over Z_t (paper §II-B).
//
// An l-bit value x is held as x = {x}^C + {x}^S (mod t) with the client share
// uniformly random. The plaintext modulus of the BFV instance doubles as the
// sharing modulus, so shares embed directly into plaintext polynomials.
#pragma once

#include <random>
#include <vector>

#include "hemath/modular.hpp"
#include "tensor/tensor.hpp"

namespace flash::protocol {

using hemath::i64;
using hemath::u64;

struct SharedVector {
  std::vector<u64> client;  // uniform mod t
  std::vector<u64> server;  // x - client mod t
};

/// Split signed values into additive shares mod t.
SharedVector share(const std::vector<i64>& values, u64 t, std::mt19937_64& rng);

/// Recombine shares into centered signed values.
std::vector<i64> reconstruct(const std::vector<u64>& a, const std::vector<u64>& b, u64 t);

/// Share a tensor channel-wise (flattened row-major).
SharedVector share_tensor(const tensor::Tensor3& x, u64 t, std::mt19937_64& rng);

}  // namespace flash::protocol
