#include "protocol/hconv_protocol.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "encoding/matvec.hpp"

namespace flash::protocol {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Sub-stream tags: every random draw inside one run() is rooted at
// derive(seed, stream) and then split per purpose and per task index, so
// the draw a task makes never depends on scheduling order.
constexpr std::uint64_t kStreamShare = 0;
constexpr std::uint64_t kStreamEncrypt = 1;  // + tile (or chunk) index
constexpr std::uint64_t kStreamMask = 2;     // + output channel index

std::uint64_t substream(std::uint64_t run_seed, std::uint64_t purpose, std::uint64_t index) {
  return hemath::derive_stream_seed(run_seed, (purpose << 32) + index);
}
}  // namespace

std::uint64_t ciphertext_bytes(const bfv::BfvParams& params) {
  const std::uint64_t bits_per_coeff =
      static_cast<std::uint64_t>(std::ceil(std::log2(static_cast<double>(params.q))));
  return 2 * params.n * ((bits_per_coeff + 7) / 8);
}

tensor::Tensor3 HConvResult::reconstruct(u64 t) const {
  tensor::Tensor3 out(client_share.size(), out_h, out_w);
  for (std::size_t m = 0; m < client_share.size(); ++m) {
    const std::vector<i64> vals = protocol::reconstruct(client_share[m], server_share[m], t);
    std::size_t idx = 0;
    for (std::size_t y = 0; y < out_h; ++y) {
      for (std::size_t x = 0; x < out_w; ++x) out.at(m, y, x) = vals[idx++];
    }
  }
  return out;
}

HConvProtocol::HConvProtocol(const bfv::BfvContext& ctx, bfv::PolyMulBackend backend,
                             std::optional<fft::FxpFftConfig> approx_config, std::uint64_t seed,
                             core::ThreadPool* pool)
    : ctx_(ctx),
      seed_(seed),
      keygen_sampler_(seed),
      keygen_(ctx_, keygen_sampler_),
      sk_(keygen_.secret_key()),
      pk_(keygen_.public_key(sk_)),
      pk_prepared_(bfv::prepare_public_key(ctx, pk_)),
      decryptor_(ctx_, sk_),
      evaluator_(ctx_, backend, std::move(approx_config)),
      pool_(pool),
      next_stream_(0) {}

HConvResult HConvProtocol::run(const tensor::Tensor3& x, const tensor::Tensor4& weights) {
  return run_stream(x, weights, next_stream_.fetch_add(1, std::memory_order_relaxed));
}

std::shared_ptr<const HConvProtocol::PreparedWeights> HConvProtocol::prepare_weights(
    std::size_t in_h, std::size_t in_w, const tensor::Tensor4& weights) const {
  const auto& p = ctx_.params();
  encoding::ConvEncoder enc(p.n, weights.in_channels(), in_h, in_w, weights.kernel_h(),
                            weights.kernel_w());
  const std::size_t tiles = enc.geometry().channel_tiles();
  const std::size_t out_channels = weights.out_channels();

  auto prepared = std::make_shared<PreparedWeights>();
  prepared->in_channels = weights.in_channels();
  prepared->in_h = in_h;
  prepared->in_w = in_w;
  prepared->out_channels = out_channels;
  prepared->kh = weights.kernel_h();
  prepared->kw = weights.kernel_w();
  prepared->spec.assign(out_channels, std::vector<bfv::PlainSpectrum>(tiles));
  // Same (m, tile) fan-out — and the same encode + transform per pair — as
  // the inline weight loop of run_stream, so cached and uncached spectra are
  // bit-identical.
  core::for_range(pool_, out_channels * tiles, [&](std::size_t idx) {
    const std::size_t m = idx / tiles;
    const std::size_t tile = idx % tiles;
    bfv::Plaintext pt = ctx_.make_plaintext();
    const std::vector<i64> coeffs = enc.encode_weight(weights, m, tile);
    for (std::size_t i = 0; i < p.n; ++i) pt.poly[i] = hemath::from_signed(coeffs[i], p.t);
    prepared->spec[m][tile] = evaluator_.transform_plain(pt);
  });
  return prepared;
}

HConvResult HConvProtocol::run_stream(const tensor::Tensor3& x, const tensor::Tensor4& weights,
                                      std::uint64_t stream, const PreparedWeights* cached) {
  const auto& p = ctx_.params();
  if (cached != nullptr && !cached->matches(x, weights)) {
    throw std::invalid_argument("HConvProtocol: prepared weights do not match this request");
  }
  encoding::ConvEncoder enc(p.n, x.channels(), x.height(), x.width(), weights.kernel_h(), weights.kernel_w());
  const auto& geo = enc.geometry();
  const std::size_t tiles = geo.channel_tiles();
  const std::size_t out_channels = weights.out_channels();
  const std::uint64_t run_seed = hemath::derive_stream_seed(seed_ ^ 0x9e3779b97f4a7c15ULL, stream);

  HConvResult result;
  result.out_h = geo.out_h();
  result.out_w = geo.out_w();
  const bfv::PolyMulCounters ops_before = evaluator_.engine().counters();

  auto t0 = std::chrono::steady_clock::now();

  // --- Sharing: both parties obtain additive shares of the activation.
  // flash-lint: allow(raw-rng): substream() derives the seed via derive_stream_seed
  std::mt19937_64 share_rng(substream(run_seed, kStreamShare, 0));
  const SharedVector xs = share_tensor(x, p.t, share_rng);
  tensor::Tensor3 x_client(x.channels(), x.height(), x.width());
  tensor::Tensor3 x_server(x.channels(), x.height(), x.width());
  for (std::size_t i = 0; i < xs.client.size(); ++i) {
    x_client.data()[i] = static_cast<i64>(xs.client[i]);
    x_server.data()[i] = static_cast<i64>(xs.server[i]);
  }
  result.profile.share_encode_s += seconds_since(t0);

  // --- Client: encrypt its encoded share, one ciphertext per channel tile.
  // Each tile encrypts under its own derived sampler, so the ciphertext a
  // tile produces is the same whether the loop runs serial or parallel.
  t0 = std::chrono::steady_clock::now();
  std::vector<bfv::Ciphertext> cts(tiles, ctx_.make_ciphertext());
  core::for_range(pool_, tiles, [&](std::size_t tile) {
    bfv::Plaintext pt = ctx_.make_plaintext();
    const std::vector<i64> coeffs = enc.encode_activation(x_client, tile);
    for (std::size_t i = 0; i < p.n; ++i) pt.poly[i] = static_cast<u64>(coeffs[i]) % p.t;
    hemath::Sampler tile_sampler(substream(run_seed, kStreamEncrypt, tile));
    bfv::Encryptor encryptor(ctx_, tile_sampler);
    cts[tile] = encryptor.encrypt(pt, pk_prepared_);
  });
  result.profile.bytes_client_to_server += tiles * ciphertext_bytes(p);
  result.profile.encrypt_s += seconds_since(t0);

  // --- Server: fold in its own share (ct ⊞ {x}^S).
  t0 = std::chrono::steady_clock::now();
  core::for_range(pool_, tiles, [&](std::size_t tile) {
    bfv::Plaintext pt = ctx_.make_plaintext();
    const std::vector<i64> coeffs = enc.encode_activation(x_server, tile);
    for (std::size_t i = 0; i < p.n; ++i) pt.poly[i] = static_cast<u64>(coeffs[i]) % p.t;
    evaluator_.add_plain_inplace(cts[tile], pt);
  });
  result.profile.share_encode_s += seconds_since(t0);

  // --- Server: weight transforms (the FLASH-accelerated hot loop),
  // embarrassingly parallel over (output channel, tile) pairs. Workers rely
  // on two per-thread/per-process guarantees from the transform layer: the
  // first touch of a transform config builds its tables outside the cache
  // shard lock (concurrent first-touches here used to convoy the pool), and
  // each worker's transform scratch comes from its own thread-local arena,
  // so the steady-state tile loop does not allocate.
  t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<bfv::PlainSpectrum>> wspec_local;
  if (cached == nullptr) {
    wspec_local.assign(out_channels, std::vector<bfv::PlainSpectrum>(tiles));
    core::for_range(pool_, out_channels * tiles, [&](std::size_t idx) {
      const std::size_t m = idx / tiles;
      const std::size_t tile = idx % tiles;
      bfv::Plaintext pt = ctx_.make_plaintext();
      const std::vector<i64> coeffs = enc.encode_weight(weights, m, tile);
      for (std::size_t i = 0; i < p.n; ++i) pt.poly[i] = hemath::from_signed(coeffs[i], p.t);
      wspec_local[m][tile] = evaluator_.transform_plain(pt);
    });
    result.profile.weight_transform_s += seconds_since(t0);
  }
  const std::vector<std::vector<bfv::PlainSpectrum>>& wspec =
      cached != nullptr ? cached->spec : wspec_local;

  // --- Server: ct ⊠ w through the spectral pipeline of Fig. 4(b): each
  // ciphertext is transformed once (shared across all output channels),
  // channel tiles accumulate point-wise, and one inverse transform produces
  // each output ciphertext. Each output channel owns its accumulator, so
  // the channel loop parallelizes without sharing mutable state.
  t0 = std::chrono::steady_clock::now();
  std::vector<bfv::Evaluator::CiphertextSpectrum> ct_specs(tiles);
  core::for_range(pool_, tiles, [&](std::size_t tile) {
    ct_specs[tile] = evaluator_.transform_ciphertext(cts[tile]);
  });
  std::vector<bfv::Ciphertext> acc(out_channels, ctx_.make_ciphertext());
  core::for_range(pool_, out_channels, [&](std::size_t m) {
    bfv::Evaluator::CiphertextAccumulator accum;
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      evaluator_.multiply_accumulate(ct_specs[tile], wspec[m][tile], accum);
    }
    acc[m] = evaluator_.finalize(accum);
  });
  result.profile.cipher_transform_mul_s += seconds_since(t0);

  // --- Server: mask (⊟ s) and "send" back; keep its own share. One derived
  // mask stream per output channel (scheduling-independent mask values).
  t0 = std::chrono::steady_clock::now();
  const std::vector<std::size_t> positions = enc.output_positions();
  result.server_share.resize(out_channels);
  core::for_range(pool_, out_channels, [&](std::size_t m) {
    hemath::Sampler mask_sampler(substream(run_seed, kStreamMask, m));
    bfv::Plaintext mask = ctx_.make_plaintext();
    mask.poly = mask_sampler.uniform_poly(p.t, p.n);
    evaluator_.sub_plain_inplace(acc[m], mask);
    auto& share = result.server_share[m];
    share.reserve(positions.size());
    for (std::size_t pos : positions) share.push_back(mask.poly[pos]);
  });
  result.profile.bytes_server_to_client += out_channels * ciphertext_bytes(p);
  result.profile.mask_s += seconds_since(t0);

  // --- Client: decrypt and extract. All output channels decrypt in one
  // batch so their NTTs run on the SoA batched path (bit-identical to the
  // per-channel loop this replaces).
  t0 = std::chrono::steady_clock::now();
  const std::vector<bfv::Plaintext> decs = decryptor_.decrypt_batch(acc);
  result.client_share.resize(out_channels);
  core::for_range(pool_, out_channels, [&](std::size_t m) {
    auto& share = result.client_share[m];
    share.reserve(positions.size());
    for (std::size_t pos : positions) share.push_back(decs[m].poly[pos]);
  });
  result.profile.decrypt_s += seconds_since(t0);

  result.ops = evaluator_.engine().counters() - ops_before;
  return result;
}


HConvProtocol::MatVecResult HConvProtocol::run_matvec(const std::vector<i64>& x,
                                                      const std::vector<i64>& w_row_major,
                                                      std::size_t out_features) {
  const auto& p = ctx_.params();
  encoding::MatVecEncoder enc(p.n, x.size(), out_features);
  MatVecResult result;
  const std::uint64_t run_seed =
      hemath::derive_stream_seed(seed_ ^ 0xd1b54a32d192ed03ULL,
                                 next_stream_.fetch_add(1, std::memory_order_relaxed));

  auto t0 = std::chrono::steady_clock::now();
  // flash-lint: allow(raw-rng): substream() derives the seed via derive_stream_seed
  std::mt19937_64 share_rng(substream(run_seed, kStreamShare, 0));
  const SharedVector xs = share(x, p.t, share_rng);
  result.profile.share_encode_s += seconds_since(t0);

  // Client: encode + encrypt its share (one polynomial; the vector fits by
  // MatVecEncoder's constructor contract).
  t0 = std::chrono::steady_clock::now();
  std::vector<i64> client_vals(x.size()), server_vals(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    client_vals[i] = static_cast<i64>(xs.client[i]);
    server_vals[i] = static_cast<i64>(xs.server[i]);
  }
  bfv::Plaintext pt_c = ctx_.make_plaintext();
  const std::vector<i64> enc_c = enc.encode_vector(client_vals);
  for (std::size_t i = 0; i < p.n; ++i) pt_c.poly[i] = static_cast<u64>(enc_c[i]) % p.t;
  hemath::Sampler enc_sampler(substream(run_seed, kStreamEncrypt, 0));
  bfv::Encryptor encryptor(ctx_, enc_sampler);
  bfv::Ciphertext ct = encryptor.encrypt(pt_c, pk_prepared_);
  result.profile.bytes_client_to_server += ciphertext_bytes(p);
  result.profile.encrypt_s += seconds_since(t0);

  // Server: fold in its share.
  t0 = std::chrono::steady_clock::now();
  bfv::Plaintext pt_s = ctx_.make_plaintext();
  const std::vector<i64> enc_s = enc.encode_vector(server_vals);
  for (std::size_t i = 0; i < p.n; ++i) pt_s.poly[i] = static_cast<u64>(enc_s[i]) % p.t;
  evaluator_.add_plain_inplace(ct, pt_s);
  result.profile.share_encode_s += seconds_since(t0);

  // Server: matrix chunks through the spectral pipeline, mask, extract.
  // Chunks are independent (the ciphertext spectrum is shared read-only and
  // each chunk has its own mask stream), so they fan out over the pool;
  // per-chunk shares are concatenated in chunk order afterwards.
  t0 = std::chrono::steady_clock::now();
  const bfv::Evaluator::CiphertextSpectrum ct_spec = evaluator_.transform_ciphertext(ct);
  const std::size_t chunks = enc.poly_count();
  std::vector<std::vector<u64>> chunk_server(chunks), chunk_client(chunks);
  core::for_range(pool_, chunks, [&](std::size_t chunk) {
    bfv::Plaintext ptw = ctx_.make_plaintext();
    const std::vector<i64> wv = enc.encode_matrix(w_row_major, chunk);
    for (std::size_t i = 0; i < p.n; ++i) ptw.poly[i] = hemath::from_signed(wv[i], p.t);
    const bfv::PlainSpectrum wspec = evaluator_.transform_plain(ptw);

    bfv::Evaluator::CiphertextAccumulator accum;
    evaluator_.multiply_accumulate(ct_spec, wspec, accum);
    bfv::Ciphertext out = evaluator_.finalize(accum);

    hemath::Sampler mask_sampler(substream(run_seed, kStreamMask, chunk));
    bfv::Plaintext mask = ctx_.make_plaintext();
    mask.poly = mask_sampler.uniform_poly(p.t, p.n);
    evaluator_.sub_plain_inplace(out, mask);

    const bfv::Plaintext dec = decryptor_.decrypt(out);
    for (std::size_t pos : enc.output_positions(chunk)) {
      chunk_server[chunk].push_back(mask.poly[pos]);
      chunk_client[chunk].push_back(dec.poly[pos]);
    }
  });
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    result.server_share.insert(result.server_share.end(), chunk_server[chunk].begin(),
                               chunk_server[chunk].end());
    result.client_share.insert(result.client_share.end(), chunk_client[chunk].begin(),
                               chunk_client[chunk].end());
  }
  result.profile.bytes_server_to_client += chunks * ciphertext_bytes(p);
  result.profile.cipher_transform_mul_s += seconds_since(t0);
  result.client_share.resize(out_features);
  result.server_share.resize(out_features);
  return result;
}

}  // namespace flash::protocol
