#include "protocol/secret_sharing.hpp"

#include <stdexcept>

namespace flash::protocol {

SharedVector share(const std::vector<i64>& values, u64 t, std::mt19937_64& rng) {
  SharedVector out;
  out.client.resize(values.size());
  out.server.resize(values.size());
  std::uniform_int_distribution<u64> dist(0, t - 1);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const u64 x = hemath::from_signed(values[i], t);
    out.client[i] = dist(rng);
    out.server[i] = hemath::sub_mod(x, out.client[i], t);
  }
  return out;
}

std::vector<i64> reconstruct(const std::vector<u64>& a, const std::vector<u64>& b, u64 t) {
  if (a.size() != b.size()) throw std::invalid_argument("reconstruct: size mismatch");
  std::vector<i64> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = hemath::to_signed(hemath::add_mod(a[i], b[i], t), t);
  }
  return out;
}

SharedVector share_tensor(const tensor::Tensor3& x, u64 t, std::mt19937_64& rng) {
  return share(x.data(), t, rng);
}

}  // namespace flash::protocol
