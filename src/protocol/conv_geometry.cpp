#include "protocol/conv_geometry.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "encoding/encoder.hpp"

namespace flash::protocol {

std::vector<TileTask> tile_grid(std::size_t poly_n, std::size_t in_h, std::size_t in_w,
                                std::size_t kh, std::size_t kw) {
  const std::size_t out_h = in_h - kh + 1;
  const std::size_t out_w = in_w - kw + 1;
  std::size_t tile = std::max(out_h, out_w);
  auto fits = [&](std::size_t side) {
    const std::size_t patch_h = std::min(side + kh - 1, in_h);
    const std::size_t patch_w = std::min(side + kw - 1, in_w);
    const encoding::ConvGeometry g{poly_n, 1, patch_h, patch_w, kh, kw};
    return g.channels_per_poly() >= 1;
  };
  while (tile > 1 && !fits(tile)) --tile;
  if (!fits(tile)) throw std::invalid_argument("ConvRunner: kernel too large for polynomial degree");

  std::vector<TileTask> tasks;
  for (std::size_t ty = 0; ty < out_h; ty += tile) {
    for (std::size_t tx = 0; tx < out_w; tx += tile) {
      tasks.push_back({ty, tx, std::min(tile, out_h - ty), std::min(tile, out_w - tx)});
    }
  }
  return tasks;
}

std::vector<PhaseDef> live_phases(std::size_t kernel_h, std::size_t kernel_w, std::size_t stride) {
  std::vector<PhaseDef> phases;
  for (std::size_t a = 0; a < std::min(stride, kernel_h); ++a) {
    for (std::size_t b = 0; b < std::min(stride, kernel_w); ++b) {
      const std::size_t kh = (kernel_h > a) ? (kernel_h - a + stride - 1) / stride : 0;
      const std::size_t kw = (kernel_w > b) ? (kernel_w - b + stride - 1) / stride : 0;
      if (kh == 0 || kw == 0) continue;
      phases.push_back({a, b, phases.size()});
    }
  }
  return phases;
}

std::size_t phase_extent(std::size_t full, std::size_t s, std::size_t offset) {
  return (full > offset) ? (full - offset + s - 1) / s : 0;
}

tensor::Tensor4 kernel_phase(const tensor::Tensor4& w, std::size_t s, std::size_t a,
                             std::size_t b) {
  const std::size_t kh = (w.kernel_h() > a) ? (w.kernel_h() - a + s - 1) / s : 0;
  const std::size_t kw = (w.kernel_w() > b) ? (w.kernel_w() - b + s - 1) / s : 0;
  tensor::Tensor4 out(w.out_channels(), w.in_channels(), kh, kw);
  for (std::size_t m = 0; m < w.out_channels(); ++m) {
    for (std::size_t c = 0; c < w.in_channels(); ++c) {
      for (std::size_t i = 0; i < kh; ++i) {
        for (std::size_t j = 0; j < kw; ++j) out.at(m, c, i, j) = w.at(m, c, s * i + a, s * j + b);
      }
    }
  }
  return out;
}

std::vector<ConvUnit> enumerate_conv_units(std::size_t poly_n, std::size_t in_c,
                                           std::size_t in_h, std::size_t in_w,
                                           const tensor::Tensor4& weights, std::size_t stride,
                                           std::size_t pad) {
  if (stride == 0) throw std::invalid_argument("enumerate_conv_units: stride must be >= 1");
  if (in_c != weights.in_channels()) {
    throw std::invalid_argument("enumerate_conv_units: channels do not match the weights");
  }
  const std::size_t padded_h = in_h + 2 * pad;
  const std::size_t padded_w = in_w + 2 * pad;

  std::vector<ConvUnit> units;
  const std::vector<PhaseDef> phases =
      stride == 1 ? std::vector<PhaseDef>{{0, 0, 0}}
                  : live_phases(weights.kernel_h(), weights.kernel_w(), stride);
  for (const PhaseDef& ph : phases) {
    const tensor::Tensor4 wp =
        stride == 1 ? weights : kernel_phase(weights, stride, ph.a, ph.b);
    const std::size_t kh = wp.kernel_h();
    const std::size_t kw = wp.kernel_w();
    const std::size_t h = stride == 1 ? padded_h : phase_extent(padded_h, stride, ph.a);
    const std::size_t w = stride == 1 ? padded_w : phase_extent(padded_w, stride, ph.b);
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> shape_counts;
    for (const TileTask& tk : tile_grid(poly_n, h, w, kh, kw)) {
      ++shape_counts[{tk.th + kh - 1, tk.tw + kw - 1}];
    }
    for (const auto& [shape, count] : shape_counts) {
      ConvUnit u;
      u.phase = ph;
      u.weights = wp;
      u.patch_h = shape.first;
      u.patch_w = shape.second;
      u.tile_count = count;
      units.push_back(std::move(u));
    }
  }
  return units;
}

}  // namespace flash::protocol
