// Greedy failing-case shrinking.
//
// A reducer mutates one shape knob of a spec toward "smaller" (halve n,
// strip channels, densify the pattern). The shrinker repeatedly applies the
// first reducer whose result still fails the oracle, restarting the reducer
// list after every success, until no reducer makes progress. Because specs
// are tiny value types regenerated deterministically from their seed, every
// intermediate candidate is a complete, reproducible case.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "testing/generators.hpp"

namespace flash::testing {

/// Mutates the spec toward a smaller case; returns false when it cannot
/// reduce any further (the shrinker then tries the next reducer).
template <typename Spec>
using Reducer = std::function<bool(Spec&)>;

template <typename Spec>
struct ShrinkOutcome {
  Spec spec;               // smallest still-failing spec found
  std::size_t steps = 0;   // successful reductions applied
  std::size_t tried = 0;   // oracle evaluations spent
};

/// `still_fails(spec)` must regenerate the case and rerun the oracle.
/// `max_evals` caps oracle invocations so shrinking can't eat the fuzz
/// budget on a pathological case. `stop` (optional) is polled before every
/// oracle evaluation; once it returns true the shrinker returns the best
/// spec found so far — this is how a fuzz wall-clock budget cuts a shrink
/// short instead of overshooting by up to max_evals oracle runs.
template <typename Spec, typename StillFails>
ShrinkOutcome<Spec> shrink_spec(Spec failing, const std::vector<Reducer<Spec>>& reducers,
                                StillFails&& still_fails, std::size_t max_evals = 64,
                                const std::function<bool()>& stop = {}) {
  ShrinkOutcome<Spec> outcome{failing, 0, 0};
  bool progressed = true;
  while (progressed && outcome.tried < max_evals) {
    progressed = false;
    for (const auto& reduce : reducers) {
      if (outcome.tried >= max_evals) break;
      if (stop && stop()) return outcome;
      Spec candidate = outcome.spec;
      if (!reduce(candidate)) continue;
      ++outcome.tried;
      if (still_fails(candidate)) {
        outcome.spec = candidate;
        ++outcome.steps;
        progressed = true;
        break;  // restart from the most aggressive reducer
      }
    }
  }
  return outcome;
}

/// The standard reducer sets for the two case families: halve the ring
/// degree, halve the weight nonzeros, densify the pattern (polymul); strip
/// output/input channels, halve the spatial extent, drop stride and padding
/// back to the trivial geometry (conv).
std::vector<Reducer<PolymulSpec>> polymul_reducers();
std::vector<Reducer<ConvSpec>> conv_reducers();

}  // namespace flash::testing
