// Differential oracles: run the same negacyclic polymul / HConv workload
// through every back-end the codebase offers and cross-check the results.
//
// Exactness hierarchy (who must match whom, and how):
//   * schoolbook mod-q multiplication      — the ground truth (small n);
//   * NttTables (the kNtt engine path)     — bit-equal to schoolbook;
//   * ShoupNttTables                       — bit-equal to the NTT reference;
//   * double-FFT engine (kFft)             — bit-equal while the workload
//     stays inside the rounding-noise margin (the generators enforce it);
//   * sparse planner/executor              — bit-equal: skipping/merging are
//     exact, zeros contribute nothing;
//   * approximate FXP FFT (kApproxFft)     — error-within-budget: the
//     weight-spectrum error must stay inside the dse/error_model prediction
//     times a documented slack, and the *output* deviation must be exactly
//     the inverse transform of that spectrum deviation (error propagation
//     is linear), so an out-of-model bug cannot hide inside "approximate".
#pragma once

#include <string>

#include "dse/error_model.hpp"
#include "testing/generators.hpp"

namespace flash::testing {

/// Deliberate defect injected into the datapath under test, used to prove
/// the oracle (and the fuzz driver's shrinking) actually detects bugs.
/// kTwiddleQuantization degrades the CSD twiddle quantization of the
/// approximate path to one digit of depth 2 — the "wrong twiddle table"
/// class of hardware bug. kPow2MaskWidth runs the Z_{2^k} engine with a
/// ring one bit narrower than the reference (the off-by-one mask-constant
/// bug); kPow2CarryTruncation drops the ciphertext operand's bits above 32
/// before the Z_{2^k} multiply (the narrow-operand-register / lost-carry
/// bug), with the ring width pinned above 32 so the fault cannot be a
/// silent no-op.
enum class FaultInjection { kNone, kTwiddleQuantization, kPow2MaskWidth, kPow2CarryTruncation };

struct OracleOptions {
  /// Budget-mode approximate design point: uniform per-stage data width and
  /// CSD twiddle depth (converted per case through DesignSpace::to_config).
  int approx_width = 26;
  int approx_twiddle_k = 8;
  /// Multiplicative slack on the analytical error-model prediction. The
  /// model is documented (test_dse) to track the bit-accurate simulator
  /// within a couple of orders of magnitude; 300x is that envelope, and the
  /// injected twiddle fault overshoots it by many more orders.
  double budget_slack = 300.0;
  FaultInjection fault = FaultInjection::kNone;
};

struct OracleReport {
  bool ok = true;
  std::string check;   // name of the first failed cross-check
  std::string detail;  // human-readable mismatch description

  std::string summary() const { return ok ? "ok" : check + ": " + detail; }
};

/// Cross-checks one polymul case across schoolbook / NTT / Shoup NTT /
/// Z_{2^k} mask-reduce / double FFT / sparse executor / approximate FXP FFT.
class PolymulOracle {
 public:
  explicit PolymulOracle(OracleOptions options = {}) : options_(options) {}
  OracleReport run(const PolymulCase& c) const;

 private:
  OracleOptions options_;
};

/// Runs one conv workload end-to-end through the one-round HE/2PC protocol
/// (padding, stride decomposition, channel tiling, share reconstruction) on
/// every PolyMul backend and checks each against cleartext conv2d — plus
/// cross-backend bit-equality of both parties' shares.
class HConvOracle {
 public:
  explicit HConvOracle(OracleOptions options = {}) : options_(options) {}
  OracleReport run(const ConvCase& c) const;

  /// Batched-equivalence check: plays a mixed-plan request trace through a
  /// ConvServer (every plan registered once, all requests submitted up
  /// front, plan-batched dispatch) and requires each request's shares to be
  /// *bit-identical* to a standalone serial ConvRunner call with the same
  /// seed and stream — batching, queueing and plan interleaving must not be
  /// able to change a single output bit — plus correct against cleartext
  /// conv2d, plus metrics conservation (every submitted request terminal,
  /// queue drained to zero).
  ///
  /// dispatchers = 0 runs the server in deterministic manual-dispatch mode
  /// on the calling thread; >= 1 exercises the real dispatcher threads (the
  /// soak tier runs this under TSan).
  ///
  /// shards = 0 (default) serves in-process as described above. shards >= 1
  /// routes the identical trace through a ShardRouter instead — N forked
  /// worker processes behind the wire protocol — and holds the same
  /// bit-identity bar: shard count, request coalescing on the worker socket
  /// and process boundaries must not change a single output bit relative to
  /// the bare serial ConvRunner (dispatchers is ignored; workers are
  /// single-threaded manual-dispatch servers). kill_shard_every > 0
  /// additionally SIGKILLs a rotating worker every that-many submissions
  /// mid-trace, so the recovery path (respawn + registration replay +
  /// idempotent resend) must ALSO be invisible at the bit level, and router
  /// metrics must conserve through the kills.
  OracleReport run_trace(const ServeTrace& trace, std::size_t dispatchers = 1,
                         std::size_t max_batch = 4, std::size_t shards = 0,
                         std::size_t kill_shard_every = 0) const;

  /// Whole-network session equivalence: runs every session of a network
  /// trace through NetworkServer (shared program, cross-session layer
  /// pipelining) and requires every recorded layer output — and the final
  /// features/logits — to be *bit-identical* to a serial bare-runner
  /// execution (run_network_serial) with the same stream base, plus equal to
  /// the cleartext LayerStack::forward, plus metrics conservation at both
  /// levels (ConvServer requests and NetworkServer sessions).
  OracleReport run_network_trace(const NetworkTrace& trace, std::size_t dispatchers = 0,
                                 std::size_t max_batch = 4) const;

 private:
  OracleOptions options_;
};

}  // namespace flash::testing
