#include "testing/oracle.hpp"

#include <cmath>
#include <complex>
#include <deque>
#include <sstream>

#include "analysis/fxp_analyzer.hpp"
#include "bfv/context.hpp"
#include "bfv/polymul_engine.hpp"
#include "core/flash_accelerator.hpp"
#include "dse/space.hpp"
#include "hemath/ntt.hpp"
#include "hemath/pow2.hpp"
#include "hemath/shoup_ntt.hpp"
#include "protocol/conv_runner.hpp"
#include "serve/conv_server.hpp"
#include "serve/network_session.hpp"
#include "shard/shard_router.hpp"
#include "sparsefft/executor.hpp"
#include "tensor/conv.hpp"

namespace flash::testing {

namespace {

using hemath::add_mod;
using hemath::from_signed;
using hemath::mul_mod;
using hemath::to_signed;

OracleReport fail(const std::string& check, const std::string& detail) {
  return OracleReport{false, check, detail};
}

std::string coeff_mismatch(std::size_t i, u64 got, u64 want) {
  std::stringstream out;
  out << "coeff " << i << ": got " << got << ", want " << want;
  return out.str();
}

/// Degrade the CSD twiddle quantization to a single digit of depth 2 — far
/// outside any sane design point, but structurally the same arithmetic.
void inject_twiddle_fault(fft::FxpFftConfig& config) {
  config.twiddle_k = 1;
  config.twiddle_min_exp = -2;
}

}  // namespace

OracleReport PolymulOracle::run(const PolymulCase& c) const {
  const auto& p = c.params;
  const std::size_t n = p.n;
  bfv::BfvContext ctx(p);

  bfv::Plaintext pt = ctx.make_plaintext();
  for (std::size_t i = 0; i < n; ++i) pt.poly[i] = from_signed(c.w[i], p.t);
  const hemath::Poly ct(p.q, c.ct);

  // Reference: the exact NTT engine (what SEAL/F1/CHAM compute).
  const bfv::PolyMulEngine ntt_engine(ctx, bfv::PolyMulBackend::kNtt);
  const hemath::Poly ref = ntt_engine.multiply(ct, ntt_engine.transform_plain(pt));

  // Weight lifted to signed representatives mod q (the engines' lift).
  std::vector<u64> w_lifted(n);
  for (std::size_t i = 0; i < n; ++i) w_lifted[i] = from_signed(c.w[i], p.q);

  // --- 1. Ground truth: schoolbook mod-q negacyclic product (small n). ---
  if (n <= 512) {
    const std::vector<u64> sb = hemath::negacyclic_multiply_schoolbook(p.q, c.ct, w_lifted);
    for (std::size_t i = 0; i < n; ++i) {
      if (sb[i] != ref[i]) return fail("ntt-vs-schoolbook", coeff_mismatch(i, ref[i], sb[i]));
    }
  }

  // --- 2. Shoup/Harvey lazy-reduction NTT: bit-equal to the reference. ---
  {
    const hemath::ShoupNttTables shoup(p.q, n);
    std::vector<u64> ws = w_lifted;
    std::vector<u64> cs = c.ct;
    shoup.forward(ws);
    shoup.forward(cs);
    std::vector<u64> prod(n);
    for (std::size_t i = 0; i < n; ++i) prod[i] = mul_mod(cs[i], ws[i], p.q);
    shoup.inverse(prod);
    for (std::size_t i = 0; i < n; ++i) {
      if (prod[i] != ref[i]) return fail("shoup-vs-ntt", coeff_mismatch(i, prod[i], ref[i]));
    }
  }

  // --- 2b. Batched SoA transforms: bit-equal to a loop of singles at the
  // active dispatch level (the cross-level tier pins the level per run). ---
  {
    const hemath::NttTables plain_ntt(p.q, n);
    const hemath::ShoupNttTables shoup(p.q, n);
    // Five lanes (full 4-group + remainder) derived from the case operands.
    std::vector<std::vector<u64>> lanes(5, c.ct);
    for (std::size_t b = 0; b < lanes.size(); ++b) {
      for (std::size_t i = 0; i < n; ++i) {
        lanes[b][i] = hemath::add_mod(c.ct[i], hemath::mul_mod(b, w_lifted[i], p.q), p.q);
      }
    }
    const auto batch_check = [&](const auto& tables, const char* check) -> OracleReport {
      std::vector<std::vector<u64>> singles = lanes;
      for (auto& l : singles) tables.forward(l);
      std::vector<std::vector<u64>> batch = lanes;
      std::vector<u64*> ptrs(batch.size());
      for (std::size_t b = 0; b < batch.size(); ++b) ptrs[b] = batch[b].data();
      tables.forward_batch_into(ptrs);
      for (std::size_t b = 0; b < batch.size(); ++b) {
        for (std::size_t i = 0; i < n; ++i) {
          if (batch[b][i] != singles[b][i]) {
            return fail(check, "lane " + std::to_string(b) + ": " +
                                   coeff_mismatch(i, batch[b][i], singles[b][i]));
          }
        }
      }
      // Inverse batch on the forward outputs must round back identically.
      for (auto& l : singles) tables.inverse(l);
      tables.inverse_batch_into(ptrs);
      for (std::size_t b = 0; b < batch.size(); ++b) {
        for (std::size_t i = 0; i < n; ++i) {
          if (batch[b][i] != singles[b][i]) {
            return fail(check, "inverse lane " + std::to_string(b) + ": " +
                                   coeff_mismatch(i, batch[b][i], singles[b][i]));
          }
        }
      }
      return OracleReport{};
    };
    OracleReport r = batch_check(plain_ntt, "ntt-batch-vs-singles");
    if (!r.ok) return r;
    r = batch_check(shoup, "shoup-batch-vs-singles");
    if (!r.ok) return r;
  }

  // --- 2c. Z_{2^k} mask-reduce backend: bit-equal to schoolbook mod 2^k. ---
  // The ring width is derived from the case seed among widths spanning the
  // sub-32-bit, equal-to-NTT-width and near-64 wrap regimes; the same case
  // operands are reduced into the ring, so the whole generator corpus (sparse
  // patterns, densified shrinks, every n) exercises this arm. There is no
  // transform to cross-check mod 2^k — this schoolbook comparison IS the
  // correctness proof the Karatsuba path rests on (ARCHITECTURE.md §14).
  {
    const bool mask_fault = options_.fault == FaultInjection::kPow2MaskWidth;
    const bool carry_fault = options_.fault == FaultInjection::kPow2CarryTruncation;
    std::vector<int> ks;
    for (const int k : {16, 32, 49, 60, 62}) {
      // k - 1 must also satisfy q > 2t so the mask-width fault stays a valid
      // (but wrong) parameter set.
      if ((k >= 64 || (u64{1} << (k - 1)) > 2 * p.t) && (!carry_fault || k > 33)) ks.push_back(k);
    }
    if (!ks.empty()) {
      const int k = ks[static_cast<std::size_t>(c.spec.seed % ks.size())];
      const hemath::Pow2Ring ring(k);

      std::vector<u64> ct2(n), w2(n);
      for (std::size_t i = 0; i < n; ++i) {
        ct2[i] = ring.reduce(c.ct[i]);
        w2[i] = ring.from_signed(c.w[i]);
      }
      std::vector<u64> sb(n);
      hemath::negacyclic_mul_pow2_schoolbook(ct2.data(), w2.data(), sb.data(), n, ring);

      // The engine under (possibly injected) test: a mask-width fault builds
      // it one bit narrow; a carry fault truncates its ciphertext operand.
      bfv::BfvParams pp;
      pp.n = n;
      pp.t = p.t;
      pp.q = u64{1} << (mask_fault ? k - 1 : k);
      bfv::BfvContext pctx(pp);
      const bfv::PolyMulEngine pow2_engine(pctx, bfv::PolyMulBackend::kPow2);

      bfv::Plaintext pt2 = pctx.make_plaintext();
      for (std::size_t i = 0; i < n; ++i) pt2.poly[i] = from_signed(c.w[i], pp.t);
      std::vector<u64> ct_in = ct2;
      if (carry_fault) {
        for (auto& v : ct_in) v &= 0xFFFFFFFFull;
      }
      const hemath::Poly ct_poly2(pp.q, ct_in);

      const bfv::PlainSpectrum w_pow2 = pow2_engine.transform_plain(pt2);
      const hemath::Poly out = pow2_engine.multiply(ct_poly2, w_pow2);
      for (std::size_t i = 0; i < n; ++i) {
        if (out[i] != sb[i]) {
          return fail("pow2-vs-schoolbook",
                      "k " + std::to_string(k) + ": " + coeff_mismatch(i, out[i], sb[i]));
        }
      }

      // Accumulator path (transform / multiply_accumulate / finalize) must
      // reproduce the direct multiply bit-for-bit.
      const bfv::CipherSpectrum cspec = pow2_engine.transform_cipher_spectrum(ct_poly2);
      bfv::SpectralAccumulator acc;
      pow2_engine.multiply_accumulate(cspec, w_pow2, acc);
      const hemath::Poly out_acc = pow2_engine.finalize(acc);
      for (std::size_t i = 0; i < n; ++i) {
        if (out_acc[i] != out[i]) {
          return fail("pow2-accumulate-vs-multiply",
                      "k " + std::to_string(k) + ": " + coeff_mismatch(i, out_acc[i], out[i]));
        }
      }

      // Batched SoA path: five derived lanes, bit-equal to a loop of singles
      // (mirrors check 2b for the NTT backends).
      {
        std::vector<std::vector<u64>> lanes(5, ct2);
        for (std::size_t b = 0; b < lanes.size(); ++b) {
          for (std::size_t i = 0; i < n; ++i) {
            lanes[b][i] = ring.add(ct2[i], ring.mul(b, w2[i]));
          }
        }
        std::vector<std::vector<u64>> batch_out(lanes.size(), std::vector<u64>(n));
        std::vector<const u64*> in_ptrs(lanes.size());
        std::vector<u64*> out_ptrs(lanes.size());
        for (std::size_t b = 0; b < lanes.size(); ++b) {
          in_ptrs[b] = lanes[b].data();
          out_ptrs[b] = batch_out[b].data();
        }
        hemath::negacyclic_mul_pow2_batch_into(in_ptrs, w2.data(), out_ptrs, n, ring);
        for (std::size_t b = 0; b < lanes.size(); ++b) {
          const std::vector<u64> single = hemath::negacyclic_mul_pow2(lanes[b], w2, ring);
          for (std::size_t i = 0; i < n; ++i) {
            if (batch_out[b][i] != single[i]) {
              return fail("pow2-batch-vs-singles",
                          "k " + std::to_string(k) + " lane " + std::to_string(b) + ": " +
                              coeff_mismatch(i, batch_out[b][i], single[i]));
            }
          }
        }
      }
    }
  }

  // --- 3. Double-precision FFT engine: within the FP rounding margin. ---
  // Product coefficients reach (q/2) * max_w * nnz, which can exceed the
  // 53-bit window where doubles round exactly, so the honest contract is a
  // deviation bound of a few ulps at that magnitude — still ~2^25x smaller
  // than the q/(2t) quantum that decryption rounds away (the level at which
  // the seed's BackendEquivalence test proves exact agreement), so any real
  // transform bug lands far outside it.
  const double product_magnitude = 0.5 * static_cast<double>(p.q) * static_cast<double>(c.max_w) *
                                   static_cast<double>(std::max<std::size_t>(c.nnz, 1));
  const double fp_tol =
      std::max(1.5, std::ldexp(product_magnitude, -52) * std::log2(static_cast<double>(n)));
  const auto fp_deviation_check = [&](const char* check, const hemath::Poly& out,
                                      const hemath::Poly& want) -> OracleReport {
    for (std::size_t i = 0; i < n; ++i) {
      const double dev =
          static_cast<double>(to_signed(hemath::sub_mod(out[i], want[i], p.q), p.q));
      if (std::abs(dev) > fp_tol) {
        std::stringstream detail;
        detail << coeff_mismatch(i, out[i], want[i]) << " (deviation " << dev
               << " exceeds FP margin " << fp_tol << ")";
        return fail(check, detail.str());
      }
    }
    return OracleReport{};
  };

  const bfv::PolyMulEngine fft_engine(ctx, bfv::PolyMulBackend::kFft);
  {
    const hemath::Poly out = fft_engine.multiply(ct, fft_engine.transform_plain(pt));
    const OracleReport r = fp_deviation_check("fft-vs-ntt", out, ref);
    if (!r.ok) return r;
  }

  // Shared FP-side ingredients for the sparse and approximate checks.
  std::vector<double> w_real(n);
  for (std::size_t i = 0; i < n; ++i) w_real[i] = static_cast<double>(c.w[i]);
  const std::vector<fft::cplx> exact_spec = ctx.fft().forward(w_real);
  const std::vector<fft::cplx> ct_spec = fft_engine.transform_cipher(ct);

  // --- 4. Sparse planner/executor: skipping and merging are exact. ---
  {
    const std::vector<fft::cplx> z = ctx.fft().fold(w_real);
    const auto pattern = sparsefft::SparsityPattern::from_values(z);
    const sparsefft::SparseFftPlan plan(n / 2, pattern);
    const std::vector<fft::cplx> sparse_spec = sparsefft::execute(plan, z);

    std::vector<fft::cplx> prod(n / 2);
    for (std::size_t i = 0; i < n / 2; ++i) prod[i] = ct_spec[i] * sparse_spec[i];
    const hemath::Poly out = fft_engine.inverse_to_poly(prod);
    // Same double-precision pipeline as the dense FFT engine (different
    // operation order), hence the same FP margin rather than bit-equality.
    const OracleReport r = fp_deviation_check("sparse-vs-ntt", out, ref);
    if (!r.ok) return r;

    // Merged (lazy-twiddle) execution: same spectrum, and the number of
    // multiplications issued must equal the plan's merged accounting.
    std::uint64_t mults = 0;
    const std::vector<fft::cplx> merged = sparsefft::execute_merged(plan, z, &mults);
    if (mults != plan.cost().merged_mults) {
      std::stringstream detail;
      detail << "issued " << mults << " mults, plan accounted " << plan.cost().merged_mults;
      return fail("merged-mult-count", detail.str());
    }
    double scale = 1.0;
    for (const auto& s : sparse_spec) scale = std::max(scale, std::abs(s));
    for (std::size_t i = 0; i < n / 2; ++i) {
      if (std::abs(merged[i] - sparse_spec[i]) > 1e-9 * scale) {
        std::stringstream detail;
        detail << "spectrum element " << i << " differs by " << std::abs(merged[i] - sparse_spec[i]);
        return fail("merged-vs-sparse", detail.str());
      }
    }
  }

  // --- 5. Approximate FXP FFT: error within the dse/error_model budget,
  //        and the output deviation exactly explained by the weight-spectrum
  //        deviation (two design points: the budget point under test and the
  //        full-precision corner). ---
  const dse::DesignSpace space(n / 2, dse::SpaceBounds{});
  const dse::ErrorModel model = dse::ErrorModel::from_weight_stats(
      n, std::max<std::size_t>(c.nnz, 1), static_cast<double>(c.max_w));

  dse::DesignPoint budget_point;
  budget_point.stage_widths.assign(static_cast<std::size_t>(space.stages()), options_.approx_width);
  budget_point.twiddle_k = options_.approx_twiddle_k;

  for (const dse::DesignPoint& point : {budget_point, space.full_precision()}) {
    fft::FxpFftConfig config = space.to_config(point, model.input_max_abs());
    if (options_.fault == FaultInjection::kTwiddleQuantization) inject_twiddle_fault(config);
    const double predicted = model.predict_variance(space, point);

    const bfv::PolyMulEngine approx_engine(ctx, bfv::PolyMulBackend::kApproxFft, config);
    const bfv::PlainSpectrum w_approx = approx_engine.transform_plain(pt);

    // (a) Spectrum error variance within the analytical budget.
    double mse = 0.0;
    for (std::size_t i = 0; i < n / 2; ++i) mse += std::norm(w_approx.fft[i] - exact_spec[i]);
    mse /= static_cast<double>(n / 2);
    if (mse > predicted * options_.budget_slack) {
      std::stringstream detail;
      detail << "width " << point.stage_widths.front() << " k " << point.twiddle_k
             << ": measured spectrum error variance " << mse << " exceeds predicted " << predicted
             << " x slack " << options_.budget_slack;
      return fail("approx-error-budget", detail.str());
    }

    // (b) Output deviation == inverse transform of the spectrum deviation.
    // Error propagation through the (exact-FP) pointwise product and inverse
    // transform is linear, so the observed integer deviation from the NTT
    // reference must equal round(F^-1[(W_approx - W) .* CT]) to within the
    // two roundings involved.
    std::vector<fft::cplx> err_spec(n / 2);
    for (std::size_t i = 0; i < n / 2; ++i) err_spec[i] = (w_approx.fft[i] - exact_spec[i]) * ct_spec[i];
    const std::vector<double> err_out = ctx.fft().inverse(err_spec);
    const hemath::Poly out = approx_engine.multiply(ct, w_approx);
    for (std::size_t i = 0; i < n; ++i) {
      const i64 observed = to_signed(hemath::sub_mod(out[i], ref[i], p.q), p.q);
      const double expected = err_out[i];
      const double tol = 2.0 + 1e-9 * std::abs(expected);
      if (std::abs(static_cast<double>(observed) - expected) > tol) {
        std::stringstream detail;
        detail << "width " << point.stage_widths.front() << " coeff " << i << ": observed deviation "
               << observed << " vs spectrum-explained " << expected;
        return fail("approx-propagation", detail.str());
      }
    }

    // (c) Static/dynamic cross-check: the interval analyzer's proven
    // per-stage mantissa bounds must dominate the peaks this transform
    // actually produced (soundness tripwire for the analyzer — and for the
    // simulator, since both walk the same dataflow with the same quantized
    // tables, including any injected fault).
    analysis::AnalyzerOptions aopts;
    aopts.input_max_abs = model.coefficient_max_abs();
    const analysis::AnalysisResult proven = analysis::analyze_negacyclic(n, config, aopts);
    fft::FxpFftStats fxp_stats;
    const fft::FxpNegacyclicTransform fxp(n, config);
    fxp.forward(w_real, &fxp_stats);
    if (const analysis::StageReport* v = analysis::first_interval_violation(proven, fxp_stats)) {
      std::stringstream detail;
      detail << "width " << point.stage_widths.front() << " stage " << v->stage
             << ": observed peak mantissa "
             << fxp_stats.stage_peak_mantissa[static_cast<std::size_t>(v->stage)]
             << " exceeds proven bound " << v->mantissa_bound;
      return fail("approx-outside-proven-interval", detail.str());
    }
  }

  return OracleReport{};
}

OracleReport HConvOracle::run(const ConvCase& c) const {
  bfv::BfvContext ctx(c.params);
  const u64 t = c.params.t;
  const tensor::Tensor3 expect = tensor::conv2d(
      c.x, c.weights, tensor::ConvSpec{c.spec.stride, static_cast<std::size_t>(c.spec.pad)});

  fft::FxpFftConfig approx_cfg = core::high_accuracy_approx_config(c.params.n, t);
  if (options_.fault == FaultInjection::kTwiddleQuantization) inject_twiddle_fault(approx_cfg);

  struct BackendRun {
    const char* name;
    bfv::PolyMulBackend backend;
    std::optional<fft::FxpFftConfig> config;
  };
  const BackendRun runs[] = {
      {"ntt", bfv::PolyMulBackend::kNtt, std::nullopt},
      {"fft", bfv::PolyMulBackend::kFft, std::nullopt},
      {"approx-fft", bfv::PolyMulBackend::kApproxFft, approx_cfg},
  };

  std::optional<protocol::ConvRunnerResult> first;
  const char* first_name = nullptr;
  for (const BackendRun& run : runs) {
    protocol::HConvProtocol proto(ctx, run.backend, run.config, c.spec.seed);
    protocol::ConvRunner runner(proto);
    const protocol::ConvRunnerResult result =
        runner.run(c.x, c.weights, c.spec.stride, static_cast<std::size_t>(c.spec.pad));

    if (result.reconstruct(t).data() != expect.data()) {
      return fail(std::string("hconv-") + run.name + "-vs-cleartext",
                  "reconstructed shares disagree with direct conv2d (" + c.spec.describe() + ")");
    }
    if (!first) {
      first = result;
      first_name = run.name;
    } else {
      // Shares — not just reconstructions — are backend-independent: masks
      // come from the seeded streams, and the exact backends agree bit-wise.
      if (result.client_share.data() != first->client_share.data() ||
          result.server_share.data() != first->server_share.data()) {
        return fail(std::string("hconv-shares-") + run.name,
                    std::string("party shares differ from the ") + first_name + " backend");
      }
    }
  }
  return OracleReport{};
}

namespace {

/// Sharded backend of run_trace: the same trace, submissions and
/// bit-identity bar, but served by a ShardRouter over forked workers.
OracleReport run_trace_sharded(const ServeTrace& trace, std::size_t max_batch,
                               std::size_t shards, std::size_t kill_shard_every) {
  shard::RouterOptions ropts;
  ropts.shards = shards;
  ropts.certify = serve::CertifyPolicy::kWarn;
  ropts.worker_max_batch = max_batch;
  shard::ShardRouter router(ropts);

  std::vector<shard::ShardPlanId> plan_ids;
  for (const ConvCase& layer : trace.plan_cases) {
    wire::PlanSpecWire spec;
    spec.params = layer.params;
    spec.backend = bfv::PolyMulBackend::kNtt;
    spec.protocol_seed = layer.spec.seed;
    spec.weights = layer.weights;
    spec.stride = layer.spec.stride;
    spec.pad = static_cast<std::size_t>(layer.spec.pad);
    spec.in_h = layer.spec.h;
    spec.in_w = layer.spec.w;
    plan_ids.push_back(router.register_plan(spec));
  }

  std::vector<shard::ShardFuture> futures;
  std::size_t next_victim = 0;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    shard::ShardSubmitOptions opts;
    opts.stream = i;  // pin the determinism key to the trace position
    futures.push_back(
        router.submit(plan_ids[trace.requests[i].plan], trace.requests[i].x, opts));
    if (kill_shard_every != 0 && (i + 1) % kill_shard_every == 0) {
      // Chaos injection: SIGKILL a rotating worker mid-trace. Recovery
      // (respawn + registration replay + resend) must be bit-invisible.
      router.kill_worker(next_victim % shards);
      next_victim++;
    }
  }
  router.drain();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeTrace::Request& req = trace.requests[i];
    const ConvCase& layer = trace.plan_cases[req.plan];
    if (futures[i].state() != shard::ShardRequestState::kDone) {
      return fail("shard-trace-request-state",
                  "request " + std::to_string(i) + " ended " +
                      shard::to_string(futures[i].state()) + " (" + futures[i].error() +
                      "), shards=" + std::to_string(shards) + ", " + trace.spec.describe());
    }
    const protocol::ConvRunnerResult& served = futures[i].result();

    // Serial reference: a fresh protocol with the plan's seed, same stream.
    bfv::BfvContext ctx(layer.params);
    protocol::HConvProtocol proto(ctx, bfv::PolyMulBackend::kNtt, std::nullopt, layer.spec.seed);
    protocol::ConvRunner runner(proto);
    const protocol::ConvRunnerResult serial =
        runner.run(req.x, layer.weights, layer.spec.stride,
                   static_cast<std::size_t>(layer.spec.pad), static_cast<std::uint64_t>(i) << 32);
    if (served.client_share.data() != serial.client_share.data() ||
        served.server_share.data() != serial.server_share.data()) {
      return fail("shard-trace-vs-serial",
                  "request " + std::to_string(i) + " shares differ from the serial run (shards=" +
                      std::to_string(shards) + ", " + trace.spec.describe() + ")");
    }

    const tensor::Tensor3 expect =
        tensor::conv2d(req.x, layer.weights,
                       tensor::ConvSpec{layer.spec.stride,
                                        static_cast<std::size_t>(layer.spec.pad)});
    if (served.reconstruct(layer.params.t).data() != expect.data()) {
      return fail("shard-trace-vs-cleartext",
                  "request " + std::to_string(i) + " disagrees with direct conv2d (shards=" +
                      std::to_string(shards) + ", " + trace.spec.describe() + ")");
    }
  }

  // Conservation through every path, kills included: each submitted request
  // reached exactly one terminal outcome, and all of them completed.
  const shard::RouterMetrics& m = router.metrics();
  if (m.terminal() != m.submitted.value()) {
    return fail("shard-trace-metrics-conservation",
                std::to_string(m.submitted.value()) + " submitted but " +
                    std::to_string(m.terminal()) + " terminal outcomes");
  }
  if (m.completed.value() != trace.requests.size()) {
    return fail("shard-trace-metrics-completed",
                std::to_string(m.completed.value()) + " completed, expected " +
                    std::to_string(trace.requests.size()));
  }
  // A trace shorter than the kill period never reaches a kill point, so only
  // traces with at least one scheduled kill must show one.
  if (kill_shard_every != 0 && trace.requests.size() >= kill_shard_every &&
      m.kills.value() == 0) {
    return fail("shard-trace-chaos-armed", "chaos requested but no kill was injected");
  }
  return OracleReport{};
}

}  // namespace

OracleReport HConvOracle::run_trace(const ServeTrace& trace, std::size_t dispatchers,
                                    std::size_t max_batch, std::size_t shards,
                                    std::size_t kill_shard_every) const {
  if (shards != 0) return run_trace_sharded(trace, max_batch, shards, kill_shard_every);

  // One context per plan (plans may carry different parameter sets); deque
  // keeps addresses stable for the non-owning PlanSpec pointers.
  std::deque<bfv::BfvContext> contexts;

  serve::ServerOptions sopts;
  sopts.max_queue = trace.requests.size();
  sopts.max_batch = max_batch;
  sopts.dispatchers = dispatchers;
  serve::ConvServer server(sopts);

  std::vector<serve::PlanId> plan_ids;
  for (const ConvCase& layer : trace.plan_cases) {
    contexts.emplace_back(layer.params);
    serve::PlanSpec spec;
    spec.ctx = &contexts.back();
    spec.backend = bfv::PolyMulBackend::kNtt;
    spec.protocol_seed = layer.spec.seed;
    spec.weights = layer.weights;
    spec.stride = layer.spec.stride;
    spec.pad = static_cast<std::size_t>(layer.spec.pad);
    spec.in_h = layer.spec.h;
    spec.in_w = layer.spec.w;
    plan_ids.push_back(server.register_plan(spec));
  }

  std::vector<serve::ConvFuture> futures;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    serve::SubmitOptions opts;
    opts.stream = i;  // pin the determinism key to the trace position
    futures.push_back(server.submit(plan_ids[trace.requests[i].plan], trace.requests[i].x, opts));
  }
  server.drain();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeTrace::Request& req = trace.requests[i];
    const ConvCase& layer = trace.plan_cases[req.plan];
    if (futures[i].state() != serve::RequestState::kDone) {
      return fail("trace-request-state",
                  "request " + std::to_string(i) + " ended " +
                      serve::to_string(futures[i].state()) + " (" + futures[i].error() + "), " +
                      trace.spec.describe());
    }
    const protocol::ConvRunnerResult& served = futures[i].result();

    // Serial reference: a fresh protocol with the plan's seed, same stream.
    protocol::HConvProtocol proto(contexts[req.plan], bfv::PolyMulBackend::kNtt, std::nullopt,
                                  layer.spec.seed);
    protocol::ConvRunner runner(proto);
    const protocol::ConvRunnerResult serial =
        runner.run(req.x, layer.weights, layer.spec.stride,
                   static_cast<std::size_t>(layer.spec.pad), static_cast<std::uint64_t>(i) << 32);
    if (served.client_share.data() != serial.client_share.data() ||
        served.server_share.data() != serial.server_share.data()) {
      return fail("trace-batched-vs-serial",
                  "request " + std::to_string(i) + " shares differ from the serial run (" +
                      trace.spec.describe() + ")");
    }

    const tensor::Tensor3 expect =
        tensor::conv2d(req.x, layer.weights,
                       tensor::ConvSpec{layer.spec.stride,
                                        static_cast<std::size_t>(layer.spec.pad)});
    if (served.reconstruct(layer.params.t).data() != expect.data()) {
      return fail("trace-vs-cleartext", "request " + std::to_string(i) +
                                            " disagrees with direct conv2d (" +
                                            trace.spec.describe() + ")");
    }
  }

  const serve::ServerMetrics& m = server.metrics();
  if (m.terminal() != m.submitted.value()) {
    return fail("trace-metrics-conservation",
                std::to_string(m.submitted.value()) + " submitted but " +
                    std::to_string(m.terminal()) + " terminal outcomes");
  }
  if (m.queue_depth.value() != 0 || m.inflight.value() != 0) {
    return fail("trace-metrics-drained", "queue_depth/inflight nonzero after drain");
  }
  if (m.completed.value() != trace.requests.size()) {
    return fail("trace-metrics-completed",
                std::to_string(m.completed.value()) + " completed, expected " +
                    std::to_string(trace.requests.size()));
  }
  return OracleReport{};
}

OracleReport HConvOracle::run_network_trace(const NetworkTrace& trace, std::size_t dispatchers,
                                            std::size_t max_batch) const {
  bfv::BfvContext ctx(trace.params);
  const std::size_t sessions = trace.spec.sessions;
  const std::size_t layers = trace.stack.layers.size();

  serve::ServerOptions sopts;
  sopts.max_queue = sessions * layers + 4;
  sopts.max_batch = max_batch;
  sopts.dispatchers = dispatchers;
  serve::ConvServer server(sopts);
  serve::NetworkServer net(server);

  auto program = std::make_shared<const serve::NetworkProgram>(serve::NetworkProgram::build(
      server, trace.stack, ctx, bfv::PolyMulBackend::kNtt, std::nullopt, trace.spec.seed,
      tensor::Shape3{trace.in_c, trace.in_h, trace.in_w}));

  std::vector<serve::NetworkSession> handles;
  for (std::size_t s = 0; s < sessions; ++s) {
    serve::SessionOptions opts;
    opts.stream_base = s * serve::kSessionStreamStride;
    opts.record_layer_outputs = true;
    handles.push_back(net.start(program, trace.inputs[s], opts));
  }
  net.run_to_completion();

  for (std::size_t s = 0; s < sessions; ++s) {
    if (handles[s].state() != serve::SessionState::kCompleted) {
      return fail("network-session-state",
                  "session " + std::to_string(s) + " ended " +
                      serve::to_string(handles[s].state()) + " (" + handles[s].error() + "), " +
                      trace.spec.describe());
    }

    // Serial reference: one bare protocol/runner, same seed and stream base.
    std::vector<tensor::Tensor3> serial_outputs;
    const tensor::NetworkResult serial = serve::run_network_serial(
        trace.stack, ctx, bfv::PolyMulBackend::kNtt, std::nullopt, trace.spec.seed,
        trace.inputs[s], s * serve::kSessionStreamStride, &serial_outputs);

    const std::vector<tensor::Tensor3> served_outputs = handles[s].layer_outputs();
    if (served_outputs.size() != serial_outputs.size()) {
      return fail("network-batched-vs-serial",
                  "session " + std::to_string(s) + " recorded " +
                      std::to_string(served_outputs.size()) + " layers, serial " +
                      std::to_string(serial_outputs.size()) + " (" + trace.spec.describe() + ")");
    }
    for (std::size_t l = 0; l < served_outputs.size(); ++l) {
      if (!(served_outputs[l] == serial_outputs[l])) {
        return fail("network-batched-vs-serial",
                    "session " + std::to_string(s) + " layer " + std::to_string(l) +
                        " differs from the serial run (" + trace.spec.describe() + ")");
      }
    }
    if (!(handles[s].features() == serial.features) ||
        handles[s].has_logits() != serial.has_logits || handles[s].logits() != serial.logits) {
      return fail("network-batched-vs-serial",
                  "session " + std::to_string(s) + " final features/logits differ (" +
                      trace.spec.describe() + ")");
    }

    // Cleartext reference: the HE path reconstructs exact sum-products, so
    // the whole network must agree bit-wise with the direct execution.
    const tensor::NetworkResult clear =
        trace.stack.forward(trace.inputs[s], tensor::LayerStack::reference_executor());
    if (!(clear.features == serial.features) || clear.logits != serial.logits) {
      return fail("network-vs-cleartext",
                  "session " + std::to_string(s) + " disagrees with cleartext forward (" +
                      trace.spec.describe() + ")");
    }
  }

  // Conservation, both levels: every conv request and every session reached
  // exactly one terminal outcome, and nothing is left queued or active.
  const serve::ServerMetrics& m = server.metrics();
  if (m.terminal() != m.submitted.value()) {
    return fail("network-metrics-conservation",
                std::to_string(m.submitted.value()) + " submitted but " +
                    std::to_string(m.terminal()) + " terminal outcomes");
  }
  if (m.completed.value() != sessions * program->conv_layers) {
    return fail("network-metrics-completed",
                std::to_string(m.completed.value()) + " conv requests completed, expected " +
                    std::to_string(sessions * program->conv_layers));
  }
  if (m.queue_depth.value() != 0 || m.inflight.value() != 0) {
    return fail("network-metrics-drained", "queue_depth/inflight nonzero after completion");
  }
  const serve::SessionMetrics& sm = net.session_metrics();
  if (sm.terminal() != sm.started.value() || sm.started.value() != sessions ||
      sm.completed.value() != sessions || sm.active.value() != 0) {
    return fail("network-session-conservation",
                std::to_string(sm.started.value()) + " started, " +
                    std::to_string(sm.completed.value()) + " completed, " +
                    std::to_string(sm.active.value()) + " active");
  }
  return OracleReport{};
}

}  // namespace flash::testing
