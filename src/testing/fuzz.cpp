#include "testing/fuzz.hpp"

#include <atomic>
#include <chrono>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "hemath/sampler.hpp"
#include "testing/shrink.hpp"

namespace flash::testing {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::atomic<void (*)()> g_oracle_delay_hook{nullptr};

void run_oracle_delay_hook() {
  if (auto* hook = g_oracle_delay_hook.load(std::memory_order_acquire)) hook();
}

/// A corpus line may be a full spec or a bare integer seed.
bool parse_bare_seed(const std::string& line, std::uint64_t& seed) {
  try {
    std::size_t used = 0;
    seed = std::stoull(line, &used, 0);
    return used == line.size();
  } catch (const std::exception&) {
    return false;
  }
}

struct FuzzEngine {
  const FuzzOptions& options;
  std::ostream& log;
  PolymulOracle polymul;
  HConvOracle hconv;
  FuzzResult result;
  Clock::time_point start = Clock::now();

  FuzzEngine(const FuzzOptions& opt, std::ostream& out)
      : options(opt), log(out), polymul(opt.oracle), hconv(opt.oracle) {}

  bool past_time_budget() {
    if (options.time_budget_s <= 0.0) return false;
    if (seconds_since(start) < options.time_budget_s) return false;
    result.budget_exhausted = true;
    return true;
  }

  bool out_of_budget() {
    return past_time_budget() || result.failures.size() >= options.max_failures;
  }

  void record_failure(const std::string& original, const std::string& reproducer,
                      const std::string& report, std::size_t steps) {
    result.failures.push_back({original, reproducer, report, steps});
    log << "FAIL " << original << "\n     " << report << "\n     reproducer (after " << steps
        << " shrink steps): " << reproducer << "\n";
  }

  // Each check re-verifies the wall-clock budget immediately before every
  // oracle evaluation it performs — the initial run, every shrink candidate
  // (via the shrink_spec stop callback) and the post-shrink confirmation —
  // so a slow case or an expensive shrink can overshoot --time-budget by at
  // most one evaluation, not by max_evals of them.

  void check_polymul(PolymulSpec spec) {
    if (past_time_budget()) return;
    PolymulCase c = make_polymul_case(spec);
    ++result.cases_run;
    run_oracle_delay_hook();
    const OracleReport report = polymul.run(c);
    if (options.verbose) log << "  " << c.spec.describe() << " -> " << report.summary() << "\n";
    if (report.ok) return;
    const auto outcome = shrink_spec(
        c.spec, polymul_reducers(),
        [this](const PolymulSpec& s) {
          run_oracle_delay_hook();
          // A reducer can push the spec outside the generator's validity
          // envelope (e.g. halving n below what a conv-derived weight
          // pattern's geometry fits); an unconstructible candidate is not a
          // failing one, the shrinker just keeps the previous spec.
          try {
            return !polymul.run(make_polymul_case(s)).ok;
          } catch (const std::invalid_argument&) {
            return false;
          }
        },
        64, [this] { return past_time_budget(); });
    OracleReport final_report = report;
    if (outcome.steps > 0 && !past_time_budget()) {
      run_oracle_delay_hook();
      const OracleReport shrunk_report = polymul.run(make_polymul_case(outcome.spec));
      if (!shrunk_report.ok) final_report = shrunk_report;
    }
    record_failure(c.spec.describe(), outcome.spec.describe(), final_report.summary(),
                   outcome.steps);
  }

  void check_conv(ConvSpec spec) {
    if (past_time_budget()) return;
    ConvCase c = make_conv_case(spec);
    ++result.cases_run;
    run_oracle_delay_hook();
    const OracleReport report = hconv.run(c);
    if (options.verbose) log << "  " << c.spec.describe() << " -> " << report.summary() << "\n";
    if (report.ok) return;
    const auto outcome = shrink_spec(
        c.spec, conv_reducers(),
        [this](const ConvSpec& s) {
          run_oracle_delay_hook();
          // Same contract as the polymul predicate: a shrink candidate the
          // generator refuses to construct counts as non-failing.
          try {
            return !hconv.run(make_conv_case(s)).ok;
          } catch (const std::invalid_argument&) {
            return false;
          }
        },
        64, [this] { return past_time_budget(); });
    OracleReport final_report = report;
    if (outcome.steps > 0 && !past_time_budget()) {
      run_oracle_delay_hook();
      const OracleReport shrunk_report = hconv.run(make_conv_case(outcome.spec));
      if (!shrunk_report.ok) final_report = shrunk_report;
    }
    record_failure(c.spec.describe(), outcome.spec.describe(), final_report.summary(),
                   outcome.steps);
  }

  void run_corpus_entry(const std::string& line) {
    PolymulSpec pm;
    ConvSpec cv;
    std::uint64_t seed = 0;
    if (parse_polymul_spec(line, pm)) {
      check_polymul(pm);
    } else if (parse_conv_spec(line, cv)) {
      check_conv(cv);
    } else if (parse_bare_seed(line, seed)) {
      check_polymul(PolymulSpec{seed});
      if (!out_of_budget()) check_conv(ConvSpec{seed});
    } else {
      throw std::invalid_argument("fuzz corpus: malformed entry: " + line);
    }
  }
};

}  // namespace

FuzzResult run_fuzz(const FuzzOptions& options, std::ostream& log) {
  FuzzEngine engine(options, log);

  for (const std::string& entry : options.corpus) {
    if (engine.out_of_budget()) break;
    engine.run_corpus_entry(entry);
  }

  for (std::size_t i = 0; i < options.iters && !engine.out_of_budget(); ++i) {
    const std::uint64_t case_seed = hemath::derive_stream_seed(options.seed, i);
    if (options.conv_every != 0 && i % options.conv_every == options.conv_every - 1) {
      engine.check_conv(ConvSpec{case_seed});
    } else {
      engine.check_polymul(PolymulSpec{case_seed});
    }
  }

  log << "fuzz: " << engine.result.cases_run << " cases, " << engine.result.failures.size()
      << " failure(s), " << seconds_since(engine.start) << " s\n";
  return engine.result;
}

OracleReport run_repro(const std::string& line, const OracleOptions& options) {
  PolymulSpec pm;
  ConvSpec cv;
  std::uint64_t seed = 0;
  if (parse_polymul_spec(line, pm)) return PolymulOracle(options).run(make_polymul_case(pm));
  if (parse_conv_spec(line, cv)) return HConvOracle(options).run(make_conv_case(cv));
  if (parse_bare_seed(line, seed)) {
    const OracleReport report = PolymulOracle(options).run(make_polymul_case(PolymulSpec{seed}));
    if (!report.ok) return report;
    return HConvOracle(options).run(make_conv_case(ConvSpec{seed}));
  }
  throw std::invalid_argument("run_repro: malformed spec: " + line);
}

namespace testing_hooks {
void set_oracle_delay_hook(void (*hook)()) {
  g_oracle_delay_hook.store(hook, std::memory_order_release);
}
}  // namespace testing_hooks

std::vector<std::string> load_seed_corpus(std::istream& in) {
  std::vector<std::string> entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);
    if (line.empty() || line[0] == '#') continue;
    entries.push_back(line);
  }
  return entries;
}

}  // namespace flash::testing
