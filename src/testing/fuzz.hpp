// The differential fuzz engine behind the `flash_fuzz` driver and the
// ctest `diff` suite.
//
// Case i of a run draws its seed as derive_stream_seed(base_seed, i), so a
// run is reproducible from (base seed, iteration count) and any individual
// failure reproduces from the single printed spec line. On failure the
// engine shrinks the case (see shrink.hpp) and reports the smallest
// still-failing spec — that line is also the format of the committed seed
// corpus, which is replayed before the random cases.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "testing/oracle.hpp"

namespace flash::testing {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iters = 100;
  /// Wall-clock cap in seconds; 0 = unlimited. Whichever of iters /
  /// time_budget_s trips first ends the run (the "quick vs nightly" knob).
  double time_budget_s = 0.0;
  /// Every conv_every-th iteration runs the end-to-end HConv oracle instead
  /// of the (much cheaper) polymul oracle. 0 disables conv cases.
  std::size_t conv_every = 16;
  /// Stop after this many distinct failures (each one costs a shrink).
  std::size_t max_failures = 3;
  OracleOptions oracle;
  /// Corpus entries (spec lines or bare seeds) replayed before random cases.
  std::vector<std::string> corpus;
  bool verbose = false;
};

struct FuzzFailure {
  std::string original;    // spec that first failed
  std::string reproducer;  // smallest still-failing spec after shrinking
  std::string report;      // oracle check + detail
  std::size_t shrink_steps = 0;
};

struct FuzzResult {
  std::size_t cases_run = 0;
  std::vector<FuzzFailure> failures;
  /// True when the wall-clock budget ended the run (as opposed to the
  /// iteration count or the failure cap).
  bool budget_exhausted = false;
  bool ok() const { return failures.empty(); }
};

FuzzResult run_fuzz(const FuzzOptions& options, std::ostream& log);

/// Run the oracle on one reproducer line ("polymul:..." / "conv:..." /
/// a bare seed, which runs both families). Returns the first failure's
/// report, or an ok report. Throws std::invalid_argument on a malformed line.
OracleReport run_repro(const std::string& line, const OracleOptions& options);

/// Read a corpus file: one entry per line, '#' comments and blanks skipped.
std::vector<std::string> load_seed_corpus(std::istream& in);

namespace testing_hooks {
/// Test-only: invoked immediately before every oracle evaluation the fuzz
/// engine performs — initial checks and shrink candidates alike. Lets the
/// budget-overshoot regression test make each evaluation artificially slow
/// and measure how far past --time-budget the engine runs. Install/remove
/// only around a quiesced engine. Pass nullptr to remove.
void set_oracle_delay_hook(void (*hook)());
}  // namespace testing_hooks

}  // namespace flash::testing
