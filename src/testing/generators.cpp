#include "testing/generators.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <sstream>

#include "encoding/encoder.hpp"
#include "hemath/sampler.hpp"
#include "tensor/quant.hpp"

namespace flash::testing {

namespace {

// Sub-stream indices of a case seed. Each aspect of a case draws from its
// own stream so a shape override (the shrinker) never shifts the draws of
// another aspect.
enum Stream : std::uint64_t { kShape = 0, kPattern = 1, kValues = 2, kTrace = 3, kNetwork = 4 };

std::mt19937_64 stream_rng(std::uint64_t seed, std::uint64_t stream) {
  return std::mt19937_64(hemath::derive_stream_seed(seed, stream));
}

/// Largest square spatial dim whose single channel (plus encoding slack)
/// fits a degree-n polynomial with a k x k kernel.
std::size_t fitting_hw(std::size_t n, std::size_t k) {
  std::size_t hw = k;
  while ((hw + 1) * (hw + 1) + (k - 1) * (hw + 1) + (k - 1) <= n) ++hw;
  return hw;
}

bool parse_fields(const std::string& text, const std::string& tag,
                  std::vector<std::pair<std::string, std::uint64_t>>& fields) {
  if (text.rfind(tag + ":", 0) != 0) return false;
  std::stringstream body(text.substr(tag.size() + 1));
  std::string item;
  while (std::getline(body, item, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    std::uint64_t value = 0;
    try {
      value = std::stoull(item.substr(eq + 1), nullptr, 0);
    } catch (const std::exception&) {
      return false;
    }
    fields.emplace_back(item.substr(0, eq), value);
  }
  return !fields.empty();
}

}  // namespace

std::string PolymulSpec::describe() const {
  std::stringstream out;
  out << "polymul:seed=0x" << std::hex << seed << std::dec << ",n=" << n << ",nnz=" << nnz
      << ",densify=" << (densify ? 1 : 0);
  return out.str();
}

std::string ServeTraceSpec::describe() const {
  std::stringstream out;
  out << "trace:seed=0x" << std::hex << seed << std::dec << ",plans=" << plans
      << ",requests=" << requests;
  return out.str();
}

std::string ConvSpec::describe() const {
  std::stringstream out;
  out << "conv:seed=0x" << std::hex << seed << std::dec << ",c=" << c << ",m=" << m << ",h=" << h
      << ",w=" << w << ",k=" << k << ",stride=" << stride << ",pad=" << pad;
  return out.str();
}

bool parse_polymul_spec(const std::string& text, PolymulSpec& out) {
  std::vector<std::pair<std::string, std::uint64_t>> fields;
  if (!parse_fields(text, "polymul", fields)) return false;
  PolymulSpec spec;
  for (const auto& [key, value] : fields) {
    if (key == "seed") spec.seed = value;
    else if (key == "n") spec.n = value;
    else if (key == "nnz") spec.nnz = value;
    else if (key == "densify") spec.densify = value != 0;
    else return false;
  }
  out = spec;
  return true;
}

bool parse_conv_spec(const std::string& text, ConvSpec& out) {
  std::vector<std::pair<std::string, std::uint64_t>> fields;
  if (!parse_fields(text, "conv", fields)) return false;
  ConvSpec spec;
  for (const auto& [key, value] : fields) {
    if (key == "seed") spec.seed = value;
    else if (key == "c") spec.c = value;
    else if (key == "m") spec.m = value;
    else if (key == "h") spec.h = value;
    else if (key == "w") spec.w = value;
    else if (key == "k") spec.k = value;
    else if (key == "stride") spec.stride = value;
    else if (key == "pad") spec.pad = static_cast<int>(value);
    else return false;
  }
  out = spec;
  return true;
}

bool parse_serve_trace_spec(const std::string& text, ServeTraceSpec& out) {
  std::vector<std::pair<std::string, std::uint64_t>> fields;
  if (!parse_fields(text, "trace", fields)) return false;
  ServeTraceSpec spec;
  for (const auto& [key, value] : fields) {
    if (key == "seed") spec.seed = value;
    else if (key == "plans") spec.plans = value;
    else if (key == "requests") spec.requests = value;
    else return false;
  }
  out = spec;
  return true;
}

PolymulCase make_polymul_case(PolymulSpec spec) {
  auto shape = stream_rng(spec.seed, kShape);
  // Every shape quantity is drawn unconditionally so that an override never
  // changes what later draws see.
  const std::size_t derived_n = std::size_t{1} << (8 + shape() % 3);  // 256..1024
  const int log_t = 13 + static_cast<int>(shape() % 5);
  const int log_q = log_t + 26 + static_cast<int>(shape() % 3);
  const bool cheetah = (shape() & 1) != 0;
  const i64 max_w = (shape() & 1) != 0 ? 7 : 3;
  const std::size_t derived_budget = 8 + shape() % 120;  // target nonzeros

  if (spec.n == 0) spec.n = derived_n;
  const std::size_t n = spec.n;

  PolymulCase c;
  c.params = bfv::BfvParams::create(n, log_t, log_q);
  c.max_w = max_w;

  // Ciphertext-side operand: uniform mod q.
  auto values = stream_rng(spec.seed, kValues);
  c.ct.resize(n);
  std::uniform_int_distribution<u64> coeff(0, c.params.q - 1);
  for (auto& v : c.ct) v = coeff(values);

  // Weight pattern: Cheetah-encoded structure (k*k taps per channel stripe)
  // or uniformly random positions; stay well inside the double-FFT
  // exactness margin (nnz <= n/8, |w| <= 7).
  auto pattern_rng = stream_rng(spec.seed, kPattern);
  std::vector<std::size_t> candidates;
  if (cheetah) {
    const std::size_t k = 3;
    encoding::ConvEncoder enc(n, 64, fitting_hw(n, k), fitting_hw(n, k), k);
    candidates = enc.weight_pattern().nonzeros();
  } else {
    std::set<std::size_t> unique;
    std::uniform_int_distribution<std::size_t> pos(0, n - 1);
    for (std::size_t draw = 0; draw < 2 * derived_budget; ++draw) unique.insert(pos(pattern_rng));
    candidates.assign(unique.begin(), unique.end());
  }
  const std::size_t cap = std::max<std::size_t>(1, n / 8);
  std::size_t nnz = spec.nnz ? spec.nnz : std::min(derived_budget, candidates.size());
  nnz = std::min({nnz, candidates.size(), cap});

  // Deterministic nnz-subset of the candidate positions.
  std::shuffle(candidates.begin(), candidates.end(), pattern_rng);
  candidates.resize(nnz);
  if (spec.densify) {
    candidates.clear();
    for (std::size_t i = 0; i < nnz; ++i) candidates.push_back(i);
  }
  std::sort(candidates.begin(), candidates.end());

  c.w.assign(n, 0);
  std::uniform_int_distribution<i64> mag(1, max_w);
  for (std::size_t p : candidates) {
    const i64 v = mag(values);
    c.w[p] = (values() & 1) != 0 ? v : -v;
  }
  c.nnz = candidates.size();
  spec.nnz = c.nnz;
  c.spec = spec;
  return c;
}

ConvCase make_conv_case(ConvSpec spec) {
  auto shape = stream_rng(spec.seed, kShape);
  const std::size_t n = (shape() & 1) != 0 ? 1024 : 512;
  const int log_t = 14 + static_cast<int>(shape() % 4);
  const std::size_t derived_c = 1 + shape() % 3;
  const std::size_t derived_m = 1 + shape() % 3;
  const std::size_t derived_k = 1 + shape() % 3;
  const std::size_t derived_hw = derived_k + 1 + shape() % 8;
  const std::size_t derived_stride = 1 + shape() % 2;
  const int derived_pad = static_cast<int>(shape() % 2);

  if (spec.c == 0) spec.c = derived_c;
  if (spec.m == 0) spec.m = derived_m;
  if (spec.k == 0) spec.k = derived_k;
  if (spec.h == 0) spec.h = std::max(derived_hw, spec.k);
  if (spec.w == 0) spec.w = std::max(derived_hw, spec.k);
  if (spec.stride == 0) spec.stride = derived_stride;
  if (spec.pad < 0) spec.pad = derived_pad;

  ConvCase c;
  c.spec = spec;
  c.params = bfv::BfvParams::create(n, log_t, log_t + 27);

  auto values = stream_rng(spec.seed, kValues);
  c.x = tensor::random_activations(spec.c, spec.h, spec.w, 4, values);
  c.weights = tensor::random_weights(spec.m, spec.c, spec.k, 4, values);
  return c;
}

ServeTrace make_serve_trace(ServeTraceSpec spec) {
  auto trace_rng = stream_rng(spec.seed, kTrace);
  // Draw unconditionally so overrides never shift later draws.
  const std::size_t derived_plans = 1 + trace_rng() % 3;
  const std::size_t derived_requests = 4 + trace_rng() % 9;  // 4..12
  if (spec.plans == 0) spec.plans = derived_plans;
  if (spec.requests == 0) spec.requests = derived_requests;

  ServeTrace trace;
  // Each plan is a full ConvCase derived from its own seed, so a trace plan
  // is individually reproducible as a plain conv case.
  trace.plan_cases.reserve(spec.plans);
  for (std::size_t p = 0; p < spec.plans; ++p) {
    const std::uint64_t plan_seed =
        hemath::derive_stream_seed(hemath::derive_stream_seed(spec.seed, kTrace), p);
    trace.plan_cases.push_back(make_conv_case(ConvSpec{plan_seed}));
  }

  // Request sequence: plan choice and activation values both come from the
  // trace stream (fresh activations per request — the plans share weights,
  // never inputs).
  trace.requests.reserve(spec.requests);
  for (std::size_t i = 0; i < spec.requests; ++i) {
    ServeTrace::Request req;
    req.plan = trace_rng() % spec.plans;
    const ConvCase& layer = trace.plan_cases[req.plan];
    req.x = tensor::random_activations(layer.spec.c, layer.spec.h, layer.spec.w, 4, trace_rng);
    trace.requests.push_back(std::move(req));
  }
  trace.spec = spec;
  return trace;
}

std::string NetworkTraceSpec::describe() const {
  std::stringstream out;
  out << "nettrace:seed=0x" << std::hex << seed << std::dec << ",sessions=" << sessions
      << ",blocks=" << blocks;
  return out.str();
}

bool parse_network_trace_spec(const std::string& text, NetworkTraceSpec& out) {
  std::vector<std::pair<std::string, std::uint64_t>> fields;
  if (!parse_fields(text, "nettrace", fields)) return false;
  NetworkTraceSpec spec;
  for (const auto& [key, value] : fields) {
    if (key == "seed") spec.seed = value;
    else if (key == "sessions") spec.sessions = value;
    else if (key == "blocks") spec.blocks = value;
    else return false;
  }
  out = spec;
  return true;
}

NetworkTrace make_network_trace(NetworkTraceSpec spec) {
  auto net = stream_rng(spec.seed, kNetwork);
  // Draw unconditionally so overrides never shift later draws.
  const std::size_t derived_sessions = 2 + net() % 3;
  const std::size_t derived_blocks = 1 + net() % 2;
  const std::size_t width = 2 + net() % 2;
  const std::size_t in_c = 1 + net() % 2;
  const std::size_t spatial = 5 + net() % 3;
  const std::size_t stem_variant = net() % 4;
  const std::size_t classes = 2 + net() % 3;
  if (spec.sessions == 0) spec.sessions = derived_sessions;
  if (spec.blocks == 0) spec.blocks = derived_blocks;

  NetworkTrace trace;
  trace.spec = spec;
  trace.params = bfv::BfvParams::create(1024, 17, 44);
  trace.in_c = in_c;
  trace.in_h = spatial;
  trace.in_w = spatial;

  const auto shift_for = [](std::size_t taps) {
    const int s = tensor::sum_product_bits(4, 4, taps) - 4 - 2;
    return s < 0 ? 0 : s;
  };

  // Stem variant cycles the kernel geometry classes the serve path must
  // handle: square 'same', rectangular (1x3 / 3x1, unpadded), and strided.
  auto values = stream_rng(spec.seed, kValues);
  tensor::NetLayer stem;
  switch (stem_variant) {
    case 0: stem.weights = tensor::random_weights(width, in_c, 3, 4, values); stem.pad = 1; break;
    case 1: stem.weights = tensor::random_weights(width, in_c, 1, 3, 4, values); break;
    case 2: stem.weights = tensor::random_weights(width, in_c, 3, 1, 4, values); break;
    default:
      stem.weights = tensor::random_weights(width, in_c, 3, 4, values);
      stem.stride = 2;
      stem.pad = 1;
      break;
  }
  stem.requant_shift =
      shift_for(in_c * stem.weights.kernel_h() * stem.weights.kernel_w());
  stem.clamp_bits = 4;
  stem.relu = true;
  stem.save_output = spec.blocks > 0;
  const tensor::Shape3 body =
      tensor::LayerStack::layer_output_shape({in_c, spatial, spatial}, stem);
  trace.stack.layers.push_back(std::move(stem));

  const int block_shift = shift_for(width * 9);
  for (std::size_t b = 0; b < spec.blocks; ++b) {
    tensor::NetLayer c1;
    c1.weights = tensor::random_weights(width, width, 3, 4, values);
    c1.pad = 1;
    c1.requant_shift = block_shift;
    c1.clamp_bits = 4;
    c1.relu = true;
    trace.stack.layers.push_back(std::move(c1));
    tensor::NetLayer c2;
    c2.weights = tensor::random_weights(width, width, 3, 4, values);
    c2.pad = 1;
    c2.requant_shift = block_shift;
    c2.clamp_bits = 4;
    trace.stack.layers.push_back(std::move(c2));
    tensor::NetLayer join;
    join.kind = tensor::NetLayer::Kind::kResidualAdd;
    join.source = b;  // stem saved slot 0, block b's join slot b+1
    join.clamp_bits = 4;
    join.relu = true;
    join.save_output = b + 1 < spec.blocks;
    trace.stack.layers.push_back(std::move(join));
  }

  tensor::NetLayer fc;
  fc.kind = tensor::NetLayer::Kind::kFullyConnected;
  fc.fc_out = classes;
  // classes x features x 1 x 1 is row-major classes*features — exactly the
  // FC layout — and reuses the quantized-weight distribution.
  fc.fc_weights = tensor::random_weights(classes, body.volume(), 1, 1, 4, values).data();
  trace.stack.layers.push_back(std::move(fc));

  trace.inputs.reserve(spec.sessions);
  for (std::size_t s = 0; s < spec.sessions; ++s) {
    trace.inputs.push_back(tensor::random_activations(in_c, spatial, spatial, 4, net));
  }
  return trace;
}

}  // namespace flash::testing
