// Deterministic workload generators for the differential-oracle suite.
//
// Every case is a pure function of a 64-bit seed plus a handful of shape
// overrides: the seed fans out into independent sub-streams (shape, pattern,
// values) via hemath::derive_stream_seed, so a printed `seed=...` line is a
// complete reproducer, and the shrinker can edit one shape knob (halve n,
// strip channels, densify the pattern) without perturbing anything else the
// case derives from the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bfv/params.hpp"
#include "sparsefft/pattern.hpp"
#include "tensor/network.hpp"
#include "tensor/tensor.hpp"

namespace flash::testing {

using hemath::i64;
using hemath::u64;

/// Shape of one negacyclic-polymul differential case. Zero means "derive
/// from the seed"; the generator writes the resolved values back, so the
/// spec attached to a generated case is always fully explicit (what the
/// shrinker mutates and the reproducer prints).
struct PolymulSpec {
  std::uint64_t seed = 0;
  std::size_t n = 0;    // ring degree (power of two)
  std::size_t nnz = 0;  // weight nonzeros
  /// Replace the (possibly Cheetah-structured) pattern by a contiguous
  /// prefix of the same weight — the shrinker's "is sparsity structure
  /// essential to this failure?" probe.
  bool densify = false;

  std::string describe() const;
  bool operator==(const PolymulSpec&) const = default;
};

struct PolymulCase {
  PolymulSpec spec;  // resolved
  bfv::BfvParams params;
  std::vector<u64> ct;  // uniform mod q: the ciphertext-side operand
  std::vector<i64> w;   // sparse signed weight values, |w[i]| <= max_w
  i64 max_w = 0;
  std::size_t nnz = 0;  // actual nonzero count of w
};

PolymulCase make_polymul_case(PolymulSpec spec);

/// Shape of one end-to-end HConv differential case (run through the full
/// one-round protocol and checked against cleartext conv2d). Zero fields
/// derive from the seed; `pad` uses -1 as the derive sentinel because 0 is a
/// meaningful padding.
struct ConvSpec {
  std::uint64_t seed = 0;
  std::size_t c = 0, m = 0;    // input / output channels
  std::size_t h = 0, w = 0;    // input spatial dims (pre-padding)
  std::size_t k = 0;           // square kernel
  std::size_t stride = 0;
  int pad = -1;

  std::string describe() const;
  bool operator==(const ConvSpec&) const = default;
};

struct ConvCase {
  ConvSpec spec;  // resolved
  bfv::BfvParams params;
  tensor::Tensor3 x;
  tensor::Tensor4 weights;
};

ConvCase make_conv_case(ConvSpec spec);

/// Shape of one mixed-plan serving trace: a handful of distinct layer plans
/// plus a request sequence that interleaves them (the ConvServer batching
/// workload). Zero fields derive from the seed. The trace draws from its own
/// kTrace sub-stream, so a trace and the conv cases embedded in it never
/// perturb each other's derivations.
struct ServeTraceSpec {
  std::uint64_t seed = 0;
  std::size_t plans = 0;     // distinct layer plans
  std::size_t requests = 0;  // total requests across all plans

  std::string describe() const;
  bool operator==(const ServeTraceSpec&) const = default;
};

struct ServeTrace {
  ServeTraceSpec spec;  // resolved
  /// One layer per plan (params + weights + geometry); the embedded `x` is
  /// the plan's canonical activation shape, not a request.
  std::vector<ConvCase> plan_cases;
  struct Request {
    std::size_t plan = 0;
    tensor::Tensor3 x{1, 1, 1};  // fresh activation with the plan's shape
  };
  std::vector<Request> requests;  // submission order
};

ServeTrace make_serve_trace(ServeTraceSpec spec);

/// Shape of one whole-network serving trace: a seed-derived residual
/// LayerStack (stem variant cycles through square / rectangular / strided
/// kernels, then residual blocks and an FC head) plus per-session inputs —
/// the NetworkServer session-pipelining workload. Zero fields derive from
/// the seed; draws come from the dedicated kNetwork sub-stream.
struct NetworkTraceSpec {
  std::uint64_t seed = 0;
  std::size_t sessions = 0;  // concurrent sessions of the same network
  std::size_t blocks = 0;    // residual blocks after the stem

  std::string describe() const;
  bool operator==(const NetworkTraceSpec&) const = default;
};

struct NetworkTrace {
  NetworkTraceSpec spec;  // resolved
  bfv::BfvParams params;
  tensor::LayerStack stack;
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::vector<tensor::Tensor3> inputs;  // one per session
};

NetworkTrace make_network_trace(NetworkTraceSpec spec);

/// Parse the output of PolymulSpec/ConvSpec::describe back into a spec.
/// Returns false on malformed input. This is the `flash_fuzz --repro` path.
bool parse_polymul_spec(const std::string& text, PolymulSpec& out);
bool parse_conv_spec(const std::string& text, ConvSpec& out);
bool parse_serve_trace_spec(const std::string& text, ServeTraceSpec& out);
bool parse_network_trace_spec(const std::string& text, NetworkTraceSpec& out);

}  // namespace flash::testing
