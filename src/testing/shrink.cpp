#include "testing/shrink.hpp"

#include <algorithm>

namespace flash::testing {

std::vector<Reducer<PolymulSpec>> polymul_reducers() {
  return {
      [](PolymulSpec& s) {
        if (s.n <= 16) return false;
        s.n /= 2;
        s.nnz = std::min(s.nnz, std::max<std::size_t>(1, s.n / 8));
        return true;
      },
      [](PolymulSpec& s) {
        if (s.nnz <= 1) return false;
        s.nnz /= 2;
        return true;
      },
      // Fine-grained tail: once halving overshoots, step down one nonzero at
      // a time so the reported reproducer is exactly minimal in nnz.
      [](PolymulSpec& s) {
        if (s.nnz <= 1) return false;
        s.nnz -= 1;
        return true;
      },
      [](PolymulSpec& s) {
        if (s.densify) return false;
        s.densify = true;
        return true;
      },
  };
}

std::vector<Reducer<ConvSpec>> conv_reducers() {
  return {
      [](ConvSpec& s) {
        if (s.m <= 1) return false;
        s.m = (s.m + 1) / 2;
        return true;
      },
      [](ConvSpec& s) {
        if (s.c <= 1) return false;
        s.c = (s.c + 1) / 2;
        return true;
      },
      [](ConvSpec& s) {
        if (s.h <= s.k && s.w <= s.k) return false;
        s.h = std::max(s.k, (s.h + 1) / 2);
        s.w = std::max(s.k, (s.w + 1) / 2);
        return true;
      },
      [](ConvSpec& s) {
        if (s.stride <= 1) return false;
        s.stride = 1;
        return true;
      },
      [](ConvSpec& s) {
        if (s.pad <= 0) return false;
        s.pad = 0;
        return true;
      },
  };
}

}  // namespace flash::testing
