// Approximation-aware training (paper §IV-C1): "with further
// approximation-aware training, k can be reduced to around 5 ... while the
// inference accuracy remains nearly unchanged".
//
// The mechanism is noise-injection training: exposing the network to the
// approximate datapath's error during training teaches it margins that
// absorb the error at inference. We reproduce it in miniature: a multi-class
// perceptron trained on synthetic labeled features, with Gaussian noise of
// the approximate-FFT-calibrated magnitude injected into the features of
// every update. The claim to verify: under test-time noise, the
// noise-trained model retains (almost) clean accuracy while the clean-
// trained model degrades.
#pragma once

#include <random>
#include <vector>

#include "tensor/resnet.hpp"

namespace flash::tensor {

struct LabeledDataset {
  std::vector<std::vector<i64>> features;
  std::vector<std::size_t> labels;
  std::size_t classes = 0;

  /// Linearly separable synthetic data: a hidden teacher classifier labels
  /// random quantized feature vectors (ties/small margins are rejected so
  /// clean training can reach ~100%).
  static LabeledDataset synthetic(std::size_t samples, std::size_t features, std::size_t classes,
                                  int bits, double min_margin, std::mt19937_64& rng);
};

struct TrainOptions {
  std::size_t epochs = 12;
  /// Std of the Gaussian feature noise injected during training (0 = clean
  /// training). Calibrate to the approximate datapath's conv-output error.
  double train_noise_std = 0.0;
  /// Independent noise draws averaged per update (stabilizes training).
  int noise_draws = 1;
};

/// Multi-class averaged perceptron.
class LinearModel {
 public:
  LinearModel(std::size_t features, std::size_t classes)
      : features_(features), classes_(classes), weights_(features * classes, 0) {}

  std::size_t predict(const std::vector<i64>& x) const;
  std::size_t predict_noisy(const std::vector<i64>& x, double noise_std, std::mt19937_64& rng) const;

  const std::vector<i64>& weights() const { return weights_; }
  std::vector<i64>& weights() { return weights_; }
  std::size_t classes() const { return classes_; }

 private:
  std::size_t features_, classes_;
  std::vector<i64> weights_;
};

/// Train on the dataset (optionally with injected noise) and return the
/// averaged model.
LinearModel train(const LabeledDataset& data, const TrainOptions& options, std::mt19937_64& rng);

/// Accuracy (fraction correct) with test-time feature noise of the given std.
double evaluate(const LinearModel& model, const LabeledDataset& data, double noise_std,
                std::mt19937_64& rng);

}  // namespace flash::tensor
