// ResNet-18 / ResNet-50 linear-layer inventories and a synthetic quantized
// network for accuracy-proxy experiments.
//
// The paper evaluates HConv over the convolutional (linear) layers of
// ImageNet ResNets. We reproduce the exact layer geometry (every conv shape,
// stride, padding) so operation counts, encodings, and sparsity statistics
// match; weights are synthetic (see DESIGN.md substitutions).
#pragma once

#include <random>
#include <string>
#include <vector>

#include "tensor/conv.hpp"
#include "tensor/quant.hpp"

namespace flash::tensor {

/// One convolutional layer of the network.
struct LayerConfig {
  std::string name;
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t out_c = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Multiply-accumulates of the layer in cleartext.
  std::uint64_t macs() const;
};

/// Every conv layer of ResNet-18 (ImageNet, 224x224 input), in order.
std::vector<LayerConfig> resnet18_conv_layers();

/// Every conv layer of ResNet-50 (ImageNet, 224x224 input), in order.
std::vector<LayerConfig> resnet50_conv_layers();

/// Scale a layer inventory to a CPU-tractable software sweep: spatial
/// extents capped at max_hw and channel counts at max_c, preserving kernel /
/// stride / padding geometry (so the protocol still exercises the same
/// phase decompositions and tilings), and deduplicating layers that collapse
/// to the same scaled shape. This is what the `--threads` layer-sweep
/// benches actually execute through the HE/2PC protocol.
std::vector<LayerConfig> scale_layers_for_sweep(const std::vector<LayerConfig>& layers,
                                                std::size_t max_hw, std::size_t max_c);

/// A quantized residual block (paper Fig. 5(a)): conv -> requant -> relu ->
/// conv -> requant -> add identity -> relu. Weight/activation bit-widths are
/// parameters (W4A4 in the paper's headline experiments).
struct QuantizedBlock {
  Tensor4 conv1;
  Tensor4 conv2;
  int act_bits = 4;
  int weight_bits = 4;
  int requant_shift = 6;  // discards this many sum-product LSBs

  static QuantizedBlock random(std::size_t channels, std::size_t k, int w_bits, int a_bits,
                               std::mt19937_64& rng);

  /// Exact forward pass.
  Tensor3 forward(const Tensor3& input) const;

  /// Forward pass with additive integer error injected into each conv's raw
  /// sum-product output (modelling approximate-FFT HConv error). The errors
  /// vector supplies one perturbation tensor per conv (sized like the conv
  /// output); pass empty tensors for no injection.
  Tensor3 forward_with_error(const Tensor3& input, const Tensor3& err1, const Tensor3& err2) const;

  /// Forward pass with an injected convolution executor (stride-1 'same');
  /// used to run the block's convs over the HE/2PC protocol.
  template <typename ConvExec>
  Tensor3 forward_with(const Tensor3& input, const ConvExec& conv) const {
    Tensor3 sp1 = conv(input, conv1);
    requantize(sp1.data(), requant_shift, act_bits);
    const Tensor3 a1 = relu(std::move(sp1));
    Tensor3 sp2 = conv(a1, conv2);
    requantize(sp2.data(), requant_shift, act_bits);
    Tensor3 out = add(sp2, input);
    for (auto& v : out.data()) v = clamp_to_bits(v, act_bits);
    return relu(std::move(out));
  }
};

/// A tiny synthetic classifier on top of pooled block features, used to
/// measure the network-level robustness proxy: the fraction of inputs whose
/// argmax class flips when errors are injected.
struct SyntheticClassifier {
  std::vector<i64> fc_weights;  // classes x features
  std::size_t classes = 10;

  static SyntheticClassifier random(std::size_t features, std::size_t classes, int bits,
                                    std::mt19937_64& rng);

  std::size_t predict(const std::vector<i64>& features) const;
};

}  // namespace flash::tensor
