#include "tensor/tensor.hpp"

#include <cstdlib>

namespace flash::tensor {

i64 max_abs(const std::vector<i64>& values) {
  i64 m = 0;
  for (i64 v : values) {
    const i64 a = v < 0 ? -v : v;
    if (a > m) m = a;
  }
  return m;
}

}  // namespace flash::tensor
