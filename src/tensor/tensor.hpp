// Minimal dense integer tensors for the quantized-CNN substrate.
//
// The private-inference protocol computes over low-bit quantized integers
// (W4A4 in the paper), so the canonical element type is int64 holding small
// quantized values; the wide type absorbs sum-products without overflow.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace flash::tensor {

using i64 = std::int64_t;

/// C x H x W activation tensor.
class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(std::size_t c, std::size_t h, std::size_t w) : c_(c), h_(h), w_(w), data_(c * h * w, 0) {}

  std::size_t channels() const { return c_; }
  std::size_t height() const { return h_; }
  std::size_t width() const { return w_; }
  std::size_t size() const { return data_.size(); }

  i64& at(std::size_t c, std::size_t y, std::size_t x) { return data_[(c * h_ + y) * w_ + x]; }
  i64 at(std::size_t c, std::size_t y, std::size_t x) const { return data_[(c * h_ + y) * w_ + x]; }

  const std::vector<i64>& data() const { return data_; }
  std::vector<i64>& data() { return data_; }

  bool operator==(const Tensor3&) const = default;

 private:
  std::size_t c_ = 0, h_ = 0, w_ = 0;
  std::vector<i64> data_;
};

/// M x C x K x K weight tensor.
class Tensor4 {
 public:
  Tensor4() = default;
  Tensor4(std::size_t m, std::size_t c, std::size_t kh, std::size_t kw)
      : m_(m), c_(c), kh_(kh), kw_(kw), data_(m * c * kh * kw, 0) {}

  std::size_t out_channels() const { return m_; }
  std::size_t in_channels() const { return c_; }
  std::size_t kernel_h() const { return kh_; }
  std::size_t kernel_w() const { return kw_; }
  std::size_t size() const { return data_.size(); }

  i64& at(std::size_t m, std::size_t c, std::size_t i, std::size_t j) {
    return data_[((m * c_ + c) * kh_ + i) * kw_ + j];
  }
  i64 at(std::size_t m, std::size_t c, std::size_t i, std::size_t j) const {
    return data_[((m * c_ + c) * kh_ + i) * kw_ + j];
  }

  const std::vector<i64>& data() const { return data_; }
  std::vector<i64>& data() { return data_; }

 private:
  std::size_t m_ = 0, c_ = 0, kh_ = 0, kw_ = 0;
  std::vector<i64> data_;
};

/// Max |value| in a tensor.
i64 max_abs(const std::vector<i64>& values);

}  // namespace flash::tensor
