#include "tensor/quant.hpp"

#include <cmath>

namespace flash::tensor {

i64 quant_min(int bits) { return -(i64{1} << (bits - 1)); }
i64 quant_max(int bits) { return (i64{1} << (bits - 1)) - 1; }

i64 clamp_to_bits(i64 v, int bits) {
  const i64 lo = quant_min(bits), hi = quant_max(bits);
  return v < lo ? lo : (v > hi ? hi : v);
}

i64 requantize(i64 sum_product, int shift, int out_bits) {
  if (shift > 0) {
    const i64 half = i64{1} << (shift - 1);
    sum_product = (sum_product + half) >> shift;
  }
  return clamp_to_bits(sum_product, out_bits);
}

void requantize(std::vector<i64>& values, int shift, int out_bits) {
  for (auto& v : values) v = requantize(v, shift, out_bits);
}

int sum_product_bits(int a_bits, int w_bits, std::size_t taps) {
  double bits = a_bits + w_bits + std::log2(static_cast<double>(taps == 0 ? 1 : taps));
  return static_cast<int>(std::ceil(bits)) + 1;  // +1 sign
}

Tensor4 random_weights(std::size_t m, std::size_t c, std::size_t k, int bits, std::mt19937_64& rng) {
  return random_weights(m, c, k, k, bits, rng);
}

Tensor4 random_weights(std::size_t m, std::size_t c, std::size_t kh, std::size_t kw, int bits,
                       std::mt19937_64& rng) {
  Tensor4 w(m, c, kh, kw);
  // sigma ~ quarter of the positive range gives realistic clipping (~2%).
  std::normal_distribution<double> dist(0.0, static_cast<double>(quant_max(bits)) / 2.5);
  for (auto& v : w.data()) v = clamp_to_bits(static_cast<i64>(std::llround(dist(rng))), bits);
  return w;
}

Tensor3 random_activations(std::size_t c, std::size_t h, std::size_t w, int bits, std::mt19937_64& rng) {
  Tensor3 x(c, h, w);
  std::normal_distribution<double> dist(0.0, static_cast<double>(quant_max(bits)) / 2.0);
  for (auto& v : x.data()) {
    const i64 s = static_cast<i64>(std::llround(std::abs(dist(rng))));
    v = s > quant_max(bits) ? quant_max(bits) : s;
  }
  return x;
}

}  // namespace flash::tensor
