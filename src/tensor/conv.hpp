// Integer convolution and the other quantized-CNN layer primitives. The
// direct convolution here is the cleartext oracle every homomorphic path is
// checked against.
#pragma once

#include "tensor/tensor.hpp"

namespace flash::tensor {

struct ConvSpec {
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_dim(std::size_t in, std::size_t k) const {
    return (in + 2 * pad - k) / stride + 1;
  }
};

/// Direct conv2d: out[m, y, x] = sum_{c,i,j} in[c, y*s+i-p, x*s+j-p] * w[m,c,i,j].
Tensor3 conv2d(const Tensor3& input, const Tensor4& weights, const ConvSpec& spec);

/// Elementwise max(v, 0).
Tensor3 relu(Tensor3 input);

/// 2x2 stride-2 max pool (dims must be even).
Tensor3 max_pool2(const Tensor3& input);

/// Global average pool to a C-vector (integer mean, rounded).
std::vector<i64> global_avg_pool(const Tensor3& input);

/// Fully connected layer: out[j] = sum_i in[i] * w[j*len+i].
std::vector<i64> linear(const std::vector<i64>& input, const std::vector<i64>& weights,
                        std::size_t out_features);

/// Residual add (shapes must match).
Tensor3 add(const Tensor3& a, const Tensor3& b);

}  // namespace flash::tensor
