#include "tensor/resnet.hpp"

#include <algorithm>
#include <stdexcept>

namespace flash::tensor {

std::uint64_t LayerConfig::macs() const {
  return static_cast<std::uint64_t>(out_c) * in_c * kernel * kernel * out_h() * out_w();
}

namespace {

LayerConfig conv(std::string name, std::size_t in_c, std::size_t hw, std::size_t out_c,
                 std::size_t k, std::size_t stride) {
  LayerConfig c;
  c.name = std::move(name);
  c.in_c = in_c;
  c.in_h = c.in_w = hw;
  c.out_c = out_c;
  c.kernel = k;
  c.stride = stride;
  c.pad = k / 2;  // "same" padding for odd kernels, none for 1x1
  return c;
}

}  // namespace

std::vector<LayerConfig> resnet18_conv_layers() {
  std::vector<LayerConfig> layers;
  layers.push_back(conv("conv1", 3, 224, 64, 7, 2));
  // layer1: two basic blocks at 56x56, 64 channels.
  for (int b = 0; b < 2; ++b) {
    layers.push_back(conv("layer1." + std::to_string(b) + ".conv1", 64, 56, 64, 3, 1));
    layers.push_back(conv("layer1." + std::to_string(b) + ".conv2", 64, 56, 64, 3, 1));
  }
  // layer2: first block downsamples 56 -> 28, 64 -> 128.
  layers.push_back(conv("layer2.0.conv1", 64, 56, 128, 3, 2));
  layers.push_back(conv("layer2.0.conv2", 128, 28, 128, 3, 1));
  layers.push_back(conv("layer2.0.downsample", 64, 56, 128, 1, 2));
  layers.push_back(conv("layer2.1.conv1", 128, 28, 128, 3, 1));
  layers.push_back(conv("layer2.1.conv2", 128, 28, 128, 3, 1));
  // layer3: 28 -> 14, 128 -> 256.
  layers.push_back(conv("layer3.0.conv1", 128, 28, 256, 3, 2));
  layers.push_back(conv("layer3.0.conv2", 256, 14, 256, 3, 1));
  layers.push_back(conv("layer3.0.downsample", 128, 28, 256, 1, 2));
  layers.push_back(conv("layer3.1.conv1", 256, 14, 256, 3, 1));
  layers.push_back(conv("layer3.1.conv2", 256, 14, 256, 3, 1));
  // layer4: 14 -> 7, 256 -> 512.
  layers.push_back(conv("layer4.0.conv1", 256, 14, 512, 3, 2));
  layers.push_back(conv("layer4.0.conv2", 512, 7, 512, 3, 1));
  layers.push_back(conv("layer4.0.downsample", 256, 14, 512, 1, 2));
  layers.push_back(conv("layer4.1.conv1", 512, 7, 512, 3, 1));
  layers.push_back(conv("layer4.1.conv2", 512, 7, 512, 3, 1));
  return layers;
}

std::vector<LayerConfig> resnet50_conv_layers() {
  std::vector<LayerConfig> layers;
  layers.push_back(conv("conv1", 3, 224, 64, 7, 2));

  struct Stage {
    std::size_t blocks, in_c, mid_c, out_c, hw;  // hw = input spatial dim of stage
    std::size_t stride;                          // stride of the first block's 3x3
  };
  const Stage stages[] = {
      {3, 64, 64, 256, 56, 1},
      {4, 256, 128, 512, 56, 2},
      {6, 512, 256, 1024, 28, 2},
      {3, 1024, 512, 2048, 14, 2},
  };
  int stage_idx = 1;
  for (const Stage& st : stages) {
    std::size_t in_c = st.in_c;
    std::size_t hw = st.hw;
    for (std::size_t b = 0; b < st.blocks; ++b) {
      const std::string prefix = "layer" + std::to_string(stage_idx) + "." + std::to_string(b);
      const std::size_t stride = (b == 0) ? st.stride : 1;
      layers.push_back(conv(prefix + ".conv1", in_c, hw, st.mid_c, 1, 1));
      layers.push_back(conv(prefix + ".conv2", st.mid_c, hw, st.mid_c, 3, stride));
      const std::size_t out_hw = (b == 0) ? hw / st.stride : hw;
      layers.push_back(conv(prefix + ".conv3", st.mid_c, out_hw, st.out_c, 1, 1));
      if (b == 0) {
        layers.push_back(conv(prefix + ".downsample", in_c, hw, st.out_c, 1, st.stride));
      }
      in_c = st.out_c;
      hw = out_hw;
    }
    ++stage_idx;
  }
  return layers;
}

QuantizedBlock QuantizedBlock::random(std::size_t channels, std::size_t k, int w_bits, int a_bits,
                                      std::mt19937_64& rng) {
  QuantizedBlock block;
  block.conv1 = random_weights(channels, channels, k, w_bits, rng);
  block.conv2 = random_weights(channels, channels, k, w_bits, rng);
  block.weight_bits = w_bits;
  block.act_bits = a_bits;
  // Shift chosen so typical sum-products land back in the activation range.
  block.requant_shift = sum_product_bits(a_bits, w_bits, channels * k * k) - a_bits - 2;
  if (block.requant_shift < 0) block.requant_shift = 0;
  return block;
}

Tensor3 QuantizedBlock::forward(const Tensor3& input) const {
  const Tensor3 zero1, zero2;
  return forward_with_error(input, zero1, zero2);
}

Tensor3 QuantizedBlock::forward_with_error(const Tensor3& input, const Tensor3& err1,
                                           const Tensor3& err2) const {
  const ConvSpec spec{1, conv1.kernel_h() / 2};
  Tensor3 sp1 = conv2d(input, conv1, spec);
  if (err1.size() != 0) {
    if (err1.size() != sp1.size()) throw std::invalid_argument("forward_with_error: err1 shape");
    for (std::size_t i = 0; i < sp1.data().size(); ++i) sp1.data()[i] += err1.data()[i];
  }
  requantize(sp1.data(), requant_shift, act_bits);
  Tensor3 a1 = relu(std::move(sp1));

  Tensor3 sp2 = conv2d(a1, conv2, spec);
  if (err2.size() != 0) {
    if (err2.size() != sp2.size()) throw std::invalid_argument("forward_with_error: err2 shape");
    for (std::size_t i = 0; i < sp2.data().size(); ++i) sp2.data()[i] += err2.data()[i];
  }
  requantize(sp2.data(), requant_shift, act_bits);

  Tensor3 out = add(sp2, input);  // residual connection
  for (auto& v : out.data()) v = clamp_to_bits(v, act_bits);
  return relu(std::move(out));
}

SyntheticClassifier SyntheticClassifier::random(std::size_t features, std::size_t classes, int bits,
                                                std::mt19937_64& rng) {
  SyntheticClassifier c;
  c.classes = classes;
  c.fc_weights.resize(features * classes);
  std::normal_distribution<double> dist(0.0, static_cast<double>(quant_max(bits)) / 2.5);
  for (auto& v : c.fc_weights) v = clamp_to_bits(static_cast<i64>(std::llround(dist(rng))), bits);
  return c;
}

std::vector<LayerConfig> scale_layers_for_sweep(const std::vector<LayerConfig>& layers,
                                                std::size_t max_hw, std::size_t max_c) {
  std::vector<LayerConfig> out;
  for (const LayerConfig& l : layers) {
    LayerConfig s = l;
    // Keep the input at least one kernel (minus padding) tall so the scaled
    // layer still has a non-empty output.
    const std::size_t min_hw = l.kernel > 2 * l.pad ? l.kernel - 2 * l.pad : 1;
    s.in_h = std::max(min_hw, std::min(l.in_h, max_hw));
    s.in_w = std::max(min_hw, std::min(l.in_w, max_hw));
    s.in_c = std::min(l.in_c, max_c);
    s.out_c = std::min(l.out_c, max_c);
    const bool dup = std::any_of(out.begin(), out.end(), [&](const LayerConfig& o) {
      return o.in_c == s.in_c && o.in_h == s.in_h && o.in_w == s.in_w && o.out_c == s.out_c &&
             o.kernel == s.kernel && o.stride == s.stride && o.pad == s.pad;
    });
    if (!dup) out.push_back(s);
  }
  return out;
}

std::size_t SyntheticClassifier::predict(const std::vector<i64>& features) const {
  const std::vector<i64> logits = linear(features, fc_weights, classes);
  std::size_t best = 0;
  for (std::size_t j = 1; j < logits.size(); ++j) {
    if (logits[j] > logits[best]) best = j;
  }
  return best;
}

}  // namespace flash::tensor
