#include "tensor/conv.hpp"

#include <algorithm>
#include <stdexcept>

namespace flash::tensor {

Tensor3 conv2d(const Tensor3& input, const Tensor4& weights, const ConvSpec& spec) {
  if (input.channels() != weights.in_channels()) {
    throw std::invalid_argument("conv2d: channel mismatch");
  }
  const std::size_t k_h = weights.kernel_h();
  const std::size_t k_w = weights.kernel_w();
  const std::size_t out_h = spec.out_dim(input.height(), k_h);
  const std::size_t out_w = spec.out_dim(input.width(), k_w);
  Tensor3 out(weights.out_channels(), out_h, out_w);
  for (std::size_t m = 0; m < weights.out_channels(); ++m) {
    for (std::size_t y = 0; y < out_h; ++y) {
      for (std::size_t x = 0; x < out_w; ++x) {
        i64 acc = 0;
        for (std::size_t c = 0; c < input.channels(); ++c) {
          for (std::size_t i = 0; i < k_h; ++i) {
            const std::ptrdiff_t yy = static_cast<std::ptrdiff_t>(y * spec.stride + i) -
                                      static_cast<std::ptrdiff_t>(spec.pad);
            if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(input.height())) continue;
            for (std::size_t j = 0; j < k_w; ++j) {
              const std::ptrdiff_t xx = static_cast<std::ptrdiff_t>(x * spec.stride + j) -
                                        static_cast<std::ptrdiff_t>(spec.pad);
              if (xx < 0 || xx >= static_cast<std::ptrdiff_t>(input.width())) continue;
              acc += input.at(c, static_cast<std::size_t>(yy), static_cast<std::size_t>(xx)) *
                     weights.at(m, c, i, j);
            }
          }
        }
        out.at(m, y, x) = acc;
      }
    }
  }
  return out;
}

Tensor3 relu(Tensor3 input) {
  for (auto& v : input.data()) v = std::max<i64>(v, 0);
  return input;
}

Tensor3 max_pool2(const Tensor3& input) {
  if (input.height() % 2 != 0 || input.width() % 2 != 0) {
    throw std::invalid_argument("max_pool2: dims must be even");
  }
  Tensor3 out(input.channels(), input.height() / 2, input.width() / 2);
  for (std::size_t c = 0; c < input.channels(); ++c) {
    for (std::size_t y = 0; y < out.height(); ++y) {
      for (std::size_t x = 0; x < out.width(); ++x) {
        out.at(c, y, x) = std::max(std::max(input.at(c, 2 * y, 2 * x), input.at(c, 2 * y, 2 * x + 1)),
                                   std::max(input.at(c, 2 * y + 1, 2 * x), input.at(c, 2 * y + 1, 2 * x + 1)));
      }
    }
  }
  return out;
}

std::vector<i64> global_avg_pool(const Tensor3& input) {
  std::vector<i64> out(input.channels(), 0);
  const i64 area = static_cast<i64>(input.height() * input.width());
  for (std::size_t c = 0; c < input.channels(); ++c) {
    i64 acc = 0;
    for (std::size_t y = 0; y < input.height(); ++y) {
      for (std::size_t x = 0; x < input.width(); ++x) acc += input.at(c, y, x);
    }
    out[c] = (acc + area / 2) / area;
  }
  return out;
}

std::vector<i64> linear(const std::vector<i64>& input, const std::vector<i64>& weights,
                        std::size_t out_features) {
  if (weights.size() != input.size() * out_features) {
    throw std::invalid_argument("linear: weight size mismatch");
  }
  std::vector<i64> out(out_features, 0);
  for (std::size_t j = 0; j < out_features; ++j) {
    i64 acc = 0;
    for (std::size_t i = 0; i < input.size(); ++i) acc += input[i] * weights[j * input.size() + i];
    out[j] = acc;
  }
  return out;
}

Tensor3 add(const Tensor3& a, const Tensor3& b) {
  if (a.channels() != b.channels() || a.height() != b.height() || a.width() != b.width()) {
    throw std::invalid_argument("add: shape mismatch");
  }
  Tensor3 out = a;
  for (std::size_t i = 0; i < out.data().size(); ++i) out.data()[i] += b.data()[i];
  return out;
}

}  // namespace flash::tensor
