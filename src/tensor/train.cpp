#include "tensor/train.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/quant.hpp"

namespace flash::tensor {

namespace {
i64 dot(const std::vector<i64>& w, std::size_t row, const std::vector<i64>& x) {
  i64 acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += w[row * x.size() + i] * x[i];
  return acc;
}

std::size_t argmax_class(const std::vector<i64>& w, std::size_t classes,
                         const std::vector<i64>& x) {
  std::size_t best = 0;
  i64 best_v = dot(w, 0, x);
  for (std::size_t c = 1; c < classes; ++c) {
    const i64 v = dot(w, c, x);
    if (v > best_v) {
      best_v = v;
      best = c;
    }
  }
  return best;
}

std::vector<i64> add_noise(const std::vector<i64>& x, double noise_std, std::mt19937_64& rng) {
  if (noise_std <= 0.0) return x;
  std::normal_distribution<double> noise(0.0, noise_std);
  std::vector<i64> out = x;
  for (auto& v : out) v += static_cast<i64>(std::llround(noise(rng)));
  return out;
}
}  // namespace

LabeledDataset LabeledDataset::synthetic(std::size_t samples, std::size_t features,
                                         std::size_t classes, int bits, double min_margin,
                                         std::mt19937_64& rng) {
  LabeledDataset data;
  data.classes = classes;
  // Hidden teacher.
  std::normal_distribution<double> wdist(0.0, static_cast<double>(quant_max(bits)) / 2.0);
  std::vector<i64> teacher(features * classes);
  for (auto& v : teacher) v = clamp_to_bits(static_cast<i64>(std::llround(wdist(rng))), bits);

  std::uniform_int_distribution<i64> xdist(quant_min(bits), quant_max(bits));
  while (data.features.size() < samples) {
    std::vector<i64> x(features);
    for (auto& v : x) v = xdist(rng);
    // Label by the teacher; reject small-margin samples so the task is
    // cleanly separable.
    std::vector<i64> scores(classes);
    for (std::size_t c = 0; c < classes; ++c) scores[c] = dot(teacher, c, x);
    std::size_t label = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (scores[c] > scores[label]) label = c;
    }
    i64 second = scores[label == 0 ? 1 : 0];
    for (std::size_t c = 0; c < classes; ++c) {
      if (c != label) second = std::max(second, scores[c]);
    }
    if (static_cast<double>(scores[label] - second) < min_margin) continue;
    data.features.push_back(std::move(x));
    data.labels.push_back(label);
  }
  return data;
}

std::size_t LinearModel::predict(const std::vector<i64>& x) const {
  return argmax_class(weights_, classes_, x);
}

std::size_t LinearModel::predict_noisy(const std::vector<i64>& x, double noise_std,
                                       std::mt19937_64& rng) const {
  return predict(add_noise(x, noise_std, rng));
}

LinearModel train(const LabeledDataset& data, const TrainOptions& options, std::mt19937_64& rng) {
  if (data.features.empty()) throw std::invalid_argument("train: empty dataset");
  const std::size_t features = data.features.front().size();
  LinearModel model(features, data.classes);
  // Averaged perceptron: accumulate weight snapshots for stability.
  std::vector<i64> sum(features * data.classes, 0);
  std::uint64_t snapshots = 0;

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (std::size_t s = 0; s < data.features.size(); ++s) {
      for (int d = 0; d < std::max(options.noise_draws, 1); ++d) {
        const std::vector<i64> x = add_noise(data.features[s], options.train_noise_std, rng);
        const std::size_t pred = model.predict(x);
        const std::size_t truth = data.labels[s];
        if (pred != truth) {
          for (std::size_t i = 0; i < features; ++i) {
            model.weights()[truth * features + i] += x[i];
            model.weights()[pred * features + i] -= x[i];
          }
        }
      }
      for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += model.weights()[i];
      ++snapshots;
    }
  }
  LinearModel averaged(features, data.classes);
  for (std::size_t i = 0; i < sum.size(); ++i) {
    averaged.weights()[i] = sum[i] / static_cast<i64>(snapshots);
  }
  return averaged;
}

double evaluate(const LinearModel& model, const LabeledDataset& data, double noise_std,
                std::mt19937_64& rng) {
  std::size_t correct = 0;
  for (std::size_t s = 0; s < data.features.size(); ++s) {
    correct += model.predict_noisy(data.features[s], noise_std, rng) == data.labels[s];
  }
  return static_cast<double>(correct) / static_cast<double>(data.features.size());
}

}  // namespace flash::tensor
